// Command gdtrace generates the synthetic Azure-like VM trace the Fig. 1
// and Fig. 12 experiments consume and exports it as CSV — the VM-type
// population and the utilization time series — so the trace can be
// inspected or plotted outside the simulator.
//
// Usage:
//
//	gdtrace -hours 24 -seed 1 -ksm -types types.csv -samples samples.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"greendimm/internal/kernel"
	"greendimm/internal/ksm"
	"greendimm/internal/sim"
	"greendimm/internal/vmtrace"
)

func main() {
	var (
		hours    = flag.Int("hours", 24, "simulated hours")
		seed     = flag.Int64("seed", 1, "trace seed")
		useKSM   = flag.Bool("ksm", false, "enable kernel samepage merging")
		typesOut = flag.String("types", "", "write the VM-type population CSV here (default stdout)")
		sampOut  = flag.String("samples", "", "write the utilization samples CSV here (default stdout)")
	)
	flag.Parse()

	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 256 << 30, PageBytes: 2 << 20})
	if err != nil {
		log.Fatal(err)
	}
	var ksmd *ksm.Daemon
	if *useKSM {
		ksmd, err = ksm.New(eng, mem, ksm.Config{
			PagesPerScan: 2, ScanPeriod: 50 * sim.Millisecond,
			ScanCostPerPage: 2560 * sim.Microsecond, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		ksmd.Start()
	}
	cfg := vmtrace.DefaultConfig()
	cfg.Seed = *seed
	host, err := vmtrace.New(eng, mem, ksmd, cfg)
	if err != nil {
		log.Fatal(err)
	}
	host.Start()
	eng.RunUntil(sim.Time(*hours) * sim.Hour)

	if err := writeTypes(*typesOut, host.Types()); err != nil {
		log.Fatal(err)
	}
	if err := writeSamples(*sampOut, host.Samples()); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trace: %dh, avg utilization %.1f%%, %d samples, %d VM types\n",
		*hours, host.AvgUsedFrac()*100, len(host.Samples()), len(host.Types()))
}

// openOut opens the CSV destination. The returned close function must
// be error-checked: an os.Create'd file whose buffered data fails to
// reach disk at Close would otherwise truncate the export silently.
func openOut(path string) (*os.File, func() error, error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// finishCSV flushes the writer and closes the destination, surfacing
// whichever error happens first so the caller exits non-zero instead of
// leaving a truncated file behind.
func finishCSV(w *csv.Writer, closeFn func() error) error {
	w.Flush()
	if err := w.Error(); err != nil {
		_ = closeFn()
		return err
	}
	return closeFn()
}

func writeTypes(path string, types []vmtrace.VMType) error {
	f, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"vcpus", "mem_gb", "mean_life_s", "cpu_util", "image", "common_frac", "weight"}); err != nil {
		_ = closeFn()
		return err
	}
	for _, ty := range types {
		rec := []string{
			strconv.Itoa(ty.VCPUs),
			strconv.Itoa(ty.MemGB),
			strconv.FormatFloat(ty.MeanLife.Seconds(), 'f', 1, 64),
			strconv.FormatFloat(ty.CPUUtil, 'f', 3, 64),
			strconv.Itoa(ty.Image),
			strconv.FormatFloat(ty.CommonFrac, 'f', 3, 64),
			strconv.FormatFloat(ty.Weight, 'f', 3, 64),
		}
		if err := w.Write(rec); err != nil {
			_ = closeFn()
			return err
		}
	}
	return finishCSV(w, closeFn)
}

func writeSamples(path string, samples []vmtrace.Sample) error {
	f, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"hour", "used_frac", "cpu_util", "running_vms", "ksm_saved_gb"}); err != nil {
		_ = closeFn()
		return err
	}
	for _, s := range samples {
		rec := []string{
			strconv.FormatFloat(s.At.Seconds()/3600, 'f', 3, 64),
			strconv.FormatFloat(s.UsedFrac, 'f', 4, 64),
			strconv.FormatFloat(s.CPUUtil, 'f', 4, 64),
			strconv.Itoa(s.Running),
			strconv.FormatFloat(float64(s.KSMSaved)/float64(1<<30), 'f', 2, 64),
		}
		if err := w.Write(rec); err != nil {
			_ = closeFn()
			return err
		}
	}
	return finishCSV(w, closeFn)
}
