// Command greendimmd serves the simulator as a long-running HTTP daemon.
// Clients POST job specs (a paper experiment id or a §6.3 VM-consolidation
// scenario) to /v1/jobs; a bounded worker pool runs each job on its own
// deterministic engine, results are cached by spec hash, and /metrics
// exposes queue and cache health in Prometheus text format.
//
// Usage:
//
//	greendimmd -addr :8080 -workers 4 -queue 16
//	curl -d '{"kind":"experiment","experiment":{"id":"fig12"}}' localhost:8080/v1/jobs
//
// With -peers, the daemon becomes a coordinator: submissions its bounded
// queue rejects are proxied to a healthy peer daemon (internal/cluster)
// instead of bouncing back as 429, and the proxied jobs stay pollable
// and cancelable through this daemon under coordinator-local ids.
//
// With -store-dir, jobs are durable: accepted specs and their completed
// sweep cells journal to a write-ahead log, a killed daemon re-enqueues
// interrupted jobs at the next start, and they resume from the cells
// already done. With -shard-cells N (and -peers), matrix experiments fan
// out across the peers as cell-range shards of ~N sweep cells each,
// merged locally to the byte-identical single-node report.
//
// Baseline sweep cells memoize in a shared LRU (-memo entries; negative
// disables). With -store-dir the memo also journals to <dir>/memo/, so
// a restarted daemon boots warm and serves repeat sweeps without
// recomputation. Daemons expose the memo to peers (GET /v1/memo/keys,
// POST /v1/memo/entries); a sharding coordinator scores backends by
// warm-key overlap and places each shard where its cells already live.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"greendimm/internal/cluster"
	"greendimm/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
		queue      = flag.Int("queue", 16, "bounded job queue depth (full queue returns HTTP 429)")
		cacheSize  = flag.Int("cache", 128, "result cache entries (keyed by job-spec hash)")
		defTimeout = flag.Duration("timeout", 15*time.Minute, "default per-job deadline")
		maxTimeout = flag.Duration("max-timeout", 2*time.Hour, "ceiling on client-requested deadlines")
		grace      = flag.Duration("grace", 2*time.Minute, "drain window for in-flight jobs on shutdown")
		maxRecords = flag.Int("max-records", 4096, "finished job records to retain")
		cpuBudget  = flag.Int("cpu-budget", runtime.GOMAXPROCS(0), "goroutine budget shared by workers, per-job sweep parallelism and engine shard workers (engine_shards specs)")
		peers      = flag.String("peers", "", "comma-separated peer greendimmd base URLs; queue-full submissions are proxied to a healthy peer instead of returning 429")
		peerProbe  = flag.Duration("peer-probe", 2*time.Second, "peer /healthz probe period (with -peers)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables profiling")
		storeDir   = flag.String("store-dir", "", "durable job store directory: accepted jobs and their completed sweep cells are journaled, jobs interrupted by a crash resume from completed work at the next start; empty keeps the daemon in-memory")
		shardCells = flag.Int("shard-cells", 0, "fan matrix experiments out across -peers as cell-range shards of about this many sweep cells each (0 disables; requires -peers)")
		policyFile = flag.String("policy-config", "", "JSON policy config file; its block-selection pipeline becomes the default for vmserver jobs that omit a policy (see GET /v1/policies)")
		memoSize   = flag.Int("memo", 0, "baseline-cell memo entries shared across jobs (0 = default 512, negative disables); with -store-dir the memo spills to disk and reloads warm at the next start")
	)
	flag.Parse()

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxJobRecords:  *maxRecords,
		CPUBudget:      *cpuBudget,
		StoreDir:       *storeDir,
		MemoEntries:    *memoSize,
	}
	// One memo instance shared by the server, the shard runner's merge
	// executor, and the cluster's warm-peer exchange: build it here so
	// every layer sees the same entries (and the memo spill log under
	// -store-dir persists what all of them computed).
	cfg.Memo = cfg.NewMemo()
	if *policyFile != "" {
		pc, err := server.LoadPolicyConfig(*policyFile)
		if err != nil {
			log.Fatalf("-policy-config: %v", err)
		}
		if pc.Scenario != nil {
			log.Fatalf("-policy-config: the scenario section is for the one-shot greendimm CLI; the daemon takes only the policy")
		}
		cfg.DefaultPolicy = &pc.Policy
		log.Printf("default block-selection policy: %s", pc.Policy.Fingerprint())
	}

	// The peer pool is built before the server so the shard runner can be
	// installed as the server's executor.
	var pool *cluster.Pool
	var urls []string
	if *peers != "" {
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		pool = cluster.NewPool(urls, cluster.PoolConfig{ProbePeriod: *peerProbe})
		pool.Start()
		defer pool.Stop()
	}
	var warm *cluster.Warm
	if *shardCells > 0 {
		if pool == nil {
			log.Printf("-shard-cells %d ignored: no -peers to shard across", *shardCells)
		} else {
			// Shards dispatch through the failover ladder; whole jobs and
			// the shard merge run through the config's own runner (shared
			// limiter + memo), so local work stays inside one CPU budget.
			exec := cfg.BaseRunner()
			ctr := &cluster.Counters{}
			d := cluster.NewDispatcher(pool, cluster.Options{Counters: ctr})
			shardOpts := cluster.ShardOptions{
				CellsPerShard: *shardCells,
				Exec:          exec,
			}
			if cfg.Memo != nil {
				// Warm-aware placement: shards route to the peer already
				// holding their baseline cells, and missing entries are
				// prefetched into this node's memo before the merge.
				warm = cluster.NewWarm(pool, cfg.Memo, cluster.WarmOptions{Counters: ctr})
				shardOpts.Warm = warm
			}
			sr, err := cluster.NewShardRunner(d, shardOpts)
			if err != nil {
				log.Fatalf("shard runner: %v", err)
			}
			cfg.Runner = sr.Run
			log.Printf("sharding matrix experiments across %d peers (%d cells per shard)", len(urls), *shardCells)
		}
	}

	srv, err := server.Open(cfg)
	if err != nil {
		log.Fatalf("starting server: %v", err)
	}
	if warm != nil {
		warm.SetOnFetch(func(n int) { srv.NotePeerMemoFetch(int64(n)) })
	}
	if n := srv.MemoImported(); n > 0 {
		log.Printf("memo store: booted warm with %d persisted entries", n)
	}
	if *storeDir != "" {
		log.Printf("durable job store at %s", *storeDir)
	}
	handler := srv.Handler()
	if pool != nil {
		handler = cluster.NewCoordinator(srv, pool, nil).Handler()
		log.Printf("coordinating queue overflow across %d peers", len(urls))
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	// Profiling gets its own listener and mux, never the API one: the
	// handlers are registered explicitly (no DefaultServeMux side
	// effects), the API port stays free of debug endpoints, and the
	// operator can bind profiling to localhost while the API is public.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: pm}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("greendimmd listening on %s (%d workers, queue %d, cache %d)",
			*addr, *workers, *queue, *cacheSize)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("shutting down: draining in-flight jobs (grace %s)", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop accepting HTTP traffic first, then drain the worker pool.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("pprof shutdown: %v", err)
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("drain window expired; canceled remaining jobs")
		} else {
			log.Printf("pool shutdown: %v", err)
		}
		os.Exit(1)
	}
	log.Printf("all jobs drained; bye")
}
