// Command greendimm regenerates the paper's tables and figures from the
// simulator. Each experiment id matches DESIGN.md's per-experiment index.
//
// Usage:
//
//	greendimm -experiment fig12            # one experiment
//	greendimm -experiment all -quick       # everything, reduced horizons
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"greendimm/internal/exp"
	"greendimm/internal/report"
)

func main() {
	var (
		which    = flag.String("experiment", "all", "experiment id (fig1..fig13, tab1..tab3, all)")
		quick    = flag.Bool("quick", false, "reduced horizons (faster, noisier)")
		seed     = flag.Int64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "sweep worker goroutines per experiment (0 = all CPUs, 1 = serial; output is identical either way)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "-parallel must be >= 0")
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	opts := exp.Options{Quick: *quick, Seed: *seed, Parallelism: *parallel}

	experiments := exp.Registry()
	ids := []string{*which}
	if *which == "all" {
		// Deduplicate the aliases that share one run.
		ids = exp.CanonicalExperiments()
	}
	seen := map[string]bool{}
	sort.Strings(ids)
	for _, id := range ids {
		fn, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, known())
			os.Exit(2)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		fmt.Printf("=== %s ===\n", id)
		tables, series, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for ti, t := range tables {
			fmt.Println(t)
			if *csvDir != "" && t.Rows() > 0 {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", id, ti))
				if err := writeCSV(path, t); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
					os.Exit(1)
				}
			}
		}
		for _, s := range series {
			fmt.Printf("  %-10s %s\n", s.Name, s.Sparkline(64))
		}
		fmt.Println()
	}
}

// writeCSV exports one table.
func writeCSV(path string, t *report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(append([]string{"label"}, t.Columns...)); err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		rec := []string{t.Label(r)}
		for c := range t.Columns {
			rec = append(rec, t.Value(r, c))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}

func known() string {
	return strings.Join(exp.KnownExperiments(), ", ")
}
