// Command greendimm regenerates the paper's tables and figures from the
// simulator. Each experiment id matches DESIGN.md's per-experiment index.
//
// Usage:
//
//	greendimm -experiment fig12            # one experiment
//	greendimm -experiment all -quick       # everything, reduced horizons
//	greendimm -spec jobs.json              # run a JSON job-spec file
//	greendimm -policy-config policy.json   # run a configured selection policy on a VM day
//	greendimm -experiment all -backends http://a:8080,http://b:8080
//
// With -backends, jobs are dispatched across the given greendimmd
// daemons (internal/cluster): health-aware routing, retries with
// backoff, optional hedging of stragglers, and in-process fallback when
// every backend is down. Results are byte-identical to local runs — the
// dispatcher verifies this whenever a spec executes more than once.
//
// With -memo-dir, baseline sweep cells computed by local runs persist
// to a WAL-backed log in that directory and reload at the next
// invocation, so repeated quick iterations skip the shared baselines.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"greendimm/internal/cluster"
	"greendimm/internal/exp"
	"greendimm/internal/obs"
	"greendimm/internal/report"
	"greendimm/internal/server"
	"greendimm/internal/store"
	"greendimm/internal/sweep"
)

func main() {
	var (
		which      = flag.String("experiment", "all", "experiment id (fig1..fig13, tab1..tab3, all)")
		quick      = flag.Bool("quick", false, "reduced horizons (faster, noisier)")
		seed       = flag.Int64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 0, "sweep worker goroutines per experiment (0 = all CPUs, 1 = serial; output is identical either way)")
		shards     = flag.Int("engine-shards", 0, "per-channel event lanes inside each simulation engine (0 = sequential, -1 = auto for this host; output is identical either way)")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		specFile   = flag.String("spec", "", "run a JSON job-spec file (one spec object or an array) instead of -experiment")
		policyFile = flag.String("policy-config", "", "run a JSON policy config file (a block-selection pipeline plus an optional VM scenario) instead of -experiment")
		backends   = flag.String("backends", "", "comma-separated greendimmd base URLs; jobs run remotely with routing, retries and hedging (in-process fallback if all are down)")
		hedgeAfter = flag.Duration("hedge-after", 30*time.Second, "with -backends: duplicate an unfinished job onto a second backend after this long (0 disables hedging)")
		traceOut   = flag.String("trace-out", "", "write a JSON execution trace (per-cell spans; with -backends also attempts/hedges/backoffs) to this file")
		memoDir    = flag.String("memo-dir", "", "persistent baseline-cell memo directory (local runs only): reload previously computed sweep cells before running and save new ones after, so repeated invocations skip shared baselines")
	)
	flag.Parse()
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "-parallel must be >= 0")
		os.Exit(2)
	}
	if *shards < -1 || *shards > server.MaxEngineShards {
		fmt.Fprintf(os.Stderr, "-engine-shards must be -1 (auto) or in [0, %d]\n", server.MaxEngineShards)
		os.Exit(2)
	}
	if *shards == -1 {
		*shards = exp.AutoEngineShards()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch {
	case *policyFile != "":
		pc, err := server.LoadPolicyConfig(*policyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec := pc.JobSpec()
		spec.Parallelism = *parallel
		spec.EngineShards = *shards
		runSpecs([]string{"policy:" + pc.Policy.Fingerprint()}, []server.JobSpec{spec},
			*backends, *hedgeAfter, *csvDir, *traceOut)
	case *specFile != "":
		specs, err := loadSpecs(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runSpecs(specLabels(specs), specs, *backends, *hedgeAfter, *csvDir, *traceOut)
	case *backends != "" || *traceOut != "":
		// Tracing needs the spec path: runSpecs threads an obs.Trace
		// through execution, which the registry path has no seam for.
		labels, specs := experimentSpecs(*which, *quick, *seed, *parallel, *shards)
		runSpecs(labels, specs, *backends, *hedgeAfter, *csvDir, *traceOut)
	default:
		opts := exp.Options{Quick: *quick, Seed: *seed, Parallelism: *parallel}
		opts.Hooks.EngineShards = *shards
		saveMemo := openMemoDir(*memoDir, &opts)
		runLocalRegistry(*which, opts, *csvDir)
		saveMemo()
	}
}

// openMemoDir loads a persistent memo store into opts.Memo and returns
// the save function that writes newly computed entries back. With an
// empty dir it is a no-op pair: runLocalRegistry builds its own
// in-memory memo as before. Entries persist with the same verified
// codec the daemon's memo spill uses, so the two stores are
// interchangeable on disk.
func openMemoDir(dir string, opts *exp.Options) func() {
	if dir == "" {
		return func() {}
	}
	ml, err := store.OpenMemoLog(dir, store.MemoLogOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	memo := sweep.NewMemo(0)
	memo.SetCodec(exp.MemoCodec())
	var warm []sweep.Entry
	for _, c := range ml.Entries() {
		warm = append(warm, sweep.Entry{V: sweep.EntryVersion, Key: c.Key, Value: c.Value})
	}
	if n := memo.Import(warm); n > 0 {
		fmt.Fprintf(os.Stderr, "memo: %d entries loaded from %s\n", n, dir)
	}
	opts.Memo = memo
	return func() {
		saved := 0
		for _, e := range memo.Export(nil) {
			before := ml.Len()
			if err := ml.Put(e.Key, e.Value); err != nil {
				fmt.Fprintf(os.Stderr, "memo: saving %s: %v\n", dir, err)
				break
			}
			if ml.Len() > before {
				saved++
			}
		}
		if saved > 0 {
			fmt.Fprintf(os.Stderr, "memo: %d new entries saved to %s\n", saved, dir)
		}
		if err := ml.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "memo: closing %s: %v\n", dir, err)
		}
	}
}

// runLocalRegistry is the classic in-process path: each experiment runs
// on this machine's registry runner.
func runLocalRegistry(which string, opts exp.Options, csvDir string) {
	experiments := exp.Registry()
	// One memo across the whole selection: with -experiment all, figures
	// that share baseline cells (fig12/fig13's traced day, the block
	// sweep's dynamics runs) compute them once. Result-neutral — see
	// exp.Options.Memo.
	if opts.Memo == nil {
		opts.Memo = sweep.NewMemo(0)
	}
	for _, id := range experimentIDs(which) {
		fn, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, known())
			os.Exit(2)
		}
		fmt.Printf("=== %s ===\n", id)
		tables, series, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for ti, t := range tables {
			fmt.Println(t)
			if err := maybeCSV(csvDir, id, ti, t); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		for _, s := range series {
			fmt.Printf("  %-10s %s\n", s.Name, s.Sparkline(64))
		}
		fmt.Println()
	}
}

// runSpecs executes job specs — remotely when backends are given, else
// in-process via server.Execute — and prints each report the way the
// local path does. With traceOut, each spec records an execution trace
// and the labeled set is written there as JSON.
func runSpecs(labels []string, specs []server.JobSpec, backends string, hedgeAfter time.Duration, csvDir, traceOut string) {
	var traces []*obs.Trace
	if traceOut != "" {
		traces = make([]*obs.Trace, len(specs))
		for i := range traces {
			traces[i] = obs.NewTrace(0)
		}
	}
	var results []*server.Result
	if backends != "" {
		urls := splitURLs(backends)
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "-backends is set but holds no URLs")
			os.Exit(2)
		}
		pool := cluster.NewPool(urls, cluster.PoolConfig{})
		pool.Start()
		defer pool.Stop()
		d := cluster.NewDispatcher(pool, cluster.Options{HedgeAfter: hedgeAfter})
		var err error
		results, err = d.RunTraced(context.Background(), specs, traces)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c := d.Counters()
		fmt.Fprintf(os.Stderr, "cluster: %d submitted, %d retries, %d failovers, %d hedges (%d won), %d local\n",
			c.Submitted, c.Retries, c.Failovers, c.Hedges, c.HedgeWins, c.LocalRuns)
	} else {
		for i, spec := range specs {
			var h server.RunHooks
			if traces != nil {
				h.Trace = traces[i]
			}
			res, err := server.Execute(spec, h)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", labels[i], err)
				os.Exit(1)
			}
			results = append(results, res)
		}
	}
	if traceOut != "" {
		if err := writeTraces(traceOut, labels, traces); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for i, res := range results {
		fmt.Printf("=== %s ===\n", labels[i])
		fmt.Print(res.Text)
		fmt.Println()
		for ti, t := range res.Tables {
			if err := maybeCSV(csvDir, labels[i], ti, t); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// writeTraces dumps the label → trace map as indented JSON.
func writeTraces(path string, labels []string, traces []*obs.Trace) error {
	out := make(map[string]obs.TraceView, len(traces))
	for i, tr := range traces {
		out[labels[i]] = tr.View()
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding traces: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// experimentIDs resolves -experiment to a sorted, deduplicated id list.
func experimentIDs(which string) []string {
	ids := []string{which}
	if which == "all" {
		ids = exp.CanonicalExperiments() // deduplicate the aliases that share one run
	}
	sort.Strings(ids)
	out := ids[:0]
	seen := map[string]bool{}
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// experimentSpecs turns the CLI's experiment selection into job specs.
func experimentSpecs(which string, quick bool, seed int64, parallel, shards int) ([]string, []server.JobSpec) {
	experiments := exp.Registry()
	var labels []string
	var specs []server.JobSpec
	for _, id := range experimentIDs(which) {
		if _, ok := experiments[id]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, known())
			os.Exit(2)
		}
		if parallel > server.MaxJobParallelism {
			parallel = server.MaxJobParallelism
		}
		labels = append(labels, id)
		specs = append(specs, server.JobSpec{
			Kind:         server.KindExperiment,
			Experiment:   &server.ExperimentSpec{ID: id, Quick: quick, Seed: seed},
			Parallelism:  parallel,
			EngineShards: shards,
		})
	}
	return labels, specs
}

// loadSpecs reads a spec file holding one JSON spec object or an array.
func loadSpecs(path string) ([]server.JobSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []server.JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&list); err == nil {
		return list, nil
	}
	var one server.JobSpec
	dec = json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&one); err != nil {
		return nil, fmt.Errorf("%s: neither a spec array nor a spec object: %v", path, err)
	}
	return []server.JobSpec{one}, nil
}

// specLabels names file-loaded specs for output headers.
func specLabels(specs []server.JobSpec) []string {
	labels := make([]string, len(specs))
	for i, s := range specs {
		switch {
		case s.Experiment != nil:
			labels[i] = s.Experiment.ID
		case s.VMServer != nil:
			labels[i] = fmt.Sprintf("vmserver[%d]", i)
		default:
			labels[i] = fmt.Sprintf("spec[%d]", i)
		}
	}
	return labels
}

// splitURLs parses a comma-separated URL list, dropping empties.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// maybeCSV exports one table when -csv is set and the table has rows.
func maybeCSV(dir, label string, idx int, t *report.Table) error {
	if dir == "" || t.Rows() == 0 {
		return nil
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", label, idx))
	if err := writeCSV(path, t); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// writeCSV exports one table.
func writeCSV(path string, t *report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(append([]string{"label"}, t.Columns...)); err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		rec := []string{t.Label(r)}
		for c := range t.Columns {
			rec = append(rec, t.Value(r, c))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}

func known() string {
	return strings.Join(exp.KnownExperiments(), ", ")
}
