// Command greendimm regenerates the paper's tables and figures from the
// simulator. Each experiment id matches DESIGN.md's per-experiment index.
//
// Usage:
//
//	greendimm -experiment fig12            # one experiment
//	greendimm -experiment all -quick       # everything, reduced horizons
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"greendimm/internal/exp"
	"greendimm/internal/report"
)

type runner func(exp.Options) ([]*report.Table, []report.Series, error)

var experiments = map[string]runner{
	"fig1": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunFig1(o)
		if err != nil {
			return nil, nil, err
		}
		t := r.Table()
		extra := report.NewTable("", "value")
		extra.AddRow("ksm reduction %", r.KSMReductionFrac()*100)
		return []*report.Table{t, extra}, r.Series(), nil
	},
	"fig2": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunFig2(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, nil, nil
	},
	"fig3": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunFig3(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, nil, nil
	},
	"fig6": blockSweep, "fig7": blockSweep, "tab2": blockSweep,
	"fig8": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunFig8(o)
		if err != nil {
			return nil, nil, err
		}
		extra := report.NewTable("", "value")
		extra.AddRow("failure reduction %", r.ReductionFrac()*100)
		return []*report.Table{r.Table(), extra}, nil, nil
	},
	"fig9": energyMatrix, "fig10": energyMatrix, "fig11": energyMatrix,
	"fig12": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunFig12(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, r.Series(), nil
	},
	"fig13": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunFig13(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, nil, nil
	},
	"tab1": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunTable1(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, nil, nil
	},
	"tab3": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunTable3(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, nil, nil
	},
	"ablations": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunAblations(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.NeighborRule, r.Thresholds, r.GroupSize, r.DPDResidual, r.IdlePolicy}, nil, nil
	},
	"tail": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunTailLatency(o)
		if err != nil {
			return nil, nil, err
		}
		extra := report.NewTable("", "value")
		extra.AddRow("worst p99 inflation %", r.MaxP99InflationPct())
		return []*report.Table{r.Table(), extra}, nil, nil
	},
	"ramzzz": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunRAMZzz(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, nil, nil
	},
	"hwcost": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunHWCost()
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Register, r.Area}, nil, nil
	},
	"swapthr": func(o exp.Options) ([]*report.Table, []report.Series, error) {
		r, err := exp.RunSwapThreshold(o)
		if err != nil {
			return nil, nil, err
		}
		return []*report.Table{r.Table()}, nil, nil
	},
}

func blockSweep(o exp.Options) ([]*report.Table, []report.Series, error) {
	r, err := exp.RunBlockSizeSweep(o)
	if err != nil {
		return nil, nil, err
	}
	return []*report.Table{r.Fig6Table(), r.Fig7Table(), r.Table2()}, nil, nil
}

func energyMatrix(o exp.Options) ([]*report.Table, []report.Series, error) {
	r, err := exp.RunEnergyMatrix(o)
	if err != nil {
		return nil, nil, err
	}
	spec, dc := r.MeanDRAMSavingsPct()
	extra := report.NewTable("Headline numbers", "value")
	extra.AddRow("mean DRAM savings, SPEC %", spec)
	extra.AddRow("mean DRAM savings, datacenter %", dc)
	extra.AddRow("max execution overhead %", r.MaxOverheadPct())
	return []*report.Table{r.Fig9Table(), r.Fig10Table(), r.Fig11Table(), extra}, nil, nil
}

func main() {
	var (
		which  = flag.String("experiment", "all", "experiment id (fig1..fig13, tab1..tab3, all)")
		quick  = flag.Bool("quick", false, "reduced horizons (faster, noisier)")
		seed   = flag.Int64("seed", 1, "random seed")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	opts := exp.Options{Quick: *quick, Seed: *seed}

	ids := []string{*which}
	if *which == "all" {
		// Deduplicate the aliases that share one run.
		ids = []string{"fig1", "fig2", "fig3", "fig6", "fig8", "fig9", "fig12", "fig13", "tab1", "tab3", "ablations", "tail", "ramzzz", "hwcost", "swapthr"}
	}
	seen := map[string]bool{}
	sort.Strings(ids)
	for _, id := range ids {
		fn, ok := experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, known())
			os.Exit(2)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		fmt.Printf("=== %s ===\n", id)
		tables, series, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for ti, t := range tables {
			fmt.Println(t)
			if *csvDir != "" && t.Rows() > 0 {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", id, ti))
				if err := writeCSV(path, t); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
					os.Exit(1)
				}
			}
		}
		for _, s := range series {
			fmt.Printf("  %-10s %s\n", s.Name, s.Sparkline(64))
		}
		fmt.Println()
	}
}

// writeCSV exports one table.
func writeCSV(path string, t *report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(append([]string{"label"}, t.Columns...)); err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		rec := []string{t.Label(r)}
		for c := range t.Columns {
			rec = append(rec, t.Value(r, c))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}

func known() string {
	var ids []string
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}
