package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greendimm/internal/report"
)

func TestWriteCSV(t *testing.T) {
	tb := report.NewTable("t", "a", "b")
	tb.AddRow("x", 1, 2.5)
	tb.AddRow("y", 3, 4)
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := writeCSV(path, tb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "label,a,b\nx,1,2.5\ny,3,4\n"
	if string(data) != want {
		t.Errorf("csv = %q, want %q", data, want)
	}
}

func TestKnownListsAllExperiments(t *testing.T) {
	k := known()
	for _, id := range []string{"fig1", "fig13", "tab3", "ablations", "tail", "ramzzz", "hwcost", "swapthr"} {
		if !strings.Contains(k, id) {
			t.Errorf("known() missing %q: %s", id, k)
		}
	}
}
