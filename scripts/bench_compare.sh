#!/usr/bin/env sh
# Compare two benchmark snapshots (scripts/bench.sh output) and flag
# regressions on the gated hot-path benchmarks.
#
# Usage: scripts/bench_compare.sh [old.json new.json]
#   With no arguments, the two most recently modified BENCH_*.json in the
#   repo root are compared (newest = "new").
#
# Environment:
#   BENCH_GATE            regex of benchmark names to gate
#                         (default 'Engine|MCSubmit|Dispatcher')
#   BENCH_TOLERANCE_PCT   allowed increase before flagging (default 20)
#   BENCH_STRICT=1        make ns/op regressions fatal too (allocs/op
#                         regressions are always fatal: the alloc-lean
#                         request path is a correctness-adjacent contract,
#                         while ns/op is noisy across machines)
set -eu

cd "$(dirname "$0")/.."

if [ $# -ge 2 ]; then
    old=$1
    new=$2
else
    # shellcheck disable=SC2012
    snaps=$(ls -t BENCH_*.json 2>/dev/null | head -2)
    count=$(printf '%s\n' "$snaps" | grep -c . || true)
    if [ "$count" -lt 2 ]; then
        echo "bench_compare: need two BENCH_*.json snapshots in the repo root (found $count)" >&2
        exit 1
    fi
    new=$(printf '%s\n' "$snaps" | sed -n 1p)
    old=$(printf '%s\n' "$snaps" | sed -n 2p)
fi

gate="${BENCH_GATE:-Engine|MCSubmit|Dispatcher}"
tol="${BENCH_TOLERANCE_PCT:-20}"
strict="${BENCH_STRICT:-0}"

# Snapshots taken at different engine shard counts measure different
# execution modes — comparing them reads as a perf change that is really
# a configuration change. Refuse outright. Snapshots predating the field
# count as sequential (0).
shards_of() {
    grep -o '"engine_shards": *[0-9][0-9]*' "$1" 2>/dev/null | head -1 | grep -o '[0-9][0-9]*$' || echo 0
}
old_shards=$(shards_of "$old")
new_shards=$(shards_of "$new")
if [ "$old_shards" != "$new_shards" ]; then
    echo "bench_compare: FATAL: engine_shards mismatch: $old has $old_shards, $new has $new_shards" >&2
    echo "bench_compare: re-run scripts/bench.sh with matching BENCH_SHARDS before comparing" >&2
    exit 1
fi

# A snapshot taken from a dirty working tree measures code no commit
# identifies — the comparison may not be reproducible. Warn (not fatal:
# dirty-tree snapshots are exactly how one iterates on a perf change);
# snapshots predating the field count as clean.
dirty_of() {
    grep -q '"dirty": *true' "$1" 2>/dev/null && echo dirty || echo clean
}
for snap in "$old" "$new"; do
    if [ "$(dirty_of "$snap")" = dirty ]; then
        echo "bench_compare: WARNING: $snap was taken from a dirty working tree; its rev does not identify the measured code" >&2
    fi
done

echo "==> bench_compare: $old -> $new (gate: $gate, tolerance: ${tol}%, engine_shards: $new_shards)"

awk -v gate="$gate" -v tol="$tol" -v strict="$strict" '
# Snapshot lines look like:
#   "BenchmarkMCSubmit-8": {"iterations": 200000, "ns_per_op": 513, ..., "allocs_per_op": 0}
function metric(s, key,    v) {
    if (match(s, "\"" key "\": [0-9.eE+-]+")) {
        v = substr(s, RSTART, RLENGTH)
        sub(/.*: /, "", v)
        return v
    }
    return "missing"
}
FNR == 1 { fileno++ }
/"Benchmark/ {
    split($0, parts, "\"")
    name = parts[2]
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix: machines differ
    if (fileno == 1) {
        old_ns[name] = metric($0, "ns_per_op")
        old_al[name] = metric($0, "allocs_per_op")
    } else {
        new_ns[name] = metric($0, "ns_per_op")
        new_al[name] = metric($0, "allocs_per_op")
        order[++n] = name
    }
}
function pct(o, v) { return (v - o) / o * 100 }
END {
    fail = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name !~ gate) continue
        if (!(name in old_ns)) {
            printf "  new      %-46s ns/op=%s allocs/op=%s (no baseline)\n", \
                name, new_ns[name], new_al[name]
            continue
        }
        flagged = 0
        # allocs/op: always fatal beyond tolerance; 0 -> >0 is fatal outright.
        oa = old_al[name]; na = new_al[name]
        if (oa != "missing" && na != "missing") {
            if (oa + 0 == 0 && na + 0 > 0) {
                printf "  FAIL     %-46s allocs/op %s -> %s (was alloc-free)\n", name, oa, na
                fail = 1; flagged = 1
            } else if (oa + 0 > 0 && pct(oa, na) > tol) {
                printf "  FAIL     %-46s allocs/op %s -> %s (+%.1f%%)\n", name, oa, na, pct(oa, na)
                fail = 1; flagged = 1
            }
        }
        # ns/op: warn by default (machine noise), fatal under BENCH_STRICT=1.
        on = old_ns[name]; nn = new_ns[name]
        if (on != "missing" && nn != "missing" && on + 0 > 0 && pct(on, nn) > tol) {
            tag = (strict + 0) ? "FAIL" : "WARN"
            printf "  %-8s %-46s ns/op %s -> %s (+%.1f%%)\n", tag, name, on, nn, pct(on, nn)
            if (strict + 0) fail = 1
            flagged = 1
        }
        if (!flagged) {
            printf "  ok       %-46s ns/op %s -> %s, allocs/op %s -> %s\n", \
                name, on, nn, oa, na
        }
    }
    if (n == 0) { print "bench_compare: no benchmarks parsed from new snapshot" > "/dev/stderr"; exit 1 }
    exit fail
}
' "$old" "$new"

echo "==> bench_compare: OK"
