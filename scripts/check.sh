#!/usr/bin/env sh
# Repo-wide gate: build, vet, and race-test everything.
# Usage: scripts/check.sh [extra go test flags]
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go test -race (parallel sweep determinism)"
# The sweep layer and its exp/server consumers are the concurrency
# surface; exercise their tests under the race detector explicitly so a
# narrowed "$@" (e.g. -run) can't skip them.
GREENDIMM_QUICK=1 go test -race ./internal/sweep/
# -short scales down the exp determinism matrices (they self-reduce via
# testing.Short) so this pass fits the race detector's 1-CPU budget.
GREENDIMM_QUICK=1 go test -race -short -run 'Sweep|Parallel|Determinism' \
    ./internal/exp/ ./internal/server/

echo "==> go test -race (sharded engine: shards)"
# The channel-sharded engine is the only place simulation state crosses
# goroutines; its determinism harness (synthetic lanes in internal/sim,
# real experiments in internal/exp) must always run under the detector.
go test -race -run 'Sharded|TieBreak|ShardBudget|LaneView|LookaheadViolation' ./internal/sim/
GREENDIMM_QUICK=1 go test -race -short -run 'Sharded|ShardBudget' ./internal/exp/

echo "==> go test -race ./internal/cluster/ (fault injection)"
# The cluster dispatcher's retry/hedge/failover machinery is goroutine
# heavy; its fault-injection suite must always run under the detector.
GREENDIMM_QUICK=1 go test -race ./internal/cluster/

echo "==> go test -race ./internal/store/ (WAL crash consistency)"
# The durable job store's replay path — torn tails, CRC corruption,
# snapshot compaction — and the server's crash-recovery e2e must always
# run under the detector: journaling happens from concurrent sweep cells.
go test -race ./internal/store/
GREENDIMM_QUICK=1 go test -race -run 'Recovery|Resubmit|Resume|Shard' \
    ./internal/server/ ./internal/cluster/

echo "==> go test -race (policy pipeline: trackers, policies, equivalence)"
# The block-selection pipeline must stay byte-identical to the legacy
# policies and deterministic under parallel sweeps; its unit tests,
# golden-equivalence suite and polgrid ablation always run under the
# detector.
GREENDIMM_QUICK=1 go test -race -run 'Policy|Tracker|Hysteresis|Proactive|HeatTier|AgeThreshold|Equivalence' \
    ./internal/core/ ./internal/exp/ ./internal/server/ ./internal/cluster/

echo "==> go test -race (cluster-warm memoization)"
# The memo's exchange and placement surface: single-flight + LRU under
# concurrent Do, WAL-backed memo-log recovery, peer key/entry fetch, and
# warm-aware shard placement must always run under the detector. (Not
# ./internal/exp/ — 'Memo' would match its heavy determinism matrix.)
go test -race -run 'Memo|Warm|Predict|PickScored' \
    ./internal/sweep/ ./internal/store/ ./internal/server/ ./internal/cluster/

echo "==> go test -race ./internal/obs/ (lock-free span ring)"
# The trace ring's atomic reservation/publication protocol is only as
# good as its race coverage; run it under the detector unconditionally.
go test -race ./internal/obs/

echo "==> alloc regression (engine, controller, workload hot paths)"
# The request path's zero-allocation contract, asserted as tests so a
# regression fails the gate, not just a benchmark readout. Run WITHOUT
# the race detector: AllocsPerRun must count only the code's own
# allocations, and these same tests also run race-instrumented in the
# repo-wide pass below.
go test -run 'Alloc|SteadyState' ./internal/sim/ ./internal/mc/ ./internal/workload/ ./internal/core/

echo "==> go test -race ./internal/mc/ (pooled-request reuse contract)"
# The request pool recycles objects whose completion events are queued;
# the reuse-while-pending test must always run under the detector.
go test -race -run 'Pooled|QueueRemoval' ./internal/mc/

echo "==> go test -race ./..."
# internal/exp's full-scale determinism matrices blow the race detector's
# budget on 1-CPU runners (hundreds of seconds); its heavy suites
# self-scale under -short while every other package runs at full scale.
go test -race -short -timeout 20m "$@" ./internal/exp/
go test -race "$@" $(go list ./... | grep -v '/internal/exp$')

echo "==> bench snapshot comparison"
# With two or more BENCH_*.json snapshots present, gate the hot-path
# benchmarks (>20% allocs/op regressions are fatal; ns/op warns).
if [ "$(ls BENCH_*.json 2>/dev/null | wc -l)" -ge 2 ]; then
    scripts/bench_compare.sh
else
    echo "  (skipped: fewer than two BENCH_*.json snapshots)"
fi

echo "OK"
