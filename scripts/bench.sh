#!/usr/bin/env sh
# Benchmark snapshot: run every benchmark once in quick mode and write a
# JSON file mapping benchmark name -> metrics, for before/after
# comparisons of the event engine, sweep, and cluster-dispatch work.
# BenchmarkDispatcher (internal/cluster) rides along via ./... and
# tracks the per-job dispatch overhead: routing, HTTP round trips,
# polling, and the deterministic merge, with simulation cost excluded.
#
# Usage: scripts/bench.sh [output.json]
#   Default output: BENCH_<git-short-rev>.json in the repo root.
#
# Environment:
#   BENCH_FILTER   -bench regex (default '.', everything) — narrow the
#                  run when iterating on one hot path
#   BENCH_TIME     -benchtime value (default '1x')
#   BENCH_SHARDS   engine shard count for every simulation engine
#                  (default 0 = sequential; 'auto' = host default,
#                  min(4, nproc), 0 on a single-CPU host). Recorded in
#                  the snapshot: bench_compare.sh refuses to compare
#                  snapshots taken at different shard counts.
set -eu

cd "$(dirname "$0")/.."

rev=$(git rev-parse --short HEAD 2>/dev/null || echo "worktree")
# A snapshot from a dirty tree measures code that no commit identifies;
# record that, so bench_compare.sh can warn when a comparison involves
# unreproducible numbers.
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    dirty=true
else
    dirty=false
fi
out="${1:-BENCH_${rev}.json}"
filter="${BENCH_FILTER:-.}"
benchtime="${BENCH_TIME:-1x}"

# Host metadata: ns/op is only comparable on the same machine shape, so
# every snapshot records where it came from.
cpus=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
gomaxprocs="${GOMAXPROCS:-$cpus}"
goversion=$(go version | sed 's/^go version //')

# Resolve BENCH_SHARDS the way exp.AutoEngineShards does, so the snapshot
# records the effective count, not the word 'auto'.
shards="${BENCH_SHARDS:-0}"
if [ "$shards" = auto ]; then
    if [ "$cpus" -lt 2 ]; then
        shards=0
    elif [ "$cpus" -gt 4 ]; then
        shards=4
    else
        shards=$cpus
    fi
fi
case "$shards" in
    ''|*[!0-9]*) echo "bench: BENCH_SHARDS must be a non-negative integer or 'auto'" >&2; exit 2 ;;
esac

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench=$filter -benchtime=$benchtime (GREENDIMM_QUICK=1 GREENDIMM_SHARDS=$shards)"
GREENDIMM_QUICK=1 GREENDIMM_SHARDS=$shards go test -run '^$' -bench="$filter" -benchtime="$benchtime" -benchmem ./... | tee "$raw"

# Benchmark output lines look like:
#   BenchmarkEngineDispatchChain-8  1  14.71 ns/op  0 B/op  0 allocs/op
# Everything after the iteration count is value/unit pairs.
awk -v rev="$rev" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9\/]/, "", unit)
        gsub(/\//, "_per_", unit)
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" unit "\": " $i
    }
    if (n++) printf ",\n"
    printf "    \"%s\": {\"iterations\": %s, %s}", name, iters, metrics
}
END {
    if (n == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "\n"
}' "$raw" > "$raw.body"

{
    printf '{\n  "rev": "%s",\n  "dirty": %s,\n  "quick": true,\n  "benchtime": "%s",\n' "$rev" "$dirty" "$benchtime"
    printf '  "engine_shards": %s,\n  "gomaxprocs": %s,\n  "cpus": %s,\n  "go": "%s",\n' \
        "$shards" "$gomaxprocs" "$cpus" "$goversion"
    printf '  "benchmarks": {\n'
    cat "$raw.body"
    printf '  }\n}\n'
} > "$out"
rm -f "$raw.body"

echo "==> wrote $out"
