// Package greendimm is a from-scratch reproduction of "GreenDIMM:
// OS-assisted DRAM Power Management for DRAM with a Sub-array Granularity
// Power-Down State" (Lee et al., MICRO 2021).
//
// The public surface of the repository is the benchmark harness in
// bench_test.go (one benchmark per table and figure of the paper's
// evaluation), the cmd/greendimm CLI, and the runnable programs under
// examples/. The building blocks live under internal/: a DDR4 memory
// simulator (dram, addr, mc), an IDD-based power model (power), a Linux
// memory-management model (kernel, hotplug, ksm), workload and VM-trace
// generators (workload, vmtrace), the GreenDIMM daemon itself (core), the
// paper's comparison baselines (baseline), and the experiment drivers
// (exp). See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package greendimm
