// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (the (d) deliverable). Each benchmark runs its experiment and
// reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchtime=1x
//
// regenerates every result. Benchmarks default to the full experiment
// scale; set GREENDIMM_QUICK=1 to use the reduced Quick horizons. Set
// GREENDIMM_SHARDS to a shard count ("auto" picks the host default) to
// run every engine channel-sharded — results are byte-identical, only
// wall time moves; scripts/bench.sh records the setting in the snapshot
// so bench_compare.sh never compares across it.
//
// Absolute wall-power numbers depend on the calibrated power model (see
// EXPERIMENTS.md); the shapes — who wins, by what factor, where the
// crossovers sit — are the reproduction targets.
package greendimm

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"greendimm/internal/exp"
	"greendimm/internal/sweep"
)

// benchMemo is shared across every benchmark in the process, the way the
// CLI's -experiment all path shares one: experiments that run identical
// baseline cells (fig12/fig13's traced day, the block sweep's dynamics
// runs) compute them once. Result-neutral (see exp.Options.Memo), so the
// reported headline metrics are unchanged.
var benchMemo = sweep.NewMemo(0)

func benchOpts() exp.Options {
	o := exp.Options{Quick: os.Getenv("GREENDIMM_QUICK") != "", Seed: 1, Memo: benchMemo}
	o.Hooks.EngineShards = benchShards()
	return o
}

// benchShards resolves GREENDIMM_SHARDS: unset or 0 = sequential,
// "auto" = the host default (exp.AutoEngineShards), anything else a
// shard count. Malformed values are a configuration error worth failing
// loudly on, since a silent fallback would mislabel the snapshot.
func benchShards() int {
	s := os.Getenv("GREENDIMM_SHARDS")
	switch s {
	case "", "0":
		return 0
	case "auto":
		return exp.AutoEngineShards()
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		panic("GREENDIMM_SHARDS must be a non-negative integer or \"auto\", got " + strconv.Quote(s))
	}
	return n
}

// BenchmarkFig1MemoryUtilization regenerates Fig. 1: VM memory
// utilization over 24 hours, with and without KSM.
func BenchmarkFig1MemoryUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NoKSM.AvgUsedFrac*100, "util-avg-%")
		b.ReportMetric(r.NoKSM.MinUsedFrac*100, "util-min-%")
		b.ReportMetric(r.NoKSM.MaxUsedFrac*100, "util-max-%")
		b.ReportMetric(r.KSMReductionFrac()*100, "ksm-cut-%")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkTable1PowerVsUtilization regenerates Table 1.
func BenchmarkTable1PowerVsUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PowerW[0], "power-10%-W")
		b.ReportMetric(r.PowerW[len(r.PowerW)-1], "power-100%-W")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkFig2DRAMIdleBusyPower regenerates Fig. 2.
func BenchmarkFig2DRAMIdleBusyPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.CapacityGB == 256 {
				b.ReportMetric(row.IdleW, "idle-256GB-W")
				b.ReportMetric(row.BusyW, "busy-256GB-W")
			}
			if row.CapacityGB == 1024 {
				b.ReportMetric(row.BGFraction*100, "bg-1TB-%")
			}
		}
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkFig3Interleaving regenerates Fig. 3 (speedup, self-refresh
// residency, energy).
func BenchmarkFig3Interleaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		wi, wo := r.MeanSRFrac()
		b.ReportMetric(r.MeanSpeedup(), "speedup-x")
		b.ReportMetric(wi*100, "srf-intlv-%")
		b.ReportMetric(wo*100, "srf-contig-%")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkFig6OfflinedCapacity regenerates Fig. 6 (and shares the
// block-size sweep with Fig. 7 / Table 2).
func BenchmarkFig6OfflinedCapacity(b *testing.B) {
	benchBlockSweep(b, func(r exp.BlockSizeResult, bb *testing.B) {
		var sum128, sum512 float64
		for _, c := range r.Cells {
			if c.BlockMB == 128 {
				sum128 += c.OfflinedGB
			}
			if c.BlockMB == 512 {
				sum512 += c.OfflinedGB
			}
		}
		bb.ReportMetric(sum128/6, "offlined-128MB-GB")
		bb.ReportMetric(sum512/6, "offlined-512MB-GB")
		bb.Logf("\n%s", r.Fig6Table())
	})
}

// BenchmarkFig7ExecTimeVsBlockSize regenerates Fig. 7.
func BenchmarkFig7ExecTimeVsBlockSize(b *testing.B) {
	benchBlockSweep(b, func(r exp.BlockSizeResult, bb *testing.B) {
		var max128 float64
		for _, c := range r.Cells {
			if c.BlockMB == 128 && c.OverheadPct > max128 {
				max128 = c.OverheadPct
			}
		}
		bb.ReportMetric(max128, "max-overhead-%")
		bb.Logf("\n%s", r.Fig7Table())
	})
}

// BenchmarkTable2OnOffCounts regenerates Table 2.
func BenchmarkTable2OnOffCounts(b *testing.B) {
	benchBlockSweep(b, func(r exp.BlockSizeResult, bb *testing.B) {
		for _, c := range r.Cells {
			if c.App == "403.gcc" && c.BlockMB == 128 {
				bb.ReportMetric(float64(c.OnOffEvents), "gcc-events-128MB")
			}
			if c.App == "429.mcf" && c.BlockMB == 128 {
				bb.ReportMetric(float64(c.OnOffEvents), "mcf-events-128MB")
			}
		}
		bb.Logf("\n%s", r.Table2())
	})
}

// The block sweep backs three benchmarks (Fig. 6, Fig. 7, Table 2); run
// it once per process and share the result.
var (
	blockSweepOnce sync.Once
	blockSweepRes  exp.BlockSizeResult
	blockSweepErr  error
)

func benchBlockSweep(b *testing.B, report func(exp.BlockSizeResult, *testing.B)) {
	for i := 0; i < b.N; i++ {
		blockSweepOnce.Do(func() {
			blockSweepRes, blockSweepErr = exp.RunBlockSizeSweep(benchOpts())
		})
		if blockSweepErr != nil {
			b.Fatal(blockSweepErr)
		}
		if i == 0 {
			report(blockSweepRes, b)
		}
	}
}

// BenchmarkTable3Latencies regenerates Table 3.
func BenchmarkTable3Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTable3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OfflineMs, "offline-ms")
		b.ReportMetric(r.OnlineMs, "online-ms")
		b.ReportMetric(r.EAgainMs, "eagain-ms")
		b.ReportMetric(r.EBusyMs*1000, "ebusy-us")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkFig8OffliningFailures regenerates Fig. 8.
func BenchmarkFig8OffliningFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ReductionFrac()*100, "failure-cut-%")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkFig9DRAMEnergy regenerates Fig. 9 (shares the energy matrix
// with Figs. 10/11).
func BenchmarkFig9DRAMEnergy(b *testing.B) {
	benchEnergy(b, func(r exp.EnergyResult, bb *testing.B) {
		spec, dc := r.MeanDRAMSavingsPct()
		bb.ReportMetric(spec, "dram-cut-spec-%")
		bb.ReportMetric(dc, "dram-cut-dc-%")
		bb.Logf("\n%s", r.Fig9Table())
	})
}

// BenchmarkFig10SystemEnergy regenerates Fig. 10.
func BenchmarkFig10SystemEnergy(b *testing.B) {
	benchEnergy(b, func(r exp.EnergyResult, bb *testing.B) {
		bb.Logf("\n%s", r.Fig10Table())
	})
}

// BenchmarkFig11ExecOverhead regenerates Fig. 11.
func BenchmarkFig11ExecOverhead(b *testing.B) {
	benchEnergy(b, func(r exp.EnergyResult, bb *testing.B) {
		bb.ReportMetric(r.MaxOverheadPct(), "max-overhead-%")
		bb.Logf("\n%s", r.Fig11Table())
	})
}

// The energy matrix backs Figs. 9, 10 and 11; it is by far the heaviest
// experiment (30 detailed multi-copy runs), so the three benchmarks share
// one execution per process.
var (
	energyOnce sync.Once
	energyRes  exp.EnergyResult
	energyErr  error
)

func benchEnergy(b *testing.B, report func(exp.EnergyResult, *testing.B)) {
	for i := 0; i < b.N; i++ {
		energyOnce.Do(func() {
			energyRes, energyErr = exp.RunEnergyMatrix(benchOpts())
		})
		if energyErr != nil {
			b.Fatal(energyErr)
		}
		if i == 0 {
			report(energyRes, b)
		}
	}
}

// BenchmarkFig12OfflinedBlocks regenerates Fig. 12.
func BenchmarkFig12OfflinedBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NoKSM.AvgOffBlocks, "off-blocks-avg")
		b.ReportMetric(r.WithKSM.AvgOffBlocks, "off-blocks-ksm-avg")
		b.ReportMetric(r.NoKSM.BGReductionPct, "bg-cut-%")
		b.ReportMetric(r.WithKSM.BGReductionPct, "bg-cut-ksm-%")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkTailLatency measures the tail-latency impact on
// latency-critical services (the §6.2 discussion next to Fig. 11).
func BenchmarkTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTailLatency(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MaxP99InflationPct(), "p99-inflation-%")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkAblations sweeps the design knobs DESIGN.md calls out
// (neighbor rule, thresholds, group size, DPD residual, idle policy).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblations(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r.String())
		}
	}
}

// BenchmarkRAMZzzImplementation validates the working RAMZzz daemon
// against the analytic Fig. 9 model.
func BenchmarkRAMZzzImplementation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunRAMZzz(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		contig, err := r.Find(false, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(contig.SRFraction, "sr-frac-contig")
		b.ReportMetric(float64(contig.MigratedPages), "migrated-pages")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkSwapThreshold sweeps off_thr to reproduce the §4.2 swap cliff
// (thresholds under 10% thrash through the swap device).
func BenchmarkSwapThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunSwapThreshold(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].SwapOutGB, "swap-2%-GB")
		b.ReportMetric(r.Rows[2].SwapOutGB, "swap-10%-GB")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkHWCost regenerates the §4.3 hardware-cost comparison.
func BenchmarkHWCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunHWCost()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", r.Register, r.Area)
		}
	}
}

// BenchmarkFig13PowerVsCapacity regenerates Fig. 13.
func BenchmarkFig13PowerVsCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last.GDReductionPct.DRAM, "1TB-dram-cut-%")
		b.ReportMetric(last.GDReductionPct.System, "1TB-sys-cut-%")
		b.ReportMetric(last.GDKSMReductionPct.DRAM, "1TB-dram-cut-ksm-%")
		b.ReportMetric(last.GDKSMReductionPct.System, "1TB-sys-cut-ksm-%")
		if i == 0 {
			b.Logf("\n%s", r.Table())
		}
	}
}

// BenchmarkPolicyGrid regenerates the policy-pipeline ablation: the
// (tracker x policy) x workload grid behind the redesigned selection
// API (DESIGN.md §12).
func BenchmarkPolicyGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunPolicyGrid(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// free-first vs the age-threshold gate on mcf: the capacity the
		// idle gate gives up for stability.
		b.ReportMetric(r.Cells[0].OfflinedGB, "free-first-mcf-GB")
		b.ReportMetric(r.Cells[len(r.Apps)].OfflinedGB, "age-thr-mcf-GB")
		var failures int64
		for _, c := range r.Cells {
			failures += c.Failures
		}
		b.ReportMetric(float64(failures), "grid-failures")
		if i == 0 {
			b.Logf("\n%s\n%s\n%s\n%s", r.OfflinedTable(), r.FailureTable(), r.ChurnTable(), r.OverheadTable())
		}
	}
}
