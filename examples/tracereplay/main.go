// tracereplay demonstrates the controller's trace facility: record a
// workload's memory-request stream, dump it to a file, replay it against a
// fresh controller, and verify the replay reproduces the original DRAM
// behaviour exactly — the workflow for debugging controller or policy
// changes against a fixed stimulus.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

func main() {
	app := flag.String("app", "429.mcf", "workload to record")
	out := flag.String("out", "", "write the trace here (default: in-memory only)")
	accesses := flag.Int64("accesses", 20000, "requests to record")
	flag.Parse()

	prof, ok := workload.ByName(*app)
	if !ok {
		log.Fatalf("unknown app %q", *app)
	}
	prof.FootprintMB = 512

	// 1. Record.
	org := dram.Org64GB()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: org.TotalBytes(), PageBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := mc.New(eng, mc.Config{Org: org, Timing: dram.DDR4_2133(), Interleaved: true})
	if err != nil {
		log.Fatal(err)
	}
	tracer := ctrl.Trace()
	c, err := workload.NewCore(eng, mem, ctrl, workload.CoreConfig{
		Profile: prof, Owner: 42, Accesses: *accesses, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	eng.Run()
	ctrl.Finalize()
	orig := ctrl.Stats()
	fmt.Printf("recorded %d requests over %v (hits %d, misses %d, conflicts %d)\n",
		tracer.Len(), c.Runtime(), orig.RowHits, orig.RowMisses, orig.RowConflicts)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.Dump(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("trace written to %s\n", *out)
	}

	// 2. Replay against a fresh controller.
	eng2 := sim.NewEngine()
	ctrl2, err := mc.New(eng2, mc.Config{Org: org, Timing: dram.DDR4_2133(), Interleaved: true})
	if err != nil {
		log.Fatal(err)
	}
	n, err := mc.Replay(eng2, ctrl2, tracer.Records())
	if err != nil {
		log.Fatal(err)
	}
	eng2.Run()
	ctrl2.Finalize()
	rep := ctrl2.Stats()
	fmt.Printf("replayed %d requests (hits %d, misses %d, conflicts %d)\n",
		n, rep.RowHits, rep.RowMisses, rep.RowConflicts)
	if rep.Reads == orig.Reads && rep.Writes == orig.Writes &&
		rep.Activations == orig.Activations && rep.RowHits == orig.RowHits {
		fmt.Println("replay matches the original run exactly")
	} else {
		fmt.Println("WARNING: replay diverged from the original run")
		os.Exit(1)
	}
}
