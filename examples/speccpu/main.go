// speccpu compares DRAM power management policies on one SPEC-style
// workload: self-refresh only, RAMZzz, PASR, and GreenDIMM, with and
// without memory interleaving — a single-application slice of the paper's
// Figs. 9 and 10.
package main

import (
	"flag"
	"fmt"
	"log"

	"greendimm/internal/baseline"
	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/power"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

func main() {
	app := flag.String("app", "462.libquantum", "workload name (see internal/workload)")
	copies := flag.Int("copies", 8, "concurrent copies")
	accesses := flag.Int64("accesses", 20000, "DRAM accesses per copy")
	flag.Parse()

	prof, ok := workload.ByName(*app)
	if !ok {
		log.Fatalf("unknown app %q", *app)
	}
	model, err := power.NewModel(dram.Org64GB())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s  %-12s  %-10s  %-10s  %-10s  %-10s\n",
		"mapping", "runtime", "srf-only W", "ramzzz W", "pasr W", "greendimm W")
	for _, interleaved := range []bool{true, false} {
		runtime, activity, occ := run(prof, interleaved, *copies, *accesses)
		srf := must(model.FromActivity(activity)).TotalW()
		ram := must(model.FromActivity(baseline.ApplyRAMZzz(activity, occ))).TotalW()
		pasr := must(model.FromActivity(baseline.ApplyPASR(activity, occ))).TotalW()
		gd := activity
		gd.DPDFrac = greendimmDPD(prof)
		gdW := must(model.FromActivity(gd)).TotalW()
		name := "contiguous"
		if interleaved {
			name = "interleaved"
		}
		fmt.Printf("%-14s  %-12v  %-10.2f  %-10.2f  %-10.2f  %-10.2f\n",
			name, runtime, srf, ram, pasr, gdW)
	}
}

func must(b power.Breakdown, err error) power.Breakdown {
	if err != nil {
		log.Fatal(err)
	}
	return b
}

// run executes the detailed timing simulation.
func run(prof workload.Profile, interleaved bool, copies int, accesses int64) (sim.Time, power.Activity, baseline.Occupancy) {
	org := dram.Org64GB()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: org.TotalBytes(), PageBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: org, Timing: dram.DDR4_2133(), Interleaved: interleaved, LowPower: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	remaining := copies
	for i := 0; i < copies; i++ {
		c, err := workload.NewCore(eng, mem, ctrl, workload.CoreConfig{
			Profile: prof, Owner: uint32(100 + i), Accesses: accesses, Seed: int64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		c.OnDone(func() { remaining-- })
		c.Start()
	}
	occ := baseline.Scan(mem, ctrl.Mapper())
	eng.Run()
	if remaining != 0 {
		log.Fatalf("%d copies unfinished", remaining)
	}
	ctrl.Finalize()
	return eng.Now(), ctrl.Activity(), occ
}

// greendimmDPD estimates the sustained deep-power-down fraction with a
// fast dynamics pass (no request simulation).
func greendimmDPD(prof workload.Profile) float64 {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: 64 << 30, PageBytes: 1 << 20, KernelReservedBytes: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	hp, err := hotplug.New(mem, hotplug.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ctrl := core.NewRegisterController(eng, 64)
	daemon, err := core.New(eng, mem, hp, ctrl, core.Config{Period: sim.Second})
	if err != nil {
		log.Fatal(err)
	}
	fd, err := workload.NewFootprintDriver(eng, mem, prof, 50, 60*sim.Second, 500*sim.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fd.Start()
	daemon.Start()
	eng.RunUntil(60 * sim.Second)
	return daemon.AvgDPDFraction()
}
