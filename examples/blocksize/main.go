// blocksize explores the paper's §5.1 trade-off on one workload: smaller
// memory blocks off-line more capacity (finer granularity) but cause more
// on/off-lining events and more overhead.
package main

import (
	"flag"
	"fmt"
	"log"

	"greendimm/internal/core"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

func main() {
	app := flag.String("app", "403.gcc", "workload name")
	seconds := flag.Int("seconds", 120, "simulated run length")
	flag.Parse()
	prof, ok := workload.ByName(*app)
	if !ok {
		log.Fatalf("unknown app %q", *app)
	}

	fmt.Printf("%-8s  %-12s  %-10s  %-10s  %-10s\n",
		"block", "offlined", "offlines", "onlines", "failures")
	for _, blockMB := range []int64{128, 256, 512} {
		eng := sim.NewEngine()
		mem, err := kernel.New(kernel.Config{
			TotalBytes: 64 << 30, PageBytes: 1 << 20,
			KernelReservedBytes: 1 << 30, MovableBytes: 4 << 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: blockMB << 20})
		if err != nil {
			log.Fatal(err)
		}
		ctrl := core.NewRegisterController(eng, int(64<<30/(128<<20)))
		daemon, err := core.New(eng, mem, hp, ctrl, core.Config{
			Period: sim.Second, GroupBytes: 128 << 20,
			OffThr: 0.10, OnThr: 0.085, OfflinableBytes: 4 << 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		fd, err := workload.NewFootprintDriver(eng, mem, prof, 50,
			sim.Time(*seconds)*sim.Second, 500*sim.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fd.Start()
		daemon.Start()
		eng.RunUntil(sim.Time(*seconds) * sim.Second)
		st := daemon.Stats()
		fmt.Printf("%-8s  %8.2f GB  %-10d  %-10d  %-10d\n",
			fmt.Sprintf("%dMB", blockMB),
			daemon.AvgOfflinedBlocks()*float64(hp.BlockBytes())/float64(1<<30),
			st.Offlines, st.Onlines, st.EBusyFailures+st.EAgainFailures)
	}
}
