// vmserver simulates the paper's §6.3 scenario end to end: a 256GB
// consolidated VM host with KSM and the GreenDIMM daemon, over several
// hours of an Azure-like trace. It prints a rolling view of utilization,
// KSM savings, off-lined blocks and the resulting DRAM power.
package main

import (
	"flag"
	"fmt"
	"log"

	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/ksm"
	"greendimm/internal/power"
	"greendimm/internal/sim"
	"greendimm/internal/vmtrace"
)

func main() {
	hours := flag.Int("hours", 6, "simulated hours")
	useKSM := flag.Bool("ksm", true, "enable kernel samepage merging")
	flag.Parse()

	org := dram.Org256GB()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: org.TotalBytes(), PageBytes: 2 << 20})
	if err != nil {
		log.Fatal(err)
	}
	var ksmd *ksm.Daemon
	if *useKSM {
		ksmd, err = ksm.New(eng, mem, ksm.Config{
			PagesPerScan: 2, ScanPeriod: 50 * sim.Millisecond,
			ScanCostPerPage: 2560 * sim.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		ksmd.Start()
	}
	hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	ctrl := core.NewRegisterController(eng, 256)
	daemon, err := core.New(eng, mem, hp, ctrl, core.Config{
		Period: sim.Second, GroupBytes: 1 << 30, MaxOfflinePerTick: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	daemon.Start()
	if ksmd != nil {
		ksmd.OnFullPass(daemon.Tick)
	}
	host, err := vmtrace.New(eng, mem, ksmd, vmtrace.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	host.Start()

	model, err := power.NewModel(org)
	if err != nil {
		log.Fatal(err)
	}
	idleNoMgmt := model.IdleSystemDRAMW()

	fmt.Printf("%-5s  %-4s  %-8s  %-9s  %-10s  %-9s\n",
		"hour", "VMs", "used", "ksm-saved", "off-blocks", "dram-W")
	for h := 1; h <= *hours; h++ {
		eng.RunUntil(sim.Time(h) * sim.Hour)
		mi := mem.Meminfo()
		saved := int64(0)
		if ksmd != nil {
			saved = ksmd.SavedBytes()
		}
		bg := model.RankBackgroundW(dram.StatePrechargeStandby, ctrl.DPDFraction()) *
			float64(org.TotalRanks())
		ref := model.RefEnergyJ(ctrl.DPDFraction()) / model.Timing.TREFI.Seconds() *
			float64(org.TotalRanks())
		dramW := bg + ref + model.DIMMStaticTotalW()
		fmt.Printf("%-5d  %-4d  %5.1f%%    %6.1fGB   %6d      %6.1f (vs %.1f unmanaged)\n",
			h, host.RunningVMs(),
			float64(mi.UsedBytes)/float64(org.TotalBytes())*100,
			float64(saved)/float64(1<<30),
			daemon.OfflinedBlocks(), dramW, idleNoMgmt)
	}
}
