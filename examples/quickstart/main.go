// Quickstart: build the paper's 64GB machine, push some traffic through
// the memory controller, off-line the top memory blocks with GreenDIMM,
// and watch DRAM power drop as the matching sub-array groups enter the
// deep power-down state.
package main

import (
	"fmt"
	"log"

	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/power"
	"greendimm/internal/sim"
)

func main() {
	org := dram.Org64GB()
	fmt.Println("machine:", org)

	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: org.TotalBytes(),
		PageBytes:  1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: org, Timing: dram.DDR4_2133(), Interleaved: true, LowPower: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	hp, err := hotplug.New(mem, hotplug.Config{}) // 128MB blocks
	if err != nil {
		log.Fatal(err)
	}
	daemon, err := core.New(eng, mem, hp, ctrl, core.Config{
		Period: 100 * sim.Millisecond, MaxOfflinePerTick: 64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 2GB application footprint; everything else is idle capacity.
	if _, err := mem.AllocPages(2<<30/mem.PageBytes(), true, 42); err != nil {
		log.Fatal(err)
	}

	// Some traffic to the footprint so the machine is not fully idle.
	g := sim.NewRNG(7)
	var tick func()
	tick = func() {
		n := mem.OwnerPageCount(42)
		pfn := mem.OwnerPage(42, g.Int63n(n))
		pa := uint64(pfn) * uint64(mem.PageBytes())
		if err := ctrl.Submit(pa, g.Bool(0.3), nil); err != nil {
			log.Fatal(err)
		}
		if eng.Now() < 2*sim.Second {
			eng.After(400*sim.Nanosecond, tick)
		}
	}
	eng.At(0, tick)

	daemon.Start()
	eng.RunUntil(2 * sim.Second)
	ctrl.Finalize()

	model, err := power.NewModel(org)
	if err != nil {
		log.Fatal(err)
	}
	b, err := model.FromActivity(ctrl.Activity())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("off-lined: %d blocks (%.1f GB), %d/%d sub-array groups in deep power-down\n",
		daemon.OfflinedBlocks(), float64(daemon.OfflinedBytes())/float64(1<<30),
		ctrl.GroupRegister().DownCount(), ctrl.GroupRegister().Groups())
	fmt.Printf("DRAM power: %.1f W (background %.1f, refresh %.1f, activity %.1f, DIMM static %.1f)\n",
		b.TotalW(), b.BackgroundW, b.RefreshW, b.ActPreW+b.RdWrW, b.DIMMStaticW)
	fmt.Printf("no management would burn %.1f W idle\n", model.IdleSystemDRAMW())
}
