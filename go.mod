module greendimm

go 1.22
