package report

import "encoding/json"

// tableJSON is the wire form of a Table: the grid as labeled rows of
// preformatted cells, so daemon clients see exactly the numbers the CLI
// prints.
type tableJSON struct {
	Title   string    `json:"title,omitempty"`
	Columns []string  `json:"columns"`
	Rows    []rowJSON `json:"rows"`
}

type rowJSON struct {
	Label  string   `json:"label"`
	Values []string `json:"values"`
}

// MarshalJSON renders the table as {title, columns, rows:[{label,values}]}.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Title: t.Title, Columns: t.Columns, Rows: make([]rowJSON, 0, len(t.rows))}
	if out.Columns == nil {
		out.Columns = []string{}
	}
	for _, r := range t.rows {
		vs := r.values
		if vs == nil {
			vs = []string{}
		}
		out.Rows = append(out.Rows, rowJSON{Label: r.label, Values: vs})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a table marshaled by MarshalJSON.
func (t *Table) UnmarshalJSON(b []byte) error {
	var in tableJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	t.Title = in.Title
	t.Columns = in.Columns
	t.rows = t.rows[:0]
	for _, r := range in.Rows {
		t.rows = append(t.rows, row{label: r.Label, values: r.Values})
	}
	return nil
}
