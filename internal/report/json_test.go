package report

import (
	"encoding/json"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("Power", "watts", "ratio")
	tb.AddRow("baseline", 100, 1)
	tb.AddRow("greendimm", 52.5, 0.525)
	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"Power","columns":["watts","ratio"],"rows":[` +
		`{"label":"baseline","values":["100","1"]},` +
		`{"label":"greendimm","values":["52.5","0.525"]}]}`
	if string(b) != want {
		t.Errorf("marshal = %s\nwant      %s", b, want)
	}
	var back Table
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tb.String() {
		t.Errorf("round trip renders\n%s\nwant\n%s", back.String(), tb.String())
	}
}

func TestTableJSONEmpty(t *testing.T) {
	b, err := json.Marshal(NewTable(""))
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"columns":[],"rows":[]}`; string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
}
