// Package report renders experiment results as aligned text tables and
// simple ASCII series — the output format of the benchmark harness that
// regenerates each of the paper's tables and figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a label column and numeric columns.
type Table struct {
	Title   string
	Columns []string // column headers, excluding the label column
	rows    []row
}

type row struct {
	label  string
	values []string
}

// NewTable creates a table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of float values rendered with 3 significant
// decimals (trailing zeros trimmed).
func (t *Table) AddRow(label string, values ...float64) {
	vs := make([]string, len(values))
	for i, v := range values {
		vs[i] = formatNum(v)
	}
	t.rows = append(t.rows, row{label: label, values: vs})
}

// AddRowStrings appends a row of preformatted cells.
func (t *Table) AddRowStrings(label string, values ...string) {
	t.rows = append(t.rows, row{label: label, values: values})
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the raw cell (r, c) as text.
func (t *Table) Value(r, c int) string { return t.rows[r].values[c] }

// Label returns row r's label.
func (t *Table) Label(r int) string { return t.rows[r].label }

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns)+1)
	for _, c := range t.rows {
		if len(c.label) > widths[0] {
			widths[0] = len(c.label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for _, r := range t.rows {
		for i, v := range r.values {
			if i+1 < len(widths) && len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	writeRow := func(label string, cells []string) {
		fmt.Fprintf(&b, "  %-*s", widths[0], label)
		for i, c := range cells {
			w := 10
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			fmt.Fprintf(&b, "  %*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow("", t.Columns)
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		sep[i] = strings.Repeat("-", len(c))
	}
	writeRow(strings.Repeat("-", widths[0]), sep)
	for _, r := range t.rows {
		writeRow(r.label, r.values)
	}
	return b.String()
}

// Series is a labeled (x, y) sequence — one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Min and Max report the Y extremes (0,0 when empty).
func (s *Series) Min() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, v := range s.Y {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest Y.
func (s *Series) Max() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, v := range s.Y {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean reports the mean Y.
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// Sparkline renders the series as a one-line unicode plot, handy for
// eyeballing Fig. 1/12-style time series in terminal output.
func (s *Series) Sparkline(width int) string {
	if len(s.Y) == 0 || width <= 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := s.Min(), s.Max()
	span := hi - lo
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		idx := i * len(s.Y) / width
		v := s.Y[idx]
		m := 0
		if span > 0 {
			m = int((v - lo) / span * float64(len(marks)-1))
		}
		out[i] = marks[m]
	}
	return string(out)
}
