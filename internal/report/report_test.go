package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "col-a", "b")
	tb.AddRow("first", 1, 2.5)
	tb.AddRow("second-longer", 123.456, 0.000123)
	tb.AddRowStrings("third", "x", "y")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	for _, want := range []string{"col-a", "first", "second-longer", "123.5", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every line has the same structure: rows render as aligned columns.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+2+3 { // title + header + separator + 3 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 3 || tb.Label(1) != "second-longer" {
		t.Error("accessors broken")
	}
	if tb.Value(0, 1) != "2.5" {
		t.Errorf("Value(0,1) = %q", tb.Value(0, 1))
	}
}

func TestFormatNum(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		42:       "42",
		-3:       "-3",
		2.5:      "2.5",
		123.456:  "123.5",
		0.000123: "0.000123",
	}
	for v, want := range cases {
		if got := formatNum(v); got != want {
			t.Errorf("formatNum(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Sparkline(10) != "" || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty series should degrade gracefully")
	}
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i%10))
	}
	if s.Min() != 0 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 4.5 {
		t.Errorf("mean = %v", s.Mean())
	}
	spark := s.Sparkline(20)
	if len([]rune(spark)) != 20 {
		t.Errorf("sparkline width = %d", len([]rune(spark)))
	}
	// A flat series renders the lowest mark everywhere.
	var flat Series
	flat.Add(0, 5)
	flat.Add(1, 5)
	fs := flat.Sparkline(4)
	for _, r := range fs {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", fs)
		}
	}
}
