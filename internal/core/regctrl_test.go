package core

import (
	"testing"

	"greendimm/internal/sim"
)

func TestRegisterControllerLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	rc := NewRegisterController(eng, 16)
	if rc.DPDFraction() != 0 {
		t.Fatal("fresh controller not all-up")
	}
	if err := rc.EnterGroupDPD(3); err != nil {
		t.Fatal(err)
	}
	if err := rc.EnterGroupDPD(16); err == nil {
		t.Error("out-of-range group accepted")
	}
	if got := rc.DPDFraction(); got != 1.0/16 {
		t.Errorf("DPDFraction = %v", got)
	}
	fired := false
	readyAtStart := rc.Register().Ready(3)
	if readyAtStart {
		t.Error("group ready while down")
	}
	if err := rc.ExitGroupDPD(3, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("ready callback fired synchronously; must wait tDPDX")
	}
	eng.Run()
	if !fired || !rc.Register().Ready(3) {
		t.Error("exit handshake incomplete")
	}
	// 18ns exit, like the paper.
	if eng.Now() != 18*sim.Nanosecond {
		t.Errorf("exit took %v, want 18ns", eng.Now())
	}
}

func TestRegisterControllerTimeWeightedAverage(t *testing.T) {
	eng := sim.NewEngine()
	rc := NewRegisterController(eng, 4)
	if err := rc.EnterGroupDPD(0); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Second) // 1/4 down for 1s
	if err := rc.EnterGroupDPD(1); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * sim.Second) // 2/4 down for another 1s
	got := rc.AvgDPDFraction()
	want := (0.25 + 0.5) / 2
	if got < want-0.001 || got > want+0.001 {
		t.Errorf("AvgDPDFraction = %v, want %v", got, want)
	}
}
