// Package core implements GreenDIMM's software manager (paper §4.2): a
// daemon that periodically reads memory utilization, selects memory blocks
// to off-line when free capacity exceeds off_thr, on-lines blocks back
// when free capacity drops under on_thr, and programs the memory
// controller's sub-array-group register so off-lined DRAM enters the deep
// power-down state.
//
// The daemon is policy; mechanism lives below it: internal/hotplug for
// offline_pages()/online_pages() semantics, internal/kernel for the
// allocator, and any PowerController (a real cycle-level mc.Controller or
// the lightweight RegisterController for epoch-mode runs) for the DRAM
// side.
package core

import (
	"errors"
	"fmt"

	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/metrics"
	"greendimm/internal/sim"
)

// PowerController is the controller surface GreenDIMM programs.
// *mc.Controller satisfies it.
type PowerController interface {
	// EnterGroupDPD puts sub-array group g into deep power-down.
	EnterGroupDPD(g int) error
	// ExitGroupDPD wakes group g; ready fires once the group's Ready bit
	// sets (tDPDX later).
	ExitGroupDPD(g int, ready func()) error
}

// Config tunes the daemon. Zero values take paper defaults.
type Config struct {
	// Period is the memory_usage_monitor interval (paper: 1s).
	Period sim.Time
	// OffThr: off-line only while free memory stays above this fraction
	// of installed capacity (paper: 10% + alpha).
	OffThr float64
	// AdaptiveAlpha turns the paper's "+ alpha" into a live term: the
	// reserve grows by twice the largest used-memory jump observed over
	// the last 32 monitor periods, so bursty workloads keep headroom
	// (no swap storms) while stable ones off-line deeper.
	AdaptiveAlpha bool
	// OnThr: on-line blocks when free memory falls under this fraction.
	OnThr float64
	// Policy selects the block_selector pipeline (policy + tracker +
	// params). The zero value normalizes to the paper's free-first.
	Policy PolicySpec
	// MaxOfflinePerTick bounds off-linings per monitor tick (0 = 4).
	MaxOfflinePerTick int
	// MaxFailuresPerTick stops retrying selections after this many
	// failures in one tick (0 = 3).
	MaxFailuresPerTick int

	// GroupBytes is the capacity of one sub-array group (the power
	// management unit). 0 derives capacity/64. Must be a multiple or
	// divisor of the hotplug block size.
	GroupBytes int64
	// Groups is the number of sub-array groups (0 derives from
	// capacity/GroupBytes).
	Groups int

	// NeighborRule: a group may only power down when its sense-amp
	// partner (g XOR 1) is also fully off-lined (paper §6.1).
	NeighborRule bool

	// OfflinableBytes restricts off-lining to the first OfflinableBytes
	// of the address space... actually to blocks below this boundary
	// counted from the TOP of memory (the movablecore= region). 0 means
	// the whole memory is eligible.
	OfflinableBytes int64

	Seed int64
}

// Stats accumulates daemon activity.
type Stats struct {
	Ticks          int64
	Offlines       int64
	Onlines        int64
	EBusyFailures  int64
	EAgainFailures int64
	GroupsEntered  int64 // DPD entries
	GroupsExited   int64
	CPUTime        sim.Time // daemon + on/off-lining work
}

// Daemon is the GreenDIMM software manager.
type Daemon struct {
	eng  *sim.Engine
	mem  *kernel.Mem
	hp   *hotplug.Manager
	ctrl PowerController
	cfg  Config
	rng  *sim.RNG
	sel  *selector

	installedBytes int64
	groupBytes     int64
	groups         int
	offlineStack   []int // LIFO of off-lined block indexes
	groupOffBytes  []int64
	groupDown      []bool
	pendingExits   map[int]bool // groups mid-wake

	stall   func(sim.Time) // optional CPU-cost sink (workload core)
	running bool
	stats   Stats

	// Adaptive-alpha state: recent per-tick used-memory growth.
	lastUsedBytes int64
	growthRing    [32]int64
	growthIdx     int

	offlineBlocksTS *metrics.WeightedValue // time-weighted off-lined block count
	dpdFracTS       *metrics.WeightedValue
}

// New builds a daemon. The hotplug manager, kernel memory and controller
// must share one machine configuration.
func New(eng *sim.Engine, mem *kernel.Mem, hp *hotplug.Manager, ctrl PowerController, cfg Config) (*Daemon, error) {
	if cfg.Period == 0 {
		cfg.Period = sim.Second
	}
	if cfg.OffThr == 0 {
		cfg.OffThr = 0.10
	}
	if cfg.OnThr == 0 {
		cfg.OnThr = 0.05
	}
	if cfg.OnThr >= cfg.OffThr {
		return nil, fmt.Errorf("core: on_thr %v must be below off_thr %v", cfg.OnThr, cfg.OffThr)
	}
	if cfg.MaxOfflinePerTick == 0 {
		cfg.MaxOfflinePerTick = 4
	}
	if cfg.MaxFailuresPerTick == 0 {
		cfg.MaxFailuresPerTick = 3
	}
	installed := mem.NPages() * mem.PageBytes()
	groupBytes := cfg.GroupBytes
	if groupBytes == 0 {
		groupBytes = installed / 64
	}
	groups := cfg.Groups
	if groups == 0 {
		groups = int(installed / groupBytes)
	}
	if int64(groups)*groupBytes != installed {
		return nil, fmt.Errorf("core: %d groups x %d bytes != installed %d", groups, groupBytes, installed)
	}
	bb := hp.BlockBytes()
	if groupBytes%bb != 0 && bb%groupBytes != 0 {
		return nil, fmt.Errorf("core: group bytes %d incompatible with block bytes %d", groupBytes, bb)
	}
	if cfg.OfflinableBytes < 0 || cfg.OfflinableBytes > installed {
		return nil, fmt.Errorf("core: offlinable bytes %d out of range", cfg.OfflinableBytes)
	}
	sel, err := newSelector(cfg.Policy, hp.Blocks(), eng.Now())
	if err != nil {
		return nil, err
	}
	cfg.Policy = sel.spec
	d := &Daemon{
		eng: eng, mem: mem, hp: hp, ctrl: ctrl, cfg: cfg, sel: sel,
		rng:             sim.NewRNG(cfg.Seed ^ 0x677265656e),
		installedBytes:  installed,
		groupBytes:      groupBytes,
		groups:          groups,
		groupOffBytes:   make([]int64, groups),
		groupDown:       make([]bool, groups),
		pendingExits:    map[int]bool{},
		offlineBlocksTS: metrics.NewWeightedValue(0, eng.Now()),
		dpdFracTS:       metrics.NewWeightedValue(0, eng.Now()),
	}
	return d, nil
}

// SetStallSink routes the daemon's CPU cost into a workload core, so
// on/off-lining overhead shows up as execution-time degradation
// (Figs. 7 and 11).
func (d *Daemon) SetStallSink(fn func(sim.Time)) { d.stall = fn }

// Start begins periodic monitoring.
func (d *Daemon) Start() {
	if d.running {
		return
	}
	d.running = true
	d.armTick()
}

// Stop halts monitoring.
func (d *Daemon) Stop() { d.running = false }

func (d *Daemon) armTick() {
	d.eng.AfterDaemon(d.cfg.Period, func() {
		if !d.running {
			return
		}
		d.Tick()
		d.armTick()
	})
}

// charge accounts CPU time to the stall sink and the stats.
func (d *Daemon) charge(t sim.Time) {
	d.stats.CPUTime += t
	if d.stall != nil {
		d.stall(t)
	}
}

// Tick runs one memory_usage_monitor() pass. Exposed so epoch-mode
// experiments and the KSM full-pass hook can invoke it directly.
func (d *Daemon) Tick() {
	d.stats.Ticks++
	d.charge(2 * sim.Microsecond) // /proc/meminfo read + bookkeeping

	free, budget := d.freeAndBudget()
	offThrBytes := int64(d.cfg.OffThr*float64(budget)) + d.alphaBytes()
	onThrBytes := int64(d.cfg.OnThr * float64(budget))

	switch {
	case free > offThrBytes+d.hp.BlockBytes():
		d.offlinePass(free, offThrBytes)
	case free < onThrBytes:
		d.onlinePass(free, offThrBytes)
	}
}

// freeAndBudget returns the free-memory figure the thresholds compare
// against and the capacity they are fractions of. Unrestricted daemons use
// whole-machine numbers (the VM-server setup); region-restricted daemons
// (movablecore=, §5.2) use the off-linable region's free memory, since
// only that region can be reclaimed. Off-lined capacity counts as neither
// free nor budgeted — it is out of the address space.
func (d *Daemon) freeAndBudget() (free, budget int64) {
	if d.cfg.OfflinableBytes == 0 {
		mi := d.mem.Meminfo()
		return mi.FreeBytes, d.installedBytes
	}
	budget = d.cfg.OfflinableBytes
	if mv := d.mem.MovableZoneBytes(); mv == d.cfg.OfflinableBytes {
		return d.mem.MovableFreeBytes(), budget
	}
	// No matching movable zone: count free pages in the region directly.
	firstBlock := int((d.installedBytes - d.cfg.OfflinableBytes) / d.hp.BlockBytes())
	for b := firstBlock; b < d.hp.Blocks(); b++ {
		if d.hp.State(b) != hotplug.BlockOnline {
			continue
		}
		free += (d.hp.BlockBytes()/d.mem.PageBytes() - d.hp.UsedPages(b)) * d.mem.PageBytes()
	}
	return free, budget
}

// offlinePass off-lines blocks while free memory stays above the reserve.
func (d *Daemon) offlinePass(freeBytes, offThrBytes int64) {
	failures := 0
	offlined := 0
	attempted := d.sel.attempted
	clear(attempted)
	for offlined < d.cfg.MaxOfflinePerTick &&
		failures < d.cfg.MaxFailuresPerTick &&
		freeBytes > offThrBytes+d.hp.BlockBytes() {
		b := d.selectBlock(attempted)
		if b < 0 {
			return
		}
		attempted[b] = true
		lat, err := d.hp.Offline(b)
		d.charge(lat)
		switch {
		case err == nil:
			d.stats.Offlines++
			offlined++
			freeBytes -= d.hp.BlockBytes()
			d.offlineStack = append(d.offlineStack, b)
			d.offlineBlocksTS.Set(d.eng.Now(), float64(len(d.offlineStack)))
			d.sel.noteOffline(b, d.eng.Now())
			d.blockOfflined(b)
		case errors.Is(err, hotplug.ErrBusy):
			d.stats.EBusyFailures++
			failures++
		case errors.Is(err, hotplug.ErrAgain):
			d.stats.EAgainFailures++
			failures++
		default:
			failures++
		}
	}
}

// onlinePass brings blocks back until free memory recovers to the reserve
// target. The policy may veto individual on-linings (hysteresis holds
// fresh off-linings down); the pass takes the newest non-vetoed block,
// and under a unanimous veto overrides the policy on the newest block —
// memory pressure always wins over power savings.
func (d *Daemon) onlinePass(freeBytes, offThrBytes int64) {
	for freeBytes < offThrBytes && len(d.offlineStack) > 0 {
		idx := len(d.offlineStack) - 1
		for j := idx; j >= 0; j-- {
			if !d.keepOffline(d.offlineStack[j]) {
				idx = j
				break
			}
		}
		b := d.offlineStack[idx]
		copy(d.offlineStack[idx:], d.offlineStack[idx+1:])
		d.offlineStack = d.offlineStack[:len(d.offlineStack)-1]
		d.offlineBlocksTS.Set(d.eng.Now(), float64(len(d.offlineStack)))
		d.onlineBlock(b)
		freeBytes += d.hp.BlockBytes()
	}
}

// keepOffline consults the policy's on-lining veto for block b.
func (d *Daemon) keepOffline(b int) bool {
	v := &d.sel.view
	v.HP = d.hp
	v.RNG = d.rng
	v.Tracker = d.sel.tracker
	v.Now = d.eng.Now()
	v.OfflinedAt = d.sel.offlinedAt
	return d.sel.policy.KeepOffline(v, b)
}

// onlineBlock wakes the block's sub-array groups if needed, then on-lines
// the pages. The OS polls the controller Ready bit before online_pages
// (paper §4.2); here that is the ExitGroupDPD callback.
func (d *Daemon) onlineBlock(b int) {
	lo, hi := d.hp.AddrRange(b)
	finish := func() {
		lat, err := d.hp.Online(b)
		d.charge(lat)
		if err == nil {
			d.stats.Onlines++
		}
	}
	// Collect groups that must exit DPD first.
	var wake []int
	for g := int(int64(lo) / d.groupBytes); int64(g)*d.groupBytes < int64(hi); g++ {
		d.groupOffBytes[g] -= overlap(lo, hi, g, d.groupBytes)
		if d.groupDown[g] {
			wake = append(wake, g)
		}
		// A powered-down partner whose neighbor rule just broke must
		// wake too.
		if d.cfg.NeighborRule && d.groupDown[g^1] {
			wake = append(wake, g^1)
		}
	}
	if len(wake) == 0 {
		finish()
		return
	}
	remaining := 0
	for _, g := range wake {
		if !d.groupDown[g] || d.pendingExits[g] {
			continue
		}
		d.groupDown[g] = false
		d.pendingExits[g] = true
		remaining++
		g := g
		if err := d.ctrl.ExitGroupDPD(g, func() {
			delete(d.pendingExits, g)
			d.stats.GroupsExited++
			d.updateDPDFrac()
			remaining--
			if remaining == 0 {
				finish()
			}
		}); err != nil {
			panic(fmt.Sprintf("core: ExitGroupDPD(%d): %v", g, err))
		}
	}
	if remaining == 0 {
		finish()
	}
}

// blockOfflined updates group accounting and powers down groups that
// became fully off-lined (respecting the neighbor rule).
func (d *Daemon) blockOfflined(b int) {
	lo, hi := d.hp.AddrRange(b)
	for g := int(int64(lo) / d.groupBytes); int64(g)*d.groupBytes < int64(hi); g++ {
		d.groupOffBytes[g] += overlap(lo, hi, g, d.groupBytes)
	}
	// Re-evaluate every group the block touches plus neighbors.
	for g := int(int64(lo) / d.groupBytes); int64(g)*d.groupBytes < int64(hi); g++ {
		d.maybePowerDown(g)
		if d.cfg.NeighborRule {
			d.maybePowerDown(g ^ 1)
		}
	}
}

func (d *Daemon) maybePowerDown(g int) {
	if g < 0 || g >= d.groups || d.groupDown[g] || d.pendingExits[g] {
		return
	}
	if d.groupOffBytes[g] != d.groupBytes {
		return
	}
	if d.cfg.NeighborRule {
		partner := g ^ 1
		if partner < d.groups && d.groupOffBytes[partner] != d.groupBytes {
			return
		}
	}
	if err := d.ctrl.EnterGroupDPD(g); err != nil {
		panic(fmt.Sprintf("core: EnterGroupDPD(%d): %v", g, err))
	}
	d.groupDown[g] = true
	d.stats.GroupsEntered++
	d.updateDPDFrac()
}

func (d *Daemon) updateDPDFrac() {
	down := 0
	for _, v := range d.groupDown {
		if v {
			down++
		}
	}
	d.dpdFracTS.Set(d.eng.Now(), float64(down)/float64(d.groups))
}

// overlap returns the bytes of [lo,hi) inside group g.
func overlap(lo, hi uint64, g int, groupBytes int64) int64 {
	gLo := uint64(int64(g) * groupBytes)
	gHi := gLo + uint64(groupBytes)
	a, b := max(lo, gLo), min(hi, gHi)
	if b <= a {
		return 0
	}
	return int64(b - a)
}

// selectBlock implements block_selector() through the policy pipeline.
// attempted blocks are skipped within one tick. Returns -1 when no
// candidate exists.
func (d *Daemon) selectBlock(attempted map[int]bool) int {
	lastEligible := d.hp.Blocks() // exclusive bound of eligible indexes
	firstEligible := 0
	if d.cfg.OfflinableBytes > 0 {
		// The movable (off-linable) region is the TOP of memory.
		firstEligible = int((d.installedBytes - d.cfg.OfflinableBytes) / d.hp.BlockBytes())
	}
	v := &d.sel.view
	v.First, v.Last = firstEligible, lastEligible
	v.Attempted = attempted
	v.HP = d.hp
	v.RNG = d.rng
	v.Tracker = d.sel.tracker
	v.Now = d.eng.Now()
	v.OfflinedAt = d.sel.offlinedAt
	return d.sel.policy.PickVictim(v)
}

// PolicySpec reports the normalized policy pipeline the daemon runs.
func (d *Daemon) PolicySpec() PolicySpec { return d.cfg.Policy }

// AccessTap returns the per-page hook that feeds the tracker, or nil when
// the configured policy reads no tracker (the paper policies). The hook
// maps the page frame to its hotplug block and stamps the engine clock.
func (d *Daemon) AccessTap() func(pfn kernel.PFN) {
	if d.sel.tracker == nil {
		return nil
	}
	pageBytes := d.mem.PageBytes()
	blockBytes := d.hp.BlockBytes()
	blocks := d.hp.Blocks()
	tr := d.sel.tracker
	return func(pfn kernel.PFN) {
		b := int(int64(pfn) * pageBytes / blockBytes)
		if b >= 0 && b < blocks {
			tr.Observe(b, d.eng.Now())
		}
	}
}

// AttachKernelTap routes the kernel allocator's page events (allocations
// and frees) into the tracker. No-op for trackerless policies; runs that
// only drive footprint curves get block heat for free this way.
func (d *Daemon) AttachKernelTap() {
	tap := d.AccessTap()
	if tap == nil {
		return
	}
	d.mem.SetPageTap(func(pfn kernel.PFN, _ bool) { tap(pfn) })
}

// alphaBytes returns the adaptive reserve addition: twice the largest
// used-memory growth seen in the recent window (zero when disabled).
func (d *Daemon) alphaBytes() int64 {
	if !d.cfg.AdaptiveAlpha {
		return 0
	}
	used := d.mem.Meminfo().UsedBytes
	growth := used - d.lastUsedBytes
	d.lastUsedBytes = used
	if growth < 0 {
		growth = 0
	}
	d.growthRing[d.growthIdx] = growth
	d.growthIdx = (d.growthIdx + 1) % len(d.growthRing)
	var maxG int64
	for _, g := range d.growthRing {
		if g > maxG {
			maxG = g
		}
	}
	return 2 * maxG
}

// OfflinedBlocks reports currently off-lined block count.
func (d *Daemon) OfflinedBlocks() int { return len(d.offlineStack) }

// OfflinedBytes reports currently off-lined capacity.
func (d *Daemon) OfflinedBytes() int64 {
	return int64(len(d.offlineStack)) * d.hp.BlockBytes()
}

// DPDFraction reports the instantaneous fraction of groups powered down.
func (d *Daemon) DPDFraction() float64 { return d.dpdFracTS.Value() }

// AvgDPDFraction reports the time-weighted DPD fraction since start.
func (d *Daemon) AvgDPDFraction() float64 { return d.dpdFracTS.Average(d.eng.Now()) }

// AvgOfflinedBlocks reports the time-weighted off-lined block count.
func (d *Daemon) AvgOfflinedBlocks() float64 { return d.offlineBlocksTS.Average(d.eng.Now()) }

// Stats returns accumulated counters.
func (d *Daemon) Stats() Stats { return d.stats }

// Groups reports the number of sub-array groups managed.
func (d *Daemon) Groups() int { return d.groups }

// GroupBytes reports the power-management unit size.
func (d *Daemon) GroupBytes() int64 { return d.groupBytes }
