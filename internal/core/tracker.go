package core

import (
	"math"

	"greendimm/internal/sim"
)

// Tracker estimates per-block activity from the access stream the kernel
// and workload layers produce (page allocations, frees and touches routed
// through Daemon.AccessTap). Policies read trackers; they never write them.
//
// Determinism rules: trackers run on the single simulation goroutine and
// may only derive state from (block, now) observation pairs delivered in
// engine order — no wall clocks, no maps iterated for results, no RNG.
// Identical runs then produce identical tracker state at every tick,
// which is what keeps policy decisions — and therefore whole reports —
// byte-identical across repeats and parallelism levels.
type Tracker interface {
	Name() string
	// Observe records an access to block at simulation time now.
	Observe(block int, now sim.Time)
	// IdleAge returns how long the block has gone without an observed
	// access. Blocks never observed age from tracker construction.
	IdleAge(block int, now sim.Time) sim.Time
	// Heat returns a non-negative activity estimate; hotter blocks score
	// higher. Scales are tracker-specific — policies must only compare
	// heats from the same tracker instance.
	Heat(block int, now sim.Time) float64
}

// trackerDef binds a tracker's schema to its constructor. The spec passed
// to build is normalized: every param present, every value in range.
type trackerDef struct {
	info  TrackerInfo
	build func(spec PolicySpec, blocks int, start sim.Time) Tracker
}

var trackerDefs = []trackerDef{
	{
		info: TrackerInfo{
			Name: TrackerIdleAge,
			Help: "remembers each block's last access time; idle age is time since, heat is 1/(1+age_s)",
		},
		build: func(_ PolicySpec, blocks int, start sim.Time) Tracker {
			return newIdleAgeTracker(blocks, start)
		},
	},
	{
		info: TrackerInfo{
			Name: TrackerAccessCount,
			Help: "exponentially-decayed access counter per block; heat is the decayed count",
			Params: []ParamSpec{{
				Name: "halflife_s", Default: 10, Min: 0.01, Max: 1e6, Unit: "s",
				Help: "decay half-life of the per-block access counter",
			}},
		},
		build: func(spec PolicySpec, blocks int, start sim.Time) Tracker {
			return newAccessCountTracker(blocks, start, spec.param("halflife_s"))
		},
	},
}

func trackerDefByName(name string) (trackerDef, bool) {
	for _, d := range trackerDefs {
		if d.info.Name == name {
			return d, true
		}
	}
	return trackerDef{}, false
}

// idleAgeTracker keeps one timestamp per block.
type idleAgeTracker struct {
	last []sim.Time
}

func newIdleAgeTracker(blocks int, start sim.Time) *idleAgeTracker {
	t := &idleAgeTracker{last: make([]sim.Time, blocks)}
	for i := range t.last {
		t.last[i] = start
	}
	return t
}

func (t *idleAgeTracker) Name() string { return TrackerIdleAge }

func (t *idleAgeTracker) Observe(block int, now sim.Time) {
	if block >= 0 && block < len(t.last) {
		t.last[block] = now
	}
}

func (t *idleAgeTracker) IdleAge(block int, now sim.Time) sim.Time {
	age := now - t.last[block]
	if age < 0 {
		return 0
	}
	return age
}

func (t *idleAgeTracker) Heat(block int, now sim.Time) float64 {
	return 1 / (1 + t.IdleAge(block, now).Seconds())
}

// accessCountTracker keeps an exponentially-decayed access count per
// block, decayed lazily at observe/read time so idle blocks cost nothing.
type accessCountTracker struct {
	halflife  float64 // seconds
	count     []float64
	decayedAt []sim.Time
	lastTouch []sim.Time
}

func newAccessCountTracker(blocks int, start sim.Time, halflifeS float64) *accessCountTracker {
	t := &accessCountTracker{
		halflife:  halflifeS,
		count:     make([]float64, blocks),
		decayedAt: make([]sim.Time, blocks),
		lastTouch: make([]sim.Time, blocks),
	}
	for i := 0; i < blocks; i++ {
		t.decayedAt[i] = start
		t.lastTouch[i] = start
	}
	return t
}

func (t *accessCountTracker) Name() string { return TrackerAccessCount }

// decayed returns the block's count brought forward to now without
// mutating state (reads must not change what later reads see).
func (t *accessCountTracker) decayed(block int, now sim.Time) float64 {
	dt := (now - t.decayedAt[block]).Seconds()
	if dt <= 0 {
		return t.count[block]
	}
	return t.count[block] * math.Exp2(-dt/t.halflife)
}

func (t *accessCountTracker) Observe(block int, now sim.Time) {
	if block < 0 || block >= len(t.count) {
		return
	}
	t.count[block] = t.decayed(block, now) + 1
	t.decayedAt[block] = now
	t.lastTouch[block] = now
}

func (t *accessCountTracker) IdleAge(block int, now sim.Time) sim.Time {
	age := now - t.lastTouch[block]
	if age < 0 {
		return 0
	}
	return age
}

func (t *accessCountTracker) Heat(block int, now sim.Time) float64 {
	return t.decayed(block, now)
}
