package core

import (
	"encoding/json"
	"testing"
)

func TestParseSelectPolicy(t *testing.T) {
	for _, p := range []SelectPolicy{SelectFreeFirst, SelectRemovableFirst, SelectRandom} {
		got, err := ParseSelectPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSelectPolicy(%q) = %v, %v; want %v", p, got, err, p)
		}
	}
	if got, err := ParseSelectPolicy(""); err != nil || got != SelectFreeFirst {
		t.Errorf("ParseSelectPolicy(\"\") = %v, %v; want free-first", got, err)
	}
	if _, err := ParseSelectPolicy("bogus"); err == nil {
		t.Error("ParseSelectPolicy(\"bogus\") succeeded")
	}
}

func TestSelectPolicyJSONRoundTrip(t *testing.T) {
	type spec struct {
		Policy SelectPolicy `json:"policy"`
	}
	b, err := json.Marshal(spec{Policy: SelectRemovableFirst})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"policy":"removable-first"}`; string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
	var s spec
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Policy != SelectRemovableFirst {
		t.Errorf("round trip = %v, want removable-first", s.Policy)
	}
	if err := json.Unmarshal([]byte(`{"policy":"nope"}`), &s); err == nil {
		t.Error("unmarshal of unknown policy succeeded")
	}
}
