package core

import "greendimm/internal/sim"

// selector is the assembled block-selection pipeline: the normalized
// spec, the built policy and tracker, and the scratch state the daemon's
// hot path reuses tick over tick (the per-pass attempted set and the
// per-decision view) so selection stays allocation-free.
type selector struct {
	spec    PolicySpec
	policy  Policy
	tracker Tracker

	view       SelectView
	attempted  map[int]bool
	offlinedAt []sim.Time
}

// newSelector validates spec and builds the pipeline for a machine with
// the given hotplug block count. start seeds tracker idle ages.
func newSelector(spec PolicySpec, blocks int, start sim.Time) (*selector, error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	pd, ok := policyDefByName(norm.Name)
	if !ok { // Normalized() already vetted the name
		panic("core: normalized spec names unregistered policy " + norm.Name)
	}
	s := &selector{
		spec:       norm,
		policy:     pd.build(norm),
		attempted:  make(map[int]bool, blocks),
		offlinedAt: make([]sim.Time, blocks),
	}
	if norm.Tracker != "" {
		td, ok := trackerDefByName(norm.Tracker)
		if !ok {
			panic("core: normalized spec names unregistered tracker " + norm.Tracker)
		}
		s.tracker = td.build(norm, blocks, start)
	}
	return s, nil
}

// noteOffline records a successful off-lining for hysteresis-style vetoes.
func (s *selector) noteOffline(b int, now sim.Time) {
	s.offlinedAt[b] = now
}
