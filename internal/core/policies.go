package core

import (
	"greendimm/internal/hotplug"
	"greendimm/internal/sim"
)

// SelectView is the world a Policy sees for one decision: the eligible
// block index range [First, Last), hotplug state, the daemon RNG, the
// configured tracker (nil for the trackerless paper policies), and the
// per-block off-lining timestamps the selector maintains. The daemon
// reuses one view across calls, so policies must not retain it.
type SelectView struct {
	First, Last int
	Attempted   map[int]bool
	HP          *hotplug.Manager
	RNG         *sim.RNG
	Tracker     Tracker
	Now         sim.Time
	// OfflinedAt[b] is when block b last went offline (zero: never).
	OfflinedAt []sim.Time
}

// onlineFree reports an online, unattempted, fully-free block — the
// victim precondition shared by most policies.
func (v *SelectView) onlineFree(i int) bool {
	return v.HP.State(i) == hotplug.BlockOnline && !v.Attempted[i] && v.HP.FullyFree(i)
}

// online reports an online, unattempted block (migration allowed).
func (v *SelectView) online(i int) bool {
	return v.HP.State(i) == hotplug.BlockOnline && !v.Attempted[i]
}

// Policy is the decision stage of the block-selection pipeline: it ranks
// off-lining victims and vetoes on-linings. Implementations must be
// deterministic functions of the view (plus the view's RNG, consumed in a
// fixed order) and must not allocate on the pick path — selection runs
// inside the daemon tick, which holds a 0 allocs/op contract.
type Policy interface {
	Name() string
	// PickVictim returns the block to off-line next, or -1.
	PickVictim(v *SelectView) int
	// KeepOffline reports whether the policy vetoes on-lining block b.
	// The daemon overrides a unanimous veto under memory pressure by
	// taking the newest off-lined block anyway.
	KeepOffline(v *SelectView, b int) bool
}

// policyDef binds a policy's schema to its constructor. The spec passed
// to build is normalized: every param present, every value in range.
type policyDef struct {
	info  PolicyInfo
	build func(spec PolicySpec) Policy
}

var policyDefs = []policyDef{
	{
		info: PolicyInfo{
			Name: PolicyFreeFirst,
			Help: "paper §5.2 production policy: highest-addressed fully-free block first",
		},
		build: func(PolicySpec) Policy { return freeFirst{} },
	},
	{
		info: PolicyInfo{
			Name: PolicyRemovableFirst,
			Help: "paper §5.2: uniform pick among removable blocks, else any online block (migrating)",
		},
		build: func(PolicySpec) Policy { return &removableFirst{} },
	},
	{
		info: PolicyInfo{
			Name: PolicyRandom,
			Help: "paper Fig. 8 baseline: uniform pick among online blocks",
		},
		build: func(PolicySpec) Policy { return &randomPick{} },
	},
	{
		info: PolicyInfo{
			Name:           PolicyAgeThreshold,
			Help:           "off-line the fully-free block idle longest, once idle at least min_idle_s",
			DefaultTracker: TrackerIdleAge,
			Params: []ParamSpec{{
				Name: "min_idle_s", Default: 5, Min: 0, Max: 1e6, Unit: "s",
				Help: "minimum idle age before a block becomes a victim",
			}},
		},
		build: func(spec PolicySpec) Policy {
			return &ageThreshold{minIdle: sim.FromSeconds(spec.param("min_idle_s"))}
		},
	},
	{
		info: PolicyInfo{
			Name:           PolicyHeatTier,
			Help:           "bucket fully-free blocks into heat tiers; off-line the coldest block in the bottom tier",
			DefaultTracker: TrackerAccessCount,
			Params: []ParamSpec{{
				Name: "tiers", Default: 4, Min: 2, Max: 64,
				Help: "number of heat tiers; only blocks under max_heat/tiers are victims",
			}},
		},
		build: func(spec PolicySpec) Policy {
			return &heatTier{tiers: spec.param("tiers")}
		},
	},
	{
		info: PolicyInfo{
			Name:           PolicyHysteresis,
			Help:           "free-first victims, but veto on-lining a block off-lined less than hold_s ago",
			DefaultTracker: TrackerIdleAge,
			Params: []ParamSpec{{
				Name: "hold_s", Default: 10, Min: 0, Max: 1e6, Unit: "s",
				Help: "minimum time a block stays off-lined before it may come back",
			}},
		},
		build: func(spec PolicySpec) Policy {
			return &hysteresis{hold: sim.FromSeconds(spec.param("hold_s"))}
		},
	},
	{
		info: PolicyInfo{
			Name:           PolicyProactive,
			Help:           "off-line the longest-idle block regardless of use, migrating residents (min_idle_s gate)",
			DefaultTracker: TrackerIdleAge,
			Params: []ParamSpec{{
				Name: "min_idle_s", Default: 2, Min: 0, Max: 1e6, Unit: "s",
				Help: "minimum idle age before an in-use block is migrated away",
			}},
		},
		build: func(spec PolicySpec) Policy {
			return &proactiveOffline{minIdle: sim.FromSeconds(spec.param("min_idle_s"))}
		},
	},
}

func policyDefByName(name string) (policyDef, bool) {
	for _, d := range policyDefs {
		if d.info.Name == name {
			return d, true
		}
	}
	return policyDef{}, false
}

// freeFirst re-implements the seed enum's SelectFreeFirst scan exactly:
// highest-addressed fully-free block, no RNG consumed.
type freeFirst struct{}

func (freeFirst) Name() string { return PolicyFreeFirst }

func (freeFirst) PickVictim(v *SelectView) int {
	// Highest-addressed fully-free block: free memory pools at high
	// addresses, and off-lining top-down completes whole sub-array
	// groups fastest.
	for i := v.Last - 1; i >= v.First; i-- {
		if v.onlineFree(i) {
			return i
		}
	}
	return -1
}

func (freeFirst) KeepOffline(*SelectView, int) bool { return false }

// randomPick re-implements SelectRandom: build the online-candidates list
// in index order, then consume exactly one RNG draw. The scratch slice is
// reused so picks stay allocation-free after warm-up.
type randomPick struct {
	scratch []int
}

func (*randomPick) Name() string { return PolicyRandom }

func (p *randomPick) PickVictim(v *SelectView) int {
	candidates := p.scratch[:0]
	for i := v.First; i < v.Last; i++ {
		if v.online(i) {
			candidates = append(candidates, i)
		}
	}
	p.scratch = candidates
	if len(candidates) == 0 {
		return -1
	}
	return candidates[v.RNG.Intn(len(candidates))]
}

func (*randomPick) KeepOffline(*SelectView, int) bool { return false }

// removableFirst re-implements SelectRemovableFirst: uniform among
// removable blocks when any exist (one RNG draw), else uniform among the
// rest (one RNG draw) — the same draw sequence as the seed enum.
type removableFirst struct {
	removable, rest []int
}

func (*removableFirst) Name() string { return PolicyRemovableFirst }

func (p *removableFirst) PickVictim(v *SelectView) int {
	removable, rest := p.removable[:0], p.rest[:0]
	for i := v.First; i < v.Last; i++ {
		if !v.online(i) {
			continue
		}
		if v.HP.Removable(i) {
			removable = append(removable, i)
		} else {
			rest = append(rest, i)
		}
	}
	p.removable, p.rest = removable, rest
	if len(removable) > 0 {
		return removable[v.RNG.Intn(len(removable))]
	}
	if len(rest) > 0 {
		return rest[v.RNG.Intn(len(rest))]
	}
	return -1
}

func (*removableFirst) KeepOffline(*SelectView, int) bool { return false }

// ageThreshold picks the fully-free block with the greatest idle age, once
// that age clears min_idle_s. Ties break to the highest index (the scan is
// top-down and the comparison strict), matching free-first's address bias.
type ageThreshold struct {
	minIdle sim.Time
}

func (*ageThreshold) Name() string { return PolicyAgeThreshold }

func (p *ageThreshold) PickVictim(v *SelectView) int {
	best := -1
	var bestAge sim.Time
	for i := v.Last - 1; i >= v.First; i-- {
		if !v.onlineFree(i) {
			continue
		}
		age := v.Tracker.IdleAge(i, v.Now)
		if age < p.minIdle {
			continue
		}
		if best < 0 || age > bestAge {
			best, bestAge = i, age
		}
	}
	return best
}

func (*ageThreshold) KeepOffline(*SelectView, int) bool { return false }

// heatTier buckets fully-free blocks by tracker heat into `tiers` equal
// bands and only victimizes the bottom band, coldest block first. Ties
// break to the highest index.
type heatTier struct {
	tiers float64
}

func (*heatTier) Name() string { return PolicyHeatTier }

func (p *heatTier) PickVictim(v *SelectView) int {
	maxHeat, any := 0.0, false
	for i := v.First; i < v.Last; i++ {
		if !v.onlineFree(i) {
			continue
		}
		any = true
		if h := v.Tracker.Heat(i, v.Now); h > maxHeat {
			maxHeat = h
		}
	}
	if !any {
		return -1
	}
	cut := maxHeat / p.tiers
	best, bestHeat := -1, 0.0
	for i := v.Last - 1; i >= v.First; i-- {
		if !v.onlineFree(i) {
			continue
		}
		h := v.Tracker.Heat(i, v.Now)
		if h > cut {
			continue
		}
		if best < 0 || h < bestHeat {
			best, bestHeat = i, h
		}
	}
	return best
}

func (*heatTier) KeepOffline(*SelectView, int) bool { return false }

// hysteresis picks free-first victims but holds off-lined blocks down for
// hold_s: churny footprints stop bouncing the same block on and off every
// few ticks (Table 2's on/off event counts).
type hysteresis struct {
	hold sim.Time
}

func (*hysteresis) Name() string { return PolicyHysteresis }

func (p *hysteresis) PickVictim(v *SelectView) int {
	return freeFirst{}.PickVictim(v)
}

func (p *hysteresis) KeepOffline(v *SelectView, b int) bool {
	return v.Now-v.OfflinedAt[b] < p.hold
}

// proactiveOffline victimizes the longest-idle block even when it still
// holds pages — the migration cost is paid early, while the block is
// cold, instead of never (free-first) or randomly (random). Ties break to
// fewer used pages, then the highest index.
type proactiveOffline struct {
	minIdle sim.Time
}

func (*proactiveOffline) Name() string { return PolicyProactive }

func (p *proactiveOffline) PickVictim(v *SelectView) int {
	best := -1
	var bestAge sim.Time
	var bestUsed int64
	for i := v.Last - 1; i >= v.First; i-- {
		if !v.online(i) {
			continue
		}
		age := v.Tracker.IdleAge(i, v.Now)
		if age < p.minIdle {
			continue
		}
		used := v.HP.UsedPages(i)
		if best < 0 || age > bestAge || (age == bestAge && used < bestUsed) {
			best, bestAge, bestUsed = i, age, used
		}
	}
	return best
}

func (*proactiveOffline) KeepOffline(*SelectView, int) bool { return false }
