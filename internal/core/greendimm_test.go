package core

import (
	"testing"

	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

const (
	pageSize = 4096
	oneMB    = 1 << 20
)

// rig: 1GB memory, 32MB blocks, 64MB groups (2 blocks per group, 16 groups).
type rig struct {
	eng  *sim.Engine
	mem  *kernel.Mem
	hp   *hotplug.Manager
	ctrl *RegisterController
	d    *Daemon
}

func newRig(t *testing.T, cfg Config, kcfg kernel.Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	if kcfg.TotalBytes == 0 {
		kcfg = kernel.Config{TotalBytes: 1 << 30, PageBytes: pageSize}
	}
	mem, err := kernel.New(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: 32 * oneMB})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GroupBytes == 0 {
		cfg.GroupBytes = 64 * oneMB
	}
	ctrl := NewRegisterController(eng, int((kcfg.TotalBytes)/cfg.GroupBytes))
	d, err := New(eng, mem, hp, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, mem: mem, hp: hp, ctrl: ctrl, d: d}
}

func TestOfflinesFreeMemoryDownToReserve(t *testing.T) {
	r := newRig(t, Config{Period: 100 * sim.Millisecond, MaxOfflinePerTick: 32}, kernel.Config{})
	// 200MB used, 824MB free; off_thr 10% of 1GB = 102.4MB; blocks 32MB.
	if _, err := r.mem.AllocPages(200*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	r.d.Start()
	r.eng.RunUntil(2 * sim.Second)
	mi := r.mem.Meminfo()
	freeFrac := float64(mi.FreeBytes) / float64(1<<30)
	if freeFrac < 0.10 || freeFrac > 0.10+0.035 {
		t.Errorf("free fraction settled at %.3f, want just above 0.10", freeFrac)
	}
	// 824MB free - 102MB reserve -> ~22 blocks of 32MB off-lined.
	if got := r.d.OfflinedBlocks(); got < 20 || got > 23 {
		t.Errorf("off-lined blocks = %d, want ~22", got)
	}
	if r.d.Stats().Offlines != int64(r.d.OfflinedBlocks()) {
		t.Error("offline count mismatch")
	}
}

func TestGroupsEnterDPDWhenFullyOfflined(t *testing.T) {
	r := newRig(t, Config{Period: 100 * sim.Millisecond, MaxOfflinePerTick: 32}, kernel.Config{})
	if _, err := r.mem.AllocPages(200*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	r.d.Start()
	r.eng.RunUntil(2 * sim.Second)
	// 22 blocks off-lined from the top: 11 full groups. With the
	// neighbor rule off (default here), all fully-off groups power down.
	down := r.ctrl.Register().DownCount()
	want := r.d.OfflinedBlocks() / 2 // 2 blocks per group
	if down != want {
		t.Errorf("groups in DPD = %d, want %d", down, want)
	}
	if r.d.DPDFraction() != float64(down)/16 {
		t.Errorf("DPDFraction = %v", r.d.DPDFraction())
	}
	// Off-lining is top-down: the highest group must be down, group 0 up.
	if !r.ctrl.Register().Down(15) {
		t.Error("top group not powered down")
	}
	if r.ctrl.Register().Down(0) {
		t.Error("bottom group powered down despite live allocations")
	}
}

func TestOnlineOnPressure(t *testing.T) {
	r := newRig(t, Config{Period: 100 * sim.Millisecond, MaxOfflinePerTick: 32}, kernel.Config{})
	if _, err := r.mem.AllocPages(200*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	r.d.Start()
	r.eng.RunUntil(2 * sim.Second)
	offlined := r.d.OfflinedBlocks()
	if offlined == 0 {
		t.Fatal("setup: nothing off-lined")
	}
	// Allocate enough to push free below on_thr (5%): free is ~104MB;
	// grab 80MB.
	if _, err := r.mem.AllocPages(80*oneMB/pageSize, true, 6); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(r.eng.Now() + 2*sim.Second)
	if got := r.d.OfflinedBlocks(); got >= offlined {
		t.Errorf("no blocks on-lined under pressure: %d -> %d", offlined, got)
	}
	if r.d.Stats().Onlines == 0 {
		t.Error("online count zero")
	}
	// Free memory recovered above on_thr.
	mi := r.mem.Meminfo()
	if float64(mi.FreeBytes)/float64(1<<30) < 0.05 {
		t.Errorf("free still below on_thr: %d", mi.FreeBytes)
	}
	// Groups that had powered down and were re-onlined must be Ready.
	reg := r.ctrl.Register()
	for g := 0; g < reg.Groups(); g++ {
		if !reg.Down(g) && !reg.Ready(g) {
			t.Errorf("group %d neither down nor ready", g)
		}
	}
}

func TestNeighborRuleGatesDPD(t *testing.T) {
	// With the neighbor rule, a group powers down only when its partner
	// (g^1) is fully off-lined too.
	r := newRig(t, Config{
		Period: 100 * sim.Millisecond, MaxOfflinePerTick: 1, NeighborRule: true,
	}, kernel.Config{})
	// Use memory so only 3 blocks (1.5 groups) can be off-lined: free
	// starts at 204MB; each 32MB off-lining must leave free > 134MB
	// (reserve + one block), so exactly 3 succeed.
	if _, err := r.mem.AllocPages(820*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	r.d.Start()
	r.eng.RunUntil(5 * sim.Second)
	if got := r.d.OfflinedBlocks(); got != 3 {
		t.Fatalf("off-lined %d blocks, want 3", got)
	}
	// Blocks 31,30 (group 15) and 29 (half of group 14): group 15 has its
	// partner 14 incomplete -> with the neighbor rule NEITHER powers down.
	if got := r.ctrl.Register().DownCount(); got != 0 {
		t.Errorf("groups down = %d, want 0 under neighbor rule", got)
	}
	// Same scenario without the rule: group 15 powers down.
	r2 := newRig(t, Config{Period: 100 * sim.Millisecond, MaxOfflinePerTick: 1}, kernel.Config{})
	if _, err := r2.mem.AllocPages(820*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	r2.d.Start()
	r2.eng.RunUntil(5 * sim.Second)
	if got := r2.ctrl.Register().DownCount(); got != 1 {
		t.Errorf("groups down = %d without neighbor rule, want 1", got)
	}
}

func TestOfflinableRegionBound(t *testing.T) {
	// Restricting off-lining to the top 128MB (4 blocks) also scopes the
	// thresholds to the region: off_thr reserves 10% of 128MB, so with
	// everything free the daemon stops once region free (128, 96, 64MB
	// before each attempt) would drop under reserve+block = 44.8MB:
	// exactly 3 of the 4 region blocks off-line.
	r := newRig(t, Config{
		Period: 50 * sim.Millisecond, MaxOfflinePerTick: 8,
		OfflinableBytes: 128 * oneMB,
	}, kernel.Config{})
	r.d.Start()
	r.eng.RunUntil(2 * sim.Second)
	if got := r.d.OfflinedBlocks(); got != 3 {
		t.Errorf("off-lined %d blocks, want 3 (region-bound)", got)
	}
	for i := 0; i < 28; i++ {
		if r.hp.State(i) == hotplug.BlockOffline {
			t.Errorf("block %d outside the off-linable region was off-lined", i)
		}
	}
}

func TestSelectionPolicies(t *testing.T) {
	// Random picks used blocks -> failures; free-first never fails.
	mkrig := func(policy PolicySpec) *Daemon {
		eng := sim.NewEngine()
		mem, err := kernel.New(kernel.Config{
			TotalBytes: 1 << 30, PageBytes: pageSize,
			KernelReservedBytes: 16 * oneMB, UnmovableLeakEvery: 3, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		hp, err := hotplug.New(mem, hotplug.Config{
			BlockBytes: 32 * oneMB, MigrateAttemptFailProb: 0.9, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctrl := NewRegisterController(eng, 16)
		d, err := New(eng, mem, hp, ctrl, Config{
			Period: 50 * sim.Millisecond, Policy: policy, Seed: 42, GroupBytes: 64 * oneMB,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Scatter some movable allocations mid-memory.
		if _, err := mem.AllocPages(300*oneMB/pageSize, true, 5); err != nil {
			t.Fatal(err)
		}
		d.Start()
		eng.RunUntil(3 * sim.Second)
		return d
	}
	free := mkrig(PolicySpec{Name: PolicyFreeFirst})
	random := mkrig(PolicySpec{Name: PolicyRandom})
	if f := free.Stats(); f.EBusyFailures+f.EAgainFailures != 0 {
		t.Errorf("free-first policy failed %d times", f.EBusyFailures+f.EAgainFailures)
	}
	if f := random.Stats(); f.EBusyFailures+f.EAgainFailures == 0 {
		t.Error("random policy never failed; unrealistic for used blocks")
	}
	// Fig. 8: removable-first fails less than random.
	rem := mkrig(PolicySpec{Name: PolicyRemovableFirst})
	rf := rem.Stats().EBusyFailures + rem.Stats().EAgainFailures
	rnd := random.Stats().EBusyFailures + random.Stats().EAgainFailures
	if rf >= rnd {
		t.Errorf("removable-first failures (%d) not below random (%d)", rf, rnd)
	}
}

func TestStallSinkCharged(t *testing.T) {
	r := newRig(t, Config{Period: 100 * sim.Millisecond, MaxOfflinePerTick: 8}, kernel.Config{})
	var charged sim.Time
	r.d.SetStallSink(func(d sim.Time) { charged += d })
	r.d.Start()
	r.eng.RunUntil(1 * sim.Second)
	if charged == 0 {
		t.Error("no CPU time charged to the stall sink")
	}
	if charged != r.d.Stats().CPUTime {
		t.Errorf("stall sink %v != stats CPU %v", charged, r.d.Stats().CPUTime)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	mem, _ := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: pageSize})
	hp, _ := hotplug.New(mem, hotplug.Config{BlockBytes: 32 * oneMB})
	ctrl := NewRegisterController(eng, 16)
	if _, err := New(eng, mem, hp, ctrl, Config{OffThr: 0.05, OnThr: 0.10}); err == nil {
		t.Error("inverted thresholds accepted")
	}
	if _, err := New(eng, mem, hp, ctrl, Config{GroupBytes: 48 * oneMB}); err == nil {
		t.Error("group size incompatible with blocks accepted")
	}
	if _, err := New(eng, mem, hp, ctrl, Config{GroupBytes: 100 * oneMB}); err == nil {
		t.Error("non-divisor group size accepted")
	}
	if _, err := New(eng, mem, hp, ctrl, Config{OfflinableBytes: 2 << 30}); err == nil {
		t.Error("oversized offlinable region accepted")
	}
	d, err := New(eng, mem, hp, ctrl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Groups() != 64 || d.GroupBytes() != (1<<30)/64 {
		t.Errorf("defaults: groups=%d groupBytes=%d", d.Groups(), d.GroupBytes())
	}
}

func TestBlockLargerThanGroup(t *testing.T) {
	// 512MB-style case (paper §5.1): one block spans several groups; all
	// of them power down when the block off-lines.
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: 128 * oneMB})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewRegisterController(eng, 32) // 32MB groups: 4 per block
	d, err := New(eng, mem, hp, ctrl, Config{
		Period: 50 * sim.Millisecond, GroupBytes: 32 * oneMB, MaxOfflinePerTick: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.AllocPages(700*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunUntil(2 * sim.Second)
	// free = 324MB, reserve 102MB -> 1 block of 128MB off-lined
	// (a second would leave 68MB < reserve+block).
	if got := d.OfflinedBlocks(); got != 1 {
		t.Fatalf("off-lined %d blocks, want 1", got)
	}
	if got := ctrl.Register().DownCount(); got != 4 {
		t.Errorf("groups down = %d, want 4 (whole block)", got)
	}
}

func TestTimeSeriesAverages(t *testing.T) {
	r := newRig(t, Config{Period: 100 * sim.Millisecond, MaxOfflinePerTick: 32}, kernel.Config{})
	r.d.Start()
	r.eng.RunUntil(4 * sim.Second)
	if r.d.AvgOfflinedBlocks() <= 0 {
		t.Error("average off-lined blocks not tracked")
	}
	if avg := r.d.AvgDPDFraction(); avg <= 0 || avg > 1 {
		t.Errorf("average DPD fraction = %v", avg)
	}
	if r.d.Stats().Ticks < 30 {
		t.Errorf("ticks = %d, want ~40", r.d.Stats().Ticks)
	}
}

func TestNeighborWakeOnOnline(t *testing.T) {
	// With the neighbor rule, on-lining a block whose group's PARTNER is
	// powered down must wake the partner too (its sense-amp sharing means
	// it cannot stay gated while the neighbor serves traffic).
	r := newRig(t, Config{
		Period: 100 * sim.Millisecond, MaxOfflinePerTick: 32, NeighborRule: true,
	}, kernel.Config{})
	if _, err := r.mem.AllocPages(200*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	r.d.Start()
	r.eng.RunUntil(2 * sim.Second)
	down := r.ctrl.Register().DownCount()
	if down == 0 {
		t.Fatal("setup: no groups powered down")
	}
	// Create pressure: the daemon on-lines blocks; every wake must leave
	// no group violating the pairing invariant.
	if _, err := r.mem.AllocPages(90*oneMB/pageSize, true, 6); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(r.eng.Now() + 2*sim.Second)
	reg := r.ctrl.Register()
	for g := 0; g < reg.Groups(); g += 2 {
		a, b := reg.Down(g), reg.Down(g+1)
		// Pairing invariant: a group may only be down when its partner is
		// fully off-lined; since blocks on-line LIFO within groups, a
		// down group whose partner has online blocks is a bug.
		if a != b {
			// The partner must at least be fully off-lined.
			partner := g + 1
			if a {
				partner = g
			}
			lo := int64(partner) * (64 * oneMB) / (32 * oneMB)
			for b0 := lo; b0 < lo+2; b0++ {
				if r.hp.State(int(b0)) == hotplug.BlockOnline {
					t.Fatalf("group %d down while partner %d has online block %d", g, partner, b0)
				}
			}
		}
	}
}

func TestMaxFailuresPerTickBoundsRetries(t *testing.T) {
	// A daemon facing only failing candidates gives up after the
	// configured failure budget each tick.
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: 1 << 30, PageBytes: pageSize,
		KernelReservedBytes: 8 * oneMB, UnmovableLeakEvery: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hotplug.New(mem, hotplug.Config{
		BlockBytes: 32 * oneMB, MigrateAttemptFailProb: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewRegisterController(eng, 16)
	d, err := New(eng, mem, hp, ctrl, Config{
		Period: 100 * sim.Millisecond, Policy: PolicySpec{Name: PolicyRandom},
		GroupBytes: 64 * oneMB, MaxFailuresPerTick: 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Make every block contain used pages so every attempt fails.
	if _, err := mem.AllocPages(700*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunUntil(1 * sim.Second)
	st := d.Stats()
	failures := st.EBusyFailures + st.EAgainFailures
	if failures == 0 {
		t.Fatal("no failures despite poisoned blocks")
	}
	if max := st.Ticks * 2; failures > max {
		t.Errorf("failures %d exceed budget of 2/tick over %d ticks", failures, st.Ticks)
	}
}
