package core

import "fmt"

// ParseSelectPolicy maps the String() names ("free-first",
// "removable-first", "random") back to policies. The empty string parses
// to SelectFreeFirst so serialized job specs can omit the field.
func ParseSelectPolicy(s string) (SelectPolicy, error) {
	switch s {
	case "", SelectFreeFirst.String():
		return SelectFreeFirst, nil
	case SelectRemovableFirst.String():
		return SelectRemovableFirst, nil
	case SelectRandom.String():
		return SelectRandom, nil
	}
	return SelectFreeFirst, fmt.Errorf("core: unknown select policy %q (want %s, %s or %s)",
		s, SelectFreeFirst, SelectRemovableFirst, SelectRandom)
}

// MarshalText serializes the policy by name, so Config round-trips through
// JSON job specs.
func (p SelectPolicy) MarshalText() ([]byte, error) {
	if p < SelectFreeFirst || p > SelectRandom {
		return nil, fmt.Errorf("core: cannot marshal invalid select policy %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText parses a policy name.
func (p *SelectPolicy) UnmarshalText(b []byte) error {
	v, err := ParseSelectPolicy(string(b))
	if err != nil {
		return err
	}
	*p = v
	return nil
}
