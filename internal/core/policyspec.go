package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Registered policy names. The first three are the paper's block_selector
// heuristics (§5.2, Fig. 8), re-implemented as pipeline policies; the
// rest are tracker-driven policies in the style of Intel's memtierd.
const (
	PolicyFreeFirst      = "free-first"
	PolicyRemovableFirst = "removable-first"
	PolicyRandom         = "random"
	PolicyAgeThreshold   = "age-threshold"
	PolicyHeatTier       = "heat-tier"
	PolicyHysteresis     = "hysteresis"
	PolicyProactive      = "proactive-offline"
)

// Registered tracker names.
const (
	TrackerIdleAge     = "idle-age"
	TrackerAccessCount = "access-count"
)

// PolicySpec is the serializable description of a block-selection
// pipeline: a policy name, the tracker feeding it, and typed parameters.
// It is the wire form of the daemon's `policy` field everywhere — JSON
// job specs, -policy-config files, GET /v1/policies defaults.
//
// Two JSON forms parse: the structured object
//
//	{"name": "age-threshold", "tracker": "idle-age", "params": {"min_idle_s": 5}}
//
// and, for the three paper policies, the legacy bare string "free-first".
// A canonical legacy spec (paper policy, no tracker, no params) marshals
// BACK to the bare string, so job specs written either way produce
// byte-identical normalized JSON — and therefore identical spec hashes.
type PolicySpec struct {
	Name    string             `json:"name"`
	Tracker string             `json:"tracker,omitempty"`
	Params  map[string]float64 `json:"params,omitempty"`
}

// IsZero reports a wholly unset spec (callers default it to free-first).
func (s PolicySpec) IsZero() bool {
	return s.Name == "" && s.Tracker == "" && len(s.Params) == 0
}

// legacyCanonical reports whether the spec is exactly one of the paper
// policies in its default shape — the form that serializes as a bare
// string for hash compatibility with the pre-pipeline enum.
func (s PolicySpec) legacyCanonical() bool {
	if s.Tracker != "" || len(s.Params) != 0 {
		return false
	}
	switch s.Name {
	case PolicyFreeFirst, PolicyRemovableFirst, PolicyRandom:
		return true
	}
	return false
}

// specJSON is the object form, kept separate so PolicySpec's own
// MarshalJSON can choose between string and object without recursing.
type specJSON struct {
	Name    string             `json:"name"`
	Tracker string             `json:"tracker,omitempty"`
	Params  map[string]float64 `json:"params,omitempty"`
}

// MarshalJSON emits the bare policy name for canonical legacy specs and
// the structured object otherwise. encoding/json sorts the params map's
// keys, so object output is deterministic too.
func (s PolicySpec) MarshalJSON() ([]byte, error) {
	if s.legacyCanonical() || s.IsZero() {
		return json.Marshal(s.Name)
	}
	return json.Marshal(specJSON(s))
}

// UnmarshalJSON accepts both the bare-string and the object form. Object
// keys are strict: an unknown field is a spec error, not a silent default.
func (s *PolicySpec) UnmarshalJSON(b []byte) error {
	trimmed := bytes.TrimSpace(b)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return err
		}
		*s = PolicySpec{Name: name}
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var obj specJSON
	if err := dec.Decode(&obj); err != nil {
		return fmt.Errorf("core: policy spec: %w", err)
	}
	*s = PolicySpec(obj)
	return nil
}

// ParamSpec describes one typed policy or tracker parameter: its valid
// range and the default that normalization makes explicit.
type ParamSpec struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Unit    string  `json:"unit,omitempty"`
	Help    string  `json:"help"`
}

// PolicyInfo is one registered policy's schema, served by /v1/policies.
type PolicyInfo struct {
	Name string `json:"name"`
	Help string `json:"help"`
	// DefaultTracker names the tracker the policy consumes when the spec
	// leaves it unset; empty means the policy reads no tracker at all
	// (the paper policies scan hotplug state directly).
	DefaultTracker string      `json:"default_tracker,omitempty"`
	Params         []ParamSpec `json:"params,omitempty"`
}

// TrackerInfo is one registered tracker's schema.
type TrackerInfo struct {
	Name   string      `json:"name"`
	Help   string      `json:"help"`
	Params []ParamSpec `json:"params,omitempty"`
}

// PolicyInfos lists every registered policy, sorted by name.
func PolicyInfos() []PolicyInfo {
	out := make([]PolicyInfo, 0, len(policyDefs))
	for _, d := range policyDefs {
		out = append(out, d.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TrackerInfos lists every registered tracker, sorted by name.
func TrackerInfos() []TrackerInfo {
	out := make([]TrackerInfo, 0, len(trackerDefs))
	for _, d := range trackerDefs {
		out = append(out, d.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Normalized validates the spec and returns it with every default made
// explicit: an empty name becomes free-first, a tracker-driven policy
// gets its default tracker, and the params map is completed with the
// schema defaults for the (policy, tracker) pair. Equivalent specs
// normalize equal, which is what makes them hash equal; invalid names,
// unknown params and out-of-range values are rejected here — at spec
// time, not daemon-construction time.
func (s PolicySpec) Normalized() (PolicySpec, error) {
	if s.Name == "" {
		if s.Tracker != "" || len(s.Params) != 0 {
			return s, fmt.Errorf("core: policy spec has tracker/params but no name")
		}
		s.Name = PolicyFreeFirst
	}
	pd, ok := policyDefByName(s.Name)
	if !ok {
		return s, fmt.Errorf("core: unknown policy %q (known: %s)", s.Name, strings.Join(policyNames(), ", "))
	}
	if pd.info.DefaultTracker == "" {
		// Trackerless policies take no tracker and no params; rejecting
		// rather than ignoring keeps equivalent specs from hashing apart.
		if s.Tracker != "" {
			return s, fmt.Errorf("core: policy %q reads no tracker (got %q)", s.Name, s.Tracker)
		}
		if len(s.Params) != 0 {
			return s, fmt.Errorf("core: policy %q takes no params", s.Name)
		}
		return PolicySpec{Name: s.Name}, nil
	}
	if s.Tracker == "" {
		s.Tracker = pd.info.DefaultTracker
	}
	td, ok := trackerDefByName(s.Tracker)
	if !ok {
		return s, fmt.Errorf("core: unknown tracker %q (known: %s)", s.Tracker, strings.Join(trackerNames(), ", "))
	}
	schema := append(append([]ParamSpec{}, pd.info.Params...), td.info.Params...)
	params := make(map[string]float64, len(schema))
	for _, p := range schema {
		params[p.Name] = p.Default
	}
	for name, v := range s.Params {
		spec, ok := findParam(schema, name)
		if !ok {
			return s, fmt.Errorf("core: policy %q/%q: unknown param %q (known: %s)",
				s.Name, s.Tracker, name, strings.Join(paramNames(schema), ", "))
		}
		if v < spec.Min || v > spec.Max {
			return s, fmt.Errorf("core: policy %q: param %q = %g out of [%g, %g]",
				s.Name, name, v, spec.Min, spec.Max)
		}
		params[name] = v
	}
	if len(params) == 0 {
		params = nil
	}
	return PolicySpec{Name: s.Name, Tracker: s.Tracker, Params: params}, nil
}

// Fingerprint renders the canonical compact form used in memo keys:
// the bare name for legacy specs, name/tracker{k=v,...} otherwise.
// Call on the normalized form.
func (s PolicySpec) Fingerprint() string {
	if s.legacyCanonical() {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('/')
	b.WriteString(s.Tracker)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, s.Params[k])
	}
	b.WriteByte('}')
	return b.String()
}

// param returns the normalized spec's value for name. Call only on
// normalized specs, whose params are complete; missing names panic
// because they are construction bugs, not user errors.
func (s PolicySpec) param(name string) float64 {
	v, ok := s.Params[name]
	if !ok {
		panic(fmt.Sprintf("core: param %q missing from normalized spec %s", name, s.Fingerprint()))
	}
	return v
}

func findParam(schema []ParamSpec, name string) (ParamSpec, bool) {
	for _, p := range schema {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

func paramNames(schema []ParamSpec) []string {
	out := make([]string, len(schema))
	for i, p := range schema {
		out[i] = p.Name
	}
	return out
}

func policyNames() []string {
	out := make([]string, 0, len(policyDefs))
	for _, d := range policyDefs {
		out = append(out, d.info.Name)
	}
	sort.Strings(out)
	return out
}

func trackerNames() []string {
	out := make([]string, 0, len(trackerDefs))
	for _, d := range trackerDefs {
		out = append(out, d.info.Name)
	}
	sort.Strings(out)
	return out
}
