package core

import (
	"greendimm/internal/dram"
	"greendimm/internal/metrics"
	"greendimm/internal/sim"
)

// RegisterController is a lightweight PowerController for epoch-mode
// simulations (the 24-hour VM-trace experiments), where running a
// cycle-level memory controller would mean hundreds of billions of refresh
// events. It keeps the same sub-array-group register semantics and exit
// latency, and integrates the time-weighted DPD fraction the power model
// needs — it just serves no memory requests.
type RegisterController struct {
	eng   *sim.Engine
	reg   *dram.SubArrayGroupRegister
	tDPDX sim.Time
	frac  *metrics.WeightedValue
}

// NewRegisterController builds a controller over n sub-array groups with
// the standard 18ns deep power-down exit.
func NewRegisterController(eng *sim.Engine, n int) *RegisterController {
	return &RegisterController{
		eng:   eng,
		reg:   dram.NewSubArrayGroupRegisterN(n),
		tDPDX: 18 * sim.Nanosecond,
		frac:  metrics.NewWeightedValue(0, eng.Now()),
	}
}

// EnterGroupDPD implements PowerController.
func (r *RegisterController) EnterGroupDPD(g int) error {
	if err := r.reg.EnterDPD(g); err != nil {
		return err
	}
	r.frac.Set(r.eng.Now(), r.reg.DownFraction())
	return nil
}

// ExitGroupDPD implements PowerController.
func (r *RegisterController) ExitGroupDPD(g int, ready func()) error {
	if err := r.reg.BeginExit(g); err != nil {
		return err
	}
	r.frac.Set(r.eng.Now(), r.reg.DownFraction())
	r.eng.After(r.tDPDX, func() {
		r.reg.CompleteExit(g)
		if ready != nil {
			ready()
		}
	})
	return nil
}

// Register exposes the underlying register.
func (r *RegisterController) Register() *dram.SubArrayGroupRegister { return r.reg }

// AvgDPDFraction reports the time-weighted fraction of groups in deep
// power-down since construction.
func (r *RegisterController) AvgDPDFraction() float64 {
	return r.frac.Average(r.eng.Now())
}

// DPDFraction reports the instantaneous fraction.
func (r *RegisterController) DPDFraction() float64 { return r.frac.Value() }
