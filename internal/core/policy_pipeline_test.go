package core

import (
	"encoding/json"
	"math"
	"testing"

	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

func TestPolicySpecNormalization(t *testing.T) {
	// The zero spec is the paper's production policy.
	norm, err := PolicySpec{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Name != PolicyFreeFirst || norm.Tracker != "" || norm.Params != nil {
		t.Errorf("zero spec normalized to %+v, want bare free-first", norm)
	}

	// Tracker-driven policies fill their default tracker and every param.
	norm, err = PolicySpec{Name: PolicyAgeThreshold}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Tracker != TrackerIdleAge {
		t.Errorf("tracker = %q, want default idle-age", norm.Tracker)
	}
	if norm.Params["min_idle_s"] != 5 {
		t.Errorf("params = %v, want min_idle_s default 5", norm.Params)
	}
	// Normalization is idempotent.
	again, err := norm.Normalized()
	if err != nil || again.Fingerprint() != norm.Fingerprint() {
		t.Errorf("not idempotent: %v, %s vs %s", err, again.Fingerprint(), norm.Fingerprint())
	}
	// A tracker's own params join the schema.
	norm, err = PolicySpec{Name: PolicyHeatTier}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Params["tiers"] != 4 || norm.Params["halflife_s"] != 10 {
		t.Errorf("heat-tier params = %v, want tiers=4 halflife_s=10", norm.Params)
	}

	bad := []PolicySpec{
		{Name: "bogus"},
		{Tracker: TrackerIdleAge},                                                                    // tracker without a name
		{Name: PolicyFreeFirst, Tracker: TrackerIdleAge},                                             // trackerless policy + tracker
		{Name: PolicyRandom, Params: map[string]float64{"x": 1}},                                     // trackerless policy + params
		{Name: PolicyAgeThreshold, Tracker: "bogus"},                                                 // unknown tracker
		{Name: PolicyAgeThreshold, Params: map[string]float64{"nope": 1}},                            // unknown param
		{Name: PolicyHeatTier, Params: map[string]float64{"tiers": 1000}},                            // out of range
		{Name: PolicyHysteresis, Params: map[string]float64{"hold_s": -1}},                           // below min
		{Name: PolicyHeatTier, Tracker: TrackerIdleAge, Params: map[string]float64{"halflife_s": 3}}, // param of the non-selected tracker
	}
	for _, s := range bad {
		if _, err := s.Normalized(); err == nil {
			t.Errorf("spec %+v normalized without error", s)
		}
	}
}

func TestPolicySpecJSONForms(t *testing.T) {
	// Canonical legacy specs marshal to the pre-pipeline bare string.
	b, err := json.Marshal(PolicySpec{Name: PolicyRemovableFirst})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"removable-first"` {
		t.Errorf("legacy spec marshaled to %s, want bare string", b)
	}
	// Tracker-backed specs marshal to the object form and round-trip.
	spec, err := PolicySpec{Name: PolicyAgeThreshold}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b, err = json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != '{' {
		t.Errorf("tracker-backed spec marshaled to %s, want an object", b)
	}
	var back PolicySpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != spec.Fingerprint() {
		t.Errorf("round trip changed the spec: %s vs %s", back.Fingerprint(), spec.Fingerprint())
	}
	// Both wire forms parse.
	if err := json.Unmarshal([]byte(`"random"`), &back); err != nil || back.Name != PolicyRandom {
		t.Errorf("bare string form: %v, %+v", err, back)
	}
	// Unknown object keys are spec errors, not silent defaults.
	if err := json.Unmarshal([]byte(`{"name":"random","oops":1}`), &back); err == nil {
		t.Error("unknown policy object key accepted")
	}
}

func TestTrackerIdleAge(t *testing.T) {
	tr := newIdleAgeTracker(4, 2*sim.Second)
	// Unobserved blocks age from construction.
	if got := tr.IdleAge(0, 10*sim.Second); got != 8*sim.Second {
		t.Errorf("unobserved idle age = %v, want 8s", got)
	}
	tr.Observe(0, 9*sim.Second)
	if got := tr.IdleAge(0, 10*sim.Second); got != 1*sim.Second {
		t.Errorf("idle age after observe = %v, want 1s", got)
	}
	// Ages never go negative, and heat falls with age.
	if got := tr.IdleAge(0, 8*sim.Second); got != 0 {
		t.Errorf("negative age not clamped: %v", got)
	}
	if h0, h1 := tr.Heat(0, 10*sim.Second), tr.Heat(1, 10*sim.Second); h0 <= h1 {
		t.Errorf("recently-touched heat %v not above idle heat %v", h0, h1)
	}
	// Out-of-range observes are ignored, not panics (taps cover the whole
	// machine; trackers only the managed blocks).
	tr.Observe(-1, sim.Second)
	tr.Observe(99, sim.Second)
}

func TestTrackerAccessCountDecay(t *testing.T) {
	tr := newAccessCountTracker(2, 0, 10) // 10s half-life
	tr.Observe(0, 0)
	tr.Observe(0, 0)
	if got := tr.Heat(0, 0); got != 2 {
		t.Fatalf("heat after two observes = %v, want 2", got)
	}
	// One half-life on: half the count. Reads must not mutate state, so a
	// second read at the same instant sees the same value.
	if got := tr.Heat(0, 10*sim.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("heat after one half-life = %v, want 1", got)
	}
	if got := tr.Heat(0, 10*sim.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("second read diverged: %v (reads must be pure)", got)
	}
	// Observing decays first, then adds one.
	tr.Observe(0, 10*sim.Second)
	if got := tr.Heat(0, 10*sim.Second); math.Abs(got-2) > 1e-9 {
		t.Errorf("heat after decayed observe = %v, want 2", got)
	}
	// IdleAge tracks the last touch, independent of the decayed count.
	if got := tr.IdleAge(0, 25*sim.Second); got != 15*sim.Second {
		t.Errorf("idle age = %v, want 15s", got)
	}
	if got := tr.IdleAge(1, 25*sim.Second); got != 25*sim.Second {
		t.Errorf("untouched idle age = %v, want 25s", got)
	}
}

// pipelineView builds a SelectView over a fresh 1GB machine (32 fully
// free 32MB blocks) for direct policy unit tests.
func pipelineView(t *testing.T) (*SelectView, *kernel.Mem) {
	t.Helper()
	mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: 32 * oneMB})
	if err != nil {
		t.Fatal(err)
	}
	return &SelectView{First: 0, Last: hp.Blocks(), Attempted: map[int]bool{}, HP: hp}, mem
}

func TestAgeThresholdPicksOldestIdle(t *testing.T) {
	v, _ := pipelineView(t)
	tr := newIdleAgeTracker(32, 0)
	v.Tracker, v.Now = tr, 20*sim.Second
	p := &ageThreshold{minIdle: 5 * sim.Second}

	// All blocks idle 20s: the tie breaks to the highest index, matching
	// free-first's address bias.
	if got := p.PickVictim(v); got != 31 {
		t.Errorf("all-idle pick = %d, want 31", got)
	}
	// Only block 3 stays idle past the threshold.
	for i := 0; i < 32; i++ {
		if i != 3 {
			tr.Observe(i, 18*sim.Second)
		}
	}
	if got := p.PickVictim(v); got != 3 {
		t.Errorf("pick = %d, want the only old block 3", got)
	}
	// Nothing clears min_idle_s: no victim, rather than a young one.
	tr.Observe(3, 19*sim.Second)
	if got := p.PickVictim(v); got != -1 {
		t.Errorf("pick = %d, want -1 under the idle gate", got)
	}
}

func TestHeatTierPicksColdestBottomTier(t *testing.T) {
	v, _ := pipelineView(t)
	tr := newAccessCountTracker(32, 0, 10)
	v.Tracker, v.Now = tr, sim.Second
	p := &heatTier{tiers: 4}

	// Block 5 is hot (8 accesses), block 9 lukewarm (3), the rest cold.
	for i := 0; i < 8; i++ {
		tr.Observe(5, sim.Second)
	}
	for i := 0; i < 3; i++ {
		tr.Observe(9, sim.Second)
	}
	// Bottom tier is heat <= 8/4 = 2: all zero-heat blocks qualify, the
	// lukewarm block does not, and ties break to the highest index.
	if got := p.PickVictim(v); got != 31 {
		t.Errorf("pick = %d, want coldest highest-index 31", got)
	}
	v.Attempted[31] = true
	if got := p.PickVictim(v); got != 30 {
		t.Errorf("pick after attempt = %d, want 30", got)
	}
}

func TestHysteresisVeto(t *testing.T) {
	p := &hysteresis{hold: 10 * sim.Second}
	v := &SelectView{
		Now:        15 * sim.Second,
		OfflinedAt: []sim.Time{0, 8 * sim.Second, 14 * sim.Second},
	}
	if p.KeepOffline(v, 0) {
		t.Error("block off-lined 15s ago still held down (hold 10s)")
	}
	if !p.KeepOffline(v, 1) || !p.KeepOffline(v, 2) {
		t.Error("fresh off-linings not held down")
	}
}

func TestHysteresisPressureOverride(t *testing.T) {
	// Even a unanimous veto (hold_s far above the run length) must not
	// stop on-lining under memory pressure.
	r := newRig(t, Config{
		Period: 100 * sim.Millisecond, MaxOfflinePerTick: 32,
		Policy: PolicySpec{Name: PolicyHysteresis, Params: map[string]float64{"hold_s": 1e6}},
	}, kernel.Config{})
	if _, err := r.mem.AllocPages(200*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	r.d.Start()
	r.eng.RunUntil(2 * sim.Second)
	offlined := r.d.OfflinedBlocks()
	if offlined == 0 {
		t.Fatal("setup: nothing off-lined")
	}
	if _, err := r.mem.AllocPages(80*oneMB/pageSize, true, 6); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(r.eng.Now() + 2*sim.Second)
	if got := r.d.OfflinedBlocks(); got >= offlined {
		t.Errorf("pressure did not override the veto: %d -> %d off-lined blocks", offlined, got)
	}
}

func TestProactiveOfflinesUsedBlocks(t *testing.T) {
	v, mem := pipelineView(t)
	tr := newIdleAgeTracker(32, 0)
	v.Tracker, v.Now = tr, 20*sim.Second
	p := &proactiveOffline{minIdle: 2 * sim.Second}

	// Ages tie everywhere: fewest used pages wins, then the highest index
	// — with the low blocks holding pages, that is the top free block.
	if got := p.PickVictim(v); got != 31 {
		t.Errorf("pick = %d, want 31", got)
	}
	// Touch every free block recently; only the used low blocks stay
	// eligible. proactive picks among them (free-first never would).
	for i := 7; i < 32; i++ {
		tr.Observe(i, 19*sim.Second)
	}
	if _, err := mem.AllocPages(200*oneMB/pageSize, true, 5); err != nil {
		t.Fatal(err)
	}
	if got := p.PickVictim(v); got < 0 || got > 6 {
		t.Errorf("pick = %d, want an idle in-use block in [0, 6]", got)
	}
}

// TestDaemonTickAllocFree asserts the daemon tick hot path's
// zero-allocation contract for every registered policy: the steady-state
// tick, a full victim-selection scan, and the on-lining veto all run
// without allocating once scratch state is warm. This is the gate that
// keeps the pipeline redesign from taxing the million-tick runs.
func TestDaemonTickAllocFree(t *testing.T) {
	for _, d := range policyDefs {
		spec := PolicySpec{Name: d.info.Name}
		t.Run(spec.Name, func(t *testing.T) {
			r := newRig(t, Config{
				Period: 100 * sim.Millisecond, MaxOfflinePerTick: 32, Policy: spec,
			}, kernel.Config{})
			if _, err := r.mem.AllocPages(200*oneMB/pageSize, true, 5); err != nil {
				t.Fatal(err)
			}
			r.d.Start()
			// Long enough for the slowest idle gate (age-threshold's 5s)
			// to open and the daemon to settle inside the threshold band.
			r.eng.RunUntil(20 * sim.Second)
			r.d.Stop()

			if got := testing.AllocsPerRun(100, func() { r.d.Tick() }); got != 0 {
				t.Errorf("steady-state tick allocates %.1f times", got)
			}
			clear(r.d.sel.attempted)
			r.d.selectBlock(r.d.sel.attempted) // warm the policy's scratch
			if got := testing.AllocsPerRun(100, func() {
				r.d.selectBlock(r.d.sel.attempted)
			}); got != 0 {
				t.Errorf("victim selection allocates %.1f times", got)
			}
			if got := testing.AllocsPerRun(100, func() { r.d.keepOffline(0) }); got != 0 {
				t.Errorf("on-lining veto allocates %.1f times", got)
			}
		})
	}
}
