package dram

import (
	"fmt"

	"greendimm/internal/sim"
)

// Timing holds the DDR4 timing parameters the controller enforces, all in
// sim.Time (picoseconds). Values are stored as durations rather than clock
// counts so the rest of the simulator never needs to know tCK.
type Timing struct {
	TCK   sim.Time // clock period
	TRCD  sim.Time // ACT -> column command
	TRP   sim.Time // PRE -> ACT
	TCL   sim.Time // read CAS latency
	TCWL  sim.Time // write CAS latency
	TRAS  sim.Time // ACT -> PRE
	TRC   sim.Time // ACT -> ACT, same bank
	TBL   sim.Time // data burst duration (BL8: 4 tCK)
	TCCD  sim.Time // column-to-column, different bank group (tCCD_S)
	TCCDL sim.Time // column-to-column, same bank group (tCCD_L)
	TRRD  sim.Time // ACT-to-ACT, different bank group (tRRD_S)
	TRRDL sim.Time // ACT-to-ACT, same bank group (tRRD_L)
	TFAW  sim.Time // four-activate window
	TWR   sim.Time // write recovery
	TRTP  sim.Time // read to precharge
	TWTR  sim.Time // write to read turnaround
	TRFC  sim.Time // refresh cycle time (per REF command)
	TREFI sim.Time // average refresh interval
	TXP   sim.Time // power-down exit to first command (paper: 18ns)
	TXS   sim.Time // self-refresh exit to first command (paper: 768ns)
	TCKE  sim.Time // minimum power-down residency
	TDPDX sim.Time // GreenDIMM deep power-down exit (== TXP per paper §4.3)
}

// DDR4_2133 returns timing for DDR4-2133 (the paper's DIMMs), with tRFC for
// 4Gb devices. The power-down and self-refresh exit latencies match the
// values the paper quotes (18ns / 768ns).
func DDR4_2133() Timing {
	tck := 938 * sim.Picosecond // 1066.7 MHz, rounded to integer ps
	ck := func(n int) sim.Time { return sim.Time(n) * tck }
	return Timing{
		TCK:   tck,
		TRCD:  ck(15), // 14.06ns
		TRP:   ck(15),
		TCL:   ck(15),
		TCWL:  ck(11),
		TRAS:  ck(36), // 33.8ns
		TRC:   ck(51),
		TBL:   ck(4),
		TCCD:  ck(4),
		TCCDL: ck(6),
		TRRD:  ck(4),
		TRRDL: ck(6),
		TFAW:  ck(26),
		TWR:   ck(16),
		TRTP:  ck(8),
		TWTR:  ck(8),
		TRFC:  260 * sim.Nanosecond, // 4Gb device tRFC1
		TREFI: 7800 * sim.Nanosecond,
		TXP:   18 * sim.Nanosecond,
		TXS:   768 * sim.Nanosecond,
		TCKE:  ck(6),
		TDPDX: 18 * sim.Nanosecond,
	}
}

// DDR4_2133_8Gb is the 8Gb-device variant (256GB machine): longer tRFC.
func DDR4_2133_8Gb() Timing {
	t := DDR4_2133()
	t.TRFC = 350 * sim.Nanosecond
	return t
}

// Validate sanity-checks the parameter relationships that the bank state
// machine relies on.
func (t Timing) Validate() error {
	switch {
	case t.TCK <= 0:
		return fmt.Errorf("dram: non-positive tCK")
	case t.TRC < t.TRAS+t.TRP:
		return fmt.Errorf("dram: tRC %v < tRAS %v + tRP %v", t.TRC, t.TRAS, t.TRP)
	case t.TREFI <= t.TRFC:
		return fmt.Errorf("dram: tREFI %v <= tRFC %v leaves no service time", t.TREFI, t.TRFC)
	case t.TXS < t.TXP:
		return fmt.Errorf("dram: self-refresh exit %v faster than power-down exit %v", t.TXS, t.TXP)
	case t.TDPDX > t.TXP:
		return fmt.Errorf("dram: deep power-down exit %v slower than power-down exit %v (violates paper §4.3)", t.TDPDX, t.TXP)
	}
	return nil
}
