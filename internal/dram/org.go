// Package dram models the organization and electrical behaviour of a
// DDR4-style main memory: channels, DIMMs, ranks, devices, bank groups,
// banks and — central to GreenDIMM — sub-arrays, plus the mode-register
// machinery (PASR bit vectors, the GreenDIMM sub-array-group register) that
// the memory controller programs.
//
// The package is purely structural: command scheduling and timing
// enforcement live in internal/mc, and the power math lives in
// internal/power. Keeping the organization separate lets the address
// mapper, controller, and power model all agree on one geometry.
package dram

import "fmt"

// Org describes a main-memory organization. The zero value is not valid;
// use one of the preset constructors or fill every field and call Validate.
type Org struct {
	Channels         int // independent memory channels
	DIMMsPerChannel  int // DIMM slots populated per channel
	RanksPerDIMM     int // ranks per DIMM (1R, 2R, ...)
	DeviceWidth      int // DQ bits per device: 4, 8 or 16
	DeviceGbit       int // device density in gigabits: 4 or 8
	BankGroups       int // DDR4: 4
	BanksPerGroup    int // DDR4: 4
	Columns          int // columns per row (device), DDR4: 1024
	SubArraysPerBank int // sub-arrays per physical bank, e.g. 64
	BurstLength      int // BL8 for DDR4
}

// DDR4 constants shared by the presets.
const (
	ddr4BankGroups    = 4
	ddr4BanksPerGroup = 4
	ddr4Columns       = 1024
	ddr4Burst         = 8
	busWidthBits      = 64 // non-ECC data bus per channel
)

// Org64GB returns the SPEC-experiment machine from the paper's §6.1:
// eight 2R x8 8GB DIMMs (4Gb devices) on four channels — 64GB total,
// 16 ranks of 4GB, 64 sub-arrays per bank.
func Org64GB() Org {
	return Org{
		Channels:         4,
		DIMMsPerChannel:  2,
		RanksPerDIMM:     2,
		DeviceWidth:      8,
		DeviceGbit:       4,
		BankGroups:       ddr4BankGroups,
		BanksPerGroup:    ddr4BanksPerGroup,
		Columns:          ddr4Columns,
		SubArraysPerBank: 64,
		BurstLength:      ddr4Burst,
	}
}

// Org256GB returns the VM-trace machine from the paper's §6.1: eight
// 2R x4 32GB DIMMs (8Gb devices) on four channels — 256GB total.
func Org256GB() Org {
	return Org{
		Channels:         4,
		DIMMsPerChannel:  2,
		RanksPerDIMM:     2,
		DeviceWidth:      4,
		DeviceGbit:       8,
		BankGroups:       ddr4BankGroups,
		BanksPerGroup:    ddr4BanksPerGroup,
		Columns:          ddr4Columns,
		SubArraysPerBank: 64,
		BurstLength:      ddr4Burst,
	}
}

// OrgWithCapacity scales the 256GB preset to the requested total capacity by
// varying DIMMs per channel (Fig. 2 and Fig. 13 sweep 64GB..1TB this way:
// more modules plugged in, same devices). capacityGB must be a multiple of
// the per-DIMM capacity (32GB) times the channel count (4), i.e. of 128GB,
// except that 64GB is mapped to a single-rank variant.
func OrgWithCapacity(capacityGB int) (Org, error) {
	base := Org256GB()
	perDIMMGB := 32
	perChannelDIMMCap := perDIMMGB * base.Channels // GB added per DIMM-per-channel step
	if capacityGB == 64 {
		o := base
		o.DIMMsPerChannel = 1
		o.RanksPerDIMM = 1
		if got := o.TotalBytes(); got != 64<<30 {
			return Org{}, fmt.Errorf("dram: 64GB preset built %d bytes", got)
		}
		return o, nil
	}
	if capacityGB%perChannelDIMMCap != 0 {
		return Org{}, fmt.Errorf("dram: capacity %dGB not a multiple of %dGB", capacityGB, perChannelDIMMCap)
	}
	o := base
	o.DIMMsPerChannel = capacityGB / perChannelDIMMCap
	if o.DIMMsPerChannel < 1 {
		return Org{}, fmt.Errorf("dram: capacity %dGB too small", capacityGB)
	}
	return o, nil
}

// Validate checks internal consistency.
func (o Org) Validate() error {
	switch {
	case o.Channels <= 0, o.DIMMsPerChannel <= 0, o.RanksPerDIMM <= 0:
		return fmt.Errorf("dram: non-positive channel/DIMM/rank counts in %+v", o)
	case o.DeviceWidth != 4 && o.DeviceWidth != 8 && o.DeviceWidth != 16:
		return fmt.Errorf("dram: device width x%d unsupported", o.DeviceWidth)
	case o.DeviceGbit != 4 && o.DeviceGbit != 8 && o.DeviceGbit != 16:
		return fmt.Errorf("dram: device density %dGb unsupported", o.DeviceGbit)
	case o.BankGroups <= 0 || o.BanksPerGroup <= 0:
		return fmt.Errorf("dram: bad bank organization")
	case o.Columns <= 0 || o.Columns&(o.Columns-1) != 0:
		return fmt.Errorf("dram: columns %d not a power of two", o.Columns)
	case o.SubArraysPerBank <= 0 || o.SubArraysPerBank&(o.SubArraysPerBank-1) != 0:
		return fmt.Errorf("dram: sub-arrays per bank %d not a power of two", o.SubArraysPerBank)
	case o.Rows()%o.SubArraysPerBank != 0:
		return fmt.Errorf("dram: rows %d not divisible by %d sub-arrays", o.Rows(), o.SubArraysPerBank)
	}
	return nil
}

// DevicesPerRank is the number of devices ganged to fill the 64-bit bus.
func (o Org) DevicesPerRank() int { return busWidthBits / o.DeviceWidth }

// Banks is the number of banks per rank (bank groups x banks per group).
func (o Org) Banks() int { return o.BankGroups * o.BanksPerGroup }

// Rows returns rows per bank, derived from device density:
// densityBits = banks * rows * columns * width.
func (o Org) Rows() int {
	densityBits := int64(o.DeviceGbit) << 30
	perBank := densityBits / int64(o.Banks())
	rowBits := int64(o.Columns) * int64(o.DeviceWidth)
	return int(perBank / rowBits)
}

// RowsPerSubArray is the number of rows in one sub-array.
func (o Org) RowsPerSubArray() int { return o.Rows() / o.SubArraysPerBank }

// RanksPerChannel is ranks visible on one channel.
func (o Org) RanksPerChannel() int { return o.DIMMsPerChannel * o.RanksPerDIMM }

// TotalRanks is the rank count across all channels.
func (o Org) TotalRanks() int { return o.Channels * o.RanksPerChannel() }

// RankBytes is the capacity of one rank in bytes.
func (o Org) RankBytes() int64 {
	return int64(o.DeviceGbit) * (1 << 30) / 8 * int64(o.DevicesPerRank())
}

// TotalBytes is the capacity of the whole memory in bytes.
func (o Org) TotalBytes() int64 { return o.RankBytes() * int64(o.TotalRanks()) }

// LineBytes is the bytes transferred per column access (burst): 64B, one
// cache line, for a 64-bit bus with BL8.
func (o Org) LineBytes() int64 { return int64(busWidthBits/8) * int64(o.BurstLength) }

// SubArrayGroupBytes is the capacity of one sub-array group: the same
// sub-array index taken across every channel, rank and bank (paper §4.1).
// For the 64GB preset this is 1GB = 1.5625% of capacity.
func (o Org) SubArrayGroupBytes() int64 {
	return o.TotalBytes() / int64(o.SubArraysPerBank)
}

// String summarizes the organization, e.g.
// "4ch x 2DIMM x 2R x4 8Gb (256GB, 16 ranks, 64 sub-arrays/bank)".
func (o Org) String() string {
	return fmt.Sprintf("%dch x %dDIMM x %dR x%d %dGb (%dGB, %d ranks, %d sub-arrays/bank)",
		o.Channels, o.DIMMsPerChannel, o.RanksPerDIMM, o.DeviceWidth, o.DeviceGbit,
		o.TotalBytes()>>30, o.TotalRanks(), o.SubArraysPerBank)
}
