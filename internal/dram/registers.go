package dram

import "fmt"

// This file models the two control-register schemes the paper contrasts in
// §4.3:
//
//   - PASR/PAAR: a per-rank bit vector with one enable bit per bank
//     (16 bits/rank; 128 bits for the paper's 4-channel 2-rank machine).
//   - GreenDIMM: a single global bit vector with one bit per sub-array
//     group (64 bits regardless of channel and rank count), because a group
//     spans every channel, rank and bank in lock-step.
//
// The registers only record intent; the memory controller consults them to
// gate refresh and to account power-state residency.

// PASRRegister is the memory-mapped refresh-enable bit vector for
// bank-granularity partial-array self-refresh. Bit (rank, bank) set means
// refresh DISABLED for that bank (the bank's content is abandoned or known
// dead, mobile-DRAM style).
type PASRRegister struct {
	ranks int
	banks int
	bits  []bool // ranks*banks, row-major by rank
}

// NewPASRRegister sizes the register for the organization.
func NewPASRRegister(o Org) *PASRRegister {
	return &PASRRegister{
		ranks: o.TotalRanks(),
		banks: o.Banks(),
		bits:  make([]bool, o.TotalRanks()*o.Banks()),
	}
}

// Bits reports the register width in bits (the paper's hardware-cost
// comparison: 16 bits/rank).
func (r *PASRRegister) Bits() int { return len(r.bits) }

// Set enables (true) or disables (false) the refresh-off bit for a bank.
func (r *PASRRegister) Set(rank, bank int, off bool) error {
	if rank < 0 || rank >= r.ranks || bank < 0 || bank >= r.banks {
		return fmt.Errorf("dram: PASR bit (rank %d, bank %d) out of range %dx%d", rank, bank, r.ranks, r.banks)
	}
	r.bits[rank*r.banks+bank] = off
	return nil
}

// Off reports whether refresh is disabled for the bank.
func (r *PASRRegister) Off(rank, bank int) bool {
	return r.bits[rank*r.banks+bank]
}

// OffCount reports how many banks of the rank have refresh disabled.
func (r *PASRRegister) OffCount(rank int) int {
	n := 0
	for b := 0; b < r.banks; b++ {
		if r.bits[rank*r.banks+b] {
			n++
		}
	}
	return n
}

// SubArrayGroupRegister is GreenDIMM's control register: one bit per
// sub-array group. Bit set means the group is in the deep power-down state
// (refresh stopped, peripheral/I/O gated) in every bank of every rank. The
// "ready" shadow models the tDPDX exit handshake: after clearing a bit the
// OS polls Ready before on-lining (paper §4.2).
type SubArrayGroupRegister struct {
	groups int
	down   []bool
	ready  []bool // true once the group has completed DPD exit
}

// NewSubArrayGroupRegister builds the register for the organization.
func NewSubArrayGroupRegister(o Org) *SubArrayGroupRegister {
	return NewSubArrayGroupRegisterN(o.SubArraysPerBank)
}

// NewSubArrayGroupRegisterN builds a register over n groups directly (for
// configurations that manage a different grouping granularity, §5.1).
func NewSubArrayGroupRegisterN(n int) *SubArrayGroupRegister {
	r := &SubArrayGroupRegister{groups: n, down: make([]bool, n), ready: make([]bool, n)}
	for i := range r.ready {
		r.ready[i] = true
	}
	return r
}

// Bits reports the register width (always the sub-array group count: the
// paper's point is this stays 64 bits no matter how many ranks exist).
func (r *SubArrayGroupRegister) Bits() int { return r.groups }

// Groups reports the number of sub-array groups.
func (r *SubArrayGroupRegister) Groups() int { return r.groups }

// EnterDPD marks group g as deep-powered-down. Entering is immediate from
// the controller's perspective (the mode-register write is pipelined with
// normal traffic).
func (r *SubArrayGroupRegister) EnterDPD(g int) error {
	if g < 0 || g >= r.groups {
		return fmt.Errorf("dram: sub-array group %d out of range %d", g, r.groups)
	}
	r.down[g] = true
	r.ready[g] = false
	return nil
}

// BeginExit starts waking group g; Ready(g) stays false until
// CompleteExit is called (the controller schedules that tDPDX later).
func (r *SubArrayGroupRegister) BeginExit(g int) error {
	if g < 0 || g >= r.groups {
		return fmt.Errorf("dram: sub-array group %d out of range %d", g, r.groups)
	}
	r.down[g] = false
	return nil
}

// CompleteExit marks the group's wake-up finished; Ready becomes true.
func (r *SubArrayGroupRegister) CompleteExit(g int) {
	if !r.down[g] {
		r.ready[g] = true
	}
}

// Down reports whether group g is in deep power-down.
func (r *SubArrayGroupRegister) Down(g int) bool { return r.down[g] }

// Ready reports whether group g has fully exited deep power-down and can
// accept accesses (the bit the OS polls before online_pages, paper §4.2).
func (r *SubArrayGroupRegister) Ready(g int) bool { return r.ready[g] }

// DownCount reports how many groups are in deep power-down.
func (r *SubArrayGroupRegister) DownCount() int {
	n := 0
	for _, d := range r.down {
		if d {
			n++
		}
	}
	return n
}

// DownFraction is the fraction of sub-array groups in deep power-down —
// the quantity that scales background and refresh power in the power model.
func (r *SubArrayGroupRegister) DownFraction() float64 {
	return float64(r.DownCount()) / float64(r.groups)
}
