package dram

import (
	"testing"
	"testing/quick"
)

func TestPASRRegisterWidth(t *testing.T) {
	// Paper §4.3: PASR needs 16 bits per rank; the 64GB machine has 16
	// ranks -> 256 bits. (The paper's 128-bit example is its 8-rank
	// config.) GreenDIMM needs 64 bits regardless.
	o := Org64GB()
	p := NewPASRRegister(o)
	if got, want := p.Bits(), o.TotalRanks()*o.Banks(); got != want {
		t.Errorf("PASR bits = %d, want %d", got, want)
	}
	g := NewSubArrayGroupRegister(o)
	if g.Bits() != 64 {
		t.Errorf("GreenDIMM register bits = %d, want 64", g.Bits())
	}
	// Doubling the ranks doubles PASR but leaves GreenDIMM at 64 bits.
	o2 := o
	o2.DIMMsPerChannel *= 2
	if NewPASRRegister(o2).Bits() != 2*p.Bits() {
		t.Error("PASR register did not scale with ranks")
	}
	if NewSubArrayGroupRegister(o2).Bits() != 64 {
		t.Error("GreenDIMM register scaled with ranks; it must not")
	}
}

func TestPASRSetOff(t *testing.T) {
	p := NewPASRRegister(Org64GB())
	if err := p.Set(3, 7, true); err != nil {
		t.Fatal(err)
	}
	if !p.Off(3, 7) {
		t.Error("bit not set")
	}
	if p.Off(3, 8) || p.Off(2, 7) {
		t.Error("neighbouring bits disturbed")
	}
	if p.OffCount(3) != 1 || p.OffCount(2) != 0 {
		t.Error("OffCount wrong")
	}
	if err := p.Set(3, 7, false); err != nil {
		t.Fatal(err)
	}
	if p.Off(3, 7) {
		t.Error("bit not cleared")
	}
	if err := p.Set(99, 0, true); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := p.Set(0, 99, true); err == nil {
		t.Error("out-of-range bank accepted")
	}
}

func TestSubArrayGroupLifecycle(t *testing.T) {
	r := NewSubArrayGroupRegister(Org64GB())
	if r.DownCount() != 0 || r.DownFraction() != 0 {
		t.Fatal("register not initially all-up")
	}
	if !r.Ready(5) {
		t.Fatal("groups must start ready")
	}
	if err := r.EnterDPD(5); err != nil {
		t.Fatal(err)
	}
	if !r.Down(5) || r.Ready(5) {
		t.Error("EnterDPD: want down and not ready")
	}
	if r.DownCount() != 1 {
		t.Errorf("DownCount = %d, want 1", r.DownCount())
	}
	if got := r.DownFraction(); got != 1.0/64 {
		t.Errorf("DownFraction = %v, want 1/64", got)
	}
	// Exit handshake: BeginExit clears down but not ready; CompleteExit
	// flips ready (the bit the OS polls, paper §4.2).
	if err := r.BeginExit(5); err != nil {
		t.Fatal(err)
	}
	if r.Down(5) {
		t.Error("BeginExit left group down")
	}
	if r.Ready(5) {
		t.Error("group ready before CompleteExit")
	}
	r.CompleteExit(5)
	if !r.Ready(5) {
		t.Error("group not ready after CompleteExit")
	}
}

func TestSubArrayGroupCompleteExitIgnoredWhileDown(t *testing.T) {
	// A stale CompleteExit arriving after the group was re-entered into
	// DPD must not mark it ready.
	r := NewSubArrayGroupRegister(Org64GB())
	if err := r.EnterDPD(9); err != nil {
		t.Fatal(err)
	}
	r.CompleteExit(9)
	if r.Ready(9) {
		t.Error("CompleteExit on a down group marked it ready")
	}
}

func TestSubArrayGroupBounds(t *testing.T) {
	r := NewSubArrayGroupRegister(Org64GB())
	if err := r.EnterDPD(-1); err == nil {
		t.Error("negative group accepted")
	}
	if err := r.EnterDPD(64); err == nil {
		t.Error("group 64 accepted on 64-group register")
	}
	if err := r.BeginExit(64); err == nil {
		t.Error("BeginExit out of range accepted")
	}
}

func TestSubArrayGroupDownFractionProperty(t *testing.T) {
	// Property: DownFraction always equals DownCount/Groups and stays in
	// [0,1] under arbitrary enter/exit sequences.
	f := func(ops []uint8) bool {
		r := NewSubArrayGroupRegister(Org64GB())
		for _, op := range ops {
			g := int(op % 64)
			if op&0x80 != 0 {
				_ = r.EnterDPD(g)
			} else {
				_ = r.BeginExit(g)
				r.CompleteExit(g)
			}
		}
		fr := r.DownFraction()
		return fr >= 0 && fr <= 1 && fr == float64(r.DownCount())/64.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
