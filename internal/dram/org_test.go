package dram

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOrg64GBGeometry(t *testing.T) {
	o := Org64GB()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := o.TotalBytes(); got != 64<<30 {
		t.Errorf("TotalBytes = %d, want 64GB", got)
	}
	if got := o.TotalRanks(); got != 16 {
		t.Errorf("TotalRanks = %d, want 16", got)
	}
	if got := o.RankBytes(); got != 4<<30 {
		t.Errorf("RankBytes = %d, want 4GB", got)
	}
	if got := o.DevicesPerRank(); got != 8 {
		t.Errorf("DevicesPerRank = %d, want 8 for x8", got)
	}
	if got := o.Banks(); got != 16 {
		t.Errorf("Banks = %d, want 16", got)
	}
	// Paper §4.1: 4Gb x8 device has 15 row bits = 32768 rows, 64
	// sub-arrays of 512 rows.
	if got := o.Rows(); got != 32768 {
		t.Errorf("Rows = %d, want 32768", got)
	}
	if got := o.RowsPerSubArray(); got != 512 {
		t.Errorf("RowsPerSubArray = %d, want 512", got)
	}
	// Paper §4.1: the minimum power-management unit for 64GB is 1024MB,
	// 1.5625% of capacity.
	if got := o.SubArrayGroupBytes(); got != 1<<30 {
		t.Errorf("SubArrayGroupBytes = %d, want 1GB", got)
	}
	frac := float64(o.SubArrayGroupBytes()) / float64(o.TotalBytes())
	if frac != 0.015625 {
		t.Errorf("group fraction = %v, want 1.5625%%", frac)
	}
	if got := o.LineBytes(); got != 64 {
		t.Errorf("LineBytes = %d, want 64", got)
	}
}

func TestOrg256GBGeometry(t *testing.T) {
	o := Org256GB()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := o.TotalBytes(); got != 256<<30 {
		t.Errorf("TotalBytes = %d, want 256GB", got)
	}
	if got := o.DevicesPerRank(); got != 16 {
		t.Errorf("DevicesPerRank = %d, want 16 for x4", got)
	}
	if got := o.RankBytes(); got != 16<<30 {
		t.Errorf("RankBytes = %d, want 16GB", got)
	}
	// 8Gb x4: per bank 512Mb, row = 1024 cols * 4 bits = 4096 bits,
	// rows = 131072 (17 row bits).
	if got := o.Rows(); got != 131072 {
		t.Errorf("Rows = %d, want 131072", got)
	}
}

func TestOrgGroupFractionInvariant(t *testing.T) {
	// Paper §4.1: "the percentage does not change with smaller or larger
	// total capacity" — group fraction is always 1/SubArraysPerBank.
	for _, gb := range []int{64, 128, 256, 512, 1024} {
		o, err := OrgWithCapacity(gb)
		if err != nil {
			t.Fatalf("OrgWithCapacity(%d): %v", gb, err)
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("capacity %dGB: %v", gb, err)
		}
		if got := o.TotalBytes(); got != int64(gb)<<30 {
			t.Errorf("capacity %dGB: TotalBytes = %d", gb, got)
		}
		frac := float64(o.SubArrayGroupBytes()) / float64(o.TotalBytes())
		if frac != 1.0/64 {
			t.Errorf("capacity %dGB: group fraction = %v, want 1/64", gb, frac)
		}
	}
}

func TestOrgWithCapacityRejectsOdd(t *testing.T) {
	if _, err := OrgWithCapacity(100); err == nil {
		t.Error("OrgWithCapacity(100) should fail")
	}
	if _, err := OrgWithCapacity(0); err == nil {
		t.Error("OrgWithCapacity(0) should fail")
	}
}

func TestOrgValidateRejectsBadGeometry(t *testing.T) {
	bad := []Org{
		{}, // zero value
		func() Org { o := Org64GB(); o.DeviceWidth = 5; return o }(),
		func() Org { o := Org64GB(); o.DeviceGbit = 3; return o }(),
		func() Org { o := Org64GB(); o.Columns = 1000; return o }(),
		func() Org { o := Org64GB(); o.SubArraysPerBank = 48; return o }(),
		func() Org { o := Org64GB(); o.Channels = 0; return o }(),
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad org %+v", i, o)
		}
	}
}

func TestOrgString(t *testing.T) {
	s := Org64GB().String()
	for _, want := range []string{"4ch", "x8", "4Gb", "64GB", "16 ranks"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestCapacityDecomposition(t *testing.T) {
	// Property: capacity computed top-down (ranks x rank bytes) equals
	// bottom-up (devices x banks x rows x cols x width).
	f := func(chans, dimms, ranks uint8) bool {
		o := Org64GB()
		o.Channels = int(chans%4) + 1
		o.DIMMsPerChannel = int(dimms%2) + 1
		o.RanksPerDIMM = int(ranks%2) + 1
		bottomUp := int64(o.DevicesPerRank()) * int64(o.Banks()) * int64(o.Rows()) *
			int64(o.Columns) * int64(o.DeviceWidth) / 8 * int64(o.TotalRanks())
		return bottomUp == o.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimingPresets(t *testing.T) {
	for name, tm := range map[string]Timing{"2133": DDR4_2133(), "2133-8Gb": DDR4_2133_8Gb()} {
		if err := tm.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	tm := DDR4_2133()
	// The paper's quoted exit latencies.
	if tm.TXP.Nanoseconds() != 18 {
		t.Errorf("tXP = %v, want 18ns", tm.TXP)
	}
	if tm.TXS.Nanoseconds() != 768 {
		t.Errorf("tXS = %v, want 768ns", tm.TXS)
	}
	if tm.TDPDX != tm.TXP {
		t.Errorf("tDPDX = %v, want == tXP (paper §4.3)", tm.TDPDX)
	}
	if DDR4_2133_8Gb().TRFC <= tm.TRFC {
		t.Error("8Gb tRFC should exceed 4Gb tRFC")
	}
}

func TestTimingValidateCatchesInversions(t *testing.T) {
	tm := DDR4_2133()
	tm.TRC = tm.TRAS // < tRAS + tRP
	if err := tm.Validate(); err == nil {
		t.Error("tRC < tRAS+tRP accepted")
	}
	tm = DDR4_2133()
	tm.TDPDX = tm.TXS // deep PD exit slower than PD exit
	if err := tm.Validate(); err == nil {
		t.Error("tDPDX > tXP accepted")
	}
}

func TestPowerStateString(t *testing.T) {
	if StateSelfRefresh.String() != "self-refresh" {
		t.Error("bad state name")
	}
	if PowerState(99).String() != "invalid" {
		t.Error("out-of-range state should be invalid")
	}
	if StateActive.IsLowPower() || StatePrechargeStandby.IsLowPower() {
		t.Error("active/standby are not low power")
	}
	for _, s := range []PowerState{StatePowerDown, StateSelfRefresh, StateDeepPowerDown} {
		if !s.IsLowPower() {
			t.Errorf("%v should be low power", s)
		}
	}
}
