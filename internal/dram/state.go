package dram

// PowerState enumerates the rank-level power states DDR4 exposes to the
// controller, plus the sub-array deep power-down state GreenDIMM adds.
// Rank-level states are mutually exclusive per rank; DeepPowerDown applies
// to sub-array groups and coexists with whatever rank state is active.
type PowerState int

const (
	// StateActive: at least one bank has an open row; DLL and I/O on.
	StateActive PowerState = iota
	// StatePrechargeStandby: all banks precharged, clock enabled.
	StatePrechargeStandby
	// StatePowerDown: CKE low, clock gated, I/O off; exit costs tXP.
	StatePowerDown
	// StateSelfRefresh: DLL off, DRAM refreshes itself; exit costs tXS.
	StateSelfRefresh
	// StateDeepPowerDown is the GreenDIMM sub-array state: refresh stopped
	// and peripheral/I/O power-gated for the selected sub-array groups.
	// Exit costs tDPDX (== tXP, since the DLL stays on; paper §4.3).
	StateDeepPowerDown
)

var stateNames = [...]string{"active", "standby", "power-down", "self-refresh", "deep-power-down"}

func (s PowerState) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return "invalid"
	}
	return stateNames[s]
}

// IsLowPower reports whether the state reduces background power relative to
// standby.
func (s PowerState) IsLowPower() bool {
	return s == StatePowerDown || s == StateSelfRefresh || s == StateDeepPowerDown
}
