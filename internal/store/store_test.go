package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustDo(t *testing.T, name string, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// TestLifecycleReplay drives one job through accept → plan → cells →
// ranges → finish, reopens the store, and checks every detail survived
// the WAL replay.
func TestLifecycleReplay(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	mustDo(t, "Accept", s.Accept("h1", json.RawMessage(`{"kind":"experiment","experiment":"fig8"}`)))
	mustDo(t, "Plan", s.Plan("h1", 12, [][2]int{{0, 6}, {6, 12}}))
	mustDo(t, "PutCell", s.PutCell("h1", "timing|a", json.RawMessage(`{"v":1}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "timing|b", json.RawMessage(`{"v":2}`)))
	mustDo(t, "RangeDone", s.RangeDone("h1", 0, 6))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = open(t, dir, Options{})
	defer s.Close()
	rec, ok := s.Get("h1")
	if !ok {
		t.Fatal("record lost across reopen")
	}
	if rec.State != StateSharded || rec.Total != 12 || rec.CellCount != 2 {
		t.Fatalf("replayed record = %+v", rec)
	}
	if !reflect.DeepEqual(rec.Done, [][2]int{{0, 6}}) {
		t.Fatalf("done ranges = %v", rec.Done)
	}
	if !reflect.DeepEqual(rec.Planned, [][2]int{{0, 6}, {6, 12}}) {
		t.Fatalf("planned ranges = %v", rec.Planned)
	}
	pend := s.Pending()
	if len(pend) != 1 || pend[0].Hash != "h1" {
		t.Fatalf("Pending = %+v, want the one open job", pend)
	}
	cells, done := s.Resume("h1")
	if len(cells) != 2 || cells[0].Key != "timing|a" || string(cells[1].Value) != `{"v":2}` {
		t.Fatalf("Resume cells = %+v", cells)
	}
	if !reflect.DeepEqual(done, [][2]int{{0, 6}}) {
		t.Fatalf("Resume done = %v", done)
	}

	// Finish, reopen: the job is terminal, off the pending list, but its
	// cells survive for a resubmission to resume from.
	mustDo(t, "Finish", s.Finish("h1", StateMerged, ""))
	s.Close()
	s = open(t, dir, Options{})
	defer s.Close()
	if got := s.Pending(); len(got) != 0 {
		t.Fatalf("Pending after finish = %+v", got)
	}
	if rec, _ := s.Get("h1"); rec.State != StateMerged || rec.CellCount != 2 {
		t.Fatalf("finished record = %+v", rec)
	}

	// Re-accepting the same hash re-opens it with its cells intact.
	mustDo(t, "re-Accept", s.Accept("h1", nil))
	rec, _ = s.Get("h1")
	if rec.State != StateAccepted || rec.CellCount != 2 {
		t.Fatalf("re-accepted record = %+v", rec)
	}
	if string(rec.Spec) == "" {
		t.Fatal("re-accept with nil spec dropped the stored spec")
	}
}

// TestTornTail appends a valid history, then simulates a crash
// mid-append by chopping the last line in half: Open must keep every
// whole record, cut the tail, and leave the WAL appendable.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	mustDo(t, "Accept", s.Accept("h1", json.RawMessage(`{"a":1}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "k1", json.RawMessage(`{"v":1}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "k2", json.RawMessage(`{"v":2}`)))
	s.Close()

	wal := filepath.Join(dir, "wal.log")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	last := lines[len(lines)-2] // lines ends with one empty slice after final \n
	torn := b[:len(b)-len(last)/2-1]
	if err := os.WriteFile(wal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s = open(t, dir, Options{})
	defer s.Close()
	if !s.Stats().TruncatedTail {
		t.Fatal("torn tail not reported")
	}
	rec, ok := s.Get("h1")
	if !ok || rec.CellCount != 1 {
		t.Fatalf("after torn tail: rec=%+v ok=%v, want 1 surviving cell", rec, ok)
	}
	// The WAL is clean again: a fresh append and replay both work.
	mustDo(t, "PutCell after truncation", s.PutCell("h1", "k3", json.RawMessage(`{"v":3}`)))
	s.Close()
	s = open(t, dir, Options{})
	defer s.Close()
	if rec, _ := s.Get("h1"); rec.CellCount != 2 {
		t.Fatalf("after re-append: CellCount=%d, want 2 (k1, k3)", rec.CellCount)
	}
}

// TestCRCCorruption flips a byte inside an early record: replay must
// stop there, keeping only the prefix.
func TestCRCCorruption(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	mustDo(t, "Accept", s.Accept("h1", json.RawMessage(`{"a":1}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "k1", json.RawMessage(`{"v":1}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "k2", json.RawMessage(`{"v":2}`)))
	s.Close()

	wal := filepath.Join(dir, "wal.log")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second line's JSON body (line 2 is the k1 cell).
	nl := bytes.IndexByte(b, '\n')
	b[nl+15] ^= 0xff
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s = open(t, dir, Options{})
	defer s.Close()
	if !s.Stats().TruncatedTail {
		t.Fatal("corruption not reported as a truncated tail")
	}
	rec, ok := s.Get("h1")
	if !ok || rec.CellCount != 0 {
		t.Fatalf("after corruption: rec=%+v ok=%v, want the accept only", rec, ok)
	}
}

// TestSnapshotCompaction forces a snapshot, checks the WAL emptied and
// the snapshot file carries the state, then verifies stale low-seq WAL
// entries (a crash between rename and truncate) are skipped on replay.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SnapshotEvery: 4})
	mustDo(t, "Accept", s.Accept("h1", json.RawMessage(`{"a":1}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "k1", json.RawMessage(`{"v":1}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "k2", json.RawMessage(`{"v":2}`)))
	mustDo(t, "RangeDone", s.RangeDone("h1", 0, 3)) // 4th append → snapshot
	if st := s.Stats(); st.Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", st.Snapshots)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil || len(walBytes) != 0 {
		t.Fatalf("WAL after snapshot: %d bytes err=%v, want empty", len(walBytes), err)
	}
	mustDo(t, "PutCell post-snapshot", s.PutCell("h1", "k3", json.RawMessage(`{"v":3}`)))
	s.Close()

	s = open(t, dir, Options{})
	rec, _ := s.Get("h1")
	if rec.CellCount != 3 || !reflect.DeepEqual(rec.Done, [][2]int{{0, 3}}) {
		t.Fatalf("after snapshot+wal replay: %+v", rec)
	}
	s.Close()

	// Crash between snapshot rename and WAL truncate: prepend a stale
	// entry whose seq predates the snapshot. Replay must skip it.
	stale := walEntry{Seq: 1, Op: "cell", Hash: "h1", Key: "stale", Value: json.RawMessage(`{}`)}
	body, _ := json.Marshal(stale)
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)
	cur, _ := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), append([]byte(line), cur...), 0o644); err != nil {
		t.Fatal(err)
	}
	s = open(t, dir, Options{})
	defer s.Close()
	rec, _ = s.Get("h1")
	if rec.CellCount != 3 {
		t.Fatalf("stale low-seq entry applied: CellCount=%d, want 3", rec.CellCount)
	}
}

// TestPutCellDedup checks a duplicate key neither mutates state nor
// grows the WAL — resume must not re-journal replayed cells.
func TestPutCellDedup(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	defer s.Close()
	mustDo(t, "Accept", s.Accept("h1", json.RawMessage(`{}`)))
	mustDo(t, "PutCell", s.PutCell("h1", "k", json.RawMessage(`{"v":1}`)))
	before, _ := os.ReadFile(filepath.Join(dir, "wal.log"))
	mustDo(t, "dup PutCell", s.PutCell("h1", "k", json.RawMessage(`{"v":999}`)))
	after, _ := os.ReadFile(filepath.Join(dir, "wal.log"))
	if !bytes.Equal(before, after) {
		t.Fatal("duplicate PutCell grew the WAL")
	}
	cells, _ := s.Resume("h1")
	if len(cells) != 1 || string(cells[0].Value) != `{"v":1}` {
		t.Fatalf("dedup kept wrong value: %+v", cells)
	}
	// Mutations on an unknown hash are silent no-ops.
	mustDo(t, "unknown-hash PutCell", s.PutCell("nope", "k", json.RawMessage(`{}`)))
	if _, ok := s.Get("nope"); ok {
		t.Fatal("unknown-hash mutation created a record")
	}
}

// TestMaxSpecsPrune accepts and finishes more specs than MaxSpecs and
// checks snapshot-time pruning drops the oldest terminal ones while
// never touching a non-terminal record.
func TestMaxSpecsPrune(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxSpecs: 3, SnapshotEvery: 1000})
	mustDo(t, "Accept open", s.Accept("open", json.RawMessage(`{}`)))
	for i := 0; i < 5; i++ {
		h := fmt.Sprintf("t%d", i)
		mustDo(t, "Accept", s.Accept(h, json.RawMessage(`{}`)))
		mustDo(t, "PutCell", s.PutCell(h, "k", json.RawMessage(`{"v":1}`)))
		mustDo(t, "Finish", s.Finish(h, StateMerged, ""))
	}
	s.mu.Lock()
	err := s.snapshot()
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if st := s.Stats(); st.Specs != 3 {
		t.Fatalf("Specs after prune = %d, want 3", st.Specs)
	}
	if _, ok := s.Get("open"); !ok {
		t.Fatal("prune dropped a non-terminal record")
	}
	for _, h := range []string{"t0", "t1", "t2"} {
		if _, ok := s.Get(h); ok {
			t.Fatalf("oldest terminal %s survived prune", h)
		}
	}
	for _, h := range []string{"t3", "t4"} {
		if rec, ok := s.Get(h); !ok || rec.CellCount != 1 {
			t.Fatalf("newest terminal %s lost (ok=%v rec=%+v)", h, ok, rec)
		}
	}
	s.Close()

	// The pruned shape is what persists.
	s = open(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.Specs != 3 {
		t.Fatalf("Specs after reopen = %d, want 3", st.Specs)
	}
}

// TestAddRange covers the merge arithmetic directly.
func TestAddRange(t *testing.T) {
	cases := []struct {
		in     [][2]int
		lo, hi int
		want   [][2]int
	}{
		{nil, 0, 4, [][2]int{{0, 4}}},
		{[][2]int{{0, 4}}, 4, 8, [][2]int{{0, 8}}},            // adjacent merges
		{[][2]int{{0, 4}}, 6, 8, [][2]int{{0, 4}, {6, 8}}},    // disjoint
		{[][2]int{{0, 4}, {6, 8}}, 3, 7, [][2]int{{0, 8}}},    // bridges both
		{[][2]int{{4, 8}}, 0, 2, [][2]int{{0, 2}, {4, 8}}},    // insert before
		{[][2]int{{0, 4}}, 1, 3, [][2]int{{0, 4}}},            // contained
		{[][2]int{{0, 4}}, 4, 4, [][2]int{{0, 4}}},            // empty ignored
		{[][2]int{{2, 4}, {8, 10}}, 0, 12, [][2]int{{0, 12}}}, // swallows all
	}
	for _, c := range cases {
		if got := addRange(append([][2]int(nil), c.in...), c.lo, c.hi); !reflect.DeepEqual(got, c.want) {
			t.Errorf("addRange(%v, %d, %d) = %v, want %v", c.in, c.lo, c.hi, got, c.want)
		}
	}
}
