package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestMemoLog(t *testing.T, dir string, opts MemoLogOptions) *MemoLog {
	t.Helper()
	opts.NoSync = true
	l, err := OpenMemoLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMemoLogRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := openTestMemoLog(t, dir, MemoLogOptions{})
	for i := 0; i < 5; i++ {
		if err := l.Put(fmt.Sprintf("k%d", i), json.RawMessage(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestMemoLog(t, dir, MemoLogOptions{})
	defer r.Close()
	got := r.Entries()
	if len(got) != 5 {
		t.Fatalf("recovered %d entries, want 5", len(got))
	}
	// Insertion order survives recovery (oldest first).
	for i, c := range got {
		if c.Key != fmt.Sprintf("k%d", i) || string(c.Value) != fmt.Sprintf("%d", i) {
			t.Fatalf("entry %d = %s=%s, want k%d=%d", i, c.Key, c.Value, i, i)
		}
	}
	if st := r.Stats(); st.Replayed != 5 || st.TruncatedTail {
		t.Fatalf("stats = %+v, want 5 replayed, no truncation", st)
	}
}

func TestMemoLogDuplicateKeySkipped(t *testing.T) {
	dir := t.TempDir()
	l := openTestMemoLog(t, dir, MemoLogOptions{})
	defer l.Close()
	if err := l.Put("k", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Put("k", json.RawMessage(`2`)); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 || string(l.Entries()[0].Value) != "1" {
		t.Fatalf("duplicate Put changed the log: %+v", l.Entries())
	}
	if st := l.Stats(); st.Appends != 1 {
		t.Fatalf("Appends = %d, want 1 (duplicate must not touch the WAL)", st.Appends)
	}
}

func TestMemoLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openTestMemoLog(t, dir, MemoLogOptions{})
	for i := 0; i < 3; i++ {
		if err := l.Put(fmt.Sprintf("k%d", i), json.RawMessage(`0`)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate a crash mid-append: garbage with no trailing newline.
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"torn"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openTestMemoLog(t, dir, MemoLogOptions{})
	defer r.Close()
	if r.Len() != 3 {
		t.Fatalf("recovered %d entries, want 3 (torn tail dropped)", r.Len())
	}
	if st := r.Stats(); !st.TruncatedTail {
		t.Fatal("TruncatedTail not reported")
	}
	// The tail is physically gone: appending works and a further reopen is clean.
	if err := r.Put("k3", json.RawMessage(`3`)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openTestMemoLog(t, dir, MemoLogOptions{})
	defer r2.Close()
	if r2.Len() != 4 || r2.Stats().TruncatedTail {
		t.Fatalf("after truncation repair: Len=%d TruncatedTail=%v, want 4 and false", r2.Len(), r2.Stats().TruncatedTail)
	}
}

func TestMemoLogSnapshotCompactsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	l := openTestMemoLog(t, dir, MemoLogOptions{SnapshotEvery: 4, MaxEntries: 6})
	for i := 0; i < 12; i++ {
		if err := l.Put(fmt.Sprintf("k%02d", i), json.RawMessage(`0`)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Snapshots != 3 {
		t.Fatalf("Snapshots = %d, want 3 (every 4 appends)", st.Snapshots)
	}
	if l.Len() != 6 {
		t.Fatalf("Len = %d, want 6 (MaxEntries prune)", l.Len())
	}
	// The survivors are the newest keys, still oldest-first.
	ents := l.Entries()
	if ents[0].Key != "k06" || ents[len(ents)-1].Key != "k11" {
		t.Fatalf("pruned window = [%s..%s], want [k06..k11]", ents[0].Key, ents[len(ents)-1].Key)
	}
	l.Close()
	// Snapshot is the recovery source after compaction.
	r := openTestMemoLog(t, dir, MemoLogOptions{})
	defer r.Close()
	if r.Len() != 6 {
		t.Fatalf("recovered %d entries after compaction, want 6", r.Len())
	}
}

func TestMemoLogSkipsForeignVersionRecords(t *testing.T) {
	dir := t.TempDir()
	l := openTestMemoLog(t, dir, MemoLogOptions{})
	if err := l.Put("k0", json.RawMessage(`0`)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Append a well-framed record from a "future" format version.
	body, _ := json.Marshal(memoWALEntry{Seq: 99, V: memoLogVersion + 1, Key: "future", Value: json.RawMessage(`1`)})
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(encodeLine(body)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openTestMemoLog(t, dir, MemoLogOptions{})
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (foreign-version record skipped)", r.Len())
	}
	// The skipped record still advanced seq, so new appends stay monotone.
	if err := r.Put("k1", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openTestMemoLog(t, dir, MemoLogOptions{})
	defer r2.Close()
	if r2.Len() != 2 {
		t.Fatalf("Len = %d after foreign-version skip + append, want 2", r2.Len())
	}
}

func TestMemoLogClosedPutFails(t *testing.T) {
	l := openTestMemoLog(t, t.TempDir(), MemoLogOptions{})
	l.Close()
	if err := l.Put("k", json.RawMessage(`1`)); err == nil {
		t.Fatal("Put on closed log succeeded")
	}
}
