// Package store is greendimmd's durable job journal: a write-ahead log
// plus periodic snapshot that records, per content-addressed spec hash
// (server.SpecHash), the job's lifecycle state, its shard plan and
// completed cell ranges, and every completed sweep-cell artifact. It is
// what lets queued and running jobs survive a daemon restart, and lets
// a resubmitted identical spec resume from its completed cells instead
// of recomputing them.
//
// Layout on disk, under one directory:
//
//	wal.log        append-only records, one per line:
//	               "<crc32-hex8> <json>\n" where the JSON is a walEntry
//	               carrying a monotonically increasing seq
//	snapshot.json  the full state as of some seq; written to a temp
//	               file and atomically renamed, after which the WAL is
//	               truncated
//
// Recovery protocol (Open): load the snapshot if present, then replay
// WAL entries with seq greater than the snapshot's. The replay stops at
// the first corrupt or torn line — a crash mid-append leaves at most
// one partial record at the tail — and truncates the file there, so the
// next append continues from a clean state. Because the snapshot rename
// is atomic and the WAL truncate happens after it, a crash between the
// two merely leaves stale low-seq entries that the seq filter skips.
//
// The store knows nothing about specs or simulation: specs are opaque
// JSON, cells are opaque (key, JSON value) pairs whose keys are the
// experiment layer's memo fingerprints. Verification that a replayed
// cell is byte-exact happens above (exp.CellSet), not here.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// State is a recorded job's lifecycle state. Jobs move accepted →
// sharded → (ranges complete) → merged/failed/canceled; only the three
// last are terminal. A daemon crash leaves the record non-terminal,
// which is exactly what marks it for recovery on the next boot.
type State string

const (
	StateAccepted State = "accepted"
	StateSharded  State = "sharded"
	StateMerged   State = "merged"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateMerged || s == StateFailed || s == StateCanceled
}

// Cell is one durable sweep-cell artifact.
type Cell struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Record is the exported snapshot of one spec's journal entry.
type Record struct {
	Hash  string          `json:"hash"`
	Spec  json.RawMessage `json:"spec"`
	State State           `json:"state"`
	Err   string          `json:"err,omitempty"`
	// Total is the planned sweep cell count (0 until a shard plan lands).
	Total int `json:"total,omitempty"`
	// Planned holds the shard plan's [lo,hi) ranges; Done the completed
	// ones (disjoint, but not necessarily aligned with Planned after a
	// re-shard).
	Planned [][2]int `json:"planned,omitempty"`
	Done    [][2]int `json:"done,omitempty"`
	// CellCount is the number of journaled artifacts.
	CellCount int `json:"cell_count,omitempty"`
}

// Options tunes a Store. Zero values take defaults.
type Options struct {
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appended records (default 512). Cell artifacts dominate WAL bytes,
	// so the interval bounds replay work, not durability — every append
	// is synced.
	SnapshotEvery int
	// MaxSpecs bounds retained records (default 256): at snapshot time
	// the oldest terminal records (and their cells) are dropped.
	// Non-terminal records are never dropped.
	MaxSpecs int
	// NoSync skips the per-append fsync — for tests that hammer the WAL.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 512
	}
	if o.MaxSpecs <= 0 {
		o.MaxSpecs = 256
	}
	return o
}

// Stats is one consistent read of the store's accounting.
type Stats struct {
	// Specs and Cells count retained records and artifacts.
	Specs int
	Cells int
	// Appends counts WAL records written by this process; Snapshots
	// counts compactions.
	Appends   int64
	Snapshots int64
	// Replayed counts WAL records applied at Open; TruncatedTail is set
	// when Open cut a torn or corrupt tail off the WAL.
	Replayed      int64
	TruncatedTail bool
}

// record is the internal mutable form.
type record struct {
	hash    string
	spec    json.RawMessage
	state   State
	errMsg  string
	total   int
	planned [][2]int
	done    [][2]int
	cells   map[string]json.RawMessage
	order   []string // cell insertion order
}

func (r *record) view() Record {
	return Record{
		Hash:      r.hash,
		Spec:      r.spec,
		State:     r.state,
		Err:       r.errMsg,
		Total:     r.total,
		Planned:   append([][2]int(nil), r.planned...),
		Done:      append([][2]int(nil), r.done...),
		CellCount: len(r.cells),
	}
}

// walEntry is one WAL record. Op selects which fields are meaningful.
type walEntry struct {
	Seq  uint64 `json:"seq"`
	Op   string `json:"op"` // accept | plan | range | cell | finish
	Hash string `json:"hash"`

	Spec   json.RawMessage `json:"spec,omitempty"`   // accept
	State  State           `json:"state,omitempty"`  // finish
	Err    string          `json:"err,omitempty"`    // finish
	Total  int             `json:"total,omitempty"`  // plan
	Ranges [][2]int        `json:"ranges,omitempty"` // plan
	Lo     int             `json:"lo,omitempty"`     // range
	Hi     int             `json:"hi,omitempty"`     // range
	Key    string          `json:"key,omitempty"`    // cell
	Value  json.RawMessage `json:"value,omitempty"`  // cell
}

// snapshotFile is the on-disk snapshot shape.
type snapshotFile struct {
	Seq     uint64       `json:"seq"`
	Records []snapRecord `json:"records"`
}

type snapRecord struct {
	Record
	Cells []Cell `json:"cells,omitempty"`
}

// Store is the durable journal. All methods are safe for concurrent
// use; appends are serialized and synced before returning.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	wal     *os.File
	seq     uint64
	pending int // appends since last snapshot
	recs    map[string]*record
	order   []string // accept order of hashes
	stats   Stats
}

// Open loads (or initializes) the store in dir, applying the recovery
// protocol described in the package comment.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		recs: make(map[string]*record),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = f
	return s, nil
}

func (s *Store) walPath() string  { return filepath.Join(s.dir, "wal.log") }
func (s *Store) snapPath() string { return filepath.Join(s.dir, "snapshot.json") }

// loadSnapshot applies snapshot.json if present.
func (s *Store) loadSnapshot() error {
	b, err := os.ReadFile(s.snapPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot: %w", err)
	}
	s.seq = snap.Seq
	for _, sr := range snap.Records {
		r := &record{
			hash:    sr.Hash,
			spec:    sr.Spec,
			state:   sr.State,
			errMsg:  sr.Err,
			total:   sr.Total,
			planned: sr.Planned,
			done:    sr.Done,
			cells:   make(map[string]json.RawMessage, len(sr.Cells)),
		}
		for _, c := range sr.Cells {
			if _, ok := r.cells[c.Key]; !ok {
				r.cells[c.Key] = c.Value
				r.order = append(r.order, c.Key)
			}
		}
		s.recs[sr.Hash] = r
		s.order = append(s.order, sr.Hash)
	}
	return nil
}

// replayWAL applies WAL entries past the snapshot seq, truncating the
// file at the first torn or corrupt line.
func (s *Store) replayWAL() error {
	b, err := os.ReadFile(s.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading wal: %w", err)
	}
	off := 0
	for off < len(b) {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := b[off : off+nl]
		e, ok := decodeLine(line)
		if !ok {
			break // corrupt from here on; cut the tail
		}
		if e.Seq > s.seq {
			s.apply(e)
			s.seq = e.Seq
			s.stats.Replayed++
		}
		off += nl + 1
	}
	if off < len(b) {
		s.stats.TruncatedTail = true
		if err := os.Truncate(s.walPath(), int64(off)); err != nil {
			return fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
	}
	return nil
}

// decodeLine parses "<crc8hex> <json>" and verifies the checksum.
func decodeLine(line []byte) (walEntry, bool) {
	var e walEntry
	body, ok := checkLine(line)
	if !ok {
		return e, false
	}
	if err := json.Unmarshal(body, &e); err != nil {
		return e, false
	}
	return e, true
}

// checkLine validates one WAL line's "<crc8hex> <json>" framing and
// checksum, returning the JSON body. Shared by the job journal and the
// memo log so both speak the identical on-disk record format.
func checkLine(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return nil, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, false
	}
	return body, true
}

// encodeLine frames a JSON body as one checksummed WAL line.
func encodeLine(body []byte) string {
	return fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)
}

// apply mutates in-memory state with one entry. Caller holds mu (or is
// single-threaded replay).
func (s *Store) apply(e walEntry) {
	r := s.recs[e.Hash]
	switch e.Op {
	case "accept":
		if r == nil {
			r = &record{hash: e.Hash, spec: e.Spec, cells: make(map[string]json.RawMessage)}
			s.recs[e.Hash] = r
			s.order = append(s.order, e.Hash)
		}
		// Re-acceptance of a finished spec re-opens it, keeping its
		// journaled cells and completed ranges: that is the resume path.
		r.state = StateAccepted
		r.errMsg = ""
		if len(e.Spec) > 0 {
			r.spec = e.Spec
		}
	case "plan":
		if r == nil {
			return
		}
		r.state = StateSharded
		r.total = e.Total
		r.planned = e.Ranges
	case "range":
		if r == nil {
			return
		}
		r.done = addRange(r.done, e.Lo, e.Hi)
	case "cell":
		if r == nil {
			return
		}
		if _, ok := r.cells[e.Key]; !ok {
			r.cells[e.Key] = e.Value
			r.order = append(r.order, e.Key)
		}
	case "finish":
		if r == nil {
			return
		}
		r.state = e.State
		r.errMsg = e.Err
	}
}

// addRange inserts [lo,hi) keeping the set sorted and merged.
func addRange(done [][2]int, lo, hi int) [][2]int {
	if hi <= lo {
		return done
	}
	out := make([][2]int, 0, len(done)+1)
	placed := false
	for _, r := range done {
		switch {
		case r[1] < lo || (placed && r[0] > hi):
			out = append(out, r)
		case r[0] > hi:
			if !placed {
				out = append(out, [2]int{lo, hi})
				placed = true
			}
			out = append(out, r)
		default: // overlap or adjacency: merge
			if r[0] < lo {
				lo = r[0]
			}
			if r[1] > hi {
				hi = r[1]
			}
		}
	}
	if !placed {
		out = append(out, [2]int{lo, hi})
	}
	// Re-sort by lo: merging may have grown [lo,hi) past later entries
	// already copied; normalize with one more merge pass.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r[0] <= merged[n-1][1] {
			if r[1] > merged[n-1][1] {
				merged[n-1][1] = r[1]
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// append writes one entry to the WAL (synced) and applies it. Caller
// holds mu.
func (s *Store) append(e walEntry) error {
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	s.seq++
	e.Seq = s.seq
	body, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding wal entry: %w", err)
	}
	if _, err := s.wal.WriteString(encodeLine(body)); err != nil {
		return fmt.Errorf("store: appending wal: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: syncing wal: %w", err)
		}
	}
	s.apply(e)
	s.stats.Appends++
	s.pending++
	if s.pending >= s.opts.SnapshotEvery {
		return s.snapshot()
	}
	return nil
}

// snapshot writes the full state to snapshot.json (temp file + atomic
// rename), prunes old terminal records past MaxSpecs, and truncates the
// WAL. Caller holds mu.
func (s *Store) snapshot() error {
	// Prune oldest terminal records beyond the bound before persisting.
	if excess := len(s.order) - s.opts.MaxSpecs; excess > 0 {
		kept := s.order[:0]
		for _, h := range s.order {
			if excess > 0 {
				if r := s.recs[h]; r != nil && r.state.Terminal() {
					delete(s.recs, h)
					excess--
					continue
				}
			}
			kept = append(kept, h)
		}
		s.order = kept
	}
	snap := snapshotFile{Seq: s.seq}
	for _, h := range s.order {
		r := s.recs[h]
		sr := snapRecord{Record: r.view()}
		for _, k := range r.order {
			sr.Cells = append(sr.Cells, Cell{Key: k, Value: r.cells[k]})
		}
		snap.Records = append(snap.Records, sr)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp := s.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating wal: %w", err)
	}
	s.pending = 0
	s.stats.Snapshots++
	return nil
}

// Accept journals a spec's (re-)acceptance. An existing record —
// terminal or not — is re-opened in state accepted with its cells and
// completed ranges intact, which is how a resubmitted spec resumes.
func (s *Store) Accept(hash string, spec json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.recs[hash]; ok && r.state == StateAccepted {
		return nil // already open; keep the WAL quiet on duplicate submits
	}
	return s.append(walEntry{Op: "accept", Hash: hash, Spec: compactJSON(spec)})
}

// Plan journals a shard plan: the sweep's total cell count and the
// planned [lo,hi) ranges. The record moves to state sharded.
func (s *Store) Plan(hash string, total int, ranges [][2]int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[hash]; !ok {
		return nil // record pruned or never accepted; nothing to attach to
	}
	return s.append(walEntry{Op: "plan", Hash: hash, Total: total, Ranges: ranges})
}

// RangeDone journals completion of cell range [lo,hi). Call only after
// the range's cells are journaled: recovery trusts a done range to be
// fully backed by artifacts (a violated ordering degrades to
// recomputation at merge, not to wrong bytes).
func (s *Store) RangeDone(hash string, lo, hi int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[hash]; !ok {
		return nil
	}
	return s.append(walEntry{Op: "range", Hash: hash, Lo: lo, Hi: hi})
}

// PutCell journals one completed cell artifact. A key already present
// is skipped without touching the WAL — cells are deterministic, so a
// duplicate carries no new information and resume must not grow the log.
func (s *Store) PutCell(hash, key string, value json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[hash]
	if !ok {
		return nil
	}
	if _, ok := r.cells[key]; ok {
		return nil
	}
	return s.append(walEntry{Op: "cell", Hash: hash, Key: key, Value: compactJSON(value)})
}

// Finish journals a terminal state. st must be terminal.
func (s *Store) Finish(hash string, st State, errMsg string) error {
	if !st.Terminal() {
		return fmt.Errorf("store: Finish with non-terminal state %q", st)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[hash]; !ok {
		return nil
	}
	return s.append(walEntry{Op: "finish", Hash: hash, State: st, Err: errMsg})
}

// Get returns one record's snapshot.
func (s *Store) Get(hash string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[hash]
	if !ok {
		return Record{}, false
	}
	return r.view(), true
}

// Pending returns every non-terminal record in acceptance order — the
// jobs a restarted daemon must re-enqueue.
func (s *Store) Pending() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, h := range s.order {
		if r := s.recs[h]; r != nil && !r.state.Terminal() {
			out = append(out, r.view())
		}
	}
	return out
}

// Resume returns a record's journaled cells (insertion order) and its
// completed ranges — everything a re-run needs to skip finished work.
func (s *Store) Resume(hash string) ([]Cell, [][2]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[hash]
	if !ok {
		return nil, nil
	}
	cells := make([]Cell, 0, len(r.order))
	for _, k := range r.order {
		cells = append(cells, Cell{Key: k, Value: r.cells[k]})
	}
	return cells, append([][2]int(nil), r.done...)
}

// Stats returns one consistent read of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Specs = len(s.recs)
	for _, r := range s.recs {
		st.Cells += len(r.cells)
	}
	return st
}

// Close releases the WAL file handle. Further mutations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// compactJSON normalizes whitespace so replayed bytes compare equal to
// freshly marshaled ones. Invalid JSON passes through unchanged.
func compactJSON(raw json.RawMessage) json.RawMessage {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return buf.Bytes()
}
