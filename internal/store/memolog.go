package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// MemoLog is the durable side of the sweep memo: an append-only journal
// of (key, canonical JSON value) memo entries under its own directory —
// greendimmd uses <store-dir>/memo/ — using the same WAL + atomic-rename
// snapshot discipline as the job journal (see the package comment), so a
// daemon that crashed or restarted reopens the log and boots with its
// baseline cells warm instead of recomputing them.
//
// The log stores opaque versioned entries; it does not decode values or
// know key families. Verification happens above it on both sides:
// sweep.Memo.Import runs every replayed entry through the experiment
// codec (strict decode + re-marshal byte equality) before trusting it,
// so a corrupt or stale log entry degrades to recomputation, never to a
// divergent result.
//
// Layout in dir: wal.log (one "<crc32-hex8> <json>\n" memoWALEntry per
// line, monotone seq) and snapshot.json ({seq, entries}). Recovery
// matches the job journal: load snapshot, replay WAL entries with
// higher seq, truncate the first torn or corrupt tail line.
type MemoLog struct {
	dir  string
	opts MemoLogOptions

	mu      sync.Mutex
	wal     *os.File
	seq     uint64
	pending int
	vals    map[string]json.RawMessage
	order   []string // key insertion order (oldest first)
	stats   MemoLogStats
}

// MemoLogOptions tunes a MemoLog. Zero values take defaults.
type MemoLogOptions struct {
	// SnapshotEvery compacts the WAL after this many appends (default
	// 256). Every append is synced, so the interval bounds replay work,
	// not durability.
	SnapshotEvery int
	// MaxEntries bounds retained entries (default 4096): at snapshot
	// time the oldest entries beyond the bound are dropped — the disk
	// analogue of the memo's LRU cap, and equally result-neutral.
	MaxEntries int
	// NoSync skips the per-append fsync — for tests that hammer the WAL.
	NoSync bool
}

func (o MemoLogOptions) withDefaults() MemoLogOptions {
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 256
	}
	if o.MaxEntries <= 0 {
		o.MaxEntries = 4096
	}
	return o
}

// MemoLogStats is one consistent read of the log's accounting.
type MemoLogStats struct {
	Entries       int
	Appends       int64
	Snapshots     int64
	Replayed      int64
	TruncatedTail bool
}

// memoLogVersion is the entry format version journaled with every
// record. Replay skips records from other versions, so a log written by
// a future format reads as empty, not as garbage.
const memoLogVersion = 1

// memoWALEntry is one memo-log WAL record.
type memoWALEntry struct {
	Seq   uint64          `json:"seq"`
	V     int             `json:"v"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// memoSnapshotFile is the on-disk snapshot shape.
type memoSnapshotFile struct {
	Seq     uint64 `json:"seq"`
	V       int    `json:"v"`
	Entries []Cell `json:"entries"`
}

// OpenMemoLog loads (or initializes) the memo log in dir.
func OpenMemoLog(dir string, opts MemoLogOptions) (*MemoLog, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: memo log: %w", err)
	}
	l := &MemoLog{
		dir:  dir,
		opts: opts,
		vals: make(map[string]json.RawMessage),
	}
	if err := l.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := l.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(l.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: memo log: %w", err)
	}
	l.wal = f
	return l, nil
}

func (l *MemoLog) walPath() string  { return filepath.Join(l.dir, "wal.log") }
func (l *MemoLog) snapPath() string { return filepath.Join(l.dir, "snapshot.json") }

func (l *MemoLog) loadSnapshot() error {
	b, err := os.ReadFile(l.snapPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: memo log: reading snapshot: %w", err)
	}
	var snap memoSnapshotFile
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("store: memo log: corrupt snapshot: %w", err)
	}
	l.seq = snap.Seq
	if snap.V != memoLogVersion {
		return nil // future or foreign format: start cold, keep the seq
	}
	for _, c := range snap.Entries {
		if _, ok := l.vals[c.Key]; !ok {
			l.vals[c.Key] = c.Value
			l.order = append(l.order, c.Key)
		}
	}
	return nil
}

func (l *MemoLog) replayWAL() error {
	b, err := os.ReadFile(l.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: memo log: reading wal: %w", err)
	}
	off := 0
	for off < len(b) {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		body, ok := checkLine(b[off : off+nl])
		if !ok {
			break // corrupt from here on; cut the tail
		}
		var e memoWALEntry
		if err := json.Unmarshal(body, &e); err != nil {
			break
		}
		if e.Seq > l.seq {
			if e.V == memoLogVersion {
				l.apply(e.Key, e.Value)
				l.stats.Replayed++
			}
			l.seq = e.Seq
		}
		off += nl + 1
	}
	if off < len(b) {
		l.stats.TruncatedTail = true
		if err := os.Truncate(l.walPath(), int64(off)); err != nil {
			return fmt.Errorf("store: memo log: truncating torn wal tail: %w", err)
		}
	}
	return nil
}

// apply installs one entry in memory; first write of a key wins (memo
// values are deterministic, so duplicates agree). Caller holds mu or is
// single-threaded replay.
func (l *MemoLog) apply(key string, value json.RawMessage) {
	if _, ok := l.vals[key]; ok {
		return
	}
	l.vals[key] = value
	l.order = append(l.order, key)
}

// Put journals one memo entry. A key already present is skipped without
// touching the WAL: entries are deterministic, so a duplicate carries no
// new information and repeat sweeps must not grow the log.
func (l *MemoLog) Put(key string, value json.RawMessage) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return fmt.Errorf("store: memo log: closed")
	}
	if _, ok := l.vals[key]; ok {
		return nil
	}
	l.seq++
	e := memoWALEntry{Seq: l.seq, V: memoLogVersion, Key: key, Value: compactJSON(value)}
	body, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: memo log: encoding wal entry: %w", err)
	}
	if _, err := l.wal.WriteString(encodeLine(body)); err != nil {
		return fmt.Errorf("store: memo log: appending wal: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.wal.Sync(); err != nil {
			return fmt.Errorf("store: memo log: syncing wal: %w", err)
		}
	}
	l.apply(e.Key, e.Value)
	l.stats.Appends++
	l.pending++
	if l.pending >= l.opts.SnapshotEvery {
		return l.snapshot()
	}
	return nil
}

// snapshot writes the retained entries to snapshot.json (temp file +
// atomic rename), pruning the oldest beyond MaxEntries first, then
// truncates the WAL. Caller holds mu.
func (l *MemoLog) snapshot() error {
	if excess := len(l.order) - l.opts.MaxEntries; excess > 0 {
		for _, k := range l.order[:excess] {
			delete(l.vals, k)
		}
		l.order = append([]string(nil), l.order[excess:]...)
	}
	snap := memoSnapshotFile{Seq: l.seq, V: memoLogVersion}
	for _, k := range l.order {
		snap.Entries = append(snap.Entries, Cell{Key: k, Value: l.vals[k]})
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: memo log: encoding snapshot: %w", err)
	}
	tmp := l.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("store: memo log: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, l.snapPath()); err != nil {
		return fmt.Errorf("store: memo log: publishing snapshot: %w", err)
	}
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: memo log: truncating wal: %w", err)
	}
	l.pending = 0
	l.stats.Snapshots++
	return nil
}

// Entries returns every retained entry in insertion order (oldest
// first), so importing into an LRU-bounded memo leaves the newest
// entries most recently used.
func (l *MemoLog) Entries() []Cell {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Cell, 0, len(l.order))
	for _, k := range l.order {
		out = append(out, Cell{Key: k, Value: l.vals[k]})
	}
	return out
}

// Len reports the number of retained entries.
func (l *MemoLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.vals)
}

// Stats returns one consistent read of the log's accounting.
func (l *MemoLog) Stats() MemoLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Entries = len(l.vals)
	return st
}

// Close releases the WAL file handle. Further Puts fail.
func (l *MemoLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil
	}
	err := l.wal.Close()
	l.wal = nil
	return err
}
