package kernel

import "testing"

func swapMem(t *testing.T) *Mem {
	t.Helper()
	m := newMem(t, Config{TotalBytes: 16 * oneMB, PageBytes: testPage})
	m.ConfigureSwap(8 * oneMB)
	return m
}

func TestSwapOutFreesFrames(t *testing.T) {
	m := swapMem(t)
	if _, err := m.AllocPages(1000, true, 5); err != nil {
		t.Fatal(err)
	}
	freeBefore := m.Meminfo().FreeBytes
	n, err := m.SwapOutOwnerPages(5, 300)
	if err != nil || n != 300 {
		t.Fatalf("swapped %d, err %v", n, err)
	}
	if m.Meminfo().FreeBytes != freeBefore+300*testPage {
		t.Error("frames not freed by swap-out")
	}
	if m.SwappedPageCount(5) != 300 || m.SwapUsedBytes() != 300*testPage {
		t.Error("swap accounting wrong")
	}
	if m.OwnerPageCount(5) != 700 {
		t.Error("resident count wrong")
	}
}

func TestSwapInRestores(t *testing.T) {
	m := swapMem(t)
	if _, err := m.AllocPages(1000, true, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapOutOwnerPages(5, 300); err != nil {
		t.Fatal(err)
	}
	n, err := m.SwapInOwnerPages(5, 200)
	if err != nil || n != 200 {
		t.Fatalf("swapped in %d, err %v", n, err)
	}
	if m.SwappedPageCount(5) != 100 || m.OwnerPageCount(5) != 900 {
		t.Error("accounting after swap-in wrong")
	}
	outs, ins := m.SwapTraffic()
	if outs != 300 || ins != 200 {
		t.Errorf("traffic = %d/%d", outs, ins)
	}
	// Swapping in more than is swapped caps at the swapped count.
	if n, err := m.SwapInOwnerPages(5, 500); err != nil || n != 100 {
		t.Errorf("over-swap-in: %d, %v", n, err)
	}
}

func TestSwapDeviceCapacity(t *testing.T) {
	m := newMem(t, Config{TotalBytes: 16 * oneMB, PageBytes: testPage})
	m.ConfigureSwap(100 * testPage)
	if _, err := m.AllocPages(1000, true, 5); err != nil {
		t.Fatal(err)
	}
	if n, err := m.SwapOutOwnerPages(5, 300); err != nil || n != 100 {
		t.Fatalf("capped swap-out = %d, err %v (want 100)", n, err)
	}
	if _, err := m.SwapOutOwnerPages(5, 1); err != ErrSwapFull {
		t.Errorf("expected ErrSwapFull, got %v", err)
	}
	// Without any swap device, swap-out fails cleanly.
	m2 := newMem(t, Config{TotalBytes: 4 * oneMB, PageBytes: testPage})
	if _, err := m2.SwapOutOwnerPages(5, 1); err == nil {
		t.Error("swap without device succeeded")
	}
}

func TestDirectReclaimRetriesAllocation(t *testing.T) {
	m := swapMem(t)
	// Fill memory with a victim owner.
	if _, err := m.AllocPages(4096, true, 5); err != nil {
		t.Fatal(err)
	}
	reclaims := 0
	m.SetReclaimer(func(pages int64) bool {
		reclaims++
		n, err := m.SwapOutOwnerPages(5, pages+16)
		return err == nil && n > 0
	})
	// A new allocation that cannot fit must trigger reclaim and succeed.
	pfns, err := m.AllocPages(64, true, 6)
	if err != nil {
		t.Fatalf("allocation with reclaim failed: %v", err)
	}
	if len(pfns) != 64 || reclaims == 0 {
		t.Errorf("pages=%d reclaims=%d", len(pfns), reclaims)
	}
	if m.SwappedPageCount(5) == 0 {
		t.Error("victim not swapped")
	}
}

func TestReclaimerCannotRecurse(t *testing.T) {
	m := swapMem(t)
	if _, err := m.AllocPages(4096, true, 5); err != nil {
		t.Fatal(err)
	}
	depth := 0
	m.SetReclaimer(func(pages int64) bool {
		depth++
		if depth > 1 {
			t.Fatal("reclaimer re-entered")
		}
		// A reclaimer that itself allocates must not recurse into reclaim.
		_, _ = m.AllocPages(10, true, 7)
		depth--
		return false
	})
	if _, err := m.AllocPages(64, true, 6); err != ErrNoMemory {
		t.Errorf("expected ErrNoMemory, got %v", err)
	}
}
