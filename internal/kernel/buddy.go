package kernel

import (
	"container/heap"
	"fmt"
)

// buddy is a binary-buddy allocator over a contiguous PFN range, the same
// scheme mm/page_alloc.c uses. Free blocks are tracked per order in
// min-heaps of head PFNs (lowest-address-first allocation, which matches
// the empirically useful property that free memory accumulates at high
// addresses — exactly what lets GreenDIMM off-line the top blocks).
//
// freeOrder records, for the head page of each free block, its order + 1
// (0 means "not a free-block head"), enabling O(maxOrder) buddy lookup and
// the arbitrary-page carve-out that memory off-lining needs.
type buddy struct {
	base     PFN // first PFN of the zone
	npages   int64
	maxOrder int // largest block is 1<<maxOrder pages
	lists    []pfnHeap
	free     int64
	// freeOrder[pfn-base] = order+1 when pfn heads a free block.
	freeOrder []uint8
}

type pfnHeap []PFN

func (h pfnHeap) Len() int           { return len(h) }
func (h pfnHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h pfnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pfnHeap) Push(x any)        { *h = append(*h, x.(PFN)) }
func (h *pfnHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// newBuddy creates a zone over [base, base+npages) with all pages free.
// npages must be a multiple of the max block size and base aligned to it.
func newBuddy(base PFN, npages int64, maxOrder int) (*buddy, error) {
	blk := int64(1) << maxOrder
	if npages <= 0 || npages%blk != 0 {
		return nil, fmt.Errorf("kernel: zone size %d not a multiple of max order block %d", npages, blk)
	}
	if int64(base)%blk != 0 {
		return nil, fmt.Errorf("kernel: zone base %d not aligned to %d", base, blk)
	}
	b := &buddy{
		base:      base,
		npages:    npages,
		maxOrder:  maxOrder,
		lists:     make([]pfnHeap, maxOrder+1),
		freeOrder: make([]uint8, npages),
	}
	for p := base; p < base+PFN(npages); p += PFN(blk) {
		b.insertFree(p, maxOrder)
	}
	b.free = npages
	return b, nil
}

// Contains reports whether pfn lies in the zone.
func (b *buddy) Contains(pfn PFN) bool {
	return pfn >= b.base && pfn < b.base+PFN(b.npages)
}

// Free reports the number of free pages.
func (b *buddy) Free() int64 { return b.free }

func (b *buddy) insertFree(pfn PFN, order int) {
	b.freeOrder[pfn-b.base] = uint8(order) + 1
	heap.Push(&b.lists[order], pfn)
}

// removeFreeHead clears the free-head mark; the heap entry is removed
// lazily at pop time.
func (b *buddy) removeFreeHead(pfn PFN) {
	b.freeOrder[pfn-b.base] = 0
}

func (b *buddy) isFreeHead(pfn PFN, order int) bool {
	return b.Contains(pfn) && b.freeOrder[pfn-b.base] == uint8(order)+1
}

// alloc takes the lowest-addressed free block of at least the given order,
// splitting as needed. Returns the head PFN.
func (b *buddy) alloc(order int) (PFN, bool) {
	if order > b.maxOrder {
		return 0, false
	}
	for o := order; o <= b.maxOrder; o++ {
		for len(b.lists[o]) > 0 {
			pfn := b.lists[o][0]
			if !b.isFreeHead(pfn, o) { // stale heap entry
				heap.Pop(&b.lists[o])
				continue
			}
			heap.Pop(&b.lists[o])
			b.removeFreeHead(pfn)
			// Split down to the requested order, freeing upper halves.
			for cur := o; cur > order; cur-- {
				half := PFN(int64(1) << (cur - 1))
				b.insertFree(pfn+half, cur-1)
			}
			b.free -= int64(1) << order
			return pfn, true
		}
	}
	return 0, false
}

// freeBlock returns a block to the allocator, coalescing with free buddies.
func (b *buddy) freeBlock(pfn PFN, order int) {
	if !b.Contains(pfn) {
		panic(fmt.Sprintf("kernel: freeing pfn %d outside zone [%d,%d)", pfn, b.base, b.base+PFN(b.npages)))
	}
	if b.freeOrder[pfn-b.base] != 0 {
		panic(fmt.Sprintf("kernel: double free of pfn %d", pfn))
	}
	b.free += int64(1) << order
	for order < b.maxOrder {
		size := PFN(int64(1) << order)
		bud := pfn ^ size // buddy address at this order
		if !b.isFreeHead(bud, order) {
			break
		}
		b.removeFreeHead(bud)
		if bud < pfn {
			pfn = bud
		}
		order++
	}
	b.insertFree(pfn, order)
}

// carve removes a specific free page from the free lists (the page must be
// free), splitting its containing free block. This is what page isolation
// does during memory off-lining. Reports whether the page was found free.
func (b *buddy) carve(pfn PFN) bool {
	// Find the free block containing pfn: its head is pfn aligned down at
	// some order with the free-head mark set.
	for o := 0; o <= b.maxOrder; o++ {
		head := pfn &^ (PFN(int64(1)<<o) - 1)
		if !b.isFreeHead(head, o) {
			continue
		}
		b.removeFreeHead(head)
		// Split the block, re-freeing every piece except the target page.
		for cur := o; cur > 0; cur-- {
			half := PFN(int64(1) << (cur - 1))
			if pfn < head+half {
				b.insertFree(head+half, cur-1)
			} else {
				b.insertFree(head, cur-1)
				head += half
			}
		}
		b.free--
		return true
	}
	return false
}
