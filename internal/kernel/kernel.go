// Package kernel models the slice of Linux physical-memory management that
// GreenDIMM interacts with: the page-frame array with per-page state and
// movability, Normal and Movable zones backed by real buddy allocators,
// owner-tracked user allocations, page migration, and /proc/meminfo-style
// accounting. Memory-block on/off-lining builds on these primitives in
// internal/hotplug.
//
// Pages carry no data; content identity (needed by KSM) lives in
// internal/ksm, which registers a migration hook so content follows pages.
//
// Everything here is cross-channel state (allocations and policy span
// the whole address space), so under a channel-sharded engine
// (sim.SetShards, DESIGN.md §10) kernel events always run on the global
// lane — model code in this package must never be scheduled through a
// per-channel lane view.
package kernel

import (
	"fmt"
	"math/bits"

	"greendimm/internal/sim"
)

// PFN is a physical page frame number.
type PFN int64

// PageState is the lifecycle state of a page frame.
type PageState uint8

const (
	// PageFree: in the buddy allocator.
	PageFree PageState = iota
	// PageMovable: allocated user memory, migratable.
	PageMovable
	// PageUnmovable: allocated kernel/device memory, not migratable.
	PageUnmovable
	// PageIsolated: temporarily removed from the allocator during
	// off-lining (still holds its allocation state implicitly free).
	PageIsolated
	// PageOffline: removed from the physical address space.
	PageOffline
)

var pageStateNames = [...]string{"free", "movable", "unmovable", "isolated", "offline"}

func (s PageState) String() string {
	if int(s) >= len(pageStateNames) {
		return "invalid"
	}
	return pageStateNames[s]
}

// KernelOwner is the reserved owner id for unmovable kernel allocations.
const KernelOwner uint32 = 0

// Config describes the physical memory layout.
type Config struct {
	TotalBytes int64
	PageBytes  int64 // page size; 4KB kernels, larger for big scaled sims

	// MovableBytes reserves the top MovableBytes of the address space as
	// the Movable zone (the movablecore= boot parameter). Zero keeps a
	// single Normal zone.
	MovableBytes int64

	// KernelReservedBytes is allocated as unmovable at boot (text, slab,
	// page tables, DMA buffers).
	KernelReservedBytes int64

	// UnmovableLeakEvery scatters one unmovable kernel page into the
	// movable region every N memory-block-sized strides at boot, modelling
	// the paper's §5.2 observation that "reserved movable regions can also
	// have unmovable pages". Zero disables scattering.
	UnmovableLeakEvery int

	// Seed drives boot-time scattering placement.
	Seed int64
}

// pageMeta is per-page-frame metadata (kept small: millions of instances).
type pageMeta struct {
	state PageState
	owner uint32
}

// Mem is the machine's physical memory manager.
type Mem struct {
	cfg      Config
	npages   int64
	pages    []pageMeta
	normal   *buddy // always present
	movable  *buddy // nil without a movable zone
	movStart PFN    // first movable-zone PFN (== npages when no zone)

	// ownerPages tracks each owner's pages for LIFO partial frees and
	// whole-owner teardown. posInOwner[pfn] is the page's index in its
	// owner's slice (swap-remove bookkeeping).
	ownerPages map[uint32][]PFN
	posInOwner []int32

	onlinePages int64
	usedPages   int64 // movable + unmovable
	migrations  int64
	onMigrate   []func(src, dst PFN)
	pageTap     func(pfn PFN, alloc bool)
	migrateCost sim.Time // accumulated modelled migration work

	// Swap state (see swap.go).
	swapCapPages  int64
	swapUsedPages int64
	swappedPages  map[uint32]int64
	swapOuts      int64
	swapIns       int64
	reclaimer     func(pages int64) bool
	reclaiming    bool
}

// New boots a memory manager.
func New(cfg Config) (*Mem, error) {
	if cfg.PageBytes <= 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		return nil, fmt.Errorf("kernel: page size %d not a power of two", cfg.PageBytes)
	}
	if cfg.TotalBytes <= 0 || cfg.TotalBytes%cfg.PageBytes != 0 {
		return nil, fmt.Errorf("kernel: total %d not a multiple of page size %d", cfg.TotalBytes, cfg.PageBytes)
	}
	npages := cfg.TotalBytes / cfg.PageBytes
	if cfg.MovableBytes < 0 || cfg.MovableBytes%cfg.PageBytes != 0 || cfg.MovableBytes > cfg.TotalBytes {
		return nil, fmt.Errorf("kernel: movable size %d invalid", cfg.MovableBytes)
	}
	movPages := cfg.MovableBytes / cfg.PageBytes

	maxOrder := 10 // 4MB blocks at 4KB pages, Linux's MAX_ORDER-1
	for npages%(1<<maxOrder) != 0 || (movPages != 0 && movPages%(1<<maxOrder) != 0) {
		maxOrder--
		if maxOrder < 0 {
			return nil, fmt.Errorf("kernel: zone sizes not alignable")
		}
	}

	m := &Mem{
		cfg:         cfg,
		npages:      npages,
		pages:       make([]pageMeta, npages),
		ownerPages:  make(map[uint32][]PFN),
		posInOwner:  make([]int32, npages),
		movStart:    PFN(npages - movPages),
		onlinePages: npages,
	}
	var err error
	if m.normal, err = newBuddy(0, npages-movPages, maxOrder); err != nil {
		return nil, err
	}
	if movPages > 0 {
		if m.movable, err = newBuddy(m.movStart, movPages, maxOrder); err != nil {
			return nil, err
		}
	}
	if err := m.bootReserve(); err != nil {
		return nil, err
	}
	return m, nil
}

// bootReserve pins the kernel's own unmovable memory.
func (m *Mem) bootReserve() error {
	pages := m.cfg.KernelReservedBytes / m.cfg.PageBytes
	if pages > 0 {
		if _, err := m.AllocPages(pages, false, KernelOwner); err != nil {
			return fmt.Errorf("kernel: boot reservation: %w", err)
		}
	}
	if m.cfg.UnmovableLeakEvery > 0 {
		g := sim.NewRNG(m.cfg.Seed ^ 0x6b65726e)
		stride := m.npages / 64 // one candidate region per sub-array-group-ish slice
		if stride == 0 {
			stride = 1
		}
		for i, base := int64(0), int64(0); base < m.npages; i, base = i+1, base+stride {
			if int(i)%m.cfg.UnmovableLeakEvery != 0 {
				continue
			}
			pfn := PFN(base + g.Int63n(stride))
			if m.pages[pfn].state != PageFree {
				continue
			}
			if m.carveSpecific(pfn) {
				m.setAllocated(pfn, false, KernelOwner)
			}
		}
	}
	return nil
}

// PageBytes returns the page size.
func (m *Mem) PageBytes() int64 { return m.cfg.PageBytes }

// NPages returns the total page-frame count (online + offline).
func (m *Mem) NPages() int64 { return m.npages }

// State returns the state of a page.
func (m *Mem) State(pfn PFN) PageState { return m.pages[pfn].state }

// Owner returns the owner of an allocated page.
func (m *Mem) Owner(pfn PFN) uint32 { return m.pages[pfn].owner }

// Meminfo mirrors the /proc/meminfo fields GreenDIMM's usage monitor reads.
type Meminfo struct {
	TotalBytes int64 // on-lined capacity
	FreeBytes  int64
	UsedBytes  int64
}

// Meminfo reports current memory accounting.
func (m *Mem) Meminfo() Meminfo {
	return Meminfo{
		TotalBytes: m.onlinePages * m.cfg.PageBytes,
		FreeBytes:  (m.onlinePages - m.usedPages) * m.cfg.PageBytes,
		UsedBytes:  m.usedPages * m.cfg.PageBytes,
	}
}

// Migrations reports how many pages have been migrated since boot.
func (m *Mem) Migrations() int64 { return m.migrations }

// OnMigrate registers a hook invoked after each page migration with the
// source and destination PFNs (KSM uses this to move content identity).
func (m *Mem) OnMigrate(fn func(src, dst PFN)) {
	m.onMigrate = append(m.onMigrate, fn)
}

// SetPageTap registers the per-page event hook: called with (pfn, true)
// when a page is allocated and (pfn, false) when it is released. This is
// the access stream GreenDIMM's block-activity trackers consume. One tap
// only — last registration wins; nil removes it.
func (m *Mem) SetPageTap(fn func(pfn PFN, alloc bool)) { m.pageTap = fn }

// zoneFor returns the zone owning pfn.
func (m *Mem) zoneFor(pfn PFN) *buddy {
	if m.movable != nil && pfn >= m.movStart {
		return m.movable
	}
	return m.normal
}

// setAllocated marks a page allocated and registers owner bookkeeping.
func (m *Mem) setAllocated(pfn PFN, movableAlloc bool, owner uint32) {
	st := PageUnmovable
	if movableAlloc {
		st = PageMovable
	}
	m.pages[pfn] = pageMeta{state: st, owner: owner}
	lst := m.ownerPages[owner]
	m.posInOwner[pfn] = int32(len(lst))
	m.ownerPages[owner] = append(lst, pfn)
	m.usedPages++
	if m.pageTap != nil {
		m.pageTap(pfn, true)
	}
}

// clearAllocated removes owner bookkeeping; the caller decides the next
// page state.
func (m *Mem) clearAllocated(pfn PFN) {
	owner := m.pages[pfn].owner
	lst := m.ownerPages[owner]
	pos := m.posInOwner[pfn]
	last := lst[len(lst)-1]
	lst[pos] = last
	m.posInOwner[last] = pos
	m.ownerPages[owner] = lst[:len(lst)-1]
	m.usedPages--
	if m.pageTap != nil {
		m.pageTap(pfn, false)
	}
}

// AllocPages allocates n pages for owner, movable or unmovable, returning
// the PFNs in allocation order. Unmovable allocations are served from the
// Normal zone only; movable allocations prefer the Movable zone. Fails
// with ErrNoMemory (rolling back) if memory is exhausted.
func (m *Mem) AllocPages(n int64, movableAlloc bool, owner uint32) ([]PFN, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kernel: non-positive allocation %d", n)
	}
	var got []PFN
	remaining := n
	zones := []*buddy{m.normal}
	if movableAlloc && m.movable != nil {
		zones = []*buddy{m.movable, m.normal}
	}
	for _, z := range zones {
		for remaining > 0 {
			order := orderFor(remaining, z.maxOrder)
			pfn, ok := z.alloc(order)
			if !ok {
				if order == 0 {
					break // zone exhausted, try next
				}
				// Retry smaller orders before giving up on the zone.
				found := false
				for o := order - 1; o >= 0; o-- {
					if pfn, ok = z.alloc(o); ok {
						order, found = o, true
						break
					}
				}
				if !found {
					break
				}
			}
			cnt := int64(1) << order
			for i := int64(0); i < cnt; i++ {
				m.setAllocated(pfn+PFN(i), movableAlloc, owner)
				got = append(got, pfn+PFN(i))
			}
			remaining -= cnt
		}
		if remaining == 0 {
			break
		}
	}
	if remaining > 0 {
		// Direct reclaim: give the configured reclaimer one chance to
		// free memory (swap-out), then retry. The guard prevents
		// recursion when the reclaimer itself allocates.
		if m.reclaimer != nil && !m.reclaiming {
			m.reclaiming = true
			ok := m.reclaimer(remaining)
			m.reclaiming = false
			if ok {
				rest, err := m.AllocPages(remaining, movableAlloc, owner)
				if err == nil {
					return append(got, rest...), nil
				}
			}
		}
		for _, pfn := range got {
			m.freeOne(pfn)
		}
		return nil, ErrNoMemory
	}
	return got, nil
}

// ErrNoMemory is returned when an allocation cannot be satisfied.
var ErrNoMemory = fmt.Errorf("kernel: out of memory")

// orderFor picks the largest order not exceeding remaining.
func orderFor(remaining int64, maxOrder int) int {
	o := bits.Len64(uint64(remaining)) - 1
	if o > maxOrder {
		o = maxOrder
	}
	return o
}

// freeOne releases a single allocated page back to its zone.
func (m *Mem) freeOne(pfn PFN) {
	st := m.pages[pfn].state
	if st != PageMovable && st != PageUnmovable {
		panic(fmt.Sprintf("kernel: freeing page %d in state %v", pfn, st))
	}
	m.clearAllocated(pfn)
	m.pages[pfn] = pageMeta{state: PageFree}
	m.zoneFor(pfn).freeBlock(pfn, 0)
}

// FreeOwnerPages frees the n most recently allocated pages of owner
// (LIFO, matching heap shrink). Freeing more than owned frees everything.
// Returns the number freed.
func (m *Mem) FreeOwnerPages(owner uint32, n int64) int64 {
	lst := m.ownerPages[owner]
	freed := int64(0)
	for freed < n && len(lst) > 0 {
		pfn := lst[len(lst)-1]
		m.freeOne(pfn) // mutates m.ownerPages[owner]
		lst = m.ownerPages[owner]
		freed++
	}
	return freed
}

// OwnerPageCount reports the pages currently held by owner.
func (m *Mem) OwnerPageCount(owner uint32) int64 {
	return int64(len(m.ownerPages[owner]))
}

// FreeOwner releases every page of an owner (process/VM exit).
func (m *Mem) FreeOwner(owner uint32) int64 {
	n := m.FreeOwnerPages(owner, int64(len(m.ownerPages[owner])))
	delete(m.ownerPages, owner)
	return n
}

// carveSpecific pulls one specific free page out of its zone's free lists.
func (m *Mem) carveSpecific(pfn PFN) bool {
	return m.zoneFor(pfn).carve(pfn)
}

// MigratePage moves the allocated movable page src to a newly allocated
// frame outside [avoidLo, avoidHi), preserving owner. Returns the new PFN.
// Fails with ErrNoMemory when no target frame exists (the EAGAIN path of
// off-lining).
func (m *Mem) MigratePage(src PFN, avoidLo, avoidHi PFN) (PFN, error) {
	return m.MigratePageAvoid(src, func(p PFN) bool { return p >= avoidLo && p < avoidHi })
}

// MigratePageAvoid is MigratePage with an arbitrary destination filter
// (RAMZzz avoids every victim rank at once).
func (m *Mem) MigratePageAvoid(src PFN, avoid func(PFN) bool) (PFN, error) {
	if m.pages[src].state != PageMovable {
		return 0, fmt.Errorf("kernel: page %d is %v, not movable", src, m.pages[src].state)
	}
	owner := m.pages[src].owner
	// Allocate a destination; retry while the allocator hands us frames
	// inside the avoided range (they would be isolated next anyway).
	var rejected []PFN
	var dst PFN = -1
	for {
		pfns, err := m.AllocPages(1, true, owner)
		if err != nil {
			break
		}
		p := pfns[0]
		if avoid != nil && avoid(p) {
			rejected = append(rejected, p)
			continue
		}
		dst = p
		break
	}
	for _, p := range rejected {
		m.freeOne(p)
	}
	if dst < 0 {
		return 0, ErrNoMemory
	}
	// Release the source frame but leave it OUT of the free lists: the
	// off-lining path isolates it; online paths return it to the buddy.
	m.clearAllocated(src)
	m.pages[src] = pageMeta{state: PageIsolated}
	m.migrations++
	for _, fn := range m.onMigrate {
		fn(src, dst)
	}
	return dst, nil
}

// --- memory-hotplug support interface (used by internal/hotplug) ---
//
// These primitives correspond to the steps of mm/memory_hotplug.c's
// offline_pages()/online_pages(): isolating free pages out of the buddy
// allocator, releasing isolation on rollback, and moving whole page ranges
// between the online and offline worlds with accounting adjustments.

// Isolate removes a FREE page from the buddy allocator and marks it
// isolated. Reports false if the page is not free.
func (m *Mem) Isolate(pfn PFN) bool {
	if m.pages[pfn].state != PageFree {
		return false
	}
	if !m.carveSpecific(pfn) {
		return false
	}
	m.pages[pfn].state = PageIsolated
	return true
}

// Unisolate returns an isolated page to the buddy allocator (rollback).
func (m *Mem) Unisolate(pfn PFN) {
	if m.pages[pfn].state != PageIsolated {
		panic(fmt.Sprintf("kernel: unisolate page %d in state %v", pfn, m.pages[pfn].state))
	}
	m.pages[pfn].state = PageFree
	m.zoneFor(pfn).freeBlock(pfn, 0)
}

// MarkOffline transitions an isolated page to offline and removes it from
// the on-line capacity accounting.
func (m *Mem) MarkOffline(pfn PFN) {
	if m.pages[pfn].state != PageIsolated {
		panic(fmt.Sprintf("kernel: offline page %d in state %v", pfn, m.pages[pfn].state))
	}
	m.pages[pfn].state = PageOffline
	m.onlinePages--
}

// MarkOnline brings an offline page back as free capacity.
func (m *Mem) MarkOnline(pfn PFN) {
	if m.pages[pfn].state != PageOffline {
		panic(fmt.Sprintf("kernel: online page %d in state %v", pfn, m.pages[pfn].state))
	}
	m.pages[pfn].state = PageFree
	m.zoneFor(pfn).freeBlock(pfn, 0)
	m.onlinePages++
}

// --- KSM support interface (used by internal/ksm) ---

// FreePage releases one specific allocated page (KSM frees duplicate
// frames after merging). The page must be movable or unmovable.
func (m *Mem) FreePage(pfn PFN) {
	m.freeOne(pfn)
}

// Reassign transfers an allocated page to a new owner (KSM takes ownership
// of shared write-protected frames so VM teardown cannot free them).
func (m *Mem) Reassign(pfn PFN, newOwner uint32) {
	st := m.pages[pfn].state
	if st != PageMovable && st != PageUnmovable {
		panic(fmt.Sprintf("kernel: reassigning page %d in state %v", pfn, st))
	}
	m.clearAllocated(pfn)
	m.setAllocated(pfn, st == PageMovable, newOwner)
}

// OwnerPage returns the i-th page of owner in allocation order (address
// generators map virtual page indexes to frames through this).
func (m *Mem) OwnerPage(owner uint32, i int64) PFN {
	return m.ownerPages[owner][i]
}

// MovableZoneBytes reports the size of the Movable zone (0 without one).
func (m *Mem) MovableZoneBytes() int64 {
	if m.movable == nil {
		return 0
	}
	return m.movable.npages * m.cfg.PageBytes
}

// MovableFreeBytes reports free bytes inside the Movable zone.
func (m *Mem) MovableFreeBytes() int64 {
	if m.movable == nil {
		return 0
	}
	return m.movable.Free() * m.cfg.PageBytes
}
