package kernel

import (
	"testing"
	"testing/quick"
)

// TestMigrateAvoidPredicate: the destination filter is honored exactly.
func TestMigrateAvoidPredicate(t *testing.T) {
	m := small(t)
	pfns, err := m.AllocPages(5, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Forbid everything below PFN 5000.
	dst, err := m.MigratePageAvoid(pfns[0], func(p PFN) bool { return p < 5000 })
	if err != nil {
		t.Fatal(err)
	}
	if dst < 5000 {
		t.Errorf("destination %d violates the avoid predicate", dst)
	}
	// Rejected candidate frames must have returned to the allocator:
	// a fresh allocation reuses the low frames.
	lows, err := m.AllocPages(3, true, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lows {
		if p >= 5000 {
			t.Errorf("low frames not recycled after rejection: got %d", p)
		}
	}
}

// TestMigrateAvoidEverythingFails: an unsatisfiable filter yields
// ErrNoMemory and leaves the source untouched.
func TestMigrateAvoidEverythingFails(t *testing.T) {
	m := small(t)
	pfns, _ := m.AllocPages(1, true, 9)
	if _, err := m.MigratePageAvoid(pfns[0], func(PFN) bool { return true }); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
	if m.State(pfns[0]) != PageMovable {
		t.Errorf("source page state = %v after failed migration", m.State(pfns[0]))
	}
	if m.OwnerPageCount(9) != 1 {
		t.Error("owner lost the page")
	}
}

// TestReassignPreservesAccounting: used-page totals and owner lists stay
// consistent across reassignment (the KSM stable-frame handover).
func TestReassignPreservesAccounting(t *testing.T) {
	m := small(t)
	pfns, _ := m.AllocPages(3, true, 5)
	used := m.Meminfo().UsedBytes
	m.Reassign(pfns[1], 6)
	if m.Meminfo().UsedBytes != used {
		t.Error("reassignment changed used-byte accounting")
	}
	if m.Owner(pfns[1]) != 6 || m.OwnerPageCount(6) != 1 || m.OwnerPageCount(5) != 2 {
		t.Error("owner bookkeeping wrong after reassignment")
	}
	// Freeing both owners returns everything.
	m.FreeOwner(5)
	m.FreeOwner(6)
	if m.Meminfo().UsedBytes != 0 {
		t.Error("teardown incomplete after reassignment")
	}
}

// TestMigrationChurnConservation: random interleavings of allocation,
// migration and freeing never corrupt the free/used accounting.
func TestMigrationChurnConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		m, err := New(Config{TotalBytes: 16 * oneMB, PageBytes: testPage})
		if err != nil {
			return false
		}
		owner := uint32(1)
		var held []PFN
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if pfns, err := m.AllocPages(int64(op%32)+1, true, owner); err == nil {
					held = append(held, pfns...)
				}
			case 1:
				if len(held) > 0 {
					src := held[int(op)%len(held)]
					if m.State(src) == PageMovable {
						if dst, err := m.MigratePage(src, 0, 0); err == nil {
							m.Unisolate(src)
							held = append(held, dst)
						}
					}
				}
			case 2:
				m.FreeOwnerPages(owner, int64(op%16)+1)
			}
		}
		mi := m.Meminfo()
		var free, used, isolated int64
		for p := PFN(0); p < PFN(m.NPages()); p++ {
			switch m.State(p) {
			case PageFree:
				free++
			case PageMovable, PageUnmovable:
				used++
			case PageIsolated:
				isolated++
			}
		}
		return isolated == 0 &&
			mi.FreeBytes == free*testPage &&
			mi.UsedBytes == used*testPage &&
			used == m.OwnerPageCount(owner)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOwnerPageOrderSurvivesChurn: OwnerPage indexes remain valid and
// unique after partial frees (the address generators index through it).
func TestOwnerPageOrderSurvivesChurn(t *testing.T) {
	m := small(t)
	if _, err := m.AllocPages(100, true, 4); err != nil {
		t.Fatal(err)
	}
	m.FreeOwnerPages(4, 37)
	n := m.OwnerPageCount(4)
	if n != 63 {
		t.Fatalf("count = %d", n)
	}
	seen := map[PFN]bool{}
	for i := int64(0); i < n; i++ {
		p := m.OwnerPage(4, i)
		if seen[p] {
			t.Fatalf("OwnerPage duplicate %d", p)
		}
		seen[p] = true
		if m.State(p) != PageMovable || m.Owner(p) != 4 {
			t.Fatalf("OwnerPage(%d) = %d in wrong state", i, p)
		}
	}
}
