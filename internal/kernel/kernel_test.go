package kernel

import (
	"testing"
	"testing/quick"
)

const (
	testPage = 4096
	oneMB    = 1 << 20
	oneGB    = 1 << 30
)

func newMem(t *testing.T, cfg Config) *Mem {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func small(t *testing.T) *Mem {
	return newMem(t, Config{TotalBytes: 64 * oneMB, PageBytes: testPage})
}

func TestBootMeminfo(t *testing.T) {
	m := small(t)
	mi := m.Meminfo()
	if mi.TotalBytes != 64*oneMB {
		t.Errorf("TotalBytes = %d", mi.TotalBytes)
	}
	if mi.FreeBytes != 64*oneMB || mi.UsedBytes != 0 {
		t.Errorf("fresh memory not all free: %+v", mi)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	m := small(t)
	pfns, err := m.AllocPages(100, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pfns) != 100 {
		t.Fatalf("got %d pages", len(pfns))
	}
	for _, p := range pfns {
		if m.State(p) != PageMovable || m.Owner(p) != 7 {
			t.Fatalf("page %d: state=%v owner=%d", p, m.State(p), m.Owner(p))
		}
	}
	if got := m.Meminfo().UsedBytes; got != 100*testPage {
		t.Errorf("used = %d", got)
	}
	if n := m.FreeOwner(7); n != 100 {
		t.Errorf("FreeOwner freed %d", n)
	}
	if got := m.Meminfo().FreeBytes; got != 64*oneMB {
		t.Errorf("free after teardown = %d", got)
	}
}

func TestUnmovableAllocation(t *testing.T) {
	m := small(t)
	pfns, err := m.AllocPages(10, false, KernelOwner)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pfns {
		if m.State(p) != PageUnmovable {
			t.Fatalf("page %d state = %v", p, m.State(p))
		}
	}
}

func TestAllocationPrefersLowAddresses(t *testing.T) {
	// Lowest-first allocation concentrates free memory at the top — the
	// property GreenDIMM's block selector relies on.
	m := small(t)
	pfns, err := m.AllocPages(1000, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	max := PFN(0)
	for _, p := range pfns {
		if p > max {
			max = p
		}
	}
	if max >= 1024+64 {
		t.Errorf("1000-page allocation reached pfn %d; expected low addresses", max)
	}
}

func TestLIFOPartialFree(t *testing.T) {
	m := small(t)
	a, _ := m.AllocPages(10, true, 3)
	b, _ := m.AllocPages(10, true, 3)
	if n := m.FreeOwnerPages(3, 10); n != 10 {
		t.Fatalf("freed %d", n)
	}
	// The second batch (b) must be the one freed.
	for _, p := range b {
		if m.State(p) != PageFree {
			t.Errorf("recently allocated page %d not freed (LIFO violated)", p)
		}
	}
	for _, p := range a {
		if m.State(p) != PageMovable {
			t.Errorf("older page %d freed; LIFO violated", p)
		}
	}
	if m.OwnerPageCount(3) != 10 {
		t.Errorf("owner count = %d", m.OwnerPageCount(3))
	}
}

func TestOutOfMemoryRollsBack(t *testing.T) {
	m := newMem(t, Config{TotalBytes: 4 * oneMB, PageBytes: testPage})
	if _, err := m.AllocPages(1024, true, 1); err != nil { // exactly fills
		t.Fatal(err)
	}
	if _, err := m.AllocPages(1, true, 2); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
	m.FreeOwner(1)
	// Over-ask rolls back entirely: free count unchanged after failure.
	if _, err := m.AllocPages(4096, true, 2); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
	if got := m.Meminfo().FreeBytes; got != 4*oneMB {
		t.Errorf("free after failed alloc = %d, want all", got)
	}
}

func TestMovableZonePreference(t *testing.T) {
	m := newMem(t, Config{
		TotalBytes: 64 * oneMB, PageBytes: testPage, MovableBytes: 32 * oneMB,
	})
	movStart := PFN(32 * oneMB / testPage)
	mv, err := m.AllocPages(10, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range mv {
		if p < movStart {
			t.Errorf("movable page %d below movable zone start %d", p, movStart)
		}
	}
	um, err := m.AllocPages(10, false, KernelOwner)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range um {
		if p >= movStart {
			t.Errorf("unmovable page %d inside movable zone", p)
		}
	}
}

func TestMovableFallsBackToNormal(t *testing.T) {
	m := newMem(t, Config{
		TotalBytes: 8 * oneMB, PageBytes: testPage, MovableBytes: 4 * oneMB,
	})
	// Ask for more movable memory than the movable zone holds.
	pfns, err := m.AllocPages(1536, true, 1) // 6MB
	if err != nil {
		t.Fatal(err)
	}
	below := 0
	movStart := PFN(4 * oneMB / testPage)
	for _, p := range pfns {
		if p < movStart {
			below++
		}
	}
	if below == 0 {
		t.Error("movable allocation never fell back to Normal zone")
	}
}

func TestKernelReservation(t *testing.T) {
	m := newMem(t, Config{
		TotalBytes: 64 * oneMB, PageBytes: testPage,
		KernelReservedBytes: 8 * oneMB,
	})
	mi := m.Meminfo()
	if mi.UsedBytes != 8*oneMB {
		t.Errorf("boot used = %d, want 8MB", mi.UsedBytes)
	}
	if m.OwnerPageCount(KernelOwner) != 2048 {
		t.Errorf("kernel owns %d pages", m.OwnerPageCount(KernelOwner))
	}
}

func TestUnmovableLeakScattering(t *testing.T) {
	m := newMem(t, Config{
		TotalBytes: 256 * oneMB, PageBytes: testPage,
		UnmovableLeakEvery: 2, Seed: 11,
	})
	// Count unmovable pages above the first 1/64th stride: scattering
	// must place kernel pages beyond the normal low-address reach.
	var high int64
	for p := PFN(m.NPages() / 2); p < PFN(m.NPages()); p++ {
		if m.State(p) == PageUnmovable {
			high++
		}
	}
	if high == 0 {
		t.Error("no unmovable pages scattered into the upper half")
	}
}

func TestMigratePreservesOwner(t *testing.T) {
	m := small(t)
	pfns, _ := m.AllocPages(5, true, 9)
	src := pfns[0]
	var hookSrc, hookDst PFN = -1, -1
	m.OnMigrate(func(s, d PFN) { hookSrc, hookDst = s, d })
	dst, err := m.MigratePage(src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.State(src) != PageIsolated {
		t.Errorf("source state = %v, want isolated", m.State(src))
	}
	if m.State(dst) != PageMovable || m.Owner(dst) != 9 {
		t.Errorf("dest state=%v owner=%d", m.State(dst), m.Owner(dst))
	}
	if hookSrc != src || hookDst != dst {
		t.Errorf("migration hook got (%d,%d), want (%d,%d)", hookSrc, hookDst, src, dst)
	}
	if m.Migrations() != 1 {
		t.Errorf("migrations = %d", m.Migrations())
	}
	if m.OwnerPageCount(9) != 5 {
		t.Errorf("owner count changed to %d", m.OwnerPageCount(9))
	}
}

func TestMigrateAvoidsRange(t *testing.T) {
	m := small(t)
	pfns, _ := m.AllocPages(3, true, 4)
	dst, err := m.MigratePage(pfns[0], 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if dst < 1024 {
		t.Errorf("destination %d inside avoided range [0,1024)", dst)
	}
}

func TestMigrateUnmovableFails(t *testing.T) {
	m := small(t)
	pfns, _ := m.AllocPages(1, false, KernelOwner)
	if _, err := m.MigratePage(pfns[0], 0, 0); err == nil {
		t.Error("migrating unmovable page succeeded")
	}
}

func TestMigrateFailsWhenFull(t *testing.T) {
	m := newMem(t, Config{TotalBytes: 4 * oneMB, PageBytes: testPage})
	pfns, err := m.AllocPages(1024, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MigratePage(pfns[0], 0, 0); err != ErrNoMemory {
		t.Errorf("expected ErrNoMemory, got %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TotalBytes: 0, PageBytes: testPage},
		{TotalBytes: oneMB, PageBytes: 3000},
		{TotalBytes: oneMB + 1, PageBytes: testPage},
		{TotalBytes: oneMB, PageBytes: testPage, MovableBytes: 2 * oneMB},
		{TotalBytes: oneMB, PageBytes: testPage, MovableBytes: -4096},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
}

func TestPageStateString(t *testing.T) {
	if PageOffline.String() != "offline" || PageState(99).String() != "invalid" {
		t.Error("bad state strings")
	}
}

func TestBuddyInvariants(t *testing.T) {
	// Property: after arbitrary alloc/free sequences, free counts match
	// and no page is double-accounted.
	f := func(ops []uint16) bool {
		m, err := New(Config{TotalBytes: 16 * oneMB, PageBytes: testPage})
		if err != nil {
			return false
		}
		owner := uint32(1)
		for _, op := range ops {
			n := int64(op%64) + 1
			if op&0x8000 != 0 {
				_, _ = m.AllocPages(n, op&0x4000 != 0, owner)
			} else {
				m.FreeOwnerPages(owner, n)
			}
		}
		mi := m.Meminfo()
		// Recount states directly.
		var free, used int64
		for p := PFN(0); p < PFN(m.NPages()); p++ {
			switch m.State(p) {
			case PageFree:
				free++
			case PageMovable, PageUnmovable:
				used++
			}
		}
		return mi.FreeBytes == free*testPage && mi.UsedBytes == used*testPage &&
			free == m.normal.Free()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuddyCoalescing(t *testing.T) {
	m := newMem(t, Config{TotalBytes: 4 * oneMB, PageBytes: testPage})
	// Allocate everything as single pages, free it all; the allocator
	// must then satisfy one maximal-order allocation (fully coalesced).
	if _, err := m.AllocPages(1024, true, 1); err != nil {
		t.Fatal(err)
	}
	m.FreeOwner(1)
	if pfn, ok := m.normal.alloc(m.normal.maxOrder); !ok {
		t.Error("max-order allocation failed after full free: coalescing broken")
	} else {
		m.normal.freeBlock(pfn, m.normal.maxOrder)
	}
}

func TestCarveSpecific(t *testing.T) {
	m := newMem(t, Config{TotalBytes: 4 * oneMB, PageBytes: testPage})
	target := PFN(777)
	if !m.carveSpecific(target) {
		t.Fatal("carve of free page failed")
	}
	// Page is no longer handed out by the allocator.
	seen := map[PFN]bool{}
	for {
		pfns, err := m.AllocPages(1, true, 1)
		if err != nil {
			break
		}
		for _, p := range pfns {
			if seen[p] {
				t.Fatalf("page %d allocated twice", p)
			}
			seen[p] = true
		}
	}
	if seen[target] {
		t.Error("carved page was allocated")
	}
	if int64(len(seen)) != m.NPages()-1 {
		t.Errorf("allocated %d pages, want %d", len(seen), m.NPages()-1)
	}
	// Carving a non-free page fails.
	if m.carveSpecific(target) {
		t.Error("carving already-carved page succeeded")
	}
}
