package kernel

import "fmt"

// Swap support: the paper's §4.2 observes that setting off_thr below ~10%
// "dramatically degrades" performance because pages start swapping between
// memory and storage. To reproduce that cliff (the swap-threshold ablation
// in internal/exp), the kernel models a swap device: owners' pages can be
// evicted to swap (freeing their frames) and faulted back in, with the
// counts exposed so the harness can charge I/O latency.
//
// Swapped pages are tracked per owner as counts, not identities — content
// does not matter to any experiment, only the volume of traffic to the
// swap device.

// ErrSwapFull is returned when the swap device is exhausted (the OOM
// condition).
var ErrSwapFull = fmt.Errorf("kernel: swap device full")

// ConfigureSwap sets the swap device capacity. Zero disables swapping.
func (m *Mem) ConfigureSwap(bytes int64) {
	m.swapCapPages = bytes / m.cfg.PageBytes
}

// SetReclaimer installs the direct-reclaim hook: when AllocPages cannot
// satisfy a request, it calls fn(pagesNeeded) once; if fn frees memory and
// returns true, the allocation retries. This is where kswapd-style
// swap-out policy plugs in without the kernel dictating victim choice.
func (m *Mem) SetReclaimer(fn func(pages int64) bool) {
	m.reclaimer = fn
}

// SwapOutOwnerPages evicts up to n of owner's most recently allocated
// pages to swap, freeing their frames. Returns pages actually swapped.
// Fails with ErrSwapFull when the device cannot take them.
func (m *Mem) SwapOutOwnerPages(owner uint32, n int64) (int64, error) {
	if m.swapCapPages == 0 {
		return 0, fmt.Errorf("kernel: no swap configured")
	}
	have := int64(len(m.ownerPages[owner]))
	if n > have {
		n = have
	}
	if m.swapUsedPages+n > m.swapCapPages {
		n = m.swapCapPages - m.swapUsedPages
		if n <= 0 {
			return 0, ErrSwapFull
		}
	}
	freed := m.FreeOwnerPages(owner, n)
	if m.swappedPages == nil {
		m.swappedPages = map[uint32]int64{}
	}
	m.swappedPages[owner] += freed
	m.swapUsedPages += freed
	m.swapOuts += freed
	return freed, nil
}

// SwapInOwnerPages faults up to n of owner's swapped pages back into
// memory. Returns pages brought in; fails when memory cannot hold them
// (after giving the reclaimer a chance via AllocPages).
func (m *Mem) SwapInOwnerPages(owner uint32, n int64) (int64, error) {
	sw := m.swappedPages[owner]
	if n > sw {
		n = sw
	}
	if n <= 0 {
		return 0, nil
	}
	if _, err := m.AllocPages(n, true, owner); err != nil {
		return 0, err
	}
	m.swappedPages[owner] -= n
	m.swapUsedPages -= n
	m.swapIns += n
	return n, nil
}

// SwappedPageCount reports owner's pages currently in swap.
func (m *Mem) SwappedPageCount(owner uint32) int64 { return m.swappedPages[owner] }

// SwapUsedBytes reports total swap occupancy.
func (m *Mem) SwapUsedBytes() int64 { return m.swapUsedPages * m.cfg.PageBytes }

// SwapTraffic reports cumulative swap-out and swap-in page counts — the
// thrashing signal the off_thr ablation measures.
func (m *Mem) SwapTraffic() (outs, ins int64) { return m.swapOuts, m.swapIns }
