package ksm

// tree is the binary search tree KSM uses for both the stable tree (shared
// write-protected pages) and the unstable tree (merge candidates seen this
// pass). Keys are page-content digests; mm/ksm.c orders nodes by memcmp of
// the page contents, which our 64-bit digests stand in for. The tree is
// unbalanced — digests are uniformly distributed, so expected depth is
// logarithmic, as in the kernel's rbtree without needing rebalancing here.
type tree struct {
	root *treeNode
	size int
}

type treeNode struct {
	key         uint64
	value       any
	left, right *treeNode
}

// Find returns the value stored under key, or nil.
func (t *tree) Find(key uint64) any {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.value
		}
	}
	return nil
}

// Insert stores value under key. Duplicate keys are a caller bug: KSM
// always Finds before Inserting, so a duplicate means the scan logic broke.
func (t *tree) Insert(key uint64, value any) {
	link := &t.root
	for *link != nil {
		n := *link
		switch {
		case key < n.key:
			link = &n.left
		case key > n.key:
			link = &n.right
		default:
			panic("ksm: duplicate tree key")
		}
	}
	*link = &treeNode{key: key, value: value}
	t.size++
}

// Delete removes key if present, reporting whether it was found.
func (t *tree) Delete(key uint64) bool {
	link := &t.root
	for *link != nil {
		n := *link
		switch {
		case key < n.key:
			link = &n.left
		case key > n.key:
			link = &n.right
		default:
			t.removeNode(link)
			t.size--
			return true
		}
	}
	return false
}

// removeNode unlinks *link, replacing it by its in-order successor when it
// has two children.
func (t *tree) removeNode(link **treeNode) {
	n := *link
	switch {
	case n.left == nil:
		*link = n.right
	case n.right == nil:
		*link = n.left
	default:
		// Splice the minimum of the right subtree into n's place.
		succLink := &n.right
		for (*succLink).left != nil {
			succLink = &(*succLink).left
		}
		succ := *succLink
		*succLink = succ.right
		succ.left, succ.right = n.left, n.right
		*link = succ
	}
}

// Len reports the number of stored nodes.
func (t *tree) Len() int { return t.size }

// Clear drops every node (the unstable tree is rebuilt each scan pass).
func (t *tree) Clear() {
	t.root = nil
	t.size = 0
}

// Walk visits every (key, value) in key order.
func (t *tree) Walk(fn func(key uint64, value any)) {
	var rec func(n *treeNode)
	rec = func(n *treeNode) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n.key, n.value)
		rec(n.right)
	}
	rec(t.root)
}
