package ksm

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTreeBasics(t *testing.T) {
	var tr tree
	if tr.Find(5) != nil || tr.Len() != 0 {
		t.Fatal("empty tree not empty")
	}
	tr.Insert(5, "five")
	tr.Insert(3, "three")
	tr.Insert(9, "nine")
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Find(3); got != "three" {
		t.Errorf("Find(3) = %v", got)
	}
	if tr.Find(4) != nil {
		t.Error("Find(4) should be nil")
	}
	if !tr.Delete(5) || tr.Delete(5) {
		t.Error("Delete semantics broken")
	}
	if tr.Find(5) != nil {
		t.Error("deleted key still found")
	}
	if tr.Find(3) != "three" || tr.Find(9) != "nine" {
		t.Error("unrelated keys disturbed by delete")
	}
	tr.Clear()
	if tr.Len() != 0 || tr.Find(3) != nil {
		t.Error("Clear incomplete")
	}
}

func TestTreeDeleteTwoChildren(t *testing.T) {
	var tr tree
	for _, k := range []uint64{50, 30, 70, 20, 40, 60, 80, 65} {
		tr.Insert(k, k)
	}
	if !tr.Delete(70) { // node with two children (60 with 65, and 80)
		t.Fatal("delete failed")
	}
	var keys []uint64
	tr.Walk(func(k uint64, _ any) { keys = append(keys, k) })
	want := []uint64{20, 30, 40, 50, 60, 65, 80}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("in-order walk = %v, want %v", keys, want)
		}
	}
}

func TestTreeDuplicatePanics(t *testing.T) {
	var tr tree
	tr.Insert(1, "a")
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert did not panic")
		}
	}()
	tr.Insert(1, "b")
}

func TestTreeOrderedWalkProperty(t *testing.T) {
	// Property: for an arbitrary set of keys (inserted with some random
	// deletions), Walk yields strictly increasing keys and Find agrees
	// with membership.
	f := func(keys []uint64, deletions []uint64) bool {
		var tr tree
		present := map[uint64]bool{}
		for _, k := range keys {
			if !present[k] {
				tr.Insert(k, k)
				present[k] = true
			}
		}
		for _, k := range deletions {
			if tr.Delete(k) != present[k] {
				return false
			}
			delete(present, k)
		}
		var walked []uint64
		tr.Walk(func(k uint64, v any) {
			if v != k {
				return
			}
			walked = append(walked, k)
		})
		if !sort.SliceIsSorted(walked, func(i, j int) bool { return walked[i] < walked[j] }) {
			return false
		}
		if len(walked) != len(present) || tr.Len() != len(present) {
			return false
		}
		for k := range present {
			if tr.Find(k) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
