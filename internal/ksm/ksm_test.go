package ksm

import (
	"testing"

	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

const pageSize = 4096

func setup(t *testing.T, totalMB int64) (*sim.Engine, *kernel.Mem, *Daemon) {
	t.Helper()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: totalMB << 20, PageBytes: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(eng, mem, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, mem, d
}

// allocAndRegister gives owner n pages with the given digests.
func allocAndRegister(t *testing.T, mem *kernel.Mem, d *Daemon, owner uint32, digests []uint64, vol float64) []*VPage {
	t.Helper()
	frames, err := mem.AllocPages(int64(len(digests)), true, owner)
	if err != nil {
		t.Fatal(err)
	}
	vps, err := d.Register(owner, frames, digests, vol)
	if err != nil {
		t.Fatal(err)
	}
	return vps
}

// scanPasses runs enough chunks for k full passes over the registered set.
func scanPasses(d *Daemon, k int) {
	per := d.cfg.PagesPerScan
	need := (d.Registered()/per + 2) * k
	for i := 0; i < need; i++ {
		d.ScanChunk()
	}
}

func TestMergeIdenticalPagesAcrossOwners(t *testing.T) {
	_, mem, d := setup(t, 64)
	// Two VMs with the same 100-page image; second pass merges them
	// (first pass builds checksums, second inserts + merges).
	img := make([]uint64, 100)
	for i := range img {
		img[i] = uint64(0xABC0 + i)
	}
	a := allocAndRegister(t, mem, d, 10, img, 0)
	b := allocAndRegister(t, mem, d, 11, img, 0)
	before := mem.Meminfo().UsedBytes
	scanPasses(d, 3)
	if d.SavedPages() != 100 {
		t.Fatalf("SavedPages = %d, want 100", d.SavedPages())
	}
	if got := mem.Meminfo().UsedBytes; got != before-100*pageSize {
		t.Errorf("used = %d, want %d", got, before-100*pageSize)
	}
	if d.StableLen() != 100 {
		t.Errorf("stable tree holds %d nodes, want 100", d.StableLen())
	}
	for i := range img {
		if !a[i].Merged() || !b[i].Merged() {
			t.Fatalf("page %d not merged", i)
		}
		if a[i].Frame() != b[i].Frame() {
			t.Fatalf("page %d sharers on different frames", i)
		}
		if mem.Owner(a[i].Frame()) != Owner {
			t.Fatalf("shared frame owned by %d, not KSM", mem.Owner(a[i].Frame()))
		}
	}
}

func TestThirdSharerJoinsStableTree(t *testing.T) {
	_, mem, d := setup(t, 64)
	img := []uint64{42, 43, 44}
	allocAndRegister(t, mem, d, 10, img, 0)
	allocAndRegister(t, mem, d, 11, img, 0)
	scanPasses(d, 3)
	if d.SavedPages() != 3 {
		t.Fatalf("SavedPages = %d", d.SavedPages())
	}
	// A third VM arrives: its pages merge against the STABLE tree on the
	// first visit (no checksum wait).
	c := allocAndRegister(t, mem, d, 12, img, 0)
	scanPasses(d, 1)
	if d.SavedPages() != 6 {
		t.Errorf("SavedPages = %d after third sharer, want 6", d.SavedPages())
	}
	if !c[0].Merged() {
		t.Error("third sharer not merged")
	}
	if d.StableLen() != 3 {
		t.Errorf("stable nodes = %d, want 3 (no duplicates)", d.StableLen())
	}
}

func TestUniqueContentNeverMerges(t *testing.T) {
	_, mem, d := setup(t, 64)
	u1 := []uint64{1, 2, 3, 4, 5}
	u2 := []uint64{6, 7, 8, 9, 10}
	allocAndRegister(t, mem, d, 10, u1, 0)
	allocAndRegister(t, mem, d, 11, u2, 0)
	scanPasses(d, 5)
	if d.SavedPages() != 0 {
		t.Errorf("unique pages merged: %d", d.SavedPages())
	}
}

func TestVolatilePagesResistMerging(t *testing.T) {
	_, mem, d := setup(t, 64)
	img := make([]uint64, 50)
	for i := range img {
		img[i] = 7777 // all identical
	}
	allocAndRegister(t, mem, d, 10, img, 1.0) // mutates every visit
	scanPasses(d, 5)
	if d.SavedPages() != 0 {
		t.Errorf("fully-volatile pages merged: %d", d.SavedPages())
	}
}

func TestCoWBreak(t *testing.T) {
	_, mem, d := setup(t, 64)
	img := []uint64{99}
	a := allocAndRegister(t, mem, d, 10, img, 0)
	b := allocAndRegister(t, mem, d, 11, img, 0)
	scanPasses(d, 3)
	if d.SavedPages() != 1 {
		t.Fatalf("setup merge failed: saved=%d", d.SavedPages())
	}
	used := mem.Meminfo().UsedBytes
	if err := d.Write(a[0], 12345); err != nil {
		t.Fatal(err)
	}
	if a[0].Merged() {
		t.Error("writer still merged after CoW")
	}
	if !b[0].Merged() {
		t.Error("other sharer lost its mapping")
	}
	if a[0].Frame() == b[0].Frame() {
		t.Error("writer still on shared frame")
	}
	if got := mem.Meminfo().UsedBytes; got != used+pageSize {
		t.Errorf("used after CoW = %d, want %d", got, used+pageSize)
	}
	if d.Stats().CoWBreaks != 1 {
		t.Errorf("CoWBreaks = %d", d.Stats().CoWBreaks)
	}
	// Second sharer writes too: stable node refcount hits zero, the
	// shared frame is freed.
	stableFrame := b[0].Frame()
	if err := d.Write(b[0], 54321); err != nil {
		t.Fatal(err)
	}
	if d.StableLen() != 0 {
		t.Error("stable node not removed at refcount zero")
	}
	if mem.State(stableFrame) != kernel.PageFree {
		t.Errorf("shared frame %d not freed: %v", stableFrame, mem.State(stableFrame))
	}
	if d.SavedPages() != 0 {
		t.Errorf("SavedPages = %d after both broke", d.SavedPages())
	}
}

func TestUnregisterOwnerReleasesShares(t *testing.T) {
	_, mem, d := setup(t, 64)
	img := []uint64{5, 6}
	allocAndRegister(t, mem, d, 10, img, 0)
	b := allocAndRegister(t, mem, d, 11, img, 0)
	scanPasses(d, 3)
	if d.SavedPages() != 2 {
		t.Fatalf("setup merge failed: %d", d.SavedPages())
	}
	// VM 10 dies.
	d.UnregisterOwner(10)
	mem.FreeOwner(10)
	// VM 11 still maps the shared frames (refcount dropped 2 -> 1).
	if !b[0].Merged() || !b[1].Merged() {
		t.Error("survivor lost merged mappings")
	}
	if d.StableLen() != 2 {
		t.Errorf("stable nodes = %d, want 2", d.StableLen())
	}
	// VM 11 dies too: shared frames must be freed, memory returns to
	// exactly the boot state.
	d.UnregisterOwner(11)
	mem.FreeOwner(11)
	if got := mem.Meminfo().UsedBytes; got != 0 {
		t.Errorf("used = %d after all owners died, want 0", got)
	}
	if d.Registered() != 0 {
		t.Errorf("registered = %d", d.Registered())
	}
}

func TestMigrationFollowsContent(t *testing.T) {
	_, mem, d := setup(t, 64)
	img := []uint64{77}
	a := allocAndRegister(t, mem, d, 10, img, 0)
	b := allocAndRegister(t, mem, d, 11, img, 0)
	scanPasses(d, 3)
	if !a[0].Merged() {
		t.Fatal("setup merge failed")
	}
	shared := a[0].Frame()
	dst, err := mem.MigratePage(shared, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Frame() != dst || b[0].Frame() != dst {
		t.Errorf("sharer frames not updated: a=%d b=%d dst=%d", a[0].Frame(), b[0].Frame(), dst)
	}
	// Exclusive page migration updates its VPage too.
	c := allocAndRegister(t, mem, d, 12, []uint64{123}, 0)
	dst2, err := mem.MigratePage(c[0].Frame(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].Frame() != dst2 {
		t.Error("exclusive page frame not updated after migration")
	}
}

func TestPeriodicScanViaEngine(t *testing.T) {
	eng, mem, d := setup(t, 64)
	img := make([]uint64, 2500) // bigger than one 1000-page chunk
	for i := range img {
		img[i] = uint64(i)
	}
	allocAndRegister(t, mem, d, 10, img, 0)
	allocAndRegister(t, mem, d, 11, img, 0)
	passes := 0
	d.OnFullPass(func() { passes++ })
	d.Start()
	eng.RunUntil(2 * sim.Second)
	// 2s / 50ms = 40 chunks x 1000 pages = 8 passes over 5000 pages.
	if passes < 5 {
		t.Errorf("full passes = %d, want >= 5", passes)
	}
	if d.SavedPages() != 2500 {
		t.Errorf("SavedPages = %d, want 2500", d.SavedPages())
	}
	d.Stop()
	st := d.Stats()
	if st.Scans == 0 || st.CPUTime == 0 {
		t.Error("scan accounting empty")
	}
}

func TestCPUShareMatchesPaper(t *testing.T) {
	_, _, d := setup(t, 64)
	if got := d.CPUShare(); got < 0.08 || got > 0.12 {
		t.Errorf("ksmd CPU share = %.3f, want ~0.10 (paper §5.3)", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, mem, d := setup(t, 64)
	frames, _ := mem.AllocPages(2, true, 10)
	if _, err := d.Register(10, frames, []uint64{1}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := d.Register(10, frames, []uint64{1, 2}, 1.5); err == nil {
		t.Error("bad volatility accepted")
	}
	if _, err := d.Register(99, frames, []uint64{1, 2}, 0); err == nil {
		t.Error("wrong owner accepted")
	}
	if _, err := New(nil, mem, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestMergedPagesSurviveMixedChurn(t *testing.T) {
	// Stress: owners arrive with partially shared content, write, die.
	// Accounting must stay exact.
	_, mem, d := setup(t, 128)
	g := sim.NewRNG(5)
	alive := map[uint32][]*VPage{}
	next := uint32(100)
	for iter := 0; iter < 200; iter++ {
		switch g.Intn(3) {
		case 0: // birth: 30 pages, half from a shared pool of 40 digests
			digests := make([]uint64, 30)
			for i := range digests {
				if g.Bool(0.5) {
					digests[i] = uint64(g.Intn(40))
				} else {
					digests[i] = g.Uint64() | 1<<63
				}
			}
			alive[next] = allocAndRegister(t, mem, d, next, digests, 0.01)
			next++
		case 1: // a random write
			for o, vps := range alive {
				_ = o
				if len(vps) > 0 {
					_ = d.Write(vps[g.Intn(len(vps))], g.Uint64())
				}
				break
			}
		case 2: // death
			for o := range alive {
				d.UnregisterOwner(o)
				mem.FreeOwner(o)
				delete(alive, o)
				break
			}
		}
		d.ScanChunk()
		// Invariant: saved pages == sum of merged vpages - stable nodes.
		merged := int64(0)
		for _, vps := range alive {
			for _, v := range vps {
				if v.Merged() {
					merged++
				}
			}
		}
		if want := merged - int64(d.StableLen()); d.SavedPages() != want {
			t.Fatalf("iter %d: SavedPages=%d, merged=%d stable=%d",
				iter, d.SavedPages(), merged, d.StableLen())
		}
	}
	// Teardown everything; memory must return to zero used.
	for o := range alive {
		d.UnregisterOwner(o)
		mem.FreeOwner(o)
	}
	if mem.Meminfo().UsedBytes != 0 {
		t.Errorf("used = %d after teardown", mem.Meminfo().UsedBytes)
	}
}
