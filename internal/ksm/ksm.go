// Package ksm models Linux Kernel Samepage Merging (mm/ksm.c) at the
// granularity the GreenDIMM paper uses it (§2.4, §5.3): a daemon that
// periodically scans madvise(MADV_MERGEABLE)-registered pages, finds
// identical content via a stable tree (already-shared pages) and an
// unstable tree (candidates whose checksum held still since the previous
// pass), replaces duplicates with one write-protected frame, and breaks
// shares copy-on-write when a sharer writes.
//
// Page content is modelled as a 64-bit digest plus a per-page volatility
// (probability the content changes between scan visits). The memory the
// daemon reclaims is real in the simulation: duplicate frames go back to
// the buddy allocator, shrinking the footprint GreenDIMM's usage monitor
// sees — which is exactly the synergy §6.3 measures.
package ksm

import (
	"fmt"

	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

// Owner is the pseudo-owner holding shared (merged) frames, so that a VM's
// teardown cannot free a frame other VMs still map.
const Owner uint32 = 1

// VPage is one registered virtual page: the unit ksmd scans.
type VPage struct {
	owner       uint32
	digest      uint64
	volatility  float64
	frame       kernel.PFN
	merged      *stableNode // nil when the page maps its own frame
	checksum    uint64      // digest observed at the previous visit
	hasChecksum bool
	dead        bool
}

// Merged reports whether the page currently shares a stable frame.
func (v *VPage) Merged() bool { return v.merged != nil }

// Frame returns the physical frame currently backing the page.
func (v *VPage) Frame() kernel.PFN { return v.frame }

// Digest returns the page's current content digest.
func (v *VPage) Digest() uint64 { return v.digest }

// stableNode is a write-protected shared frame in the stable tree.
type stableNode struct {
	digest uint64
	frame  kernel.PFN
	refs   int
}

// Config tunes the daemon; the defaults are the paper's §5.3 settings.
type Config struct {
	PagesPerScan    int      // pages visited per wake-up (paper: 1000)
	ScanPeriod      sim.Time // sleep between wake-ups (paper: 50ms)
	ScanCostPerPage sim.Time // CPU cost per visited page
	Seed            int64
}

// DefaultConfig returns the paper's configuration: 1000 pages per 50ms,
// costing ~10% of one core.
func DefaultConfig() Config {
	return Config{
		PagesPerScan:    1000,
		ScanPeriod:      50 * sim.Millisecond,
		ScanCostPerPage: 5 * sim.Microsecond, // 1000 x 5us / 50ms = 10% of a core
	}
}

// Stats summarizes daemon activity.
type Stats struct {
	Scans      int64 // pages visited
	FullPasses int64
	Merges     int64 // pages merged (cumulative)
	CoWBreaks  int64
	CPUTime    sim.Time
}

// Daemon is the ksmd model.
type Daemon struct {
	eng *sim.Engine
	mem *kernel.Mem
	cfg Config
	rng *sim.RNG

	pages    []*VPage // scan order = registration order, like the rmap list
	cursor   int
	stable   tree
	unstable tree
	byFrame  map[kernel.PFN]any // *VPage (exclusive frame) or *stableNode

	sharedSaved int64 // frames freed by merging, currently
	stats       Stats
	running     bool
	onPass      []func()
}

// New builds a daemon bound to the engine and memory.
func New(eng *sim.Engine, mem *kernel.Mem, cfg Config) (*Daemon, error) {
	if cfg.PagesPerScan <= 0 || cfg.ScanPeriod <= 0 {
		return nil, fmt.Errorf("ksm: scan parameters must be positive: %+v", cfg)
	}
	d := &Daemon{
		eng:     eng,
		mem:     mem,
		cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed ^ 0x6b736d64),
		byFrame: make(map[kernel.PFN]any),
	}
	mem.OnMigrate(d.frameMigrated)
	return d, nil
}

// Register advises a set of frames mergeable (madvise MADV_MERGEABLE).
// digests[i] is the content of frames[i]; volatility is the probability a
// page's content changes between scan visits. Returns the VPages for the
// caller to mutate (Write) or inspect.
func (d *Daemon) Register(owner uint32, frames []kernel.PFN, digests []uint64, volatility float64) ([]*VPage, error) {
	if len(frames) != len(digests) {
		return nil, fmt.Errorf("ksm: %d frames but %d digests", len(frames), len(digests))
	}
	if volatility < 0 || volatility > 1 {
		return nil, fmt.Errorf("ksm: volatility %v out of [0,1]", volatility)
	}
	out := make([]*VPage, len(frames))
	for i, f := range frames {
		if d.mem.Owner(f) != owner {
			return nil, fmt.Errorf("ksm: frame %d not owned by %d", f, owner)
		}
		v := &VPage{owner: owner, digest: digests[i], volatility: volatility, frame: f}
		d.pages = append(d.pages, v)
		d.byFrame[f] = v
		out[i] = v
	}
	return out, nil
}

// UnregisterOwner removes every page of an owner (VM teardown). Merged
// pages drop their stable reference; exclusive frames stay allocated for
// kernel.FreeOwner to reclaim.
func (d *Daemon) UnregisterOwner(owner uint32) {
	kept := d.pages[:0]
	for _, v := range d.pages {
		if v.owner != owner {
			kept = append(kept, v)
			continue
		}
		if v.merged != nil {
			d.detachSharer(v.merged)
		} else {
			delete(d.byFrame, v.frame)
		}
		v.dead = true
	}
	d.pages = kept
	if d.cursor > len(d.pages) {
		d.cursor = 0
	}
}

// Write models a store to a registered page with new content: merged pages
// break copy-on-write (a fresh frame is allocated for the writer).
func (d *Daemon) Write(v *VPage, newDigest uint64) error {
	if v.dead {
		return fmt.Errorf("ksm: write to unregistered page")
	}
	v.digest = newDigest
	v.hasChecksum = false
	if v.merged == nil {
		return nil
	}
	frames, err := d.mem.AllocPages(1, true, v.owner)
	if err != nil {
		return fmt.Errorf("ksm: CoW allocation failed: %w", err)
	}
	node := v.merged
	v.merged = nil
	v.frame = frames[0]
	d.byFrame[v.frame] = v
	d.stats.CoWBreaks++
	d.detachSharer(node)
	return nil
}

// detachSharer removes one sharer from a stable node, maintaining the
// invariant SavedPages == (merged sharers) - (stable nodes): losing a
// sharer costs one saved frame, but the last detach also frees the shared
// frame, which wins it back.
func (d *Daemon) detachSharer(n *stableNode) {
	d.sharedSaved--
	n.refs--
	if n.refs == 0 {
		d.sharedSaved++
		d.stable.Delete(n.digest)
		delete(d.byFrame, n.frame)
		d.mem.FreePage(n.frame)
	}
}

// Start begins periodic scanning.
func (d *Daemon) Start() {
	if d.running {
		return
	}
	d.running = true
	d.armScan()
}

// Stop pauses scanning.
func (d *Daemon) Stop() { d.running = false }

// OnFullPass registers a callback invoked each time the scan cursor wraps
// (GreenDIMM's §5.3 optimization triggers off-lining right after a merge
// pass completes, regardless of the monitor period).
func (d *Daemon) OnFullPass(fn func()) { d.onPass = append(d.onPass, fn) }

func (d *Daemon) armScan() {
	d.eng.AfterDaemon(d.cfg.ScanPeriod, func() {
		if !d.running {
			return
		}
		d.ScanChunk()
		d.armScan()
	})
}

// ScanChunk performs one wake-up's worth of scanning: up to PagesPerScan
// page visits. Exposed for tests and single-stepped experiments.
func (d *Daemon) ScanChunk() {
	for i := 0; i < d.cfg.PagesPerScan; i++ {
		if len(d.pages) == 0 {
			return
		}
		if d.cursor >= len(d.pages) {
			d.cursor = 0
			d.unstable.Clear()
			d.stats.FullPasses++
			for _, fn := range d.onPass {
				fn()
			}
		}
		v := d.pages[d.cursor]
		d.cursor++
		d.visit(v)
	}
}

// visit processes one page, mirroring cmp_and_merge_page().
func (d *Daemon) visit(v *VPage) {
	d.stats.Scans++
	d.stats.CPUTime += d.cfg.ScanCostPerPage

	// Volatile content mutates between visits; a merged page mutating is
	// a write and breaks the share.
	if v.volatility > 0 && d.rng.Bool(v.volatility) {
		// Error only possible when memory is exhausted; drop the mutation
		// then (the share simply persists).
		_ = d.Write(v, d.rng.Uint64())
		return
	}
	if v.merged != nil {
		return // already shared; nothing to do
	}

	// 1. Stable tree: merge with an existing shared frame.
	if sn, ok := d.stable.Find(v.digest).(*stableNode); ok && sn != nil {
		d.mergeIntoStable(v, sn)
		return
	}

	// 2. Unstable tree: another un-shared page with identical content
	// seen this pass -> promote both into a new stable node. Entries can
	// be stale (the candidate's content changed after insertion, or its
	// owner died); verify before merging.
	if other, ok := d.unstable.Find(v.digest).(*VPage); ok && other != nil &&
		other != v && !other.dead && other.merged == nil && other.digest == v.digest {
		d.promote(other, v)
		return
	}

	// 3. Checksum gate: only checksum-stable pages enter the unstable
	// tree (mm/ksm.c skips pages that changed since the last visit).
	if v.hasChecksum && v.checksum == v.digest {
		if d.unstable.Find(v.digest) == nil {
			d.unstable.Insert(v.digest, v)
		}
	}
	v.checksum = v.digest
	v.hasChecksum = true
}

// mergeIntoStable points v at the shared frame and frees its own frame.
func (d *Daemon) mergeIntoStable(v *VPage, sn *stableNode) {
	delete(d.byFrame, v.frame)
	d.mem.FreePage(v.frame)
	v.frame = sn.frame
	v.merged = sn
	sn.refs++
	d.sharedSaved++
	d.stats.Merges++
}

// promote creates a stable node from two identical unshared pages: a's
// frame becomes the shared frame (reassigned to the KSM owner), b's frame
// is freed.
func (d *Daemon) promote(a, b *VPage) {
	d.unstable.Delete(a.digest)
	sn := &stableNode{digest: a.digest, frame: a.frame, refs: 2}
	d.mem.Reassign(a.frame, Owner)
	delete(d.byFrame, a.frame)
	d.byFrame[sn.frame] = sn
	a.merged = sn
	delete(d.byFrame, b.frame)
	d.mem.FreePage(b.frame)
	b.frame = sn.frame
	b.merged = sn
	d.stable.Insert(sn.digest, sn)
	d.sharedSaved++ // two pages now occupy one frame
	d.stats.Merges += 2
}

// frameMigrated keeps content tracking consistent across page migration
// (memory off-lining moves frames; KSM metadata must follow).
func (d *Daemon) frameMigrated(src, dst kernel.PFN) {
	entry, ok := d.byFrame[src]
	if !ok {
		return
	}
	delete(d.byFrame, src)
	d.byFrame[dst] = entry
	switch e := entry.(type) {
	case *VPage:
		e.frame = dst
	case *stableNode:
		e.frame = dst
		// Every sharer's mapping moves with the frame.
		for _, v := range d.pages {
			if v.merged == e {
				v.frame = dst
			}
		}
	}
}

// SavedPages reports how many frames merging currently saves.
func (d *Daemon) SavedPages() int64 { return d.sharedSaved }

// SavedBytes reports the bytes merging currently saves.
func (d *Daemon) SavedBytes() int64 { return d.sharedSaved * d.mem.PageBytes() }

// StableLen reports the stable tree size (shared frames).
func (d *Daemon) StableLen() int { return d.stable.Len() }

// Registered reports the number of registered pages.
func (d *Daemon) Registered() int { return len(d.pages) }

// Stats returns accumulated counters.
func (d *Daemon) Stats() Stats { return d.stats }

// CPUShare reports the fraction of one core the daemon consumes at the
// configured scan rate (paper §5.3: ~10%).
func (d *Daemon) CPUShare() float64 {
	return float64(d.cfg.ScanCostPerPage) * float64(d.cfg.PagesPerScan) / float64(d.cfg.ScanPeriod)
}
