package ksm

import (
	"testing"

	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

// TestUnregisterDuringScanIsSafe: owners dying mid-pass leave dangling
// unstable-tree entries; later visits must never merge against those dead
// frames (they have returned to the buddy allocator).
func TestUnregisterDuringScanIsSafe(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 64 << 20, PageBytes: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one page visit per chunk: full control of pass boundaries.
	d, err := New(eng, mem, Config{
		PagesPerScan: 1, ScanPeriod: sim.Millisecond, ScanCostPerPage: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	img := []uint64{101, 102, 103}
	a := allocAndRegister(t, mem, d, 10, img, 0)
	b := allocAndRegister(t, mem, d, 11, img, 0)
	// Pass 1 (6 visits): builds checksums only.
	for i := 0; i < 6; i++ {
		d.ScanChunk()
	}
	// Pass 2 begins: owner 10's first page enters the unstable tree.
	d.ScanChunk()
	if d.unstable.Len() == 0 {
		t.Fatal("setup: no unstable entry yet")
	}
	// Owner 10 dies with its page sitting in the unstable tree.
	d.UnregisterOwner(10)
	mem.FreeOwner(10)
	// Many further visits: owner 11 must never merge against the dead
	// entry, and nothing may crash on the freed frames.
	for i := 0; i < 60; i++ {
		d.ScanChunk()
	}
	for _, v := range b {
		if v.Merged() {
			t.Fatalf("page merged against an unregistered owner's frame")
		}
	}
	if d.SavedPages() != 0 {
		t.Errorf("SavedPages = %d", d.SavedPages())
	}
	_ = a
}

// TestWriteToUnregisteredPageFails cleanly.
func TestWriteToUnregisteredPageFails(t *testing.T) {
	_, mem, d := setup(t, 64)
	v := allocAndRegister(t, mem, d, 10, []uint64{7}, 0)
	d.UnregisterOwner(10)
	if err := d.Write(v[0], 9); err == nil {
		t.Error("write to dead page accepted")
	}
}

// TestScanCostAccounting: CPU time scales with visits.
func TestScanCostAccounting(t *testing.T) {
	eng := sim.NewEngine()
	_ = eng
	_, mem, d := setup(t, 64)
	allocAndRegister(t, mem, d, 10, make([]uint64, 100), 0)
	d.ScanChunk()
	st := d.Stats()
	if st.Scans == 0 {
		t.Fatal("no scans")
	}
	if st.CPUTime != sim.Time(st.Scans)*d.cfg.ScanCostPerPage {
		t.Errorf("CPU time %v != scans %d x cost", st.CPUTime, st.Scans)
	}
}

// TestMergeChainAfterCoWBreakRejoins: a page that broke CoW and later
// reverts to the shared content can merge again via the stable tree.
func TestMergeChainAfterCoWBreakRejoins(t *testing.T) {
	_, mem, d := setup(t, 64)
	const shared = uint64(4242)
	a := allocAndRegister(t, mem, d, 10, []uint64{shared}, 0)
	b := allocAndRegister(t, mem, d, 11, []uint64{shared}, 0)
	c := allocAndRegister(t, mem, d, 12, []uint64{shared}, 0)
	scanPasses(d, 3)
	if d.SavedPages() != 2 {
		t.Fatalf("setup: saved = %d", d.SavedPages())
	}
	// a writes private content, then reverts to the shared content.
	if err := d.Write(a[0], 999); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(a[0], shared); err != nil {
		t.Fatal(err)
	}
	scanPasses(d, 3)
	if !a[0].Merged() {
		t.Error("reverted page did not re-merge against the stable tree")
	}
	if d.SavedPages() != 2 {
		t.Errorf("saved = %d after re-merge, want 2", d.SavedPages())
	}
	_ = b
	_ = c
}
