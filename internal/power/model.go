// Package power converts memory-controller activity statistics into DRAM
// and system power/energy figures, in the style the GreenDIMM paper uses:
// Micron-style IDDx datasheet arithmetic for the DRAM devices (the same
// math RAPL calibration and DRAMPower/CACTI use), a per-DIMM static term
// for the register/clock-driver, and a simple CPU+rest-of-system model for
// wall power.
//
// The headline anchor points from the paper's Fig. 2 hold for the default
// parameters: a 256GB machine (eight 2R x4 32GB DIMMs) consumes ~18W idle
// and ~26W running 16 copies of mcf, and background power dominates as
// capacity grows (44% at 64GB to ~78% at 1TB).
//
// Power accounting aggregates activity across all channels, so under a
// channel-sharded engine (sim.SetShards, DESIGN.md §10) it runs on the
// global lane, over the controller's merged Stats() snapshot — never
// inside a per-channel lane.
package power

import (
	"fmt"

	"greendimm/internal/dram"
	"greendimm/internal/sim"
)

// DeviceIDD holds per-device DDR4 current parameters in milliamps at VDD.
// Names follow the JEDEC datasheet conventions.
type DeviceIDD struct {
	VDD   float64 // volts
	IDD0  float64 // one-bank ACT-PRE cycling
	IDD2N float64 // precharge standby
	IDD2P float64 // precharge power-down
	IDD3N float64 // active standby
	IDD3P float64 // active power-down
	IDD4R float64 // read burst
	IDD4W float64 // write burst
	IDD5B float64 // burst refresh
	IDD6  float64 // self-refresh
}

// DDR4_4Gb returns datasheet-typical currents for a 4Gb x8 DDR4-2133
// device (the 64GB machine's DIMMs).
func DDR4_4Gb() DeviceIDD {
	return DeviceIDD{
		VDD:   1.2,
		IDD0:  58,
		IDD2N: 37,
		IDD2P: 24,
		IDD3N: 50,
		IDD3P: 32,
		IDD4R: 150,
		IDD4W: 140,
		IDD5B: 190,
		IDD6:  20,
	}
}

// DDR4_8Gb returns currents for an 8Gb x4 device (the 256GB machine).
// Higher density refreshes more rows per REF, hence the larger IDD5B.
func DDR4_8Gb() DeviceIDD {
	return DeviceIDD{
		VDD:   1.2,
		IDD0:  55,
		IDD2N: 40,
		IDD2P: 25,
		IDD3N: 52,
		IDD3P: 33,
		IDD4R: 145,
		IDD4W: 135,
		IDD5B: 250,
		IDD6:  22,
	}
}

// Model computes DRAM power from organization, timing and device currents.
type Model struct {
	Org    dram.Org
	Timing dram.Timing
	IDD    DeviceIDD

	// DIMMStaticW is the per-DIMM always-on power (registering clock
	// driver, on-DIMM PLL, SPD, termination bias) that no DRAM power
	// state removes.
	DIMMStaticW float64

	// DPDResidual is the fraction of a sub-array group's background power
	// that remains in deep power-down: power-gate switch leakage plus the
	// always-on spare rows from repair arrays (paper §6.1 assumes spare
	// rows, <2% of rows, stay on).
	DPDResidual float64

	// IOEnergyPJPerBit is the interface energy per transferred bit
	// (DQ drivers, on-die termination on both ends): power the IDD4
	// current deltas do not capture but RAPL-measured busy power does.
	IOEnergyPJPerBit float64
}

// NewModel builds the default model for an organization, choosing device
// currents by density.
func NewModel(o dram.Org) (*Model, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Org: o, DIMMStaticW: 0.20, DPDResidual: 0.02, IOEnergyPJPerBit: 10}
	switch o.DeviceGbit {
	case 4:
		m.IDD = DDR4_4Gb()
		m.Timing = dram.DDR4_2133()
	case 8:
		m.IDD = DDR4_8Gb()
		m.Timing = dram.DDR4_2133_8Gb()
	default:
		return nil, fmt.Errorf("power: no IDD preset for %dGb devices", o.DeviceGbit)
	}
	return m, nil
}

// watts converts a per-device current (mA) into per-rank watts.
func (m *Model) watts(mA float64) float64 {
	return mA / 1000 * m.IDD.VDD * float64(m.Org.DevicesPerRank())
}

// RankBackgroundW returns the background power of one rank in the given
// power state, excluding refresh energy (accounted separately per REF) and
// excluding DIMM static power. dpdFrac is the fraction of sub-array groups
// in GreenDIMM deep power-down: that share of the array's background power
// drops to DPDResidual.
func (m *Model) RankBackgroundW(state dram.PowerState, dpdFrac float64) float64 {
	if dpdFrac < 0 || dpdFrac > 1 {
		panic(fmt.Sprintf("power: dpdFrac %v out of [0,1]", dpdFrac))
	}
	var base float64
	switch state {
	case dram.StateActive:
		base = m.watts(m.IDD.IDD3N)
	case dram.StatePrechargeStandby:
		base = m.watts(m.IDD.IDD2N)
	case dram.StatePowerDown:
		base = m.watts(m.IDD.IDD2P)
	case dram.StateSelfRefresh:
		// IDD6 includes the self-refresh current itself.
		base = m.watts(m.IDD.IDD6)
	default:
		panic(fmt.Sprintf("power: %v is not a rank state", state))
	}
	return base*(1-dpdFrac) + base*dpdFrac*m.DPDResidual
}

// ActEnergyJ returns the energy of one ACT+PRE pair on one rank, i.e. the
// IDD0 cycling current net of the background already accounted.
func (m *Model) ActEnergyJ() float64 {
	t := m.Timing
	net := m.IDD.IDD0*t.TRC.Seconds() -
		(m.IDD.IDD3N*t.TRAS.Seconds() + m.IDD.IDD2N*(t.TRC-t.TRAS).Seconds())
	return net / 1000 * m.IDD.VDD * float64(m.Org.DevicesPerRank())
}

// BurstEnergyJ returns the energy of one read or write burst net of active
// standby background, including interface (driver + termination) energy
// for the 64-byte line transferred.
func (m *Model) BurstEnergyJ(write bool) float64 {
	i := m.IDD.IDD4R
	if write {
		i = m.IDD.IDD4W
	}
	core := (i - m.IDD.IDD3N) / 1000 * m.IDD.VDD *
		m.Timing.TBL.Seconds() * float64(m.Org.DevicesPerRank())
	ioBits := float64(m.Org.LineBytes()) * 8
	return core + m.IOEnergyPJPerBit*1e-12*ioBits
}

// RefEnergyJ returns the energy of one all-bank REF on one rank, net of
// standby background, with dpdFrac of the sub-array groups not refreshed
// (GreenDIMM stops refresh for deep-powered-down groups).
func (m *Model) RefEnergyJ(dpdFrac float64) float64 {
	full := (m.IDD.IDD5B - m.IDD.IDD2N) / 1000 * m.IDD.VDD *
		m.Timing.TRFC.Seconds() * float64(m.Org.DevicesPerRank())
	return full * (1 - dpdFrac)
}

// SelfRefreshRefreshW is zero: IDD6 already folds the internal refresh
// current into the self-refresh background, so no per-REF energy is added
// for ranks in self-refresh. Exposed as documentation-by-API.
func (m *Model) SelfRefreshRefreshW() float64 { return 0 }

// DIMMStaticTotalW is the static power of all DIMMs in the system.
func (m *Model) DIMMStaticTotalW() float64 {
	return m.DIMMStaticW * float64(m.Org.Channels*m.Org.DIMMsPerChannel)
}

// IdleSystemDRAMW estimates whole-memory power with every rank sitting in
// precharge standby and refreshing normally — the paper's "idle" bar in
// Fig. 2.
func (m *Model) IdleSystemDRAMW() float64 {
	ranks := float64(m.Org.TotalRanks())
	bg := m.RankBackgroundW(dram.StatePrechargeStandby, 0) * ranks
	refPerRank := m.RefEnergyJ(0) / m.Timing.TREFI.Seconds()
	return bg + refPerRank*ranks + m.DIMMStaticTotalW()
}

// Breakdown is a DRAM power decomposition in watts.
type Breakdown struct {
	BackgroundW float64 // state-dependent standby power of all ranks
	RefreshW    float64 // refresh energy averaged over the interval
	ActPreW     float64 // activation/precharge
	RdWrW       float64 // read/write bursts
	DIMMStaticW float64 // RCD/PLL/termination
}

// TotalW sums the components.
func (b Breakdown) TotalW() float64 {
	return b.BackgroundW + b.RefreshW + b.ActPreW + b.RdWrW + b.DIMMStaticW
}

// BackgroundFraction is the fraction of total power that is background +
// refresh + static — the quantity the paper tracks in Fig. 2.
func (b Breakdown) BackgroundFraction() float64 {
	t := b.TotalW()
	if t == 0 {
		return 0
	}
	return (b.BackgroundW + b.RefreshW + b.DIMMStaticW) / t
}

// Activity summarizes controller activity over an interval, the input to
// FromActivity. Residencies are summed across all ranks (rank-seconds).
type Activity struct {
	Window sim.Time // wall duration of the interval

	// Per-state rank residency, in rank-time units. Sum should equal
	// Window x TotalRanks when every rank is accounted.
	ActiveT  sim.Time
	StandbyT sim.Time
	PowerDnT sim.Time
	SelfRefT sim.Time

	Activations int64 // ACT count across all ranks
	Reads       int64
	Writes      int64
	Refreshes   int64 // REF commands issued (auto-refresh, not self-refresh)

	// DPDFrac is the time-averaged fraction of sub-array groups in deep
	// power-down over the window.
	DPDFrac float64
}

// Validate checks the residencies cover exactly the window.
func (a Activity) Validate(o dram.Org) error {
	if a.Window <= 0 {
		return fmt.Errorf("power: non-positive window %v", a.Window)
	}
	total := a.ActiveT + a.StandbyT + a.PowerDnT + a.SelfRefT
	want := a.Window * sim.Time(o.TotalRanks())
	// Allow rounding slack of one ns per rank.
	slack := sim.Time(o.TotalRanks()) * sim.Nanosecond
	if diff := total - want; diff > slack || diff < -slack {
		return fmt.Errorf("power: residency %v != window x ranks %v", total, want)
	}
	if a.DPDFrac < 0 || a.DPDFrac > 1 {
		return fmt.Errorf("power: DPDFrac %v out of range", a.DPDFrac)
	}
	return nil
}

// FromActivity converts an activity summary into an average power
// breakdown over the window.
func (m *Model) FromActivity(a Activity) (Breakdown, error) {
	if err := a.Validate(m.Org); err != nil {
		return Breakdown{}, err
	}
	w := a.Window.Seconds()
	var b Breakdown
	b.BackgroundW = (m.RankBackgroundW(dram.StateActive, a.DPDFrac)*a.ActiveT.Seconds() +
		m.RankBackgroundW(dram.StatePrechargeStandby, a.DPDFrac)*a.StandbyT.Seconds() +
		m.RankBackgroundW(dram.StatePowerDown, a.DPDFrac)*a.PowerDnT.Seconds() +
		m.RankBackgroundW(dram.StateSelfRefresh, a.DPDFrac)*a.SelfRefT.Seconds()) / w
	b.RefreshW = float64(a.Refreshes) * m.RefEnergyJ(a.DPDFrac) / w
	b.ActPreW = float64(a.Activations) * m.ActEnergyJ() / w
	b.RdWrW = (float64(a.Reads)*m.BurstEnergyJ(false) + float64(a.Writes)*m.BurstEnergyJ(true)) / w
	b.DIMMStaticW = m.DIMMStaticTotalW()
	return b, nil
}
