package power

import (
	"math"
	"testing"
	"testing/quick"

	"greendimm/internal/dram"
	"greendimm/internal/sim"
)

// TestBreakdownComponentsSum: TotalW is exactly the component sum, and
// BackgroundFraction is the background share.
func TestBreakdownComponentsSum(t *testing.T) {
	b := Breakdown{BackgroundW: 4, RefreshW: 1, ActPreW: 2, RdWrW: 3, DIMMStaticW: 0.5}
	if got := b.TotalW(); got != 10.5 {
		t.Errorf("TotalW = %v", got)
	}
	if got := b.BackgroundFraction(); math.Abs(got-5.5/10.5) > 1e-12 {
		t.Errorf("BackgroundFraction = %v", got)
	}
	if (Breakdown{}).BackgroundFraction() != 0 {
		t.Error("empty breakdown fraction should be 0")
	}
}

// TestIOEnergyMonotone: the interface-energy knob raises burst energy
// linearly and leaves everything else alone.
func TestIOEnergyMonotone(t *testing.T) {
	m, err := NewModel(dram.Org64GB())
	if err != nil {
		t.Fatal(err)
	}
	base := m.BurstEnergyJ(false)
	m.IOEnergyPJPerBit *= 2
	boosted := m.BurstEnergyJ(false)
	if boosted <= base {
		t.Error("doubling IO energy did not raise burst energy")
	}
	// The added amount is exactly the extra pJ/bit x 512 bits.
	extra := m.IOEnergyPJPerBit / 2 * 1e-12 * 512
	if math.Abs((boosted-base)-extra) > 1e-18 {
		t.Errorf("IO delta = %v, want %v", boosted-base, extra)
	}
	if m.ActEnergyJ() <= 0 {
		t.Error("ACT energy perturbed")
	}
}

// TestFromActivityMixedStatesProperty: any residency split that covers
// the window yields a background power between the all-self-refresh floor
// and the all-active ceiling.
func TestFromActivityMixedStatesProperty(t *testing.T) {
	o := dram.Org64GB()
	m, err := NewModel(o)
	if err != nil {
		t.Fatal(err)
	}
	window := sim.Second
	total := window * sim.Time(o.TotalRanks())
	floorB, _ := m.FromActivity(Activity{Window: window, SelfRefT: total})
	ceilB, _ := m.FromActivity(Activity{Window: window, ActiveT: total})
	f := func(a8, s8, p8 uint8) bool {
		// Random split of the residency across the four states.
		a := sim.Time(a8)
		s := sim.Time(s8)
		p := sim.Time(p8)
		sum := a + s + p + 1
		act := Activity{
			Window:   window,
			ActiveT:  total * a / sum,
			StandbyT: total * s / sum,
			PowerDnT: total * p / sum,
		}
		act.SelfRefT = total - act.ActiveT - act.StandbyT - act.PowerDnT
		b, err := m.FromActivity(act)
		if err != nil {
			return false
		}
		return b.BackgroundW >= floorB.BackgroundW-1e-9 &&
			b.BackgroundW <= ceilB.BackgroundW+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDPDMonotoneInFraction: more groups down never costs more power.
func TestDPDMonotoneInFraction(t *testing.T) {
	m, err := NewModel(dram.Org256GB())
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for frac := 0.0; frac <= 1.0; frac += 0.1 {
		w := m.RankBackgroundW(dram.StatePrechargeStandby, frac) + m.RefEnergyJ(frac)
		if w > prev {
			t.Fatalf("power increased at frac %.1f", frac)
		}
		prev = w
	}
}

// TestBusyMinusIdleTracksBandwidth: activity power scales linearly with
// the request rate (the Fig. 2 busy-idle gap).
func TestBusyMinusIdleTracksBandwidth(t *testing.T) {
	o := dram.Org256GB()
	m, err := NewModel(o)
	if err != nil {
		t.Fatal(err)
	}
	window := sim.Second
	ranks := int64(o.TotalRanks())
	mk := func(gbps int64) float64 {
		lines := gbps << 30 / 64
		a := Activity{
			Window:      window,
			ActiveT:     window * sim.Time(ranks),
			Refreshes:   int64(window/m.Timing.TREFI) * ranks,
			Activations: lines / 2,
			Reads:       lines / 2,
			Writes:      lines / 2,
		}
		b, err := m.FromActivity(a)
		if err != nil {
			t.Fatal(err)
		}
		return b.ActPreW + b.RdWrW
	}
	w10, w20 := mk(10), mk(20)
	if math.Abs(w20-2*w10)/w20 > 0.01 {
		t.Errorf("activity power not linear: %v at 10GB/s, %v at 20GB/s", w10, w20)
	}
}
