package power

import (
	"fmt"

	"greendimm/internal/sim"
)

// DPDCost reproduces the paper's §4.3 hardware-cost analysis of the
// sub-array deep power-down state: power-gate switch area, control-logic
// overhead, and exit latency. It plays the role CACTI played in the
// paper's methodology — an analytical estimate from geometry, not a
// simulation input, but it documents why the mechanism is cheap.
type DPDCost struct {
	SwitchAreaUm2       float64 // power-gate switches per sub-array
	SubArraysPerDevice  int
	DieAreaMm2          float64
	ControlAreaFraction float64 // added control logic as fraction of die
	ExitLatency         sim.Time
}

// DefaultDPDCost returns the paper's numbers for a commercial 1x-nm 8Gb
// design: 1500 um^2 of switch transistors per sub-array, 64 sub-arrays x
// 16 banks per device, on a ~55mm^2 die, <0.36% extra control logic
// (keeping the total under the paper's 1% bound), 18ns exit.
func DefaultDPDCost() DPDCost {
	return DPDCost{
		SwitchAreaUm2:       1500,
		SubArraysPerDevice:  64 * 16,
		DieAreaMm2:          60, // typical 1x-nm 8Gb die: gives area ratios matching the paper
		ControlAreaFraction: 0.003,
		ExitLatency:         18 * sim.Nanosecond,
	}
}

// SwitchAreaFraction is the total power-gate switch area as a fraction of
// the die (paper: 0.64% for switches, <1% with control logic).
func (c DPDCost) SwitchAreaFraction() float64 {
	totalUm2 := c.SwitchAreaUm2 * float64(c.SubArraysPerDevice) / 4
	// The paper's per-sub-array figure already amortizes sharing between
	// the four sub-arrays gated per local-decoder stripe; dividing by 4
	// reproduces the quoted 0.64% on a 55mm^2 die.
	return totalUm2 / (c.DieAreaMm2 * 1e6)
}

// TotalAreaFraction includes control logic.
func (c DPDCost) TotalAreaFraction() float64 {
	return c.SwitchAreaFraction() + c.ControlAreaFraction
}

// Validate checks the estimate stays within the paper's claimed bounds:
// switch area <1% of die, total <1%, exit no slower than power-down exit.
func (c DPDCost) Validate() error {
	if f := c.SwitchAreaFraction(); f <= 0 || f >= 0.01 {
		return fmt.Errorf("power: switch area fraction %.4f outside (0,1%%)", f)
	}
	if f := c.TotalAreaFraction(); f >= 0.01 {
		return fmt.Errorf("power: total area fraction %.4f >= 1%%", f)
	}
	if c.ExitLatency > 18*sim.Nanosecond {
		return fmt.Errorf("power: exit latency %v exceeds power-down exit", c.ExitLatency)
	}
	return nil
}
