package power

import (
	"math"
	"testing"

	"greendimm/internal/dram"
	"greendimm/internal/sim"
)

func mustModel(t *testing.T, o dram.Org) *Model {
	t.Helper()
	m, err := NewModel(o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIdlePowerAnchor256GB(t *testing.T) {
	// Paper Fig. 2: 256GB idles around 18W. Allow +-20% for our datasheet
	// parameters vs their measured DIMMs.
	m := mustModel(t, dram.Org256GB())
	idle := m.IdleSystemDRAMW()
	if idle < 14 || idle > 22 {
		t.Errorf("256GB idle DRAM power = %.1fW, want ~18W", idle)
	}
}

func TestIdlePowerScalesWithCapacity(t *testing.T) {
	prev := 0.0
	for _, gb := range []int{128, 256, 512, 1024} {
		o, err := dram.OrgWithCapacity(gb)
		if err != nil {
			t.Fatal(err)
		}
		idle := mustModel(t, o).IdleSystemDRAMW()
		if idle <= prev {
			t.Errorf("%dGB idle %.1fW not greater than smaller capacity %.1fW", gb, idle, prev)
		}
		prev = idle
	}
	// 1TB idle should land in the ballpark the paper implies (~70W
	// background out of 91W busy).
	o, _ := dram.OrgWithCapacity(1024)
	if idle := mustModel(t, o).IdleSystemDRAMW(); idle < 55 || idle > 90 {
		t.Errorf("1TB idle = %.1fW, want ~70W", idle)
	}
}

func TestStateOrdering(t *testing.T) {
	// Background power must strictly decrease along
	// active > standby > power-down > self-refresh.
	m := mustModel(t, dram.Org64GB())
	act := m.RankBackgroundW(dram.StateActive, 0)
	stb := m.RankBackgroundW(dram.StatePrechargeStandby, 0)
	pd := m.RankBackgroundW(dram.StatePowerDown, 0)
	sr := m.RankBackgroundW(dram.StateSelfRefresh, 0)
	if !(act > stb && stb > pd && pd > sr && sr > 0) {
		t.Errorf("state power ordering violated: act=%v stb=%v pd=%v sr=%v", act, stb, pd, sr)
	}
	// Paper §2.2: power-down consumes 40-70% of active; self-refresh can
	// go down to ~10-40%.
	if r := pd / act; r < 0.35 || r > 0.75 {
		t.Errorf("power-down/active ratio = %.2f, want 0.4-0.7", r)
	}
	if r := sr / act; r < 0.05 || r > 0.5 {
		t.Errorf("self-refresh/active ratio = %.2f, want ~0.1-0.4", r)
	}
}

func TestDPDPracticallyEliminatesBackground(t *testing.T) {
	m := mustModel(t, dram.Org64GB())
	full := m.RankBackgroundW(dram.StatePrechargeStandby, 0)
	allDown := m.RankBackgroundW(dram.StatePrechargeStandby, 1)
	if r := allDown / full; r > 0.05 {
		t.Errorf("DPD residual = %.1f%%, want <5%% ('practically eliminates')", r*100)
	}
	// Half down -> roughly half the gateable background.
	half := m.RankBackgroundW(dram.StatePrechargeStandby, 0.5)
	want := (full + allDown) / 2
	if math.Abs(half-want) > 1e-9 {
		t.Errorf("half-down background = %v, want %v", half, want)
	}
}

func TestRefreshEnergyScalesWithDPD(t *testing.T) {
	m := mustModel(t, dram.Org64GB())
	if m.RefEnergyJ(0) <= 0 {
		t.Fatal("refresh energy must be positive")
	}
	if got := m.RefEnergyJ(1); got != 0 {
		t.Errorf("all-groups-down refresh energy = %v, want 0", got)
	}
	if got, want := m.RefEnergyJ(0.25), m.RefEnergyJ(0)*0.75; math.Abs(got-want) > 1e-15 {
		t.Errorf("quarter-down refresh = %v, want %v", got, want)
	}
}

func TestEventEnergiesPositive(t *testing.T) {
	m := mustModel(t, dram.Org64GB())
	if m.ActEnergyJ() <= 0 {
		t.Error("ACT energy must be positive")
	}
	if m.BurstEnergyJ(false) <= 0 || m.BurstEnergyJ(true) <= 0 {
		t.Error("burst energies must be positive")
	}
	// Read bursts draw more than writes for these devices (IDD4R > IDD4W).
	if m.BurstEnergyJ(false) <= m.BurstEnergyJ(true) {
		t.Error("expected read burst energy > write burst energy")
	}
}

func TestFromActivityIdleEqualsIdleEstimate(t *testing.T) {
	// An all-standby activity window with nominal refresh must agree with
	// IdleSystemDRAMW.
	o := dram.Org256GB()
	m := mustModel(t, o)
	window := sim.Second
	ranks := int64(o.TotalRanks())
	refPerRank := int64(window / m.Timing.TREFI)
	a := Activity{
		Window:    window,
		StandbyT:  window * sim.Time(ranks),
		Refreshes: refPerRank * ranks,
	}
	b, err := m.FromActivity(a)
	if err != nil {
		t.Fatal(err)
	}
	idle := m.IdleSystemDRAMW()
	if math.Abs(b.TotalW()-idle)/idle > 0.01 {
		t.Errorf("FromActivity idle = %.2fW, IdleSystemDRAMW = %.2fW", b.TotalW(), idle)
	}
	if f := b.BackgroundFraction(); f != 1 {
		t.Errorf("idle background fraction = %v, want 1", f)
	}
}

func TestFromActivityBusyAnchor(t *testing.T) {
	// Paper Fig. 2: 256GB busy (16 x mcf) ~26W. Model a busy second:
	// every rank active, aggregate ~28 GB/s of reads+writes with 50% row
	// hits (16 memory-bound copies on a 4-channel DDR4-2133 machine).
	o := dram.Org256GB()
	m := mustModel(t, o)
	window := sim.Second
	ranks := int64(o.TotalRanks())
	lines := int64(28 << 30 / 64) // 28GB/s in cache lines
	a := Activity{
		Window:      window,
		ActiveT:     window * sim.Time(ranks),
		Activations: lines / 2, // 50% row hit rate
		Reads:       lines * 2 / 3,
		Writes:      lines / 3,
		Refreshes:   int64(window/m.Timing.TREFI) * ranks,
	}
	b, err := m.FromActivity(a)
	if err != nil {
		t.Fatal(err)
	}
	if tot := b.TotalW(); tot < 20 || tot > 33 {
		t.Errorf("256GB busy power = %.1fW, want ~26W", tot)
	}
	if f := b.BackgroundFraction(); f < 0.5 || f > 0.85 {
		t.Errorf("busy background fraction = %.2f, want ~0.7 (paper §3.2)", f)
	}
}

func TestActivityValidation(t *testing.T) {
	o := dram.Org64GB()
	m := mustModel(t, o)
	if _, err := m.FromActivity(Activity{Window: 0}); err == nil {
		t.Error("zero window accepted")
	}
	// Residency not covering window x ranks.
	if _, err := m.FromActivity(Activity{Window: sim.Second, StandbyT: sim.Second}); err == nil {
		t.Error("short residency accepted")
	}
	if _, err := m.FromActivity(Activity{
		Window:   sim.Second,
		StandbyT: sim.Second * sim.Time(o.TotalRanks()),
		DPDFrac:  1.5,
	}); err == nil {
		t.Error("DPDFrac > 1 accepted")
	}
}

func TestNewModelRejectsUnknownDensity(t *testing.T) {
	o := dram.Org64GB()
	o.DeviceGbit = 16
	if _, err := NewModel(o); err == nil {
		t.Error("16Gb without preset accepted")
	}
	if _, err := NewModel(dram.Org{}); err == nil {
		t.Error("invalid org accepted")
	}
}

func TestSystemModel(t *testing.T) {
	s := DefaultSystem()
	if s.CPUW(0) != s.CPUIdleW || s.CPUW(1) != s.CPUPeakW {
		t.Error("CPU endpoints wrong")
	}
	if s.CPUW(0.5) <= s.CPUIdleW || s.CPUW(0.5) >= s.CPUPeakW {
		t.Error("CPU interpolation out of range")
	}
	// System power is monotone in both arguments.
	if s.SystemW(0.5, 20) <= s.SystemW(0.5, 10) {
		t.Error("system power not monotone in DRAM power")
	}
	if s.SystemW(0.8, 20) <= s.SystemW(0.2, 20) {
		t.Error("system power not monotone in CPU utilization")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range utilization did not panic")
		}
	}()
	s.CPUW(1.5)
}

func TestSystemShareAnchors(t *testing.T) {
	// The calibration behind Fig. 13: with the VM-trace CPU load (~35%
	// utilization), DRAM is ~25-30% of system power at 256GB and >=45%
	// at 1TB, so the paper's DRAM->system reduction ratios follow.
	s := DefaultSystem()
	for _, c := range []struct {
		gb               int
		loShare, hiShare float64
	}{
		{256, 0.20, 0.35},
		{1024, 0.42, 0.60},
	} {
		o, err := dram.OrgWithCapacity(c.gb)
		if err != nil {
			t.Fatal(err)
		}
		m := mustModel(t, o)
		dramW := m.IdleSystemDRAMW() * 1.15 // mild activity on top of idle
		share := dramW / s.SystemW(0.35, dramW)
		if share < c.loShare || share > c.hiShare {
			t.Errorf("%dGB: DRAM share = %.2f, want [%.2f, %.2f]", c.gb, share, c.loShare, c.hiShare)
		}
	}
}

func TestDPDCost(t *testing.T) {
	c := DefaultDPDCost()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper §4.3: switches ~0.64% of die area, total <1%.
	if f := c.SwitchAreaFraction(); math.Abs(f-0.0064) > 0.002 {
		t.Errorf("switch area fraction = %.4f, want ~0.0064", f)
	}
	if c.TotalAreaFraction() >= 0.01 {
		t.Error("total area fraction must stay under 1%")
	}
	if c.ExitLatency != 18*sim.Nanosecond {
		t.Errorf("exit latency = %v, want 18ns", c.ExitLatency)
	}
	bad := c
	bad.SwitchAreaUm2 *= 10
	if err := bad.Validate(); err == nil {
		t.Error("10x switch area should fail validation")
	}
}

func TestEnergyJ(t *testing.T) {
	if EnergyJ(10, 3) != 30 {
		t.Error("EnergyJ arithmetic wrong")
	}
}
