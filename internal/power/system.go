package power

import "fmt"

// SystemModel estimates wall power for the paper's evaluation server: a
// 16-core Xeon plus memory plus "everything else" (board, VRM losses,
// fans, storage, NIC). The CPU term interpolates linearly between idle and
// peak with utilization — the same first-order model the paper's Fig. 13
// linear extrapolation implies.
type SystemModel struct {
	CPUIdleW float64 // package power at 0% utilization
	CPUPeakW float64 // package power at 100% utilization
	OtherW   float64 // constant rest-of-system power
}

// DefaultSystem returns the calibration used across the experiments:
// chosen so the paper's headline ratios hold (DRAM ≈ 28% of system power
// at 256GB under the VM trace, ≈ 55% at 1TB; GreenDIMM's 32%/36% DRAM
// reductions translate to 9%/20% system reductions — §6.3).
func DefaultSystem() SystemModel {
	return SystemModel{CPUIdleW: 20, CPUPeakW: 110, OtherW: 18}
}

// CPUW returns the CPU power at a utilization in [0,1].
func (s SystemModel) CPUW(util float64) float64 {
	if util < 0 || util > 1 {
		panic(fmt.Sprintf("power: CPU utilization %v out of [0,1]", util))
	}
	return s.CPUIdleW + (s.CPUPeakW-s.CPUIdleW)*util
}

// SystemW returns total wall power given CPU utilization and DRAM power.
func (s SystemModel) SystemW(cpuUtil, dramW float64) float64 {
	return s.CPUW(cpuUtil) + dramW + s.OtherW
}

// EnergyJ integrates power over a duration in seconds.
func EnergyJ(watts, seconds float64) float64 { return watts * seconds }
