package hotplug

import (
	"testing"

	"greendimm/internal/kernel"
)

// TestLatencyScalesWithBlockSize: per-byte cost model means a 256MB block
// takes roughly twice a 128MB block's off-lining time (the Fig. 7
// mechanism: fewer, costlier events with bigger blocks).
func TestLatencyScalesWithBlockSize(t *testing.T) {
	lat := func(blockMB int64) float64 {
		mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: pageSize})
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := New(mem, Config{BlockBytes: blockMB << 20})
		if err != nil {
			t.Fatal(err)
		}
		l, err := mgr.Offline(0)
		if err != nil {
			t.Fatal(err)
		}
		return l.Milliseconds()
	}
	l128, l256, l512 := lat(128), lat(256), lat(512)
	if !(l128 < l256 && l256 < l512) {
		t.Fatalf("latencies not increasing: %.2f %.2f %.2f", l128, l256, l512)
	}
	// Ratio should approach 2x as the per-byte term dominates the base.
	if r := l256 / l128; r < 1.5 || r > 2.1 {
		t.Errorf("256/128 latency ratio = %.2f, want ~1.9", r)
	}
}

// TestMovableZoneBlocksAreRemovable: blocks fully inside the movable zone
// are removable even when the Normal zone is pinned by kernel memory.
func TestMovableZoneBlocksAreRemovable(t *testing.T) {
	mem, err := kernel.New(kernel.Config{
		TotalBytes: 256 * oneMB, PageBytes: pageSize,
		MovableBytes: 64 * oneMB, KernelReservedBytes: 32 * oneMB,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(mem, Config{BlockBytes: 32 * oneMB})
	if err != nil {
		t.Fatal(err)
	}
	// Blocks 6 and 7 are the movable zone (top 64MB of 8 blocks).
	for _, b := range []int{6, 7} {
		if !mgr.Removable(b) {
			t.Errorf("movable-zone block %d not removable", b)
		}
	}
	if mgr.Removable(0) {
		t.Error("kernel-pinned block 0 reported removable")
	}
}

// TestStatsDistributionsAccumulate: repeated operations populate the
// latency distributions with consistent counts.
func TestStatsDistributionsAccumulate(t *testing.T) {
	mem, err := kernel.New(kernel.Config{TotalBytes: 256 * oneMB, PageBytes: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(mem, Config{BlockBytes: 32 * oneMB})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := mgr.Offline(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := mgr.Online(i); err != nil {
			t.Fatal(err)
		}
	}
	st := mgr.Stats()
	if st.OfflineLat.N() != 4 || st.OnlineLat.N() != 2 {
		t.Errorf("latency sample counts = %d/%d, want 4/2", st.OfflineLat.N(), st.OnlineLat.N())
	}
	if st.Offlines != 4 || st.Onlines != 2 || st.Failures() != 0 {
		t.Errorf("counters wrong: %+v", st)
	}
	// All same-size successes: distribution is degenerate.
	if st.OfflineLat.Percentile(99) != st.OfflineLat.Mean() {
		t.Error("uniform off-linings should have a flat latency distribution")
	}
}
