// Package hotplug implements Linux memory-block on/off-lining on top of
// internal/kernel, mirroring mm/memory_hotplug.c at the fidelity the
// GreenDIMM paper depends on (§2.3, §5.2):
//
//   - The physical address space is divided into fixed-size memory blocks
//     (128MB by default, configurable like
//     /sys/devices/system/memory/block_size_bytes).
//   - Off-lining isolates the block's free pages, migrates used movable
//     pages away (up to three attempts), and fails with EBUSY when the
//     block holds unmovable pages or EAGAIN when migration resources are
//     unavailable — with the latency profile of the paper's Table 3.
//   - Each block exposes the sysfs `removable` bit (true when every page
//     is movable or free), which GreenDIMM's block selector checks to
//     halve the failure rate (Fig. 8).
package hotplug

import (
	"errors"
	"fmt"

	"greendimm/internal/kernel"
	"greendimm/internal/metrics"
	"greendimm/internal/sim"
)

// BlockState is the hotplug state of a memory block.
type BlockState int

const (
	// BlockOnline: part of the physical address space.
	BlockOnline BlockState = iota
	// BlockOffline: removed; its DRAM can be deep-powered-down.
	BlockOffline
)

func (s BlockState) String() string {
	if s == BlockOnline {
		return "online"
	}
	return "offline"
}

// Failure kinds for off-lining, matching the errno the kernel returns.
var (
	// ErrBusy: the block contains unmovable pages; isolation failed.
	ErrBusy = errors.New("hotplug: EBUSY: unmovable pages in block")
	// ErrAgain: page migration could not complete (transient resource
	// shortage) after the retry budget.
	ErrAgain = errors.New("hotplug: EAGAIN: page migration failed")
	// ErrState: block already in the requested state.
	ErrState = errors.New("hotplug: block already in requested state")
)

// LatencyModel carries the cost constants for on/off-lining, expressed per
// byte so simulations with scaled page sizes keep the paper's absolute
// latencies (Table 3: off-line 1.58ms, on-line 3.44ms, EAGAIN 4.37ms,
// EBUSY 6us — for 128MB blocks).
type LatencyModel struct {
	OfflineBase    sim.Time // page-table/radix updates, notifier chain
	OfflinePerByte float64  // ps per byte isolated
	OnlineBase     sim.Time
	OnlinePerByte  float64 // ps per byte re-initialized (struct page init)
	EBusyLatency   sim.Time
	MigratePerByte float64 // ps per byte copied during migration
	MigrateRetries int     // attempts before EAGAIN (paper: 3)
}

// DefaultLatency reproduces Table 3 for 128MB blocks.
func DefaultLatency() LatencyModel {
	const mb128 = 128 << 20
	return LatencyModel{
		OfflineBase:    200 * sim.Microsecond,
		OfflinePerByte: float64(1380*sim.Microsecond) / mb128,
		OnlineBase:     400 * sim.Microsecond,
		OnlinePerByte:  float64(3040*sim.Microsecond) / mb128,
		EBusyLatency:   6 * sim.Microsecond,
		MigratePerByte: float64(1250*sim.Microsecond) / mb128,
		MigrateRetries: 3,
	}
}

// Config configures a hotplug manager.
type Config struct {
	BlockBytes int64 // memory block size; 0 means 128MB
	Latency    LatencyModel

	// MigrateAttemptFailProb is the per-attempt probability that migrating
	// a block with used pages hits a transient resource failure (page
	// locks, LRU isolation races, allocation pressure). The paper observes
	// off-lining succeeding essentially only on fully-free blocks; 0.9
	// reproduces that while leaving EAGAIN (not instant success) as the
	// common outcome for used blocks.
	MigrateAttemptFailProb float64

	// Seed drives the transient-failure draw.
	Seed int64
}

// Stats accumulates hotplug activity.
type Stats struct {
	Offlines int64 // successful off-linings
	Onlines  int64
	EBusy    int64
	EAgain   int64

	MigratedPages int64

	OfflineLat metrics.Distribution // milliseconds
	OnlineLat  metrics.Distribution
	EBusyLat   metrics.Distribution
	EAgainLat  metrics.Distribution
}

// Failures reports total failed off-line attempts.
func (s *Stats) Failures() int64 { return s.EBusy + s.EAgain }

// Manager tracks block states over a kernel.Mem.
type Manager struct {
	mem           *kernel.Mem
	cfg           Config
	rng           *sim.RNG
	states        []BlockState
	pagesPerBlock int64
	stats         Stats
}

// New builds a manager. BlockBytes must divide total memory and be a
// multiple of the page size.
func New(mem *kernel.Mem, cfg Config) (*Manager, error) {
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 128 << 20
	}
	total := mem.NPages() * mem.PageBytes()
	switch {
	case cfg.BlockBytes%mem.PageBytes() != 0:
		return nil, fmt.Errorf("hotplug: block size %d not a multiple of page size %d", cfg.BlockBytes, mem.PageBytes())
	case total%cfg.BlockBytes != 0:
		return nil, fmt.Errorf("hotplug: total %d not a multiple of block size %d", total, cfg.BlockBytes)
	case cfg.MigrateAttemptFailProb < 0 || cfg.MigrateAttemptFailProb > 1:
		return nil, fmt.Errorf("hotplug: fail probability %v out of range", cfg.MigrateAttemptFailProb)
	}
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = DefaultLatency()
	}
	if cfg.Latency.MigrateRetries <= 0 {
		cfg.Latency.MigrateRetries = 3
	}
	return &Manager{
		mem:           mem,
		cfg:           cfg,
		rng:           sim.NewRNG(cfg.Seed ^ 0x686f74706c7567),
		states:        make([]BlockState, total/cfg.BlockBytes),
		pagesPerBlock: cfg.BlockBytes / mem.PageBytes(),
	}, nil
}

// Blocks reports the number of memory blocks.
func (m *Manager) Blocks() int { return len(m.states) }

// BlockBytes reports the block size.
func (m *Manager) BlockBytes() int64 { return m.cfg.BlockBytes }

// State reports a block's hotplug state.
func (m *Manager) State(i int) BlockState { return m.states[i] }

// OfflineCount reports how many blocks are off-lined.
func (m *Manager) OfflineCount() int {
	n := 0
	for _, s := range m.states {
		if s == BlockOffline {
			n++
		}
	}
	return n
}

// Stats exposes accumulated statistics.
func (m *Manager) Stats() *Stats { return &m.stats }

// Range returns the PFN range [lo, hi) of block i.
func (m *Manager) Range(i int) (lo, hi kernel.PFN) {
	lo = kernel.PFN(int64(i) * m.pagesPerBlock)
	return lo, lo + kernel.PFN(m.pagesPerBlock)
}

// AddrRange returns the physical byte range [lo, hi) of block i.
func (m *Manager) AddrRange(i int) (lo, hi uint64) {
	lo = uint64(int64(i) * m.cfg.BlockBytes)
	return lo, lo + uint64(m.cfg.BlockBytes)
}

// Removable mirrors /sys/devices/system/memory/memoryN/removable: true
// when the block contains no unmovable pages.
func (m *Manager) Removable(i int) bool {
	lo, hi := m.Range(i)
	for p := lo; p < hi; p++ {
		if m.mem.State(p) == kernel.PageUnmovable {
			return false
		}
	}
	return true
}

// FullyFree reports whether every page of the block is free — the blocks
// GreenDIMM prefers, since off-lining them migrates nothing.
func (m *Manager) FullyFree(i int) bool {
	lo, hi := m.Range(i)
	for p := lo; p < hi; p++ {
		if m.mem.State(p) != kernel.PageFree {
			return false
		}
	}
	return true
}

// UsedPages counts allocated (movable or unmovable) pages in the block.
func (m *Manager) UsedPages(i int) int64 {
	lo, hi := m.Range(i)
	var n int64
	for p := lo; p < hi; p++ {
		switch m.mem.State(p) {
		case kernel.PageMovable, kernel.PageUnmovable:
			n++
		}
	}
	return n
}

// Offline attempts to off-line block i (offline_pages()). On success the
// block's pages leave the physical address space. The returned latency is
// the modelled CPU cost of the operation (also recorded in Stats); the
// caller decides what to do with it (the GreenDIMM daemon charges it to a
// core).
func (m *Manager) Offline(i int) (sim.Time, error) {
	if m.states[i] == BlockOffline {
		return 0, ErrState
	}
	lo, hi := m.Range(i)

	// Step 1: movability check (start_isolate_page_range). Any unmovable
	// page fails the whole block with EBUSY, quickly.
	for p := lo; p < hi; p++ {
		if m.mem.State(p) == kernel.PageUnmovable {
			m.stats.EBusy++
			m.stats.EBusyLat.Add(m.cfg.Latency.EBusyLatency.Milliseconds())
			return m.cfg.Latency.EBusyLatency, ErrBusy
		}
	}

	// Step 2: isolate free pages out of the buddy allocator.
	var isolated []kernel.PFN
	rollback := func() {
		for _, p := range isolated {
			m.mem.Unisolate(p)
		}
	}
	for p := lo; p < hi; p++ {
		if m.mem.State(p) == kernel.PageFree {
			if !m.mem.Isolate(p) {
				rollback()
				m.stats.EBusy++
				m.stats.EBusyLat.Add(m.cfg.Latency.EBusyLatency.Milliseconds())
				return m.cfg.Latency.EBusyLatency, ErrBusy
			}
			isolated = append(isolated, p)
		}
	}

	// Step 3: migrate used movable pages away, with a bounded retry
	// budget; transient failures model page locks and allocation races.
	usedBytes := int64(0)
	lat := m.cfg.Latency.OfflineBase +
		sim.Time(m.cfg.Latency.OfflinePerByte*float64(m.cfg.BlockBytes))
	attempt := 0
	for p := lo; p < hi; p++ {
		if m.mem.State(p) != kernel.PageMovable {
			continue
		}
		usedBytes += m.mem.PageBytes()
		for {
			attempt++
			transient := m.rng.Bool(m.cfg.MigrateAttemptFailProb)
			if !transient {
				if _, err := m.mem.MigratePage(p, lo, hi); err == nil {
					m.stats.MigratedPages++
					isolated = append(isolated, p) // now isolated
					break
				}
			}
			if attempt >= m.cfg.Latency.MigrateRetries {
				rollback()
				// Each attempt walked and copied; EAGAIN costs roughly
				// retries x a successful off-lining (Table 3).
				failLat := sim.Time(float64(m.cfg.Latency.MigrateRetries)) *
					(m.cfg.Latency.OfflineBase +
						sim.Time(m.cfg.Latency.OfflinePerByte*float64(m.cfg.BlockBytes)))
				m.stats.EAgain++
				m.stats.EAgainLat.Add(failLat.Milliseconds())
				return failLat, ErrAgain
			}
		}
	}
	lat += sim.Time(m.cfg.Latency.MigratePerByte * float64(usedBytes))

	// Step 4: pull the block out of the address space.
	for p := lo; p < hi; p++ {
		m.mem.MarkOffline(p)
	}
	m.states[i] = BlockOffline
	m.stats.Offlines++
	m.stats.OfflineLat.Add(lat.Milliseconds())
	return lat, nil
}

// Online brings block i back into the physical address space
// (online_pages()): struct-page re-init plus buddy insertion.
func (m *Manager) Online(i int) (sim.Time, error) {
	if m.states[i] == BlockOnline {
		return 0, ErrState
	}
	lo, hi := m.Range(i)
	for p := lo; p < hi; p++ {
		m.mem.MarkOnline(p)
	}
	m.states[i] = BlockOnline
	lat := m.cfg.Latency.OnlineBase +
		sim.Time(m.cfg.Latency.OnlinePerByte*float64(m.cfg.BlockBytes))
	m.stats.Onlines++
	m.stats.OnlineLat.Add(lat.Milliseconds())
	return lat, nil
}
