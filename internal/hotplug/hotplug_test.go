package hotplug

import (
	"errors"
	"math"
	"testing"

	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

const (
	pageSize = 4096
	oneMB    = 1 << 20
)

// testSetup builds 64MB of memory with 8MB blocks.
func testSetup(t *testing.T, kcfg kernel.Config, hcfg Config) (*kernel.Mem, *Manager) {
	t.Helper()
	if kcfg.TotalBytes == 0 {
		kcfg = kernel.Config{TotalBytes: 64 * oneMB, PageBytes: pageSize}
	}
	mem, err := kernel.New(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	if hcfg.BlockBytes == 0 {
		hcfg.BlockBytes = 8 * oneMB
	}
	mgr, err := New(mem, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	return mem, mgr
}

func TestBlockGeometry(t *testing.T) {
	_, mgr := testSetup(t, kernel.Config{}, Config{})
	if mgr.Blocks() != 8 {
		t.Errorf("Blocks = %d, want 8", mgr.Blocks())
	}
	lo, hi := mgr.Range(2)
	if lo != 2*2048 || hi != 3*2048 {
		t.Errorf("Range(2) = [%d,%d)", lo, hi)
	}
	alo, ahi := mgr.AddrRange(2)
	if alo != 16*oneMB || ahi != 24*oneMB {
		t.Errorf("AddrRange(2) = [%d,%d)", alo, ahi)
	}
}

func TestOfflineFreeBlock(t *testing.T) {
	mem, mgr := testSetup(t, kernel.Config{}, Config{})
	before := mem.Meminfo()
	lat, err := mgr.Offline(7)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("zero off-line latency")
	}
	if mgr.State(7) != BlockOffline || mgr.OfflineCount() != 1 {
		t.Error("block not marked offline")
	}
	after := mem.Meminfo()
	if after.TotalBytes != before.TotalBytes-8*oneMB {
		t.Errorf("online capacity %d, want %d", after.TotalBytes, before.TotalBytes-8*oneMB)
	}
	if after.FreeBytes != before.FreeBytes-8*oneMB {
		t.Errorf("free %d, want %d", after.FreeBytes, before.FreeBytes-8*oneMB)
	}
	lo, hi := mgr.Range(7)
	for p := lo; p < hi; p++ {
		if mem.State(p) != kernel.PageOffline {
			t.Fatalf("page %d state %v", p, mem.State(p))
		}
	}
	// Allocator no longer hands out off-lined frames.
	pfns, err := mem.AllocPages(1000, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pfns {
		if p >= lo && p < hi {
			t.Fatalf("allocated off-lined page %d", p)
		}
	}
}

func TestOnlineRestores(t *testing.T) {
	mem, mgr := testSetup(t, kernel.Config{}, Config{})
	if _, err := mgr.Offline(3); err != nil {
		t.Fatal(err)
	}
	lat, err := mgr.Online(3)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("zero on-line latency")
	}
	if mem.Meminfo().TotalBytes != 64*oneMB {
		t.Error("capacity not restored")
	}
	if mgr.OfflineCount() != 0 {
		t.Error("offline count not reset")
	}
	// Double transitions are rejected.
	if _, err := mgr.Online(3); !errors.Is(err, ErrState) {
		t.Errorf("double online: %v", err)
	}
	if _, err := mgr.Offline(3); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Offline(3); !errors.Is(err, ErrState) {
		t.Errorf("double offline: %v", err)
	}
}

func TestOfflineEBusyOnUnmovable(t *testing.T) {
	mem, mgr := testSetup(t, kernel.Config{}, Config{})
	// Kernel pages land at the bottom -> block 0 unremovable.
	if _, err := mem.AllocPages(10, false, kernel.KernelOwner); err != nil {
		t.Fatal(err)
	}
	if mgr.Removable(0) {
		t.Error("block 0 with kernel pages reported removable")
	}
	lat, err := mgr.Offline(0)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("expected EBUSY, got %v", err)
	}
	if lat != DefaultLatency().EBusyLatency {
		t.Errorf("EBUSY latency = %v, want %v", lat, DefaultLatency().EBusyLatency)
	}
	if mgr.Stats().EBusy != 1 {
		t.Error("EBUSY not counted")
	}
	// Memory intact after the failure.
	if mem.Meminfo().TotalBytes != 64*oneMB {
		t.Error("failed offline changed capacity")
	}
}

func TestOfflineMigratesUsedPages(t *testing.T) {
	mem, mgr := testSetup(t, kernel.Config{}, Config{MigrateAttemptFailProb: 0})
	// Fill block 0 partially with movable pages.
	pfns, err := mem.AllocPages(100, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !mgr.Removable(0) || mgr.FullyFree(0) {
		t.Fatal("setup wrong: block 0 should be removable but not free")
	}
	if mgr.UsedPages(0) != 100 {
		t.Fatalf("UsedPages = %d", mgr.UsedPages(0))
	}
	lat, err := mgr.Offline(0)
	if err != nil {
		t.Fatalf("offline with migration failed: %v", err)
	}
	if mgr.Stats().MigratedPages != 100 {
		t.Errorf("migrated %d pages, want 100", mgr.Stats().MigratedPages)
	}
	// Owner still holds 100 pages, now outside block 0.
	if mem.OwnerPageCount(5) != 100 {
		t.Errorf("owner lost pages: %d", mem.OwnerPageCount(5))
	}
	_, hi := mgr.Range(0)
	for _, p := range pfns {
		if p < hi && mem.State(p) != kernel.PageOffline {
			t.Errorf("source page %d not offline", p)
		}
	}
	// Migration adds latency beyond a free-block offline.
	mem2, mgr2 := testSetup(t, kernel.Config{}, Config{MigrateAttemptFailProb: 0})
	_ = mem2
	freeLat, err := mgr2.Offline(0)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= freeLat {
		t.Errorf("migration offline %v not slower than free offline %v", lat, freeLat)
	}
}

func TestOfflineEAgainRollsBack(t *testing.T) {
	mem, mgr := testSetup(t, kernel.Config{}, Config{MigrateAttemptFailProb: 1, Seed: 1})
	if _, err := mem.AllocPages(50, true, 5); err != nil {
		t.Fatal(err)
	}
	before := mem.Meminfo()
	lat, err := mgr.Offline(0)
	if !errors.Is(err, ErrAgain) {
		t.Fatalf("expected EAGAIN, got %v", err)
	}
	if mgr.Stats().EAgain != 1 {
		t.Error("EAGAIN not counted")
	}
	after := mem.Meminfo()
	if after != before {
		t.Errorf("rollback incomplete: %+v -> %+v", before, after)
	}
	if mgr.State(0) != BlockOnline {
		t.Error("block left offline after EAGAIN")
	}
	// EAGAIN is slower than a successful free-block offline (Table 3).
	_, mgr2 := testSetup(t, kernel.Config{}, Config{})
	okLat, _ := mgr2.Offline(1)
	if lat <= okLat {
		t.Errorf("EAGAIN latency %v not slower than success %v", lat, okLat)
	}
	// No pages may remain isolated.
	lo, hi := mgr.Range(0)
	for p := lo; p < hi; p++ {
		if mem.State(p) == kernel.PageIsolated {
			t.Fatalf("page %d left isolated", p)
		}
	}
}

func TestTable3LatencyAnchors(t *testing.T) {
	// 128MB blocks must reproduce the paper's Table 3 latencies within
	// tolerance: off-line 1.58ms, on-line 3.44ms, EBUSY 6us, EAGAIN ~3x
	// off-line.
	kcfg := kernel.Config{TotalBytes: 1 << 30, PageBytes: pageSize}
	_, mgr := testSetup(t, kcfg, Config{BlockBytes: 128 << 20})
	offLat, err := mgr.Offline(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := offLat.Milliseconds(); math.Abs(got-1.58) > 0.2 {
		t.Errorf("off-line latency = %.2fms, want ~1.58ms", got)
	}
	onLat, err := mgr.Online(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := onLat.Milliseconds(); math.Abs(got-3.44) > 0.35 {
		t.Errorf("on-line latency = %.2fms, want ~3.44ms", got)
	}
	if got := DefaultLatency().EBusyLatency; got != 6*sim.Microsecond {
		t.Errorf("EBUSY latency = %v, want 6us", got)
	}
	// EAGAIN anchor.
	mem3, err := kernel.New(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr3, err := New(mem3, Config{BlockBytes: 128 << 20, MigrateAttemptFailProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem3.AllocPages(10, true, 2); err != nil {
		t.Fatal(err)
	}
	againLat, err := mgr3.Offline(0)
	if !errors.Is(err, ErrAgain) {
		t.Fatal(err)
	}
	if got := againLat.Milliseconds(); got < 3.5 || got > 6 {
		t.Errorf("EAGAIN latency = %.2fms, want ~4.4-4.8ms", got)
	}
}

func TestRemovableReflectsLeakedKernelPages(t *testing.T) {
	// With boot-time unmovable scattering, some high blocks are not
	// removable (paper §5.2).
	kcfg := kernel.Config{
		TotalBytes: 256 * oneMB, PageBytes: pageSize,
		UnmovableLeakEvery: 4, Seed: 3,
	}
	_, mgr := testSetup(t, kcfg, Config{BlockBytes: 8 * oneMB})
	removable, pinned := 0, 0
	for i := 0; i < mgr.Blocks(); i++ {
		if mgr.Removable(i) {
			removable++
		} else {
			pinned++
		}
	}
	if pinned == 0 {
		t.Error("no blocks pinned by scattered kernel pages")
	}
	if removable == 0 {
		t.Error("every block pinned; scattering too aggressive")
	}
}

func TestConfigValidation(t *testing.T) {
	mem, err := kernel.New(kernel.Config{TotalBytes: 64 * oneMB, PageBytes: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mem, Config{BlockBytes: 3 * oneMB}); err == nil {
		t.Error("non-divisor block size accepted")
	}
	if _, err := New(mem, Config{BlockBytes: 1000}); err == nil {
		t.Error("non-page-multiple block size accepted")
	}
	if _, err := New(mem, Config{MigrateAttemptFailProb: 1.5}); err == nil {
		t.Error("bad probability accepted")
	}
	big, err := kernel.New(kernel.Config{TotalBytes: 256 * oneMB, PageBytes: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	if m, err := New(big, Config{}); err != nil || m.BlockBytes() != 128<<20 {
		t.Errorf("default block size not 128MB: %v", err)
	}
}

func TestOfflineOnlineCycleStress(t *testing.T) {
	// Repeated off/on-lining with live allocations must never corrupt
	// accounting.
	mem, mgr := testSetup(t, kernel.Config{}, Config{MigrateAttemptFailProb: 0.3, Seed: 9})
	g := sim.NewRNG(17)
	owner := uint32(1)
	for iter := 0; iter < 300; iter++ {
		switch g.Intn(4) {
		case 0:
			_, _ = mem.AllocPages(int64(g.Intn(200)+1), true, owner)
		case 1:
			mem.FreeOwnerPages(owner, int64(g.Intn(200)+1))
		case 2:
			_, _ = mgr.Offline(g.Intn(mgr.Blocks()))
		case 3:
			i := g.Intn(mgr.Blocks())
			if mgr.State(i) == BlockOffline {
				_, _ = mgr.Online(i)
			}
		}
		mi := mem.Meminfo()
		if mi.FreeBytes < 0 || mi.UsedBytes < 0 || mi.FreeBytes+mi.UsedBytes != mi.TotalBytes {
			t.Fatalf("iter %d: accounting broken: %+v", iter, mi)
		}
	}
}
