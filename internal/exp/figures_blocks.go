package exp

import (
	"fmt"

	"greendimm/internal/core"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// blockDynDefaults is the §5.1/§5.2 experimental setup: the 64GB machine
// with a movablecore=4G off-linable region, 128MB sub-array groups (the
// paper's "a memory block maps to one sub-array group" granularity for
// this study), and a 120s dynamics window.
func blockDynDefaults(prof workload.Profile, blockMB int64, opts Options) dynamicsConfig {
	// Dynamics runs simulate no individual memory requests, so they are
	// cheap enough to run at full length even in Quick mode — and the
	// footprint-vs-daemon interaction only has the paper's shape at the
	// real 1-second monitor period over a full-length run.
	return dynamicsConfig{
		prof:      prof,
		blockMB:   blockMB,
		duration:  120 * sim.Second,
		policy:    core.PolicySpec{Name: core.PolicyFreeFirst},
		movableGB: 4,
		groupMB:   128,
		seed:      opts.Seed + 31,
		hooks:     opts.Hooks,
	}
}

// --- Figures 6 and 7 + Table 2: the block-size sweep ---

// BlockSizeCell is one (app, block size) measurement.
type BlockSizeCell struct {
	App               string
	BlockMB           int64
	OfflinedGB        float64 // Fig. 6
	OverheadPct       float64 // Fig. 7
	OnOffEvents       int64   // Table 2
	Offlines, Onlines int64
}

// BlockSizeResult is the full sweep.
type BlockSizeResult struct {
	Cells []BlockSizeCell
}

// RunBlockSizeSweep reproduces Figs. 6/7 and Table 2 in one pass: the six
// §5.1 applications at 128/256/512MB memory blocks. The full (app, block
// size) matrix is flattened into one sweep — 18 independent dynamics
// cells — and reassembled in row-major (app, size) order.
func RunBlockSizeSweep(opts Options) (BlockSizeResult, error) {
	apps, err := specDynApps()
	if err != nil {
		return BlockSizeResult{}, err
	}
	sizes := []int64{128, 256, 512}
	cells := make([]BlockSizeCell, len(apps)*len(sizes))
	err = opts.sweepCells(len(cells), func(i int, h Hooks) error {
		prof, blockMB := apps[i/len(sizes)], sizes[i%len(sizes)]
		cfg := blockDynDefaults(prof, blockMB, opts)
		cfg.hooks = h
		run, err := memoDynamics(opts, cfg)
		if err != nil {
			return fmt.Errorf("%s/%dMB: %w", prof.Name, blockMB, err)
		}
		cells[i] = BlockSizeCell{
			App:         prof.Name,
			BlockMB:     blockMB,
			OfflinedGB:  run.OfflinedAvgBytes / float64(1<<30),
			OverheadPct: run.OverheadFrac * 100,
			OnOffEvents: run.OnOffEvents,
			Offlines:    run.Offlines,
			Onlines:     run.Onlines,
		}
		return nil
	})
	if err != nil {
		return BlockSizeResult{}, err
	}
	return BlockSizeResult{Cells: cells}, nil
}

// cellsFor collects one app's three block sizes in order.
func (r BlockSizeResult) cellsFor(app string) []BlockSizeCell {
	var out []BlockSizeCell
	for _, blockMB := range []int64{128, 256, 512} {
		for _, c := range r.Cells {
			if c.App == app && c.BlockMB == blockMB {
				out = append(out, c)
			}
		}
	}
	return out
}

// apps lists the distinct applications in row order.
func (r BlockSizeResult) apps() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.App] {
			seen[c.App] = true
			out = append(out, c.App)
		}
	}
	return out
}

// Fig6Table renders the off-lined capacity grid.
func (r BlockSizeResult) Fig6Table() *report.Table {
	t := report.NewTable("Figure 6: off-lined capacity vs memory-block size (GB, time-averaged)",
		"128MB", "256MB", "512MB")
	for _, app := range r.apps() {
		cells := r.cellsFor(app)
		t.AddRow(app, cells[0].OfflinedGB, cells[1].OfflinedGB, cells[2].OfflinedGB)
	}
	return t
}

// Fig7Table renders the execution-time increase grid.
func (r BlockSizeResult) Fig7Table() *report.Table {
	t := report.NewTable("Figure 7: execution-time increase vs memory-block size (%)",
		"128MB", "256MB", "512MB")
	for _, app := range r.apps() {
		cells := r.cellsFor(app)
		t.AddRow(app, cells[0].OverheadPct, cells[1].OverheadPct, cells[2].OverheadPct)
	}
	return t
}

// Table2 renders the on/off-lining event counts.
func (r BlockSizeResult) Table2() *report.Table {
	t := report.NewTable("Table 2: number of on-lined + off-lined blocks vs block size",
		"128MB", "256MB", "512MB")
	for _, app := range r.apps() {
		cells := r.cellsFor(app)
		t.AddRow(app, float64(cells[0].OnOffEvents), float64(cells[1].OnOffEvents),
			float64(cells[2].OnOffEvents))
	}
	return t
}

// --- Table 3: on/off-lining latencies ---

// Table3Result holds the measured latency means while running mcf.
type Table3Result struct {
	OfflineMs float64
	OnlineMs  float64
	EAgainMs  float64
	EBusyMs   float64
}

// RunTable3 reproduces Table 3: latencies under mcf with 128MB blocks.
// The success path comes from the production free-first policy; the
// failure paths are exercised with the random policy over a region salted
// with kernel pages.
func RunTable3(opts Options) (Table3Result, error) {
	prof, ok := workload.ByName("429.mcf")
	if !ok {
		return Table3Result{}, fmt.Errorf("exp: mcf missing")
	}
	var runs [2]DynamicsRun
	err := opts.sweepCells(2, func(i int, h Hooks) error {
		cfg := blockDynDefaults(prof, 128, opts)
		cfg.hooks = h
		if i == 1 {
			cfg.policy = core.PolicySpec{Name: core.PolicyRandom}
			cfg.failProb = 0.9
			cfg.leakEvery = 3
		}
		run, err := memoDynamics(opts, cfg)
		if err != nil {
			return err
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return Table3Result{}, err
	}
	okRun, failRun := runs[0], runs[1]
	return Table3Result{
		OfflineMs: okRun.OfflineLatMeanMs,
		OnlineMs:  okRun.OnlineLatMeanMs,
		EAgainMs:  failRun.EAgainLatMeanMs,
		EBusyMs:   failRun.EBusyLatMeanMs,
	}, nil
}

// Table renders Table 3.
func (r Table3Result) Table() *report.Table {
	t := report.NewTable("Table 3: average latency of on/off-lining events (mcf, 128MB blocks)", "ms")
	t.AddRow("off-lining", r.OfflineMs)
	t.AddRow("on-lining", r.OnlineMs)
	t.AddRow("failure (EAGAIN)", r.EAgainMs)
	t.AddRow("failure (EBUSY)", r.EBusyMs)
	return t
}

// --- Figure 8: off-lining failures by selection policy ---

// Fig8Row is one application's failure counts.
type Fig8Row struct {
	App               string
	RandomFailures    int64
	RandomEAgain      int64
	RemovableFailures int64
	RemovableEAgain   int64
}

// Fig8Result is the policy comparison.
type Fig8Result struct {
	Rows []Fig8Row
}

// RunFig8 reproduces Fig. 8: the number of off-lining failures when
// blocks are chosen randomly vs removable-first. The (app, policy) matrix
// is flattened into one sweep of independent cells.
func RunFig8(opts Options) (Fig8Result, error) {
	apps, err := specDynApps()
	if err != nil {
		return Fig8Result{}, err
	}
	policies := []core.PolicySpec{{Name: core.PolicyRandom}, {Name: core.PolicyRemovableFirst}}
	runs := make([]DynamicsRun, len(apps)*len(policies))
	err = opts.sweepCells(len(runs), func(i int, h Hooks) error {
		cfg := blockDynDefaults(apps[i/len(policies)], 128, opts)
		cfg.hooks = h
		cfg.policy = policies[i%len(policies)]
		cfg.failProb = 0.9
		cfg.leakEvery = 3
		run, err := memoDynamics(opts, cfg)
		if err != nil {
			return err
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return Fig8Result{}, err
	}
	var res Fig8Result
	for a, prof := range apps {
		rnd, rem := runs[a*len(policies)], runs[a*len(policies)+1]
		res.Rows = append(res.Rows, Fig8Row{
			App:               prof.Name,
			RandomFailures:    rnd.EBusyFailures + rnd.EAgainFailures,
			RandomEAgain:      rnd.EAgainFailures,
			RemovableFailures: rem.EBusyFailures + rem.EAgainFailures,
			RemovableEAgain:   rem.EAgainFailures,
		})
	}
	return res, nil
}

// Table renders Fig. 8.
func (r Fig8Result) Table() *report.Table {
	t := report.NewTable("Figure 8: off-lining failures, random vs removable-first selection",
		"random", "random EAGAIN", "removable-first", "removable EAGAIN")
	for _, row := range r.Rows {
		t.AddRow(row.App, float64(row.RandomFailures), float64(row.RandomEAgain),
			float64(row.RemovableFailures), float64(row.RemovableEAgain))
	}
	return t
}

// ReductionFrac reports the overall failure reduction from checking
// `removable` (paper: ~50%).
func (r Fig8Result) ReductionFrac() float64 {
	var rnd, rem int64
	for _, row := range r.Rows {
		rnd += row.RandomFailures
		rem += row.RemovableFailures
	}
	if rnd == 0 {
		return 0
	}
	return 1 - float64(rem)/float64(rnd)
}
