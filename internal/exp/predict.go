package exp

import (
	"errors"
	"fmt"
	"sync"
)

// PredictKeys reports which memo keys the experiment's cells [lo, hi)
// would consult under o, without simulating: the run executes in
// key-probe mode (Options.KeyProbe), where every memoized() call records
// its key and returns a zero value immediately. Only the experiment's
// cheap pre-sweep setup and the probed cells' key construction execute.
//
// The prediction is a best-effort heuristic, not a contract: a cell
// whose body consults several keys with dependent intermediate math may
// report only a prefix (zero-value stand-ins can fail the code between
// memo calls), and execution knobs that never reach memo keys are
// irrelevant. Callers use the keys for warm-placement scoring and
// prefetch — paths where a missed key costs a recompute, never a wrong
// result. Keys are returned deduplicated, in first-observation order.
//
// Only Shardable experiments support ranges; like CellCount, hi == lo
// with both zero probes nothing and returns immediately.
func PredictKeys(id string, o Options, lo, hi int) ([]string, error) {
	fn := Registry()[id]
	if fn == nil {
		return nil, fmt.Errorf("exp: unknown experiment %q", id)
	}
	var (
		mu   sync.Mutex
		keys []string
		seen = map[string]bool{}
	)
	// A probe must never touch real execution state: no memo (it would
	// pollute it with zero values — memoized() short-circuits before the
	// memo, but clearing it keeps the invariant structural), no replay
	// source, no sink, serial walk (probing is microseconds per cell).
	o.Hooks = Hooks{}
	o.Parallelism = 1
	o.Memo, o.CellSource, o.CellSink = nil, nil, nil
	o.KeyProbe = func(key string) {
		mu.Lock()
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
		mu.Unlock()
	}
	o.CellRange = &CellRange{Lo: lo, Hi: hi}
	_, _, err := fn(o)
	var rd *RangeDone
	if errors.As(err, &rd) {
		return keys, nil
	}
	if err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("exp: experiment %q ignored the probe range; not shardable", id)
}
