package exp

import (
	"fmt"

	"greendimm/internal/workload"
)

// This file is the experiment layer's seam onto sweep.Memo and the cell
// artifact machinery (cells.go): one wrapper per memoizable baseline
// cell, each building a key from every config field that influences the
// cell's result (hooks are execution-only and excluded). The
// determinism contract makes memoization result-neutral: a cell is a
// pure function of its key, so serving a stored result is
// indistinguishable from recomputing it — TestMemoDeterminism holds
// rendered reports byte-identical with the memo off, cold, and shared.

// memoized resolves one cell under key: first the replay source (a
// verified hit returns without simulating), then the memo, then a fresh
// compute. Every resolution that did simulate — or hit the memo, which
// a fresh peer would not have — is offered to the sink as a canonical
// artifact; CellSource hits are not re-offered, so resumed runs do not
// re-journal what the journal already holds. A zero Options computes
// directly, so call sites thread Options without branching.
func memoized[T any](o Options, key string, compute func() (T, error)) (T, error) {
	if o.KeyProbe != nil {
		// Key-probe mode (PredictKeys): record which memo keys the cell
		// would consult and skip all simulation. The zero value stands in
		// for the real result; probe sweeps swallow downstream errors.
		o.KeyProbe(key)
		var zero T
		return zero, nil
	}
	if v, ok := cellFromSet[T](o.CellSource, key); ok {
		return v, nil
	}
	var v T
	var err error
	if m := o.Memo; m != nil {
		var av any
		av, err = m.Do(key, func() (any, error) { return compute() })
		if err == nil {
			v = av.(T)
		}
	} else {
		v, err = compute()
	}
	if err != nil {
		var zero T
		return zero, err
	}
	if o.CellSink != nil {
		if raw, ok := encodeCell(v); ok {
			o.CellSink(CellArtifact{Key: key, Value: raw})
		}
	}
	return v, nil
}

// profFP fingerprints a workload profile for memo keys. Profiles are
// flat value structs, so the %+v rendering covers every field that can
// influence a run.
func profFP(p workload.Profile) string {
	return fmt.Sprintf("%+v", p)
}

// memoTiming memoizes runTiming by its full configuration.
func memoTiming(o Options, cfg timingConfig) (TimingRun, error) {
	key := fmt.Sprintf("timing|%s|intlv=%t|copies=%d|acc=%d|seed=%d",
		profFP(cfg.prof), cfg.interleaved, cfg.copies, cfg.accesses, cfg.seed)
	return memoized(o, key, func() (TimingRun, error) { return runTiming(cfg) })
}

// memoDynamics memoizes runDynamics by its full configuration.
func memoDynamics(o Options, cfg dynamicsConfig) (DynamicsRun, error) {
	key := fmt.Sprintf("dynamics|%s|block=%d|dur=%d|policy=%s|movable=%d|group=%d|fail=%g|leak=%d|seed=%d",
		profFP(cfg.prof), cfg.blockMB, int64(cfg.duration), cfg.policy.Fingerprint(),
		cfg.movableGB, cfg.groupMB, cfg.failProb, cfg.leakEvery, cfg.seed)
	return memoized(o, key, func() (DynamicsRun, error) { return runDynamics(cfg) })
}

// memoVMDay memoizes a 24-hour VM-trace day — the heaviest shared cell:
// fig12 and fig13 run the identical (greendimm, ksm, horizon, seed) days.
func memoVMDay(o Options, cfg vmDayConfig) (VMDayResult, error) {
	key := fmt.Sprintf("vmday|ksm=%t|gd=%t|h=%d|seed=%d",
		cfg.withKSM, cfg.withGreenDIMM, int64(cfg.horizon), cfg.seed)
	return memoized(o, key, func() (VMDayResult, error) { return runVMDay(cfg) })
}

// tailCell is runService's memoizable output. Fields are exported
// because the cell doubles as a durable artifact: it must survive a
// JSON round trip bit-exactly for shard execution and crash recovery.
type tailCell struct {
	Stats  tailStats
	Events int64
}

// memoTailService memoizes one tail-latency service run. Options.Quick
// is deliberately absent from the key: runService uses a fixed horizon
// (see the comment there), so Quick does not influence its result.
func memoTailService(o Options, prof workload.Profile, withDaemon bool) (tailCell, error) {
	key := fmt.Sprintf("tailsvc|%s|daemon=%t|seed=%d", profFP(prof), withDaemon, o.Seed)
	return memoized(o, key, func() (tailCell, error) {
		st, events, err := runService(prof, withDaemon, o)
		return tailCell{Stats: st, Events: events}, err
	})
}
