package exp

import (
	"fmt"

	"greendimm/internal/sweep"
	"greendimm/internal/workload"
)

// This file is the experiment layer's seam onto sweep.Memo: one wrapper
// per memoizable baseline cell, each building a key from every config
// field that influences the cell's result (hooks are execution-only and
// excluded). The determinism contract makes memoization result-neutral:
// a cell is a pure function of its key, so serving a stored result is
// indistinguishable from recomputing it — TestMemoDeterminism holds
// rendered reports byte-identical with the memo off, cold, and shared.

// memoized runs compute through m under key, typed. A nil memo computes
// directly, so call sites thread Options.Memo without branching.
func memoized[T any](m *sweep.Memo, key string, compute func() (T, error)) (T, error) {
	if m == nil {
		return compute()
	}
	v, err := m.Do(key, func() (any, error) { return compute() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// profFP fingerprints a workload profile for memo keys. Profiles are
// flat value structs, so the %+v rendering covers every field that can
// influence a run.
func profFP(p workload.Profile) string {
	return fmt.Sprintf("%+v", p)
}

// memoTiming memoizes runTiming by its full configuration.
func memoTiming(m *sweep.Memo, cfg timingConfig) (TimingRun, error) {
	key := fmt.Sprintf("timing|%s|intlv=%t|copies=%d|acc=%d|seed=%d",
		profFP(cfg.prof), cfg.interleaved, cfg.copies, cfg.accesses, cfg.seed)
	return memoized(m, key, func() (TimingRun, error) { return runTiming(cfg) })
}

// memoDynamics memoizes runDynamics by its full configuration.
func memoDynamics(m *sweep.Memo, cfg dynamicsConfig) (DynamicsRun, error) {
	key := fmt.Sprintf("dynamics|%s|block=%d|dur=%d|policy=%d|movable=%d|group=%d|fail=%g|leak=%d|seed=%d",
		profFP(cfg.prof), cfg.blockMB, int64(cfg.duration), cfg.policy,
		cfg.movableGB, cfg.groupMB, cfg.failProb, cfg.leakEvery, cfg.seed)
	return memoized(m, key, func() (DynamicsRun, error) { return runDynamics(cfg) })
}

// memoVMDay memoizes a 24-hour VM-trace day — the heaviest shared cell:
// fig12 and fig13 run the identical (greendimm, ksm, horizon, seed) days.
func memoVMDay(m *sweep.Memo, cfg vmDayConfig) (VMDayResult, error) {
	key := fmt.Sprintf("vmday|ksm=%t|gd=%t|h=%d|seed=%d",
		cfg.withKSM, cfg.withGreenDIMM, int64(cfg.horizon), cfg.seed)
	return memoized(m, key, func() (VMDayResult, error) { return runVMDay(cfg) })
}

// tailCell is runService's memoizable output.
type tailCell struct {
	stats  tailStats
	events int64
}

// memoTailService memoizes one tail-latency service run. Options.Quick
// is deliberately absent from the key: runService uses a fixed horizon
// (see the comment there), so Quick does not influence its result.
func memoTailService(m *sweep.Memo, prof workload.Profile, withDaemon bool, opts Options) (tailCell, error) {
	key := fmt.Sprintf("tailsvc|%s|daemon=%t|seed=%d", profFP(prof), withDaemon, opts.Seed)
	return memoized(m, key, func() (tailCell, error) {
		st, events, err := runService(prof, withDaemon, opts)
		return tailCell{stats: st, events: events}, err
	})
}
