package exp

import (
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
)

// hpManager aliases the hotplug manager type so ablation helpers read
// cleanly.
type hpManager = *hotplug.Manager

// newHotplugBlock builds a hotplug manager with the given block size.
func newHotplugBlock(mem *kernel.Mem, blockBytes int64, seed int64) (hpManager, error) {
	return hotplug.New(mem, hotplug.Config{BlockBytes: blockBytes, Seed: seed})
}
