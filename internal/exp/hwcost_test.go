package exp

import (
	"strconv"
	"testing"
)

func TestHWCost(t *testing.T) {
	r, err := RunHWCost()
	if err != nil {
		t.Fatal(err)
	}
	if r.Register.Rows() != 5 {
		t.Fatalf("register rows = %d", r.Register.Rows())
	}
	// GreenDIMM stays at 64 bits at every capacity; PASR grows with ranks.
	var prevPASR float64
	for i := 0; i < r.Register.Rows(); i++ {
		gd, _ := strconv.ParseFloat(r.Register.Value(i, 2), 64)
		if gd != 64 {
			t.Errorf("row %d: GreenDIMM bits = %v, want 64", i, gd)
		}
		pasr, _ := strconv.ParseFloat(r.Register.Value(i, 1), 64)
		if pasr < prevPASR {
			t.Errorf("row %d: PASR bits shrank", i)
		}
		prevPASR = pasr
	}
	t.Logf("\n%s\n%s", r.Register, r.Area)
}
