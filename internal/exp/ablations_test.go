package exp

import (
	"strconv"
	"testing"
)

func TestAblations(t *testing.T) {
	r, err := RunAblations(quick())
	if err != nil {
		t.Fatal(err)
	}
	cell := func(tb interface {
		Value(r, c int) string
		Rows() int
	}, row, col int) float64 {
		v, err := strconv.ParseFloat(tb.Value(row, col), 64)
		if err != nil {
			t.Fatalf("non-numeric cell: %v", err)
		}
		return v
	}

	// Neighbor rule: never increases DPD coverage for the same workload.
	without := cell(r.NeighborRule, 0, 1)
	with := cell(r.NeighborRule, 1, 1)
	if with > without {
		t.Errorf("neighbor rule increased DPD fraction: %.3f > %.3f", with, without)
	}

	// Thresholds: a smaller reserve off-lines more capacity.
	off5 := cell(r.Thresholds, 0, 0)
	off20 := cell(r.Thresholds, 2, 0)
	if off5 <= off20 {
		t.Errorf("off_thr 5%% off-lined %.2fGB <= 20%% reserve %.2fGB", off5, off20)
	}

	// Group size: finer groups -> at least as much DPD coverage.
	fine := cell(r.GroupSize, 0, 1)
	coarse := cell(r.GroupSize, 2, 1)
	if fine < coarse-0.01 {
		t.Errorf("512MB groups DPD %.3f below 2GB groups %.3f", fine, coarse)
	}

	// DPD residual: power grows monotonically with residual.
	prev := 0.0
	for i := 0; i < r.DPDResidual.Rows(); i++ {
		w := cell(r.DPDResidual, i, 0)
		if w < prev {
			t.Errorf("residual row %d: power %f below previous %f", i, w, prev)
		}
		prev = w
	}

	// Idle policy: aggressive sleeps at least as much as conservative and
	// pays at least as many wake-ups.
	aggSR, aggWake := cell(r.IdlePolicy, 0, 0), cell(r.IdlePolicy, 0, 1)
	conSR, conWake := cell(r.IdlePolicy, 2, 0), cell(r.IdlePolicy, 2, 1)
	if aggSR < conSR {
		t.Errorf("aggressive policy slept less: %.3f < %.3f", aggSR, conSR)
	}
	if aggWake < conWake {
		t.Errorf("aggressive policy woke less: %v < %v", aggWake, conWake)
	}
	t.Logf("\n%s", r.String())
}
