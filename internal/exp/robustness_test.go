package exp

import "testing"

// TestShapesRobustAcrossSeeds guards against seed-overfitting: the two
// cheapest stochastic experiments must keep their qualitative shape for
// several seeds, not just the default.
func TestShapesRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{2, 3, 5} {
		opts := Options{Quick: true, Seed: seed}

		f8, err := RunFig8(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var rnd, rem int64
		for _, row := range f8.Rows {
			rnd += row.RandomFailures
			rem += row.RemovableFailures
		}
		if rnd == 0 || rem >= rnd {
			t.Errorf("seed %d: Fig8 shape broke: random=%d removable=%d", seed, rnd, rem)
		}

		f12, err := RunFig12(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f12.NoKSM.AvgOffBlocks <= 0 {
			t.Errorf("seed %d: GreenDIMM off-lined nothing", seed)
		}
		if f12.WithKSM.AvgOffBlocks <= f12.NoKSM.AvgOffBlocks {
			t.Errorf("seed %d: KSM did not increase off-lining (%.0f vs %.0f)",
				seed, f12.WithKSM.AvgOffBlocks, f12.NoKSM.AvgOffBlocks)
		}
	}
}
