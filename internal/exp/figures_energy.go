package exp

import (
	"fmt"

	"greendimm/internal/baseline"
	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/power"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// PolicyEnergy holds one workload x mapping's energy under each policy.
type PolicyEnergy struct {
	SrfOnly   float64
	RAMZzz    float64
	PASR      float64
	GreenDIMM float64
}

// EnergyRow is one application of the Figs. 9/10 matrix, holding DRAM and
// system energy in joules for both mappings and all four policies.
type EnergyRow struct {
	App    string
	DRAM   struct{ Intlv, Contig PolicyEnergy }
	System struct{ Intlv, Contig PolicyEnergy }
	// OverheadPct is GreenDIMM's execution-time increase (Fig. 11).
	OverheadPct     float64
	LatencyCritical bool
}

// EnergyResult is the full evaluation matrix.
type EnergyResult struct {
	Rows []EnergyRow
}

// evalApps is the paper's §6 workload list.
func evalApps() []workload.Profile {
	var out []workload.Profile
	out = append(out, workload.SPEC2006()...)
	out = append(out, workload.SPEC2017()...)
	out = append(out, workload.Datacenter()...)
	return out
}

// RunEnergyMatrix reproduces Figs. 9, 10 and 11: for every workload it
// runs the detailed simulator with and without interleaving, models
// RAMZzz/PASR from the occupancy scan (as the paper does), and runs the
// GreenDIMM dynamics pass for the deep-power-down fraction and overhead.
// The per-workload cells are independent (each builds its own engines and
// is seeded from constants), so they fan out across the sweep pool; rows
// land in workload order regardless of which cell finishes first.
func RunEnergyMatrix(opts Options) (EnergyResult, error) {
	model, err := power.NewModel(dram.Org64GB())
	if err != nil {
		return EnergyResult{}, err
	}
	sys := power.DefaultSystem()
	apps := evalApps()
	rows := make([]EnergyRow, len(apps))
	err = opts.sweepCells(len(apps), func(i int, h Hooks) error {
		row, err := energyRow(model, sys, apps[i], opts, h)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return EnergyResult{}, err
	}
	return EnergyResult{Rows: rows}, nil
}

// energyRow computes one workload's full Figs. 9/10/11 measurement: the
// dynamics pass plus both mappings' detailed timing runs.
func energyRow(model *power.Model, sys power.SystemModel, prof workload.Profile, opts Options, h Hooks) (EnergyRow, error) {
	row := EnergyRow{App: prof.Name, LatencyCritical: prof.LatencyCritical}

	// GreenDIMM dynamics: whole memory off-linable; memory blocks
	// sized to the 64GB machine's 1GB sub-array groups (§4.1), and
	// the footprint scaled to the multiprogrammed degree the timing
	// run uses.
	dynProf := prof
	dynProf.FootprintMB *= int64(copiesFor(prof))
	if dynProf.FootprintMB > 48<<10 {
		dynProf.FootprintMB = 48 << 10
	}
	dyn, err := memoDynamics(opts, dynamicsConfig{
		prof:     dynProf,
		blockMB:  1024,
		duration: 120 * sim.Second, // cheap: no request-level simulation
		policy:   core.PolicySpec{Name: core.PolicyFreeFirst},
		seed:     opts.Seed + 41,
		hooks:    h,
	})
	if err != nil {
		return EnergyRow{}, fmt.Errorf("%s dynamics: %w", prof.Name, err)
	}
	row.OverheadPct = dyn.OverheadFrac * 100

	for _, intlv := range []bool{true, false} {
		run, err := memoTiming(opts, timingConfig{
			prof:        prof,
			interleaved: intlv,
			copies:      copiesFor(prof),
			accesses:    opts.accessBudget(25000),
			seed:        opts.Seed + 42,
			hooks:       h,
		})
		if err != nil {
			return EnergyRow{}, fmt.Errorf("%s timing: %w", prof.Name, err)
		}
		pe, se, err := policyEnergies(model, sys, run, dyn)
		if err != nil {
			return EnergyRow{}, err
		}
		if intlv {
			row.DRAM.Intlv, row.System.Intlv = pe, se
		} else {
			row.DRAM.Contig, row.System.Contig = pe, se
		}
	}
	return row, nil
}

// policyEnergies computes DRAM and system energy for the four policies
// from one timing run plus the GreenDIMM dynamics result.
func policyEnergies(model *power.Model, sys power.SystemModel, run TimingRun, dyn DynamicsRun) (PolicyEnergy, PolicyEnergy, error) {
	seconds := run.Runtime.Seconds()
	energy := func(a power.Activity, extraT float64) (float64, float64, error) {
		w, err := dramPowerW(model, a)
		if err != nil {
			return 0, 0, err
		}
		t := seconds * (1 + extraT)
		return w * t, sys.SystemW(run.CPUUtil, w) * t, nil
	}
	var pe, se PolicyEnergy
	var err error
	if pe.SrfOnly, se.SrfOnly, err = energy(run.Activity, 0); err != nil {
		return pe, se, err
	}
	if pe.RAMZzz, se.RAMZzz, err = energy(baseline.ApplyRAMZzz(run.Activity, run.Occupancy), 0); err != nil {
		return pe, se, err
	}
	if pe.PASR, se.PASR, err = energy(baseline.ApplyPASR(run.Activity, run.Occupancy), 0); err != nil {
		return pe, se, err
	}
	gd := run.Activity
	if dyn.AvgDPDFrac > gd.DPDFrac {
		gd.DPDFrac = dyn.AvgDPDFrac
	}
	if pe.GreenDIMM, se.GreenDIMM, err = energy(gd, dyn.OverheadFrac); err != nil {
		return pe, se, err
	}
	return pe, se, nil
}

// normalize divides by the w/o-intlv srf_only value, the paper's baseline.
func normalize(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}

// Fig9Table renders DRAM energy normalized to "w/o intlv, srf_only".
func (r EnergyResult) Fig9Table() *report.Table {
	t := report.NewTable("Figure 9: DRAM energy (normalized to w/o-intlv srf_only)",
		"w/ srf", "w/ ramzzz", "w/ pasr", "w/ greendimm",
		"w/o srf", "w/o ramzzz", "w/o pasr", "w/o greendimm")
	for _, row := range r.Rows {
		base := row.DRAM.Contig.SrfOnly
		t.AddRow(row.App,
			normalize(row.DRAM.Intlv.SrfOnly, base),
			normalize(row.DRAM.Intlv.RAMZzz, base),
			normalize(row.DRAM.Intlv.PASR, base),
			normalize(row.DRAM.Intlv.GreenDIMM, base),
			1.0,
			normalize(row.DRAM.Contig.RAMZzz, base),
			normalize(row.DRAM.Contig.PASR, base),
			normalize(row.DRAM.Contig.GreenDIMM, base),
		)
	}
	return t
}

// Fig10Table renders system energy normalized the same way.
func (r EnergyResult) Fig10Table() *report.Table {
	t := report.NewTable("Figure 10: system energy (normalized to w/o-intlv srf_only)",
		"w/ srf", "w/ ramzzz", "w/ pasr", "w/ greendimm",
		"w/o srf", "w/o ramzzz", "w/o pasr", "w/o greendimm")
	for _, row := range r.Rows {
		base := row.System.Contig.SrfOnly
		t.AddRow(row.App,
			normalize(row.System.Intlv.SrfOnly, base),
			normalize(row.System.Intlv.RAMZzz, base),
			normalize(row.System.Intlv.PASR, base),
			normalize(row.System.Intlv.GreenDIMM, base),
			1.0,
			normalize(row.System.Contig.RAMZzz, base),
			normalize(row.System.Contig.PASR, base),
			normalize(row.System.Contig.GreenDIMM, base),
		)
	}
	return t
}

// Fig11Table renders GreenDIMM's execution-time overhead.
func (r EnergyResult) Fig11Table() *report.Table {
	t := report.NewTable("Figure 11: execution-time increase under GreenDIMM (%)", "overhead %")
	for _, row := range r.Rows {
		t.AddRow(row.App, row.OverheadPct)
	}
	return t
}

// MeanDRAMSavingsPct reports GreenDIMM's average DRAM power reduction
// with interleaving vs srf_only-with-interleaving, split SPEC vs
// datacenter (the paper's 38%/60% headline).
func (r EnergyResult) MeanDRAMSavingsPct() (spec, datacenter float64) {
	var sSum, dSum float64
	var sN, dN int
	for _, row := range r.Rows {
		if row.DRAM.Intlv.SrfOnly == 0 {
			continue
		}
		saving := (1 - row.DRAM.Intlv.GreenDIMM/row.DRAM.Intlv.SrfOnly) * 100
		if _, ok := dcNames[row.App]; ok {
			dSum += saving
			dN++
		} else {
			sSum += saving
			sN++
		}
	}
	if sN > 0 {
		spec = sSum / float64(sN)
	}
	if dN > 0 {
		datacenter = dSum / float64(dN)
	}
	return spec, datacenter
}

var dcNames = func() map[string]struct{} {
	m := map[string]struct{}{}
	for _, p := range workload.Datacenter() {
		m[p.Name] = struct{}{}
	}
	return m
}()

// MaxOverheadPct reports the worst execution-time increase (paper: <3%).
func (r EnergyResult) MaxOverheadPct() float64 {
	m := 0.0
	for _, row := range r.Rows {
		if row.OverheadPct > m {
			m = row.OverheadPct
		}
	}
	return m
}
