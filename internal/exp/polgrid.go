package exp

import (
	"fmt"

	"greendimm/internal/core"
	"greendimm/internal/report"
	"greendimm/internal/workload"
)

// This file is the policy-pipeline ablation the redesigned selection API
// exists for: the tracker x policy x workload grid ("polgrid"). Every
// cell is one footprint-dynamics run (the §5.2 setup behind Figs. 6-8)
// under a different block-selection pipeline, flattened into a single
// memoized sweep — so the grid shards across a cluster and resumes from
// the durable store exactly like the paper figures do.

// polGridPolicies returns the grid's policy axis, normalized: the paper
// baseline plus every tracker-driven policy, with the dual-tracker
// policies appearing once per tracker so the tracker choice itself is
// ablated.
func polGridPolicies() ([]core.PolicySpec, error) {
	raw := []core.PolicySpec{
		{Name: core.PolicyFreeFirst},
		{Name: core.PolicyAgeThreshold, Tracker: core.TrackerIdleAge},
		{Name: core.PolicyAgeThreshold, Tracker: core.TrackerAccessCount},
		{Name: core.PolicyHeatTier, Tracker: core.TrackerAccessCount},
		{Name: core.PolicyHysteresis, Tracker: core.TrackerIdleAge},
		{Name: core.PolicyProactive, Tracker: core.TrackerIdleAge},
	}
	out := make([]core.PolicySpec, len(raw))
	for i, s := range raw {
		norm, err := s.Normalized()
		if err != nil {
			return nil, fmt.Errorf("exp: polgrid policy %d: %w", i, err)
		}
		out[i] = norm
	}
	return out, nil
}

// polGridApps returns the grid's workload axis: the high-, mid- and
// low-MPKI corners of the §5.1 set.
func polGridApps() ([]workload.Profile, error) {
	names := []string{"429.mcf", "403.gcc", "470.lbm"}
	out := make([]workload.Profile, len(names))
	for i, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: unknown profile %s", n)
		}
		out[i] = p
	}
	return out, nil
}

// PolicyGridCell is one (policy, app) measurement.
type PolicyGridCell struct {
	Policy      string // normalized fingerprint
	App         string
	OfflinedGB  float64
	OverheadPct float64
	OnOffEvents int64
	Failures    int64
}

// PolicyGridResult is the full ablation grid in row-major (policy, app)
// order.
type PolicyGridResult struct {
	Apps  []string
	Cells []PolicyGridCell
}

// RunPolicyGrid sweeps the tracker x policy x workload grid: each cell
// plays one application's footprint curve under one selection pipeline
// on the §5.2 machine (128MB blocks, movablecore=4G, migration failures
// and kernel-page leaks enabled so policy quality shows up as failure
// counts, not just capacity).
func RunPolicyGrid(opts Options) (PolicyGridResult, error) {
	policies, err := polGridPolicies()
	if err != nil {
		return PolicyGridResult{}, err
	}
	apps, err := polGridApps()
	if err != nil {
		return PolicyGridResult{}, err
	}
	res := PolicyGridResult{Cells: make([]PolicyGridCell, len(policies)*len(apps))}
	for _, p := range apps {
		res.Apps = append(res.Apps, p.Name)
	}
	err = opts.sweepCells(len(res.Cells), func(i int, h Hooks) error {
		policy, prof := policies[i/len(apps)], apps[i%len(apps)]
		cfg := blockDynDefaults(prof, 128, opts)
		cfg.hooks = h
		cfg.policy = policy
		cfg.failProb = 0.9
		cfg.leakEvery = 3
		run, err := memoDynamics(opts, cfg)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", policy.Fingerprint(), prof.Name, err)
		}
		res.Cells[i] = PolicyGridCell{
			Policy:      policy.Fingerprint(),
			App:         prof.Name,
			OfflinedGB:  run.OfflinedAvgBytes / float64(1<<30),
			OverheadPct: run.OverheadFrac * 100,
			OnOffEvents: run.OnOffEvents,
			Failures:    run.EBusyFailures + run.EAgainFailures,
		}
		return nil
	})
	if err != nil {
		return PolicyGridResult{}, err
	}
	return res, nil
}

// row collects one policy's cells across the app axis.
func (r PolicyGridResult) row(policy string) []PolicyGridCell {
	var out []PolicyGridCell
	for _, c := range r.Cells {
		if c.Policy == policy {
			out = append(out, c)
		}
	}
	return out
}

// policies lists the distinct policy fingerprints in row order.
func (r PolicyGridResult) policies() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Policy] {
			seen[c.Policy] = true
			out = append(out, c.Policy)
		}
	}
	return out
}

// grid renders one metric across the whole grid.
func (r PolicyGridResult) grid(title string, metric func(PolicyGridCell) float64) *report.Table {
	t := report.NewTable(title, r.Apps...)
	for _, p := range r.policies() {
		cells := r.row(p)
		vals := make([]float64, len(cells))
		for i, c := range cells {
			vals[i] = metric(c)
		}
		t.AddRow(p, vals...)
	}
	return t
}

// OfflinedTable renders time-averaged off-lined capacity per cell.
func (r PolicyGridResult) OfflinedTable() *report.Table {
	return r.grid("Policy grid: off-lined capacity (GB, time-averaged)",
		func(c PolicyGridCell) float64 { return c.OfflinedGB })
}

// FailureTable renders off-lining failures per cell.
func (r PolicyGridResult) FailureTable() *report.Table {
	return r.grid("Policy grid: off-lining failures (EBUSY+EAGAIN)",
		func(c PolicyGridCell) float64 { return float64(c.Failures) })
}

// ChurnTable renders steady-state on/off events per cell.
func (r PolicyGridResult) ChurnTable() *report.Table {
	return r.grid("Policy grid: steady-state on/off-lining events",
		func(c PolicyGridCell) float64 { return float64(c.OnOffEvents) })
}

// OverheadTable renders the execution-time increase per cell.
func (r PolicyGridResult) OverheadTable() *report.Table {
	return r.grid("Policy grid: execution-time increase (%)",
		func(c PolicyGridCell) float64 { return c.OverheadPct })
}
