package exp

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestCellCount probes sweep sizes without simulating: fig8's (workload
// x policy) matrix is 12 cells, and the probe must return before any
// cell runs — microseconds, not the sweep's full cost.
func TestCellCount(t *testing.T) {
	n, err := CellCount("fig8", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("CellCount(fig8): %v", err)
	}
	if n != 12 {
		t.Fatalf("fig8 cell count = %d, want 12", n)
	}
	// Every whitelisted experiment must honor the probe — a shardable id
	// whose body stopped flowing through sweepCells would break shard
	// execution silently.
	for _, id := range ShardableExperiments() {
		if n, err := CellCount(id, Options{Quick: true, Seed: 1}); err != nil || n < 2 {
			t.Errorf("CellCount(%s) = %d, %v; every shardable experiment needs a probe-able sweep", id, n, err)
		}
	}
	if _, err := CellCount("nope", Options{}); err == nil {
		t.Fatal("CellCount accepted an unknown experiment")
	}
	// hwcost has no sweep: the probe range is ignored and CellCount must
	// say so rather than return a bogus count.
	if _, err := CellCount("hwcost", Options{Quick: true}); err == nil || !strings.Contains(err.Error(), "not shardable") {
		t.Fatalf("CellCount(hwcost) = %v, want a not-shardable error", err)
	}
}

// TestSweepRangeValidation exercises the range guard rails directly on
// a registry runner.
func TestSweepRangeValidation(t *testing.T) {
	fn := Registry()["fig8"]
	// Out of bounds: [0, 99) on a 12-cell sweep.
	_, _, err := fn(Options{Quick: true, Seed: 1, CellRange: &CellRange{Lo: 0, Hi: 99}})
	var rd *RangeDone
	if err == nil || errors.As(err, &rd) {
		t.Fatalf("out-of-bounds range: err = %v, want a validation error", err)
	}
	// A valid sub-range completes with the sentinel carrying the total.
	_, _, err = fn(Options{Quick: true, Seed: 1, CellRange: &CellRange{Lo: 10, Hi: 12}})
	if !errors.As(err, &rd) || rd.Total != 12 {
		t.Fatalf("valid range: err = %v, want RangeDone{Total: 12}", err)
	}
}

// TestRangeArtifactsReplay is the decomposition soundness check at the
// exp layer: two disjoint ranges produce artifacts; replaying them into
// a full run must yield a report byte-identical to an untouched full
// run — and the replayed run must not re-offer replayed cells to the
// sink.
func TestRangeArtifactsReplay(t *testing.T) {
	fn := Registry()["fig8"]
	base := Options{Quick: true, Seed: 1}

	var arts []CellArtifact
	for _, r := range [][2]int{{0, 7}, {7, 12}} {
		o := base
		o.CellRange = &CellRange{Lo: r[0], Hi: r[1]}
		o.CellSink = func(a CellArtifact) { arts = append(arts, a.Compact()) }
		var rd *RangeDone
		if _, _, err := fn(o); !errors.As(err, &rd) {
			t.Fatalf("range %v: %v", r, err)
		}
	}
	if len(arts) != 12 {
		t.Fatalf("collected %d artifacts from 12 cells", len(arts))
	}

	plain, _, err := fn(base)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	o := base
	o.CellSource = NewCellSet(arts)
	o.CellSink = func(CellArtifact) { replayed++ }
	fromCells, _, err := fn(o)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed run re-offered %d cells to the sink", replayed)
	}
	pb, _ := json.Marshal(plain)
	rb, _ := json.Marshal(fromCells)
	if string(pb) != string(rb) {
		t.Fatalf("replayed report diverged from computed report:\n%s\nvs\n%s", rb, pb)
	}
}

// TestCellRoundTrip pins the verify-on-both-ends contract of
// encodeCell/cellFromSet.
func TestCellRoundTrip(t *testing.T) {
	type cell struct {
		V int     `json:"v"`
		F float64 `json:"f"`
	}
	raw, ok := encodeCell(cell{V: 3, F: 1.5})
	if !ok {
		t.Fatal("encodeCell rejected a clean value")
	}
	set := NewCellSet([]CellArtifact{{Key: "k", Value: raw}})
	got, ok := cellFromSet[cell](set, "k")
	if !ok || got != (cell{V: 3, F: 1.5}) {
		t.Fatalf("round trip = %+v, %v", got, ok)
	}
	// Corruption modes all read as a miss, never as a wrong value:
	for name, val := range map[string]string{
		"unknown field": `{"v":3,"f":1.5,"junk":1}`,
		"truncated":     `{"v":3`,
		"lossy":         `{"v":3,"f":1.50}`, // re-marshals to different bytes
		"wrong shape":   `[3]`,
	} {
		s := NewCellSet([]CellArtifact{{Key: "k", Value: json.RawMessage(val)}})
		if _, ok := cellFromSet[cell](s, "k"); ok {
			t.Errorf("%s: corrupt artifact accepted", name)
		}
	}
	if _, ok := cellFromSet[cell](nil, "k"); ok {
		t.Error("nil set returned a hit")
	}
	// Values that cannot marshal at all yield no artifact.
	if _, ok := encodeCell(math.NaN()); ok {
		t.Error("encodeCell accepted an unmarshalable value")
	}
}
