package exp

import (
	"encoding/json"
	"strings"

	"greendimm/internal/sweep"
)

// MemoCodec returns the sweep.Codec for the experiment layer's memo key
// families — the only keys whose values are serializable. Each family
// prefix (exp/memo.go) maps to one concrete Go type; encoding and
// decoding reuse the cell-artifact round-trip verification (cells.go),
// so an entry that would not reproduce its own bytes is dropped rather
// than exchanged. Unknown prefixes are not exportable: a future key
// family is invisible to old peers and old memo stores until its codec
// arm exists, which keeps cross-version exchange recompute-safe.
func MemoCodec() sweep.Codec { return memoCodec{} }

type memoCodec struct{}

// memoKeyFamilies maps each exportable key-family prefix (including the
// '|' separator) to its codec arm index. Kept in one place so
// Exportable, Encode and Decode cannot drift apart.
var memoKeyFamilies = []string{"timing|", "dynamics|", "vmday|", "tailsvc|"}

func (memoCodec) Exportable(key string) bool {
	for _, p := range memoKeyFamilies {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

func (memoCodec) Encode(key string, val any) (json.RawMessage, bool) {
	switch {
	case strings.HasPrefix(key, "timing|"):
		return encodeTyped[TimingRun](val)
	case strings.HasPrefix(key, "dynamics|"):
		return encodeTyped[DynamicsRun](val)
	case strings.HasPrefix(key, "vmday|"):
		return encodeTyped[VMDayResult](val)
	case strings.HasPrefix(key, "tailsvc|"):
		return encodeTyped[tailCell](val)
	}
	return nil, false
}

func (memoCodec) Decode(key string, raw json.RawMessage) (any, bool) {
	switch {
	case strings.HasPrefix(key, "timing|"):
		return decodeTyped[TimingRun](raw)
	case strings.HasPrefix(key, "dynamics|"):
		return decodeTyped[DynamicsRun](raw)
	case strings.HasPrefix(key, "vmday|"):
		return decodeTyped[VMDayResult](raw)
	case strings.HasPrefix(key, "tailsvc|"):
		return decodeTyped[tailCell](raw)
	}
	return nil, false
}

// encodeTyped checks the entry's dynamic type against its key family's
// declared type, then renders it through the verified cell encoder. A
// type mismatch (a key family whose stored value is not what the family
// promises) declines the entry instead of exporting wrong bytes.
func encodeTyped[T any](val any) (json.RawMessage, bool) {
	v, ok := val.(T)
	if !ok {
		return nil, false
	}
	return encodeCell(v)
}

// decodeTyped revives serialized bytes as the family's concrete type,
// with the same strict-decode + re-marshal exactness check replay uses:
// compact the value first (it may have crossed the pretty-printing HTTP
// layer), and reject anything that does not reproduce its own bytes.
func decodeTyped[T any](raw json.RawMessage) (any, bool) {
	set := NewCellSet([]CellArtifact{{Key: "x", Value: raw}})
	v, ok := cellFromSet[T](set, "x")
	if !ok {
		return nil, false
	}
	return v, true
}
