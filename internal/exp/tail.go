package exp

import (
	"fmt"

	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// TailRow is one service's tail-latency comparison.
type TailRow struct {
	App          string
	BaseP95us    float64
	BaseP99us    float64
	GDP95us      float64
	GDP99us      float64
	DaemonEvents int64 // steady-state on/off-linings during the measured window
}

// TailResult backs the paper's §6.2 claim that GreenDIMM does not harm
// the tail latency of latency-critical services (data-caching,
// data-serving, web-serving): their footprints are constant, so after the
// initial drain the daemon does nothing.
type TailResult struct {
	Rows []TailRow
}

// RunTailLatency runs each latency-critical service as an open-loop
// request/response server against the detailed memory simulator, with and
// without a live GreenDIMM daemon sharing the machine, and compares
// response-time percentiles. This is the repository's fullest integration
// run: workload, controller, kernel, hotplug and daemon all in one
// simulation. The (service, with/without daemon) matrix is flattened into
// one sweep of independent cells.
func RunTailLatency(opts Options) (TailResult, error) {
	var profs []workload.Profile
	for _, prof := range workload.Datacenter() {
		if prof.LatencyCritical {
			profs = append(profs, prof)
		}
	}
	cells := make([]tailCell, 2*len(profs))
	err := opts.sweepCells(len(cells), func(i int, h Hooks) error {
		prof, withDaemon := profs[i/2], i%2 == 1
		cell, err := memoTailService(opts.cellOptions(h), prof, withDaemon)
		if err != nil {
			mode := "base"
			if withDaemon {
				mode = "greendimm"
			}
			return fmt.Errorf("%s %s: %w", prof.Name, mode, err)
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return TailResult{}, err
	}
	var res TailResult
	for i, prof := range profs {
		base, gd := cells[2*i], cells[2*i+1]
		res.Rows = append(res.Rows, TailRow{
			App:          prof.Name,
			BaseP95us:    base.Stats.Percentile95,
			BaseP99us:    base.Stats.Percentile99,
			GDP95us:      gd.Stats.Percentile95,
			GDP99us:      gd.Stats.Percentile99,
			DaemonEvents: gd.Events,
		})
	}
	return res, nil
}

type tailStats struct {
	Percentile95 float64
	Percentile99 float64
}

// runService simulates ~2s of service traffic; when withDaemon is set, a
// GreenDIMM daemon (100ms period, scaled from 1s to fit the window)
// off-lines the machine's free memory concurrently and charges its CPU
// cost to the server.
func runService(prof workload.Profile, withDaemon bool, opts Options) (tailStats, int64, error) {
	org := dram.Org64GB()
	eng := opts.newEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes:          org.TotalBytes(),
		PageBytes:           1 << 20,
		KernelReservedBytes: 1 << 30,
		Seed:                opts.Seed,
	})
	if err != nil {
		return tailStats{}, 0, err
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: org, Timing: dram.DDR4_2133(), Interleaved: true, LowPower: true,
	})
	if err != nil {
		return tailStats{}, 0, err
	}
	// Fixed horizon regardless of Quick: the daemon needs its initial
	// drain (one-time, ~1s at the 100ms scaled period) to finish inside
	// the warm-up so the measured window sees steady state, as a long-
	// running service would.
	horizon := 2 * sim.Second
	warmup := horizon * 3 / 5
	svcProf := prof
	if svcProf.FootprintMB > 8<<10 {
		svcProf.FootprintMB = 8 << 10
	}
	svc, err := workload.NewService(eng, mem, ctrl, workload.ServiceConfig{
		Profile:       svcProf,
		Owner:         70,
		OpsPerSec:     20000,
		AccessesPerOp: 8,
		ComputePerOp:  12 * sim.Microsecond,
		Warmup:        warmup,
		Seed:          opts.Seed + 5,
		// 25% above the expected 20000/s x 0.8s measured window: the
		// sample buffer is preallocated and never decimates, so the
		// percentiles are computed over the identical full sample set.
		SampleCap: 20000,
	})
	if err != nil {
		return tailStats{}, 0, err
	}

	var daemon *core.Daemon
	var warm core.Stats
	if withDaemon {
		// 1GB blocks (the 64GB machine's sub-array-group size) keep the
		// one-time drain to ~55 operations.
		hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: 1 << 30, Seed: opts.Seed})
		if err != nil {
			return tailStats{}, 0, err
		}
		daemon, err = core.New(eng, mem, hp, ctrl, core.Config{
			Period:            100 * sim.Millisecond,
			MaxOfflinePerTick: 64,
			Seed:              opts.Seed,
		})
		if err != nil {
			return tailStats{}, 0, err
		}
		// The daemon occupies one of the machine's 16 cores; the service
		// loses that share of capacity, not the whole box.
		daemon.SetStallSink(func(d sim.Time) { svc.Stall(d / 16) })
		daemon.Start()
	}
	svc.Start()
	eng.RunUntil(warmup)
	if daemon != nil {
		warm = daemon.Stats()
	}
	eng.RunUntil(horizon)
	ctrl.Finalize()
	// See runTiming: interruption is an error, not a result.
	if eng.Interrupted() {
		return tailStats{}, 0, ErrInterrupted
	}

	if svc.Latency().N() == 0 {
		return tailStats{}, 0, fmt.Errorf("exp: no latency samples for %s", prof.Name)
	}
	var events int64
	if daemon != nil {
		ds := daemon.Stats()
		events = (ds.Offlines + ds.Onlines) - (warm.Offlines + warm.Onlines)
	}
	return tailStats{
		Percentile95: svc.Latency().Percentile(95),
		Percentile99: svc.Latency().Percentile(99),
	}, events, nil
}

// Table renders the comparison.
func (r TailResult) Table() *report.Table {
	t := report.NewTable("Tail latency of latency-critical services (us), base vs under GreenDIMM",
		"p95", "p99", "p95 gd", "p99 gd", "steady events")
	for _, row := range r.Rows {
		t.AddRow(row.App, row.BaseP95us, row.BaseP99us, row.GDP95us, row.GDP99us,
			float64(row.DaemonEvents))
	}
	return t
}

// MaxP99InflationPct reports the worst p99 increase under GreenDIMM.
func (r TailResult) MaxP99InflationPct() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.BaseP99us <= 0 {
			continue
		}
		if inc := (row.GDP99us/row.BaseP99us - 1) * 100; inc > worst {
			worst = inc
		}
	}
	return worst
}
