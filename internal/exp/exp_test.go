package exp

import (
	"testing"

	"greendimm/internal/workload"
)

// All experiment tests run in Quick mode: same structure as the full
// benchmarks, reduced horizons. Shape assertions mirror the paper's
// qualitative claims; absolute-value bands are wide by design.

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestFig1Shape(t *testing.T) {
	r, err := RunFig1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NoKSM.Samples) < 10 {
		t.Fatalf("too few samples: %d", len(r.NoKSM.Samples))
	}
	if r.NoKSM.AvgUsedFrac <= 0.05 || r.NoKSM.AvgUsedFrac >= 0.95 {
		t.Errorf("avg used frac = %v", r.NoKSM.AvgUsedFrac)
	}
	// KSM strictly reduces average utilization.
	if r.WithKSM.AvgUsedFrac >= r.NoKSM.AvgUsedFrac {
		t.Errorf("KSM did not reduce utilization: %.3f vs %.3f",
			r.WithKSM.AvgUsedFrac, r.NoKSM.AvgUsedFrac)
	}
	if red := r.KSMReductionFrac(); red <= 0.02 {
		t.Errorf("KSM reduction = %.3f, want a visible cut", red)
	}
	if r.Table().Rows() != 2 {
		t.Error("Fig1 table malformed")
	}
	t.Logf("\n%s\nKSM reduction: %.1f%%", r.Table(), r.KSMReductionFrac()*100)
	for _, s := range r.Series() {
		t.Logf("%-8s %s", s.Name, s.Sparkline(60))
	}
}

func TestTable1Flat(t *testing.T) {
	r, err := RunTable1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PowerW) != 5 {
		t.Fatalf("rows = %d", len(r.PowerW))
	}
	// The paper's point: power is flat in utilization (25.8-26.0W).
	for i := 1; i < len(r.PowerW); i++ {
		if r.PowerW[i] != r.PowerW[0] {
			t.Errorf("power varies with utilization: %v", r.PowerW)
		}
	}
	if r.PowerW[0] < 20 || r.PowerW[0] > 32 {
		t.Errorf("power = %.1fW, want ~26W", r.PowerW[0])
	}
	t.Logf("\n%s", r.Table())
}

func TestFig2Shape(t *testing.T) {
	r, err := RunFig2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevBusy := 0.0
	for _, row := range r.Rows {
		if row.BusyW <= row.IdleW {
			t.Errorf("%dGB: busy %.1f <= idle %.1f", row.CapacityGB, row.BusyW, row.IdleW)
		}
		if row.BusyW <= prevBusy {
			t.Errorf("%dGB: busy power not increasing with capacity", row.CapacityGB)
		}
		prevBusy = row.BusyW
	}
	// Background fraction grows with capacity (44% -> ~78% in the paper).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.BGFraction <= first.BGFraction {
		t.Errorf("background fraction not growing: %.2f -> %.2f", first.BGFraction, last.BGFraction)
	}
	// 256GB anchors.
	for _, row := range r.Rows {
		if row.CapacityGB == 256 {
			if row.IdleW < 13 || row.IdleW > 23 {
				t.Errorf("256GB idle = %.1fW, want ~18W", row.IdleW)
			}
			if row.BusyW < 20 || row.BusyW > 33 {
				t.Errorf("256GB busy = %.1fW, want ~26W", row.BusyW)
			}
		}
	}
	t.Logf("\n%s", r.Table())
}

func TestFig3Shape(t *testing.T) {
	r, err := RunFig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Speedup < 1.2 {
			t.Errorf("%s: interleaving speedup %.2f, want > 1.2 for high-MPKI apps", row.App, row.Speedup)
		}
		if row.SRFracIntlv > 0.10 {
			t.Errorf("%s: self-refresh %.2f with interleaving, want ~0", row.App, row.SRFracIntlv)
		}
		if row.SRFracContig < 0.25 {
			t.Errorf("%s: self-refresh %.2f without interleaving, want large", row.App, row.SRFracContig)
		}
	}
	wi, wo := r.MeanSRFrac()
	t.Logf("\n%s\nmean speedup %.2fx, SR residency %.2f w/ vs %.2f w/o",
		r.Table(), r.MeanSpeedup(), wi, wo)
}

func TestBlockSizeSweepShape(t *testing.T) {
	r, err := RunBlockSizeSweep(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 18 {
		t.Fatalf("cells = %d, want 6 apps x 3 sizes", len(r.Cells))
	}
	for _, app := range r.apps() {
		cells := r.cellsFor(app)
		// Smaller blocks off-line at least as much capacity (Fig. 6)...
		if cells[0].OfflinedGB < cells[2].OfflinedGB-0.26 {
			t.Errorf("%s: 128MB off-lined %.2fGB < 512MB %.2fGB", app,
				cells[0].OfflinedGB, cells[2].OfflinedGB)
		}
		// ...and cause at least as many events (Table 2).
		if cells[0].OnOffEvents < cells[2].OnOffEvents {
			t.Errorf("%s: events %d (128MB) < %d (512MB)", app,
				cells[0].OnOffEvents, cells[2].OnOffEvents)
		}
		// Overhead stays in the paper's band (<3%... allow 5% in Quick).
		for _, c := range cells {
			if c.OverheadPct > 5 {
				t.Errorf("%s/%dMB: overhead %.1f%%", app, c.BlockMB, c.OverheadPct)
			}
		}
	}
	t.Logf("\n%s\n%s\n%s", r.Fig6Table(), r.Fig7Table(), r.Table2())
}

func TestTable3Shape(t *testing.T) {
	r, err := RunTable3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.OfflineMs <= 0 || r.OnlineMs <= 0 {
		t.Fatal("missing success latencies")
	}
	// Table 3 orderings: EBUSY << off-lining < on-lining < EAGAIN.
	if !(r.EBusyMs < r.OfflineMs && r.OfflineMs < r.OnlineMs && r.OnlineMs < r.EAgainMs) {
		t.Errorf("latency ordering violated: %+v", r)
	}
	if r.OfflineMs < 1.0 || r.OfflineMs > 2.2 {
		t.Errorf("off-line latency %.2fms, want ~1.58ms", r.OfflineMs)
	}
	t.Logf("\n%s", r.Table())
}

func TestFig8Shape(t *testing.T) {
	r, err := RunFig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	var rnd, rem int64
	for _, row := range r.Rows {
		rnd += row.RandomFailures
		rem += row.RemovableFailures
	}
	if rnd == 0 {
		t.Fatal("random policy produced no failures")
	}
	if rem >= rnd {
		t.Errorf("removable-first (%d) not below random (%d)", rem, rnd)
	}
	t.Logf("\n%s\nfailure reduction: %.0f%%", r.Table(), r.ReductionFrac()*100)
}

func TestEnergyMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("energy matrix is the heaviest experiment")
	}
	r, err := RunEnergyMatrix(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// GreenDIMM beats srf_only on DRAM energy under interleaving.
		if row.DRAM.Intlv.GreenDIMM >= row.DRAM.Intlv.SrfOnly {
			t.Errorf("%s: GreenDIMM %.1fJ >= srf %.1fJ w/ interleaving",
				row.App, row.DRAM.Intlv.GreenDIMM, row.DRAM.Intlv.SrfOnly)
		}
		// Baselines are no better than srf_only under interleaving
		// (they find no idle ranks/banks).
		if row.DRAM.Intlv.RAMZzz < row.DRAM.Intlv.SrfOnly*0.99 {
			t.Errorf("%s: RAMZzz saved energy under interleaving", row.App)
		}
		if row.OverheadPct > 5 {
			t.Errorf("%s: overhead %.1f%%", row.App, row.OverheadPct)
		}
	}
	spec, dc := r.MeanDRAMSavingsPct()
	t.Logf("\n%s\n%s\n%s", r.Fig9Table(), r.Fig10Table(), r.Fig11Table())
	t.Logf("mean DRAM savings: SPEC %.0f%%, datacenter %.0f%% (paper: 38%%/60%%); max overhead %.1f%%",
		spec, dc, r.MaxOverheadPct())
}

func TestFig12Shape(t *testing.T) {
	r, err := RunFig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.NoKSM.AvgOffBlocks <= 0 {
		t.Fatal("GreenDIMM off-lined nothing under the VM trace")
	}
	// KSM lets GreenDIMM off-line more.
	if r.WithKSM.AvgOffBlocks <= r.NoKSM.AvgOffBlocks {
		t.Errorf("KSM did not increase off-lined blocks: %.0f vs %.0f",
			r.WithKSM.AvgOffBlocks, r.NoKSM.AvgOffBlocks)
	}
	if r.NoKSM.BGReductionPct <= 10 {
		t.Errorf("background reduction %.0f%%, want large", r.NoKSM.BGReductionPct)
	}
	t.Logf("\n%s", r.Table())
	for _, s := range r.Series() {
		t.Logf("%-8s %s", s.Name, s.Sparkline(60))
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := RunFig13(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	prevDRAMPct := 0.0
	for _, row := range r.Rows {
		if row.GDDRAMW >= row.BaseDRAMW {
			t.Errorf("%dGB: GreenDIMM did not cut DRAM power", row.CapacityGB)
		}
		if row.GDKSMDRAMW > row.GDDRAMW {
			t.Errorf("%dGB: KSM made DRAM power worse", row.CapacityGB)
		}
		// Reductions grow with capacity (the paper's core scaling claim).
		if row.GDReductionPct.DRAM < prevDRAMPct {
			t.Errorf("%dGB: DRAM reduction shrank with capacity", row.CapacityGB)
		}
		prevDRAMPct = row.GDReductionPct.DRAM
	}
	last := r.Rows[len(r.Rows)-1]
	// Paper headline at 1TB: 36% DRAM, 20% system; with KSM 55%/30%.
	// Quick mode truncates the trace to the low-utilization early morning,
	// which inflates the off-linable share, so the band is generous.
	if last.GDReductionPct.DRAM < 15 || last.GDReductionPct.DRAM > 85 {
		t.Errorf("1TB DRAM reduction = %.0f%%, want ~36%%", last.GDReductionPct.DRAM)
	}
	if last.GDReductionPct.System < 7 || last.GDReductionPct.System > 55 {
		t.Errorf("1TB system reduction = %.0f%%, want ~20%%", last.GDReductionPct.System)
	}
	t.Logf("\n%s", r.Table())
}

func TestTimingRunsAreDeterministic(t *testing.T) {
	prof, ok := workload.ByName("462.libquantum")
	if !ok {
		t.Fatal("missing profile")
	}
	cfg := timingConfig{prof: prof, interleaved: true, copies: 4, accesses: 2000, seed: 7}
	a, err := runTiming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runTiming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.Activity != b.Activity || a.SelfRefFrac != b.SelfRefFrac {
		t.Errorf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}
