package exp

import (
	"fmt"

	"greendimm/internal/core"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// DynamicsRun is one footprint-dynamics run of GreenDIMM against an
// application on the 64GB machine: the measurement behind Figs. 6, 7, 8,
// 11 and Tables 2/3. No individual memory requests are simulated; the
// kernel allocator, hotplug manager and daemon run for real over the
// application's footprint curve.
type DynamicsRun struct {
	App      string
	BlockMB  int64
	Duration sim.Time

	// OnOffEvents counts on-linings + off-linings after the warm-up burst
	// (the first 10%% of the run, when the daemon drains the initially
	// free region) — the steady-state churn Table 2 reports.
	OnOffEvents    int64
	Offlines       int64 // full-run counts
	Onlines        int64
	EBusyFailures  int64
	EAgainFailures int64

	OfflinedEndBytes int64   // capacity off-lined when the run ends (Fig. 6)
	OfflinedAvgBytes float64 // time-weighted average
	AvgDPDFrac       float64 // machine-wide deep-power-down fraction

	OverheadFrac float64 // execution-time increase estimate (Figs. 7/11)

	OfflineLatMeanMs float64 // Table 3 rows
	OnlineLatMeanMs  float64
	EBusyLatMeanMs   float64
	EAgainLatMeanMs  float64
}

// dynamicsConfig parameterizes runDynamics.
type dynamicsConfig struct {
	prof     workload.Profile
	blockMB  int64
	duration sim.Time
	policy   core.PolicySpec
	// movableGB bounds off-lining to a movablecore=-style region at the
	// top of memory (0: whole memory eligible).
	movableGB int64
	// groupMB is the sub-array-group (power-management unit) size.
	groupMB int64
	// failProb is the hotplug per-attempt migration failure probability.
	failProb float64
	// leakEvery scatters kernel pages into the region (Fig. 8 setup).
	leakEvery int
	seed      int64
	hooks     Hooks
}

// indirectStallPerEvent models the execution-time cost of one on/off-lining
// beyond the raw operation latency: TLB shootdowns, page-table walk misses
// and cache pollution after page migration. Memory-intensive applications
// (high MPKI) pay more per event. Calibrated so Fig. 7's band (<3% at
// 128MB blocks) holds; see EXPERIMENTS.md.
func indirectStallPerEvent(prof workload.Profile) sim.Time {
	return sim.Time(float64(4*sim.Millisecond) + 0.7*prof.MPKI*float64(sim.Millisecond))
}

// runDynamics plays the footprint curve under a GreenDIMM daemon.
func runDynamics(cfg dynamicsConfig) (DynamicsRun, error) {
	const totalBytes = 64 << 30
	const pageBytes = 1 << 20
	eng := cfg.hooks.newEngine()
	kcfg := kernel.Config{
		TotalBytes:          totalBytes,
		PageBytes:           pageBytes,
		KernelReservedBytes: 1 << 30, // the kernel's own ~1GB
		Seed:                cfg.seed,
	}
	if cfg.movableGB > 0 {
		kcfg.MovableBytes = cfg.movableGB << 30
	}
	if cfg.leakEvery > 0 {
		kcfg.UnmovableLeakEvery = cfg.leakEvery
	}
	mem, err := kernel.New(kcfg)
	if err != nil {
		return DynamicsRun{}, err
	}
	hp, err := hotplug.New(mem, hotplug.Config{
		BlockBytes:             cfg.blockMB << 20,
		MigrateAttemptFailProb: cfg.failProb,
		Seed:                   cfg.seed,
	})
	if err != nil {
		return DynamicsRun{}, err
	}
	groupMB := cfg.groupMB
	if groupMB == 0 {
		groupMB = totalBytes >> 20 / 64
	}
	ctrl := core.NewRegisterController(eng, int(totalBytes/(groupMB<<20)))
	dcfg := core.Config{
		Period: sim.Second,
		Policy: cfg.policy,
		// A tight on/off hysteresis band: the paper's daemon reacts to
		// footprint swings of a few hundred MB (Table 2's churn), which
		// requires on_thr close to off_thr.
		OffThr:     0.10,
		OnThr:      0.085,
		GroupBytes: groupMB << 20,
		Seed:       cfg.seed,
	}
	if cfg.movableGB > 0 {
		dcfg.OfflinableBytes = cfg.movableGB << 30
	}
	daemon, err := core.New(eng, mem, hp, ctrl, dcfg)
	if err != nil {
		return DynamicsRun{}, err
	}
	var stall sim.Time
	daemon.SetStallSink(func(d sim.Time) { stall += d })
	daemon.AttachKernelTap()

	const owner = 50
	fd, err := workload.NewFootprintDriver(eng, mem, cfg.prof, owner,
		cfg.duration, 500*sim.Millisecond)
	if err != nil {
		return DynamicsRun{}, err
	}
	// Tracker-driven policies additionally see the application touch its
	// resident set, not just allocate/free events (no-op otherwise).
	if tap := daemon.AccessTap(); tap != nil {
		fd.SetAccessTap(tap)
	}
	fd.Start()
	daemon.Start()
	eng.RunUntil(cfg.duration / 10)
	warm := daemon.Stats()
	eng.RunUntil(cfg.duration)
	daemon.Stop()
	// See runTiming: interruption is an error, not a result.
	if eng.Interrupted() {
		return DynamicsRun{}, ErrInterrupted
	}

	ds := daemon.Stats()
	hs := hp.Stats()
	events := (ds.Offlines + ds.Onlines) - (warm.Offlines + warm.Onlines)
	allEvents := ds.Offlines + ds.Onlines
	overhead := (float64(stall) + float64(allEvents)*float64(indirectStallPerEvent(cfg.prof))) /
		float64(cfg.duration)
	return DynamicsRun{
		App:              cfg.prof.Name,
		BlockMB:          cfg.blockMB,
		Duration:         cfg.duration,
		OnOffEvents:      events,
		Offlines:         ds.Offlines,
		Onlines:          ds.Onlines,
		EBusyFailures:    ds.EBusyFailures,
		EAgainFailures:   ds.EAgainFailures,
		OfflinedEndBytes: daemon.OfflinedBytes(),
		OfflinedAvgBytes: daemon.AvgOfflinedBlocks() * float64(hp.BlockBytes()),
		AvgDPDFrac:       daemon.AvgDPDFraction(),
		OverheadFrac:     overhead,
		OfflineLatMeanMs: hs.OfflineLat.Mean(),
		OnlineLatMeanMs:  hs.OnlineLat.Mean(),
		EBusyLatMeanMs:   hs.EBusyLat.Mean(),
		EAgainLatMeanMs:  hs.EAgainLat.Mean(),
	}, nil
}

// specDynApps returns the six §5.1 applications in the paper's order.
func specDynApps() ([]workload.Profile, error) {
	names := []string{"429.mcf", "403.gcc", "450.soplex", "470.lbm", "462.libquantum", "453.povray"}
	out := make([]workload.Profile, len(names))
	for i, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: unknown profile %s", n)
		}
		out[i] = p
	}
	return out, nil
}
