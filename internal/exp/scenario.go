package exp

import (
	"errors"
	"fmt"

	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/ksm"
	"greendimm/internal/power"
	"greendimm/internal/sim"
	"greendimm/internal/vmtrace"
)

// ErrInterrupted reports that a run was aborted early by Hooks.Stop (a
// daemon deadline or cancellation) and produced no usable result.
var ErrInterrupted = errors.New("exp: run interrupted by stop hook")

// VMScenario is the serializable form of the paper's §6.3
// virtualized-server experiment: the same knobs cmd/greendimm and
// examples/vmserver wire by hand, as one JSON document. The JSON field
// names are the wire contract of greendimmd job specs; zero values take
// the paper defaults (Normalized spells them out, so equivalent specs
// hash identically in the daemon's result cache).
type VMScenario struct {
	// CapacityGB sizes the host DRAM (dram.OrgWithCapacity; paper: 256).
	CapacityGB int `json:"capacity_gb,omitempty"`
	// Hours is the simulated horizon (paper: 24).
	Hours float64 `json:"hours,omitempty"`
	// KSM enables kernel samepage merging at the paper's scan rate.
	KSM bool `json:"ksm"`
	// GreenDIMM enables the block off-lining daemon.
	GreenDIMM bool  `json:"greendimm"`
	Seed      int64 `json:"seed,omitempty"`

	// Host / trace shape (vmtrace.Config; zero takes DefaultConfig).
	HostCores           int     `json:"host_cores,omitempty"`
	ArrivalsPerHourMean float64 `json:"arrivals_per_hour,omitempty"`
	AdmitCapFrac        float64 `json:"admit_cap_frac,omitempty"`
	MaxVCPURatio        float64 `json:"max_vcpu_ratio,omitempty"`
	ScheduleEverySec    float64 `json:"schedule_every_sec,omitempty"`
	RampMBPerSec        int64   `json:"ramp_mb_per_sec,omitempty"`
	NumVMTypes          int     `json:"num_vm_types,omitempty"`
	Images              int     `json:"images,omitempty"`
	PageVolatility      float64 `json:"page_volatility,omitempty"`

	// GreenDIMM daemon knobs (core.Config; zero takes paper defaults).
	BlockMB  int     `json:"block_mb,omitempty"`
	PeriodMS float64 `json:"period_ms,omitempty"`
	OffThr   float64 `json:"off_thr,omitempty"`
	OnThr    float64 `json:"on_thr,omitempty"`
	// Policy selects the block-selection pipeline. Accepts both the
	// legacy bare string ("free-first") and the structured object
	// ({"name": ..., "tracker": ..., "params": {...}}); canonical legacy
	// specs marshal back to the bare string, so pre-pipeline job specs
	// keep their exact spec hashes.
	Policy            core.PolicySpec `json:"policy,omitempty"`
	MaxOfflinePerTick int             `json:"max_offline_per_tick,omitempty"`
	NeighborRule      bool            `json:"neighbor_rule,omitempty"`
	AdaptiveAlpha     bool            `json:"adaptive_alpha,omitempty"`

	// horizonOverride lets in-process callers (runVMDay) pass an exact
	// sim.Time horizon, sidestepping the float hours round trip. Not
	// serialized.
	horizonOverride sim.Time
}

// Normalized returns the scenario with every defaulted field made
// explicit. Specs that normalize equal describe the same run, which is
// what makes content-addressed result caching sound.
func (s VMScenario) Normalized() VMScenario {
	if s.CapacityGB == 0 {
		s.CapacityGB = 256
	}
	if s.Hours == 0 && s.horizonOverride == 0 {
		s.Hours = 24
	}
	d := vmtrace.DefaultConfig()
	if s.HostCores == 0 {
		s.HostCores = d.HostCores
	}
	if s.ArrivalsPerHourMean == 0 {
		s.ArrivalsPerHourMean = d.ArrivalsPerHourMean
	}
	if s.AdmitCapFrac == 0 {
		s.AdmitCapFrac = d.AdmitCapFrac
	}
	if s.MaxVCPURatio == 0 {
		s.MaxVCPURatio = d.MaxVCPURatio
	}
	if s.ScheduleEverySec == 0 {
		s.ScheduleEverySec = d.ScheduleEvery.Seconds()
	}
	if s.RampMBPerSec == 0 {
		s.RampMBPerSec = d.RampBytesPerSec >> 20
	}
	if s.NumVMTypes == 0 {
		s.NumVMTypes = d.NumTypes
	}
	if s.Images == 0 {
		s.Images = d.Images
	}
	if s.PageVolatility == 0 {
		s.PageVolatility = d.PageVolatility
	}
	if s.BlockMB == 0 {
		s.BlockMB = 1024 // paper §6.3: 1GB blocks for the 256GB host
	}
	if s.PeriodMS == 0 {
		s.PeriodMS = 1000 // paper §4.2: 1s monitor period
	}
	if s.MaxOfflinePerTick == 0 {
		s.MaxOfflinePerTick = 8
	}
	// Policy normalization can fail (unknown names, bad params);
	// Normalized stays error-free by leaving invalid specs untouched for
	// Validate to report.
	if norm, err := s.Policy.Normalized(); err == nil {
		s.Policy = norm
	}
	return s
}

// Validate rejects specs the simulator cannot run. Call on the Normalized
// form.
func (s VMScenario) Validate() error {
	if _, err := dram.OrgWithCapacity(s.CapacityGB); err != nil {
		return err
	}
	if s.horizonOverride == 0 {
		// sim.Time spans ~106 days; leave headroom for in-run scheduling.
		if s.Hours <= 0 || s.Hours > 2400 {
			return fmt.Errorf("exp: hours %g out of (0, 2400]", s.Hours)
		}
	}
	if s.BlockMB <= 0 || (int64(s.CapacityGB)<<10)%int64(s.BlockMB) != 0 {
		return fmt.Errorf("exp: block_mb %d must evenly divide capacity %dGB", s.BlockMB, s.CapacityGB)
	}
	if s.PeriodMS <= 0 {
		return fmt.Errorf("exp: period_ms %g must be positive", s.PeriodMS)
	}
	if _, err := s.Policy.Normalized(); err != nil {
		return err
	}
	if s.OffThr < 0 || s.OffThr > 1 || s.OnThr < 0 || s.OnThr > 1 {
		return fmt.Errorf("exp: off_thr/on_thr must be fractions in [0,1]")
	}
	// The daemon applies paper defaults to zero thresholds; checking the
	// effective values here keeps an inverted band from surfacing as a
	// failed job deep inside the run.
	effOff, effOn := s.OffThr, s.OnThr
	if effOff == 0 {
		effOff = 0.10
	}
	if effOn == 0 {
		effOn = 0.05
	}
	if effOn >= effOff {
		return fmt.Errorf("exp: effective on_thr %g must be below off_thr %g", effOn, effOff)
	}
	if s.HostCores <= 0 || s.NumVMTypes <= 0 || s.Images <= 0 {
		return fmt.Errorf("exp: host_cores, num_vm_types and images must be positive")
	}
	if s.AdmitCapFrac <= 0 || s.AdmitCapFrac > 1 {
		return fmt.Errorf("exp: admit_cap_frac %g out of (0,1]", s.AdmitCapFrac)
	}
	if s.PageVolatility < 0 || s.PageVolatility > 1 {
		return fmt.Errorf("exp: page_volatility %g out of [0,1]", s.PageVolatility)
	}
	return nil
}

// horizon reports the simulated end time.
func (s VMScenario) horizon() sim.Time {
	if s.horizonOverride != 0 {
		return s.horizonOverride
	}
	return sim.FromSeconds(s.Hours * 3600)
}

// RunVMScenario runs one virtualized-server scenario and reports the same
// aggregates the paper's Fig. 1/12 runs use. It is the execution path
// behind greendimmd "vmserver" jobs; hooks carries the daemon's deadline
// predicate. Runs aborted by hooks.Stop return ErrInterrupted.
func RunVMScenario(spec VMScenario, hooks Hooks) (VMDayResult, error) {
	s := spec.Normalized()
	if err := s.Validate(); err != nil {
		return VMDayResult{}, err
	}
	org, err := dram.OrgWithCapacity(s.CapacityGB)
	if err != nil {
		return VMDayResult{}, err
	}

	eng := hooks.newEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: org.TotalBytes(),
		PageBytes:  2 << 20,
		Seed:       s.Seed,
	})
	if err != nil {
		return VMDayResult{}, err
	}
	var ksmd *ksm.Daemon
	if s.KSM {
		// The paper's 1000-pages/50ms scan (80MB/s) in 2MB frames.
		ksmd, err = ksm.New(eng, mem, ksm.Config{
			PagesPerScan:    2,
			ScanPeriod:      50 * sim.Millisecond,
			ScanCostPerPage: 2560 * sim.Microsecond,
			Seed:            s.Seed,
		})
		if err != nil {
			return VMDayResult{}, err
		}
		ksmd.Start()
	}

	// Memory blocks map 1:1 onto sub-array groups (paper §6.3).
	blockBytes := int64(s.BlockMB) << 20
	hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: blockBytes, Seed: s.Seed})
	if err != nil {
		return VMDayResult{}, err
	}
	groups := int(org.TotalBytes() / blockBytes)
	ctrl := core.NewRegisterController(eng, groups)
	var daemon *core.Daemon
	if s.GreenDIMM {
		daemon, err = core.New(eng, mem, hp, ctrl, core.Config{
			Period:            sim.Time(s.PeriodMS * float64(sim.Millisecond)),
			OffThr:            s.OffThr,
			OnThr:             s.OnThr,
			Policy:            s.Policy,
			AdaptiveAlpha:     s.AdaptiveAlpha,
			NeighborRule:      s.NeighborRule,
			GroupBytes:        blockBytes,
			MaxOfflinePerTick: s.MaxOfflinePerTick,
			Seed:              s.Seed,
		})
		if err != nil {
			return VMDayResult{}, err
		}
		daemon.AttachKernelTap()
		daemon.Start()
		if ksmd != nil {
			// §5.3 optimization: react right after each merge pass.
			ksmd.OnFullPass(daemon.Tick)
		}
	}

	vcfg := vmtrace.DefaultConfig()
	vcfg.Seed = s.Seed
	vcfg.HostMemBytes = org.TotalBytes()
	vcfg.HostCores = s.HostCores
	vcfg.ArrivalsPerHourMean = s.ArrivalsPerHourMean
	vcfg.AdmitCapFrac = s.AdmitCapFrac
	vcfg.MaxVCPURatio = s.MaxVCPURatio
	vcfg.ScheduleEvery = sim.FromSeconds(s.ScheduleEverySec)
	vcfg.RampBytesPerSec = s.RampMBPerSec << 20
	vcfg.NumTypes = s.NumVMTypes
	vcfg.Images = s.Images
	vcfg.PageVolatility = s.PageVolatility
	host, err := vmtrace.New(eng, mem, ksmd, vcfg)
	if err != nil {
		return VMDayResult{}, err
	}
	host.Start()

	model, err := power.NewModel(org)
	if err != nil {
		return VMDayResult{}, err
	}
	sys := power.DefaultSystem()

	res := VMDayResult{WithKSM: s.KSM, WithGreenDIMM: s.GreenDIMM, MinUsedFrac: 1}
	res.MinOffBlocks = groups + 1
	var powerSum, sysSum float64
	var sampler func()
	samplePeriod := 5 * sim.Minute
	sampler = func() {
		smp := VMDaySample{At: eng.Now()}
		mi := mem.Meminfo()
		smp.UsedFrac = float64(mi.UsedBytes) / float64(org.TotalBytes())
		smp.CPUUtil = hostCPUUtil(host, ksmd)
		if daemon != nil {
			smp.OfflinedBlocks = daemon.OfflinedBlocks()
			smp.DPDFrac = daemon.DPDFraction()
		}
		if ksmd != nil {
			smp.KSMSavedBytes = ksmd.SavedBytes()
		}
		res.Samples = append(res.Samples, smp)
		dramW, sysW := vmPowerW(model, sys, smp.DPDFrac, smp.CPUUtil)
		powerSum += dramW
		sysSum += sysW
		eng.AfterDaemon(samplePeriod, sampler)
	}
	eng.AtDaemon(eng.Now()+samplePeriod, sampler)
	eng.RunUntil(s.horizon())
	if eng.Interrupted() {
		return VMDayResult{}, ErrInterrupted
	}

	// Aggregate.
	var usedSum, cpuSum, offSum, dpdSum float64
	var savedSum int64
	for _, smp := range res.Samples {
		usedSum += smp.UsedFrac
		cpuSum += smp.CPUUtil
		offSum += float64(smp.OfflinedBlocks)
		dpdSum += smp.DPDFrac
		savedSum += smp.KSMSavedBytes
		if smp.UsedFrac < res.MinUsedFrac {
			res.MinUsedFrac = smp.UsedFrac
		}
		if smp.UsedFrac > res.MaxUsedFrac {
			res.MaxUsedFrac = smp.UsedFrac
		}
		if smp.OfflinedBlocks < res.MinOffBlocks {
			res.MinOffBlocks = smp.OfflinedBlocks
		}
		if smp.OfflinedBlocks > res.MaxOffBlocks {
			res.MaxOffBlocks = smp.OfflinedBlocks
		}
	}
	n := float64(len(res.Samples))
	if n > 0 {
		res.AvgUsedFrac = usedSum / n
		res.AvgCPUUtil = cpuSum / n
		res.AvgOffBlocks = offSum / n
		res.AvgDPDFrac = dpdSum / n
		res.KSMSavedAvg = savedSum / int64(n)
		res.AvgDRAMPowerW = powerSum / n
		res.AvgSystemW = sysSum / n
	}
	res.BGReductionPct = res.AvgDPDFrac * (1 - model.DPDResidual) * 100
	return res, nil
}
