package exp

import (
	"fmt"

	"greendimm/internal/baseline"
	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/power"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// TimingRun is one detailed (request-level) run of N copies of an
// application on the 64GB machine: the measurement behind Figs. 3, 9, 10
// and 11.
type TimingRun struct {
	App         string
	Interleaved bool
	Copies      int
	Runtime     sim.Time
	Activity    power.Activity
	Occupancy   baseline.Occupancy
	SelfRefFrac float64 // fraction of rank-time in self-refresh (Fig. 3b)
	AvgLatency  sim.Time
	CPUUtil     float64 // core-utilization estimate for system power
}

// timingConfig parameterizes runTiming.
type timingConfig struct {
	prof        workload.Profile
	interleaved bool
	copies      int
	accesses    int64 // per copy
	seed        int64
	hooks       Hooks
}

// runTiming executes the run and collects controller activity.
func runTiming(cfg timingConfig) (TimingRun, error) {
	org := dram.Org64GB()
	eng := cfg.hooks.newEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: org.TotalBytes(),
		PageBytes:  1 << 20, // 1MB frames keep the page array compact
	})
	if err != nil {
		return TimingRun{}, err
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org:         org,
		Timing:      dram.DDR4_2133(),
		Interleaved: cfg.interleaved,
		LowPower:    true,
	})
	if err != nil {
		return TimingRun{}, err
	}
	prof := cfg.prof
	copies := cfg.copies
	if copies <= 0 {
		copies = 1
	}
	// Fit the multiprogrammed footprint comfortably in memory.
	if int64(prof.FootprintMB)*int64(copies) > 48<<10 {
		prof.FootprintMB = 48 << 10 / int64(copies)
	}
	remaining := copies
	var cores []*workload.Core
	for i := 0; i < copies; i++ {
		c, err := workload.NewCore(eng, mem, ctrl, workload.CoreConfig{
			Profile:  prof,
			Owner:    uint32(100 + i),
			Accesses: cfg.accesses,
			Seed:     cfg.seed + int64(i)*7919,
		})
		if err != nil {
			return TimingRun{}, fmt.Errorf("copy %d: %w", i, err)
		}
		c.OnDone(func() { remaining-- })
		cores = append(cores, c)
	}
	occ := baseline.Scan(mem, ctrl.Mapper())
	for _, c := range cores {
		c.Start()
	}
	eng.Run()
	// An interrupted run must surface as an error, never as partial
	// stats: a partial cell that escaped with err == nil would poison
	// the shared memo and the durable job journal with wrong-but-
	// plausible bytes.
	if eng.Interrupted() {
		return TimingRun{}, ErrInterrupted
	}
	if remaining != 0 {
		return TimingRun{}, fmt.Errorf("exp: %d copies of %s unfinished", remaining, prof.Name)
	}
	ctrl.Finalize()

	var latSum sim.Time
	for _, c := range cores {
		latSum += c.AvgLatency()
	}
	// CPU utilization: copies of a core each busy for the whole run on a
	// 16-core machine (memory stalls still burn package power; the
	// paper's RAPL numbers behave the same way).
	util := float64(copies) / 16
	if util > 1 {
		util = 1
	}
	return TimingRun{
		App:         prof.Name,
		Interleaved: cfg.interleaved,
		Copies:      copies,
		Runtime:     eng.Now(),
		Activity:    ctrl.Activity(),
		Occupancy:   occ,
		SelfRefFrac: ctrl.SelfRefreshFraction(),
		AvgLatency:  latSum / sim.Time(len(cores)),
		CPUUtil:     util,
	}, nil
}

// copiesFor picks the multiprogramming degree: SPEC runs are
// rate-style multi-copy (the paper's measurements use 16 copies of mcf);
// big-footprint datacenter services run fewer instances.
func copiesFor(prof workload.Profile) int {
	if prof.FootprintMB >= 3000 {
		return 2
	}
	return 8
}

// dramPowerW converts a run's activity into average DRAM power under a
// given policy adjustment.
func dramPowerW(model *power.Model, a power.Activity) (float64, error) {
	b, err := model.FromActivity(a)
	if err != nil {
		return 0, err
	}
	return b.TotalW(), nil
}
