package exp

import (
	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/ksm"
	"greendimm/internal/power"
	"greendimm/internal/sim"
	"greendimm/internal/vmtrace"
)

// VMDaySample extends the host sample with GreenDIMM state.
type VMDaySample struct {
	At             sim.Time
	UsedFrac       float64
	CPUUtil        float64
	OfflinedBlocks int
	DPDFrac        float64
	KSMSavedBytes  int64
}

// VMDayResult is one 24-hour VM-trace run at 256GB.
type VMDayResult struct {
	WithKSM       bool
	WithGreenDIMM bool
	Samples       []VMDaySample

	AvgUsedFrac    float64
	MinUsedFrac    float64
	MaxUsedFrac    float64
	AvgCPUUtil     float64
	AvgOffBlocks   float64
	MinOffBlocks   int
	MaxOffBlocks   int
	AvgDPDFrac     float64
	KSMSavedAvg    int64
	AvgDRAMPowerW  float64
	AvgSystemW     float64
	BGReductionPct float64 // DRAM background power reduction
}

// vmDayConfig controls a VM-day run.
type vmDayConfig struct {
	withKSM       bool
	withGreenDIMM bool
	horizon       sim.Time
	seed          int64
}

// runVMDay simulates the paper's 256GB VM server for a day in epoch mode.
func runVMDay(cfg vmDayConfig) (VMDayResult, error) {
	org := dram.Org256GB()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: org.TotalBytes(),
		PageBytes:  2 << 20,
		Seed:       cfg.seed,
	})
	if err != nil {
		return VMDayResult{}, err
	}
	var ksmd *ksm.Daemon
	if cfg.withKSM {
		// The paper's 1000-pages/50ms scan (80MB/s) in 2MB frames.
		ksmd, err = ksm.New(eng, mem, ksm.Config{
			PagesPerScan:    2,
			ScanPeriod:      50 * sim.Millisecond,
			ScanCostPerPage: 2560 * sim.Microsecond,
			Seed:            cfg.seed,
		})
		if err != nil {
			return VMDayResult{}, err
		}
		ksmd.Start()
	}

	// GreenDIMM: 1GB memory blocks mapped 1:1 onto 1GB sub-array groups
	// (paper §6.3: "we use 1GB as the size of memory block for 256GB").
	const blockBytes = 1 << 30
	hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: blockBytes, Seed: cfg.seed})
	if err != nil {
		return VMDayResult{}, err
	}
	groups := int(org.TotalBytes() / blockBytes)
	ctrl := core.NewRegisterController(eng, groups)
	var daemon *core.Daemon
	if cfg.withGreenDIMM {
		daemon, err = core.New(eng, mem, hp, ctrl, core.Config{
			Period:            sim.Second,
			GroupBytes:        blockBytes,
			MaxOfflinePerTick: 8,
			Seed:              cfg.seed,
		})
		if err != nil {
			return VMDayResult{}, err
		}
		daemon.Start()
		if ksmd != nil {
			// §5.3 optimization: react right after each merge pass.
			ksmd.OnFullPass(daemon.Tick)
		}
	}

	vcfg := vmtrace.DefaultConfig()
	vcfg.Seed = cfg.seed
	host, err := vmtrace.New(eng, mem, ksmd, vcfg)
	if err != nil {
		return VMDayResult{}, err
	}
	host.Start()

	model, err := power.NewModel(org)
	if err != nil {
		return VMDayResult{}, err
	}
	sys := power.DefaultSystem()

	res := VMDayResult{WithKSM: cfg.withKSM, WithGreenDIMM: cfg.withGreenDIMM, MinUsedFrac: 1}
	res.MinOffBlocks = groups + 1
	var powerSum, sysSum float64
	var sampler func()
	samplePeriod := 5 * sim.Minute
	sampler = func() {
		s := VMDaySample{At: eng.Now()}
		mi := mem.Meminfo()
		s.UsedFrac = float64(mi.UsedBytes) / float64(org.TotalBytes())
		s.CPUUtil = hostCPUUtil(host, ksmd)
		if daemon != nil {
			s.OfflinedBlocks = daemon.OfflinedBlocks()
			s.DPDFrac = daemon.DPDFraction()
		}
		if ksmd != nil {
			s.KSMSavedBytes = ksmd.SavedBytes()
		}
		res.Samples = append(res.Samples, s)
		dramW, sysW := vmPowerW(model, sys, s.DPDFrac, s.CPUUtil)
		powerSum += dramW
		sysSum += sysW
		eng.AfterDaemon(samplePeriod, sampler)
	}
	eng.AtDaemon(eng.Now()+samplePeriod, sampler)
	eng.RunUntil(cfg.horizon)

	// Aggregate.
	var usedSum, cpuSum, offSum, dpdSum float64
	var savedSum int64
	for _, s := range res.Samples {
		usedSum += s.UsedFrac
		cpuSum += s.CPUUtil
		offSum += float64(s.OfflinedBlocks)
		dpdSum += s.DPDFrac
		savedSum += s.KSMSavedBytes
		if s.UsedFrac < res.MinUsedFrac {
			res.MinUsedFrac = s.UsedFrac
		}
		if s.UsedFrac > res.MaxUsedFrac {
			res.MaxUsedFrac = s.UsedFrac
		}
		if s.OfflinedBlocks < res.MinOffBlocks {
			res.MinOffBlocks = s.OfflinedBlocks
		}
		if s.OfflinedBlocks > res.MaxOffBlocks {
			res.MaxOffBlocks = s.OfflinedBlocks
		}
	}
	n := float64(len(res.Samples))
	if n > 0 {
		res.AvgUsedFrac = usedSum / n
		res.AvgCPUUtil = cpuSum / n
		res.AvgOffBlocks = offSum / n
		res.AvgDPDFrac = dpdSum / n
		res.KSMSavedAvg = savedSum / int64(n)
		res.AvgDRAMPowerW = powerSum / n
		res.AvgSystemW = sysSum / n
	}
	res.BGReductionPct = res.AvgDPDFrac * (1 - model.DPDResidual) * 100
	return res, nil
}

// hostCPUUtil folds ksmd's scan cost into the host utilization.
func hostCPUUtil(h *vmtrace.Host, ksmd *ksm.Daemon) float64 {
	u := h.AvgCPUUtil()
	if ksmd != nil {
		u += ksmd.CPUShare() / 16
	}
	if u > 1 {
		u = 1
	}
	return u
}

// vmPowerW computes instantaneous DRAM and system power for the epoch-mode
// server: every rank in precharge standby plus refresh, scaled by the DPD
// fraction, plus a modest activity term proportional to CPU load.
func vmPowerW(model *power.Model, sys power.SystemModel, dpdFrac, cpuUtil float64) (dramW, sysW float64) {
	org := model.Org
	window := sim.Second
	ranks := int64(org.TotalRanks())
	// ~1.2GB/s of demand per busy core (a consolidated-VM average).
	lines := int64(cpuUtil * 16 * 1.2 * float64(1<<30) / 64)
	a := power.Activity{
		Window:      window,
		StandbyT:    window * sim.Time(ranks),
		Refreshes:   int64(window/model.Timing.TREFI) * ranks,
		Activations: lines / 2,
		Reads:       lines * 3 / 4,
		Writes:      lines / 4,
		DPDFrac:     dpdFrac,
	}
	b, err := model.FromActivity(a)
	if err != nil {
		panic(err) // activity is constructed here; failure is a bug
	}
	dramW = b.TotalW()
	return dramW, sys.SystemW(cpuUtil, dramW)
}
