package exp

import (
	"greendimm/internal/ksm"
	"greendimm/internal/power"
	"greendimm/internal/sim"
	"greendimm/internal/vmtrace"
)

// VMDaySample extends the host sample with GreenDIMM state.
type VMDaySample struct {
	At             sim.Time
	UsedFrac       float64
	CPUUtil        float64
	OfflinedBlocks int
	DPDFrac        float64
	KSMSavedBytes  int64
}

// VMDayResult is one 24-hour VM-trace run at 256GB.
type VMDayResult struct {
	WithKSM       bool
	WithGreenDIMM bool
	Samples       []VMDaySample

	AvgUsedFrac    float64
	MinUsedFrac    float64
	MaxUsedFrac    float64
	AvgCPUUtil     float64
	AvgOffBlocks   float64
	MinOffBlocks   int
	MaxOffBlocks   int
	AvgDPDFrac     float64
	KSMSavedAvg    int64
	AvgDRAMPowerW  float64
	AvgSystemW     float64
	BGReductionPct float64 // DRAM background power reduction
}

// vmDayConfig controls a VM-day run.
type vmDayConfig struct {
	withKSM       bool
	withGreenDIMM bool
	horizon       sim.Time
	seed          int64
	hooks         Hooks
}

// runVMDay simulates the paper's 256GB VM server for a day in epoch mode.
// It is the paper-default instantiation of RunVMScenario.
func runVMDay(cfg vmDayConfig) (VMDayResult, error) {
	return RunVMScenario(VMScenario{
		KSM:             cfg.withKSM,
		GreenDIMM:       cfg.withGreenDIMM,
		Seed:            cfg.seed,
		horizonOverride: cfg.horizon,
	}, cfg.hooks)
}

// runVMDayPair runs the without-KSM / with-KSM day pair every VM figure
// compares, as two independent sweep cells. days[0] is without KSM.
func runVMDayPair(opts Options, mk func(withKSM bool) vmDayConfig) ([2]VMDayResult, error) {
	var days [2]VMDayResult
	err := opts.sweepCells(2, func(i int, h Hooks) error {
		cfg := mk(i == 1)
		cfg.hooks = h
		day, err := memoVMDay(opts, cfg)
		if err != nil {
			return err
		}
		days[i] = day
		return nil
	})
	return days, err
}

// hostCPUUtil folds ksmd's scan cost into the host utilization.
func hostCPUUtil(h *vmtrace.Host, ksmd *ksm.Daemon) float64 {
	u := h.AvgCPUUtil()
	if ksmd != nil {
		u += ksmd.CPUShare() / 16
	}
	if u > 1 {
		u = 1
	}
	return u
}

// vmPowerW computes instantaneous DRAM and system power for the epoch-mode
// server: every rank in precharge standby plus refresh, scaled by the DPD
// fraction, plus a modest activity term proportional to CPU load.
func vmPowerW(model *power.Model, sys power.SystemModel, dpdFrac, cpuUtil float64) (dramW, sysW float64) {
	org := model.Org
	window := sim.Second
	ranks := int64(org.TotalRanks())
	// ~1.2GB/s of demand per busy core (a consolidated-VM average).
	lines := int64(cpuUtil * 16 * 1.2 * float64(1<<30) / 64)
	a := power.Activity{
		Window:      window,
		StandbyT:    window * sim.Time(ranks),
		Refreshes:   int64(window/model.Timing.TREFI) * ranks,
		Activations: lines / 2,
		Reads:       lines * 3 / 4,
		Writes:      lines / 4,
		DPDFrac:     dpdFrac,
	}
	b, err := model.FromActivity(a)
	if err != nil {
		panic(err) // activity is constructed here; failure is a bug
	}
	dramW = b.TotalW()
	return dramW, sys.SystemW(cpuUtil, dramW)
}
