package exp

import (
	"testing"

	"greendimm/internal/sweep"
)

// TestMemoDeterminism is the memoization acceptance check: for the
// experiments that share baseline cells, rendered reports must be
// byte-identical whether the memo is off, freshly attached, or shared
// across experiments (serving stored cells), at serial and parallel
// sweep widths. fig12 and fig13 run the identical traced day, so the
// shared-memo pass also proves cross-experiment reuse.
func TestMemoDeterminism(t *testing.T) {
	ids := []string{"fig1", "fig12", "fig13"}
	baseline := make(map[string]string, len(ids))
	for _, id := range ids {
		baseline[id] = renderExperiment(t, id, Options{Quick: true, Seed: 1, Parallelism: 1})
	}
	pars := []int{1, 8}
	if testing.Short() {
		// Parallelism 1 only re-derives the serial baseline; under -short
		// (the 1-CPU race budget) keep the contended width alone.
		pars = []int{8}
	}
	for _, par := range pars {
		// Fresh memo per experiment: every cell computes through the memo.
		for _, id := range ids {
			got := renderExperiment(t, id,
				Options{Quick: true, Seed: 1, Parallelism: par, Memo: sweep.NewMemo(0)})
			if got != baseline[id] {
				t.Errorf("%s with fresh memo at parallelism %d differs:\n--- memo off ---\n%s\n--- memo on ---\n%s",
					id, par, baseline[id], got)
			}
		}
		// Shared memo: later experiments are served stored cells.
		shared := sweep.NewMemo(0)
		for _, id := range ids {
			got := renderExperiment(t, id,
				Options{Quick: true, Seed: 1, Parallelism: par, Memo: shared})
			if got != baseline[id] {
				t.Errorf("%s with shared memo at parallelism %d differs:\n--- memo off ---\n%s\n--- shared memo ---\n%s",
					id, par, baseline[id], got)
			}
		}
		// fig1 contributes 2 distinct days, fig12 another 2; fig13's days
		// are fig12's — hits, not entries.
		if n := shared.Len(); n != 4 {
			t.Errorf("parallelism %d: shared memo holds %d entries, want 4 (fig13 must reuse fig12's days)", par, n)
		}
		if h := shared.Hits(); h < 2 {
			t.Errorf("parallelism %d: shared memo served %d hits, want >= 2 (fig13's two days)", par, h)
		}
	}
}
