package exp

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestPolicyGridShape checks the ablation grid itself: 6 pipelines x 3
// apps in row-major order, every cell populated from a real dynamics
// run, and the four renderers laid out one row per pipeline.
func TestPolicyGridShape(t *testing.T) {
	r, err := RunPolicyGrid(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 3 || len(r.Cells) != 18 {
		t.Fatalf("grid = %d apps x %d cells, want 3 x 18", len(r.Apps), len(r.Cells))
	}
	pols := r.policies()
	if len(pols) != 6 {
		t.Fatalf("distinct policies = %d (%v), want 6", len(pols), pols)
	}
	// The paper baseline leads the grid under its legacy bare fingerprint;
	// tracker-backed pipelines carry their tracker and explicit params.
	if pols[0] != "free-first" {
		t.Fatalf("first policy = %q, want the free-first baseline", pols[0])
	}
	trackerBacked := 0
	for _, p := range pols[1:] {
		if strings.Contains(p, "/") && strings.Contains(p, "{") {
			trackerBacked++
		}
	}
	if trackerBacked != 5 {
		t.Fatalf("tracker-backed fingerprints = %d of %v, want 5", trackerBacked, pols[1:])
	}
	// age-threshold is ablated under both trackers — the tracker axis.
	for _, want := range []string{"age-threshold/idle-age", "age-threshold/access-count"} {
		found := false
		for _, p := range pols {
			if strings.HasPrefix(p, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("grid is missing the %s pipeline", want)
		}
	}

	for i, c := range r.Cells {
		// Row-major (policy, app): app cycles fastest.
		if c.App != r.Apps[i%len(r.Apps)] || c.Policy != pols[i/len(r.Apps)] {
			t.Fatalf("cell %d = (%s, %s), want (%s, %s)", i, c.Policy, c.App,
				pols[i/len(r.Apps)], r.Apps[i%len(r.Apps)])
		}
		if c.OfflinedGB <= 0 || c.OfflinedGB > 4 {
			t.Errorf("cell %d: off-lined %vGB outside (0, movable 4GB]", i, c.OfflinedGB)
		}
		if c.OnOffEvents <= 0 {
			t.Errorf("cell %d (%s, %s): no on/off-lining events; the cell measured nothing", i, c.Policy, c.App)
		}
		// Every pipeline here is informed (none picks blind like Fig. 8's
		// random baseline), so migration failures must stay rare even with
		// failProb 0.9 and kernel-page leaks enabled.
		if c.Failures < 0 {
			t.Errorf("cell %d: negative failure count %d", i, c.Failures)
		}
	}
	// The policy axis has to matter: the idle-age gate makes age-threshold
	// trade off-lined capacity for stability against the greedy free-first
	// baseline on every app.
	for a := range r.Apps {
		free, aged := r.Cells[a], r.Cells[len(r.Apps)+a]
		if aged.OfflinedGB >= free.OfflinedGB {
			t.Errorf("%s: age-threshold off-lined %vGB >= free-first %vGB; the pipeline is not ablating anything",
				r.Apps[a], aged.OfflinedGB, free.OfflinedGB)
		}
	}

	for _, tab := range []*struct {
		name string
		t    interface {
			Rows() int
			Label(int) string
		}
	}{
		{"offlined", r.OfflinedTable()},
		{"failures", r.FailureTable()},
		{"churn", r.ChurnTable()},
		{"overhead", r.OverheadTable()},
	} {
		if tab.t.Rows() != 6 {
			t.Errorf("%s table has %d rows, want 6", tab.name, tab.t.Rows())
		}
		if tab.t.Label(0) != "free-first" {
			t.Errorf("%s table row 0 = %q", tab.name, tab.t.Label(0))
		}
	}
}

// TestPolicyGridDeterminismAcrossParallelism: the grid must be exactly
// reproducible whether its 18 cells run sequentially or race across 8
// sweep workers — the property memoization and shard merging rely on.
func TestPolicyGridDeterminismAcrossParallelism(t *testing.T) {
	base, err := RunPolicyGrid(Options{Quick: true, Seed: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := json.Marshal(base)
	for _, par := range []int{2, 8} {
		got, err := RunPolicyGrid(Options{Quick: true, Seed: 1, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if gb, _ := json.Marshal(got); string(gb) != string(bb) {
			t.Errorf("parallelism %d diverged from sequential:\n%s\nvs\n%s", par, gb, bb)
		}
	}
}

// TestPolicyGridShardCells: polgrid is a first-class Shardable — an
// 18-cell probe, disjoint cell ranges whose artifacts replay into the
// byte-identical full report, exactly like the paper matrices.
func TestPolicyGridShardCells(t *testing.T) {
	n, err := CellCount("polgrid", Options{Quick: true, Seed: 1})
	if err != nil || n != 18 {
		t.Fatalf("CellCount(polgrid) = %d, %v; want 18", n, err)
	}

	fn := Registry()["polgrid"]
	base := Options{Quick: true, Seed: 1}
	var arts []CellArtifact
	for _, rng := range [][2]int{{0, 10}, {10, 18}} {
		o := base
		o.CellRange = &CellRange{Lo: rng[0], Hi: rng[1]}
		o.CellSink = func(a CellArtifact) { arts = append(arts, a.Compact()) }
		var rd *RangeDone
		if _, _, err := fn(o); !errors.As(err, &rd) || rd.Total != 18 {
			t.Fatalf("range %v: err = %v, want RangeDone{Total: 18}", rng, err)
		}
	}
	if len(arts) != 18 {
		t.Fatalf("collected %d artifacts from 18 cells", len(arts))
	}

	plain, _, err := fn(base)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.CellSource = NewCellSet(arts)
	replayed := 0
	o.CellSink = func(CellArtifact) { replayed++ }
	fromCells, _, err := fn(o)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed run re-offered %d cells to the sink", replayed)
	}
	pb, _ := json.Marshal(plain)
	rb, _ := json.Marshal(fromCells)
	if string(pb) != string(rb) {
		t.Fatalf("replayed polgrid report diverged:\n%s\nvs\n%s", rb, pb)
	}
}
