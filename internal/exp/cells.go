package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// This file is the sweep layer's decomposition seam: a matrix-shaped
// experiment can run just a contiguous slice of its cells (a "shard"),
// export every memoized cell it computed as a content-keyed artifact,
// and later replay those artifacts instead of re-simulating. Three rules
// make the decomposition sound:
//
//  1. Every expensive cell already flows through exp/memo.go under a
//     deterministic config-fingerprint key, and is a pure function of
//     that key (the TestMemoDeterminism invariant). Serving a stored
//     value is therefore indistinguishable from recomputing it.
//  2. Artifact values are canonical JSON and are verified on both ends:
//     an artifact that does not survive a strict decode + re-marshal
//     round trip is dropped, and the cell is recomputed. Replay can
//     degrade to recomputation, never to different bytes.
//  3. Only experiments whose body is ONE top-level sweep with memoized
//     heavy work are shardable (see Shardable); everything after the
//     sweep is cheap rendering that the merge re-runs locally.

// CellRange selects a contiguous slice [Lo, Hi) of a sweep's cell
// indices. The empty range [0, 0) is the count probe: the sweep returns
// *RangeDone without running any cell.
type CellRange struct {
	Lo, Hi int
}

// RangeDone is the sentinel a sweep-driven experiment returns (as its
// error) when Options.CellRange was set: the requested cells ran (or,
// for the empty probe range, none did) and the experiment body must not
// render results, because slots outside the range are zero. Total is
// the sweep's full cell count.
type RangeDone struct {
	Total int
}

func (r *RangeDone) Error() string {
	return fmt.Sprintf("exp: cell range complete (sweep of %d cells)", r.Total)
}

// CellArtifact is one memoized sweep cell's canonical JSON value under
// its memo fingerprint key — the durable, transportable unit of
// completed work that shard execution and the job store exchange.
type CellArtifact struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// compactValue normalizes an artifact value's whitespace so values that
// crossed an indenting encoder (the HTTP layer pretty-prints) compare
// equal to locally marshaled ones. Invalid JSON is returned unchanged;
// the round-trip verification at decode time rejects it.
func compactValue(raw json.RawMessage) json.RawMessage {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return buf.Bytes()
}

// Compact returns the artifact with its value in canonical compact form.
func (a CellArtifact) Compact() CellArtifact {
	return CellArtifact{Key: a.Key, Value: compactValue(a.Value)}
}

// CellSet is a replay source of completed cell artifacts, keyed by memo
// fingerprint. Lookups are read-only and safe for concurrent use after
// construction.
type CellSet struct {
	vals map[string]json.RawMessage
}

// NewCellSet builds a set from artifacts, compacting every value. The
// first artifact wins a duplicated key (values are deterministic, so
// duplicates agree whenever both are valid).
func NewCellSet(arts []CellArtifact) *CellSet {
	s := &CellSet{vals: make(map[string]json.RawMessage, len(arts))}
	for _, a := range arts {
		if _, ok := s.vals[a.Key]; !ok {
			s.vals[a.Key] = compactValue(a.Value)
		}
	}
	return s
}

// Len reports the number of stored artifacts. A nil set has zero.
func (s *CellSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.vals)
}

// Artifacts returns the set's contents sorted by key.
func (s *CellSet) Artifacts() []CellArtifact {
	if s == nil {
		return nil
	}
	out := make([]CellArtifact, 0, len(s.vals))
	for k, v := range s.vals {
		out = append(out, CellArtifact{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the raw value for key, if present.
func (s *CellSet) lookup(key string) (json.RawMessage, bool) {
	if s == nil {
		return nil, false
	}
	v, ok := s.vals[key]
	return v, ok
}

// cellFromSet decodes the artifact stored under key into T, verifying
// exactness: the decode is strict (unknown fields rejected) and the
// decoded value must re-marshal to the stored bytes. Any mismatch —
// schema drift, truncation, a value that lost information in transit —
// reads as a miss, so the caller recomputes instead of diverging.
func cellFromSet[T any](s *CellSet, key string) (T, bool) {
	var zero T
	raw, ok := s.lookup(key)
	if !ok {
		return zero, false
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var v T
	if err := dec.Decode(&v); err != nil {
		return zero, false
	}
	back, err := json.Marshal(v)
	if err != nil || !bytes.Equal(back, raw) {
		return zero, false
	}
	return v, true
}

// encodeCell marshals a cell value to its canonical artifact bytes,
// verifying the same round trip in the other direction: a value that
// cannot be reproduced from its own JSON (NaN/Inf, information outside
// exported fields) yields ok=false and no artifact — the cell simply
// stays non-resumable rather than resuming wrong.
func encodeCell[T any](v T) (json.RawMessage, bool) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	if _, ok := cellFromSet[T](&CellSet{vals: map[string]json.RawMessage{"x": raw}}, "x"); !ok {
		return nil, false
	}
	return raw, true
}

// shardableIDs lists the registry experiments whose body is a single
// top-level sweep of memoized cells — the shape cell-range execution
// requires. Excluded by construction: ablations (four sequential
// sweeps), ramzzz/swapthr (unmemoized cells), fig2/tab1/hwcost (no
// sweep). Aliases of a shardable run are shardable.
var shardableIDs = map[string]bool{
	"fig1": true, "fig3": true,
	"fig6": true, "fig7": true, "tab2": true, // block-size sweep
	"fig8": true,
	"fig9": true, "fig10": true, "fig11": true, // energy matrix
	"fig12": true, "fig13": true,
	"tab3": true, "tail": true,
	"polgrid": true, // policy-pipeline ablation grid
}

// Shardable reports whether the experiment id supports cell-range
// execution (Options.CellRange / a job spec's cells field).
func Shardable(id string) bool { return shardableIDs[id] }

// ShardableExperiments lists every shardable id, sorted.
func ShardableExperiments() []string {
	ids := make([]string, 0, len(shardableIDs))
	for id := range shardableIDs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CellCount reports how many sweep cells the experiment would run under
// o, without simulating any of them: it invokes the runner with the
// empty probe range, which returns before the first cell. Only the
// experiment's cheap pre-sweep setup executes.
func CellCount(id string, o Options) (int, error) {
	fn := Registry()[id]
	if fn == nil {
		return 0, fmt.Errorf("exp: unknown experiment %q", id)
	}
	o.CellRange = &CellRange{}
	o.CellSource, o.CellSink = nil, nil
	_, _, err := fn(o)
	var rd *RangeDone
	if errors.As(err, &rd) {
		return rd.Total, nil
	}
	if err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("exp: experiment %q ignored the probe range; not shardable", id)
}
