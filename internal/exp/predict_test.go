package exp

import (
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"greendimm/internal/sweep"
)

// TestPredictKeysMatchesExecution pins the prediction to reality: the
// keys PredictKeys reports for a range must be exactly the keys a real
// run of that range consults (observed through the memo it populates).
func TestPredictKeysMatchesExecution(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	n, err := CellCount("fig8", o)
	if err != nil || n < 2 {
		t.Fatalf("CellCount(fig8) = %d, %v", n, err)
	}
	pred, err := PredictKeys("fig8", o, 0, n)
	if err != nil {
		t.Fatalf("PredictKeys: %v", err)
	}
	if len(pred) == 0 {
		t.Fatal("no keys predicted for a memoized sweep")
	}
	codec := MemoCodec()
	for _, k := range pred {
		if !codec.Exportable(k) {
			t.Fatalf("predicted key %q is not in an exportable family", k)
		}
	}

	run := o
	m := sweep.NewMemo(0)
	m.SetCodec(codec)
	run.Memo = m
	run.CellRange = &CellRange{Lo: 0, Hi: n}
	_, _, err = Registry()["fig8"](run)
	var rd *RangeDone
	if !errors.As(err, &rd) {
		t.Fatalf("range run = %v, want RangeDone", err)
	}
	actual := m.Keys() // sorted
	predSorted := append([]string(nil), pred...)
	sort.Strings(predSorted)
	if !reflect.DeepEqual(predSorted, actual) {
		t.Fatalf("prediction diverged from execution:\n predicted %v\n consulted %v", predSorted, actual)
	}
}

func TestPredictKeysSubrangeAndDeterminism(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	n, err := CellCount("fig8", o)
	if err != nil {
		t.Fatal(err)
	}
	all, err := PredictKeys("fig8", o, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	again, err := PredictKeys("fig8", o, 0, n)
	if err != nil || !reflect.DeepEqual(all, again) {
		t.Fatalf("prediction is not deterministic:\n %v\n %v (%v)", all, again, err)
	}
	sub, err := PredictKeys("fig8", o, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) == 0 || len(sub) >= len(all) {
		t.Fatalf("subrange predicted %d keys, full range %d; want a proper non-empty subset", len(sub), len(all))
	}
	allSet := map[string]bool{}
	for _, k := range all {
		allSet[k] = true
	}
	for _, k := range sub {
		if !allSet[k] {
			t.Fatalf("subrange key %q not in the full-range prediction", k)
		}
	}
}

func TestPredictKeysErrors(t *testing.T) {
	if _, err := PredictKeys("nope", Options{}, 0, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// hwcost has no sweep: it ignores the probe range, which must read as
	// "not shardable", not as an empty prediction.
	if _, err := PredictKeys("hwcost", Options{Quick: true}, 0, 1); err == nil || !strings.Contains(err.Error(), "not shardable") {
		t.Fatalf("PredictKeys(hwcost) = %v, want a not-shardable error", err)
	}
}

func TestMemoCodecRoundTrip(t *testing.T) {
	c := MemoCodec()
	key := "tailsvc|test|daemon=true|seed=1"
	cell := tailCell{Stats: tailStats{Percentile95: 1.5, Percentile99: 2.25}, Events: 42}
	raw, ok := c.Encode(key, cell)
	if !ok {
		t.Fatal("Encode declined a valid cell")
	}
	v, ok := c.Decode(key, raw)
	if !ok {
		t.Fatal("Decode rejected its own encoding")
	}
	if v.(tailCell) != cell {
		t.Fatalf("round trip changed the value: %+v != %+v", v, cell)
	}
	// Encoding must be canonical: re-encoding the decoded value is
	// byte-identical (the warm-peer exchange relies on this).
	raw2, ok := c.Encode(key, v)
	if !ok || string(raw2) != string(raw) {
		t.Fatalf("re-encode diverged: %s vs %s", raw2, raw)
	}
}

func TestMemoCodecRejects(t *testing.T) {
	c := MemoCodec()
	if c.Exportable("mystery|x") {
		t.Fatal("unknown family reported exportable")
	}
	if _, ok := c.Encode("mystery|x", 1); ok {
		t.Fatal("unknown family encoded")
	}
	if _, ok := c.Decode("mystery|x", json.RawMessage(`1`)); ok {
		t.Fatal("unknown family decoded")
	}
	// Wrong dynamic type for the family.
	if _, ok := c.Encode("tailsvc|x", TimingRun{}); ok {
		t.Fatal("type-mismatched value encoded")
	}
	// Schema drift: an extra field must fail the strict decode.
	good, _ := c.Encode("tailsvc|x", tailCell{Events: 1})
	drifted := json.RawMessage(strings.Replace(string(good), "{", `{"Extra":1,`, 1))
	if _, ok := c.Decode("tailsvc|x", drifted); ok {
		t.Fatal("drifted entry decoded; want strict rejection")
	}
	// Corruption: not JSON at all.
	if _, ok := c.Decode("tailsvc|x", json.RawMessage(`{"Events":`)); ok {
		t.Fatal("corrupt entry decoded")
	}
}
