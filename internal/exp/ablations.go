package exp

import (
	"fmt"

	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/power"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// This file holds the ablation studies DESIGN.md §5 calls out: the design
// knobs the paper fixes (neighbor rule, thresholds, group granularity,
// DPD residual, rank idle timeouts), each isolated and swept.

// AblationResult aggregates every ablation table.
type AblationResult struct {
	NeighborRule *report.Table
	Thresholds   *report.Table
	GroupSize    *report.Table
	DPDResidual  *report.Table
	IdlePolicy   *report.Table
}

// RunAblations executes all ablations.
func RunAblations(opts Options) (AblationResult, error) {
	var res AblationResult
	var err error
	if res.NeighborRule, err = ablateNeighborRule(opts); err != nil {
		return res, fmt.Errorf("neighbor rule: %w", err)
	}
	if res.Thresholds, err = ablateThresholds(opts); err != nil {
		return res, fmt.Errorf("thresholds: %w", err)
	}
	if res.GroupSize, err = ablateGroupSize(opts); err != nil {
		return res, fmt.Errorf("group size: %w", err)
	}
	if res.DPDResidual, err = ablateDPDResidual(); err != nil {
		return res, fmt.Errorf("dpd residual: %w", err)
	}
	if res.IdlePolicy, err = ablateIdlePolicy(opts); err != nil {
		return res, fmt.Errorf("idle policy: %w", err)
	}
	return res, nil
}

// dynAblation runs the gcc dynamics scenario with a config mutator.
func dynAblation(opts Options, mutate func(*core.Config)) (*core.Daemon, error) {
	prof, ok := workload.ByName("403.gcc")
	if !ok {
		return nil, fmt.Errorf("exp: gcc missing")
	}
	const totalBytes = 64 << 30
	eng := opts.newEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: totalBytes, PageBytes: 1 << 20,
		KernelReservedBytes: 1 << 30, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	hp, err := newHotplug(mem, opts.Seed)
	if err != nil {
		return nil, err
	}
	dcfg := core.Config{Period: sim.Second, Seed: opts.Seed}
	mutate(&dcfg)
	groups := 64
	if dcfg.GroupBytes != 0 {
		groups = int(totalBytes / dcfg.GroupBytes)
	}
	ctrl := core.NewRegisterController(eng, groups)
	daemon, err := core.New(eng, mem, hp, ctrl, dcfg)
	if err != nil {
		return nil, err
	}
	fd, err := workload.NewFootprintDriver(eng, mem, prof, 50, 120*sim.Second, 500*sim.Millisecond)
	if err != nil {
		return nil, err
	}
	fd.Start()
	daemon.Start()
	eng.RunUntil(120 * sim.Second)
	return daemon, nil
}

func newHotplug(mem *kernel.Mem, seed int64) (hpManager, error) {
	return newHotplugBlock(mem, 128<<20, seed)
}

// ablateNeighborRule: the §6.1 sense-amp-sharing constraint costs some
// deep-power-down coverage for the same off-lined capacity.
func ablateNeighborRule(opts Options) (*report.Table, error) {
	rules := []bool{false, true}
	daemons := make([]*core.Daemon, len(rules))
	err := opts.sweepCells(len(rules), func(i int, h Hooks) error {
		rule := rules[i]
		d, err := dynAblation(opts.cellOptions(h), func(c *core.Config) { c.NeighborRule = rule })
		if err != nil {
			return err
		}
		daemons[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: neighbor rule (gcc, 120s)",
		"offlined GB", "avg DPD frac", "groups entered")
	for i, rule := range rules {
		d := daemons[i]
		label := "without rule"
		if rule {
			label = "with rule"
		}
		t.AddRow(label,
			float64(d.OfflinedBytes())/float64(1<<30),
			d.AvgDPDFraction(),
			float64(d.Stats().GroupsEntered))
	}
	return t, nil
}

// ablateThresholds: off_thr trades off-lined capacity against the risk of
// memory pressure (the paper observed thrashing below 10%).
func ablateThresholds(opts Options) (*report.Table, error) {
	thrs := []float64{0.05, 0.10, 0.20}
	daemons := make([]*core.Daemon, len(thrs))
	err := opts.sweepCells(len(thrs), func(i int, h Hooks) error {
		thr := thrs[i]
		d, err := dynAblation(opts.cellOptions(h), func(c *core.Config) {
			c.OffThr = thr
			c.OnThr = thr - 0.02
		})
		if err != nil {
			return err
		}
		daemons[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: off_thr reserve (gcc, 120s)",
		"offlined GB", "onlines", "events")
	for i, thr := range thrs {
		d := daemons[i]
		st := d.Stats()
		t.AddRow(fmt.Sprintf("off_thr %.0f%%", thr*100),
			float64(d.OfflinedBytes())/float64(1<<30),
			float64(st.Onlines),
			float64(st.Offlines+st.Onlines))
	}
	return t, nil
}

// ablateGroupSize: finer sub-array groups turn the same off-lined bytes
// into more deep-power-down coverage (less quantization loss).
func ablateGroupSize(opts Options) (*report.Table, error) {
	sizes := []int64{512, 1024, 2048}
	daemons := make([]*core.Daemon, len(sizes))
	err := opts.sweepCells(len(sizes), func(i int, h Hooks) error {
		groupMB := sizes[i]
		d, err := dynAblation(opts.cellOptions(h), func(c *core.Config) { c.GroupBytes = groupMB << 20 })
		if err != nil {
			return err
		}
		daemons[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: sub-array group size (gcc, 120s)",
		"groups", "avg DPD frac")
	for i, groupMB := range sizes {
		t.AddRow(fmt.Sprintf("%dMB", groupMB), float64(daemons[i].Groups()), daemons[i].AvgDPDFraction())
	}
	return t, nil
}

// ablateDPDResidual: how sensitive are the savings to the power-gate
// leakage + spare-row floor assumption?
func ablateDPDResidual() (*report.Table, error) {
	org := dram.Org64GB()
	t := report.NewTable("Ablation: deep power-down residual (64GB, 70% of groups down)",
		"idle W", "vs 0% residual")
	base := 0.0
	for i, residual := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		model, err := power.NewModel(org)
		if err != nil {
			return nil, err
		}
		model.DPDResidual = residual
		ranks := float64(org.TotalRanks())
		w := model.RankBackgroundW(dram.StatePrechargeStandby, 0.7)*ranks +
			model.RefEnergyJ(0.7)/model.Timing.TREFI.Seconds()*ranks +
			model.DIMMStaticTotalW()
		if i == 0 {
			base = w
		}
		t.AddRow(fmt.Sprintf("%.0f%%", residual*100), w, w/base)
	}
	return t, nil
}

// ablateIdlePolicy sweeps the controller's rank idle timeouts under a
// small-footprint contiguous workload — the §1 tension: aggressive
// management sleeps more but pays more wake-ups and latency.
func ablateIdlePolicy(opts Options) (*report.Table, error) {
	type pol struct {
		name   string
		pd, sr sim.Time
	}
	pols := []pol{
		{"aggressive (0.2us/4us)", 200 * sim.Nanosecond, 4 * sim.Microsecond},
		{"default (1us/64us)", sim.Microsecond, 64 * sim.Microsecond},
		{"conservative (10us/1ms)", 10 * sim.Microsecond, sim.Millisecond},
	}
	type polOut struct {
		srFrac  float64
		wakeups int64
		avgLat  float64
	}
	outs := make([]polOut, len(pols))
	err := opts.sweepCells(len(pols), func(i int, h Hooks) error {
		p := pols[i]
		cellOpts := opts.cellOptions(h)
		eng := cellOpts.newEngine()
		ctrl, err := mc.New(eng, mc.Config{
			Org: dram.Org64GB(), Timing: dram.DDR4_2133(),
			Interleaved: false, LowPower: true,
			PowerDownAfter: p.pd, SelfRefreshAfter: p.sr,
		})
		if err != nil {
			return err
		}
		g := sim.NewRNG(opts.Seed + 9)
		footprint := uint64(256 << 20)
		horizon := opts.horizon(20 * sim.Millisecond)
		var totalLat sim.Time
		var n int64
		var tick func()
		tick = func() {
			a := (g.Uint64() % footprint) &^ 63
			_ = ctrl.Submit(a, false, func(l sim.Time) {
				totalLat += l
				n++
			})
			if eng.Now() < horizon {
				eng.After(3*sim.Microsecond, tick)
			}
		}
		eng.At(0, tick)
		eng.Run()
		ctrl.Finalize()
		avg := 0.0
		if n > 0 {
			avg = (totalLat / sim.Time(n)).Nanoseconds()
		}
		outs[i] = polOut{srFrac: ctrl.SelfRefreshFraction(), wakeups: ctrl.Stats().WakeUps, avgLat: avg}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: rank idle policy (contiguous mapping, sparse traffic)",
		"sr frac", "wakeups", "avg lat ns")
	for i, p := range pols {
		t.AddRow(p.name, outs[i].srFrac, float64(outs[i].wakeups), outs[i].avgLat)
	}
	return t, nil
}

// String renders every ablation table.
func (r AblationResult) String() string {
	return r.NeighborRule.String() + "\n" + r.Thresholds.String() + "\n" +
		r.GroupSize.String() + "\n" + r.DPDResidual.String() + "\n" + r.IdlePolicy.String()
}
