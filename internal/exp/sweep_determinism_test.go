package exp

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"greendimm/internal/sim"
	"greendimm/internal/sweep"
)

// renderExperiment runs a registry experiment and renders everything it
// returns (tables and series) to one string, the way the CLI and daemon
// do, so comparisons see every byte a client would.
func renderExperiment(t *testing.T, id string, opts Options) string {
	t.Helper()
	fn := Registry()[id]
	if fn == nil {
		t.Fatalf("unknown experiment %q", id)
	}
	tables, series, err := fn(opts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, tab := range tables {
		b.WriteString(tab.String())
		b.WriteByte('\n')
	}
	for _, s := range series {
		fmt.Fprintf(&b, "  %-10s %s\n", s.Name, s.Sparkline(64))
	}
	return b.String()
}

// TestSweepDeterminism is the parallel-sweep acceptance check: for a
// spread of converted runners, a run at Parallelism 8 must render
// byte-identical output to the serial walk at the same seed.
func TestSweepDeterminism(t *testing.T) {
	for _, id := range []string{"fig3", "ramzzz", "swapthr", "tab3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := renderExperiment(t, id, Options{Quick: true, Seed: 1, Parallelism: 1})
			parallel := renderExperiment(t, id, Options{Quick: true, Seed: 1, Parallelism: 8})
			if serial != parallel {
				t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestSweepStopPropagation: a Stop predicate that fires immediately must
// abort a converted runner with sweep.ErrStopped before any cell runs.
func TestSweepStopPropagation(t *testing.T) {
	for _, par := range []int{1, 8} {
		opts := Options{Quick: true, Seed: 1, Parallelism: par,
			Hooks: Hooks{Stop: func() bool { return true }}}
		_, err := RunRAMZzz(opts)
		if !errors.Is(err, sweep.ErrStopped) {
			t.Errorf("Parallelism %d: err = %v, want sweep.ErrStopped", par, err)
		}
	}
}

// TestSweepObserveSerialized: under a parallel sweep, a caller's Observe
// hook must not need its own locking — sweepCells serializes the calls.
// The unsynchronized counter below is the assertion: `go test -race`
// (scripts/check.sh runs this file under it) flags any violation.
func TestSweepObserveSerialized(t *testing.T) {
	n := 0 // deliberately unsynchronized
	opts := Options{Quick: true, Seed: 1, Parallelism: 8,
		Hooks: Hooks{Observe: func(_ *sim.Engine) { n++ }}}
	if _, err := RunRAMZzz(opts); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Observe saw %d engines, want 4 (one per cell)", n)
	}
}
