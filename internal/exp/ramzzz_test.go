package exp

import "testing"

func TestRAMZzzIntegration(t *testing.T) {
	r, err := RunRAMZzz(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	contigBase, err := r.Find(false, false)
	if err != nil {
		t.Fatal(err)
	}
	contigRZ, err := r.Find(false, true)
	if err != nil {
		t.Fatal(err)
	}
	intlvRZ, err := r.Find(true, true)
	if err != nil {
		t.Fatal(err)
	}
	// Consolidation must migrate pages and raise self-refresh residency
	// under the contiguous mapping...
	if contigRZ.MigratedPages == 0 {
		t.Error("RAMZzz migrated nothing under contiguous mapping")
	}
	if contigRZ.SRFraction <= contigBase.SRFraction {
		t.Errorf("RAMZzz did not raise SR residency: %.3f vs %.3f",
			contigRZ.SRFraction, contigBase.SRFraction)
	}
	// ...and be inert under interleaving (the paper's criticism).
	if intlvRZ.MigratedPages != 0 {
		t.Errorf("RAMZzz migrated %d pages under interleaving", intlvRZ.MigratedPages)
	}
	if intlvRZ.SRFraction > 0.10 {
		t.Errorf("interleaved SR residency = %.3f, want ~0", intlvRZ.SRFraction)
	}
	t.Logf("\n%s", r.Table())
}
