package exp

import "testing"

func TestSwapThresholdCliff(t *testing.T) {
	r, err := RunSwapThreshold(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's cliff: below 10% the bursts outrun on-lining and swap
	// storms appear; at >= 10% reserve, swapping (nearly) vanishes.
	tight := r.Rows[0] // 2%
	safe := r.Rows[2]  // 10%
	if tight.SwapOutGB <= 0 {
		t.Error("no swap traffic at a 2% reserve under bursts")
	}
	if safe.SwapOutGB > tight.SwapOutGB/4 {
		t.Errorf("10%% reserve swapped %.1fGB, want far less than 2%%'s %.1fGB",
			safe.SwapOutGB, tight.SwapOutGB)
	}
	// Monotone non-increasing swap traffic with growing reserve.
	for i := 1; i < 4; i++ {
		if r.Rows[i].SwapOutGB > r.Rows[i-1].SwapOutGB+0.6 {
			t.Errorf("swap traffic rose with a bigger reserve: %+v", r.Rows)
		}
	}
	if tight.SlowdownPct <= safe.SlowdownPct {
		t.Error("tight reserve should slow the workload more")
	}
	// The adaptive policy starts from the same 2% base but sizes its
	// reserve to the bursts: (nearly) no swapping, yet more capacity
	// off-lined than the blunt 20% reserve.
	adaptive := r.Rows[4]
	if !adaptive.Adaptive {
		t.Fatal("row 4 should be the adaptive policy")
	}
	if adaptive.SwapOutGB > tight.SwapOutGB/10 {
		t.Errorf("adaptive policy swapped %.1fGB, want ~0 (fixed 2%%: %.1fGB)",
			adaptive.SwapOutGB, tight.SwapOutGB)
	}
	if adaptive.OfflinedGB < r.Rows[3].OfflinedGB {
		t.Errorf("adaptive off-lined %.1fGB, less than fixed-20%%'s %.1fGB",
			adaptive.OfflinedGB, r.Rows[3].OfflinedGB)
	}
	t.Logf("\n%s", r.Table())
}
