package exp

import (
	"sort"

	"greendimm/internal/report"
)

// Runner regenerates one experiment: its tables plus optional plotted
// series. Runners wrap the typed RunXxx entry points with the headline
// extras the CLI prints, so cmd/greendimm and the greendimmd daemon serve
// byte-identical tables from one registry.
type Runner func(Options) ([]*report.Table, []report.Series, error)

// Registry maps experiment ids (fig1..fig13, tab1..tab3, ablations, tail,
// ramzzz, hwcost, swapthr) to runners. Aliases share one run: fig6, fig7
// and tab2 come out of the block-size sweep; fig9, fig10 and fig11 out of
// the energy matrix.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunFig1(o)
			if err != nil {
				return nil, nil, err
			}
			extra := report.NewTable("", "value")
			extra.AddRow("ksm reduction %", r.KSMReductionFrac()*100)
			return []*report.Table{r.Table(), extra}, r.Series(), nil
		},
		"fig2": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunFig2(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, nil, nil
		},
		"fig3": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunFig3(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, nil, nil
		},
		"fig6": blockSweep, "fig7": blockSweep, "tab2": blockSweep,
		"fig8": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunFig8(o)
			if err != nil {
				return nil, nil, err
			}
			extra := report.NewTable("", "value")
			extra.AddRow("failure reduction %", r.ReductionFrac()*100)
			return []*report.Table{r.Table(), extra}, nil, nil
		},
		"fig9": energyMatrix, "fig10": energyMatrix, "fig11": energyMatrix,
		"fig12": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunFig12(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, r.Series(), nil
		},
		"fig13": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunFig13(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, nil, nil
		},
		"tab1": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunTable1(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, nil, nil
		},
		"tab3": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunTable3(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, nil, nil
		},
		"ablations": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunAblations(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.NeighborRule, r.Thresholds, r.GroupSize, r.DPDResidual, r.IdlePolicy}, nil, nil
		},
		"tail": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunTailLatency(o)
			if err != nil {
				return nil, nil, err
			}
			extra := report.NewTable("", "value")
			extra.AddRow("worst p99 inflation %", r.MaxP99InflationPct())
			return []*report.Table{r.Table(), extra}, nil, nil
		},
		"ramzzz": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunRAMZzz(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, nil, nil
		},
		"hwcost": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunHWCost()
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Register, r.Area}, nil, nil
		},
		"swapthr": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunSwapThreshold(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.Table()}, nil, nil
		},
		"polgrid": func(o Options) ([]*report.Table, []report.Series, error) {
			r, err := RunPolicyGrid(o)
			if err != nil {
				return nil, nil, err
			}
			return []*report.Table{r.OfflinedTable(), r.FailureTable(), r.ChurnTable(), r.OverheadTable()}, nil, nil
		},
	}
}

func blockSweep(o Options) ([]*report.Table, []report.Series, error) {
	r, err := RunBlockSizeSweep(o)
	if err != nil {
		return nil, nil, err
	}
	return []*report.Table{r.Fig6Table(), r.Fig7Table(), r.Table2()}, nil, nil
}

func energyMatrix(o Options) ([]*report.Table, []report.Series, error) {
	r, err := RunEnergyMatrix(o)
	if err != nil {
		return nil, nil, err
	}
	spec, dc := r.MeanDRAMSavingsPct()
	extra := report.NewTable("Headline numbers", "value")
	extra.AddRow("mean DRAM savings, SPEC %", spec)
	extra.AddRow("mean DRAM savings, datacenter %", dc)
	extra.AddRow("max execution overhead %", r.MaxOverheadPct())
	return []*report.Table{r.Fig9Table(), r.Fig10Table(), r.Fig11Table(), extra}, nil, nil
}

// KnownExperiments reports every registry id, sorted.
func KnownExperiments() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CanonicalExperiments is the alias-deduplicated id list "-experiment
// all" iterates: one id per underlying run.
func CanonicalExperiments() []string {
	return []string{"fig1", "fig2", "fig3", "fig6", "fig8", "fig9", "fig12", "fig13",
		"tab1", "tab3", "ablations", "tail", "ramzzz", "hwcost", "swapthr", "polgrid"}
}
