package exp

import (
	"testing"

	"greendimm/internal/core"
	"greendimm/internal/dram"
	"greendimm/internal/hotplug"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// TestNoAccessEverReachesPoweredDownDRAM is the end-to-end safety
// invariant behind GreenDIMM's zero-wake-up claim: with a live workload
// whose footprint grows and shrinks, a real allocator, hotplug churn and
// the daemon flipping sub-array groups, no memory request may ever target
// a deep-powered-down group. mc.Controller.Submit panics if one does, so
// surviving the run IS the assertion.
func TestNoAccessEverReachesPoweredDownDRAM(t *testing.T) {
	org := dram.Org64GB()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes:          org.TotalBytes(),
		PageBytes:           1 << 20,
		KernelReservedBytes: 1 << 30,
		Seed:                3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: org, Timing: dram.DDR4_2133(), Interleaved: true, LowPower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hotplug.New(mem, hotplug.Config{BlockBytes: 512 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := core.New(eng, mem, hp, ctrl, core.Config{
		Period:            20 * sim.Millisecond, // compressed for the test window
		MaxOfflinePerTick: 16,
		GroupBytes:        1 << 30,
		OnThr:             0.08,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// An oscillating footprint forces on-lining into previously
	// powered-down groups while traffic keeps flowing.
	prof := workload.Profile{
		Name: "churn", MPKI: 30, FootprintMB: 4096, IPC: 1, MLP: 4,
		ReadFrac: 0.7, SeqProb: 0.5,
		Phases: []workload.PhasePoint{
			{Progress: 0, Frac: 0.2}, {Progress: 0.25, Frac: 1},
			{Progress: 0.5, Frac: 0.2}, {Progress: 0.75, Frac: 1},
			{Progress: 1, Frac: 0.2},
		},
	}
	fd, err := workload.NewFootprintDriver(eng, mem, prof, 60, 400*sim.Millisecond, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewRNG(11)
	var traffic func()
	traffic = func() {
		if n := mem.OwnerPageCount(60); n > 0 {
			pfn := mem.OwnerPage(60, g.Int63n(n))
			off := uint64(g.Int63n(mem.PageBytes()/64) * 64)
			// Submit panics if the address maps to a powered-down group.
			_ = ctrl.Submit(uint64(pfn)*uint64(mem.PageBytes())+off, g.Bool(0.3), nil)
		}
		if eng.Now() < 400*sim.Millisecond {
			eng.After(2*sim.Microsecond, traffic)
		}
	}
	fd.Start()
	daemon.Start()
	eng.At(0, traffic)
	eng.RunUntil(400 * sim.Millisecond)
	ctrl.Finalize()

	ds := daemon.Stats()
	if ds.Offlines == 0 {
		t.Fatal("daemon never off-lined; the invariant was not exercised")
	}
	if ds.Onlines == 0 {
		t.Fatal("daemon never on-lined; growth into powered-down memory was not exercised")
	}
	if ds.GroupsEntered == 0 || ds.GroupsExited == 0 {
		t.Fatalf("groups never cycled: %+v", ds)
	}
	st := ctrl.Stats()
	if st.Reads+st.Writes == 0 {
		t.Fatal("no traffic flowed")
	}
	t.Logf("survived: %d reads/writes, %d offlines, %d onlines, %d group entries, %d exits",
		st.Reads+st.Writes, ds.Offlines, ds.Onlines, ds.GroupsEntered, ds.GroupsExited)
}
