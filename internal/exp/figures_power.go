package exp

import (
	"fmt"
	"math"

	"greendimm/internal/dram"
	"greendimm/internal/power"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// --- Figure 2: DRAM idle and busy power vs capacity ---

// Fig2Row is one capacity point.
type Fig2Row struct {
	CapacityGB int
	IdleW      float64
	BusyW      float64
	BGFraction float64 // background share of busy power
}

// Fig2Result is the capacity sweep.
type Fig2Result struct {
	Rows []Fig2Row
	// MeasuredBusyGBps is the aggregate bandwidth of the 16-copy mcf
	// load, measured once with the detailed simulator and applied at
	// every capacity (the paper does the same: one fixed stressor).
	MeasuredBusyGBps float64
}

// RunFig2 reproduces Fig. 2: idle power from the standby+refresh model,
// busy power with 16 copies of mcf. The stressor's bandwidth is measured
// on the detailed simulator at 64GB and held constant across capacities.
func RunFig2(opts Options) (Fig2Result, error) {
	prof, ok := workload.ByName("429.mcf")
	if !ok {
		return Fig2Result{}, fmt.Errorf("exp: mcf profile missing")
	}
	run, err := memoTiming(opts, timingConfig{
		prof:        prof,
		interleaved: true,
		copies:      8, // the multiprogrammed stressor
		accesses:    opts.accessBudget(40000),
		seed:        opts.Seed + 11,
		hooks:       opts.Hooks,
	})
	if err != nil {
		return Fig2Result{}, err
	}
	lines := run.Activity.Reads + run.Activity.Writes
	gbps := float64(lines*64) / run.Runtime.Seconds() / float64(1<<30)
	res := Fig2Result{MeasuredBusyGBps: gbps}

	for _, gb := range []int{64, 128, 256, 512, 1024} {
		org, err := dram.OrgWithCapacity(gb)
		if err != nil {
			return Fig2Result{}, err
		}
		model, err := power.NewModel(org)
		if err != nil {
			return Fig2Result{}, err
		}
		row := Fig2Row{CapacityGB: gb, IdleW: model.IdleSystemDRAMW()}
		window := sim.Second
		ranks := int64(org.TotalRanks())
		busyLines := int64(gbps * float64(1<<30) / 64)
		a := power.Activity{
			Window:      window,
			ActiveT:     window * sim.Time(ranks),
			Refreshes:   int64(window/model.Timing.TREFI) * ranks,
			Activations: busyLines / 2,
			Reads:       busyLines * 3 / 4,
			Writes:      busyLines / 4,
		}
		b, err := model.FromActivity(a)
		if err != nil {
			return Fig2Result{}, err
		}
		row.BusyW = b.TotalW()
		row.BGFraction = b.BackgroundFraction()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders Fig. 2.
func (r Fig2Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 2: DRAM idle/busy power vs capacity (busy = mcf stressor, %.1f GB/s)", r.MeasuredBusyGBps),
		"idle W", "busy W", "background frac")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%dGB", row.CapacityGB), row.IdleW, row.BusyW, row.BGFraction)
	}
	return t
}

// --- Figure 3: the impact of memory interleaving ---

// Fig3Row is one application's interleaving comparison.
type Fig3Row struct {
	App           string
	Speedup       float64 // T(w/o intlv) / T(w/ intlv)  (Fig. 3a)
	SRFracIntlv   float64 // self-refresh residency w/ interleaving (Fig. 3b)
	SRFracContig  float64 // and without
	EnergyIntlvJ  float64 // DRAM energy (Fig. 3c)
	EnergyContigJ float64
	SystemIntlvJ  float64
	SystemContigJ float64
}

// Fig3Result covers the high-MPKI SPEC2006 set.
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 reproduces Fig. 3 with the high-MPKI SPEC CPU2006 programs.
// Each program is one sweep cell (its two mappings run back-to-back on
// the cell's own engines); rows come back in SPEC2006 order.
func RunFig3(opts Options) (Fig3Result, error) {
	sys := power.DefaultSystem()
	model, err := power.NewModel(dram.Org64GB())
	if err != nil {
		return Fig3Result{}, err
	}
	var profs []workload.Profile
	for _, prof := range workload.SPEC2006() {
		if prof.HighMPKI() {
			profs = append(profs, prof)
		}
	}
	rows := make([]Fig3Row, len(profs))
	err = opts.sweepCells(len(profs), func(i int, h Hooks) error {
		prof := profs[i]
		var runs [2]TimingRun
		for j, intlv := range []bool{true, false} {
			var err error
			runs[j], err = memoTiming(opts, timingConfig{
				prof:        prof,
				interleaved: intlv,
				copies:      copiesFor(prof),
				accesses:    opts.accessBudget(30000),
				seed:        opts.Seed + 21,
				hooks:       h,
			})
			if err != nil {
				return err
			}
		}
		wi, wo := runs[0], runs[1]
		dramWi, err := dramPowerW(model, wi.Activity)
		if err != nil {
			return err
		}
		dramWo, err := dramPowerW(model, wo.Activity)
		if err != nil {
			return err
		}
		rows[i] = Fig3Row{
			App:           prof.Name,
			Speedup:       float64(wo.Runtime) / float64(wi.Runtime),
			SRFracIntlv:   wi.SelfRefFrac,
			SRFracContig:  wo.SelfRefFrac,
			EnergyIntlvJ:  dramWi * wi.Runtime.Seconds(),
			EnergyContigJ: dramWo * wo.Runtime.Seconds(),
			SystemIntlvJ:  sys.SystemW(wi.CPUUtil, dramWi) * wi.Runtime.Seconds(),
			SystemContigJ: sys.SystemW(wo.CPUUtil, dramWo) * wo.Runtime.Seconds(),
		}
		return nil
	})
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{Rows: rows}, nil
}

// Table renders Fig. 3's three panels as columns.
func (r Fig3Result) Table() *report.Table {
	t := report.NewTable("Figure 3: impact of memory interleaving (high-MPKI SPEC2006)",
		"speedup", "sr-frac w/", "sr-frac w/o", "dram J w/", "dram J w/o", "sys J w/", "sys J w/o")
	for _, row := range r.Rows {
		t.AddRow(row.App, row.Speedup, row.SRFracIntlv, row.SRFracContig,
			row.EnergyIntlvJ, row.EnergyContigJ, row.SystemIntlvJ, row.SystemContigJ)
	}
	return t
}

// MeanSpeedup reports the geometric-mean interleaving speedup.
func (r Fig3Result) MeanSpeedup() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	prod := 1.0
	for _, row := range r.Rows {
		prod *= row.Speedup
	}
	return math.Pow(prod, 1/float64(len(r.Rows)))
}

// MeanSRFrac reports the average self-refresh residency without
// interleaving (the paper's 54% figure).
func (r Fig3Result) MeanSRFrac() (withIntlv, withoutIntlv float64) {
	if len(r.Rows) == 0 {
		return 0, 0
	}
	for _, row := range r.Rows {
		withIntlv += row.SRFracIntlv
		withoutIntlv += row.SRFracContig
	}
	n := float64(len(r.Rows))
	return withIntlv / n, withoutIntlv / n
}
