package exp

import (
	"errors"
	"sort"
	"strconv"
	"testing"

	"greendimm/internal/obs"
)

// TestSweepCellsTraceAndProgress: a traced sweep records exactly one
// "cell" span per cell (Arg = the cell index), serializes Progress with
// a strictly increasing done count, and strips both hooks from the
// hooks handed to cells so nested sweeps cannot double-count.
func TestSweepCellsTraceAndProgress(t *testing.T) {
	const n = 12
	tr := obs.NewTrace(0)
	var dones []int
	var totals []int
	o := Options{
		Parallelism: 4,
		Hooks: Hooks{
			Trace: tr,
			Progress: func(done, total int, cellSeconds float64) {
				// Serialized by sweepCells: no mutex needed here.
				dones = append(dones, done)
				totals = append(totals, total)
				if cellSeconds < 0 {
					t.Errorf("cellSeconds = %g, want >= 0", cellSeconds)
				}
			},
		},
	}
	err := o.sweepCells(n, func(i int, h Hooks) error {
		if h.Trace != nil || h.Progress != nil {
			t.Errorf("cell %d received Trace/Progress hooks; they belong to the sweep level", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var args []int
	for _, sp := range tr.View().Spans {
		if sp.Name != "cell" {
			t.Errorf("unexpected span %q", sp.Name)
			continue
		}
		idx, err := strconv.Atoi(sp.Arg)
		if err != nil {
			t.Errorf("cell span arg %q is not an index", sp.Arg)
			continue
		}
		args = append(args, idx)
	}
	sort.Ints(args)
	if len(args) != n {
		t.Fatalf("cell spans = %d, want %d", len(args), n)
	}
	for i, a := range args {
		if a != i {
			t.Fatalf("cell span indices = %v, want 0..%d each exactly once", args, n-1)
		}
	}

	if len(dones) != n {
		t.Fatalf("progress calls = %d, want %d", len(dones), n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("progress done[%d] = %d, want %d (strictly increasing)", i, d, i+1)
		}
		if totals[i] != n {
			t.Errorf("progress total[%d] = %d, want %d", i, totals[i], n)
		}
	}
}

// TestSweepCellsTraceRecordsCellErrors: a failing cell's span carries
// the error, and the untraced path stays untouched (nil hooks cost no
// instrumentation and no spans).
func TestSweepCellsTraceRecordsCellErrors(t *testing.T) {
	tr := obs.NewTrace(0)
	boom := errors.New("cell exploded")
	o := Options{Parallelism: 1, Hooks: Hooks{Trace: tr}}
	err := o.sweepCells(3, func(i int, h Hooks) error {
		if i == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cell error", err)
	}
	found := false
	for _, sp := range tr.View().Spans {
		if sp.Name == "cell" && sp.Arg == "1" && sp.Err == boom.Error() {
			found = true
		}
	}
	if !found {
		t.Errorf("no cell span carries the error: %+v", tr.View().Spans)
	}

	// Hook-free sweeps record nothing anywhere (nil trace is a no-op).
	if err := (Options{Parallelism: 2}).sweepCells(4, func(int, Hooks) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestTraceDoesNotChangeResults pins the determinism contract for the
// observability hooks: a fully instrumented run renders byte-identical
// output to a bare one.
func TestTraceDoesNotChangeResults(t *testing.T) {
	run := func(h Hooks) string {
		t.Helper()
		tables, series, err := Registry()["ramzzz"](Options{Quick: true, Seed: 1, Parallelism: 2, Hooks: h})
		if err != nil {
			t.Fatal(err)
		}
		var out string
		for _, tb := range tables {
			out += tb.String()
		}
		for _, s := range series {
			out += s.Sparkline(40)
		}
		return out
	}
	bare := run(Hooks{})
	traced := run(Hooks{Trace: obs.NewTrace(0), Progress: func(int, int, float64) {}})
	if bare != traced {
		t.Error("instrumented run differs from bare run; hooks must not influence results")
	}
}
