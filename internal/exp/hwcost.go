package exp

import (
	"fmt"

	"greendimm/internal/dram"
	"greendimm/internal/power"
	"greendimm/internal/report"
)

// HWCostResult reproduces the paper's §4.3 hardware-cost argument:
// PASR's refresh-enable register grows with the rank count (16 bits per
// rank), while GreenDIMM needs a fixed 64 bits no matter how much memory
// is plugged in, because one bit controls a sub-array group across every
// channel, rank and bank. Plus the CACTI-style die-area estimate for the
// power-gate switches.
type HWCostResult struct {
	Register *report.Table
	Area     *report.Table
}

// RunHWCost computes both tables.
func RunHWCost() (HWCostResult, error) {
	reg := report.NewTable("Control-register width: PASR vs GreenDIMM (bits)",
		"ranks", "pasr bits", "greendimm bits")
	for _, gb := range []int{64, 128, 256, 512, 1024} {
		org, err := dram.OrgWithCapacity(gb)
		if err != nil {
			return HWCostResult{}, err
		}
		pasr := dram.NewPASRRegister(org)
		gd := dram.NewSubArrayGroupRegister(org)
		reg.AddRow(fmt.Sprintf("%dGB", gb),
			float64(org.TotalRanks()), float64(pasr.Bits()), float64(gd.Bits()))
	}

	cost := power.DefaultDPDCost()
	if err := cost.Validate(); err != nil {
		return HWCostResult{}, err
	}
	area := report.NewTable("Sub-array deep power-down die cost (paper §4.3)", "value")
	area.AddRow("switch area per sub-array (um^2)", cost.SwitchAreaUm2)
	area.AddRow("switch area fraction of die (%)", cost.SwitchAreaFraction()*100)
	area.AddRow("total incl. control logic (%)", cost.TotalAreaFraction()*100)
	area.AddRowStrings("exit latency", cost.ExitLatency.String())
	return HWCostResult{Register: reg, Area: area}, nil
}
