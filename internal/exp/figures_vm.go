package exp

import (
	"greendimm/internal/dram"
	"greendimm/internal/power"
	"greendimm/internal/report"
	"greendimm/internal/sim"
)

// --- Figure 1: memory capacity used by the server for 24 hours ---

// Fig1Result holds the two utilization series (w/ and w/o KSM).
type Fig1Result struct {
	NoKSM   VMDayResult
	WithKSM VMDayResult
}

// RunFig1 reproduces Fig. 1. The two 24-hour traces (with and without
// KSM) are independent sweep cells.
func RunFig1(opts Options) (Fig1Result, error) {
	horizon := opts.horizon(24 * sim.Hour)
	days, err := runVMDayPair(opts, func(withKSM bool) vmDayConfig {
		return vmDayConfig{withKSM: withKSM, horizon: horizon, seed: opts.Seed + 1}
	})
	if err != nil {
		return Fig1Result{}, err
	}
	return Fig1Result{NoKSM: days[0], WithKSM: days[1]}, nil
}

// Table renders the Fig. 1 summary rows.
func (r Fig1Result) Table() *report.Table {
	t := report.NewTable("Figure 1: memory capacity used by VMs over 24h (fraction of 256GB)",
		"avg", "min", "max")
	t.AddRow("w/o ksm", r.NoKSM.AvgUsedFrac, r.NoKSM.MinUsedFrac, r.NoKSM.MaxUsedFrac)
	t.AddRow("w/ ksm", r.WithKSM.AvgUsedFrac, r.WithKSM.MinUsedFrac, r.WithKSM.MaxUsedFrac)
	return t
}

// Series returns the plotted time series, in fraction of capacity.
func (r Fig1Result) Series() []report.Series {
	mk := func(name string, res VMDayResult) report.Series {
		s := report.Series{Name: name}
		for _, smp := range res.Samples {
			s.Add(smp.At.Seconds()/3600, smp.UsedFrac)
		}
		return s
	}
	return []report.Series{mk("w/o ksm", r.NoKSM), mk("w/ ksm", r.WithKSM)}
}

// KSMReductionFrac reports the average fraction of used memory KSM
// reclaims (paper: ~24%).
func (r Fig1Result) KSMReductionFrac() float64 {
	if r.NoKSM.AvgUsedFrac == 0 {
		return 0
	}
	return 1 - r.WithKSM.AvgUsedFrac/r.NoKSM.AvgUsedFrac
}

// --- Table 1: DRAM power vs utilization of memory capacity ---

// Table1Result holds power at each utilization point.
type Table1Result struct {
	UtilPct []int
	PowerW  []float64
}

// RunTable1 reproduces Table 1: without any power management, DRAM power
// is flat in allocated capacity — unused sub-arrays still refresh and leak.
func RunTable1(opts Options) (Table1Result, error) {
	org := dram.Org256GB()
	model, err := power.NewModel(org)
	if err != nil {
		return Table1Result{}, err
	}
	res := Table1Result{}
	window := sim.Second
	ranks := int64(org.TotalRanks())
	for _, pct := range []int{10, 25, 50, 75, 100} {
		// The measurement load (a light stressor) is the same at every
		// utilization; only the allocated capacity differs — and no term
		// of the un-managed power model depends on it.
		lines := int64(8 << 30 / 64)
		a := power.Activity{
			Window:      window,
			ActiveT:     window * sim.Time(ranks),
			Refreshes:   int64(window/model.Timing.TREFI) * ranks,
			Activations: lines / 2,
			Reads:       lines * 3 / 4,
			Writes:      lines / 4,
		}
		b, err := model.FromActivity(a)
		if err != nil {
			return Table1Result{}, err
		}
		res.UtilPct = append(res.UtilPct, pct)
		res.PowerW = append(res.PowerW, b.TotalW())
	}
	return res, nil
}

// Table renders Table 1.
func (r Table1Result) Table() *report.Table {
	t := report.NewTable("Table 1: DRAM power vs utilization of memory capacity (256GB)",
		"10%", "25%", "50%", "75%", "100%")
	t.AddRow("power (W)", r.PowerW...)
	return t
}

// --- Figure 12: off-lined blocks over the VM trace ---

// Fig12Result summarizes GreenDIMM's off-lining under the VM trace.
type Fig12Result struct {
	NoKSM   VMDayResult
	WithKSM VMDayResult
	Blocks  int // total 1GB blocks (256)
}

// RunFig12 reproduces Fig. 12 (and §6.3's block-count statistics). The
// two traced days run as independent sweep cells.
func RunFig12(opts Options) (Fig12Result, error) {
	horizon := opts.horizon(24 * sim.Hour)
	days, err := runVMDayPair(opts, func(withKSM bool) vmDayConfig {
		return vmDayConfig{withGreenDIMM: true, withKSM: withKSM, horizon: horizon, seed: opts.Seed + 2}
	})
	if err != nil {
		return Fig12Result{}, err
	}
	return Fig12Result{NoKSM: days[0], WithKSM: days[1], Blocks: 256}, nil
}

// Table renders the Fig. 12 summary.
func (r Fig12Result) Table() *report.Table {
	t := report.NewTable("Figure 12: off-lined 1GB blocks over the 24h VM trace (of 256)",
		"avg", "min", "max", "bg power cut %")
	t.AddRow("greendimm", r.NoKSM.AvgOffBlocks, float64(r.NoKSM.MinOffBlocks),
		float64(r.NoKSM.MaxOffBlocks), r.NoKSM.BGReductionPct)
	t.AddRow("greendimm+ksm", r.WithKSM.AvgOffBlocks, float64(r.WithKSM.MinOffBlocks),
		float64(r.WithKSM.MaxOffBlocks), r.WithKSM.BGReductionPct)
	return t
}

// Series returns the off-lined-block time series.
func (r Fig12Result) Series() []report.Series {
	mk := func(name string, res VMDayResult) report.Series {
		s := report.Series{Name: name}
		for _, smp := range res.Samples {
			s.Add(smp.At.Seconds()/3600, float64(smp.OfflinedBlocks))
		}
		return s
	}
	return []report.Series{mk("w/o ksm", r.NoKSM), mk("w/ ksm", r.WithKSM)}
}

// --- Figure 13: DRAM and system power vs capacity ---

// Fig13Row is one capacity point.
type Fig13Row struct {
	CapacityGB        int
	BaseDRAMW         float64 // no power management
	GDDRAMW           float64 // GreenDIMM
	GDKSMDRAMW        float64 // GreenDIMM + KSM
	BaseSystemW       float64
	GDSystemW         float64
	GDKSMSystemW      float64
	GDReductionPct    struct{ DRAM, System float64 }
	GDKSMReductionPct struct{ DRAM, System float64 }
}

// Fig13Result extrapolates the measured 256GB day across capacities with
// the paper's "simple linear model": the same VM load on larger memory.
type Fig13Result struct {
	Rows []Fig13Row
}

// RunFig13 reproduces Fig. 13.
func RunFig13(opts Options) (Fig13Result, error) {
	// The paper derives Fig. 13 from the same measured 256GB day as
	// Fig. 12; use the same trace seed.
	horizon := opts.horizon(24 * sim.Hour)
	days, err := runVMDayPair(opts, func(withKSM bool) vmDayConfig {
		return vmDayConfig{withGreenDIMM: true, withKSM: withKSM, horizon: horizon, seed: opts.Seed + 2}
	})
	if err != nil {
		return Fig13Result{}, err
	}
	day, dayKSM := days[0], days[1]
	// The paper's "simple linear model" scales the measured 256GB day to
	// larger machines with utilization held as a FRACTION of capacity (a
	// proportionally larger consolidated load), so the off-linable share
	// is constant and the growing reductions come from background power's
	// growing share.
	usedFrac := day.AvgUsedFrac
	usedFracKSM := dayKSM.AvgUsedFrac
	cpu := day.AvgCPUUtil
	sys := power.DefaultSystem()

	var res Fig13Result
	for _, gb := range []int{256, 512, 768, 1024} {
		org, err := dram.OrgWithCapacity(gb)
		if err != nil {
			return Fig13Result{}, err
		}
		model, err := power.NewModel(org)
		if err != nil {
			return Fig13Result{}, err
		}
		row := Fig13Row{CapacityGB: gb}
		cap := int64(gb) << 30
		dpd := dpdFracFor(cap, int64(usedFrac*float64(cap)))
		dpdKSM := dpdFracFor(cap, int64(usedFracKSM*float64(cap)))
		row.BaseDRAMW, row.BaseSystemW = vmPowerW(model, sys, 0, cpu)
		row.GDDRAMW, row.GDSystemW = vmPowerW(model, sys, dpd, cpu)
		row.GDKSMDRAMW, row.GDKSMSystemW = vmPowerW(model, sys, dpdKSM, cpu)
		row.GDReductionPct.DRAM = (1 - row.GDDRAMW/row.BaseDRAMW) * 100
		row.GDReductionPct.System = (1 - row.GDSystemW/row.BaseSystemW) * 100
		row.GDKSMReductionPct.DRAM = (1 - row.GDKSMDRAMW/row.BaseDRAMW) * 100
		row.GDKSMReductionPct.System = (1 - row.GDKSMSystemW/row.BaseSystemW) * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// dpdFracFor estimates the deep-power-down fraction GreenDIMM sustains at
// a given capacity and average used bytes: everything beyond the used
// memory and the 10% reserve, quantized to 1GB groups.
func dpdFracFor(capBytes, usedBytes int64) float64 {
	reserve := capBytes / 10
	free := capBytes - usedBytes - reserve
	if free < 0 {
		free = 0
	}
	groups := free / (1 << 30)
	return float64(groups) / float64(capBytes/(1<<30))
}

// Table renders the Fig. 13 grid.
func (r Fig13Result) Table() *report.Table {
	t := report.NewTable("Figure 13: DRAM / system power vs capacity (W; reductions vs no management)",
		"base dram", "gd dram", "gd+ksm dram", "base sys", "gd sys", "gd+ksm sys",
		"gd dram %", "gd sys %", "gd+ksm dram %", "gd+ksm sys %")
	for _, row := range r.Rows {
		t.AddRow(
			formatGB(row.CapacityGB),
			row.BaseDRAMW, row.GDDRAMW, row.GDKSMDRAMW,
			row.BaseSystemW, row.GDSystemW, row.GDKSMSystemW,
			row.GDReductionPct.DRAM, row.GDReductionPct.System,
			row.GDKSMReductionPct.DRAM, row.GDKSMReductionPct.System,
		)
	}
	return t
}

func formatGB(gb int) string {
	if gb >= 1024 {
		return "1TB"
	}
	switch gb {
	case 256:
		return "256GB"
	case 512:
		return "512GB"
	case 768:
		return "768GB"
	}
	return "?"
}
