package exp

import (
	"fmt"

	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/ramzzz"
	"greendimm/internal/report"
	"greendimm/internal/sim"
)

// RAMZzzRow is one mapping's measurement.
type RAMZzzRow struct {
	Interleaved   bool
	WithDaemon    bool
	SRFraction    float64
	MigratedPages int64
}

// RAMZzzResult validates the implemented RAMZzz daemon (internal/ramzzz)
// against the analytic model the Fig. 9 comparison uses: on a contiguous
// mapping with a footprint scattered over several ranks, migrations
// consolidate data and raise self-refresh residency; on an interleaved
// mapping the daemon is inert — the paper's core criticism.
type RAMZzzResult struct {
	Rows []RAMZzzRow
}

// RunRAMZzz executes the four-cell comparison, one sweep cell per
// (mapping, daemon) combination.
func RunRAMZzz(opts Options) (RAMZzzResult, error) {
	rows := make([]RAMZzzRow, 4)
	err := opts.sweepCells(len(rows), func(i int, h Hooks) error {
		interleaved, withDaemon := i/2 == 1, i%2 == 1
		row, err := runRAMZzzCell(interleaved, withDaemon, opts.cellOptions(h))
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return RAMZzzResult{}, err
	}
	return RAMZzzResult{Rows: rows}, nil
}

func runRAMZzzCell(interleaved, withDaemon bool, opts Options) (RAMZzzRow, error) {
	org := dram.Org64GB()
	eng := opts.newEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: org.TotalBytes(), PageBytes: 1 << 20})
	if err != nil {
		return RAMZzzRow{}, err
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: org, Timing: dram.DDR4_2133(), Interleaved: interleaved, LowPower: true,
	})
	if err != nil {
		return RAMZzzRow{}, err
	}
	// A hot 2GB owner in (half of) rank 0 plus cold remnants scattered
	// over ranks 1 and 2 — the fragmentation RAMZzz repairs by packing
	// the remnants into rank 0's free space.
	if _, err := mem.AllocPages(2048, true, 10); err != nil {
		return RAMZzzRow{}, err
	}
	for o := uint32(11); o < 13; o++ {
		if _, err := mem.AllocPages(4096, true, o); err != nil {
			return RAMZzzRow{}, err
		}
	}
	mem.FreeOwnerPages(11, 4096-256)
	mem.FreeOwnerPages(12, 4096-256)

	var daemon *ramzzz.Daemon
	if withDaemon {
		cfg := ramzzz.DefaultConfig()
		cfg.Epoch = opts.horizon(200*sim.Millisecond) / 8
		daemon, err = ramzzz.New(eng, mem, ctrl.Mapper(), ctrl, cfg)
		if err != nil {
			return RAMZzzRow{}, err
		}
		daemon.Start()
	}
	// Mostly-hot traffic to owner 10, with a trickle (3%) to the cold
	// remnants: enough to keep their ranks bouncing out of self-refresh
	// until RAMZzz relocates the data (the cold-rank problem RAMZzz
	// solves).
	g := sim.NewRNG(opts.Seed + 77)
	horizon := opts.horizon(200 * sim.Millisecond)
	var tick func()
	tick = func() {
		owner := uint32(10)
		if g.Bool(0.03) {
			owner = uint32(11 + g.Intn(2))
		}
		n := mem.OwnerPageCount(owner)
		pfn := mem.OwnerPage(owner, g.Int63n(n))
		off := uint64(g.Int63n(mem.PageBytes()/64) * 64)
		_ = ctrl.Submit(uint64(pfn)*uint64(mem.PageBytes())+off, false, nil)
		if eng.Now() < horizon {
			eng.After(1*sim.Microsecond, tick)
		}
	}
	eng.At(0, tick)
	eng.RunUntil(horizon)
	ctrl.Finalize()

	row := RAMZzzRow{Interleaved: interleaved, WithDaemon: withDaemon,
		SRFraction: ctrl.SelfRefreshFraction()}
	if daemon != nil {
		row.MigratedPages = daemon.Stats().MigratedPages
	}
	return row, nil
}

// Table renders the comparison.
func (r RAMZzzResult) Table() *report.Table {
	t := report.NewTable("RAMZzz (implemented) vs mapping: self-refresh residency",
		"sr frac", "migrated pages")
	for _, row := range r.Rows {
		label := "contiguous"
		if row.Interleaved {
			label = "interleaved"
		}
		if row.WithDaemon {
			label += " + ramzzz"
		}
		t.AddRow(label, row.SRFraction, float64(row.MigratedPages))
	}
	return t
}

// Find returns the row for a configuration.
func (r RAMZzzResult) Find(interleaved, withDaemon bool) (RAMZzzRow, error) {
	for _, row := range r.Rows {
		if row.Interleaved == interleaved && row.WithDaemon == withDaemon {
			return row, nil
		}
	}
	return RAMZzzRow{}, fmt.Errorf("exp: missing RAMZzz cell")
}
