// Package exp contains one entry point per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each RunXxx
// function assembles the substrates — engine, kernel memory, hotplug,
// memory controller or register controller, KSM, VM trace, workloads, the
// GreenDIMM daemon — runs the experiment, and returns a result struct
// whose Table/Series methods render the same rows the paper reports.
//
// Two simulation scales are used (DESIGN.md §3): detailed request-level
// runs for anything timing-sensitive, and 1-second epoch runs for the
// 24-hour VM-trace studies. Every experiment takes Options so tests can
// run a Quick variant with identical structure.
package exp

import "greendimm/internal/sim"

// Options scales an experiment.
type Options struct {
	// Quick shrinks horizons and access budgets for CI/tests; results
	// keep their shape but carry more noise.
	Quick bool
	Seed  int64
}

// accessBudget picks the per-core number of DRAM accesses for detailed
// runs.
func (o Options) accessBudget(full int64) int64 {
	if o.Quick {
		return full / 10
	}
	return full
}

// horizon picks a simulated duration.
func (o Options) horizon(full sim.Time) sim.Time {
	if o.Quick {
		return full / 8
	}
	return full
}
