// Package exp contains one entry point per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each RunXxx
// function assembles the substrates — engine, kernel memory, hotplug,
// memory controller or register controller, KSM, VM trace, workloads, the
// GreenDIMM daemon — runs the experiment, and returns a result struct
// whose Table/Series methods render the same rows the paper reports.
//
// Two simulation scales are used (DESIGN.md §3): detailed request-level
// runs for anything timing-sensitive, and 1-second epoch runs for the
// 24-hour VM-trace studies. Every experiment takes Options so tests can
// run a Quick variant with identical structure.
//
// Every matrix-shaped experiment walks its workload x mapping x policy
// cells through Options.sweepCells (internal/sweep): cells are
// share-nothing deterministic simulations seeded independently of
// execution order, results land at their input index, and reports are
// rendered only after the sweep joins — so a run at Parallelism 8 is
// byte-identical to the serial run. See DESIGN.md §"Parallel sweeps".
package exp

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"greendimm/internal/obs"
	"greendimm/internal/sim"
	"greendimm/internal/sweep"
)

// Options scales an experiment.
type Options struct {
	// Quick shrinks horizons and access budgets for CI/tests; results
	// keep their shape but carry more noise.
	Quick bool
	Seed  int64

	// Parallelism bounds how many of an experiment's independent
	// simulation cells run concurrently: 0 selects runtime.NumCPU(), 1
	// forces the serial walk. Pure execution knob — results are
	// byte-identical at every setting — so, like Hooks, it is excluded
	// from serialized job specs.
	Parallelism int `json:"-"`

	// Hooks carries run instrumentation (cancellation, engine
	// observation). It never influences results — only whether and how
	// far a run proceeds — so it is excluded from serialized job specs.
	Hooks Hooks `json:"-"`

	// Memo, when non-nil, caches baseline sweep cells (timing runs,
	// dynamics runs, VM-trace days, tail services) across experiments by
	// config fingerprint, so matrix experiments that share a cell —
	// fig12/fig13 run the identical traced day, the energy matrix
	// re-runs standalone figures' timing configs — compute it once.
	// Pure execution knob: every cell is a deterministic function of its
	// key, so memoized output is byte-identical to recomputed output at
	// any parallelism (TestMemoDeterminism pins this). Excluded from
	// serialized job specs like the other execution knobs.
	Memo *sweep.Memo `json:"-"`

	// CellRange, when non-nil, restricts the experiment's single
	// top-level sweep to cells [Lo, Hi): the sweep runs only that slice
	// (mapping slice indices back to true cell indices, so seeds and
	// memo keys are unchanged) and then returns *RangeDone instead of
	// nil, aborting the experiment before rendering — output slots
	// outside the range are zero and must not be read. The empty range
	// [0, 0) is a count probe: no cell runs at all. Only Shardable
	// experiments support it. Unlike the knobs above, a range changes
	// the result (artifacts, not a report), so the serialized job spec
	// carries it separately (server.JobSpec.Cells).
	CellRange *CellRange `json:"-"`

	// CellSource, when non-nil, replays previously completed cells:
	// every memoized cell whose fingerprint key is present decodes from
	// the set instead of simulating. Replay is verified (strict decode +
	// re-marshal must reproduce the stored bytes); failures fall through
	// to recomputation, so a source can only change execution time,
	// never bytes. Pure execution knob.
	CellSource *CellSet `json:"-"`

	// CellSink, when non-nil, receives one CellArtifact per memoized
	// cell the run resolves — computed or served from Memo, but not
	// replayed from CellSource (those are already journaled). Called
	// from concurrent sweep cells when Parallelism != 1, so it must be
	// safe for concurrent use. Pure observation: it must not influence
	// results.
	CellSink func(CellArtifact) `json:"-"`

	// KeyProbe, when non-nil, switches the run into key-prediction mode
	// (PredictKeys): every memoized() call reports its key to the probe
	// and returns a zero value without simulating, and sweep cells
	// swallow the errors and panics that zero-value intermediates cause
	// downstream. Probe output is a best-effort heuristic for placement
	// and prefetch — a cell whose body fails early may report only a
	// prefix of its keys — and must never feed results. Called from
	// concurrent cells when Parallelism != 1.
	KeyProbe func(key string) `json:"-"`
}

// Hooks lets a caller — the greendimmd daemon, a test harness — observe
// and interrupt an experiment without perturbing its determinism.
type Hooks struct {
	// Stop, when non-nil, is polled from every engine's event loop (at
	// sim.DefaultStopCheckEvery stride) and between sweep cells.
	// Returning true aborts the run early; the experiment then returns
	// an error (sweep-driven runners) or partial, meaningless results,
	// so callers that installed Stop must discard them (greendimmd
	// checks its job context and reports the job canceled). Because a
	// parallel sweep's engines poll the predicate from concurrent event
	// loops, it must be safe to call concurrently with itself whenever
	// Parallelism != 1.
	Stop func() bool
	// Observe, when non-nil, sees every engine the experiment creates —
	// used to meter simulated time against wall time. Calls are always
	// serialized (sweepCells wraps Observe in a mutex before handing
	// hooks to concurrent cells), but under a parallel sweep their order
	// follows cell scheduling, not a fixed creation order.
	Observe func(*sim.Engine)
	// Limiter, when non-nil, is a shared machine-wide budget for sweep
	// workers beyond each sweep's first. greendimmd installs one limiter
	// across all jobs so per-job parallelism and the worker pool compose
	// instead of oversubscribing workers x NumCPU goroutines. The same
	// limiter also gates shard workers when EngineShards is set, so
	// parallelism x shards stays inside the one budget.
	Limiter *sweep.Limiter
	// EngineShards, when >= 2, enables channel-sharded execution inside
	// every engine the experiment creates (sim.SetShards): per-channel
	// event lanes fan out to worker goroutines where the memory
	// controller's lookahead allows, with results byte-identical to the
	// sequential engine. 0 and 1 run sequentially. Experiments without a
	// memory controller register no lookahead and ignore the setting.
	// Pure execution knob — excluded from job specs and memo keys like
	// Parallelism. Extra shard workers draw on Limiter when present, so
	// a job at Parallelism p with s shards never exceeds the machine
	// budget. See DESIGN.md §10 and AutoEngineShards.
	EngineShards int
	// Trace, when non-nil, receives one "cell" span per sweep cell (the
	// span's Arg is the cell index), timing where a job's execution
	// wall-time goes. Like every obs.Trace, recording is lock-free and a
	// nil trace costs nothing — sweepCells skips the instrumented path
	// entirely when both Trace and Progress are unset.
	Trace *obs.Trace
	// Progress, when non-nil, is called after each sweep cell completes
	// with the number of cells done so far, the sweep's total, and the
	// finished cell's wall-clock seconds. Calls are serialized (like
	// Observe) so done is strictly increasing, but under a parallel
	// sweep their order follows cell completion, not cell index. Pure
	// observation: it must not influence results.
	Progress func(done, total int, cellSeconds float64)
}

// newEngine builds an experiment engine with the hooks installed. All
// run paths in this package create engines through this (or through
// Options.newEngine) so daemon-run jobs honor deadlines.
func (h Hooks) newEngine() *sim.Engine {
	e := sim.NewEngine()
	if h.EngineShards >= 2 {
		e.SetShards(h.EngineShards)
		if h.Limiter != nil {
			e.SetShardBudget(h.Limiter.TryAcquire, h.Limiter.Release)
		}
	}
	if h.Stop != nil {
		e.SetStopCheck(0, h.Stop)
	}
	// Observe runs last so tests can adjust shard knobs (fan-out
	// threshold, worker budget) on the fully configured engine.
	if h.Observe != nil {
		h.Observe(e)
	}
	return e
}

// AutoEngineShards picks a default shard count for this host: one lane
// per channel up to the paper's four-channel organization, but none at
// all on a single-CPU host where fan-out can only add overhead.
func AutoEngineShards() int {
	n := runtime.NumCPU()
	if n < 2 {
		return 0
	}
	if n > 4 {
		n = 4
	}
	return n
}

// newEngine builds the experiment's engine with o's hooks installed.
func (o Options) newEngine() *sim.Engine { return o.Hooks.newEngine() }

// parallelism resolves the effective sweep width.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// sweepCells runs n independent simulation cells, at most o.parallelism()
// at a time, honoring o.Hooks cancellation and the shared Limiter. Each
// cell receives hooks derived from o.Hooks whose Observe callback is
// serialized, keeping the caller's single-threaded Observe contract even
// when cells create engines concurrently.
//
// Determinism contract (every caller must hold to it): a cell reads only
// shared-immutable inputs plus its index, seeds its own engines from
// constants and o.Seed, and writes only slot i of pre-sized output
// slices. Rendering happens after sweepCells returns. Under those rules
// the output is byte-identical at every parallelism level.
func (o Options) sweepCells(n int, cell func(i int, h Hooks) error) error {
	if r := o.CellRange; r != nil {
		return o.sweepRange(n, *r, cell)
	}
	if o.KeyProbe != nil {
		// Probe mode: cells run only to drive their memoized() calls, on
		// zero-value stand-in data. Whatever a cell's post-memo math does
		// with those zeros — error out, divide by zero, index past an
		// empty slice — is irrelevant and must not abort the sweep, so
		// both errors and panics are swallowed per cell.
		inner := cell
		cell = func(i int, h Hooks) error {
			defer func() { _ = recover() }()
			_ = inner(i, h)
			return nil
		}
	}
	h := o.Hooks
	if h.Observe != nil {
		var mu sync.Mutex
		observe := h.Observe
		h.Observe = func(e *sim.Engine) {
			mu.Lock()
			defer mu.Unlock()
			observe(e)
		}
	}
	// Cells get hooks without Trace/Progress: those two belong to this
	// sweep level, and forwarding them into a cell that itself sweeps
	// would double-count spans and interleave two progress totals.
	ch := h
	ch.Trace, ch.Progress = nil, nil
	run := func(i int) error { return cell(i, ch) }
	if h.Trace != nil || h.Progress != nil {
		// Per-cell observability: a "cell" span per cell and a serialized
		// completion callback. Wall-clock only — never feeds results.
		var mu sync.Mutex
		done := 0
		run = func(i int) error {
			start := time.Now()
			sp := h.Trace.StartArg("cell", strconv.Itoa(i))
			err := cell(i, ch)
			sp.EndErr(err)
			if h.Progress != nil {
				secs := time.Since(start).Seconds()
				mu.Lock()
				done++
				h.Progress(done, n, secs)
				mu.Unlock()
			}
			return err
		}
	}
	return sweep.Run(n, sweep.Config{
		Parallelism: o.parallelism(),
		Stop:        h.Stop,
		Limiter:     h.Limiter,
	}, run)
}

// sweepRange runs the [r.Lo, r.Hi) slice of an n-cell sweep through the
// normal sweepCells machinery (parallelism, limiter, stop and progress
// all apply to the slice), then returns *RangeDone so the experiment
// body aborts before rendering. The empty probe range runs nothing.
func (o Options) sweepRange(n int, r CellRange, cell func(i int, h Hooks) error) error {
	if r.Lo == 0 && r.Hi == 0 {
		return &RangeDone{Total: n}
	}
	if r.Lo < 0 || r.Hi > n || r.Lo >= r.Hi {
		return fmt.Errorf("exp: cell range [%d,%d) invalid for a sweep of %d cells", r.Lo, r.Hi, n)
	}
	sub := o
	sub.CellRange = nil
	err := sub.sweepCells(r.Hi-r.Lo, func(j int, h Hooks) error {
		return cell(r.Lo+j, h)
	})
	if err != nil {
		return err
	}
	return &RangeDone{Total: n}
}

// cellOptions returns o with the per-cell hooks substituted, for cells
// whose body calls helpers that take Options. The range is cleared: it
// belongs to the top-level sweep, and a cell's own helpers must run
// whole.
func (o Options) cellOptions(h Hooks) Options {
	o.Hooks = h
	o.CellRange = nil
	return o
}

// accessBudget picks the per-core number of DRAM accesses for detailed
// runs.
func (o Options) accessBudget(full int64) int64 {
	if o.Quick {
		return full / 10
	}
	return full
}

// horizon picks a simulated duration.
func (o Options) horizon(full sim.Time) sim.Time {
	if o.Quick {
		return full / 8
	}
	return full
}
