// Package exp contains one entry point per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each RunXxx
// function assembles the substrates — engine, kernel memory, hotplug,
// memory controller or register controller, KSM, VM trace, workloads, the
// GreenDIMM daemon — runs the experiment, and returns a result struct
// whose Table/Series methods render the same rows the paper reports.
//
// Two simulation scales are used (DESIGN.md §3): detailed request-level
// runs for anything timing-sensitive, and 1-second epoch runs for the
// 24-hour VM-trace studies. Every experiment takes Options so tests can
// run a Quick variant with identical structure.
package exp

import "greendimm/internal/sim"

// Options scales an experiment.
type Options struct {
	// Quick shrinks horizons and access budgets for CI/tests; results
	// keep their shape but carry more noise.
	Quick bool
	Seed  int64

	// Hooks carries run instrumentation (cancellation, engine
	// observation). It never influences results — only whether and how
	// far a run proceeds — so it is excluded from serialized job specs.
	Hooks Hooks `json:"-"`
}

// Hooks lets a caller — the greendimmd daemon, a test harness — observe
// and interrupt an experiment without perturbing its determinism.
type Hooks struct {
	// Stop, when non-nil, is polled from every engine's event loop (at
	// sim.DefaultStopCheckEvery stride). Returning true aborts the run
	// early; the experiment then returns partial, meaningless results,
	// so callers that installed Stop must discard them (greendimmd
	// checks its job context and reports the job canceled).
	Stop func() bool
	// Observe, when non-nil, sees every engine the experiment creates,
	// in creation order — used to meter simulated time against wall
	// time.
	Observe func(*sim.Engine)
}

// newEngine builds an experiment engine with the hooks installed. All
// run paths in this package create engines through this (or through
// Options.newEngine) so daemon-run jobs honor deadlines.
func (h Hooks) newEngine() *sim.Engine {
	e := sim.NewEngine()
	if h.Stop != nil {
		e.SetStopCheck(0, h.Stop)
	}
	if h.Observe != nil {
		h.Observe(e)
	}
	return e
}

// newEngine builds the experiment's engine with o's hooks installed.
func (o Options) newEngine() *sim.Engine { return o.Hooks.newEngine() }

// accessBudget picks the per-core number of DRAM accesses for detailed
// runs.
func (o Options) accessBudget(full int64) int64 {
	if o.Quick {
		return full / 10
	}
	return full
}

// horizon picks a simulated duration.
func (o Options) horizon(full sim.Time) sim.Time {
	if o.Quick {
		return full / 8
	}
	return full
}
