package exp

import (
	"runtime"
	"sync/atomic"
	"testing"

	"greendimm/internal/sim"
	"greendimm/internal/sweep"
)

// forceFanout makes even the tiniest fan-out window worth handing to
// workers, so quick-mode runs (whose windows are small) actually exercise
// the sharded path instead of reverting to sequential dispatch.
func forceFanout(e *sim.Engine) { e.SetShardFanout(1) }

// TestShardedDeterminism is the sharded-engine acceptance check: for
// experiments with and without a memory controller, a run with
// channel-sharded engines must render byte-identical output to the
// sequential run at the same seed, at every shard count and GOMAXPROCS.
// Each configuration runs without a shared Memo — EngineShards is
// excluded from memo keys precisely because results are identical, so
// sharing a cache here would make the comparison vacuous.
func TestShardedDeterminism(t *testing.T) {
	procs := []int{1, runtime.NumCPU()}
	if procs[1] == 1 {
		procs = procs[:1]
	}
	ids := []string{"fig1", "fig9", "fig12", "tail"}
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		// The full matrix exceeds the race detector's budget on 1-CPU
		// runners (tail alone costs minutes per render under the
		// detector); keep the two cheapest ids spanning both engine
		// flavors at maximum fan-out, where cross-shard ordering can
		// actually break.
		ids = []string{"fig1", "fig9"}
		shardCounts = []int{4}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			base := renderExperiment(t, id, Options{Quick: true, Seed: 1})
			for _, shards := range shardCounts {
				for _, p := range procs {
					prev := runtime.GOMAXPROCS(p)
					got := renderExperiment(t, id, Options{Quick: true, Seed: 1,
						Hooks: Hooks{EngineShards: shards, Observe: forceFanout}})
					runtime.GOMAXPROCS(prev)
					if got != base {
						t.Errorf("shards=%d GOMAXPROCS=%d: output differs from sequential:\n--- sequential ---\n%s\n--- sharded ---\n%s",
							shards, p, base, got)
					}
				}
			}
		})
	}
}

// TestShardedPathExercised proves the determinism comparison above is not
// vacuous: a sharded energy-matrix run must dispatch fan-out windows.
func TestShardedPathExercised(t *testing.T) {
	var engines []*sim.Engine
	opts := Options{Quick: true, Seed: 1, Parallelism: 1}
	opts.Hooks = Hooks{EngineShards: 4, Observe: func(e *sim.Engine) {
		forceFanout(e)
		engines = append(engines, e)
	}}
	renderExperiment(t, "fig9", opts)
	windows := 0
	for _, e := range engines {
		windows += e.FanoutWindows()
	}
	if windows == 0 {
		t.Fatalf("no fan-out windows across %d engines; sharded dispatch never ran", len(engines))
	}
	t.Logf("%d fan-out windows across %d engines", windows, len(engines))
}

// TestShardBudgetComposition: a job at Parallelism 8 whose engines run 4
// shard lanes must stay inside one machine-wide limiter. Sweep workers
// and shard workers draw on the same budget; the run must come out
// byte-identical to the unlimited sequential run, never hold more than
// the budget in shard slots, and return every slot by the end.
func TestShardBudgetComposition(t *testing.T) {
	const budget = 3
	lim := sweep.NewLimiter(budget)
	var held, peak atomic.Int64
	opts := Options{Quick: true, Seed: 1, Parallelism: 8}
	opts.Hooks = Hooks{
		EngineShards: 4,
		Limiter:      lim,
		// Re-install the budget with instrumented wrappers around the same
		// limiter (Observe runs after newEngine wired the plain one).
		Observe: func(e *sim.Engine) {
			forceFanout(e)
			e.SetShardBudget(func() bool {
				if !lim.TryAcquire() {
					return false
				}
				h := held.Add(1)
				for {
					p := peak.Load()
					if h <= p || peak.CompareAndSwap(p, h) {
						break
					}
				}
				return true
			}, func() {
				held.Add(-1)
				lim.Release()
			})
		},
	}
	got := renderExperiment(t, "fig9", opts)
	base := renderExperiment(t, "fig9", Options{Quick: true, Seed: 1})
	if got != base {
		t.Error("budget-limited sharded output differs from sequential")
	}
	if h := held.Load(); h != 0 {
		t.Errorf("run ended with %d shard budget slots still held", h)
	}
	if p := peak.Load(); p > budget {
		t.Errorf("held %d shard slots at peak, want <= %d", p, budget)
	}
	for i := 0; i < budget; i++ {
		if !lim.TryAcquire() {
			t.Fatalf("limiter slot %d not returned after the run", i)
		}
	}
	for i := 0; i < budget; i++ {
		lim.Release()
	}
}
