package exp

import (
	"fmt"

	"greendimm/internal/core"
	"greendimm/internal/kernel"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/workload"
)

// SwapThrRow is one off_thr setting's thrashing measurement.
type SwapThrRow struct {
	Label       string
	OffThr      float64
	Adaptive    bool
	SwapOutGB   float64
	SwapInGB    float64
	SlowdownPct float64 // estimated from swap I/O time over the run
	Onlines     int64
	OfflinedGB  float64 // time-averaged off-lined capacity
}

// SwapThrResult backs the paper's §4.2 observation: "the system
// performance dramatically degrades when the threshold is less than 10%
// because pages are frequently swapped between the main memory and the
// storage." A bursty workload against an aggressively off-lined machine
// must fault through the swap device whenever a burst outruns the
// daemon's 1-second on-lining loop; a 10% reserve absorbs the bursts.
type SwapThrResult struct {
	Rows []SwapThrRow
}

// swapCostPerPage is the modelled I/O time to move one 1MB frame to or
// from an NVMe-class swap device (~3GB/s effective).
const swapCostPerPage = 330 * sim.Microsecond

// RunSwapThreshold sweeps off_thr under a bursty footprint, plus the
// adaptive "+ alpha" policy over a tight 2% base. The five settings run
// as independent sweep cells.
func RunSwapThreshold(opts Options) (SwapThrResult, error) {
	settings := []struct {
		thr      float64
		adaptive bool
	}{
		{0.02, false}, {0.05, false}, {0.10, false}, {0.20, false}, {0.02, true},
	}
	rows := make([]SwapThrRow, len(settings))
	err := opts.sweepCells(len(settings), func(i int, h Hooks) error {
		s := settings[i]
		row, err := runSwapCell(s.thr, s.adaptive, opts.cellOptions(h))
		if err != nil {
			if s.adaptive {
				return fmt.Errorf("adaptive: %w", err)
			}
			return fmt.Errorf("off_thr %.2f: %w", s.thr, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return SwapThrResult{}, err
	}
	return SwapThrResult{Rows: rows}, nil
}

func runSwapCell(offThr float64, adaptive bool, opts Options) (SwapThrRow, error) {
	const totalBytes = 64 << 30
	const pageBytes = 1 << 20
	const owner = 80
	eng := opts.newEngine()
	mem, err := kernel.New(kernel.Config{
		TotalBytes: totalBytes, PageBytes: pageBytes,
		KernelReservedBytes: 1 << 30, Seed: opts.Seed,
	})
	if err != nil {
		return SwapThrRow{}, err
	}
	mem.ConfigureSwap(32 << 30)
	// Direct reclaim: the faulting application evicts its own coldest
	// pages, kswapd-style.
	mem.SetReclaimer(func(pages int64) bool {
		n, err := mem.SwapOutOwnerPages(owner, pages+256)
		return err == nil && n > 0
	})
	hp, err := newHotplugBlock(mem, 512<<20, opts.Seed)
	if err != nil {
		return SwapThrRow{}, err
	}
	ctrl := core.NewRegisterController(eng, 64)
	daemon, err := core.New(eng, mem, hp, ctrl, core.Config{
		Period:            sim.Second,
		OffThr:            offThr,
		OnThr:             offThr * 0.7,
		AdaptiveAlpha:     adaptive,
		MaxOfflinePerTick: 16,
		Seed:              opts.Seed,
	})
	if err != nil {
		return SwapThrRow{}, err
	}
	// Bursty footprint: 2GB base with repeated sharp 6GB spikes.
	prof := workload.Profile{
		Name: "bursty", MPKI: 20, FootprintMB: 8 << 10, IPC: 1, MLP: 4,
		ReadFrac: 0.7, SeqProb: 0.5,
		Phases: burstPhases(10, 0.25, 1.0),
	}
	const duration = 120 * sim.Second
	fd, err := workload.NewFootprintDriver(eng, mem, prof, owner, duration, 500*sim.Millisecond)
	if err != nil {
		return SwapThrRow{}, err
	}
	// The application touches its whole working set: swapped pages fault
	// back in between bursts (the other half of a thrash round trip).
	var faultIn func()
	faultIn = func() {
		if n := mem.SwappedPageCount(owner); n > 0 {
			_, _ = mem.SwapInOwnerPages(owner, n)
		}
		if eng.Now() < duration {
			eng.AfterDaemon(700*sim.Millisecond, faultIn)
		}
	}
	fd.Start()
	daemon.Start()
	eng.AtDaemon(300*sim.Millisecond, faultIn)
	eng.RunUntil(duration)

	outs, ins := mem.SwapTraffic()
	ioTime := sim.Time(outs+ins) * swapCostPerPage
	label := fmt.Sprintf("off_thr %.0f%%", offThr*100)
	if adaptive {
		label = fmt.Sprintf("off_thr %.0f%% + alpha", offThr*100)
	}
	return SwapThrRow{
		Label:       label,
		OffThr:      offThr,
		Adaptive:    adaptive,
		SwapOutGB:   float64(outs) * pageBytes / float64(1<<30),
		SwapInGB:    float64(ins) * pageBytes / float64(1<<30),
		SlowdownPct: float64(ioTime) / float64(duration) * 100,
		Onlines:     daemon.Stats().Onlines,
		OfflinedGB:  daemon.AvgOfflinedBlocks() * float64(hp.BlockBytes()) / float64(1<<30),
	}, nil
}

// burstPhases builds n sharp spikes: short peaks over a low base.
func burstPhases(n int, lo, hi float64) []workload.PhasePoint {
	pts := make([]workload.PhasePoint, 0, 3*n+1)
	for i := 0; i < n; i++ {
		base := float64(i) / float64(n)
		w := 1.0 / float64(n)
		pts = append(pts,
			workload.PhasePoint{Progress: base, Frac: lo},
			workload.PhasePoint{Progress: base + 0.55*w, Frac: lo},
			workload.PhasePoint{Progress: base + 0.65*w, Frac: hi},
		)
	}
	return append(pts, workload.PhasePoint{Progress: 1, Frac: lo})
}

// Table renders the sweep.
func (r SwapThrResult) Table() *report.Table {
	t := report.NewTable("Swap-threshold ablation: off_thr vs thrashing (bursty 8GB workload, 120s)",
		"swap-out GB", "swap-in GB", "est. slowdown %", "onlines", "offlined GB")
	for _, row := range r.Rows {
		t.AddRow(row.Label,
			row.SwapOutGB, row.SwapInGB, row.SlowdownPct, float64(row.Onlines), row.OfflinedGB)
	}
	return t
}
