package exp

import "testing"

func TestTailLatencyShape(t *testing.T) {
	r, err := RunTailLatency(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 latency-critical services", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BaseP99us <= 0 || row.GDP99us <= 0 {
			t.Fatalf("%s: missing percentiles: %+v", row.App, row)
		}
		if row.BaseP99us < row.BaseP95us || row.GDP99us < row.GDP95us {
			t.Errorf("%s: p99 below p95", row.App)
		}
		// Constant footprints: the daemon settles after warm-up and
		// produces (almost) no steady-state events.
		if row.DaemonEvents > 4 {
			t.Errorf("%s: %d steady-state daemon events for a constant footprint",
				row.App, row.DaemonEvents)
		}
	}
	// The paper's claim: no notable tail degradation. Allow generous
	// noise in quick mode.
	if inc := r.MaxP99InflationPct(); inc > 25 {
		t.Errorf("worst p99 inflation = %.1f%%, want small", inc)
	}
	t.Logf("\n%s\nworst p99 inflation: %.1f%%", r.Table(), r.MaxP99InflationPct())
}
