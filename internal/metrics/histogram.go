package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe. Buckets are defined by strictly increasing upper bounds
// (Prometheus "le" semantics: a value lands in the first bucket whose
// bound is >= it); values above the last bound land in an implicit +Inf
// overflow bucket. All state is atomic, so the serving stack observes
// from worker goroutines without a lock and /metrics snapshots without
// stopping the world.
//
// A nil *Histogram is a valid disabled histogram: Observe is a no-op and
// every reader reports empty — the same nil-is-off contract as obs.Trace.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the extra slot is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be non-empty and strictly increasing.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not increasing at %d: %g <= %g",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// LogBuckets returns log-spaced bounds from min to at least max with
// perDecade buckets per factor of ten — the spacing latency histograms
// want, where 1ms and 2ms must be distinguishable but 100s and 101s need
// not be. min must be > 0 and max > min.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		panic(fmt.Sprintf("metrics: bad log bucket shape (%g, %g, %d)", min, max, perDecade))
	}
	var out []float64
	for i := 0; ; i++ {
		// Derive each bound from the power directly so repeated
		// multiplication cannot drift the grid.
		b := min * math.Pow(10, float64(i)/float64(perDecade))
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// NewLogHistogram is NewHistogram over LogBuckets(min, max, perDecade).
func NewLogHistogram(min, max float64, perDecade int) *Histogram {
	return NewHistogram(LogBuckets(min, max, perDecade))
}

// Observe records one sample. NaN samples are dropped — they would
// poison the sum while landing in no meaningful bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports the total number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sample sum.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf). Callers must
// not mutate the returned slice.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts snapshots the per-bucket (non-cumulative) counts; the
// last entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (q in [0, 1]) as the upper bound
// of the bucket containing that rank — a deliberate overestimate of at
// most one bucket width, which log spacing keeps proportionally small.
// Samples in the +Inf bucket resolve to the last finite bound. Returns 0
// with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}
