package metrics

import (
	"testing"
)

// TestDistributionExactMeanN pins the running-moment contract: Mean and
// N are exact whether or not a cap bounds percentile storage.
func TestDistributionExactMeanN(t *testing.T) {
	var capped, full Distribution
	capped.SetCap(16)
	n := 10000
	for i := 1; i <= n; i++ {
		capped.Add(float64(i))
		full.Add(float64(i))
	}
	if capped.N() != n || full.N() != n {
		t.Fatalf("N = %d (capped), %d (full), want %d", capped.N(), full.N(), n)
	}
	want := float64(n+1) / 2
	if got := capped.Mean(); got != want {
		t.Fatalf("capped Mean = %g, want %g", got, want)
	}
	if got := full.Mean(); got != want {
		t.Fatalf("full Mean = %g, want %g", got, want)
	}
	if got := len(capped.samples); got > 16 {
		t.Fatalf("capped distribution retains %d samples, cap is 16", got)
	}
}

// TestDistributionCapDeterministic checks that the decimated subset is a
// pure function of the Add sequence: two distributions fed the same
// stream retain identical samples and answer identical percentiles.
func TestDistributionCapDeterministic(t *testing.T) {
	var a, b Distribution
	a.SetCap(64)
	b.SetCap(64)
	for i := 0; i < 100000; i++ {
		v := float64((i*2654435761 + 1) % 997)
		a.Add(v)
		b.Add(v)
	}
	if len(a.samples) != len(b.samples) {
		t.Fatalf("retained %d vs %d samples for identical streams", len(a.samples), len(b.samples))
	}
	for i := range a.samples {
		if a.samples[i] != b.samples[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, a.samples[i], b.samples[i])
		}
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("P%g differs across identical streams", p)
		}
	}
}

// TestDistributionCapPercentileAccuracy sanity-checks that the retained
// subset still tracks the underlying distribution: percentiles of a
// uniform ramp stay within a few percent of the true quantile.
func TestDistributionCapPercentileAccuracy(t *testing.T) {
	var d Distribution
	d.SetCap(1024)
	n := 200000
	for i := 0; i < n; i++ {
		d.Add(float64(i))
	}
	for _, p := range []float64{10, 50, 90, 99} {
		got := d.Percentile(p)
		want := p / 100 * float64(n)
		if diff := got - want; diff < -0.05*float64(n) || diff > 0.05*float64(n) {
			t.Fatalf("P%g = %g, true quantile %g: decimation skewed the subset", p, got, want)
		}
	}
}

// TestDistributionReserveNoGrowth verifies Reserve + steady-state Add
// never reallocates: recording into a reserved buffer is allocation-free.
func TestDistributionReserveNoGrowth(t *testing.T) {
	var d Distribution
	d.Reserve(2048)
	i := 0.0
	avg := testing.AllocsPerRun(2000, func() {
		d.Add(i)
		i++
	})
	if avg != 0 {
		t.Fatalf("Add into reserved buffer allocates %.2f/op, want 0", avg)
	}
}

// TestDistributionCappedAddNoAllocs locks in the hot-path property the
// controller relies on: once capped, Add never allocates — the buffer is
// preallocated by SetCap and compaction happens in place.
func TestDistributionCappedAddNoAllocs(t *testing.T) {
	var d Distribution
	d.SetCap(256)
	i := 0.0
	avg := testing.AllocsPerRun(100000, func() {
		d.Add(i)
		i++
	})
	if avg != 0 {
		t.Fatalf("capped Add allocates %.2f/op, want 0", avg)
	}
}
