// Package metrics provides the small bookkeeping primitives the simulator
// shares: time-weighted state-residency meters, latency distributions, and
// time-weighted averages. They are deliberately allocation-light; the
// controller updates them on every request.
package metrics

import (
	"fmt"
	"sort"

	"greendimm/internal/sim"
)

// Residency accumulates time spent in each of a small set of integer
// states. States must be in [0, n).
type Residency struct {
	totals []sim.Time
	state  int
	since  sim.Time
	final  bool
}

// NewResidency creates a meter over n states, starting in state initial at
// time start.
func NewResidency(n, initial int, start sim.Time) *Residency {
	if initial < 0 || initial >= n {
		panic(fmt.Sprintf("metrics: initial state %d out of [0,%d)", initial, n))
	}
	return &Residency{totals: make([]sim.Time, n), state: initial, since: start}
}

// State reports the current state.
func (r *Residency) State() int { return r.state }

// Transition moves to state s at time at, crediting the elapsed interval to
// the previous state. Transitions must be non-decreasing in time.
func (r *Residency) Transition(at sim.Time, s int) {
	if r.final {
		panic("metrics: transition after Finalize")
	}
	if at < r.since {
		panic(fmt.Sprintf("metrics: transition at %v before %v", at, r.since))
	}
	if s < 0 || s >= len(r.totals) {
		panic(fmt.Sprintf("metrics: state %d out of range %d", s, len(r.totals)))
	}
	r.totals[r.state] += at - r.since
	r.state = s
	r.since = at
}

// Finalize credits time up to at and freezes the meter.
func (r *Residency) Finalize(at sim.Time) {
	if r.final {
		return
	}
	r.Transition(at, r.state)
	r.final = true
}

// Total reports accumulated time in state s.
func (r *Residency) Total(s int) sim.Time { return r.totals[s] }

// Fraction reports the share of accumulated time spent in state s.
func (r *Residency) Fraction(s int) float64 {
	var sum sim.Time
	for _, t := range r.totals {
		sum += t
	}
	if sum == 0 {
		return 0
	}
	return float64(r.totals[s]) / float64(sum)
}

// WeightedValue integrates a piecewise-constant value over time — used for
// the time-averaged fraction of sub-array groups in deep power-down.
type WeightedValue struct {
	integral float64 // value x picoseconds
	value    float64
	since    sim.Time
	start    sim.Time
}

// NewWeightedValue starts integrating v at time start.
func NewWeightedValue(v float64, start sim.Time) *WeightedValue {
	return &WeightedValue{value: v, since: start, start: start}
}

// Set changes the value at time at.
func (w *WeightedValue) Set(at sim.Time, v float64) {
	if at < w.since {
		panic(fmt.Sprintf("metrics: weighted value update at %v before %v", at, w.since))
	}
	w.integral += w.value * float64(at-w.since)
	w.value = v
	w.since = at
}

// Value reports the current (instantaneous) value.
func (w *WeightedValue) Value() float64 { return w.value }

// Average reports the time-weighted average from start to at.
func (w *WeightedValue) Average(at sim.Time) float64 {
	if at <= w.start {
		return w.value
	}
	integral := w.integral + w.value*float64(at-w.since)
	return integral / float64(at-w.start)
}

// Distribution collects scalar samples and reports order statistics.
// Mean and N are exact (running sum/count) regardless of storage policy.
// By default every sample is retained; request-driven hot paths that
// record millions of points should call SetCap so percentile storage
// stays bounded — see SetCap for the decimation rule.
type Distribution struct {
	samples []float64
	sorted  bool
	n       int64
	sum     float64
	max     int   // retained-sample bound; 0 = retain everything
	stride  int64 // record every stride-th sample once bounded
	skip    int64 // samples left to drop before the next recorded one
}

// Reserve grows the sample buffer's capacity to at least n, so the
// following n Adds append without reallocating.
func (d *Distribution) Reserve(n int) {
	if cap(d.samples) >= n {
		return
	}
	s := make([]float64, len(d.samples), n)
	copy(s, d.samples)
	d.samples = s
}

// SetCap bounds retained samples at max and preallocates the buffer.
// Once the buffer fills, every second retained sample is dropped in
// place and the recording stride doubles, so a run of any length keeps
// a deterministic, roughly uniformly spaced subset of at most max
// samples for percentile queries. The subset depends only on the Add
// sequence, never on timing. Mean and N stay exact; Max becomes the
// largest retained sample. Call before recording; max <= 0 restores
// retain-everything.
func (d *Distribution) SetCap(max int) {
	d.max = max
	if max > 0 {
		d.Reserve(max)
		if d.stride == 0 {
			d.stride = 1
		}
	}
}

// Add records a sample.
func (d *Distribution) Add(v float64) {
	d.n++
	d.sum += v
	if d.max > 0 {
		if d.skip > 0 {
			d.skip--
			return
		}
		d.skip = d.stride - 1
	}
	d.samples = append(d.samples, v)
	d.sorted = false
	if d.max > 0 && len(d.samples) >= d.max {
		k := 0
		for i := 0; i < len(d.samples); i += 2 {
			d.samples[k] = d.samples[i]
			k++
		}
		d.samples = d.samples[:k]
		d.stride *= 2
		d.skip = d.stride - 1
	}
}

// MergeFrom folds another distribution into d: counts and sums add
// exactly (N and Mean stay exact over the union), and o's retained
// percentile samples are appended to d's. The result is deterministic in
// the merge call order — the controller merges its per-channel-shard
// distributions in channel index order — and the merge ignores d's cap:
// a merged snapshot retains at most the sum of its inputs' retained
// samples. o is not modified.
func (d *Distribution) MergeFrom(o *Distribution) {
	d.n += o.n
	d.sum += o.sum
	if len(o.samples) > 0 {
		d.samples = append(d.samples, o.samples...)
		d.sorted = false
	}
}

// N reports the exact number of samples recorded.
func (d *Distribution) N() int { return int(d.n) }

// Mean reports the exact arithmetic mean, or 0 with no samples.
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Percentile reports the p-th percentile (p in [0,100]) by
// nearest-rank, or 0 with no samples.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := int(p/100*float64(len(d.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(d.samples) {
		rank = len(d.samples) - 1
	}
	return d.samples[rank]
}

// Max reports the largest sample, or 0 with no samples.
func (d *Distribution) Max() float64 { return d.Percentile(100) }
