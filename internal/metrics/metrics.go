// Package metrics provides the small bookkeeping primitives the simulator
// shares: time-weighted state-residency meters, latency distributions, and
// time-weighted averages. They are deliberately allocation-light; the
// controller updates them on every request.
package metrics

import (
	"fmt"
	"sort"

	"greendimm/internal/sim"
)

// Residency accumulates time spent in each of a small set of integer
// states. States must be in [0, n).
type Residency struct {
	totals []sim.Time
	state  int
	since  sim.Time
	final  bool
}

// NewResidency creates a meter over n states, starting in state initial at
// time start.
func NewResidency(n, initial int, start sim.Time) *Residency {
	if initial < 0 || initial >= n {
		panic(fmt.Sprintf("metrics: initial state %d out of [0,%d)", initial, n))
	}
	return &Residency{totals: make([]sim.Time, n), state: initial, since: start}
}

// State reports the current state.
func (r *Residency) State() int { return r.state }

// Transition moves to state s at time at, crediting the elapsed interval to
// the previous state. Transitions must be non-decreasing in time.
func (r *Residency) Transition(at sim.Time, s int) {
	if r.final {
		panic("metrics: transition after Finalize")
	}
	if at < r.since {
		panic(fmt.Sprintf("metrics: transition at %v before %v", at, r.since))
	}
	if s < 0 || s >= len(r.totals) {
		panic(fmt.Sprintf("metrics: state %d out of range %d", s, len(r.totals)))
	}
	r.totals[r.state] += at - r.since
	r.state = s
	r.since = at
}

// Finalize credits time up to at and freezes the meter.
func (r *Residency) Finalize(at sim.Time) {
	if r.final {
		return
	}
	r.Transition(at, r.state)
	r.final = true
}

// Total reports accumulated time in state s.
func (r *Residency) Total(s int) sim.Time { return r.totals[s] }

// Fraction reports the share of accumulated time spent in state s.
func (r *Residency) Fraction(s int) float64 {
	var sum sim.Time
	for _, t := range r.totals {
		sum += t
	}
	if sum == 0 {
		return 0
	}
	return float64(r.totals[s]) / float64(sum)
}

// WeightedValue integrates a piecewise-constant value over time — used for
// the time-averaged fraction of sub-array groups in deep power-down.
type WeightedValue struct {
	integral float64 // value x picoseconds
	value    float64
	since    sim.Time
	start    sim.Time
}

// NewWeightedValue starts integrating v at time start.
func NewWeightedValue(v float64, start sim.Time) *WeightedValue {
	return &WeightedValue{value: v, since: start, start: start}
}

// Set changes the value at time at.
func (w *WeightedValue) Set(at sim.Time, v float64) {
	if at < w.since {
		panic(fmt.Sprintf("metrics: weighted value update at %v before %v", at, w.since))
	}
	w.integral += w.value * float64(at-w.since)
	w.value = v
	w.since = at
}

// Value reports the current (instantaneous) value.
func (w *WeightedValue) Value() float64 { return w.value }

// Average reports the time-weighted average from start to at.
func (w *WeightedValue) Average(at sim.Time) float64 {
	if at <= w.start {
		return w.value
	}
	integral := w.integral + w.value*float64(at-w.since)
	return integral / float64(at-w.start)
}

// Distribution collects scalar samples and reports order statistics. It
// stores samples; callers sampling millions of points should downsample
// first (the experiments here collect at most ~10^5 latencies).
type Distribution struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (d *Distribution) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N reports the sample count.
func (d *Distribution) N() int { return len(d.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.samples {
		s += v
	}
	return s / float64(len(d.samples))
}

// Percentile reports the p-th percentile (p in [0,100]) by
// nearest-rank, or 0 with no samples.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := int(p/100*float64(len(d.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(d.samples) {
		rank = len(d.samples) - 1
	}
	return d.samples[rank]
}

// Max reports the largest sample, or 0 with no samples.
func (d *Distribution) Max() float64 { return d.Percentile(100) }
