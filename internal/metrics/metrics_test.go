package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"greendimm/internal/sim"
)

func TestResidencyAccumulation(t *testing.T) {
	r := NewResidency(3, 0, 0)
	r.Transition(10, 1)
	r.Transition(25, 2)
	r.Transition(25, 0) // zero-length stay allowed
	r.Finalize(30)
	if got := r.Total(0); got != 10+5 {
		t.Errorf("state 0 total = %v, want 15", got)
	}
	if got := r.Total(1); got != 15 {
		t.Errorf("state 1 total = %v, want 15", got)
	}
	if got := r.Total(2); got != 0 {
		t.Errorf("state 2 total = %v, want 0", got)
	}
	if f := r.Fraction(0); f != 0.5 {
		t.Errorf("fraction 0 = %v, want 0.5", f)
	}
}

func TestResidencyFinalizeIdempotent(t *testing.T) {
	r := NewResidency(2, 0, 0)
	r.Finalize(100)
	r.Finalize(100)
	if r.Total(0) != 100 {
		t.Errorf("total = %v, want 100", r.Total(0))
	}
}

func TestResidencyPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad initial", func() { NewResidency(2, 5, 0) })
	r := NewResidency(2, 0, 50)
	mustPanic("time going backwards", func() { r.Transition(10, 1) })
	mustPanic("bad state", func() { r.Transition(60, 7) })
	r2 := NewResidency(2, 0, 0)
	r2.Finalize(10)
	mustPanic("transition after finalize", func() { r2.Transition(20, 1) })
}

func TestResidencyConservation(t *testing.T) {
	// Property: totals always sum to finalize time minus start time.
	f := func(steps []uint8) bool {
		r := NewResidency(4, 0, 0)
		at := sim.Time(0)
		for _, s := range steps {
			at += sim.Time(s % 97)
			r.Transition(at, int(s%4))
		}
		end := at + 13
		r.Finalize(end)
		var sum sim.Time
		for i := 0; i < 4; i++ {
			sum += r.Total(i)
		}
		return sum == end
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedValue(t *testing.T) {
	w := NewWeightedValue(0, 0)
	w.Set(10, 1.0) // 0 for 10
	w.Set(30, 0.5) // 1 for 20
	// avg at 40: (0*10 + 1*20 + 0.5*10)/40 = 25/40
	if got := w.Average(40); math.Abs(got-0.625) > 1e-12 {
		t.Errorf("Average = %v, want 0.625", got)
	}
	if w.Value() != 0.5 {
		t.Errorf("Value = %v, want 0.5", w.Value())
	}
	// Average at the start time returns the current value, not NaN.
	w2 := NewWeightedValue(0.7, 100)
	if got := w2.Average(100); got != 0.7 {
		t.Errorf("degenerate average = %v, want 0.7", got)
	}
}

func TestWeightedValueMonotonicGuard(t *testing.T) {
	w := NewWeightedValue(0, 100)
	defer func() {
		if recover() == nil {
			t.Error("backwards Set did not panic")
		}
	}()
	w.Set(50, 1)
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Percentile(95) != 0 {
		t.Error("empty distribution should report zeros")
	}
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if d.N() != 100 {
		t.Errorf("N = %d", d.N())
	}
	if got := d.Mean(); got != 50.5 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	if got := d.Percentile(95); got != 95 {
		t.Errorf("P95 = %v, want 95", got)
	}
	if got := d.Percentile(99); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := d.Max(); got != 100 {
		t.Errorf("Max = %v, want 100", got)
	}
	// Adding after a percentile query must still work (re-sorts).
	d.Add(1000)
	if got := d.Max(); got != 1000 {
		t.Errorf("Max after add = %v, want 1000", got)
	}
}

func TestDistributionPercentileBounds(t *testing.T) {
	var d Distribution
	d.Add(5)
	if d.Percentile(0) != 5 || d.Percentile(100) != 5 || d.Percentile(50) != 5 {
		t.Error("single-sample percentiles should all be the sample")
	}
}
