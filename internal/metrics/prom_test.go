package metrics

import (
	"strings"
	"testing"
)

func TestExpositionFormat(t *testing.T) {
	var e Exposition
	e.Add("gd_queue_depth", "gauge", "Jobs waiting in the queue.", V(3))
	e.Add("gd_jobs_total", "counter", "Jobs by terminal state.",
		Sample{Labels: map[string]string{"state": "succeeded"}, Value: 12},
		Sample{Labels: map[string]string{"state": "failed"}, Value: 1},
	)
	want := strings.Join([]string{
		"# HELP gd_queue_depth Jobs waiting in the queue.",
		"# TYPE gd_queue_depth gauge",
		"gd_queue_depth 3",
		"# HELP gd_jobs_total Jobs by terminal state.",
		"# TYPE gd_jobs_total counter",
		`gd_jobs_total{state="succeeded"} 12`,
		`gd_jobs_total{state="failed"} 1`,
		"",
	}, "\n")
	if got := e.String(); got != want {
		t.Errorf("exposition =\n%s\nwant\n%s", got, want)
	}
}

func TestExpositionLabelOrderAndEscaping(t *testing.T) {
	var e Exposition
	e.Add("m", "gauge", "line1\nline2 back\\slash",
		Sample{Labels: map[string]string{"b": `quo"te`, "a": "x\ny"}, Value: 0.5})
	got := e.String()
	if !strings.Contains(got, `# HELP m line1\nline2 back\\slash`) {
		t.Errorf("help not escaped: %q", got)
	}
	if !strings.Contains(got, `m{a="x\ny",b="quo\"te"} 0.5`) {
		t.Errorf("labels not sorted/escaped: %q", got)
	}
}

func TestExpositionValueFormatting(t *testing.T) {
	var e Exposition
	e.Add("v", "gauge", "", V(0.6180339887498949), V(1e9))
	got := e.String()
	if strings.Contains(got, "# HELP") {
		t.Errorf("empty help should omit the HELP line: %q", got)
	}
	if !strings.Contains(got, "v 0.6180339887498949\n") || !strings.Contains(got, "v 1e+09\n") {
		t.Errorf("value formatting off: %q", got)
	}
}
