package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Exposition builds Prometheus text-format (version 0.0.4) output without
// any client library: the daemon's /metrics endpoint assembles one per
// scrape from plain counters. Add families in the order you want them
// exposed; samples within a family keep insertion order (label sets are
// rendered with sorted keys, as the format requires consistency but not
// ordering).
type Exposition struct {
	b strings.Builder
}

// Sample is one time-series point of a metric family.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// V is shorthand for an unlabeled sample.
func V(v float64) Sample { return Sample{Value: v} }

// Add appends one metric family with its HELP/TYPE header and samples.
// typ is "counter", "gauge", or "untyped".
func (e *Exposition) Add(name, typ, help string, samples ...Sample) {
	if help != "" {
		fmt.Fprintf(&e.b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(&e.b, "# TYPE %s %s\n", name, typ)
	for _, s := range samples {
		e.b.WriteString(name)
		e.b.WriteString(renderLabels(s.Labels))
		e.b.WriteByte(' ')
		e.b.WriteString(formatValue(s.Value))
		e.b.WriteByte('\n')
	}
}

// AddHistogram appends one histogram family in the exposition format's
// histogram shape: cumulative <name>_bucket{le="..."} series ending in
// le="+Inf", then <name>_sum and <name>_count. A nil histogram renders
// an empty (all-zero, no-bucket) family header only.
func (e *Exposition) AddHistogram(name, help string, h *Histogram) {
	if help != "" {
		fmt.Fprintf(&e.b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(&e.b, "# TYPE %s histogram\n", name)
	if h == nil {
		fmt.Fprintf(&e.b, "%s_sum 0\n%s_count 0\n", name, name)
		return
	}
	var cum int64
	counts := h.BucketCounts()
	for i, le := range h.Bounds() {
		cum += counts[i]
		fmt.Fprintf(&e.b, "%s_bucket{le=%q} %d\n", name, formatValue(le), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(&e.b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(&e.b, "%s_sum %s\n", name, formatValue(h.Sum()))
	fmt.Fprintf(&e.b, "%s_count %d\n", name, cum)
}

// String returns the accumulated exposition.
func (e *Exposition) String() string { return e.b.String() }

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, double quote and newline exactly as the
		// exposition format specifies.
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslash and newline (the only escapes HELP allows).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
