package metrics

import (
	"math/rand"
	"testing"
)

// TestDistributionInterleavedAddPercentile is the regression test for
// the sort-memoization contract: Percentile sorts the sample slice once
// on demand and reuses the sorted form until the next Add invalidates
// it, and interleaving Adds with Percentile reads never yields answers
// different from a fresh sort over the same samples.
func TestDistributionInterleavedAddPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var d Distribution
	var all []float64
	check := func(p float64) {
		t.Helper()
		var ref Distribution
		for _, v := range all {
			ref.Add(v)
		}
		if got, want := d.Percentile(p), ref.Percentile(p); got != want {
			t.Fatalf("after %d samples: Percentile(%g) = %g, fresh distribution says %g",
				len(all), p, got, want)
		}
	}
	for round := 0; round < 50; round++ {
		// A burst of adds...
		for i := 0; i < 1+rng.Intn(5); i++ {
			v := rng.NormFloat64() * 100
			d.Add(v)
			all = append(all, v)
		}
		// ...then interleaved reads, including repeats that must hit the
		// memoized sorted form.
		check(50)
		check(99)
		check(float64(rng.Intn(101)))
		check(50)
	}
}

// TestDistributionMemoizesSort pins the memoization state machine
// directly: Percentile marks the samples sorted, repeated reads keep
// that mark, and the next Add clears it.
func TestDistributionMemoizesSort(t *testing.T) {
	var d Distribution
	for _, v := range []float64{9, 1, 5, 3} {
		d.Add(v)
	}
	if d.sorted {
		t.Fatal("freshly added samples marked sorted")
	}
	if got := d.Percentile(50); got != 3 { // nearest-rank over {1,3,5,9}
		t.Fatalf("P50 = %g, want 3", got)
	}
	if !d.sorted {
		t.Fatal("Percentile did not memoize the sort")
	}
	d.Percentile(90)
	d.Max()
	if !d.sorted {
		t.Fatal("read-only calls invalidated the memo")
	}
	d.Add(0)
	if d.sorted {
		t.Fatal("Add did not invalidate the memo")
	}
	if got := d.Percentile(0); got != 0 {
		t.Fatalf("min after invalidation = %g, want 0", got)
	}
}

func TestDistributionMergeFrom(t *testing.T) {
	var a, b, ref Distribution
	for i := 0; i < 100; i++ {
		v := float64(i * 13 % 97)
		ref.Add(v)
		if i%3 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.MergeFrom(&b)
	if a.N() != ref.N() {
		t.Errorf("merged N = %d, want %d", a.N(), ref.N())
	}
	if a.Mean() != ref.Mean() {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), ref.Mean())
	}
	for _, p := range []float64{0, 50, 95, 100} {
		if got, want := a.Percentile(p), ref.Percentile(p); got != want {
			t.Errorf("merged P%v = %v, want %v", p, got, want)
		}
	}
	// Merging into a distribution whose percentiles were already queried
	// (samples sorted in place) must still see every retained sample.
	var c, d Distribution
	c.Add(5)
	c.Add(1)
	_ = c.Percentile(50)
	d.Add(3)
	c.MergeFrom(&d)
	if got := c.Max(); got != 5 {
		t.Errorf("post-sort merge Max = %v, want 5", got)
	}
	if got := c.N(); got != 3 {
		t.Errorf("post-sort merge N = %d, want 3", got)
	}
}
