package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	// le is inclusive: a sample exactly on a bound lands in that bucket.
	for _, v := range []float64{-5, 0, 1} { // underflow clamps into the first bucket
		h.Observe(v)
	}
	h.Observe(1.0001) // just past a bound → next bucket
	h.Observe(10)
	h.Observe(100)
	h.Observe(100.5) // past the last bound → +Inf overflow
	h.Observe(1e9)

	want := []int64{3, 2, 1, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if s := h.Sum(); math.Abs(s-(-5+0+1+1.0001+10+100+100.5+1e9)) > 1e-6 {
		t.Errorf("sum = %g", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	// 10 samples: 5 in le=1, 4 in le=4, 1 overflow.
	for i := 0; i < 5; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 4; i++ {
		h.Observe(3)
	}
	h.Observe(100)
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},    // lowest-ranked sample's bucket bound
		{0.5, 1},  // rank 5 is still in the first bucket
		{0.9, 4},  // rank 9 lands in le=4
		{0.99, 8}, // overflow resolves to the last finite bound
		{1, 8},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistogramNilIsOff(t *testing.T) {
	var h *Histogram
	h.Observe(3) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.9) != 0 {
		t.Error("nil histogram reported data")
	}
	if h.Bounds() != nil || h.BucketCounts() != nil {
		t.Error("nil histogram reported buckets")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(0.001, 10, 1)
	want := []float64{0.001, 0.01, 0.1, 1, 10}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	fine := LogBuckets(1, 10, 3)
	for i := 1; i < len(fine); i++ {
		if fine[i] <= fine[i-1] {
			t.Fatalf("log bounds not increasing: %v", fine)
		}
	}
	if last := fine[len(fine)-1]; last < 10 {
		t.Errorf("last bound %g does not cover max", last)
	}
}

// TestHistogramPromGolden pins the exact exposition bytes: cumulative
// buckets, +Inf terminator, _sum and _count.
func TestHistogramPromGolden(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	// Exactly-representable samples keep the _sum rendering stable.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(0.75)
	h.Observe(5)
	h.Observe(50) // overflow

	var e Exposition
	e.AddHistogram("greendimm_test_seconds", "Test latency.", h)
	want := strings.Join([]string{
		"# HELP greendimm_test_seconds Test latency.",
		"# TYPE greendimm_test_seconds histogram",
		`greendimm_test_seconds_bucket{le="0.1"} 1`,
		`greendimm_test_seconds_bucket{le="1"} 3`,
		`greendimm_test_seconds_bucket{le="10"} 4`,
		`greendimm_test_seconds_bucket{le="+Inf"} 5`,
		"greendimm_test_seconds_sum 56.3125",
		"greendimm_test_seconds_count 5",
		"",
	}, "\n")
	if got := e.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	var empty Exposition
	empty.AddHistogram("x", "", nil)
	if got := empty.String(); got != "# TYPE x histogram\nx_sum 0\nx_count 0\n" {
		t.Errorf("nil histogram exposition = %q", got)
	}
}

// FuzzHistogramCount checks the structural invariant the text encoding
// leans on: _count equals the sum of the (non-cumulative) bucket
// increments, for any observation sequence.
func FuzzHistogramCount(f *testing.F) {
	f.Add(0.5, 3.0, -1.0, uint8(7))
	f.Add(0.0, 0.0, 1e300, uint8(1))
	f.Add(math.Inf(1), 1e-9, 42.0, uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c float64, n uint8) {
		h := NewLogHistogram(0.001, 100, 2)
		vals := []float64{a, b, c}
		total := int64(0)
		for i := 0; i < int(n)+1; i++ {
			v := vals[i%3]
			h.Observe(v)
			if !math.IsNaN(v) {
				total++
			}
		}
		var bucketSum int64
		for _, c := range h.BucketCounts() {
			bucketSum += c
		}
		if bucketSum != h.Count() || h.Count() != total {
			t.Fatalf("count=%d bucketSum=%d observed=%d", h.Count(), bucketSum, total)
		}
	})
}
