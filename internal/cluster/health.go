package cluster

import (
	"context"
	"sync"
	"time"
)

// PoolConfig tunes the backend scoreboard. Zero values take defaults.
type PoolConfig struct {
	// Client configures the per-backend clients.
	Client ClientConfig
	// FailThreshold is how many consecutive transport failures mark a
	// backend unhealthy (default 3). A single success — call or probe —
	// restores it.
	FailThreshold int
	// ProbePeriod is the /healthz probe interval once Start is called
	// (default 2s). Probing is optional: call results alone also move
	// the scoreboard, but only probes can revive a backend that stopped
	// being picked.
	ProbePeriod time.Duration
}

func (c PoolConfig) withDefaults() PoolConfig {
	c.Client = c.Client.withDefaults()
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbePeriod <= 0 {
		c.ProbePeriod = 2 * time.Second
	}
	return c
}

// backend is one scoreboard row. Mutable fields are guarded by Pool.mu.
type backend struct {
	url    string
	client *Client

	healthy     bool
	consecFails int
	outstanding int // leased jobs not yet released
	lastErr     error
}

// Pool tracks the health and load of a fixed set of greendimmd backends
// and leases work to the best one. All methods are safe for concurrent
// use.
type Pool struct {
	cfg PoolConfig

	mu       sync.Mutex
	backends []*backend

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// NewPool builds a scoreboard over the given base URLs. Backends start
// healthy (optimistically): the first failed calls demote them, probes
// or successes promote them back.
func NewPool(urls []string, cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, stopc: make(chan struct{})}
	for _, u := range urls {
		p.backends = append(p.backends, &backend{
			url:     u,
			client:  NewClient(u, cfg.Client),
			healthy: true,
		})
	}
	return p
}

// Start launches the periodic /healthz prober. Stop halts it.
func (p *Pool) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.cfg.ProbePeriod)
		defer t.Stop()
		for {
			select {
			case <-p.stopc:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbePeriod)
				p.ProbeAll(ctx)
				cancel()
			}
		}
	}()
}

// Stop halts the prober (if started) and waits for it to exit.
func (p *Pool) Stop() {
	p.stopOnce.Do(func() { close(p.stopc) })
	p.wg.Wait()
}

// ProbeAll probes every backend's /healthz once, concurrently, updating
// the scoreboard. It is the prober's body and a deterministic handle for
// tests and one-shot CLIs.
func (p *Pool) ProbeAll(ctx context.Context) {
	p.mu.Lock()
	backends := append([]*backend(nil), p.backends...)
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			p.report(b, b.client.Healthz(ctx))
		}(b)
	}
	wg.Wait()
}

// report scores one transport outcome: success resets the failure streak
// and revives the backend; failure increments it and demotes the backend
// at the threshold.
func (p *Pool) report(b *backend, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err == nil {
		b.consecFails = 0
		b.healthy = true
		b.lastErr = nil
		return
	}
	b.consecFails++
	b.lastErr = err
	if b.consecFails >= p.cfg.FailThreshold {
		b.healthy = false
	}
}

// Lease is one unit of routed work: it pins a backend, contributes to
// its outstanding-jobs count, and reports the outcome back to the
// scoreboard when released.
type Lease struct {
	pool *Pool
	b    *backend
	once sync.Once
}

// Client returns the leased backend's API client.
func (l *Lease) Client() *Client { return l.b.client }

// URL returns the leased backend's base URL.
func (l *Lease) URL() string { return l.b.url }

// Release ends the lease, scoring transportErr (nil = the backend held
// up its end, even if the job itself failed validation or execution).
// Safe to call more than once; only the first call counts.
func (l *Lease) Release(transportErr error) {
	l.once.Do(func() {
		l.pool.mu.Lock()
		l.b.outstanding--
		l.pool.mu.Unlock()
		l.pool.report(l.b, transportErr)
	})
}

// Pick leases the healthy backend with the fewest outstanding jobs,
// skipping URLs in exclude (nil = none). Ties break toward the earlier
// configured backend, keeping selection deterministic. It returns nil
// when no healthy backend remains — the dispatcher's cue to fall back to
// local execution.
func (p *Pool) Pick(exclude map[string]bool) *Lease {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *backend
	for _, b := range p.backends {
		if !b.healthy || exclude[b.url] {
			continue
		}
		if best == nil || b.outstanding < best.outstanding {
			best = b
		}
	}
	if best == nil {
		return nil
	}
	best.outstanding++
	return &Lease{pool: p, b: best}
}

// PickScored leases like Pick, but prefers the healthy backend with the
// highest score (a warm-key overlap count, from Warm.Scorer). Ties break
// by fewest outstanding jobs, then configuration order — so with no
// score signal (all zero) PickScored degenerates to exactly Pick, and a
// warm backend is preferred only over equally-idle-or-busier cold ones
// never at the cost of dogpiling: score wins first, but a score function
// returning uniform values restores pure least-outstanding routing.
func (p *Pool) PickScored(exclude map[string]bool, score func(url string) int) *Lease {
	if score == nil {
		return p.Pick(exclude)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *backend
	bestScore := 0
	for _, b := range p.backends {
		if !b.healthy || exclude[b.url] {
			continue
		}
		s := score(b.url)
		if best == nil || s > bestScore || (s == bestScore && b.outstanding < best.outstanding) {
			best, bestScore = b, s
		}
	}
	if best == nil {
		return nil
	}
	best.outstanding++
	return &Lease{pool: p, b: best}
}

// healthyClients snapshots the healthy backends' (url, client) pairs in
// configuration order — the Warm cache's view of who is worth asking.
func (p *Pool) healthyClients() []*backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.healthy {
			out = append(out, b)
		}
	}
	return out
}

// BackendStatus is one scoreboard row snapshot.
type BackendStatus struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	ConsecFails int    `json:"consec_fails"`
	Outstanding int    `json:"outstanding"`
	LastErr     string `json:"last_err,omitempty"`
}

// Status snapshots every backend in configuration order.
func (p *Pool) Status() []BackendStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BackendStatus, 0, len(p.backends))
	for _, b := range p.backends {
		st := BackendStatus{URL: b.url, Healthy: b.healthy, ConsecFails: b.consecFails, Outstanding: b.outstanding}
		if b.lastErr != nil {
			st.LastErr = b.lastErr.Error()
		}
		out = append(out, st)
	}
	return out
}

// Size returns the number of configured backends.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.backends)
}
