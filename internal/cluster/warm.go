package cluster

import (
	"context"
	"sync"
	"time"

	"greendimm/internal/server"
	"greendimm/internal/sweep"
)

// Warm is the cluster's view of which memo entries are hot where: a
// TTL-cached digest of every healthy backend's exportable memo keys
// (GET /v1/memo/keys), consumed two ways. Scorer turns a shard's
// predicted keys (server.PredictMemoKeys) into a placement score —
// warm-key overlap — that PickScored layers on top of least-outstanding
// routing, so repeated sweeps and resharded retries land where their
// baselines already are. Prefetch pulls entries this node is missing
// from the warmest peer (POST /v1/memo/entries) into the local memo
// before computing, so even a merge or local fallback runs warm.
//
// Everything here is an optimization, never an input to results: digests
// may be stale (a peer that evicted a key just recomputes the shard
// slower), predictions may be partial, and fetched entries pass the
// memo codec's byte-exact verification before they are trusted — the
// existing divergence fingerprinting would catch any violation.
type Warm struct {
	pool *Pool
	memo *sweep.Memo
	opts WarmOptions
	ctr  *Counters

	mu      sync.Mutex
	digests map[string]*warmDigest
	onFetch func(imported int)
	now     func() time.Time // test seam
}

// warmDigest is one backend's key set as of `at`.
type warmDigest struct {
	keys map[string]bool
	at   time.Time
}

// WarmOptions tunes the digest cache. Zero values take defaults.
type WarmOptions struct {
	// TTL bounds digest staleness (default 5s): within it, scoring and
	// prefetch reuse the cached key set instead of re-asking the peer.
	TTL time.Duration
	// MaxFetch caps one prefetch batch (default server.MaxMemoFetchKeys).
	MaxFetch int
	// Counters, when non-nil, receives warm-routing accounting.
	Counters *Counters
}

func (o WarmOptions) withDefaults() WarmOptions {
	if o.TTL <= 0 {
		o.TTL = 5 * time.Second
	}
	if o.MaxFetch <= 0 || o.MaxFetch > server.MaxMemoFetchKeys {
		o.MaxFetch = server.MaxMemoFetchKeys
	}
	return o
}

// NewWarm builds the warm-memo view over pool's backends. memo is the
// local node's shared memo (the prefetch target; nil disables prefetch
// but scoring still works). A nil *Warm is a valid no-op everywhere.
func NewWarm(pool *Pool, memo *sweep.Memo, opts WarmOptions) *Warm {
	opts = opts.withDefaults()
	return &Warm{
		pool:    pool,
		memo:    memo,
		opts:    opts,
		ctr:     opts.Counters,
		digests: make(map[string]*warmDigest),
		now:     time.Now,
	}
}

// SetOnFetch installs a callback invoked with each prefetch's imported
// entry count — the seam cmd/greendimmd uses to feed the server's
// greendimm_memo_peer_fetch_total counter from the cluster layer.
func (w *Warm) SetOnFetch(fn func(imported int)) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.onFetch = fn
	w.mu.Unlock()
}

// digestFor returns the backend's key set, refreshing over HTTP when the
// cached copy is older than TTL. A failed refresh serves the stale copy
// if one exists and an empty set otherwise — a cold answer, not an error.
func (w *Warm) digestFor(ctx context.Context, b *backend) map[string]bool {
	w.mu.Lock()
	d := w.digests[b.url]
	now := w.now()
	w.mu.Unlock()
	if d != nil && now.Sub(d.at) < w.opts.TTL {
		return d.keys
	}
	keys, err := b.client.MemoKeys(ctx)
	if err != nil {
		if d != nil {
			return d.keys
		}
		return nil
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	w.mu.Lock()
	w.digests[b.url] = &warmDigest{keys: set, at: w.now()}
	w.mu.Unlock()
	return set
}

// Scorer returns a placement score function over backend URLs: how many
// of the predicted keys each healthy backend holds warm. Scores are
// precomputed here — the returned closure takes no locks, so PickScored
// can call it under the pool's mutex. It returns nil (meaning "no
// signal, use plain least-outstanding routing") when w is nil, there are
// no keys to match, or no backend reports any overlap.
func (w *Warm) Scorer(ctx context.Context, keys []string) func(url string) int {
	if w == nil || len(keys) == 0 {
		return nil
	}
	scores := make(map[string]int)
	any := false
	for _, b := range w.pool.healthyClients() {
		digest := w.digestFor(ctx, b)
		n := 0
		for _, k := range keys {
			if digest[k] {
				n++
			}
		}
		scores[b.url] = n
		if n > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	if w.ctr != nil {
		w.ctr.WarmPicks.Add(1)
	}
	return func(url string) int { return scores[url] }
}

// Prefetch pulls the entries for keys that are missing from the local
// memo from the single warmest healthy peer, importing them (codec
// verified) and reporting how many landed. Best-effort on every edge:
// no memo, no missing keys, no warm peer, or a failed fetch all return
// 0 and cost at most one digest round.
func (w *Warm) Prefetch(ctx context.Context, keys []string) int {
	if w == nil || w.memo == nil || len(keys) == 0 {
		return 0
	}
	local := make(map[string]bool)
	for _, k := range w.memo.Keys() {
		local[k] = true
	}
	var missing []string
	for _, k := range keys {
		if !local[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return 0
	}
	// One peer, the one holding the most of what we lack: entries are
	// identical wherever they live, so there is nothing to merge across
	// peers, and one batched fetch bounds the exchange cost.
	var bestB *backend
	var bestHeld []string
	for _, b := range w.pool.healthyClients() {
		digest := w.digestFor(ctx, b)
		var held []string
		for _, k := range missing {
			if digest[k] {
				held = append(held, k)
			}
		}
		if len(held) > len(bestHeld) {
			bestB, bestHeld = b, held
		}
	}
	if bestB == nil || len(bestHeld) == 0 {
		return 0
	}
	if len(bestHeld) > w.opts.MaxFetch {
		bestHeld = bestHeld[:w.opts.MaxFetch]
	}
	entries, err := bestB.client.MemoFetch(ctx, bestHeld)
	if err != nil {
		return 0
	}
	imported := w.memo.Import(entries)
	if imported > 0 {
		if w.ctr != nil {
			w.ctr.PeerMemoEntries.Add(int64(imported))
		}
		w.mu.Lock()
		onFetch := w.onFetch
		w.mu.Unlock()
		if onFetch != nil {
			onFetch(imported)
		}
	}
	return imported
}
