package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"greendimm/internal/exp"
	"greendimm/internal/server"
)

// polgridSpec is the policy-pipeline ablation as a job: an 18-cell
// (tracker x policy) x workload matrix sweep, shardable like the paper
// figures.
func polgridSpec() server.JobSpec {
	return server.JobSpec{Kind: server.KindExperiment, Experiment: &server.ExperimentSpec{ID: "polgrid", Quick: true, Seed: 1}}
}

// TestShardPolicyGridMergeDeterminism: the polgrid matrix fanned out
// across two real backends must merge to report bytes identical to a
// single-node run — the new experiment composes with cell-range
// sharding exactly like fig8 does.
func TestShardPolicyGridMergeDeterminism(t *testing.T) {
	want := mustFingerprint(t, localExec(t, polgridSpec()))
	sr, ctr := newShardHarness(t, 2, ShardOptions{CellsPerShard: 4})
	res, err := sr.Run(polgridSpec(), server.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, res); got != want {
		t.Fatalf("sharded polgrid diverged from single-node run: %s vs %s", got, want)
	}
	// ceil(18/4) = 5 near-equal shards.
	if sj, s := ctr.ShardJobs.Load(), ctr.Shards.Load(); sj != 1 || s != 5 {
		t.Fatalf("counters: shard_jobs=%d shards=%d, want 1/5", sj, s)
	}
}

// pacedRunner slows a backend down to test speed: every sweep cell costs
// a few extra milliseconds, so an 18-cell grid stays in flight long
// enough for the coordinator test to crash it mid-sweep.
func pacedRunner(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
	inner := h.CellObserved
	h.CellObserved = func(a exp.CellArtifact) {
		time.Sleep(4 * time.Millisecond)
		if inner != nil {
			inner(a)
		}
	}
	return server.Execute(spec, h)
}

// polgridCoordinator stands up the full daemon composition under test:
// a coordinator with a durable store (-store-dir) whose runner fans
// matrix jobs out across two real backends as cell-range shards
// (-shard-cells), plus a counter observing every cell the coordinator
// journals.
func polgridCoordinator(t *testing.T, dir string, observed *atomic.Int64) *server.Server {
	t.Helper()
	ctr := &Counters{}
	var urls []string
	for i := 0; i < 2; i++ {
		hs, _ := newBackend(t, server.Config{Workers: 1, QueueDepth: 16, Runner: pacedRunner})
		urls = append(urls, hs.URL)
	}
	pool := NewPool(urls, PoolConfig{Client: fastClient(ctr)})
	d := NewDispatcher(pool, Options{Counters: ctr})
	sr, err := NewShardRunner(d, ShardOptions{CellsPerShard: 2, Exec: pacedRunner, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	run := func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
		inner := h.CellObserved
		h.CellObserved = func(a exp.CellArtifact) {
			observed.Add(1)
			if inner != nil {
				inner(a)
			}
		}
		return sr.Run(spec, h)
	}
	s, err := server.Open(server.Config{Workers: 1, QueueDepth: 4, StoreDir: dir, Runner: run})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardPolicyGridStoreRecovery is the acceptance e2e for the new
// experiment: polgrid runs through cluster.ShardRunner over a durable
// store, the coordinator is crashed mid-grid (forced shutdown, job left
// open in the journal), and a second coordinator over the same store
// re-enqueues it, resumes from the journaled cells, and merges the
// byte-identical single-node report.
func TestShardPolicyGridStoreRecovery(t *testing.T) {
	want := localExec(t, polgridSpec())
	dir := t.TempDir()

	var observed1 atomic.Int64
	s1 := polgridCoordinator(t, dir, &observed1)
	v, err := s1.Submit(polgridSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for observed1.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never journaled sweep cells")
		}
		got, ok := s1.Get(v.ID)
		if !ok {
			t.Fatalf("job %s vanished", v.ID)
		}
		if got.State == server.StateSucceeded || got.State == server.StateFailed || got.State == server.StateCanceled {
			t.Fatalf("job reached %s before 4 cells were journaled — grid too fast to interrupt", got.State)
		}
		time.Sleep(time.Millisecond)
	}
	// Forced shutdown: the drain context is already dead, so the job is
	// cut off immediately and its store record stays open.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Shutdown(dead); err != context.Canceled {
		t.Fatalf("forced shutdown: %v", err)
	}

	var observed2 atomic.Int64
	s2 := polgridCoordinator(t, dir, &observed2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	recovered, total := s2.List(server.ListQuery{Recovered: true})
	if total != 1 || len(recovered) != 1 {
		t.Fatalf("recovered jobs = %d, want 1", total)
	}
	rv := recovered[0]
	final, ok := s2.Get(rv.ID)
	for deadline := time.Now().Add(60 * time.Second); ; {
		if ok && (final.State == server.StateSucceeded || final.State == server.StateFailed || final.State == server.StateCanceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %s", final.State)
		}
		time.Sleep(2 * time.Millisecond)
		final, ok = s2.Get(rv.ID)
	}
	if final.State != server.StateSucceeded {
		t.Fatalf("recovered job = %s (%s), want succeeded", final.State, final.Error)
	}
	if final.ResumedCells < 4 {
		t.Fatalf("resumed_cells = %d, want >= 4 (journaled before the crash: %d)", final.ResumedCells, observed1.Load())
	}
	if final.Result == nil || final.Result.Text != want.Text {
		t.Fatal("recovered sharded polgrid report is not byte-identical to the single-node run")
	}
	// The resumed run must have recomputed strictly fewer cells than the
	// full grid — resuming, not restarting.
	if n := observed2.Load(); n >= 18 {
		t.Fatalf("second coordinator journaled %d fresh cells; it restarted instead of resuming", n)
	}
}
