package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"greendimm/internal/exp"
	"greendimm/internal/server"
)

// shardSpec is the shard-test workhorse: fig8 in quick mode is a real
// 12-cell matrix sweep at ~2ms per cell.
func shardSpec() server.JobSpec {
	return server.JobSpec{Kind: server.KindExperiment, Experiment: &server.ExperimentSpec{ID: "fig8", Quick: true, Seed: 1}}
}

// execLocal adapts server.Execute to the ShardOptions.Exec contract.
func execLocal(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
	return server.Execute(spec, h)
}

// newShardHarness stands up n real simulation backends behind a pool
// and returns a shard runner over them plus its counters.
func newShardHarness(t *testing.T, n int, opts ShardOptions) (*ShardRunner, *Counters) {
	t.Helper()
	ctr := &Counters{}
	var urls []string
	for i := 0; i < n; i++ {
		hs, _ := newBackend(t, server.Config{Workers: 2, QueueDepth: 16})
		urls = append(urls, hs.URL)
	}
	pool := NewPool(urls, PoolConfig{Client: fastClient(ctr)})
	d := NewDispatcher(pool, Options{Counters: ctr})
	opts.Exec = execLocal
	opts.Counters = ctr
	sr, err := NewShardRunner(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sr, ctr
}

// TestShardMergeDeterminism is the acceptance check: the same 12-cell
// job fanned out as 1, 2 and 5 shards across two real backends must
// merge to report bytes identical to a single-node run.
func TestShardMergeDeterminism(t *testing.T) {
	want := mustFingerprint(t, localExec(t, shardSpec()))
	cases := []struct {
		name   string
		opts   ShardOptions
		shards int64
	}{
		// 12 cells in one shard: MinCells must drop to 1, or the runner
		// would (correctly) refuse to shard a job that fits one shard.
		{"one shard", ShardOptions{CellsPerShard: 12, MinCells: 1}, 1},
		{"two shards", ShardOptions{CellsPerShard: 6}, 2},
		// ceil(12/2) = 6 capped at 5 → near-equal sizes 3,3,2,2,2.
		{"five shards", ShardOptions{CellsPerShard: 2, MaxShards: 5}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sr, ctr := newShardHarness(t, 2, tc.opts)
			res, err := sr.Run(shardSpec(), server.RunHooks{})
			if err != nil {
				t.Fatal(err)
			}
			if got := mustFingerprint(t, res); got != want {
				t.Fatalf("sharded report diverged from single-node run: %s vs %s", got, want)
			}
			if res.Text == "" || len(res.Cells) != 0 {
				t.Fatalf("merged result should be a rendered report, got %+v", res)
			}
			if sj, s := ctr.ShardJobs.Load(), ctr.Shards.Load(); sj != 1 || s != tc.shards {
				t.Fatalf("counters: shard_jobs=%d shards=%d, want 1/%d", sj, s, tc.shards)
			}
		})
	}
}

// TestShardJournalFlow checks the durable-store transport: the plan and
// every completed range are journaled in cell-before-range order, and
// ranges already done are not re-executed.
func TestShardJournalFlow(t *testing.T) {
	want := mustFingerprint(t, localExec(t, shardSpec()))
	sr, ctr := newShardHarness(t, 2, ShardOptions{CellsPerShard: 2, MaxShards: 5})

	var mu sync.Mutex
	cells := map[string]int{}
	var doneRanges [][2]int
	var plannedTotal int
	var planned [][2]int
	h := server.RunHooks{
		CellObserved: func(a exp.CellArtifact) {
			mu.Lock()
			cells[a.Key]++
			mu.Unlock()
		},
		Ranges: &server.RangeLog{
			// [0,7) is already journaled: only [7,12) may execute.
			Done: [][2]int{{0, 7}},
			OnPlan: func(total int, ranges [][2]int) {
				mu.Lock()
				plannedTotal, planned = total, ranges
				mu.Unlock()
			},
			OnDone: func(lo, hi int) {
				mu.Lock()
				// Every cell of [lo,hi) must have been observed already —
				// the order recovery trusts.
				if lo < 7 {
					t.Errorf("completed range [%d,%d) overlaps journaled work", lo, hi)
				}
				doneRanges = append(doneRanges, [2]int{lo, hi})
				mu.Unlock()
			},
		},
	}
	// No artifacts are supplied for the journaled [0,7) — the merge must
	// self-heal by recomputing them locally, still byte-identically.
	res, err := sr.Run(shardSpec(), h)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, res); got != want {
		t.Fatal("resumed shard run diverged from single-node run")
	}
	if plannedTotal != 12 {
		t.Fatalf("planned total = %d, want 12", plannedTotal)
	}
	// 5 missing cells at 2 per shard → 3 shards covering exactly [7,12).
	if len(planned) != 3 || ctr.Shards.Load() != 3 {
		t.Fatalf("planned %v (%d executed), want 3 shards", planned, ctr.Shards.Load())
	}
	covered := complementRanges(doneRanges, 12)
	if !reflect.DeepEqual(covered, [][2]int{{0, 7}}) {
		t.Fatalf("completed ranges %v do not cover [7,12)", doneRanges)
	}
	// The journal sees each fresh heavy cell exactly once — the 5 shard
	// cells, plus the self-healed recomputations of [0,7)'s cells during
	// the merge (those journal too; replays would not).
	for key, n := range cells {
		if n != 1 {
			t.Errorf("cell %q journaled %d times", key, n)
		}
	}
}

// TestShardReshardOnFailure fault-injects width: every path — both
// backends and the dispatcher's local fallback — fails shards wider
// than 3 cells, so the initial [0,12) shard must halve twice before its
// four width-3 quarters succeed.
func TestShardReshardOnFailure(t *testing.T) {
	want := mustFingerprint(t, localExec(t, shardSpec()))
	tooWide := func(spec server.JobSpec) bool {
		return spec.Cells != nil && spec.Cells.Hi-spec.Cells.Lo > 3
	}
	failWide := func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
		if tooWide(spec) {
			return nil, fmt.Errorf("injected: shard too wide")
		}
		return server.Execute(spec, h)
	}
	ctr := &Counters{}
	var urls []string
	for i := 0; i < 2; i++ {
		hs, _ := newBackend(t, server.Config{Workers: 2, QueueDepth: 16, Runner: failWide})
		urls = append(urls, hs.URL)
	}
	pool := NewPool(urls, PoolConfig{Client: fastClient(ctr)})
	// The local fallback is the ladder's last rung: it must reject wide
	// shards too, or it would absorb the failure before resharding could.
	d := NewDispatcher(pool, Options{Counters: ctr, Local: func(ctx context.Context, spec server.JobSpec) (*server.Result, error) {
		if tooWide(spec) {
			return nil, fmt.Errorf("injected: local shard too wide")
		}
		return server.Execute(spec, server.RunHooks{Stop: func() bool { return ctx.Err() != nil }})
	}})
	sr, err := NewShardRunner(d, ShardOptions{
		CellsPerShard: 12,
		MinCells:      1,
		Exec:          execLocal,
		Counters:      ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sr.Run(shardSpec(), server.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, res); got != want {
		t.Fatal("resharded report diverged from single-node run")
	}
	// [0,12) fails, halves to [0,6)+[6,12), both fail, each halves to
	// width-3 quarters that succeed: 7 range executions, 3 reshards.
	if s, rs := ctr.Shards.Load(), ctr.ShardRetries.Load(); s != 7 || rs != 3 {
		t.Fatalf("shards=%d reshards=%d, want 7/3", s, rs)
	}
}

// TestShardRunnerPassthrough: jobs that cannot shard — wrong kind, or a
// spec already carrying a range (a shard arriving at a backend) — run
// whole through Exec with no fan-out.
func TestShardRunnerPassthrough(t *testing.T) {
	sr, ctr := newShardHarness(t, 1, ShardOptions{CellsPerShard: 2})

	vm := scenSpec(3)
	want := mustFingerprint(t, localExec(t, vm))
	res, err := sr.Run(vm, server.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, res); got != want {
		t.Fatal("vmserver passthrough diverged")
	}

	ranged := shardSpec()
	ranged.Cells = &server.CellRangeSpec{Lo: 0, Hi: 3}
	rres, err := sr.Run(ranged, server.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Cells) != 3 {
		t.Fatalf("range passthrough returned %d cells, want 3", len(rres.Cells))
	}
	if ctr.ShardJobs.Load() != 0 || ctr.Shards.Load() != 0 {
		t.Fatalf("passthrough jobs fanned out: %+v", ctr.Snapshot())
	}
}

// TestComplementRanges covers the journal-gap math, including the
// unsorted and out-of-bounds journals an older spec variant can leave.
func TestComplementRanges(t *testing.T) {
	cases := []struct {
		done  [][2]int
		total int
		want  [][2]int
	}{
		{nil, 5, [][2]int{{0, 5}}},
		{[][2]int{{0, 5}}, 5, nil},
		{[][2]int{{1, 2}, {3, 4}}, 5, [][2]int{{0, 1}, {2, 3}, {4, 5}}},
		{[][2]int{{3, 4}, {1, 2}}, 5, [][2]int{{0, 1}, {2, 3}, {4, 5}}}, // unsorted
		{[][2]int{{-3, 2}, {4, 99}}, 5, [][2]int{{2, 4}}},               // clipped
		{[][2]int{{0, 3}, {2, 4}}, 6, [][2]int{{4, 6}}},                 // overlapping
		{[][2]int{{5, 5}, {2, 1}}, 3, [][2]int{{0, 3}}},                 // degenerate entries
		{[][2]int{{0, 1}, {1, 2}, {2, 3}}, 4, [][2]int{{3, 4}}},         // adjacent
	}
	for i, tc := range cases {
		if got := complementRanges(tc.done, tc.total); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("case %d: complementRanges(%v, %d) = %v, want %v", i, tc.done, tc.total, got, tc.want)
		}
	}
}

// TestPlanShards pins the planner's shape guarantees: shard count,
// near-equal sizes, fragment boundaries never spanned.
func TestPlanShards(t *testing.T) {
	sizes := func(ranges [][2]int) []int {
		var out []int
		for _, r := range ranges {
			out = append(out, r[1]-r[0])
		}
		return out
	}
	// The acceptance shape: 12 cells, 2 per shard, capped at 5 shards →
	// exactly 5 near-equal shards.
	got := planShards([][2]int{{0, 12}}, 2, 5)
	if !reflect.DeepEqual(sizes(got), []int{3, 3, 2, 2, 2}) {
		t.Fatalf("12/2/max5 = %v", got)
	}
	// Contiguity across the plan.
	for i := 1; i < len(got); i++ {
		if got[i][0] != got[i-1][1] {
			t.Fatalf("plan not contiguous: %v", got)
		}
	}
	// Two fragments must get at least one shard each even when one alone
	// would satisfy the cell budget.
	got = planShards([][2]int{{0, 1}, {5, 6}}, 10, 16)
	if !reflect.DeepEqual(got, [][2]int{{0, 1}, {5, 6}}) {
		t.Fatalf("fragment floor: %v", got)
	}
	// Shard allocation follows fragment size.
	got = planShards([][2]int{{0, 8}, {10, 12}}, 2, 5)
	if len(got) != 5 {
		t.Fatalf("8+2 cells at cps=2 max=5: %v", got)
	}
	if last := got[len(got)-1]; last != [2]int{10, 12} {
		t.Fatalf("small fragment should keep one shard: %v", got)
	}
	if planShards(nil, 3, 4) != nil {
		t.Fatal("empty missing set must plan nothing")
	}
	// splitEven invariants: sizes differ by at most one, larger first.
	for _, n := range []int{1, 2, 3, 5, 7} {
		parts := splitEven(3, 17, n)
		if len(parts) != n {
			t.Fatalf("splitEven(3,17,%d) = %v", n, parts)
		}
		cur := 3
		for i, p := range parts {
			if p[0] != cur {
				t.Fatalf("splitEven(3,17,%d) not contiguous: %v", n, parts)
			}
			cur = p[1]
			if i > 0 && p[1]-p[0] > parts[i-1][1]-parts[i-1][0] {
				t.Fatalf("splitEven(3,17,%d) sizes not descending: %v", n, parts)
			}
		}
		if cur != 17 {
			t.Fatalf("splitEven(3,17,%d) does not cover: %v", n, parts)
		}
	}
	if got := splitEven(0, 2, 5); len(got) != 2 {
		t.Fatalf("splitEven with n > size = %v", got)
	}
}
