package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"greendimm/internal/server"
)

// TestDispatcherFaultInjection is the acceptance scenario: three
// backends — one permanently queue-full, one that accepts jobs and
// stalls them forever, one that serves correctly — and a 20-spec
// dispatch that must come back complete, in input order, byte-identical
// to local execution, having recorded at least one retry and one hedge
// along the way.
func TestDispatcherFaultInjection(t *testing.T) {
	ctr := &Counters{}
	full := new429Backend(t)
	stall, _ := newBackend(t, server.Config{Workers: 4, QueueDepth: 32, Runner: stallRunner})
	good, _ := newBackend(t, server.Config{Workers: 4, QueueDepth: 32})

	pool := NewPool([]string{full.URL, stall.URL, good.URL}, PoolConfig{
		Client:        fastClient(ctr),
		FailThreshold: 2,
	})
	d := NewDispatcher(pool, Options{HedgeAfter: 75 * time.Millisecond, Counters: ctr})

	const n = 20
	specs := make([]server.JobSpec, n)
	for i := range specs {
		specs[i] = scenSpec(int64(i + 1))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := d.Run(ctx, specs)
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
		want := localExec(t, specs[i])
		if res.Text != want.Text {
			t.Errorf("result %d text differs from local execution:\nremote:\n%s\nlocal:\n%s", i, res.Text, want.Text)
		}
		if got, wantFP := mustFingerprint(t, res), mustFingerprint(t, want); got != wantFP {
			t.Errorf("result %d fingerprint %s != local %s", i, got, wantFP)
		}
	}

	snap := ctr.Snapshot()
	if snap.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (the 429 backend forces retries)", snap.Retries)
	}
	if snap.Hedges < 1 {
		t.Errorf("hedges = %d, want >= 1 (the stalling backend forces hedges)", snap.Hedges)
	}
	if snap.HedgeWins < 1 {
		t.Errorf("hedge wins = %d, want >= 1 (stalled primaries never finish)", snap.HedgeWins)
	}
	if snap.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1 (queue-full submissions must move on)", snap.Failovers)
	}
	if snap.Divergences != 0 {
		t.Errorf("divergences = %d, want 0", snap.Divergences)
	}
	t.Logf("counters: %+v", snap)
}

// TestDispatcherLocalFallback: with every backend down, the same
// dispatch succeeds entirely in-process.
func TestDispatcherLocalFallback(t *testing.T) {
	dead := make([]string, 3)
	for i := range dead {
		hs, _ := newBackend(t, server.Config{Workers: 1, QueueDepth: 1,
			Runner: func(server.JobSpec, server.RunHooks) (*server.Result, error) { return &server.Result{Text: "x"}, nil }})
		hs.Close()
		dead[i] = hs.URL
	}

	ctr := &Counters{}
	pool := NewPool(dead, PoolConfig{Client: fastClient(ctr), FailThreshold: 2})
	d := NewDispatcher(pool, Options{Counters: ctr})

	const n = 5
	specs := make([]server.JobSpec, n)
	for i := range specs {
		specs[i] = scenSpec(int64(i + 1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := d.Run(ctx, specs)
	if err != nil {
		t.Fatalf("dispatch with all backends down: %v", err)
	}
	for i, res := range results {
		want := localExec(t, specs[i])
		if res.Text != want.Text {
			t.Errorf("result %d differs from local execution", i)
		}
	}
	snap := ctr.Snapshot()
	if snap.LocalRuns != n {
		t.Errorf("local runs = %d, want %d", snap.LocalRuns, n)
	}
	if snap.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1 (initial optimistic picks must fail over)", snap.Failovers)
	}
}

// TestDispatcherDetectsDivergence: a backend that corrupts reports must
// be caught by the merge cross-check when a duplicated spec lands on it
// and on an honest backend.
func TestDispatcherDetectsDivergence(t *testing.T) {
	delayExec := func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
		// Hold both copies in flight long enough that the two duplicate
		// specs are leased to the two different backends.
		time.Sleep(300 * time.Millisecond)
		return server.Execute(spec, h)
	}
	corrupt, _ := newBackend(t, server.Config{Workers: 2, QueueDepth: 8,
		Runner: func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
			res, err := delayExec(spec, h)
			if err != nil {
				return nil, err
			}
			res.Text += "bitflip\n"
			return res, nil
		}})
	honest, _ := newBackend(t, server.Config{Workers: 2, QueueDepth: 8, Runner: delayExec})

	ctr := &Counters{}
	pool := NewPool([]string{corrupt.URL, honest.URL}, PoolConfig{Client: fastClient(ctr)})
	d := NewDispatcher(pool, Options{Counters: ctr})

	spec := scenSpec(7)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := d.Run(ctx, []server.JobSpec{spec, spec})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("err = %v, want a *DivergenceError", err)
	}
	if ctr.Snapshot().Divergences != 1 {
		t.Errorf("divergences = %d, want 1", ctr.Snapshot().Divergences)
	}
}

// TestDispatcherServesCacheHits: re-dispatching the same specs is served
// from the backend cache (terminal at submit) and still merges clean.
func TestDispatcherServesCacheHits(t *testing.T) {
	good, _ := newBackend(t, server.Config{Workers: 2, QueueDepth: 8})
	ctr := &Counters{}
	pool := NewPool([]string{good.URL}, PoolConfig{Client: fastClient(ctr)})
	d := NewDispatcher(pool, Options{Counters: ctr})

	specs := []server.JobSpec{scenSpec(1), scenSpec(2)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	first, err := d.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := d.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if mustFingerprint(t, first[i]) != mustFingerprint(t, second[i]) {
			t.Errorf("cached result %d differs from first run", i)
		}
	}
}

// TestDispatcherRejectsInvalidSpec: validation happens up front, before
// any job is routed.
func TestDispatcherRejectsInvalidSpec(t *testing.T) {
	good, _ := newBackend(t, server.Config{Workers: 1, QueueDepth: 4})
	pool := NewPool([]string{good.URL}, PoolConfig{Client: fastClient(nil)})
	d := NewDispatcher(pool, Options{})
	_, err := d.Run(context.Background(), []server.JobSpec{{Kind: "nonsense"}})
	var invalid *server.InvalidSpecError
	if !errors.As(err, &invalid) {
		t.Fatalf("err = %v, want *server.InvalidSpecError", err)
	}
	if d.Counters().Submitted != 0 {
		t.Errorf("submitted = %d, want 0", d.Counters().Submitted)
	}
}
