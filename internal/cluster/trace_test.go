package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"greendimm/internal/metrics"
	"greendimm/internal/obs"
	"greendimm/internal/server"
)

// TestDispatcherRunTracedSpans is the cluster half of the tracing
// acceptance: under the three-backend fault-injection topology (one
// permanently queue-full, one that stalls every job, one honest), a
// traced dispatch must surface the dispatcher's whole decision ladder —
// attempts, client backoffs, failovers, hedges, and the merge — in the
// per-spec traces, and the attempt-latency histogram must fill in.
func TestDispatcherRunTracedSpans(t *testing.T) {
	ctr := &Counters{AttemptSeconds: metrics.NewLogHistogram(0.001, 3600, 3)}
	full := new429Backend(t)
	stall, _ := newBackend(t, server.Config{Workers: 4, QueueDepth: 32, Runner: stallRunner})
	good, _ := newBackend(t, server.Config{Workers: 4, QueueDepth: 32})

	pool := NewPool([]string{full.URL, stall.URL, good.URL}, PoolConfig{
		Client:        fastClient(ctr),
		FailThreshold: 2,
	})
	d := NewDispatcher(pool, Options{HedgeAfter: 75 * time.Millisecond, Counters: ctr})

	const n = 10
	specs := make([]server.JobSpec, n)
	traces := make([]*obs.Trace, n)
	for i := range specs {
		specs[i] = scenSpec(int64(i + 1))
		traces[i] = obs.NewTrace(0)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results, err := d.RunTraced(ctx, specs, traces)
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}

	union := make(map[string]int)
	for i, tr := range traces {
		names := make(map[string]int)
		for _, sp := range tr.View().Spans {
			names[sp.Name]++
			union[sp.Name]++
		}
		if names["merge"] != 1 {
			t.Errorf("trace %d: merge spans = %d, want exactly 1 (%v)", i, names["merge"], names)
		}
		// A winning execution publishes its span before the dispatch
		// returns; losers publish asynchronously (finishAttempt's
		// forwarding goroutine) and may land after this read. So a job
		// whose hedge won can legitimately show only its "hedge" span
		// here — any of the three proves the job actually executed
		// somewhere.
		if names["attempt"] < 1 && names["local"] < 1 && names["hedge"] < 1 {
			t.Errorf("trace %d: no attempt, hedge or local span (%v)", i, names)
		}
	}
	// The topology forces each failure mode at least once somewhere.
	if union["hedge"] < 1 {
		t.Errorf("hedge spans = %d, want >= 1 (stalling backend forces hedges); union %v", union["hedge"], union)
	}
	if union["backoff"] < 1 {
		t.Errorf("backoff spans = %d, want >= 1 (the 429 backend forces client retries); union %v", union["backoff"], union)
	}
	if union["failover"] < 1 {
		t.Errorf("failover marks = %d, want >= 1; union %v", union["failover"], union)
	}

	snap := ctr.Snapshot()
	if snap.AttemptCount < int64(n) {
		t.Errorf("attempt count = %d, want >= %d", snap.AttemptCount, n)
	}
	if snap.AttemptP50S <= 0 || snap.AttemptP90S < snap.AttemptP50S {
		t.Errorf("attempt quantiles p50=%g p90=%g, want 0 < p50 <= p90", snap.AttemptP50S, snap.AttemptP90S)
	}
}

// TestRunTracedLengthMismatch: a traces slice that does not match specs
// is a caller bug and must fail before any work is routed.
func TestRunTracedLengthMismatch(t *testing.T) {
	good, _ := newBackend(t, server.Config{Workers: 1, QueueDepth: 4})
	pool := NewPool([]string{good.URL}, PoolConfig{Client: fastClient(nil)})
	d := NewDispatcher(pool, Options{})
	_, err := d.RunTraced(context.Background(), []server.JobSpec{scenSpec(1), scenSpec(2)}, []*obs.Trace{obs.NewTrace(0)})
	if err == nil {
		t.Fatal("mismatched traces accepted")
	}
	if d.Counters().Submitted != 0 {
		t.Errorf("submitted = %d, want 0", d.Counters().Submitted)
	}
}

// envelopeBackend answers every submission with the given status and raw
// body, counting requests.
func envelopeBackend(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(hs.Close)
	return hs
}

// TestClientParsesErrorEnvelope: the client decodes the v1 envelope's
// machine code and retry hint, falls back to the legacy bare-string
// shape for old peers, and lets the code override the HTTP status when
// classifying transience.
func TestClientParsesErrorEnvelope(t *testing.T) {
	oneShot := ClientConfig{Retry: RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}}

	cases := []struct {
		name          string
		status        int
		body          string
		header        string // Retry-After header, "" for none
		wantCode      string
		wantMsg       string
		wantRetry     time.Duration
		wantTransient bool
	}{
		{
			name:     "v1 envelope with retry hint",
			status:   http.StatusTooManyRequests,
			body:     `{"error":{"code":"queue_full","message":"server: job queue full","retry_after_s":7}}`,
			wantCode: "queue_full", wantMsg: "server: job queue full",
			wantRetry: 7 * time.Second, wantTransient: true,
		},
		{
			name:     "header beats smaller body hint",
			status:   http.StatusTooManyRequests,
			body:     `{"error":{"code":"queue_full","message":"full","retry_after_s":2}}`,
			header:   "9",
			wantCode: "queue_full", wantMsg: "full",
			wantRetry: 9 * time.Second, wantTransient: true,
		},
		{
			name:     "legacy bare-string envelope",
			status:   http.StatusTooManyRequests,
			body:     `{"error":"server: job queue full"}`,
			wantCode: "", wantMsg: "server: job queue full",
			wantRetry: 0, wantTransient: true, // status fallback
		},
		{
			name:     "code overrides retryable-looking status",
			status:   http.StatusInternalServerError,
			body:     `{"error":{"code":"invalid_spec","message":"bad spec"}}`,
			wantCode: "invalid_spec", wantMsg: "bad spec",
			wantTransient: false,
		},
		{
			name:     "code overrides terminal-looking status",
			status:   http.StatusBadRequest,
			body:     `{"error":{"code":"draining","message":"shutting down"}}`,
			wantCode: "draining", wantMsg: "shutting down",
			wantTransient: true,
		},
		{
			name:     "unparseable body keeps status classification",
			status:   http.StatusServiceUnavailable,
			body:     `not json at all`,
			wantCode: "", wantMsg: "",
			wantTransient: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.header != "" {
					w.Header().Set("Retry-After", tc.header)
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				fmt.Fprint(w, tc.body)
			}))
			defer hs.Close()

			_, err := NewClient(hs.URL, oneShot).Submit(context.Background(), scenSpec(1))
			var se *StatusError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want *StatusError", err)
			}
			if se.Status != tc.status || se.Code != tc.wantCode || se.Msg != tc.wantMsg {
				t.Errorf("StatusError = %+v, want status %d code %q msg %q", se, tc.status, tc.wantCode, tc.wantMsg)
			}
			if se.RetryAfter != tc.wantRetry {
				t.Errorf("RetryAfter = %v, want %v", se.RetryAfter, tc.wantRetry)
			}
			if transient(err) != tc.wantTransient {
				t.Errorf("transient = %v, want %v", transient(err), tc.wantTransient)
			}
		})
	}
}

// TestClientRecordsBackoffSpans: a context-carried trace picks up one
// backoff span per retry sleep, tagged with the backend URL and the
// error that caused it.
func TestClientRecordsBackoffSpans(t *testing.T) {
	hs := envelopeBackend(t, http.StatusTooManyRequests,
		`{"error":{"code":"queue_full","message":"full","retry_after_s":0}}`)
	c := NewClient(hs.URL, ClientConfig{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	tr := obs.NewTrace(0)
	_, err := c.Submit(obs.ContextWith(context.Background(), tr), scenSpec(1))
	if err == nil {
		t.Fatal("submit against a permanently full backend succeeded")
	}
	var backoffs []obs.Span
	for _, sp := range tr.View().Spans {
		if sp.Name == "backoff" {
			backoffs = append(backoffs, sp)
		}
	}
	if len(backoffs) != 2 { // 3 attempts -> 2 sleeps
		t.Fatalf("backoff spans = %d, want 2: %+v", len(backoffs), backoffs)
	}
	for _, sp := range backoffs {
		if sp.Arg != hs.URL {
			t.Errorf("backoff arg = %q, want backend URL %q", sp.Arg, hs.URL)
		}
		if sp.Err == "" {
			t.Errorf("backoff span missing its causing error: %+v", sp)
		}
	}
}
