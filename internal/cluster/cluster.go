// Package cluster composes a set of greendimmd daemons into one logical
// simulation backend. It layers, bottom up:
//
//   - Client: a typed HTTP client for the daemon's job API (submit,
//     poll/wait, cancel, healthz) with per-attempt timeouts and capped
//     exponential backoff with jitter on transient failures (connection
//     errors, 429 queue-full — honoring the server's Retry-After hint —
//     and 5xx).
//   - Pool: a health scoreboard over the backends. It counts consecutive
//     transport failures, optionally probes /healthz on a period, and
//     leases work to the healthy backend with the fewest outstanding
//     jobs.
//   - Dispatcher: fans a slice of server.JobSpec across the pool,
//     failing a job over to the next backend when one misbehaves,
//     optionally hedging stragglers onto a second backend after a
//     latency threshold (first result wins, the loser is cancelled), and
//     falling back to in-process execution (server.Execute) when no
//     healthy backend remains.
//   - Coordinator: an http.Handler wrapper that turns a daemon into an
//     overflow router — when its local queue is full it proxies the
//     submission to a healthy peer instead of returning 429.
//
// The whole design leans on the repo-wide determinism invariant: a spec
// hash (server.SpecHash) fully determines the report bytes, at any
// parallelism, on any machine. That is what makes retries, hedges and
// the local fallback interchangeable — and it is checked, not assumed:
// the dispatcher fingerprints every result and errors out if two runs of
// the same spec hash ever disagree.
package cluster

import (
	"sync/atomic"

	"greendimm/internal/metrics"
)

// Counters aggregates dispatcher and client activity. All fields are
// atomics; read a consistent copy with Snapshot. One Counters instance
// is shared by a Pool's clients and its Dispatcher.
type Counters struct {
	// Submitted counts jobs handed to a backend (hedges included).
	Submitted atomic.Int64
	// Retries counts HTTP attempts beyond the first, across all calls —
	// the backoff loop inside Client.
	Retries atomic.Int64
	// Failovers counts jobs moved to a different backend after one
	// failed them (transport error, queue rejection, or a failed job
	// state).
	Failovers atomic.Int64
	// Hedges counts duplicate submissions launched after HedgeAfter.
	Hedges atomic.Int64
	// HedgeWins counts hedges whose copy finished first.
	HedgeWins atomic.Int64
	// LocalRuns counts in-process fallback executions.
	LocalRuns atomic.Int64
	// Divergences counts same-spec-hash result pairs whose report bytes
	// disagreed. Any nonzero value fails the dispatch.
	Divergences atomic.Int64
	// ProxiedJobs counts submissions a Coordinator routed to a peer.
	ProxiedJobs atomic.Int64
	// ShardJobs counts jobs a ShardRunner fanned out as cell-range
	// shards; Shards counts individual range executions (reshard halves
	// included); ShardRetries counts failed ranges that re-sharded.
	ShardJobs    atomic.Int64
	Shards       atomic.Int64
	ShardRetries atomic.Int64
	// WarmPicks counts dispatches routed by warm-key overlap (a scored
	// pick where some backend reported a positive overlap);
	// PeerMemoEntries counts memo entries imported from warm peers.
	WarmPicks       atomic.Int64
	PeerMemoEntries atomic.Int64

	// AttemptSeconds, when non-nil, observes the wall latency of every
	// backend attempt the dispatcher makes — primaries, hedges, and
	// failover re-submissions alike, whether they win or lose. Lock-free;
	// share one histogram across the fleet.
	AttemptSeconds *metrics.Histogram
}

// CounterSnapshot is one consistent read of a Counters.
type CounterSnapshot struct {
	Submitted       int64 `json:"submitted"`
	Retries         int64 `json:"retries"`
	Failovers       int64 `json:"failovers"`
	Hedges          int64 `json:"hedges"`
	HedgeWins       int64 `json:"hedge_wins"`
	LocalRuns       int64 `json:"local_runs"`
	Divergences     int64 `json:"divergences"`
	ProxiedJobs     int64 `json:"proxied_jobs"`
	ShardJobs       int64 `json:"shard_jobs,omitempty"`
	Shards          int64 `json:"shards,omitempty"`
	ShardRetries    int64 `json:"shard_retries,omitempty"`
	WarmPicks       int64 `json:"warm_picks,omitempty"`
	PeerMemoEntries int64 `json:"peer_memo_entries,omitempty"`

	// Attempt-latency summary from AttemptSeconds (zero when the
	// histogram is unset or empty).
	AttemptCount int64   `json:"attempt_count,omitempty"`
	AttemptP50S  float64 `json:"attempt_p50_s,omitempty"`
	AttemptP90S  float64 `json:"attempt_p90_s,omitempty"`
}

// Snapshot reads every counter.
func (c *Counters) Snapshot() CounterSnapshot {
	s := CounterSnapshot{
		Submitted:       c.Submitted.Load(),
		Retries:         c.Retries.Load(),
		Failovers:       c.Failovers.Load(),
		Hedges:          c.Hedges.Load(),
		HedgeWins:       c.HedgeWins.Load(),
		LocalRuns:       c.LocalRuns.Load(),
		Divergences:     c.Divergences.Load(),
		ProxiedJobs:     c.ProxiedJobs.Load(),
		ShardJobs:       c.ShardJobs.Load(),
		Shards:          c.Shards.Load(),
		ShardRetries:    c.ShardRetries.Load(),
		WarmPicks:       c.WarmPicks.Load(),
		PeerMemoEntries: c.PeerMemoEntries.Load(),
	}
	if h := c.AttemptSeconds; h.Count() > 0 {
		s.AttemptCount = h.Count()
		s.AttemptP50S = h.Quantile(0.5)
		s.AttemptP90S = h.Quantile(0.9)
	}
	return s
}
