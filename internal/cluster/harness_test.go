package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"greendimm/internal/exp"
	"greendimm/internal/server"
)

// fastClient is a retry policy scaled for tests: real backoff shape,
// millisecond delays.
func fastClient(ctr *Counters) ClientConfig {
	return ClientConfig{
		Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		AttemptTimeout: 5 * time.Second,
		PollWait:       50 * time.Millisecond,
		Counters:       ctr,
	}
}

// newBackend starts a real greendimmd server over httptest. A nil
// cfg.Runner means real simulation.
func newBackend(t testing.TB, cfg server.Config) (*httptest.Server, *server.Server) {
	t.Helper()
	s := server.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return hs, s
}

// new429Backend is a backend whose queue is permanently full: healthy
// /healthz, every submission rejected with 429.
func new429Backend(t testing.TB) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"server: job queue full"}`)
	}))
	t.Cleanup(hs.Close)
	return hs
}

// stallRunner accepts every job and never finishes it — it only returns
// once the job is cancelled (hedge lost, deadline, shutdown).
func stallRunner(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
	for !h.Stop() {
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("stalled job aborted")
}

// scenSpec builds a cheap, seed-dependent real job: a 0.05-simulated-hour
// VM-server scenario. Different seeds give different reports, so result
// ordering is observable.
func scenSpec(seed int64) server.JobSpec {
	return server.JobSpec{
		Kind:     server.KindVMServer,
		VMServer: &exp.VMScenario{KSM: true, GreenDIMM: true, Hours: 0.05, Seed: seed},
	}
}

// localExec runs the spec in-process — the reference bytes every remote
// execution must match.
func localExec(t testing.TB, spec server.JobSpec) *server.Result {
	t.Helper()
	res, err := server.Execute(spec, server.RunHooks{})
	if err != nil {
		t.Fatalf("local execute: %v", err)
	}
	return res
}

// mustFingerprint hashes a result's report bytes.
func mustFingerprint(t testing.TB, res *server.Result) string {
	t.Helper()
	fp, err := fingerprint(res)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}
