package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"greendimm/internal/obs"
	"greendimm/internal/server"
	"greendimm/internal/sweep"
)

// RetryPolicy caps the backoff loop around one logical API call. Delays
// grow exponentially from BaseDelay, are capped at MaxDelay, and carry
// equal jitter (half fixed, half uniform-random) so a fleet of clients
// does not retry in lockstep. A 429 Retry-After hint from the server
// overrides a computed delay when larger.
type RetryPolicy struct {
	// MaxAttempts bounds tries per call, first included (default 4).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay after the first failure
	// (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 3s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 3 * time.Second
	}
	return p
}

// delay computes the post-jitter sleep before attempt n+1 (n counts from
// 0 = the first failure).
func (p RetryPolicy) delay(n int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Equal jitter keeps at least half the exponential spacing while
	// decorrelating concurrent retriers.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// StatusError is a non-2xx API response. Transient failures (queue
// full, draining, 5xx) are retried; everything else aborts the call.
type StatusError struct {
	Status int
	// Code is the machine-readable error code from the v1 envelope
	// ({"error": {"code": ...}}), empty when the backend predates it or
	// sent something else entirely.
	Code string
	Msg  string
	// RetryAfter carries the server's retry hint on queue_full — the
	// larger of the Retry-After header and the envelope's retry_after_s
	// (zero when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("cluster: backend returned %d (%s): %s", e.Status, e.Code, e.Msg)
	}
	return fmt.Sprintf("cluster: backend returned %d: %s", e.Status, e.Msg)
}

// transient reports whether an error is worth retrying on the same
// backend. The envelope code decides when present — it survives proxies
// that rewrite statuses — with the HTTP status as the fallback for
// backends that predate the envelope. The caller must separately stop
// when its own context is done — a per-attempt timeout also surfaces as
// context.DeadlineExceeded and is retryable.
func transient(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case server.CodeQueueFull, server.CodeDraining, server.CodeInternal:
			return true
		case server.CodeInvalidSpec, server.CodeNotFound:
			return false
		}
		return se.Status == http.StatusTooManyRequests || se.Status >= 500
	}
	return true // connection refused/reset, EOF, attempt timeout, ...
}

// ClientConfig tunes a Client. Zero values take defaults.
type ClientConfig struct {
	// HTTP is the transport (default http.DefaultClient). Timeouts are
	// applied per attempt via AttemptTimeout, not here.
	HTTP *http.Client
	// Retry is the backoff policy for transient failures.
	Retry RetryPolicy
	// AttemptTimeout bounds one HTTP round trip (default 15s). Wait
	// attempts get AttemptTimeout + PollWait, since the server holds the
	// request open for the poll window.
	AttemptTimeout time.Duration
	// PollWait is the long-poll window passed as ?wait= (default 10s).
	PollWait time.Duration
	// Counters, when non-nil, receives retry accounting.
	Counters *Counters
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.HTTP == nil {
		c.HTTP = http.DefaultClient
	}
	c.Retry = c.Retry.withDefaults()
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 15 * time.Second
	}
	if c.PollWait <= 0 {
		c.PollWait = 10 * time.Second
	}
	return c
}

// Client is a typed client for one greendimmd backend's job API. All
// methods are safe for concurrent use.
type Client struct {
	base string
	cfg  ClientConfig
}

// NewClient returns a client for the daemon at base (e.g.
// "http://host:8080").
func NewClient(base string, cfg ClientConfig) *Client {
	return &Client{base: strings.TrimRight(base, "/"), cfg: cfg.withDefaults()}
}

// Base returns the backend URL the client targets.
func (c *Client) Base() string { return c.base }

// Submit posts a job spec. It returns the accepted job's view — state
// "succeeded" with the result attached on a cache hit, "queued"
// otherwise — retrying transient failures per the policy.
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (server.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return server.JobView{}, fmt.Errorf("cluster: encoding spec: %w", err)
	}
	var v server.JobView
	err = c.retrying(ctx, func(actx context.Context) error {
		return c.do(actx, http.MethodPost, "/v1/jobs", body, &v)
	})
	return v, err
}

// Get fetches one job snapshot without blocking.
func (c *Client) Get(ctx context.Context, id string) (server.JobView, error) {
	var v server.JobView
	err := c.retrying(ctx, func(actx context.Context) error {
		return c.do(actx, http.MethodGet, "/v1/jobs/"+id, nil, &v)
	})
	return v, err
}

// Wait long-polls the job until it reaches a terminal state or ctx is
// done. Transient poll failures are retried with backoff; the attempt
// budget resets on every successful poll, so a long-running job is not
// abandoned because of unrelated blips.
func (c *Client) Wait(ctx context.Context, id string) (server.JobView, error) {
	wait := c.cfg.PollWait.String()
	fails := 0
	for {
		var v server.JobView
		actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout+c.cfg.PollWait)
		err := c.do(actx, http.MethodGet, "/v1/jobs/"+id+"?wait="+wait, nil, &v)
		cancel()
		switch {
		case err == nil:
			if terminal(v.State) {
				return v, nil
			}
			fails = 0
		case ctx.Err() != nil:
			return server.JobView{}, ctx.Err()
		case !transient(err):
			return server.JobView{}, err
		default:
			fails++
			if fails >= c.cfg.Retry.MaxAttempts {
				return server.JobView{}, err
			}
			if c.cfg.Counters != nil {
				c.cfg.Counters.Retries.Add(1)
			}
			// The dispatcher threads the job's trace through ctx; a nil
			// trace (no tracing, or a direct caller) records nothing.
			sp := obs.FromContext(ctx).StartArg("backoff", c.base)
			serr := sleepCtx(ctx, retryDelay(c.cfg.Retry, fails-1, err))
			sp.EndErr(err)
			if serr != nil {
				return server.JobView{}, serr
			}
		}
	}
}

// Cancel asks the backend to cancel a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobView, error) {
	var v server.JobView
	err := c.retrying(ctx, func(actx context.Context) error {
		return c.do(actx, http.MethodDelete, "/v1/jobs/"+id, nil, &v)
	})
	return v, err
}

// MemoKeys fetches the backend's warm memo-key digest, with one attempt
// and no retries: the digest is an optimization input, refreshed on a
// short TTL by the Warm cache, and a failed fetch just reads as a cold
// peer.
func (c *Client) MemoKeys(ctx context.Context) ([]string, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var v server.MemoKeysView
	if err := c.do(actx, http.MethodGet, "/v1/memo/keys", nil, &v); err != nil {
		return nil, err
	}
	return v.Keys, nil
}

// MemoFetch pulls the named memo entries from the backend, one attempt,
// no retries (a failed prefetch degrades to computing locally). The
// response omits keys the peer does not hold; entries are NOT verified
// here — sweep.Memo.Import runs each through the codec before trusting
// it.
func (c *Client) MemoFetch(ctx context.Context, keys []string) ([]sweep.Entry, error) {
	body, err := json.Marshal(server.MemoFetchRequest{Keys: keys})
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding memo fetch: %w", err)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var v server.MemoFetchResponse
	if err := c.do(actx, http.MethodPost, "/v1/memo/entries", body, &v); err != nil {
		return nil, err
	}
	return v.Entries, nil
}

// Healthz probes the backend once, with no retries — the Pool's
// scoreboard is the retry layer for health.
func (c *Client) Healthz(ctx context.Context) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	return c.do(actx, http.MethodGet, "/healthz", nil, nil)
}

// terminal mirrors the server's lifecycle: no transitions leave these.
func terminal(s server.JobState) bool {
	return s == server.StateSucceeded || s == server.StateFailed || s == server.StateCanceled
}

// retrying runs one attempt function under the backoff policy, applying
// the per-attempt timeout and honoring 429 Retry-After hints.
func (c *Client) retrying(ctx context.Context, attempt func(context.Context) error) error {
	var err error
	for n := 0; n < c.cfg.Retry.MaxAttempts; n++ {
		if n > 0 {
			if c.cfg.Counters != nil {
				c.cfg.Counters.Retries.Add(1)
			}
			// Record the backoff (with the error that caused it) into the
			// job trace the dispatcher threaded through ctx, if any.
			sp := obs.FromContext(ctx).StartArg("backoff", c.base)
			serr := sleepCtx(ctx, retryDelay(c.cfg.Retry, n-1, err))
			sp.EndErr(err)
			if serr != nil {
				return err // context done mid-backoff: report the last cause
			}
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		err = attempt(actx)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || !transient(err) {
			return err
		}
	}
	return err
}

// retryDelay is the policy delay, stretched to the server's Retry-After
// hint when one came back larger.
func retryDelay(p RetryPolicy, n int, err error) time.Duration {
	d := p.delay(n)
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > d {
		d = se.RetryAfter
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do performs one HTTP round trip and decodes the JSON response into out
// (skipped when out is nil). Non-2xx responses become *StatusError with
// the server's error envelope and Retry-After hint attached.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Status: resp.StatusCode}
		// The v1 envelope nests an object under "error"; backends from
		// before the envelope sent a bare string there. Decode the field
		// raw and try both, so old peers keep working (their StatusError
		// just has no Code and transient() falls back to the status).
		var envelope struct {
			Error json.RawMessage `json:"error"`
		}
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope); derr == nil && len(envelope.Error) > 0 {
			var body server.ErrorBody
			if json.Unmarshal(envelope.Error, &body) == nil && body.Code != "" {
				se.Code = body.Code
				se.Msg = body.Message
				se.RetryAfter = time.Duration(body.RetryAfterS) * time.Second
			} else {
				var msg string
				if json.Unmarshal(envelope.Error, &msg) == nil {
					se.Msg = msg
				}
			}
		}
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && time.Duration(secs)*time.Second > se.RetryAfter {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return se
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decoding %s %s response: %w", method, path, err)
	}
	return nil
}
