package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"greendimm/internal/exp"
	"greendimm/internal/server"
	"greendimm/internal/sweep"
)

// shardSpecSeed is shardSpec with a chosen seed — distinct seeds give
// distinct memo key sets, which benchmarks use to defeat caches.
func shardSpecSeed(seed int64) server.JobSpec {
	return server.JobSpec{Kind: server.KindExperiment, Experiment: &server.ExperimentSpec{ID: "fig8", Quick: true, Seed: seed}}
}

// warmEntries computes fig8's full quick sweep in-process and exports
// the resulting memo entries — the canonical way to make a peer warm.
func warmEntries(tb testing.TB, seed int64) []sweep.Entry {
	tb.Helper()
	src := sweep.NewMemo(0)
	src.SetCodec(exp.MemoCodec())
	o := exp.Options{Quick: true, Seed: seed, Parallelism: 1, Memo: src}
	if _, _, err := exp.Registry()["fig8"](o); err != nil {
		tb.Fatal(err)
	}
	entries := src.Export(nil)
	if len(entries) == 0 {
		tb.Fatal("full sweep exported no memo entries")
	}
	return entries
}

func TestPickScoredPrefersWarmOverlap(t *testing.T) {
	p := NewPool([]string{"a", "b", "c"}, PoolConfig{})
	if l := p.Pick(nil); l.URL() != "a" {
		t.Fatalf("baseline Pick = %s, want a (config order)", l.URL())
	}
	// a now has 1 outstanding job; a positive score still wins over the
	// idle backends.
	if l := p.PickScored(nil, func(url string) int {
		if url == "a" {
			return 3
		}
		return 0
	}); l.URL() != "a" {
		t.Fatalf("scored pick = %s, want the warm backend a", l.URL())
	}
	// Uniform scores degenerate to least-outstanding + config order.
	if l := p.PickScored(nil, func(string) int { return 1 }); l.URL() != "b" {
		t.Fatalf("uniform-score pick = %s, want b", l.URL())
	}
	// Nil score is exactly Pick: c is now the only idle backend.
	if l := p.PickScored(nil, nil); l.URL() != "c" {
		t.Fatalf("nil-score pick = %s, want c", l.URL())
	}
	// Exclusion beats score.
	if l := p.PickScored(map[string]bool{"a": true}, func(url string) int {
		switch url {
		case "a":
			return 9
		case "b":
			return 1
		}
		return 0
	}); l.URL() != "b" {
		t.Fatalf("excluded-a pick = %s, want b", l.URL())
	}
}

// TestWarmScorerRoutesAndPrefetches is the exchange e2e over real
// backends: a warm peer's digest drives scoring and PickScored, Prefetch
// pulls its entries into the local memo, and a local run against the
// fetched entries is byte-identical to cold computation with zero
// baseline recomputes.
func TestWarmScorerRoutesAndPrefetches(t *testing.T) {
	ctr := &Counters{}
	hsCold, _ := newBackend(t, server.Config{Workers: 2, QueueDepth: 16})
	hsWarm, srvWarm := newBackend(t, server.Config{Workers: 2, QueueDepth: 16})
	entries := warmEntries(t, 1)
	if n := srvWarm.Memo().Import(entries); n != len(entries) {
		t.Fatalf("peer import installed %d of %d entries", n, len(entries))
	}
	pool := NewPool([]string{hsCold.URL, hsWarm.URL}, PoolConfig{Client: fastClient(ctr)})

	local := sweep.NewMemo(0)
	local.SetCodec(exp.MemoCodec())
	w := NewWarm(pool, local, WarmOptions{Counters: ctr})
	keys, err := server.PredictMemoKeys(shardSpec())
	if err != nil || len(keys) == 0 {
		t.Fatalf("PredictMemoKeys = %d keys, %v", len(keys), err)
	}

	ctx := context.Background()
	score := w.Scorer(ctx, keys)
	if score == nil {
		t.Fatal("Scorer = nil with a warm peer present")
	}
	if got := score(hsWarm.URL); got != len(keys) {
		t.Fatalf("warm backend score = %d, want %d (full overlap)", got, len(keys))
	}
	if got := score(hsCold.URL); got != 0 {
		t.Fatalf("cold backend score = %d, want 0", got)
	}
	l := pool.PickScored(nil, score)
	if l.URL() != hsWarm.URL {
		t.Fatalf("PickScored routed to %s, want the warm backend", l.URL())
	}
	l.Release(nil)
	if ctr.WarmPicks.Load() == 0 {
		t.Fatal("WarmPicks counter not bumped")
	}

	var notified int
	w.SetOnFetch(func(n int) { notified += n })
	n := w.Prefetch(ctx, keys)
	if n != len(keys) {
		t.Fatalf("Prefetch imported %d entries, want %d", n, len(keys))
	}
	if notified != n || ctr.PeerMemoEntries.Load() != int64(n) {
		t.Fatalf("fetch accounting: notified=%d counter=%d, want %d", notified, ctr.PeerMemoEntries.Load(), n)
	}
	if again := w.Prefetch(ctx, keys); again != 0 {
		t.Fatalf("second Prefetch imported %d entries, want 0 (nothing missing)", again)
	}

	// The fetched entries must serve a local run byte-identically, with
	// zero baseline recomputation — the divergence fingerprint is the
	// arbiter.
	exec := server.Config{Workers: 1, Memo: local}.BaseRunner()
	res, err := exec(shardSpec(), server.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	want := localExec(t, shardSpec())
	if mustFingerprint(t, res) != mustFingerprint(t, want) {
		t.Fatal("report from peer-fetched entries diverged from cold computation")
	}
	if got := local.Computes(); got != 0 {
		t.Fatalf("run against fetched entries computed %d cells, want 0", got)
	}
}

func TestWarmNilIsNoOp(t *testing.T) {
	var w *Warm
	w.SetOnFetch(func(int) {})
	if s := w.Scorer(context.Background(), []string{"k"}); s != nil {
		t.Fatal("nil Warm produced a scorer")
	}
	if n := w.Prefetch(context.Background(), []string{"k"}); n != 0 {
		t.Fatalf("nil Warm prefetched %d entries", n)
	}
}

// TestWarmDigestTTL pins the digest cache: one HTTP fetch per backend
// per TTL window, and a failed refresh serves the stale copy instead of
// going cold.
func TestWarmDigestTTL(t *testing.T) {
	var reqs atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/memo/keys" {
			http.NotFound(w, r)
			return
		}
		reqs.Add(1)
		json.NewEncoder(w).Encode(server.MemoKeysView{Count: 1, Keys: []string{"timing|x"}})
	}))
	defer hs.Close()
	pool := NewPool([]string{hs.URL}, PoolConfig{Client: fastClient(nil)})
	w := NewWarm(pool, nil, WarmOptions{TTL: time.Minute})
	cur := time.Unix(1000, 0)
	w.now = func() time.Time { return cur }

	ctx := context.Background()
	keys := []string{"timing|x", "timing|y"}
	for i := 0; i < 3; i++ {
		if s := w.Scorer(ctx, keys); s == nil || s(hs.URL) != 1 {
			t.Fatalf("round %d: scorer lost the digest", i)
		}
	}
	if got := reqs.Load(); got != 1 {
		t.Fatalf("digest fetched %d times within TTL, want 1", got)
	}
	cur = cur.Add(2 * time.Minute)
	if s := w.Scorer(ctx, keys); s == nil || s(hs.URL) != 1 {
		t.Fatal("post-TTL refresh lost the digest")
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("digest fetched %d times after TTL, want 2", got)
	}
	// Kill the backend: the next refresh fails and the stale digest still
	// scores.
	hs.Close()
	cur = cur.Add(2 * time.Minute)
	if s := w.Scorer(ctx, keys); s == nil || s(hs.URL) != 1 {
		t.Fatal("failed refresh went cold instead of serving the stale digest")
	}
}

// TestShardRunnerWarmPlacement runs the full warm pipeline through the
// shard runner: placement must route every shard to the warm backend,
// and the merged report must stay byte-identical to the single-node run.
func TestShardRunnerWarmPlacement(t *testing.T) {
	want := mustFingerprint(t, localExec(t, shardSpec()))
	ctr := &Counters{}
	hsCold, srvCold := newBackend(t, server.Config{Workers: 2, QueueDepth: 16})
	hsWarm, srvWarm := newBackend(t, server.Config{Workers: 2, QueueDepth: 16})
	entries := warmEntries(t, 1)
	if n := srvWarm.Memo().Import(entries); n != len(entries) {
		t.Fatalf("peer import installed %d of %d entries", n, len(entries))
	}
	pool := NewPool([]string{hsCold.URL, hsWarm.URL}, PoolConfig{Client: fastClient(ctr)})
	d := NewDispatcher(pool, Options{Counters: ctr})
	local := sweep.NewMemo(0)
	local.SetCodec(exp.MemoCodec())
	sr, err := NewShardRunner(d, ShardOptions{
		CellsPerShard: 6,
		Exec:          execLocal,
		Counters:      ctr,
		Warm:          NewWarm(pool, local, WarmOptions{Counters: ctr}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sr.Run(shardSpec(), server.RunHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustFingerprint(t, res); got != want {
		t.Fatalf("warm-placed report diverged: %s vs %s", got, want)
	}
	// Every shard's cells were resident on the warm peer, so the cold
	// backend must have computed nothing.
	if got := srvCold.Memo().Computes(); got != 0 {
		t.Fatalf("cold backend computed %d cells despite a fully warm peer", got)
	}
	if srvWarm.Memo().Computes() != 0 {
		t.Fatal("warm backend recomputed cells it already held")
	}
	if ctr.WarmPicks.Load() == 0 || ctr.PeerMemoEntries.Load() == 0 {
		t.Fatalf("warm accounting: picks=%d peer_entries=%d, want both > 0",
			ctr.WarmPicks.Load(), ctr.PeerMemoEntries.Load())
	}
}

// BenchmarkClusterWarmSweep is the perf gate: the same quick matrix
// sweep dispatched across two backends, cold (every cell simulated)
// versus warm (one peer pre-holds every cell; placement and prefetch do
// the rest). Per-iteration seeds defeat result caches, so cold really
// simulates each time. Compare sub-benchmark ns/op: warm must be well
// under cold (the acceptance bar is <= 50%).
func BenchmarkClusterWarmSweep(b *testing.B) {
	run := func(b *testing.B, warm bool) {
		ctr := &Counters{}
		hs0, srv0 := newBackend(b, server.Config{Workers: 4, QueueDepth: 64})
		hs1, _ := newBackend(b, server.Config{Workers: 4, QueueDepth: 64})
		pool := NewPool([]string{hs0.URL, hs1.URL}, PoolConfig{Client: fastClient(ctr)})
		d := NewDispatcher(pool, Options{Counters: ctr})
		opts := ShardOptions{CellsPerShard: 6, Exec: execLocal, Counters: ctr}
		if warm {
			local := sweep.NewMemo(0)
			local.SetCodec(exp.MemoCodec())
			// Each iteration warms a fresh seed's key set, so the digest
			// must not outlive an iteration: a near-zero TTL refetches it
			// every sweep (one extra round-trip, honestly charged).
			opts.Warm = NewWarm(pool, local, WarmOptions{Counters: ctr, TTL: time.Millisecond})
		}
		sr, err := NewShardRunner(d, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seed := int64(i + 1)
			if warm {
				b.StopTimer()
				entries := warmEntries(b, seed)
				if n := srv0.Memo().Import(entries); n != len(entries) {
					b.Fatalf("prewarm installed %d of %d entries", n, len(entries))
				}
				b.StartTimer()
			}
			if _, err := sr.Run(shardSpecSeed(seed), server.RunHooks{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("warm", func(b *testing.B) { run(b, true) })
}
