package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"greendimm/internal/server"
)

// maxProxyRecords bounds the coordinator's proxy-id table; beyond it the
// oldest mappings are forgotten (their jobs live on at the peer).
const maxProxyRecords = 4096

// Coordinator wraps a local server.Server's HTTP API with overflow
// routing: submissions the local bounded queue rejects are proxied to a
// healthy peer daemon instead of bouncing back as 429. Proxied jobs get
// coordinator-local ids ("p000001"), and GET/DELETE on those ids are
// forwarded to the owning peer transparently — clients talk to one
// address and see one job namespace.
type Coordinator struct {
	local *server.Server
	pool  *Pool
	ctr   *Counters
	inner http.Handler

	mu     sync.Mutex
	seq    int64
	remote map[string]remoteRef
	order  []string // proxy ids in creation order, for pruning
}

// remoteRef locates a proxied job at its peer.
type remoteRef struct {
	client *Client
	id     string
}

// NewCoordinator wraps local with overflow routing over pool. counters
// may be nil.
func NewCoordinator(local *server.Server, pool *Pool, counters *Counters) *Coordinator {
	if counters == nil {
		counters = &Counters{}
	}
	return &Coordinator{
		local:  local,
		pool:   pool,
		ctr:    counters,
		inner:  local.Handler(),
		remote: make(map[string]remoteRef),
	}
}

// Handler returns the coordinator's HTTP API — a superset of the wrapped
// server's: same routes, same payloads, plus transparent peer routing.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.Handle("/", c.inner) // list, healthz, metrics
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the same v1 envelope the wrapped server does, so
// clients see one error surface regardless of which layer answered.
func writeError(w http.ResponseWriter, status int, code, message string, retryAfterS int) {
	if retryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
	}
	writeJSON(w, status, server.ErrorEnvelope{Error: server.ErrorBody{Code: code, Message: message, RetryAfterS: retryAfterS}})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeInvalidSpec, fmt.Sprintf("decoding job spec: %v", err), 0)
		return
	}
	v, err := c.local.Submit(spec)
	var invalid *server.InvalidSpecError
	switch {
	case errors.As(err, &invalid):
		writeError(w, http.StatusBadRequest, server.CodeInvalidSpec, invalid.Error(), 0)
	case errors.Is(err, server.ErrQueueFull):
		c.proxySubmit(w, r, spec)
	case errors.Is(err, server.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, server.CodeDraining, err.Error(), 0)
	case err != nil:
		writeError(w, http.StatusInternalServerError, server.CodeInternal, err.Error(), 0)
	case v.Cached:
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusOK, v)
	default:
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusAccepted, v)
	}
}

// proxySubmit routes a queue-full submission to a healthy peer. When no
// peer can take it either, the client sees the same 429-with-Retry-After
// contract a plain daemon serves.
func (c *Coordinator) proxySubmit(w http.ResponseWriter, r *http.Request, spec server.JobSpec) {
	reject := func() {
		writeError(w, http.StatusTooManyRequests, server.CodeQueueFull, server.ErrQueueFull.Error(), c.local.RetryAfterHint())
	}
	lease := c.pool.Pick(nil)
	if lease == nil {
		reject()
		return
	}
	v, err := lease.Client().Submit(r.Context(), spec)
	lease.Release(err) // the lease only spans the submit round trip
	if err != nil {
		reject()
		return
	}
	c.ctr.ProxiedJobs.Add(1)
	proxyID := c.register(lease.Client(), v.ID)
	v.ID = proxyID
	w.Header().Set("Location", "/v1/jobs/"+proxyID)
	if v.Cached {
		writeJSON(w, http.StatusOK, v)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// register maps a peer job to a fresh coordinator-local id.
func (c *Coordinator) register(client *Client, remoteID string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := fmt.Sprintf("p%06d", c.seq)
	c.remote[id] = remoteRef{client: client, id: remoteID}
	c.order = append(c.order, id)
	if len(c.order) > maxProxyRecords {
		drop := c.order[0]
		c.order = c.order[1:]
		delete(c.remote, drop)
	}
	return id
}

func (c *Coordinator) lookup(id string) (remoteRef, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref, ok := c.remote[id]
	return ref, ok
}

func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ref, ok := c.lookup(id)
	if !ok {
		c.inner.ServeHTTP(w, r) // a local job, or an unknown id
		return
	}
	path := "/v1/jobs/" + ref.id
	if wait := r.URL.Query().Get("wait"); wait != "" {
		path += "?wait=" + url.QueryEscape(wait)
	}
	var v server.JobView
	if err := ref.client.do(r.Context(), http.MethodGet, path, nil, &v); err != nil {
		proxyFailure(w, err)
		return
	}
	v.ID = id
	writeJSON(w, http.StatusOK, v)
}

// handleTrace forwards a proxied job's trace request to its peer,
// passing the payload through untouched (the trace has no job-id field
// to rewrite); local ids fall through to the wrapped server.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ref, ok := c.lookup(id)
	if !ok {
		c.inner.ServeHTTP(w, r)
		return
	}
	var tv json.RawMessage
	if err := ref.client.do(r.Context(), http.MethodGet, "/v1/jobs/"+ref.id+"/trace", nil, &tv); err != nil {
		proxyFailure(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tv)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ref, ok := c.lookup(id)
	if !ok {
		c.inner.ServeHTTP(w, r)
		return
	}
	var v server.JobView
	if err := ref.client.do(r.Context(), http.MethodDelete, "/v1/jobs/"+ref.id, nil, &v); err != nil {
		proxyFailure(w, err)
		return
	}
	v.ID = id
	writeJSON(w, http.StatusOK, v)
}

// proxyFailure maps a peer error onto the coordinator's response: peer
// API statuses pass through with the peer's envelope code (or the code
// the status implies, for peers predating the envelope); transport
// failures become 502 internal.
func proxyFailure(w http.ResponseWriter, err error) {
	var se *StatusError
	if errors.As(err, &se) {
		code := se.Code
		if code == "" {
			switch {
			case se.Status == http.StatusNotFound:
				code = server.CodeNotFound
			case se.Status == http.StatusTooManyRequests:
				code = server.CodeQueueFull
			case se.Status == http.StatusServiceUnavailable:
				code = server.CodeDraining
			case se.Status == http.StatusBadRequest:
				code = server.CodeInvalidSpec
			default:
				code = server.CodeInternal
			}
		}
		writeError(w, se.Status, code, se.Msg, int(se.RetryAfter.Seconds()))
		return
	}
	writeError(w, http.StatusBadGateway, server.CodeInternal, "peer unreachable: "+err.Error(), 0)
}
