package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"greendimm/internal/obs"
	"greendimm/internal/server"
)

// Options tunes a Dispatcher. Zero values take defaults.
type Options struct {
	// HedgeAfter launches a duplicate of a still-unfinished job on a
	// second backend after this long (0 = hedging off). The first
	// terminal success wins; the loser is cancelled. Safe because runs
	// are deterministic — and checked: if both copies finish, their
	// bytes must agree.
	HedgeAfter time.Duration
	// MaxBackendsPerJob bounds how many distinct backends one job is
	// tried on (hedges included) before the local fallback (default:
	// every configured backend).
	MaxBackendsPerJob int
	// Concurrency bounds jobs in flight across the pool (default
	// 2 x backends, minimum 4).
	Concurrency int
	// Local executes a spec in-process when no backend can (default
	// server.Execute, aborting when ctx is done).
	Local func(ctx context.Context, spec server.JobSpec) (*server.Result, error)
	// Counters receives dispatch accounting (default: a fresh instance;
	// pass the Pool's ClientConfig.Counters to unify retry counts).
	Counters *Counters
}

// Dispatcher fans job specs across a Pool of greendimmd backends and
// merges the results deterministically: output order is input order, and
// every pair of executions that shares a spec hash — duplicates in the
// input, hedged copies, retried runs — must produce byte-identical
// reports or the dispatch fails with a *DivergenceError.
type Dispatcher struct {
	pool *Pool
	opts Options
	ctr  *Counters
}

// NewDispatcher builds a dispatcher over the pool.
func NewDispatcher(pool *Pool, opts Options) *Dispatcher {
	if opts.MaxBackendsPerJob <= 0 {
		opts.MaxBackendsPerJob = pool.Size()
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 2 * pool.Size()
		if opts.Concurrency < 4 {
			opts.Concurrency = 4
		}
	}
	if opts.Local == nil {
		opts.Local = func(ctx context.Context, spec server.JobSpec) (*server.Result, error) {
			// The job's trace rides the context (runOne puts it there), so
			// a traced dispatch gets per-cell spans from the local run too.
			return server.Execute(spec, server.RunHooks{
				Stop:  func() bool { return ctx.Err() != nil },
				Trace: obs.FromContext(ctx),
			})
		}
	}
	if opts.Counters == nil {
		opts.Counters = &Counters{}
	}
	return &Dispatcher{pool: pool, opts: opts, ctr: opts.Counters}
}

// Counters returns a snapshot of the dispatcher's accounting.
func (d *Dispatcher) Counters() CounterSnapshot { return d.ctr.Snapshot() }

// Run executes every spec and returns the results in input order. Specs
// are validated and hashed up front; any invalid spec fails the whole
// call before work starts. The first per-job error (in input order)
// cancels the remaining jobs and is returned.
func (d *Dispatcher) Run(ctx context.Context, specs []server.JobSpec) ([]*server.Result, error) {
	return d.RunTraced(ctx, specs, nil)
}

// RunTraced is Run with per-spec traces: traces[i] (nil entries allowed)
// receives spec i's dispatch spans — one "attempt" per backend try (Arg
// = backend URL), "hedge" for duplicate launches, "backoff" for client
// retries, "failover" marks, "local" for in-process fallback, and a
// final "merge". traces must be nil or match specs in length.
func (d *Dispatcher) RunTraced(ctx context.Context, specs []server.JobSpec, traces []*obs.Trace) ([]*server.Result, error) {
	if traces != nil && len(traces) != len(specs) {
		return nil, fmt.Errorf("cluster: %d traces for %d specs", len(traces), len(specs))
	}
	traceFor := func(i int) *obs.Trace {
		if traces == nil {
			return nil
		}
		return traces[i]
	}
	hashes := make([]string, len(specs))
	for i, spec := range specs {
		h, err := server.SpecHash(spec)
		if err != nil {
			return nil, fmt.Errorf("cluster: spec %d: %w", i, err)
		}
		hashes[i] = h
	}

	runCtx, cancelRest := context.WithCancel(ctx)
	defer cancelRest()
	results := make([]*server.Result, len(specs))
	sources := make([]string, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, d.opts.Concurrency)
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-runCtx.Done():
				errs[i] = runCtx.Err()
				return
			}
			results[i], sources[i], errs[i] = d.runOne(runCtx, specs[i], hashes[i], traceFor(i))
			if errs[i] != nil {
				cancelRest() // first failure stops the rest promptly
			}
		}(i)
	}
	wg.Wait()

	// Report the causal failure, not the collateral cancellations it
	// triggered in sibling jobs: the first non-cancellation error wins;
	// pure cancellation (the caller's ctx died) reports as itself.
	var cancelErr error
	cancelIdx := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			if cancelErr == nil {
				cancelErr, cancelIdx = err, i
			}
			continue
		}
		return nil, fmt.Errorf("cluster: spec %d (hash %.12s): %w", i, hashes[i], err)
	}
	if cancelErr != nil {
		return nil, fmt.Errorf("cluster: spec %d (hash %.12s): %w", cancelIdx, hashes[cancelIdx], cancelErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Deterministic merge: results already sit at their input index;
	// cross-check that duplicated hashes resolved to identical bytes.
	mergeStart := time.Now()
	m := newMerger()
	var mergeErr error
	for i := range results {
		if err := m.observe(hashes[i], results[i], sources[i]); err != nil {
			if _, ok := err.(*DivergenceError); ok {
				d.ctr.Divergences.Add(1)
			}
			mergeErr = err
			break
		}
	}
	mergeDur := time.Since(mergeStart)
	for i := range specs {
		traceFor(i).Add("merge", "", mergeStart, mergeDur, mergeErr)
	}
	if mergeErr != nil {
		return nil, mergeErr
	}
	return results, nil
}

// runOne pushes one spec through the routing ladder: healthy backends in
// least-outstanding order (with optional hedging), then the in-process
// fallback. The trace rides ctx from here down so the client's backoff
// loop and the local fallback can record into it.
func (d *Dispatcher) runOne(ctx context.Context, spec server.JobSpec, hash string, tr *obs.Trace) (*server.Result, string, error) {
	return d.runOnePick(ctx, spec, hash, tr, nil)
}

// runOnePick is runOne with an optional placement score (Warm.Scorer):
// non-nil, it biases every pick in the ladder — primary and hedge alike —
// toward the backend holding the most of the spec's predicted memo keys,
// with least-outstanding as the tie-break. Purely a routing preference:
// the failover ladder, hedging and the local fallback are unchanged, and
// a cold pick merely computes what a warm one would have replayed.
func (d *Dispatcher) runOnePick(ctx context.Context, spec server.JobSpec, hash string, tr *obs.Trace, score func(url string) int) (*server.Result, string, error) {
	ctx = obs.ContextWith(ctx, tr)
	pick := func(tried map[string]bool) *Lease {
		if score != nil {
			return d.pool.PickScored(tried, score)
		}
		return d.pool.Pick(tried)
	}
	tried := make(map[string]bool)
	var lastErr error
	for len(tried) < d.opts.MaxBackendsPerJob {
		lease := pick(tried)
		if lease == nil {
			break
		}
		tried[lease.URL()] = true
		res, src, err := d.runOn(ctx, lease, spec, tried, tr, pick)
		if err == nil {
			return res, src, nil
		}
		if ctx.Err() != nil {
			return nil, "", err
		}
		lastErr = err
		d.ctr.Failovers.Add(1)
		tr.Mark("failover", lease.URL())
	}

	d.ctr.LocalRuns.Add(1)
	sp := tr.Start("local")
	res, err := d.opts.Local(ctx, spec)
	sp.EndErr(err)
	if err != nil {
		if lastErr != nil {
			return nil, "", fmt.Errorf("local fallback failed: %w (after backend error: %v)", err, lastErr)
		}
		return nil, "", err
	}
	return res, "local", nil
}

// attempt is one backend execution's outcome.
type attempt struct {
	view server.JobView
	err  error
	src  string
}

// succeeded reports whether the attempt carries a usable result.
func (a attempt) succeeded() bool {
	return a.err == nil && a.view.State == server.StateSucceeded && a.view.Result != nil
}

// failure renders a non-succeeded attempt as an error.
func (a attempt) failure() error {
	if a.err != nil {
		return a.err
	}
	return fmt.Errorf("job %s (%s) ended %s: %s", a.view.ID, a.src, a.view.State, a.view.Error)
}

// runOn submits the spec to the leased backend and waits it out,
// launching at most one hedge onto another backend (picked by pick,
// recorded in tried) once HedgeAfter elapses. The first success wins;
// the loser is cancelled, and if it had already finished, its bytes are
// cross-checked against the winner's.
func (d *Dispatcher) runOn(ctx context.Context, primary *Lease, spec server.JobSpec, tried map[string]bool, tr *obs.Trace, pick func(map[string]bool) *Lease) (*server.Result, string, error) {
	start := time.Now()
	sp := tr.StartArg("attempt", primary.URL())
	v, err := primary.Client().Submit(ctx, spec)
	if err != nil {
		primary.Release(err)
		sp.EndErr(err)
		d.ctr.AttemptSeconds.Observe(time.Since(start).Seconds())
		return nil, "", err
	}
	d.ctr.Submitted.Add(1)
	if terminal(v.State) { // cache hit, or rejected-at-submit terminal states
		primary.Release(nil)
		a := attempt{view: v, src: primary.URL()}
		d.ctr.AttemptSeconds.Observe(time.Since(start).Seconds())
		if a.succeeded() {
			sp.End()
			return v.Result, primary.URL(), nil
		}
		sp.EndErr(a.failure())
		return nil, "", a.failure()
	}

	wctx, cancelWatches := context.WithCancel(ctx)
	defer cancelWatches()
	primCh := make(chan attempt, 1)
	go d.watch(wctx, primary, v.ID, primary.URL(), primCh)
	primCh = d.finishAttempt(sp, start, primCh)

	var hedgeCh chan attempt
	var hedgeTimer *time.Timer
	var hedgeFire <-chan time.Time
	if d.opts.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(d.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeFire = hedgeTimer.C
	}

	launched, done := 1, 0
	var winner *attempt
	var firstFailure error
	for winner == nil && done < launched {
		select {
		case a := <-primCh:
			primCh = nil // a watcher sends exactly once
			if a.succeeded() {
				winner = &a
			} else {
				done++
				if firstFailure == nil {
					firstFailure = a.failure()
				}
			}
		case a := <-hedgeCh:
			hedgeCh = nil
			if a.succeeded() {
				winner = &a
			} else {
				done++
				if firstFailure == nil {
					firstFailure = a.failure()
				}
				// The straggler is still pending and this hedge died:
				// re-arm so another backend gets a shot, else a stalled
				// primary plus one unlucky hedge would wait out ctx.
				if hedgeTimer != nil && done < launched {
					hedgeTimer.Reset(d.opts.HedgeAfter)
					hedgeFire = hedgeTimer.C
				}
			}
		case <-hedgeFire:
			hedgeFire = nil
			hl := pick(tried)
			if hl == nil {
				continue // nobody to hedge onto; keep waiting on the primary
			}
			tried[hl.URL()] = true
			d.ctr.Hedges.Add(1)
			launched++
			inner := make(chan attempt, 1)
			go d.hedge(wctx, hl, spec, inner)
			hedgeCh = d.finishAttempt(tr.StartArg("hedge", hl.URL()), time.Now(), inner)
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
	if winner == nil {
		return nil, "", firstFailure
	}
	if strings.HasPrefix(winner.src, "hedge ") {
		d.ctr.HedgeWins.Add(1)
	}

	// Cancel the losing copy; if it has in fact already finished
	// successfully, hold it to the determinism invariant first.
	for _, ch := range []chan attempt{primCh, hedgeCh} {
		if ch == nil {
			continue
		}
		select {
		case a := <-ch:
			if a.succeeded() {
				wp, werr := fingerprint(winner.view.Result)
				lp, lerr := fingerprint(a.view.Result)
				if werr == nil && lerr == nil && wp != lp {
					d.ctr.Divergences.Add(1)
					return nil, "", &DivergenceError{SpecHash: v.SpecHash, SourceA: winner.src, SourceB: a.src}
				}
			}
		default:
			// Still in flight: cancelWatches (deferred) aborts its Wait,
			// and the watcher best-effort-cancels the remote job.
		}
	}
	return winner.view.Result, winner.src, nil
}

// finishAttempt forwards an attempt channel's single send, closing the
// attempt's span and observing its wall latency when it lands. The
// forwarding goroutine runs even after the dispatch moves on (both
// channels are buffered), so losing attempts still get their span ended
// — with the cancellation error that abandoned them — instead of
// leaking an open interval.
func (d *Dispatcher) finishAttempt(sp obs.SpanHandle, start time.Time, in <-chan attempt) chan attempt {
	out := make(chan attempt, 1)
	go func() {
		a := <-in
		d.ctr.AttemptSeconds.Observe(time.Since(start).Seconds())
		if a.succeeded() {
			sp.End()
		} else {
			sp.EndErr(a.failure())
		}
		out <- a
	}()
	return out
}

// hedge submits the duplicate copy and hands off to watch.
func (d *Dispatcher) hedge(ctx context.Context, l *Lease, spec server.JobSpec, ch chan<- attempt) {
	src := "hedge " + l.URL()
	v, err := l.Client().Submit(ctx, spec)
	if err != nil {
		l.Release(err)
		ch <- attempt{err: err, src: src}
		return
	}
	d.ctr.Submitted.Add(1)
	if terminal(v.State) {
		l.Release(nil)
		ch <- attempt{view: v, src: src}
		return
	}
	d.watch(ctx, l, v.ID, src, ch)
}

// watch waits a remote job to a terminal state, releasing the lease with
// the transport outcome. If the watch itself is cancelled (hedge lost,
// dispatch aborted) it best-effort-cancels the remote job so the backend
// stops burning cores on a result nobody wants.
func (d *Dispatcher) watch(ctx context.Context, l *Lease, id, src string, ch chan<- attempt) {
	v, err := l.Client().Wait(ctx, id)
	if err != nil {
		if ctx.Err() != nil {
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, _ = l.Client().Cancel(cctx, id)
			cancel()
			l.Release(nil) // abandonment is not the backend's fault
		} else {
			l.Release(err)
		}
		ch <- attempt{err: err, src: src}
		return
	}
	l.Release(nil)
	ch <- attempt{view: v, src: src}
}
