package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"greendimm/internal/server"
)

func writeView(w http.ResponseWriter, status int, v server.JobView) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func TestClientRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"blip"}`)
			return
		}
		writeView(w, http.StatusAccepted, server.JobView{ID: "j000001", State: server.StateQueued})
	}))
	defer hs.Close()

	ctr := &Counters{}
	cfg := fastClient(ctr)
	cfg.Retry.MaxAttempts = 4
	c := NewClient(hs.URL, cfg)
	v, err := c.Submit(context.Background(), scenSpec(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.ID != "j000001" {
		t.Errorf("id = %q", v.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if got := ctr.Snapshot().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestClientDoesNotRetryBadRequest(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad spec"}`)
	}))
	defer hs.Close()

	c := NewClient(hs.URL, fastClient(nil))
	_, err := c.Submit(context.Background(), scenSpec(1))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 StatusError", err)
	}
	if se.Msg != "bad spec" {
		t.Errorf("msg = %q", se.Msg)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (400 is not transient)", got)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"server: job queue full"}`)
	}))
	defer hs.Close()

	cfg := fastClient(nil)
	cfg.Retry.MaxAttempts = 3
	c := NewClient(hs.URL, cfg)
	_, err := c.Submit(context.Background(), scenSpec(1))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 StatusError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestClientWaitPollsUntilTerminal(t *testing.T) {
	var polls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) < 3 {
			writeView(w, http.StatusOK, server.JobView{ID: "j1", State: server.StateRunning})
			return
		}
		writeView(w, http.StatusOK, server.JobView{ID: "j1", State: server.StateSucceeded, Result: &server.Result{Text: "done"}})
	}))
	defer hs.Close()

	c := NewClient(hs.URL, fastClient(nil))
	v, err := c.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if v.State != server.StateSucceeded || v.Result == nil || v.Result.Text != "done" {
		t.Fatalf("view = %+v", v)
	}
	if got := polls.Load(); got != 3 {
		t.Errorf("polled %d times, want 3", got)
	}
}

func TestRetryDelayShape(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond}
	for n := 0; n < 10; n++ {
		d := p.delay(n)
		if d > p.MaxDelay {
			t.Errorf("delay(%d) = %v exceeds cap %v", n, d, p.MaxDelay)
		}
		// Equal jitter keeps at least half the exponential spacing.
		base := p.BaseDelay
		for i := 0; i < n && base < p.MaxDelay; i++ {
			base *= 2
		}
		if base > p.MaxDelay {
			base = p.MaxDelay
		}
		if d < base/2 {
			t.Errorf("delay(%d) = %v below half the pre-jitter delay %v", n, d, base)
		}
	}
}

func TestRetryDelayHonorsRetryAfterHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	hint := &StatusError{Status: http.StatusTooManyRequests, RetryAfter: 5 * time.Second}
	if d := retryDelay(p, 0, hint); d != 5*time.Second {
		t.Errorf("delay with Retry-After hint = %v, want 5s", d)
	}
	small := &StatusError{Status: http.StatusTooManyRequests, RetryAfter: time.Nanosecond}
	if d := retryDelay(p, 0, small); d > p.MaxDelay {
		t.Errorf("tiny hint must not raise the policy delay, got %v", d)
	}
}

func TestClientConnectionErrorIsTransient(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	hs.Close() // now every dial is refused

	cfg := fastClient(nil)
	cfg.Retry.MaxAttempts = 2
	c := NewClient(hs.URL, cfg)
	start := time.Now()
	_, err := c.Submit(context.Background(), scenSpec(1))
	if err == nil {
		t.Fatal("submit to a closed server succeeded")
	}
	var se *StatusError
	if errors.As(err, &se) {
		t.Fatalf("connection error surfaced as StatusError: %v", err)
	}
	// Two attempts with one backoff in between: it did retry.
	if elapsed := time.Since(start); elapsed < cfg.Retry.BaseDelay/2 {
		t.Errorf("returned after %v, before any backoff could have run", elapsed)
	}
}
