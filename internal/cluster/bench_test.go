package cluster

import (
	"context"
	"fmt"
	"testing"

	"greendimm/internal/server"
)

// BenchmarkDispatcher measures dispatch overhead — routing, HTTP round
// trips, polling, merge — against one httptest backend with an instant
// runner, 8 jobs per iteration. Simulation cost is deliberately excluded
// so the snapshot tracks the cluster layer, not the engines.
func BenchmarkDispatcher(b *testing.B) {
	backend, _ := newBackend(b, server.Config{Workers: 4, QueueDepth: 64, CacheEntries: 1,
		Runner: func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
			return &server.Result{Text: fmt.Sprintf("seed %d\n", spec.VMServer.Seed), SimSeconds: 1}, nil
		}})
	pool := NewPool([]string{backend.URL}, PoolConfig{Client: fastClient(nil)})
	d := NewDispatcher(pool, Options{})

	const batch = 8
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		specs := make([]server.JobSpec, batch)
		for j := range specs {
			// Distinct seeds per iteration defeat the backend cache, so
			// every job takes the full submit/wait round trip.
			specs[j] = scenSpec(int64(i*batch + j + 1))
		}
		if _, err := d.Run(ctx, specs); err != nil {
			b.Fatal(err)
		}
	}
}
