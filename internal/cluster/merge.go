package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"greendimm/internal/server"
)

// DivergenceError reports two runs of the same spec hash whose reports
// were not byte-identical — a broken determinism invariant (PR 2 made
// reports parallelism-invariant; backends and the local fallback must
// therefore agree bit-for-bit), or a corrupt backend.
type DivergenceError struct {
	SpecHash string
	// SourceA and SourceB identify the disagreeing executions (backend
	// URLs, "local", or "hedge <url>").
	SourceA, SourceB string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("cluster: divergent results for spec %.12s: %s vs %s disagree byte-for-byte",
		e.SpecHash, e.SourceA, e.SourceB)
}

// fingerprint returns the canonical content hash of a result's report
// bytes: tables, series, VM-day payload, cell artifacts and rendered
// text. WallSeconds and SimSeconds are execution accounting, not report
// content — wall time legitimately differs between two runs of the same
// spec, and simulated time shrinks on a peer that replayed memoized or
// journaled cells instead of simulating them (the cells' bytes are
// identical either way, which is the invariant that matters) — so both
// are zeroed before hashing.
func fingerprint(res *server.Result) (string, error) {
	cp := *res
	cp.WallSeconds = 0
	cp.SimSeconds = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		return "", fmt.Errorf("cluster: fingerprinting result: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// merger cross-checks that every result observed for one spec hash has
// one fingerprint. It is how the dispatcher turns "retries, hedges and
// duplicates are interchangeable" from an assumption into a check.
type merger struct {
	// byHash maps spec hash -> first observed fingerprint + source.
	byHash map[string]sourcedPrint
}

type sourcedPrint struct {
	print  string
	source string
}

func newMerger() *merger {
	return &merger{byHash: make(map[string]sourcedPrint)}
}

// observe records one (spec hash, result, source) execution and returns
// a *DivergenceError if an earlier execution of the same hash produced
// different bytes.
func (m *merger) observe(specHash string, res *server.Result, source string) error {
	print, err := fingerprint(res)
	if err != nil {
		return err
	}
	prev, ok := m.byHash[specHash]
	if !ok {
		m.byHash[specHash] = sourcedPrint{print: print, source: source}
		return nil
	}
	if prev.print != print {
		return &DivergenceError{SpecHash: specHash, SourceA: prev.source, SourceB: source}
	}
	return nil
}
