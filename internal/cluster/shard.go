package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"greendimm/internal/exp"
	"greendimm/internal/server"
)

// This file implements cell-range shard execution: splitting one
// matrix-shaped job into contiguous cell-range shards [lo,hi) over its
// sweep index, running each shard on a peer through the dispatcher's
// full failover/hedging ladder, and merging the shards' artifacts into
// the single report the job would have produced on one node. The merge
// is byte-identical by construction: shards return canonical cell
// artifacts (pure functions of the spec hash), and the merge re-runs
// the full spec locally with those artifacts as a verified replay
// source — every heavy cell replays, only cheap rendering recomputes.
//
// Failed shards re-shard: the range halves and each half retries
// through the ladder, down to MaxReshard levels, so one poisoned range
// (a flaky peer, a too-big shard hitting queue limits) degrades to
// smaller work items instead of failing the job.

// ShardOptions tunes a ShardRunner. CellsPerShard and Exec are
// required; other zero values take defaults.
type ShardOptions struct {
	// CellsPerShard is the target shard width: a job with m missing
	// cells plans ceil(m/CellsPerShard) shards (capped at MaxShards),
	// sized near-equally. Must be > 0.
	CellsPerShard int
	// MaxShards caps the plan (default 16).
	MaxShards int
	// MaxReshard bounds how many times a failed range halves before the
	// job fails (default 2: a shard degrades to quarters at worst).
	MaxReshard int
	// MinCells is the sharding floor: jobs with fewer missing cells run
	// whole on this node (default CellsPerShard + 1 — sharding a job
	// that fits one shard only adds transport).
	MinCells int
	// Exec executes a full (unsharded) spec in-process — the merge step
	// and the ineligible-job passthrough. cmd/greendimmd passes
	// server.Config.BaseRunner(). Required.
	Exec func(server.JobSpec, server.RunHooks) (*server.Result, error)
	// Counters receives shard accounting (default: the dispatcher's).
	Counters *Counters
	// Warm, when non-nil, makes placement memo-aware: each shard's
	// predicted memo keys score the backends by warm overlap, and the
	// whole job's keys are prefetched from the warmest peer before the
	// local merge. Purely an optimization — a nil Warm (or a failed
	// prediction) restores plain least-outstanding routing.
	Warm *Warm
	// PredictKeys predicts the memo keys a spec's cell range will need
	// (default server.PredictMemoKeys). A test seam; errors are treated
	// as "no prediction".
	PredictKeys func(server.JobSpec) ([]string, error)
}

// ShardRunner wraps a Dispatcher as a server.Config.Runner: eligible
// jobs fan out as cell-range shards across the pool, everything else
// runs locally through Exec. Install with server.Config{Runner: r.Run}.
type ShardRunner struct {
	d    *Dispatcher
	opts ShardOptions
	ctr  *Counters
}

// NewShardRunner builds a shard runner over the dispatcher.
func NewShardRunner(d *Dispatcher, opts ShardOptions) (*ShardRunner, error) {
	if d == nil {
		return nil, fmt.Errorf("cluster: shard runner needs a dispatcher")
	}
	if opts.CellsPerShard <= 0 {
		return nil, fmt.Errorf("cluster: CellsPerShard must be > 0 (got %d)", opts.CellsPerShard)
	}
	if opts.Exec == nil {
		return nil, fmt.Errorf("cluster: shard runner needs an Exec function")
	}
	if opts.MaxShards <= 0 {
		opts.MaxShards = 16
	}
	if opts.MaxReshard < 0 {
		opts.MaxReshard = 0
	} else if opts.MaxReshard == 0 {
		opts.MaxReshard = 2
	}
	if opts.MinCells <= 0 {
		opts.MinCells = opts.CellsPerShard + 1
	}
	if opts.Counters == nil {
		opts.Counters = d.ctr
	}
	if opts.PredictKeys == nil {
		opts.PredictKeys = server.PredictMemoKeys
	}
	return &ShardRunner{d: d, opts: opts, ctr: opts.Counters}, nil
}

// eligible reports whether the spec can fan out as cell-range shards.
// A spec that already carries a range is executed whole — that is a
// shard arriving at a backend, and re-sharding it would recurse across
// the cluster.
func (r *ShardRunner) eligible(spec server.JobSpec) bool {
	return spec.Kind == server.KindExperiment &&
		spec.Cells == nil &&
		spec.Experiment != nil &&
		exp.Shardable(spec.Experiment.ID)
}

// Run executes one job, sharding it across the pool when eligible.
// Implements the server.Config.Runner contract: h's hooks are honored
// (Stop aborts shards promptly; Cells/Ranges/CellObserved carry the
// durable-store resume state; Trace records "shard" and "merge" spans).
func (r *ShardRunner) Run(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
	if !r.eligible(spec) {
		return r.opts.Exec(spec, h)
	}
	total, err := server.CellCount(spec)
	if err != nil || total <= 0 {
		// A shardable experiment that cannot be probed is a bug upstream,
		// but the job itself is still runnable — degrade to local.
		h.Trace.Mark("shard_probe_failed", fmt.Sprint(err))
		return r.opts.Exec(spec, h)
	}

	var done [][2]int
	if h.Ranges != nil {
		done = h.Ranges.Done
	}
	missing := complementRanges(done, total)
	missingCells := 0
	for _, m := range missing {
		missingCells += m[1] - m[0]
	}
	// Warm the local memo before any work runs: whatever the merge (or a
	// local-fallback shard) will need that a peer already holds is one
	// batched fetch away. Best-effort and bounded — a cold pool just
	// returns 0.
	if r.opts.Warm != nil {
		if keys, kerr := r.opts.PredictKeys(spec); kerr == nil && len(keys) > 0 {
			pctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if n := r.opts.Warm.Prefetch(pctx, keys); n > 0 {
				h.Trace.Mark("memo_prefetch", fmt.Sprintf("%d entries", n))
			}
			cancel()
		}
	}

	var collected []exp.CellArtifact
	if missingCells >= r.opts.MinCells {
		planned := planShards(missing, r.opts.CellsPerShard, r.opts.MaxShards)
		if h.Ranges != nil && h.Ranges.OnPlan != nil {
			h.Ranges.OnPlan(total, planned)
		}
		r.ctr.ShardJobs.Add(1)
		var err error
		if collected, err = r.runShards(spec, h, planned); err != nil {
			return nil, err
		}
	}
	// Merge: re-run the full spec locally with every completed cell as a
	// replay source — the shards' fresh artifacts unioned with whatever
	// the job store already held (h.Cells, on a resumed job). The union
	// covers all heavy cells, so the merge only replays, renders, and
	// recomputes whatever a lost artifact leaves behind (self-healing,
	// still byte-identical). CellObserved stays installed: a recomputed
	// cell gets journaled; replayed ones are not re-offered.
	mh := h
	mh.Cells = exp.NewCellSet(append(h.Cells.Artifacts(), collected...))
	mh.Ranges = nil
	sp := h.Trace.Start("merge")
	res, err := r.opts.Exec(spec, mh)
	sp.EndErr(err)
	return res, err
}

// runShards executes the planned ranges concurrently (bounded by the
// dispatcher's concurrency), delivering each completed shard's cells
// through h.CellObserved before journaling its range done, and halving
// failed ranges up to MaxReshard levels. It returns every collected
// artifact for the merge's replay source.
func (r *ShardRunner) runShards(spec server.JobSpec, h server.RunHooks, planned [][2]int) ([]exp.CellArtifact, error) {
	// Bridge the pool-style Stop predicate onto the context the
	// dispatcher's ladder wants. Polling is the only option — Stop is a
	// predicate, not a channel — and 20ms is far below any shard's
	// runtime.
	ctx := context.Background()
	if h.Stop != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			t := time.NewTicker(20 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if h.Stop() {
						cancel()
						return
					}
				}
			}
		}()
	}

	// Collected artifacts feed the merge; the mutex serializes appends
	// from concurrent shards (and concurrent halves of a reshard).
	var mu sync.Mutex
	var collected []exp.CellArtifact
	collect := func(arts []exp.CellArtifact) {
		mu.Lock()
		collected = append(collected, arts...)
		mu.Unlock()
	}

	sem := make(chan struct{}, r.d.opts.Concurrency)
	errs := make([]error, len(planned))
	var wg sync.WaitGroup
	for i, p := range planned {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			errs[i] = r.runRange(ctx, spec, h, collect, lo, hi, 0)
		}(i, p[0], p[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard [%d,%d): %w", planned[i][0], planned[i][1], err)
		}
	}
	return collected, ctx.Err()
}

// runRange executes one cell range through the dispatcher's ladder
// (failover, hedging, local fallback). If even the ladder fails it
// halves the range and retries each half, depth levels down.
func (r *ShardRunner) runRange(ctx context.Context, spec server.JobSpec, h server.RunHooks, collect func([]exp.CellArtifact), lo, hi, depth int) error {
	shardSpec := spec
	shardSpec.Cells = &server.CellRangeSpec{Lo: lo, Hi: hi}
	hash, err := server.SpecHash(shardSpec)
	if err != nil {
		return err
	}
	r.ctr.Shards.Add(1)
	// Score backends by how much of this shard's memo working set they
	// hold warm. A nil scorer (no Warm, failed prediction, or a fully
	// cold pool) leaves routing purely least-outstanding.
	var score func(url string) int
	if r.opts.Warm != nil {
		if keys, kerr := r.opts.PredictKeys(shardSpec); kerr == nil && len(keys) > 0 {
			score = r.opts.Warm.Scorer(ctx, keys)
		}
	}
	sp := h.Trace.StartArg("shard", fmt.Sprintf("[%d,%d)", lo, hi))
	res, _, err := r.d.runOnePick(ctx, shardSpec, hash, h.Trace, score)
	sp.EndErr(err)
	if err == nil {
		collect(res.Cells)
		// Journal order matters: every cell lands before the range is
		// marked done, so a recovered journal never trusts a range whose
		// artifacts are missing.
		if h.CellObserved != nil {
			for _, a := range res.Cells {
				h.CellObserved(a)
			}
		}
		if h.Ranges != nil && h.Ranges.OnDone != nil {
			h.Ranges.OnDone(lo, hi)
		}
		return nil
	}
	if ctx.Err() != nil {
		return err
	}
	if depth >= r.opts.MaxReshard || hi-lo < 2 {
		return err
	}
	r.ctr.ShardRetries.Add(1)
	h.Trace.Mark("reshard", fmt.Sprintf("[%d,%d) depth %d", lo, hi, depth+1))
	mid := lo + (hi-lo)/2
	if err := r.runRange(ctx, spec, h, collect, lo, mid, depth+1); err != nil {
		return err
	}
	return r.runRange(ctx, spec, h, collect, mid, hi, depth+1)
}

// complementRanges returns the gaps of done within [0, total). done may
// be unsorted or carry out-of-bounds entries (a journal from an older
// quick/full variant); both are normalized first.
func complementRanges(done [][2]int, total int) [][2]int {
	clipped := make([][2]int, 0, len(done))
	for _, r := range done {
		lo, hi := r[0], r[1]
		if lo < 0 {
			lo = 0
		}
		if hi > total {
			hi = total
		}
		if hi > lo {
			clipped = append(clipped, [2]int{lo, hi})
		}
	}
	sort.Slice(clipped, func(i, j int) bool { return clipped[i][0] < clipped[j][0] })
	var out [][2]int
	cur := 0
	for _, r := range clipped {
		if r[0] > cur {
			out = append(out, [2]int{cur, r[0]})
		}
		if r[1] > cur {
			cur = r[1]
		}
	}
	if cur < total {
		out = append(out, [2]int{cur, total})
	}
	return out
}

// planShards cuts the missing ranges into k near-equal contiguous
// shards, k = clamp(ceil(missing/cellsPerShard), fragments, maxShards):
// sizes within a fragment differ by at most one, and every fragment
// gets at least one shard (a shard cannot span a completed gap).
func planShards(missing [][2]int, cellsPerShard, maxShards int) [][2]int {
	totalMissing := 0
	for _, m := range missing {
		totalMissing += m[1] - m[0]
	}
	if totalMissing == 0 {
		return nil
	}
	k := (totalMissing + cellsPerShard - 1) / cellsPerShard
	if k > maxShards {
		k = maxShards
	}
	if k < len(missing) {
		k = len(missing)
	}
	// Allocate shard counts to fragments by size (largest remainder),
	// minimum one each.
	counts := make([]int, len(missing))
	assigned := 0
	for i, m := range missing {
		counts[i] = (m[1] - m[0]) * k / totalMissing
		if counts[i] < 1 {
			counts[i] = 1
		}
		if max := m[1] - m[0]; counts[i] > max {
			counts[i] = max
		}
		assigned += counts[i]
	}
	for assigned > k {
		// Shrink the fragment with the most shards (never below one).
		best := -1
		for i := range counts {
			if counts[i] > 1 && (best < 0 || counts[i] > counts[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		counts[best]--
		assigned--
	}
	for assigned < k {
		// Grow the fragment with the widest per-shard span.
		best, bestSpan := -1, 0
		for i, m := range missing {
			if span := (m[1] - m[0]) / counts[i]; span > 1 && span > bestSpan {
				best, bestSpan = i, span
			}
		}
		if best < 0 {
			break
		}
		counts[best]++
		assigned++
	}
	var out [][2]int
	for i, m := range missing {
		out = append(out, splitEven(m[0], m[1], counts[i])...)
	}
	return out
}

// splitEven cuts [lo, hi) into n contiguous pieces whose sizes differ
// by at most one, larger pieces first.
func splitEven(lo, hi, n int) [][2]int {
	size := hi - lo
	if n > size {
		n = size
	}
	out := make([][2]int, 0, n)
	base, rem := size/n, size%n
	cur := lo
	for i := 0; i < n; i++ {
		w := base
		if i < rem {
			w++
		}
		out = append(out, [2]int{cur, cur + w})
		cur += w
	}
	return out
}
