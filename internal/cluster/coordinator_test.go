package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"greendimm/internal/server"
)

func postSpec(t *testing.T, base string, spec server.JobSpec) (int, server.JobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, v
}

func getJob(t *testing.T, base, id, wait string) (int, server.JobView) {
	t.Helper()
	url := base + "/v1/jobs/" + id
	if wait != "" {
		url += "?wait=" + wait
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v server.JobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

// TestCoordinatorProxiesOverflow: a coordinator with a one-worker,
// one-slot local queue routes the overflow submission to its peer, and
// the proxied job is visible (poll, wait, cancel) under the
// coordinator's own id.
func TestCoordinatorProxiesOverflow(t *testing.T) {
	release := make(chan struct{})
	local := server.New(server.Config{Workers: 1, QueueDepth: 1,
		Runner: func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
			<-release
			return &server.Result{Text: "local\n"}, nil
		}})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = local.Shutdown(ctx)
	})
	peer, _ := newBackend(t, server.Config{Workers: 2, QueueDepth: 8,
		Runner: func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
			return &server.Result{Text: fmt.Sprintf("peer seed %d\n", spec.VMServer.Seed), SimSeconds: 1}, nil
		}})

	ctr := &Counters{}
	pool := NewPool([]string{peer.URL}, PoolConfig{Client: fastClient(ctr)})
	co := httptest.NewServer(NewCoordinator(local, pool, ctr).Handler())
	t.Cleanup(co.Close)

	// Fill the local daemon: one running job, one queued job.
	code, vA := postSpec(t, co.URL, scenSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("job A: status %d", code)
	}
	waitRunning := time.Now()
	for {
		_, v := getJob(t, co.URL, vA.ID, "")
		if v.State == server.StateRunning {
			break
		}
		if time.Since(waitRunning) > 5*time.Second {
			t.Fatalf("job A never started running: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := postSpec(t, co.URL, scenSpec(2)); code != http.StatusAccepted {
		t.Fatalf("job B: status %d", code)
	}

	// The third submission overflows to the peer under a proxy id.
	code, vC := postSpec(t, co.URL, scenSpec(3))
	if code != http.StatusAccepted {
		t.Fatalf("overflow job: status %d", code)
	}
	if vC.ID != "p000001" {
		t.Fatalf("overflow job id = %q, want p000001", vC.ID)
	}
	if got := ctr.Snapshot().ProxiedJobs; got != 1 {
		t.Errorf("proxied jobs = %d, want 1", got)
	}

	code, vC = getJob(t, co.URL, vC.ID, "5s")
	if code != http.StatusOK || vC.State != server.StateSucceeded {
		t.Fatalf("proxied wait: status %d view %+v", code, vC)
	}
	if vC.ID != "p000001" {
		t.Errorf("proxied view id = %q, want the coordinator-local id", vC.ID)
	}
	if vC.Result == nil || vC.Result.Text != "peer seed 3\n" {
		t.Errorf("proxied result = %+v", vC.Result)
	}

	// DELETE routes to the peer too (a no-op on the finished job).
	req, _ := http.NewRequest(http.MethodDelete, co.URL+"/v1/jobs/"+vC.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("proxied cancel: status %d", resp.StatusCode)
	}

	// Unknown ids still 404 through the local handler.
	if code, _ := getJob(t, co.URL, "nope", ""); code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", code)
	}

	close(release) // let the local jobs finish so shutdown drains clean
}

// TestCoordinatorRejectsWhenPeersDown: overflow with no reachable peer
// degrades to the plain 429-with-Retry-After contract.
func TestCoordinatorRejectsWhenPeersDown(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	local := server.New(server.Config{Workers: 1, QueueDepth: 1,
		Runner: func(spec server.JobSpec, h server.RunHooks) (*server.Result, error) {
			<-release
			return &server.Result{Text: "local\n"}, nil
		}})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = local.Shutdown(ctx)
	})
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	pool := NewPool([]string{dead.URL}, PoolConfig{Client: fastClient(nil)})
	co := httptest.NewServer(NewCoordinator(local, pool, nil).Handler())
	t.Cleanup(co.Close)

	code, vA := postSpec(t, co.URL, scenSpec(1))
	if code != http.StatusAccepted {
		t.Fatalf("job A: status %d", code)
	}
	deadline := time.Now()
	for {
		_, v := getJob(t, co.URL, vA.ID, "")
		if v.State == server.StateRunning {
			break
		}
		if time.Since(deadline) > 5*time.Second {
			t.Fatal("job A never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := postSpec(t, co.URL, scenSpec(2)); code != http.StatusAccepted {
		t.Fatalf("job B: status %d", code)
	}

	body, _ := json.Marshal(scenSpec(3))
	resp, err := http.Post(co.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow with dead peer: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After hint")
	}
}
