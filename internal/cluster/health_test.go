package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// toggleBackend is a /healthz endpoint whose health is flipped by tests.
func toggleBackend(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var up atomic.Bool
	up.Store(true)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !up.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"status":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	t.Cleanup(hs.Close)
	return hs, &up
}

func TestPoolDemotesAfterConsecutiveFailuresAndProbesRevive(t *testing.T) {
	hs, up := toggleBackend(t)
	pool := NewPool([]string{hs.URL}, PoolConfig{Client: fastClient(nil), FailThreshold: 2})

	// Two consecutive transport failures demote the backend.
	for i := 0; i < 2; i++ {
		l := pool.Pick(nil)
		if l == nil {
			t.Fatalf("pick %d returned nil while backend should still be selectable", i)
		}
		l.Release(errors.New("connection reset"))
	}
	if l := pool.Pick(nil); l != nil {
		t.Fatal("backend still picked after hitting the failure threshold")
	}
	st := pool.Status()[0]
	if st.Healthy || st.ConsecFails != 2 || st.LastErr == "" {
		t.Fatalf("status = %+v", st)
	}

	// A successful probe revives it; a failing probe does not.
	up.Store(false)
	pool.ProbeAll(context.Background())
	if l := pool.Pick(nil); l != nil {
		t.Fatal("revived by a failing probe")
	}
	up.Store(true)
	pool.ProbeAll(context.Background())
	l := pool.Pick(nil)
	if l == nil {
		t.Fatal("healthy probe did not revive the backend")
	}
	l.Release(nil)
}

func TestPoolPicksLeastOutstanding(t *testing.T) {
	a, _ := toggleBackend(t)
	b, _ := toggleBackend(t)
	pool := NewPool([]string{a.URL, b.URL}, PoolConfig{Client: fastClient(nil)})

	l1 := pool.Pick(nil) // both idle: earlier backend wins the tie
	l2 := pool.Pick(nil) // a has 1 outstanding: b wins
	l3 := pool.Pick(nil) // tied at 1: earlier backend wins again
	got := []string{l1.URL(), l2.URL(), l3.URL()}
	want := []string{a.URL, b.URL, a.URL}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick sequence %v, want %v", got, want)
		}
	}

	// Exclusion skips a backend regardless of load.
	l4 := pool.Pick(map[string]bool{a.URL: true})
	if l4 == nil || l4.URL() != b.URL {
		t.Fatalf("exclusion pick = %v, want %s", l4, b.URL)
	}
	for _, l := range []*Lease{l1, l2, l3, l4} {
		l.Release(nil)
	}
	for _, st := range pool.Status() {
		if st.Outstanding != 0 {
			t.Errorf("%s outstanding = %d after releases, want 0", st.URL, st.Outstanding)
		}
	}
}

func TestLeaseReleaseIsIdempotent(t *testing.T) {
	hs, _ := toggleBackend(t)
	pool := NewPool([]string{hs.URL}, PoolConfig{Client: fastClient(nil)})
	l := pool.Pick(nil)
	l.Release(nil)
	l.Release(errors.New("late duplicate")) // must not double-decrement or re-score
	st := pool.Status()[0]
	if st.Outstanding != 0 || !st.Healthy || st.ConsecFails != 0 {
		t.Fatalf("status after double release = %+v", st)
	}
}
