package mc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"greendimm/internal/sim"
)

// TraceRecord is one captured memory request.
type TraceRecord struct {
	At    sim.Time
	Addr  uint64
	Write bool
}

// Tracer captures every submitted request. Attach with Controller.Trace;
// write out with Dump; feed back with Replay. The format is one request
// per line — "<ps> <hex addr> R|W" — trivially diffable and greppable,
// which is the point: a failing workload run can be captured once and
// replayed deterministically against controller changes.
type Tracer struct {
	records []TraceRecord
}

// Trace attaches a tracer to the controller; all subsequent Submits are
// recorded. Returns the tracer.
func (c *Controller) Trace() *Tracer {
	tr := &Tracer{}
	c.tracer = tr
	return tr
}

// record appends one request (called from Submit on success).
func (t *Tracer) record(at sim.Time, addr uint64, write bool) {
	t.records = append(t.records, TraceRecord{At: at, Addr: addr, Write: write})
}

// Len reports the number of captured requests.
func (t *Tracer) Len() int { return len(t.records) }

// Records exposes the captured requests.
func (t *Tracer) Records() []TraceRecord { return t.records }

// Dump writes the trace in text form.
func (t *Tracer) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.records {
		rw := 'R'
		if r.Write {
			rw = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%d %x %c\n", int64(r.At), r.Addr, rw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTrace reads a dumped trace back.
func ParseTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("mc: trace line %d: want 3 fields, got %q", line, text)
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mc: trace line %d: bad time: %w", line, err)
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("mc: trace line %d: bad address: %w", line, err)
		}
		var write bool
		switch fields[2] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("mc: trace line %d: bad op %q", line, fields[2])
		}
		out = append(out, TraceRecord{At: sim.Time(at), Addr: addr, Write: write})
	}
	return out, sc.Err()
}

// replayer feeds a validated, time-sorted record list into a controller.
// Its events fire in record order (same times, same scheduling order as
// the records), so one shared step handler consuming records
// sequentially replaces a closure per record.
type replayer struct {
	c       *Controller
	records []TraceRecord
	next    int
}

func (rp *replayer) step(any) {
	r := rp.records[rp.next]
	rp.next++
	// Queue-full drops are acceptable on replay (the original run's
	// closed loop throttled itself; replay is open-loop).
	_ = rp.c.SubmitCall(r.Addr, r.Write, nil, 0)
}

// Replay schedules every record against the controller at its original
// timestamp (records must be time-sorted; earlier-than-now records fail).
// Returns the number of requests scheduled.
func Replay(eng *sim.Engine, c *Controller, records []TraceRecord) (int, error) {
	prev := sim.Time(-1)
	for i, r := range records {
		if r.At < prev {
			return 0, fmt.Errorf("mc: trace record %d out of order", i)
		}
		if r.At < eng.Now() {
			return 0, fmt.Errorf("mc: trace record %d at %v is in the past", i, r.At)
		}
		prev = r.At
	}
	rp := &replayer{c: c, records: records}
	step := rp.step // bind the method value once, not per record
	for _, r := range records {
		eng.AtFunc(r.At, step, rp)
	}
	return len(records), nil
}
