package mc

import (
	"testing"

	"greendimm/internal/dram"
	"greendimm/internal/power"
	"greendimm/internal/sim"
)

func newTestController(t *testing.T, interleaved, lowPower bool) (*sim.Engine, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Org:         dram.Org64GB(),
		Timing:      dram.DDR4_2133(),
		Interleaved: interleaved,
		LowPower:    lowPower,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestSingleReadLatency(t *testing.T) {
	eng, c := newTestController(t, true, false)
	var lat sim.Time = -1
	if err := c.Submit(0, false, func(l sim.Time) { lat = l }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Cold read: tRCD + tCL + tBL = 15+15+4 cycles of 938ps ~= 31.9ns.
	want := dram.DDR4_2133().TRCD + dram.DDR4_2133().TCL + dram.DDR4_2133().TBL
	if lat != want {
		t.Errorf("cold read latency = %v, want %v", lat, want)
	}
	st := c.Stats()
	if st.Reads != 1 || st.RowMisses != 1 || st.Activations != 1 {
		t.Errorf("stats = %+v, want 1 read / 1 miss / 1 act", st)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	tm := dram.DDR4_2133()
	// Same bank, same row (hit) vs same bank different row (conflict).
	eng, c := newTestController(t, false, false)
	var latHit, latConf sim.Time
	// Contiguous mapping: consecutive addresses in one row; +rowSize*banks
	// stays same bank different row. One row spans Columns/BL lines of
	// 64B = 8KB per bank... easier: same line twice = hit.
	if err := c.Submit(0, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(64, false, func(l sim.Time) { latHit = l }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	st := c.Stats()
	if st.RowHits != 1 {
		t.Fatalf("expected 1 row hit, got %+v", st)
	}

	eng2, c2 := newTestController(t, false, false)
	rowBytes := uint64(8 << 10) // 1024 cols x 64 bits / 8 = 8KB per rank-row... per bank row span in contiguous map: cols*64B = 8KB
	if err := c2.Submit(0, false, nil); err != nil {
		t.Fatal(err)
	}
	// Different row, same bank: in contiguous map row bits sit above
	// bank+bankgroup bits; jump by rowSpan*banks.
	confAddr := rowBytes * 16
	if err := c2.Submit(confAddr, false, func(l sim.Time) { latConf = l }); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if c2.Stats().RowConflicts != 1 {
		t.Fatalf("expected 1 conflict, got %+v", c2.Stats())
	}
	if latHit >= latConf {
		t.Errorf("row hit latency %v not faster than conflict %v", latHit, latConf)
	}
	if latConf < tm.TRP+tm.TRCD+tm.TCL {
		t.Errorf("conflict latency %v too fast", latConf)
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	// N requests to N different banks should finish far sooner than N
	// requests to conflicting rows of one bank.
	tm := dram.DDR4_2133()
	run := func(addrs []uint64) sim.Time {
		eng, c := newTestController(t, false, false)
		var last sim.Time
		for _, a := range addrs {
			if err := c.Submit(a, false, func(l sim.Time) {
				if end := eng.Now(); end > last {
					last = end
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return last
	}
	rowBytes := uint64(8 << 10)
	var parallel, serial []uint64
	for i := 0; i < 8; i++ {
		parallel = append(parallel, uint64(i)*rowBytes) // different banks
		serial = append(serial, uint64(i)*rowBytes*16)  // same bank, different rows
	}
	tp, ts := run(parallel), run(serial)
	if tp >= ts {
		t.Errorf("bank-parallel %v not faster than serial %v", tp, ts)
	}
	if ts < 7*tm.TRC {
		t.Errorf("serial conflicts %v faster than 7 x tRC; timing not enforced", ts)
	}
}

func TestInterleavingImprovesThroughput(t *testing.T) {
	// A sequential stream through interleaved mapping spreads over 4
	// channels and finishes ~4x faster than through contiguous mapping
	// (paper Fig. 3a mechanism).
	run := func(interleaved bool) sim.Time {
		eng, c := newTestController(t, interleaved, false)
		const n = 512
		next := uint64(0)
		var submit func()
		inFlight := 0
		issued := 0
		submit = func() {
			for inFlight < 32 && issued < n {
				a := next
				next += 64
				if err := c.Submit(a, false, func(sim.Time) {
					inFlight--
					submit()
				}); err != nil {
					t.Fatal(err)
				}
				inFlight++
				issued++
			}
		}
		eng.At(0, submit)
		eng.Run()
		return eng.Now()
	}
	ti, tc := run(true), run(false)
	speedup := float64(tc) / float64(ti)
	if speedup < 2.5 {
		t.Errorf("interleaving speedup = %.2fx, want > 2.5x", speedup)
	}
}

func TestLowPowerDescent(t *testing.T) {
	// With low-power enabled and no traffic, ranks descend to
	// self-refresh and residency reflects it.
	eng, c := newTestController(t, true, true)
	if err := c.Submit(0, false, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * sim.Millisecond)
	c.Finalize()
	if f := c.SelfRefreshFraction(); f < 0.95 {
		t.Errorf("self-refresh fraction after long idle = %.3f, want > 0.95", f)
	}
}

func TestNoLowPowerWithoutPolicy(t *testing.T) {
	eng, c := newTestController(t, true, false)
	if err := c.Submit(0, false, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * sim.Millisecond)
	c.Finalize()
	if f := c.LowPowerFraction(); f != 0 {
		t.Errorf("low-power fraction = %v with policy disabled, want 0", f)
	}
}

func TestInterleavedTrafficPreventsSelfRefresh(t *testing.T) {
	// The paper's central observation (Fig. 3b): a small footprint with
	// steady traffic under interleaving keeps every rank awake.
	eng, c := newTestController(t, true, true)
	footprint := uint64(64 << 20)
	g := sim.NewRNG(42)
	var tick func()
	tick = func() {
		a := (g.Uint64() % footprint) &^ 63
		_ = c.Submit(a, false, nil)
		// One request every 500ns, uniform over the footprint: each of
		// the 16 ranks sees a request every ~8us on average, far inside
		// the 64us self-refresh timeout -- the interleaved-traffic regime
		// the paper describes.
		if eng.Now() < 20*sim.Millisecond {
			eng.After(500*sim.Nanosecond, tick)
		}
	}
	eng.At(0, tick)
	eng.Run()
	c.Finalize()
	if f := c.SelfRefreshFraction(); f > 0.05 {
		t.Errorf("self-refresh fraction = %.3f under interleaved traffic, want ~0", f)
	}
}

func TestContiguousTrafficLetsOtherRanksSleep(t *testing.T) {
	// Same traffic without interleaving: 15 of 16 ranks idle -> high
	// self-refresh residency (paper Fig. 3b "w/o interleaving": ~54%).
	eng, c := newTestController(t, false, true)
	footprint := uint64(64 << 20)
	g := sim.NewRNG(42)
	var tick func()
	tick = func() {
		a := (g.Uint64() % footprint) &^ 63
		_ = c.Submit(a, false, nil)
		if eng.Now() < 20*sim.Millisecond {
			eng.After(500*sim.Nanosecond, tick)
		}
	}
	eng.At(0, tick)
	eng.Run()
	c.Finalize()
	if f := c.SelfRefreshFraction(); f < 0.80 {
		t.Errorf("self-refresh fraction = %.3f, want > 0.80 (15/16 ranks idle)", f)
	}
}

func TestWakeUpPenaltyApplied(t *testing.T) {
	tm := dram.DDR4_2133()
	eng, c := newTestController(t, true, true)
	var first, second sim.Time
	if err := c.Submit(0, false, func(l sim.Time) { first = l }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Let every rank fall into self-refresh, then access again.
	eng.RunUntil(eng.Now() + 10*sim.Millisecond)
	if err := c.Submit(0, false, func(l sim.Time) { second = l }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	c.Finalize()
	if second < first+tm.TXS {
		t.Errorf("post-sleep latency %v < cold latency %v + tXS %v", second, first, tm.TXS)
	}
	if c.Stats().WakeUps == 0 {
		t.Error("no wakeups recorded")
	}
}

func TestRefreshesCounted(t *testing.T) {
	eng, c := newTestController(t, true, false)
	eng.RunUntil(sim.Time(100) * dram.DDR4_2133().TREFI)
	c.Finalize()
	// 16 ranks x ~100 tREFI intervals.
	want := int64(16 * 100)
	got := c.Stats().Refreshes
	if got < want*9/10 || got > want*11/10 {
		t.Errorf("refreshes = %d, want ~%d", got, want)
	}
}

func TestSelfRefreshSuppressesREF(t *testing.T) {
	// Ranks in self-refresh must not receive controller REF commands.
	eng, c := newTestController(t, true, true)
	eng.RunUntil(100 * sim.Millisecond)
	c.Finalize()
	// All ranks asleep almost immediately: far fewer REFs than nominal.
	nominal := int64(16 * (100 * sim.Millisecond / dram.DDR4_2133().TREFI))
	if got := c.Stats().Refreshes; got > nominal/10 {
		t.Errorf("refreshes = %d with all ranks in self-refresh, want < %d", got, nominal/10)
	}
}

func TestActivityCoversWindow(t *testing.T) {
	eng, c := newTestController(t, true, true)
	for i := 0; i < 100; i++ {
		if err := c.Submit(uint64(i*64), i%3 == 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(5 * sim.Millisecond)
	c.Finalize()
	a := c.Activity()
	m, err := power.NewModel(dram.Org64GB())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FromActivity(a); err != nil {
		t.Errorf("activity rejected by power model: %v", err)
	}
	if a.Reads == 0 || a.Writes == 0 {
		t.Error("reads/writes not recorded")
	}
}

func TestDPDSubmitPanics(t *testing.T) {
	eng, c := newTestController(t, true, false)
	if err := c.EnterGroupDPD(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("submit to deep-powered-down group did not panic")
		}
	}()
	_ = c.Submit(0, false, nil) // group 0 covers the first 1GB
	eng.Run()
}

func TestDPDExitHandshake(t *testing.T) {
	eng, c := newTestController(t, true, false)
	if err := c.EnterGroupDPD(3); err != nil {
		t.Fatal(err)
	}
	if !c.GroupRegister().Down(3) {
		t.Fatal("group 3 not down")
	}
	var readyAt sim.Time = -1
	if err := c.ExitGroupDPD(3, func() { readyAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	start := eng.Now()
	eng.Run()
	if readyAt != start+dram.DDR4_2133().TDPDX {
		t.Errorf("ready at %v, want start+tDPDX = %v", readyAt, start+dram.DDR4_2133().TDPDX)
	}
	if !c.GroupRegister().Ready(3) {
		t.Error("group 3 not ready after exit")
	}
}

func TestDPDFractionTimeWeighted(t *testing.T) {
	eng, c := newTestController(t, true, false)
	// Half the groups down for the full window -> average 0.5.
	for g := 0; g < 32; g++ {
		if err := c.EnterGroupDPD(g); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(sim.Second)
	c.Finalize()
	a := c.Activity()
	if a.DPDFrac < 0.49 || a.DPDFrac > 0.51 {
		t.Errorf("DPDFrac = %v, want ~0.5", a.DPDFrac)
	}
}

func TestQueueFull(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Org: dram.Org64GB(), Timing: dram.DDR4_2133(), Interleaved: false, MaxQueue: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	filled := 0
	for i := 0; i < 10; i++ {
		err := c.Submit(uint64(i)*64*4, false, nil) // same channel (contiguous map)
		if err == nil {
			filled++
		} else if err != ErrQueueFull {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if filled != 4 {
		t.Errorf("accepted %d requests with queue of 4", filled)
	}
	eng.Run()
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Org: dram.Org{}, Timing: dram.DDR4_2133()}); err == nil {
		t.Error("invalid org accepted")
	}
	bad := Config{Org: dram.Org64GB(), Timing: dram.DDR4_2133(),
		PowerDownAfter: sim.Millisecond, SelfRefreshAfter: sim.Microsecond}
	if _, err := New(eng, bad); err == nil {
		t.Error("inverted timeouts accepted")
	}
	cfgBadTiming := Config{Org: dram.Org64GB(), Timing: dram.Timing{}}
	if _, err := New(eng, cfgBadTiming); err == nil {
		t.Error("zero timing accepted")
	}
}

func TestSubmitOutOfRange(t *testing.T) {
	_, c := newTestController(t, true, false)
	if err := c.Submit(1<<40, false, nil); err == nil {
		t.Error("out-of-range address accepted")
	}
}

func TestReadLatencyDistributionPopulated(t *testing.T) {
	eng, c := newTestController(t, true, false)
	for i := 0; i < 200; i++ {
		if err := c.Submit(uint64(i)*64, false, nil); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(eng.Now() + 100*sim.Nanosecond)
	}
	eng.Run()
	c.Finalize()
	d := &c.Stats().ReadLatency
	if d.N() != 200 {
		t.Fatalf("latency samples = %d, want 200", d.N())
	}
	if d.Mean() <= 0 || d.Percentile(99) < d.Mean() {
		t.Errorf("latency stats implausible: mean=%v p99=%v", d.Mean(), d.Percentile(99))
	}
}
