package mc

import (
	"testing"

	"greendimm/internal/dram"
	"greendimm/internal/power"
	"greendimm/internal/sim"
)

// TestFAWLimitsActivates: five row-conflict activates to distinct rows of
// distinct banks in one rank must span at least tFAW.
func TestFAWLimitsActivates(t *testing.T) {
	tm := dram.DDR4_2133()
	eng, c := newTestController(t, false, false)
	// Contiguous map: distinct banks within rank 0 are 8KB apart.
	rowBytes := uint64(8 << 10)
	var last sim.Time
	for i := 0; i < 5; i++ {
		if err := c.Submit(uint64(i)*rowBytes, false, func(sim.Time) {
			last = eng.Now()
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	// The fifth ACT cannot start before tFAW after the first; its data
	// lands at least tFAW + tRCD + tCL into the run.
	if min := tm.TFAW + tm.TRCD + tm.TCL; last < min {
		t.Errorf("five activates completed at %v, before tFAW gate %v", last, min)
	}
}

// TestRefreshBlocksBank: a request arriving while its rank is refreshing
// waits out tRFC.
func TestRefreshBlocksBank(t *testing.T) {
	tm := dram.DDR4_2133()
	eng, c := newTestController(t, false, false)
	// Advance to just after a refresh fires (tREFI).
	eng.RunUntil(tm.TREFI + sim.Nanosecond)
	var lat sim.Time
	if err := c.Submit(0, false, func(l sim.Time) { lat = l }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	cold := tm.TRCD + tm.TCL + tm.TBL
	if lat < cold+tm.TRFC/2 {
		t.Errorf("latency during refresh = %v, want >= cold %v + most of tRFC %v", lat, cold, tm.TRFC)
	}
}

// TestRefreshPausesUnderDPDAccounting: refresh energy scaling is the
// power model's job; the controller still issues REF commands to awake
// ranks, and the Activity carries the time-averaged DPD fraction so the
// model can discount them.
func TestRefreshCountIndependentOfDPD(t *testing.T) {
	eng, c := newTestController(t, true, false)
	for g := 32; g < 64; g++ {
		if err := c.EnterGroupDPD(g); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(50 * dram.DDR4_2133().TREFI)
	c.Finalize()
	a := c.Activity()
	if a.Refreshes == 0 {
		t.Error("no refreshes issued")
	}
	if a.DPDFrac < 0.49 || a.DPDFrac > 0.51 {
		t.Errorf("DPDFrac = %v, want 0.5", a.DPDFrac)
	}
	// The power model must accept and discount it.
	m, err := power.NewModel(dram.Org64GB())
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.FromActivity(power.Activity{
		Window: a.Window, StandbyT: a.StandbyT, ActiveT: a.ActiveT,
		PowerDnT: a.PowerDnT, SelfRefT: a.SelfRefT, Refreshes: a.Refreshes,
	})
	if err != nil {
		t.Fatal(err)
	}
	down, err := m.FromActivity(a)
	if err != nil {
		t.Fatal(err)
	}
	if down.RefreshW >= full.RefreshW {
		t.Errorf("refresh power not discounted: %v vs %v", down.RefreshW, full.RefreshW)
	}
	if down.BackgroundW >= full.BackgroundW {
		t.Errorf("background power not discounted: %v vs %v", down.BackgroundW, full.BackgroundW)
	}
}

// TestDPDReentry: groups can cycle down/up/down with consistent register
// state and time-weighted fraction.
func TestDPDReentry(t *testing.T) {
	eng, c := newTestController(t, true, false)
	if err := c.EnterGroupDPD(7); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(250 * sim.Millisecond)
	ready := false
	if err := c.ExitGroupDPD(7, func() { ready = true }); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(500 * sim.Millisecond)
	if !ready || !c.GroupRegister().Ready(7) {
		t.Fatal("group did not become ready")
	}
	if err := c.EnterGroupDPD(7); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Second)
	c.Finalize()
	// Down for [0, 250ms) and [500ms, 1s): average 0.75/64.
	got := c.Activity().DPDFrac
	want := 0.75 / 64
	if got < want*0.95 || got > want*1.05 {
		t.Errorf("time-weighted DPDFrac = %v, want ~%v", got, want)
	}
}

// TestAccessesByRank: counters track per-rank submissions.
func TestAccessesByRank(t *testing.T) {
	eng, c := newTestController(t, false, false)
	// Contiguous: rank 1 of channel 0 starts at 4GB.
	for i := 0; i < 7; i++ {
		if err := c.Submit(4<<30+uint64(i)*64, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := c.Submit(uint64(i)*64, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	acc := c.AccessesByRank()
	if acc[0] != 3 || acc[1] != 7 {
		t.Errorf("per-rank accesses = %v, want rank0=3 rank1=7", acc[:4])
	}
	total := int64(0)
	for _, a := range acc {
		total += a
	}
	if total != 10 {
		t.Errorf("total accesses = %d", total)
	}
}

// TestWritesCompleteAndCount: writes flow through the full path.
func TestWriteLatencyUsesCWL(t *testing.T) {
	tm := dram.DDR4_2133()
	eng, c := newTestController(t, true, false)
	var wLat, rLat sim.Time
	if err := c.Submit(0, true, func(l sim.Time) { wLat = l }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	eng2, c2 := newTestController(t, true, false)
	if err := c2.Submit(0, false, func(l sim.Time) { rLat = l }); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	// CWL (11 ck) < CL (15 ck): cold write completes sooner.
	if wLat >= rLat {
		t.Errorf("write latency %v not below read latency %v", wLat, rLat)
	}
	if diff := rLat - wLat; diff != tm.TCL-tm.TCWL {
		t.Errorf("latency gap = %v, want CL-CWL = %v", diff, tm.TCL-tm.TCWL)
	}
}

// TestFinalizeIdempotentAndActivityStable: double Finalize is safe.
func TestFinalizeIdempotent(t *testing.T) {
	eng, c := newTestController(t, true, false)
	if err := c.Submit(0, false, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	c.Finalize()
	a1 := c.Activity()
	c.Finalize()
	a2 := c.Activity()
	if a1 != a2 {
		t.Error("Activity changed across Finalize calls")
	}
}

// TestClosedPagePolicy: auto-precharge turns would-be row hits into
// misses, and removes conflicts (every access activates from precharged).
func TestClosedPagePolicy(t *testing.T) {
	run := func(closed bool) *Stats {
		eng := sim.NewEngine()
		c, err := New(eng, Config{
			Org: dram.Org64GB(), Timing: dram.DDR4_2133(),
			Interleaved: false, ClosedPage: closed,
		})
		if err != nil {
			t.Fatal(err)
		}
		// A strictly sequential stream: open-page turns it into hits.
		for i := 0; i < 64; i++ {
			if err := c.Submit(uint64(i)*64, false, nil); err != nil {
				t.Fatal(err)
			}
			eng.RunUntil(eng.Now() + 100*sim.Nanosecond)
		}
		eng.Run()
		c.Finalize()
		return c.Stats()
	}
	open := run(false)
	closed := run(true)
	if open.RowHits == 0 {
		t.Fatal("open-page saw no hits on a sequential stream")
	}
	if closed.RowHits != 0 {
		t.Errorf("closed-page recorded %d row hits; rows must auto-close", closed.RowHits)
	}
	if closed.RowConflicts != 0 {
		t.Errorf("closed-page recorded %d conflicts; precharged banks cannot conflict", closed.RowConflicts)
	}
	if closed.Activations <= open.Activations {
		t.Errorf("closed-page activations %d not above open-page %d",
			closed.Activations, open.Activations)
	}
	// Mean latency: sequential streams favor open-page.
	if closed.ReadLatency.Mean() <= open.ReadLatency.Mean() {
		t.Errorf("closed-page mean latency %.1fns not above open-page %.1fns on a sequential stream",
			closed.ReadLatency.Mean(), open.ReadLatency.Mean())
	}
}

// TestBandwidthCeilings: an ideal streaming load approaches the machine's
// theoretical bus bandwidth under interleaving (4 channels x ~17GB/s) and
// collapses to roughly one channel's worth without it.
func TestBandwidthCeilings(t *testing.T) {
	tm := dram.DDR4_2133()
	chanPeak := 64.0 / tm.TBL.Seconds() / 1e9 // GB/s of one channel's bus
	run := func(interleaved bool) float64 {
		eng := sim.NewEngine()
		c, err := New(eng, Config{
			Org: dram.Org64GB(), Timing: tm, Interleaved: interleaved, MaxQueue: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Open-loop saturating sequential stream with generous inflight.
		const n = 40000
		next := uint64(0)
		inFlight, issued := 0, 0
		var pump func()
		pump = func() {
			for inFlight < 192 && issued < n {
				if err := c.Submit(next, false, func(sim.Time) {
					inFlight--
					pump()
				}); err != nil {
					eng.After(20*sim.Nanosecond, pump)
					return
				}
				next += 64
				inFlight++
				issued++
			}
		}
		eng.At(0, pump)
		eng.Run()
		c.Finalize()
		return float64(n*64) / eng.Now().Seconds() / 1e9
	}
	bw4, bw1 := run(true), run(false)
	if bw4 < 0.75*4*chanPeak {
		t.Errorf("interleaved streaming bandwidth %.1fGB/s below 75%% of 4-channel peak %.1fGB/s",
			bw4, 4*chanPeak)
	}
	if bw1 > 1.3*chanPeak {
		t.Errorf("contiguous streaming bandwidth %.1fGB/s exceeds one channel's peak %.1fGB/s",
			bw1, chanPeak)
	}
	if bw4 < 2.5*bw1 {
		t.Errorf("channel scaling %.1f/%.1f below 2.5x", bw4, bw1)
	}
}
