package mc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace: arbitrary input never panics; valid records round-trip
// through Dump.
func FuzzParseTrace(f *testing.F) {
	f.Add("10 40 R\n20 80 W\n")
	f.Add("# comment\n\n5 0 r\n")
	f.Add("bogus")
	f.Add("1 2 3 4")
	f.Add("-5 ff W")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must survive a dump/parse round trip when the
		// records are themselves dumpable (non-negative times).
		tr := &Tracer{records: recs}
		for _, r := range recs {
			if r.At < 0 {
				return
			}
		}
		var buf bytes.Buffer
		if err := tr.Dump(&buf); err != nil {
			t.Fatal(err)
		}
		again, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of dumped trace failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}
