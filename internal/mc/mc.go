// Package mc implements the memory controller: per-channel FR-FCFS request
// scheduling over per-bank DDR4 timing, auto-refresh, the rank low-power
// policy (idle timeout into power-down, then self-refresh — §2.2 of the
// paper), and the two partial-array control mechanisms the paper contrasts:
// PASR bank refresh-disable bits and GreenDIMM's sub-array-group deep
// power-down register.
//
// The model is event-driven and cycle-approximate: every request pays real
// ACT/PRE/CAS/burst constraints against its bank, shares the channel data
// bus, and wakes sleeping ranks with tXP/tXS penalties, but the command bus
// itself is not arbitrated cycle by cycle. That is the standard fidelity
// point for power studies (cf. Ramulator's "simple" frontend), and it is
// what the paper's claims depend on: who can idle, for how long, and what a
// wake-up costs.
package mc

import (
	"fmt"

	"greendimm/internal/addr"
	"greendimm/internal/dram"
	"greendimm/internal/metrics"
	"greendimm/internal/power"
	"greendimm/internal/sim"
)

// Config configures a Controller.
type Config struct {
	Org         dram.Org
	Timing      dram.Timing
	Interleaved bool

	// LowPower enables the rank idle policy: after PowerDownAfter of rank
	// idleness the rank enters power-down; after SelfRefreshAfter (from
	// the same idle start) it moves to self-refresh. Zero values take
	// defaults. Disable to model a controller with power management off.
	LowPower         bool
	PowerDownAfter   sim.Time
	SelfRefreshAfter sim.Time

	// MaxQueue bounds the per-channel request queue; Submit reports
	// ErrQueueFull beyond it so closed-loop generators self-throttle.
	MaxQueue int

	// ClosedPage selects the closed-page row-buffer policy: every access
	// auto-precharges its row, trading row hits for lower conflict
	// latency — the controller knob server BIOSes expose.
	ClosedPage bool
}

// Defaults mirror conservative server BIOS policies.
const (
	defaultPowerDownAfter   = 1 * sim.Microsecond
	defaultSelfRefreshAfter = 64 * sim.Microsecond
	defaultMaxQueue         = 64
)

// ErrQueueFull is reported by Submit when the target channel queue is full.
var ErrQueueFull = fmt.Errorf("mc: channel queue full")

// request is an in-flight memory request.
type request struct {
	loc    addr.Loc
	write  bool
	arrive sim.Time
	done   func(latency sim.Time)
}

// bank tracks one bank's row-buffer and timing state.
type bank struct {
	openRow int // -1 when precharged
	readyAt sim.Time
	// canPreAt is when a precharge may start (tRAS/tWR/tRTP constraints
	// folded in at access time).
	canPreAt sim.Time
}

// Rank power-state indices for the residency meter (match dram.PowerState
// for the four rank-level states).
const (
	rsActive = iota
	rsStandby
	rsPowerDown
	rsSelfRefresh
	rsCount
)

// rank tracks one rank's power state, refresh, and activate history.
type rank struct {
	banks     []bank
	res       *metrics.Residency
	state     int
	idleSince sim.Time
	// awakeAt: until this time the rank cannot accept commands (wake-up
	// or refresh in progress).
	awakeAt   sim.Time
	actHist   [4]sim.Time // for tFAW
	actIdx    int
	pending   int // queued + in-flight requests targeting this rank
	idleEvSeq uint64
}

// channel is one memory channel's scheduler state.
type channel struct {
	queue     []*request
	busFreeAt sim.Time
	kickAt    sim.Time // earliest pending kick event, to dedupe
	kickSet   bool
	ranks     []*rank
}

// Stats is a snapshot of accumulated controller activity.
type Stats struct {
	Reads, Writes int64
	Activations   int64
	Refreshes     int64
	RowHits       int64
	RowMisses     int64 // closed bank (first touch after precharge)
	RowConflicts  int64 // open row mismatch, needed PRE+ACT
	WakeUps       int64 // exits from power-down or self-refresh
	ReadLatency   metrics.Distribution
}

// Controller is the top-level memory controller for all channels.
type Controller struct {
	eng    *sim.Engine
	cfg    Config
	mapper *addr.Mapper

	channels []*channel
	saReg    *dram.SubArrayGroupRegister
	pasr     *dram.PASRRegister
	dpdFrac  *metrics.WeightedValue

	rankAccesses []int64 // per global rank, for hotness-driven policies
	tracer       *Tracer

	stats Stats
	start sim.Time
	final bool
}

// New builds a controller attached to the engine.
func New(eng *sim.Engine, cfg Config) (*Controller, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.PowerDownAfter == 0 {
		cfg.PowerDownAfter = defaultPowerDownAfter
	}
	if cfg.SelfRefreshAfter == 0 {
		cfg.SelfRefreshAfter = defaultSelfRefreshAfter
	}
	if cfg.SelfRefreshAfter <= cfg.PowerDownAfter {
		return nil, fmt.Errorf("mc: self-refresh timeout %v must exceed power-down timeout %v",
			cfg.SelfRefreshAfter, cfg.PowerDownAfter)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = defaultMaxQueue
	}
	mapper, err := addr.NewMapper(cfg.Org, cfg.Interleaved)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		eng:     eng,
		cfg:     cfg,
		mapper:  mapper,
		saReg:   dram.NewSubArrayGroupRegister(cfg.Org),
		pasr:    dram.NewPASRRegister(cfg.Org),
		dpdFrac: metrics.NewWeightedValue(0, eng.Now()),
		start:   eng.Now(),
	}
	c.rankAccesses = make([]int64, cfg.Org.TotalRanks())
	now := eng.Now()
	for ch := 0; ch < cfg.Org.Channels; ch++ {
		chn := &channel{}
		for r := 0; r < cfg.Org.RanksPerChannel(); r++ {
			rk := &rank{
				banks:     make([]bank, cfg.Org.Banks()),
				res:       metrics.NewResidency(rsCount, rsStandby, now),
				state:     rsStandby,
				idleSince: now,
			}
			for b := range rk.banks {
				rk.banks[b].openRow = -1
			}
			for i := range rk.actHist {
				rk.actHist[i] = -1 // empty: ACTs at t=0 are still real
			}
			chn.ranks = append(chn.ranks, rk)
			c.scheduleRefresh(chn, rk)
			if cfg.LowPower {
				c.armIdleTimer(chn, rk)
			}
		}
		c.channels = append(c.channels, chn)
	}
	return c, nil
}

// Mapper exposes the address mapper (shared with the OS layer so both agree
// on sub-array group boundaries).
func (c *Controller) Mapper() *addr.Mapper { return c.mapper }

// GroupRegister exposes the GreenDIMM sub-array-group register.
func (c *Controller) GroupRegister() *dram.SubArrayGroupRegister { return c.saReg }

// PASRRegister exposes the PASR bank bit-vector (used by the PASR baseline).
func (c *Controller) PASRRegister() *dram.PASRRegister { return c.pasr }

// Submit enqueues a memory access for the cache line containing pa.
// done (optional) is invoked at completion with the request latency.
// Submitting to an address whose sub-array group is in deep power-down is
// a modelling error — the OS has off-lined that range — and panics.
func (c *Controller) Submit(pa uint64, write bool, done func(sim.Time)) error {
	loc, err := c.mapper.Decode(pa)
	if err != nil {
		return err
	}
	if g := c.mapper.SubArrayGroupOfRow(loc.Row); c.saReg.Down(g) {
		panic(fmt.Sprintf("mc: access %#x to sub-array group %d in deep power-down", pa, g))
	}
	chn := c.channels[loc.Channel]
	if len(chn.queue) >= c.cfg.MaxQueue {
		return ErrQueueFull
	}
	req := &request{loc: loc, write: write, arrive: c.eng.Now(), done: done}
	chn.queue = append(chn.queue, req)
	if c.tracer != nil {
		c.tracer.record(c.eng.Now(), pa, write)
	}
	c.rankAccesses[loc.Channel*c.cfg.Org.RanksPerChannel()+loc.Rank]++
	chn.ranks[loc.Rank].pending++
	c.wakeIfSleeping(chn, chn.ranks[loc.Rank])
	c.kick(chn, c.eng.Now())
	return nil
}

// QueueLen reports the total queued (not yet issued) requests.
func (c *Controller) QueueLen() int {
	n := 0
	for _, ch := range c.channels {
		n += len(ch.queue)
	}
	return n
}

// --- scheduling core ---

// kick schedules a scheduling pass on the channel at time at (deduped).
func (c *Controller) kick(chn *channel, at sim.Time) {
	if at < c.eng.Now() {
		at = c.eng.Now()
	}
	if chn.kickSet && chn.kickAt <= at {
		return
	}
	chn.kickAt = at
	chn.kickSet = true
	c.eng.At(at, func() {
		if chn.kickAt != at { // superseded by an earlier kick
			return
		}
		chn.kickSet = false
		c.schedule(chn)
	})
}

// schedule issues every request whose bank and rank can accept commands
// now (FR-FCFS order: ready row hits first, then oldest ready). When no
// request is ready, the kick timer re-arms at the earliest readiness.
func (c *Controller) schedule(chn *channel) {
	now := c.eng.Now()
	for {
		idx, nextAt := c.pickReady(chn, now)
		if idx < 0 {
			if nextAt >= 0 {
				c.kick(chn, nextAt)
			}
			return
		}
		req := chn.queue[idx]
		chn.queue = append(chn.queue[:idx], chn.queue[idx+1:]...)
		c.issue(chn, req)
	}
}

// pickReady returns the index of the preferred issuable request — among
// requests whose rank is awake and bank command-ready, row hits beat
// misses and age breaks ties — or -1 plus the earliest future readiness.
func (c *Controller) pickReady(chn *channel, now sim.Time) (int, sim.Time) {
	best := -1
	bestHit := false
	var nextAt sim.Time = -1
	for i, r := range chn.queue {
		rk := chn.ranks[r.loc.Rank]
		b := &rk.banks[r.loc.BankGroup*c.cfg.Org.BanksPerGroup+r.loc.Bank]
		ready := maxTime(rk.awakeAt, b.readyAt)
		if ready > now {
			if nextAt < 0 || ready < nextAt {
				nextAt = ready
			}
			continue
		}
		hit := b.openRow == r.loc.Row
		switch {
		case best < 0:
			best, bestHit = i, hit
		case hit && !bestHit:
			best, bestHit = i, hit
		case hit == bestHit && r.arrive < chn.queue[best].arrive:
			best = i
		}
	}
	return best, nextAt
}

// timeRequest computes (commandStart, dataStart, dataEnd) for a request
// given current bank/rank/bus state.
func (c *Controller) timeRequest(chn *channel, req *request) (sim.Time, sim.Time, sim.Time) {
	t := &c.cfg.Timing
	now := c.eng.Now()
	rk := chn.ranks[req.loc.Rank]
	b := &rk.banks[req.loc.BankGroup*c.cfg.Org.BanksPerGroup+req.loc.Bank]

	cmdStart := maxTime(now, rk.awakeAt, b.readyAt)
	var casAt sim.Time
	switch {
	case b.openRow == req.loc.Row: // row hit
		casAt = cmdStart
	case b.openRow < 0: // closed, ACT needed
		actAt := maxTime(cmdStart, c.fawGate(rk))
		casAt = actAt + t.TRCD
	default: // conflict: PRE then ACT
		preAt := maxTime(cmdStart, b.canPreAt)
		actAt := maxTime(preAt+t.TRP, c.fawGate(rk))
		casAt = actAt + t.TRCD
	}
	cas := t.TCL
	if req.write {
		cas = t.TCWL
	}
	dataStart := maxTime(casAt+cas, chn.busFreeAt)
	return cmdStart, dataStart, dataStart + t.TBL
}

// fawGate returns the earliest time a new ACT satisfies tFAW.
func (c *Controller) fawGate(rk *rank) sim.Time {
	oldest := rk.actHist[rk.actIdx]
	if oldest < 0 { // fewer than four ACTs so far
		return 0
	}
	return oldest + c.cfg.Timing.TFAW
}

// issue commits the request: updates bank state, bus, stats, and schedules
// completion.
func (c *Controller) issue(chn *channel, req *request) {
	t := &c.cfg.Timing
	rk := chn.ranks[req.loc.Rank]
	b := &rk.banks[req.loc.BankGroup*c.cfg.Org.BanksPerGroup+req.loc.Bank]
	_, dataStart, dataEnd := c.timeRequest(chn, req)

	switch {
	case b.openRow == req.loc.Row:
		c.stats.RowHits++
	case b.openRow < 0:
		c.stats.RowMisses++
		c.recordAct(rk)
	default:
		c.stats.RowConflicts++
		c.recordAct(rk)
	}
	b.openRow = req.loc.Row

	// Bank ready for the next column command after the CAS-to-CAS gap
	// (undo this request's CAS latency, which differs for writes);
	// precharge legal after write recovery / read-to-precharge.
	casLat := t.TCL
	if req.write {
		casLat = t.TCWL
	}
	b.readyAt = dataStart - casLat + t.TCCDL
	if req.write {
		b.canPreAt = dataEnd + t.TWR
	} else {
		b.canPreAt = maxTime(b.canPreAt, dataStart+t.TRTP)
	}
	if c.cfg.ClosedPage {
		// Auto-precharge: the row closes after this access; the next
		// access to the bank activates from precharged no earlier than
		// the precharge completes.
		b.openRow = -1
		b.readyAt = maxTime(b.readyAt, b.canPreAt+t.TRP)
	}
	chn.busFreeAt = dataEnd

	if req.write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
		c.stats.ReadLatency.Add((dataEnd - req.arrive).Nanoseconds())
	}

	c.markBusy(rk, dataEnd)
	done := req.done
	arrive := req.arrive
	c.eng.At(dataEnd, func() {
		rk.pending--
		if rk.pending == 0 && c.cfg.LowPower {
			c.armIdleTimer(chn, rk)
		}
		if done != nil {
			done(c.eng.Now() - arrive)
		}
	})
}

func (c *Controller) recordAct(rk *rank) {
	c.stats.Activations++
	rk.actHist[rk.actIdx] = c.eng.Now()
	rk.actIdx = (rk.actIdx + 1) % len(rk.actHist)
}

func maxTime(ts ...sim.Time) sim.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// --- power-state policy ---

// markBusy transitions the rank to active until at least busyUntil.
func (c *Controller) markBusy(rk *rank, busyUntil sim.Time) {
	now := c.eng.Now()
	if rk.state != rsActive {
		rk.res.Transition(now, rsActive)
		rk.state = rsActive
	}
	if busyUntil > rk.idleSince {
		rk.idleSince = busyUntil
	}
	rk.idleEvSeq++ // cancel stale idle timers
}

// armIdleTimer schedules the standby -> power-down -> self-refresh descent
// once the rank has no pending work.
func (c *Controller) armIdleTimer(chn *channel, rk *rank) {
	now := c.eng.Now()
	if rk.pending > 0 {
		return
	}
	if rk.state == rsActive {
		at := maxTime(now, rk.idleSince)
		if at == now {
			rk.res.Transition(now, rsStandby)
			rk.state = rsStandby
			rk.idleSince = now
		} else {
			seq := rk.idleEvSeq
			c.eng.AtDaemon(at, func() {
				if rk.idleEvSeq == seq && rk.pending == 0 {
					c.armIdleTimer(chn, rk)
				}
			})
			return
		}
	}
	seq := rk.idleEvSeq
	if rk.state == rsStandby {
		c.eng.AtDaemon(now+c.cfg.PowerDownAfter, func() {
			if rk.idleEvSeq != seq || rk.pending > 0 || rk.state != rsStandby {
				return
			}
			rk.res.Transition(c.eng.Now(), rsPowerDown)
			rk.state = rsPowerDown
		})
		c.eng.AtDaemon(now+c.cfg.SelfRefreshAfter, func() {
			if rk.idleEvSeq != seq || rk.pending > 0 || rk.state != rsPowerDown {
				return
			}
			rk.res.Transition(c.eng.Now(), rsSelfRefresh)
			rk.state = rsSelfRefresh
		})
	}
}

// wakeIfSleeping applies the tXP/tXS wake penalty when a request arrives at
// a sleeping rank.
func (c *Controller) wakeIfSleeping(chn *channel, rk *rank) {
	now := c.eng.Now()
	switch rk.state {
	case rsPowerDown:
		rk.awakeAt = maxTime(rk.awakeAt, now+c.cfg.Timing.TXP)
		c.stats.WakeUps++
	case rsSelfRefresh:
		rk.awakeAt = maxTime(rk.awakeAt, now+c.cfg.Timing.TXS)
		c.stats.WakeUps++
	default:
		return
	}
	rk.res.Transition(now, rsActive)
	rk.state = rsActive
	rk.idleEvSeq++
	// Self-refresh exit loses the row buffers.
	for i := range rk.banks {
		rk.banks[i].openRow = -1
	}
}

// --- refresh ---

// scheduleRefresh arms the per-rank tREFI refresh chain. Ranks in
// self-refresh skip controller REF commands (the device refreshes itself).
func (c *Controller) scheduleRefresh(chn *channel, rk *rank) {
	c.eng.AfterDaemon(c.cfg.Timing.TREFI, func() {
		if c.final {
			return
		}
		if rk.state != rsSelfRefresh {
			c.stats.Refreshes++
			t := &c.cfg.Timing
			start := maxTime(c.eng.Now(), rk.awakeAt)
			end := start + t.TRFC
			rk.awakeAt = end
			for i := range rk.banks {
				rk.banks[i].openRow = -1
				if rk.banks[i].readyAt < end {
					rk.banks[i].readyAt = end
				}
			}
		}
		c.scheduleRefresh(chn, rk)
	})
}

// --- GreenDIMM deep power-down control ---

// EnterGroupDPD puts sub-array group g into deep power-down. The caller
// (the GreenDIMM daemon) guarantees the OS has off-lined the matching
// physical range first.
func (c *Controller) EnterGroupDPD(g int) error {
	if err := c.saReg.EnterDPD(g); err != nil {
		return err
	}
	c.dpdFrac.Set(c.eng.Now(), c.saReg.DownFraction())
	return nil
}

// ExitGroupDPD starts waking group g; ready runs after tDPDX when the
// group's Ready bit is set — the bit the OS polls before online_pages.
func (c *Controller) ExitGroupDPD(g int, ready func()) error {
	if err := c.saReg.BeginExit(g); err != nil {
		return err
	}
	c.dpdFrac.Set(c.eng.Now(), c.saReg.DownFraction())
	c.eng.After(c.cfg.Timing.TDPDX, func() {
		c.saReg.CompleteExit(g)
		if ready != nil {
			ready()
		}
	})
	return nil
}

// --- reporting ---

// Finalize freezes residency meters at the current time. Call once, after
// the simulation drains; reporting methods may be used afterwards.
func (c *Controller) Finalize() {
	if c.final {
		return
	}
	c.final = true
	now := c.eng.Now()
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			rk.res.Finalize(now)
		}
	}
}

// Stats returns a snapshot of event counters.
func (c *Controller) Stats() *Stats { return &c.stats }

// Activity assembles the power.Activity summary for the whole run (from
// construction to Finalize time). Call after Finalize.
func (c *Controller) Activity() power.Activity {
	if !c.final {
		panic("mc: Activity before Finalize")
	}
	now := c.eng.Now()
	a := power.Activity{
		Window:      now - c.start,
		Activations: c.stats.Activations,
		Reads:       c.stats.Reads,
		Writes:      c.stats.Writes,
		Refreshes:   c.stats.Refreshes,
		DPDFrac:     c.dpdFrac.Average(now),
	}
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			a.ActiveT += rk.res.Total(rsActive)
			a.StandbyT += rk.res.Total(rsStandby)
			a.PowerDnT += rk.res.Total(rsPowerDown)
			a.SelfRefT += rk.res.Total(rsSelfRefresh)
		}
	}
	return a
}

// AccessesByRank returns a copy of per-global-rank access counts since
// construction (RAMZzz-style hotness input).
func (c *Controller) AccessesByRank() []int64 {
	out := make([]int64, len(c.rankAccesses))
	copy(out, c.rankAccesses)
	return out
}

// SelfRefreshFraction reports the average fraction of time ranks spent in
// self-refresh — the paper's Fig. 3b metric.
func (c *Controller) SelfRefreshFraction() float64 {
	var sr, total sim.Time
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			for s := 0; s < rsCount; s++ {
				total += rk.res.Total(s)
			}
			sr += rk.res.Total(rsSelfRefresh)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sr) / float64(total)
}

// LowPowerFraction reports the average fraction of time ranks spent in
// power-down or self-refresh.
func (c *Controller) LowPowerFraction() float64 {
	var lp, total sim.Time
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			for s := 0; s < rsCount; s++ {
				total += rk.res.Total(s)
			}
			lp += rk.res.Total(rsPowerDown) + rk.res.Total(rsSelfRefresh)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(lp) / float64(total)
}
