// Package mc implements the memory controller: per-channel FR-FCFS request
// scheduling over per-bank DDR4 timing, auto-refresh, the rank low-power
// policy (idle timeout into power-down, then self-refresh — §2.2 of the
// paper), and the two partial-array control mechanisms the paper contrasts:
// PASR bank refresh-disable bits and GreenDIMM's sub-array-group deep
// power-down register.
//
// The model is event-driven and cycle-approximate: every request pays real
// ACT/PRE/CAS/burst constraints against its bank, shares the channel data
// bus, and wakes sleeping ranks with tXP/tXS penalties, but the command bus
// itself is not arbitrated cycle by cycle. That is the standard fidelity
// point for power studies (cf. Ramulator's "simple" frontend), and it is
// what the paper's claims depend on: who can idle, for how long, and what a
// wake-up costs.
package mc

import (
	"fmt"

	"greendimm/internal/addr"
	"greendimm/internal/dram"
	"greendimm/internal/metrics"
	"greendimm/internal/power"
	"greendimm/internal/sim"
)

// Config configures a Controller.
type Config struct {
	Org         dram.Org
	Timing      dram.Timing
	Interleaved bool

	// LowPower enables the rank idle policy: after PowerDownAfter of rank
	// idleness the rank enters power-down; after SelfRefreshAfter (from
	// the same idle start) it moves to self-refresh. Zero values take
	// defaults. Disable to model a controller with power management off.
	LowPower         bool
	PowerDownAfter   sim.Time
	SelfRefreshAfter sim.Time

	// MaxQueue bounds the per-channel request queue; Submit reports
	// ErrQueueFull beyond it so closed-loop generators self-throttle.
	MaxQueue int

	// ClosedPage selects the closed-page row-buffer policy: every access
	// auto-precharges its row, trading row hits for lower conflict
	// latency — the controller knob server BIOSes expose.
	ClosedPage bool
}

// Defaults mirror conservative server BIOS policies.
const (
	defaultPowerDownAfter   = 1 * sim.Microsecond
	defaultSelfRefreshAfter = 64 * sim.Microsecond
	defaultMaxQueue         = 64
)

// ErrQueueFull is reported by Submit when the target channel queue is full.
var ErrQueueFull = fmt.Errorf("mc: channel queue full")

// Completer receives request completions. Callers that implement it and
// submit through SubmitCall pay no per-access heap allocation: the
// controller passes back the caller's id instead of invoking a closure,
// so one long-lived Completer serves every access a workload issues.
// Complete runs inside the engine's event loop at data-return time; the
// id is whatever the caller passed to SubmitCall, latency is completion
// time minus submit time.
type Completer interface {
	Complete(id uint64, latency sim.Time)
}

// funcCompleter adapts the legacy func(sim.Time) callback to Completer.
type funcCompleter struct{ fn func(sim.Time) }

func (f *funcCompleter) Complete(_ uint64, lat sim.Time) { f.fn(lat) }

// request is an in-flight memory request. Requests are pooled: the
// controller recycles them through a free list once completed (engine
// Event style), so steady-state traffic allocates none.
type request struct {
	loc    addr.Loc
	write  bool
	arrive sim.Time
	cb     Completer
	id     uint64
	rk     *rank
}

// bank tracks one bank's row-buffer and timing state.
type bank struct {
	openRow int // -1 when precharged
	readyAt sim.Time
	// canPreAt is when a precharge may start (tRAS/tWR/tRTP constraints
	// folded in at access time).
	canPreAt sim.Time
}

// Rank power-state indices for the residency meter (match dram.PowerState
// for the four rank-level states).
const (
	rsActive = iota
	rsStandby
	rsPowerDown
	rsSelfRefresh
	rsCount
)

// rank tracks one rank's power state, refresh, and activate history.
type rank struct {
	sh        *chanShard // owning channel shard (lane engine, shard stats)
	banks     []bank
	res       *metrics.Residency
	state     int
	idleSince sim.Time
	// awakeAt: until this time the rank cannot accept commands (wake-up
	// or refresh in progress).
	awakeAt sim.Time
	actHist [4]sim.Time // for tFAW
	actIdx  int
	pending int // queued + in-flight requests targeting this rank
	// standbySince is when the current standby residency began; the idle
	// descent timers re-derive their liveness from it (a fired timer
	// whose expected entry time no longer matches is stale), replacing
	// the sequence-number captures that cost a closure per arm.
	standbySince sim.Time
	// idleArmedAt dedupes idle-descent events: at most one is queued per
	// target time, since a fired event carries no state beyond the rank.
	idleArmedAt sim.Time
}

// chanShard is one memory channel's scheduler state — and, under a
// sharded engine, one shard of the controller: every event it schedules
// (kicks, idle-descent timers, refresh ticks) is tagged with its engine
// lane and touches only this struct, its ranks, and read-only controller
// config, so the engine may run different channels' events concurrently.
// Cross-channel state (the address map, the sub-array register, the
// request pool) stays on the Controller and is only touched from the
// global lane (SubmitCall, completions). Completions leave the shard
// through eng.AtGlobalFunc at data-return time, which is what bounds the
// engine's lookahead. Stats are per-shard and merged on demand.
type chanShard struct {
	eng       *sim.Engine // lane view of the controller's engine
	queue     []*request
	busFreeAt sim.Time
	kickAt    sim.Time // earliest pending kick event, to dedupe
	kickSet   bool
	ranks     []*rank
	stats     Stats
}

// Stats is a snapshot of accumulated controller activity.
type Stats struct {
	Reads, Writes int64
	Activations   int64
	Refreshes     int64
	RowHits       int64
	RowMisses     int64 // closed bank (first touch after precharge)
	RowConflicts  int64 // open row mismatch, needed PRE+ACT
	WakeUps       int64 // exits from power-down or self-refresh
	ReadLatency   metrics.Distribution
}

// Controller is the top-level memory controller for all channels.
type Controller struct {
	eng    *sim.Engine
	cfg    Config
	mapper *addr.Mapper

	channels []*chanShard
	saReg    *dram.SubArrayGroupRegister
	pasr     *dram.PASRRegister
	dpdFrac  *metrics.WeightedValue

	rankAccesses []int64 // per global rank, for hotness-driven policies
	tracer       *Tracer

	// freeReqs pools completed request objects for reuse by SubmitCall.
	freeReqs []*request

	// Event handlers bound once at construction; scheduled with the
	// engine's AtFunc family so the hot path never allocates a closure.
	compFn    func(any) // arg *request: completion at data-return time
	kickFn    func(any) // arg *chanShard: scheduling pass
	idleFn    func(any) // arg *rank: idle-descent timer
	refreshFn func(any) // arg *rank: tREFI refresh tick

	start sim.Time
	final bool
}

// New builds a controller attached to the engine.
func New(eng *sim.Engine, cfg Config) (*Controller, error) {
	if err := cfg.Org.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.PowerDownAfter == 0 {
		cfg.PowerDownAfter = defaultPowerDownAfter
	}
	if cfg.SelfRefreshAfter == 0 {
		cfg.SelfRefreshAfter = defaultSelfRefreshAfter
	}
	if cfg.SelfRefreshAfter <= cfg.PowerDownAfter {
		return nil, fmt.Errorf("mc: self-refresh timeout %v must exceed power-down timeout %v",
			cfg.SelfRefreshAfter, cfg.PowerDownAfter)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = defaultMaxQueue
	}
	mapper, err := addr.NewMapper(cfg.Org, cfg.Interleaved)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		eng:     eng,
		cfg:     cfg,
		mapper:  mapper,
		saReg:   dram.NewSubArrayGroupRegister(cfg.Org),
		pasr:    dram.NewPASRRegister(cfg.Org),
		dpdFrac: metrics.NewWeightedValue(0, eng.Now()),
		start:   eng.Now(),
	}
	c.rankAccesses = make([]int64, cfg.Org.TotalRanks())
	c.compFn = func(v any) { c.completeReq(v.(*request)) }
	c.kickFn = func(v any) { c.kickTick(v.(*chanShard)) }
	c.idleFn = func(v any) { c.idleTick(v.(*rank)) }
	c.refreshFn = func(v any) { c.refreshTick(v.(*rank)) }
	// Sharded engines may run channels' events concurrently as long as no
	// cross-shard message (only the completion events scheduled by issue)
	// lands sooner than the minimum data-return latency.
	eng.SetShardLookahead(minTime2(cfg.Timing.TCL, cfg.Timing.TCWL) + cfg.Timing.TBL)
	now := eng.Now()
	for ch := 0; ch < cfg.Org.Channels; ch++ {
		chn := &chanShard{eng: eng.Lane(ch)}
		// Reads per run reach tens of millions; bound each shard's
		// percentile storage (Mean/N stay exact — see
		// metrics.Distribution.SetCap).
		chn.stats.ReadLatency.SetCap(readLatencyCap)
		for r := 0; r < cfg.Org.RanksPerChannel(); r++ {
			rk := &rank{
				sh:           chn,
				banks:        make([]bank, cfg.Org.Banks()),
				res:          metrics.NewResidency(rsCount, rsStandby, now),
				state:        rsStandby,
				idleSince:    now,
				standbySince: now,
				idleArmedAt:  -1,
			}
			for b := range rk.banks {
				rk.banks[b].openRow = -1
			}
			for i := range rk.actHist {
				rk.actHist[i] = -1 // empty: ACTs at t=0 are still real
			}
			chn.ranks = append(chn.ranks, rk)
			chn.eng.AfterDaemonFunc(cfg.Timing.TREFI, c.refreshFn, rk)
			if cfg.LowPower {
				c.armIdleTimer(rk)
			}
		}
		c.channels = append(c.channels, chn)
	}
	return c, nil
}

// readLatencyCap bounds retained read-latency percentile samples.
const readLatencyCap = 1 << 15

// Mapper exposes the address mapper (shared with the OS layer so both agree
// on sub-array group boundaries).
func (c *Controller) Mapper() *addr.Mapper { return c.mapper }

// GroupRegister exposes the GreenDIMM sub-array-group register.
func (c *Controller) GroupRegister() *dram.SubArrayGroupRegister { return c.saReg }

// PASRRegister exposes the PASR bank bit-vector (used by the PASR baseline).
func (c *Controller) PASRRegister() *dram.PASRRegister { return c.pasr }

// Submit enqueues a memory access for the cache line containing pa.
// done (optional) is invoked at completion with the request latency.
// Submitting to an address whose sub-array group is in deep power-down is
// a modelling error — the OS has off-lined that range — and panics.
//
// Submit adapts done into a Completer, which costs one allocation when
// done is non-nil; allocation-sensitive callers should implement
// Completer and use SubmitCall instead.
func (c *Controller) Submit(pa uint64, write bool, done func(sim.Time)) error {
	if done == nil {
		return c.SubmitCall(pa, write, nil, 0)
	}
	return c.SubmitCall(pa, write, &funcCompleter{fn: done}, 0)
}

// SubmitCall enqueues a memory access like Submit, delivering completion
// as cb.Complete(id, latency) (cb may be nil for fire-and-forget). The
// request object comes from the controller's free list, so a caller with
// a long-lived Completer submits with zero heap allocations.
func (c *Controller) SubmitCall(pa uint64, write bool, cb Completer, id uint64) error {
	loc, err := c.mapper.Decode(pa)
	if err != nil {
		return err
	}
	if g := c.mapper.SubArrayGroupOfRow(loc.Row); c.saReg.Down(g) {
		panic(fmt.Sprintf("mc: access %#x to sub-array group %d in deep power-down", pa, g))
	}
	chn := c.channels[loc.Channel]
	if len(chn.queue) >= c.cfg.MaxQueue {
		return ErrQueueFull
	}
	rk := chn.ranks[loc.Rank]
	req := c.getReq()
	req.loc, req.write, req.arrive = loc, write, c.eng.Now()
	req.cb, req.id, req.rk = cb, id, rk
	chn.queue = append(chn.queue, req)
	if c.tracer != nil {
		c.tracer.record(c.eng.Now(), pa, write)
	}
	c.rankAccesses[loc.Channel*c.cfg.Org.RanksPerChannel()+loc.Rank]++
	rk.pending++
	c.wakeIfSleeping(chn, rk)
	c.kick(chn, c.eng.Now())
	return nil
}

// getReq pops a pooled request (or makes one).
func (c *Controller) getReq() *request {
	if k := len(c.freeReqs) - 1; k >= 0 {
		r := c.freeReqs[k]
		c.freeReqs[k] = nil
		c.freeReqs = c.freeReqs[:k]
		return r
	}
	return &request{}
}

// putReq returns a completed request to the free list, dropping the
// callback and rank references so idle pool slots retain nothing.
func (c *Controller) putReq(r *request) {
	r.cb, r.rk, r.id = nil, nil, 0
	c.freeReqs = append(c.freeReqs, r)
}

// QueueLen reports the total queued (not yet issued) requests.
func (c *Controller) QueueLen() int {
	n := 0
	for _, ch := range c.channels {
		n += len(ch.queue)
	}
	return n
}

// --- scheduling core ---

// kick schedules a scheduling pass on the channel at time at (deduped).
// Kicks ride the channel's engine lane: they read and write only this
// shard's state.
func (c *Controller) kick(chn *chanShard, at sim.Time) {
	now := chn.eng.Now()
	if at < now {
		at = now
	}
	if chn.kickSet && chn.kickAt <= at {
		return
	}
	chn.kickAt = at
	chn.kickSet = true
	chn.eng.AtFunc(at, c.kickFn, chn)
}

// kickTick runs an armed kick event. A fired event's own time is the
// current time, so kickAt differing from now means an earlier kick
// superseded this one.
func (c *Controller) kickTick(chn *chanShard) {
	if chn.kickAt != chn.eng.Now() {
		return
	}
	chn.kickSet = false
	c.schedule(chn)
}

// schedule issues every request whose bank and rank can accept commands
// now (FR-FCFS order: ready row hits first, then oldest ready). When no
// request is ready, the kick timer re-arms at the earliest readiness.
func (c *Controller) schedule(chn *chanShard) {
	now := chn.eng.Now()
	for {
		idx, nextAt := c.pickReady(chn, now)
		if idx < 0 {
			if nextAt >= 0 {
				c.kick(chn, nextAt)
			}
			return
		}
		req := chn.queue[idx]
		// Compacting removal that nils the vacated tail slot: the backing
		// array must not retain a pointer to the issued (soon pooled)
		// request.
		last := len(chn.queue) - 1
		copy(chn.queue[idx:], chn.queue[idx+1:])
		chn.queue[last] = nil
		chn.queue = chn.queue[:last]
		c.issue(chn, req)
	}
}

// pickReady returns the index of the preferred issuable request — among
// requests whose rank is awake and bank command-ready, row hits beat
// misses and age breaks ties — or -1 plus the earliest future readiness.
func (c *Controller) pickReady(chn *chanShard, now sim.Time) (int, sim.Time) {
	best := -1
	bestHit := false
	var nextAt sim.Time = -1
	for i, r := range chn.queue {
		rk := chn.ranks[r.loc.Rank]
		b := &rk.banks[r.loc.BankGroup*c.cfg.Org.BanksPerGroup+r.loc.Bank]
		ready := maxTime2(rk.awakeAt, b.readyAt)
		if ready > now {
			if nextAt < 0 || ready < nextAt {
				nextAt = ready
			}
			continue
		}
		hit := b.openRow == r.loc.Row
		switch {
		case best < 0:
			best, bestHit = i, hit
		case hit && !bestHit:
			best, bestHit = i, hit
		case hit == bestHit && r.arrive < chn.queue[best].arrive:
			best = i
		}
	}
	return best, nextAt
}

// timeRequest computes (commandStart, dataStart, dataEnd) for a request
// given current bank/rank/bus state.
func (c *Controller) timeRequest(chn *chanShard, req *request) (sim.Time, sim.Time, sim.Time) {
	t := &c.cfg.Timing
	now := chn.eng.Now()
	rk := chn.ranks[req.loc.Rank]
	b := &rk.banks[req.loc.BankGroup*c.cfg.Org.BanksPerGroup+req.loc.Bank]

	cmdStart := maxTime3(now, rk.awakeAt, b.readyAt)
	var casAt sim.Time
	switch {
	case b.openRow == req.loc.Row: // row hit
		casAt = cmdStart
	case b.openRow < 0: // closed, ACT needed
		actAt := maxTime2(cmdStart, c.fawGate(rk))
		casAt = actAt + t.TRCD
	default: // conflict: PRE then ACT
		preAt := maxTime2(cmdStart, b.canPreAt)
		actAt := maxTime2(preAt+t.TRP, c.fawGate(rk))
		casAt = actAt + t.TRCD
	}
	cas := t.TCL
	if req.write {
		cas = t.TCWL
	}
	dataStart := maxTime2(casAt+cas, chn.busFreeAt)
	return cmdStart, dataStart, dataStart + t.TBL
}

// fawGate returns the earliest time a new ACT satisfies tFAW.
func (c *Controller) fawGate(rk *rank) sim.Time {
	oldest := rk.actHist[rk.actIdx]
	if oldest < 0 { // fewer than four ACTs so far
		return 0
	}
	return oldest + c.cfg.Timing.TFAW
}

// issue commits the request: updates bank state, bus, stats, and schedules
// completion. It runs on the channel's lane; the completion event crosses
// back to the global lane at data-return time, which is never sooner than
// the lookahead registered at construction — the invariant sharded
// execution rests on.
func (c *Controller) issue(chn *chanShard, req *request) {
	t := &c.cfg.Timing
	rk := chn.ranks[req.loc.Rank]
	b := &rk.banks[req.loc.BankGroup*c.cfg.Org.BanksPerGroup+req.loc.Bank]
	_, dataStart, dataEnd := c.timeRequest(chn, req)

	switch {
	case b.openRow == req.loc.Row:
		chn.stats.RowHits++
	case b.openRow < 0:
		chn.stats.RowMisses++
		c.recordAct(rk)
	default:
		chn.stats.RowConflicts++
		c.recordAct(rk)
	}
	b.openRow = req.loc.Row

	// Bank ready for the next column command after the CAS-to-CAS gap
	// (undo this request's CAS latency, which differs for writes);
	// precharge legal after write recovery / read-to-precharge.
	casLat := t.TCL
	if req.write {
		casLat = t.TCWL
	}
	b.readyAt = dataStart - casLat + t.TCCDL
	if req.write {
		b.canPreAt = dataEnd + t.TWR
	} else {
		b.canPreAt = maxTime2(b.canPreAt, dataStart+t.TRTP)
	}
	if c.cfg.ClosedPage {
		// Auto-precharge: the row closes after this access; the next
		// access to the bank activates from precharged no earlier than
		// the precharge completes.
		b.openRow = -1
		b.readyAt = maxTime2(b.readyAt, b.canPreAt+t.TRP)
	}
	chn.busFreeAt = dataEnd

	if req.write {
		chn.stats.Writes++
	} else {
		chn.stats.Reads++
		chn.stats.ReadLatency.Add((dataEnd - req.arrive).Nanoseconds())
	}

	c.markBusy(rk, dataEnd)
	chn.eng.AtGlobalFunc(dataEnd, c.compFn, req)
}

// completeReq runs at a request's data-return time: it releases the
// rank, recycles the request, and only then notifies the caller — so a
// submit from inside Complete reuses the freed slot, and no free-list
// entry ever has a completion event outstanding.
func (c *Controller) completeReq(req *request) {
	rk := req.rk
	rk.pending--
	if rk.pending == 0 && c.cfg.LowPower {
		c.armIdleTimer(rk)
	}
	cb, id, arrive := req.cb, req.id, req.arrive
	c.putReq(req)
	if cb != nil {
		cb.Complete(id, c.eng.Now()-arrive)
	}
}

func (c *Controller) recordAct(rk *rank) {
	rk.sh.stats.Activations++
	rk.actHist[rk.actIdx] = rk.sh.eng.Now()
	rk.actIdx = (rk.actIdx + 1) % len(rk.actHist)
}

// maxTime2 and maxTime3 are fixed-arity maxima: the issue path computes
// several per request, and the variadic form they replace materialized a
// slice per call.
func maxTime2(a, b sim.Time) sim.Time {
	if b > a {
		return b
	}
	return a
}

func maxTime3(a, b, c sim.Time) sim.Time {
	return maxTime2(maxTime2(a, b), c)
}

func minTime2(a, b sim.Time) sim.Time {
	if b < a {
		return b
	}
	return a
}

// --- power-state policy ---

// markBusy transitions the rank to active until at least busyUntil.
// Armed idle timers need no explicit cancellation: a fired idleTick
// re-derives liveness from the rank's state and standby-entry time.
func (c *Controller) markBusy(rk *rank, busyUntil sim.Time) {
	now := rk.sh.eng.Now()
	if rk.state != rsActive {
		rk.res.Transition(now, rsActive)
		rk.state = rsActive
	}
	if busyUntil > rk.idleSince {
		rk.idleSince = busyUntil
	}
}

// armIdleTimer begins the standby -> power-down -> self-refresh descent
// once the rank has no pending work. Transition times are the same as
// the captured-closure scheme this replaces — standby on last data
// return, power-down and self-refresh at PowerDownAfter/SelfRefreshAfter
// past standby entry — but arming allocates nothing: the timer events
// carry only the rank, and a fired event decides from current state
// whether it is still live.
func (c *Controller) armIdleTimer(rk *rank) {
	if rk.pending > 0 {
		return
	}
	now := rk.sh.eng.Now()
	if rk.state == rsActive {
		if rk.idleSince > now {
			// Data still on the wire: revisit at the drain time.
			c.armIdleAt(rk, rk.idleSince)
			return
		}
		rk.res.Transition(now, rsStandby)
		rk.state = rsStandby
		rk.idleSince = now
		rk.standbySince = now
	}
	if rk.state == rsStandby && rk.standbySince == now {
		c.armIdleAt(rk, now+c.cfg.PowerDownAfter)
	}
}

// armIdleAt queues an idle-descent event at time at. One queued event
// per target time suffices — idleTick carries no captured state — so
// equal-time re-arms are deduped.
func (c *Controller) armIdleAt(rk *rank, at sim.Time) {
	if rk.idleArmedAt == at {
		return
	}
	rk.idleArmedAt = at
	rk.sh.eng.AtDaemonFunc(at, c.idleFn, rk)
}

// idleTick advances the idle descent one step. The event knows only its
// rank; it is live exactly when the rank's current state says a
// transition is due now (stale timers from an interrupted descent fall
// through without effect, replacing the old sequence-number check).
func (c *Controller) idleTick(rk *rank) {
	if rk.pending > 0 {
		return
	}
	now := rk.sh.eng.Now()
	switch rk.state {
	case rsActive:
		// Deferred standby entry armed at the expected drain time.
		c.armIdleTimer(rk)
	case rsStandby:
		if now == rk.standbySince+c.cfg.PowerDownAfter {
			rk.res.Transition(now, rsPowerDown)
			rk.state = rsPowerDown
			c.armIdleAt(rk, rk.standbySince+c.cfg.SelfRefreshAfter)
		}
	case rsPowerDown:
		if now == rk.standbySince+c.cfg.SelfRefreshAfter {
			rk.res.Transition(now, rsSelfRefresh)
			rk.state = rsSelfRefresh
		}
	}
}

// wakeIfSleeping applies the tXP/tXS wake penalty when a request arrives at
// a sleeping rank. Runs on the global lane (submit path) only.
func (c *Controller) wakeIfSleeping(chn *chanShard, rk *rank) {
	now := c.eng.Now()
	switch rk.state {
	case rsPowerDown:
		rk.awakeAt = maxTime2(rk.awakeAt, now+c.cfg.Timing.TXP)
		chn.stats.WakeUps++
	case rsSelfRefresh:
		rk.awakeAt = maxTime2(rk.awakeAt, now+c.cfg.Timing.TXS)
		chn.stats.WakeUps++
	default:
		return
	}
	rk.res.Transition(now, rsActive)
	rk.state = rsActive
	// Self-refresh exit loses the row buffers.
	for i := range rk.banks {
		rk.banks[i].openRow = -1
	}
}

// --- refresh ---

// refreshTick is the per-rank tREFI refresh chain (armed at construction,
// self-rescheduling). Ranks in self-refresh skip controller REF commands
// (the device refreshes itself).
func (c *Controller) refreshTick(rk *rank) {
	if c.final {
		return
	}
	if rk.state != rsSelfRefresh {
		rk.sh.stats.Refreshes++
		t := &c.cfg.Timing
		start := maxTime2(rk.sh.eng.Now(), rk.awakeAt)
		end := start + t.TRFC
		rk.awakeAt = end
		for i := range rk.banks {
			rk.banks[i].openRow = -1
			if rk.banks[i].readyAt < end {
				rk.banks[i].readyAt = end
			}
		}
	}
	rk.sh.eng.AfterDaemonFunc(c.cfg.Timing.TREFI, c.refreshFn, rk)
}

// --- GreenDIMM deep power-down control ---

// EnterGroupDPD puts sub-array group g into deep power-down. The caller
// (the GreenDIMM daemon) guarantees the OS has off-lined the matching
// physical range first.
func (c *Controller) EnterGroupDPD(g int) error {
	if err := c.saReg.EnterDPD(g); err != nil {
		return err
	}
	c.dpdFrac.Set(c.eng.Now(), c.saReg.DownFraction())
	return nil
}

// ExitGroupDPD starts waking group g; ready runs after tDPDX when the
// group's Ready bit is set — the bit the OS polls before online_pages.
func (c *Controller) ExitGroupDPD(g int, ready func()) error {
	if err := c.saReg.BeginExit(g); err != nil {
		return err
	}
	c.dpdFrac.Set(c.eng.Now(), c.saReg.DownFraction())
	c.eng.After(c.cfg.Timing.TDPDX, func() {
		c.saReg.CompleteExit(g)
		if ready != nil {
			ready()
		}
	})
	return nil
}

// --- reporting ---

// Finalize freezes residency meters at the current time. Call once, after
// the simulation drains; reporting methods may be used afterwards.
func (c *Controller) Finalize() {
	if c.final {
		return
	}
	c.final = true
	now := c.eng.Now()
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			rk.res.Finalize(now)
		}
	}
}

// accumulate folds another shard's counters into s (channel-index order
// keeps merged ReadLatency percentile storage deterministic).
func (s *Stats) accumulate(o *Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Activations += o.Activations
	s.Refreshes += o.Refreshes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.RowConflicts += o.RowConflicts
	s.WakeUps += o.WakeUps
	s.ReadLatency.MergeFrom(&o.ReadLatency)
}

// Stats returns a snapshot of event counters, merged across channel
// shards in channel index order. The snapshot is detached: it does not
// track later controller activity.
func (c *Controller) Stats() *Stats {
	out := &Stats{}
	for _, ch := range c.channels {
		out.accumulate(&ch.stats)
	}
	return out
}

// Activity assembles the power.Activity summary for the whole run (from
// construction to Finalize time). Call after Finalize.
func (c *Controller) Activity() power.Activity {
	if !c.final {
		panic("mc: Activity before Finalize")
	}
	now := c.eng.Now()
	st := c.Stats()
	a := power.Activity{
		Window:      now - c.start,
		Activations: st.Activations,
		Reads:       st.Reads,
		Writes:      st.Writes,
		Refreshes:   st.Refreshes,
		DPDFrac:     c.dpdFrac.Average(now),
	}
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			a.ActiveT += rk.res.Total(rsActive)
			a.StandbyT += rk.res.Total(rsStandby)
			a.PowerDnT += rk.res.Total(rsPowerDown)
			a.SelfRefT += rk.res.Total(rsSelfRefresh)
		}
	}
	return a
}

// AccessesByRank returns a copy of per-global-rank access counts since
// construction (RAMZzz-style hotness input).
func (c *Controller) AccessesByRank() []int64 {
	out := make([]int64, len(c.rankAccesses))
	copy(out, c.rankAccesses)
	return out
}

// SelfRefreshFraction reports the average fraction of time ranks spent in
// self-refresh — the paper's Fig. 3b metric.
func (c *Controller) SelfRefreshFraction() float64 {
	var sr, total sim.Time
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			for s := 0; s < rsCount; s++ {
				total += rk.res.Total(s)
			}
			sr += rk.res.Total(rsSelfRefresh)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sr) / float64(total)
}

// LowPowerFraction reports the average fraction of time ranks spent in
// power-down or self-refresh.
func (c *Controller) LowPowerFraction() float64 {
	var lp, total sim.Time
	for _, ch := range c.channels {
		for _, rk := range ch.ranks {
			for s := 0; s < rsCount; s++ {
				total += rk.res.Total(s)
			}
			lp += rk.res.Total(rsPowerDown) + rk.res.Total(rsSelfRefresh)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(lp) / float64(total)
}
