package mc

import (
	"bytes"
	"strings"
	"testing"

	"greendimm/internal/sim"
)

func TestTraceRecordDumpParseRoundTrip(t *testing.T) {
	eng, c := newTestController(t, true, false)
	tr := c.Trace()
	g := sim.NewRNG(4)
	for i := 0; i < 50; i++ {
		a := (g.Uint64() % (64 << 30)) &^ 63
		if err := c.Submit(a, g.Bool(0.3), nil); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(eng.Now() + 100*sim.Nanosecond)
	}
	eng.Run()
	if tr.Len() != 50 {
		t.Fatalf("recorded %d, want 50", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("parsed %d, want 50", len(got))
	}
	for i := range got {
		if got[i] != tr.Records()[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], tr.Records()[i])
		}
	}
}

func TestTraceReplayReproducesStats(t *testing.T) {
	// A replayed trace drives the controller to the same event counts as
	// the original run.
	eng, c := newTestController(t, true, false)
	tr := c.Trace()
	g := sim.NewRNG(9)
	for i := 0; i < 200; i++ {
		a := (g.Uint64() % (1 << 30)) &^ 63
		if err := c.Submit(a, g.Bool(0.25), nil); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(eng.Now() + 200*sim.Nanosecond)
	}
	eng.Run()
	c.Finalize()
	orig := c.Stats()

	eng2, c2 := newTestController(t, true, false)
	n, err := Replay(eng2, c2, tr.Records())
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("replayed %d, want 200", n)
	}
	eng2.Run()
	c2.Finalize()
	rep := c2.Stats()
	if rep.Reads != orig.Reads || rep.Writes != orig.Writes {
		t.Errorf("replay counts differ: %d/%d vs %d/%d",
			rep.Reads, rep.Writes, orig.Reads, orig.Writes)
	}
	if rep.Activations != orig.Activations || rep.RowHits != orig.RowHits {
		t.Errorf("replay timing stats differ: act %d vs %d, hits %d vs %d",
			rep.Activations, orig.Activations, rep.RowHits, orig.RowHits)
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"1 2",     // too few fields
		"x 40 R",  // bad time
		"10 zz R", // bad addr
		"10 40 Q", // bad op
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("ParseTrace accepted %q", c)
		}
	}
	// Comments and blanks are fine.
	recs, err := ParseTrace(strings.NewReader("# header\n\n10 40 W\n"))
	if err != nil || len(recs) != 1 || !recs[0].Write {
		t.Errorf("comment handling broken: %v %v", recs, err)
	}
}

func TestReplayRejectsDisorder(t *testing.T) {
	eng, c := newTestController(t, true, false)
	recs := []TraceRecord{{At: 100, Addr: 0}, {At: 50, Addr: 64}}
	if _, err := Replay(eng, c, recs); err == nil {
		t.Error("out-of-order trace accepted")
	}
	eng.RunUntil(200)
	if _, err := Replay(eng, c, []TraceRecord{{At: 100, Addr: 0}}); err == nil {
		t.Error("past-time record accepted")
	}
}
