package mc

import (
	"testing"

	"greendimm/internal/dram"
	"greendimm/internal/sim"
)

// drainLoop is a closed-loop Completer that keeps a fixed number of
// sequential-line reads in flight until a budget is spent — the
// steady-state pattern the workload layer drives the controller with.
type drainLoop struct {
	c        *Controller
	next     uint64
	left     int64
	inFlight int
	width    int
	done     int64
}

func (l *drainLoop) Complete(_ uint64, _ sim.Time) {
	l.inFlight--
	l.done++
	l.pump()
}

func (l *drainLoop) pump() {
	for l.inFlight < l.width && l.left > 0 {
		if err := l.c.SubmitCall(l.next, false, l, 0); err != nil {
			return // queue full: the next completion re-pumps
		}
		l.next = (l.next + 64) % (1 << 30)
		l.left--
		l.inFlight++
	}
}

// TestSubmitDrainSteadyStateAllocs mirrors internal/sim/alloc_test.go at
// the controller layer: once the request pool and event free list are
// warm, a SubmitCall+drain cycle allocates nothing — no request objects,
// no completion closures, no kick or idle-timer closures, no refresh
// closures, no latency-sample growth.
func TestSubmitDrainSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Org:         dram.Org64GB(),
		Timing:      dram.DDR4_2133(),
		Interleaved: true,
		LowPower:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	loop := &drainLoop{c: c, width: 32}

	// Warm up: fill the request pool, event free list, queue capacity,
	// and latency sample buffer. The warmup must advance simulated time
	// past SelfRefreshAfter (64us): self-refresh descent timers are
	// armed that far ahead, so the queued-event population keeps growing
	// until a full descent horizon of them is in flight.
	loop.left = 100000
	loop.pump()
	eng.Run()
	if loop.done != 100000 {
		t.Fatalf("warmup completed %d of 100000", loop.done)
	}

	avg := testing.AllocsPerRun(50, func() {
		loop.left = 1000
		loop.pump()
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state submit+drain allocates %.2f allocs per 1000-request batch, want 0", avg)
	}
}

// idCompleter records per-id completion counts and checks that no id
// completes while its request was already recycled into a new identity.
type idCompleter struct {
	t     *testing.T
	seen  map[uint64]int
	total int
}

func (ic *idCompleter) Complete(id uint64, lat sim.Time) {
	ic.seen[id]++
	ic.total++
	if lat <= 0 {
		ic.t.Errorf("id %d completed with non-positive latency %v", id, lat)
	}
}

// TestPooledRequestsNotReusedWhilePending drives overlapping traffic
// with unique callback ids and verifies the pool contract: every
// submitted id completes exactly once with its own id — a request
// recycled while its completion event was still queued would surface as
// a duplicated or missing id. Run under -race in check.sh, this also
// guards the single-threaded ownership of the pool.
func TestPooledRequestsNotReusedWhilePending(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Org:         dram.Org64GB(),
		Timing:      dram.DDR4_2133(),
		Interleaved: true,
		LowPower:    true,
		MaxQueue:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ic := &idCompleter{t: t, seen: make(map[uint64]int)}
	nextID := uint64(1)
	submitted := 0
	// Waves of bursts so requests overlap heavily and the pool churns:
	// each wave submits while the previous wave's completions are queued.
	var wave func()
	wave = func() {
		if nextID > 5000 {
			return
		}
		for i := 0; i < 64 && nextID <= 5000; i++ {
			pa := (nextID * 8192) % (1 << 30)
			if err := c.SubmitCall(pa, nextID%3 == 0, ic, nextID); err != nil {
				break // queue full; next wave retries with fresh ids
			}
			nextID++
			submitted++
		}
		eng.After(100*sim.Nanosecond, wave)
	}
	wave()
	eng.Run()

	writes := 0
	for id, n := range ic.seen {
		if n != 1 {
			t.Fatalf("id %d completed %d times: pooled request reused while completion pending", id, n)
		}
		if id%3 == 0 {
			writes++
		}
	}
	if ic.total != submitted {
		t.Fatalf("completed %d of %d submitted requests", ic.total, submitted)
	}
	// Drained controller: every pooled request must be at rest with no
	// retained callback or rank reference.
	for i, r := range c.freeReqs {
		if r == nil {
			t.Fatalf("free list slot %d is nil", i)
		}
		if r.cb != nil || r.rk != nil || r.id != 0 {
			t.Fatalf("free list slot %d retains state: cb set=%t rk set=%t id=%d",
				i, r.cb != nil, r.rk != nil, r.id)
		}
		for j := i + 1; j < len(c.freeReqs); j++ {
			if c.freeReqs[j] == r {
				t.Fatalf("request %p pooled twice (slots %d and %d)", r, i, j)
			}
		}
	}
}

// TestQueueRemovalReleasesTailSlot pins the schedule() removal fix: after
// a queue drains, the backing array's slots must all be nil so issued
// requests aren't retained by queue capacity.
func TestQueueRemovalReleasesTailSlot(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Org:         dram.Org64GB(),
		Timing:      dram.DDR4_2133(),
		Interleaved: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := c.SubmitCall(uint64(i)*1<<20, false, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	for _, chn := range c.channels {
		if len(chn.queue) != 0 {
			t.Fatalf("queue not drained: %d left", len(chn.queue))
		}
		full := chn.queue[:cap(chn.queue)]
		for i, p := range full {
			if p != nil {
				t.Fatalf("drained queue retains request pointer in backing-array slot %d", i)
			}
		}
	}
}

// BenchmarkMCSubmit measures the closed-loop submit+drain hot path the
// workload layer exercises: allocs/op is the gated number (0 in steady
// state); construction and warmup sit outside the timer.
func BenchmarkMCSubmit(b *testing.B) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Org:         dram.Org64GB(),
		Timing:      dram.DDR4_2133(),
		Interleaved: true,
		LowPower:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	loop := &drainLoop{c: c, width: 32}
	loop.left = 100000 // warm pool, free list, buffers past the SR-timer horizon
	loop.pump()
	eng.Run()

	b.ReportAllocs()
	b.ResetTimer()
	loop.left = int64(b.N)
	loop.pump()
	eng.Run()
}
