// Package baseline implements the comparison points of the paper's §6.2:
//
//   - srf_only: the controller's own rank idle policy (power-down, then
//     self-refresh). This needs no code here — it is mc.Config.LowPower.
//   - RAMZzz (Wu et al., SC'12): rank-aware placement that packs pages
//     into few hot ranks and aggressively demotes the resulting cold
//     ranks to self-refresh.
//   - PASR (mobile-DRAM partial-array self-refresh): banks holding no
//     live data stop refreshing and power down.
//
// The paper itself models both baselines analytically — "we model power
// reduction by them based on the number of idle ranks/banks" (§6.2) — and
// this package does the same: it derives rank/bank occupancy from the real
// allocator state through the real address mapper (which is what makes
// both collapse under interleaving: every rank and bank holds part of any
// footprint), then adjusts the measured controller activity.
package baseline

import (
	"greendimm/internal/addr"
	"greendimm/internal/kernel"
	"greendimm/internal/power"
	"greendimm/internal/sim"
)

// Occupancy reports which ranks and banks hold at least one allocated
// page under the given address mapping, by walking the page-frame array.
type Occupancy struct {
	RankUsed []bool // indexed by global rank
	BankUsed []bool // indexed by flat bank
}

// Scan computes occupancy for the current allocator state. Pages are
// sampled at page granularity: a page's first line determines its rank
// (with interleaving a page spans everything anyway; scanning lines of a
// page would only reinforce full occupancy).
func Scan(mem *kernel.Mem, m *addr.Mapper) Occupancy {
	o := m.Org()
	occ := Occupancy{
		RankUsed: make([]bool, o.TotalRanks()),
		BankUsed: make([]bool, o.TotalRanks()*o.Banks()),
	}
	pageBytes := mem.PageBytes()
	remaining := len(occ.BankUsed)
	mark := func(pa uint64) {
		loc, err := m.Decode(pa)
		if err != nil {
			return
		}
		rank := loc.Channel*o.RanksPerChannel() + loc.Rank
		occ.RankUsed[rank] = true
		if fb := loc.FlatBank(o); !occ.BankUsed[fb] {
			occ.BankUsed[fb] = true
			remaining--
		}
	}
	for pfn := kernel.PFN(0); pfn < kernel.PFN(mem.NPages()) && remaining > 0; pfn++ {
		st := mem.State(pfn)
		if st != kernel.PageMovable && st != kernel.PageUnmovable {
			continue
		}
		base := uint64(pfn) * uint64(pageBytes)
		// Two sampling patterns cover both layouts: coarse 8KB strides
		// sweep the contiguous map's bank bits (which sit above the
		// 8KB row), and the page's first 1024 lines sweep the
		// interleaved map's channel/rank/bank bits (which sit below).
		// The remaining-counter stops the whole walk once every bank is
		// seen (after one page, under interleaving); a page that adds
		// nothing via the coarse pass cannot add anything via the fine
		// pass either unless banks are still unseen.
		before := remaining
		for off := int64(0); off < pageBytes && remaining > 0; off += 8192 {
			mark(base + uint64(off))
		}
		if before == remaining {
			continue
		}
		lines := pageBytes / 64
		if lines > 1024 {
			lines = 1024
		}
		for k := int64(1); k < lines && remaining > 0; k++ {
			mark(base + uint64(k*64))
		}
	}
	return occ
}

// IdleRanks counts ranks with no allocated data.
func (occ Occupancy) IdleRanks() int {
	n := 0
	for _, u := range occ.RankUsed {
		if !u {
			n++
		}
	}
	return n
}

// IdleBanks counts banks with no allocated data.
func (occ Occupancy) IdleBanks() int {
	n := 0
	for _, u := range occ.BankUsed {
		if !u {
			n++
		}
	}
	return n
}

// ApplyRAMZzz transforms measured controller activity into what RAMZzz
// would achieve: the idle (dataless) ranks' non-active residency is
// demoted entirely to self-refresh (RAMZzz's migrations guarantee they
// receive no traffic, so its aggressive demotion never pays wake-ups),
// and their share of controller refreshes disappears (self-refresh
// handles it). Ranks holding data are untouched — under interleaving that
// is all of them, which is the paper's point.
func ApplyRAMZzz(a power.Activity, occ Occupancy) power.Activity {
	total := len(occ.RankUsed)
	idle := occ.IdleRanks()
	if total == 0 || idle == 0 {
		return a
	}
	perRank := a.Window
	idleT := sim.Time(idle) * perRank
	// Idle ranks currently split between standby/power-down/self-refresh
	// (they see no traffic). Remove their share proportionally from the
	// non-active states and credit it to self-refresh.
	nonActive := a.StandbyT + a.PowerDnT + a.SelfRefT
	if nonActive < idleT {
		idleT = nonActive
	}
	if nonActive > 0 {
		scale := float64(nonActive-idleT) / float64(nonActive)
		a.StandbyT = sim.Time(float64(a.StandbyT) * scale)
		a.PowerDnT = sim.Time(float64(a.PowerDnT) * scale)
		a.SelfRefT = sim.Time(float64(a.SelfRefT)*scale) + idleT
	}
	// Controller REFs for ranks that now self-refresh go away.
	a.Refreshes = int64(float64(a.Refreshes) * float64(total-idle) / float64(total))
	return a
}

// ApplyPASR transforms activity into PASR's effect: banks with no live
// data stop refreshing and their array background power gates — expressed
// through the DPDFrac channel of the power model (the gateable-fraction
// semantics are identical; PASR is the mechanism GreenDIMM's circuit
// builds on, §4.3).
func ApplyPASR(a power.Activity, occ Occupancy) power.Activity {
	total := len(occ.BankUsed)
	if total == 0 {
		return a
	}
	frac := float64(occ.IdleBanks()) / float64(total)
	if frac > a.DPDFrac {
		a.DPDFrac = frac
	}
	return a
}

// MigrationOverhead estimates RAMZzz's page-migration cost over a window:
// it re-groups pages every epoch; the paper criticizes its need to monitor
// all pages. Returned as CPU time to charge.
func MigrationOverhead(window sim.Time, epoch sim.Time, pages int64) sim.Time {
	if epoch <= 0 {
		epoch = sim.Second
	}
	epochs := int64(window / epoch)
	// ~100ns of bookkeeping per page per epoch (access-bit scanning).
	return sim.Time(epochs * pages * 100 * int64(sim.Nanosecond) / int64(sim.Time(1)))
}
