package baseline

import (
	"testing"

	"greendimm/internal/addr"
	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/power"
	"greendimm/internal/sim"
)

func mkMem(t *testing.T) *kernel.Mem {
	t.Helper()
	// A 64GB address space at 2MB pages keeps the frame array small.
	mem, err := kernel.New(kernel.Config{TotalBytes: 64 << 30, PageBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

func mkMapper(t *testing.T, interleaved bool) *addr.Mapper {
	t.Helper()
	m, err := addr.NewMapper(dram.Org64GB(), interleaved)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInterleavingDefeatsBaselines(t *testing.T) {
	// A 1.2GB footprint under interleaving occupies EVERY rank and bank:
	// RAMZzz and PASR find nothing to turn off (paper §3.3, Fig. 9).
	mem := mkMem(t)
	if _, err := mem.AllocPages(600, true, 5); err != nil { // 1.2GB
		t.Fatal(err)
	}
	occ := Scan(mem, mkMapper(t, true))
	if got := occ.IdleRanks(); got != 0 {
		t.Errorf("idle ranks under interleaving = %d, want 0", got)
	}
	if got := occ.IdleBanks(); got != 0 {
		t.Errorf("idle banks under interleaving = %d, want 0", got)
	}
}

func TestContiguousLeavesRanksIdle(t *testing.T) {
	mem := mkMem(t)
	if _, err := mem.AllocPages(600, true, 5); err != nil {
		t.Fatal(err)
	}
	occ := Scan(mem, mkMapper(t, false))
	// 1.2GB in 4GB ranks, allocated low-first: 1 rank used, 15 idle.
	if got := occ.IdleRanks(); got != 15 {
		t.Errorf("idle ranks = %d, want 15", got)
	}
	if got := occ.IdleBanks(); got == 0 {
		t.Error("no idle banks despite 1-rank footprint")
	}
}

func baseActivity(window sim.Time, ranks int) power.Activity {
	return power.Activity{
		Window:    window,
		StandbyT:  window * sim.Time(ranks) / 2,
		PowerDnT:  window * sim.Time(ranks) / 4,
		SelfRefT:  window * sim.Time(ranks) / 4,
		Refreshes: int64(ranks) * 1000,
	}
}

func TestApplyRAMZzzDemotesIdleRanks(t *testing.T) {
	occ := Occupancy{RankUsed: make([]bool, 16)}
	occ.RankUsed[0] = true // 15 idle
	a := baseActivity(sim.Second, 16)
	out := ApplyRAMZzz(a, occ)
	// Residency still covers window x ranks.
	if got, want := out.StandbyT+out.PowerDnT+out.SelfRefT+out.ActiveT,
		a.StandbyT+a.PowerDnT+a.SelfRefT+a.ActiveT; got != want {
		t.Errorf("residency not conserved: %v != %v", got, want)
	}
	if out.SelfRefT <= a.SelfRefT {
		t.Error("RAMZzz did not increase self-refresh residency")
	}
	// 15 of 16 ranks fully in self-refresh.
	if out.SelfRefT < 15*sim.Second {
		t.Errorf("self-refresh residency = %v, want >= 15 rank-seconds", out.SelfRefT)
	}
	if out.Refreshes >= a.Refreshes {
		t.Error("RAMZzz did not reduce controller refreshes")
	}
}

func TestApplyRAMZzzNoopWhenAllUsed(t *testing.T) {
	occ := Occupancy{RankUsed: []bool{true, true, true, true}}
	a := baseActivity(sim.Second, 4)
	if out := ApplyRAMZzz(a, occ); out != a {
		t.Error("RAMZzz changed activity with zero idle ranks")
	}
}

func TestApplyPASRGatesIdleBanks(t *testing.T) {
	occ := Occupancy{BankUsed: make([]bool, 256)}
	for i := 0; i < 64; i++ {
		occ.BankUsed[i] = true // 192 of 256 idle
	}
	a := power.Activity{Window: sim.Second, DPDFrac: 0}
	out := ApplyPASR(a, occ)
	if out.DPDFrac != 0.75 {
		t.Errorf("PASR DPDFrac = %v, want 0.75", out.DPDFrac)
	}
	// Never reduces an already higher fraction.
	a.DPDFrac = 0.9
	if out := ApplyPASR(a, occ); out.DPDFrac != 0.9 {
		t.Errorf("PASR lowered DPDFrac to %v", out.DPDFrac)
	}
}

func TestBaselinesReduceEnergyOnlyWithoutInterleaving(t *testing.T) {
	// End-to-end shape check for Fig. 9's message: compute DRAM power for
	// a 1.2GB-footprint idle-ish machine under both mappings.
	mem := mkMem(t)
	if _, err := mem.AllocPages(600, true, 5); err != nil {
		t.Fatal(err)
	}
	model, err := power.NewModel(dram.Org64GB())
	if err != nil {
		t.Fatal(err)
	}
	window := sim.Second
	a := power.Activity{
		Window:    window,
		StandbyT:  window * 16,
		Refreshes: 16 * int64(window/model.Timing.TREFI),
	}
	base, err := model.FromActivity(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, intlv := range []bool{true, false} {
		occ := Scan(mem, mkMapper(t, intlv))
		ramzzz, err := model.FromActivity(ApplyRAMZzz(a, occ))
		if err != nil {
			t.Fatal(err)
		}
		pasr, err := model.FromActivity(ApplyPASR(a, occ))
		if err != nil {
			t.Fatal(err)
		}
		if intlv {
			if ramzzz.TotalW() != base.TotalW() || pasr.TotalW() != base.TotalW() {
				t.Errorf("baselines saved power under interleaving: base=%.2f ramzzz=%.2f pasr=%.2f",
					base.TotalW(), ramzzz.TotalW(), pasr.TotalW())
			}
		} else {
			if ramzzz.TotalW() >= base.TotalW()*0.9 {
				t.Errorf("RAMZzz saved too little without interleaving: %.2f vs %.2f",
					ramzzz.TotalW(), base.TotalW())
			}
			if pasr.TotalW() >= base.TotalW()*0.95 {
				t.Errorf("PASR saved too little without interleaving: %.2f vs %.2f",
					pasr.TotalW(), base.TotalW())
			}
		}
	}
}

func TestMigrationOverhead(t *testing.T) {
	oh := MigrationOverhead(10*sim.Second, sim.Second, 1000000)
	if oh <= 0 {
		t.Error("zero overhead")
	}
	// 10 epochs x 1e6 pages x 100ns = 1s of CPU.
	if oh != sim.Second {
		t.Errorf("overhead = %v, want 1s", oh)
	}
	if MigrationOverhead(10*sim.Second, 0, 100) <= 0 {
		t.Error("default epoch broken")
	}
}
