// Package obs is the job-lifecycle observability layer: a low-overhead
// structured trace that the serving stack (internal/server, internal/
// cluster, internal/exp) threads through a job's whole life — submit,
// queue wait, execution, per-cell sweep work, dispatcher attempts,
// backoffs, hedges, and the final merge.
//
// Design constraints, in order:
//
//   - Nil is off. Every method on a nil *Trace (and on the zero
//     SpanHandle) is a no-op, so instrumentation points never branch on
//     "is tracing enabled" — they just call. A disabled trace costs zero
//     allocations and a couple of predictable branches.
//   - Recording is lock-free. Spans land in a fixed-capacity ring via an
//     atomic reservation counter; concurrent sweep cells and dispatcher
//     goroutines never contend on a mutex. When the ring fills, further
//     spans are counted as dropped rather than blocking or growing.
//   - Reading is safe at any time. Each slot flips an atomic ready flag
//     after its span is fully written, so View can snapshot a live trace
//     (the progress endpoint does) without tearing a half-written span.
//
// Timestamps are monotonic: every span records its offset from the
// trace's epoch using the runtime's monotonic clock, so spans order and
// measure correctly even across wall-clock adjustments.
package obs

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the span ring size NewTrace uses when the caller
// passes capacity <= 0. It comfortably holds the daemon's per-job span
// budget (queue wait + execute + one span per sweep cell) for every
// experiment in the registry.
const DefaultCapacity = 256

// Span is one recorded interval of a trace. Start is the offset from the
// trace epoch; Arg carries the span's small payload — a backend URL for
// dispatcher attempts, a sweep-cell index, an error code.
type Span struct {
	Name    string `json:"name"`
	Arg     string `json:"arg,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
}

// slot pairs a span with its publication flag. The ready flag is stored
// (release) only after every span field is written, and loaded (acquire)
// before any is read, so readers never observe a torn span.
type slot struct {
	ready atomic.Bool
	span  Span
}

// Trace is a fixed-capacity, lock-free recorder of one job's spans. All
// methods are safe for concurrent use; a nil *Trace is a valid disabled
// recorder.
type Trace struct {
	epoch time.Time
	slots []slot
	next  atomic.Int64
}

// NewTrace returns a trace whose epoch is now. capacity <= 0 selects
// DefaultCapacity.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Trace{epoch: time.Now(), slots: make([]slot, capacity)}
}

// Epoch reports the trace's time origin (zero for a nil trace).
func (t *Trace) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// since is the monotonic offset of now from the epoch.
func (t *Trace) since() time.Duration { return time.Since(t.epoch) }

// record reserves a slot and publishes one finished span. Overflow is
// counted (View reports it as Dropped) instead of blocking.
func (t *Trace) record(name, arg string, start, dur time.Duration, errMsg string) {
	i := t.next.Add(1) - 1
	if i >= int64(len(t.slots)) {
		return // dropped; View derives the count from next vs capacity
	}
	s := &t.slots[i]
	s.span = Span{Name: name, Arg: arg, StartNs: start.Nanoseconds(), DurNs: dur.Nanoseconds(), Err: errMsg}
	s.ready.Store(true)
}

// SpanHandle is an open span returned by Start. It is a value — starting
// and ending a span allocates nothing. The zero SpanHandle (and any
// handle from a nil trace) is a no-op.
type SpanHandle struct {
	t     *Trace
	name  string
	arg   string
	start time.Duration
}

// Start opens a span named name.
func (t *Trace) Start(name string) SpanHandle { return t.StartArg(name, "") }

// StartArg opens a span with an argument payload.
func (t *Trace) StartArg(name, arg string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, arg: arg, start: t.since()}
}

// End records the span with no error.
func (h SpanHandle) End() { h.EndErr(nil) }

// EndErr records the span, attaching err's message when non-nil.
func (h SpanHandle) EndErr(err error) {
	if h.t == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	h.t.record(h.name, h.arg, h.start, h.t.since()-h.start, msg)
}

// EndMsg records the span with a literal error message ("" for none) —
// for outcomes that are not error values, like an abandoned attempt.
func (h SpanHandle) EndMsg(msg string) {
	if h.t == nil {
		return
	}
	h.t.record(h.name, h.arg, h.start, h.t.since()-h.start, msg)
}

// Add records a completed span from explicit wall-clock endpoints — for
// intervals measured before the recording site runs, like queue wait
// (submit time → execution start).
func (t *Trace) Add(name, arg string, start time.Time, dur time.Duration, err error) {
	if t == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	t.record(name, arg, start.Sub(t.epoch), dur, msg)
}

// Mark records an instantaneous event (a zero-duration span).
func (t *Trace) Mark(name, arg string) {
	if t == nil {
		return
	}
	t.record(name, arg, t.since(), 0, "")
}

// TraceView is the JSON export of a trace: spans sorted by start time,
// plus how many were dropped on ring overflow.
type TraceView struct {
	Epoch   time.Time `json:"epoch"`
	Spans   []Span    `json:"spans"`
	Dropped int64     `json:"dropped,omitempty"`
}

// View snapshots the trace. It is safe to call while spans are still
// being recorded: only fully-published spans appear. A nil trace views
// as empty.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	v := TraceView{Epoch: t.epoch, Spans: make([]Span, 0, len(t.slots))}
	for i := range t.slots {
		if t.slots[i].ready.Load() {
			v.Spans = append(v.Spans, t.slots[i].span)
		}
	}
	// Reservation order is not start order under concurrency; present
	// spans on the timeline. The sort is stable so equal starts keep
	// publication order.
	sort.SliceStable(v.Spans, func(i, j int) bool { return v.Spans[i].StartNs < v.Spans[j].StartNs })
	if over := t.next.Load() - int64(len(t.slots)); over > 0 {
		v.Dropped = over
	}
	return v
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying t, so layers that only see a context
// (the cluster client's retry loop) can record spans. A nil t returns
// ctx unchanged.
func ContextWith(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — which, per the
// package contract, is a valid disabled trace.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
