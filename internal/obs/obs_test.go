package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace(16)
	sp := tr.StartArg("execute", "job1")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Add("queue_wait", "", tr.Epoch(), 5*time.Millisecond, nil)
	tr.Mark("failover", "http://b")
	tr.Start("broken").EndErr(errors.New("boom"))

	v := tr.View()
	if len(v.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(v.Spans), v.Spans)
	}
	// Sorted by start: queue_wait starts at the epoch (offset 0).
	if v.Spans[0].Name != "queue_wait" || v.Spans[0].StartNs != 0 {
		t.Errorf("first span = %+v, want queue_wait at 0", v.Spans[0])
	}
	byName := map[string]Span{}
	for _, s := range v.Spans {
		byName[s.Name] = s
	}
	if s := byName["execute"]; s.Arg != "job1" || s.DurNs < int64(time.Millisecond) {
		t.Errorf("execute span = %+v", s)
	}
	if s := byName["failover"]; s.DurNs != 0 || s.Arg != "http://b" {
		t.Errorf("mark span = %+v", s)
	}
	if s := byName["broken"]; s.Err != "boom" {
		t.Errorf("error span = %+v", s)
	}
	if v.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", v.Dropped)
	}
}

// TestTraceOverflowDrops checks the ring bounds memory: spans beyond
// capacity are counted, not stored, and never corrupt stored ones.
func TestTraceOverflowDrops(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Mark("m", fmt.Sprint(i))
	}
	v := tr.View()
	if len(v.Spans) != 4 {
		t.Fatalf("stored %d spans, want 4", len(v.Spans))
	}
	if v.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", v.Dropped)
	}
}

// TestTraceConcurrentAppend hammers the ring from many goroutines while
// a reader snapshots it — the lock-free contract under the race
// detector.
func TestTraceConcurrentAppend(t *testing.T) {
	const writers, per = 8, 50
	tr := NewTrace(writers * per)
	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: View must never tear
		defer wg.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
				for _, s := range tr.View().Spans {
					if s.Name == "" {
						t.Error("torn span observed")
						return
					}
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartArg("cell", fmt.Sprint(w))
				sp.End()
			}
		}(w)
	}
	ww.Wait()
	close(stopRead)
	wg.Wait()
	v := tr.View()
	if len(v.Spans) != writers*per || v.Dropped != 0 {
		t.Fatalf("spans=%d dropped=%d, want %d/0", len(v.Spans), v.Dropped, writers*per)
	}
	for i := 1; i < len(v.Spans); i++ {
		if v.Spans[i].StartNs < v.Spans[i-1].StartNs {
			t.Fatal("View not sorted by start")
		}
	}
}

// TestNilTraceIsFreeAndSafe locks in the disabled-cost contract: every
// operation on a nil trace is a no-op and allocates nothing.
func TestNilTraceIsFreeAndSafe(t *testing.T) {
	var tr *Trace
	avg := testing.AllocsPerRun(1000, func() {
		sp := tr.StartArg("x", "y")
		sp.End()
		sp.EndErr(nil)
		tr.Mark("m", "")
		tr.Add("a", "", time.Time{}, 0, nil)
	})
	if avg != 0 {
		t.Fatalf("disabled trace costs %.2f allocs/op, want 0", avg)
	}
	if v := tr.View(); len(v.Spans) != 0 || v.Dropped != 0 {
		t.Errorf("nil view = %+v", v)
	}
	if !tr.Epoch().IsZero() {
		t.Error("nil epoch not zero")
	}
}

func TestContextCarriesTrace(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	tr := NewTrace(4)
	ctx := ContextWith(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if got := ContextWith(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("nil trace should leave context bare")
	}
}

func TestTraceViewJSON(t *testing.T) {
	tr := NewTrace(4)
	tr.Start("execute").End()
	b, err := json.Marshal(tr.View())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceView
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "execute" {
		t.Fatalf("round-trip = %+v", back)
	}
}
