// Package vmtrace reproduces the paper's §3.1 virtualized-server setup: a
// synthetic population of VMs shaped like the Microsoft Azure Resource
// Central trace (many small short-lived VMs, a heavy tail of large
// long-lived ones), scheduled onto one host every five minutes under the
// paper's consolidation rules (vCPU ratio <= 2, memory never over
// capacity). VM memory is really allocated from the simulated kernel, so
// host utilization, KSM merging and GreenDIMM off-lining all interact
// through the same allocator.
//
// The target shape is Fig. 1: average utilization ~48% of 256GB, swinging
// roughly 7%-92% over 24 hours, with KSM recovering ~24% of used memory.
package vmtrace

import (
	"fmt"
	"sort"

	"greendimm/internal/kernel"
	"greendimm/internal/ksm"
	"greendimm/internal/metrics"
	"greendimm/internal/sim"
)

// VMType is one of the ~100 VM shapes sampled from the trace distribution.
type VMType struct {
	VCPUs      int
	MemGB      int
	MeanLife   sim.Time
	CPUUtil    float64 // average in-VM CPU utilization
	Image      int     // base image: pages shared with same-image VMs
	CommonFrac float64 // fraction of pages from the shared image
	Weight     float64 // relative popularity
}

// Config drives the host simulation.
type Config struct {
	HostCores    int
	HostMemBytes int64
	// AdmitCapFrac caps the sum of admitted VM memory (paper: VM memory
	// never exceeds capacity; a small margin is left for the kernel).
	AdmitCapFrac float64
	// MaxVCPURatio is the consolidation bound (paper: 2.0).
	MaxVCPURatio float64
	// ScheduleEvery is the scheduler period (paper: 5 minutes).
	ScheduleEvery sim.Time
	// ArrivalsPerHourMean modulates load; the diurnal pattern multiplies
	// this by [0.3, 1.7] over 24h to produce Fig. 1's swing.
	ArrivalsPerHourMean float64
	// RampBytesPerSec is how fast an admitted VM faults its memory in.
	RampBytesPerSec int64
	// NumTypes is the VM-type population size (paper: 100).
	NumTypes int
	// Images is the number of distinct base images for KSM sharing.
	Images int
	// PageVolatility is the per-scan-visit probability a VM page rewrites.
	PageVolatility float64
	Seed           int64
}

// DefaultConfig returns the paper's host: 16 cores, 256GB, 100 VM types.
func DefaultConfig() Config {
	return Config{
		HostCores:           16,
		HostMemBytes:        256 << 30,
		AdmitCapFrac:        0.92,
		MaxVCPURatio:        2.0,
		ScheduleEvery:       5 * sim.Minute,
		ArrivalsPerHourMean: 85,
		RampBytesPerSec:     2 << 30,
		NumTypes:            100,
		Images:              6,
		PageVolatility:      0.02,
		Seed:                1,
	}
}

// VM is one running virtual machine.
type VM struct {
	ID       uint32
	Type     VMType
	expiry   sim.Time
	target   int64 // pages
	ramped   int64
	vpages   []*ksm.VPage
	admitted sim.Time
}

// Host simulates the consolidated server.
type Host struct {
	eng  *sim.Engine
	mem  *kernel.Mem
	ksmd *ksm.Daemon // optional
	cfg  Config
	rng  *sim.RNG

	types      []VMType
	contentRNG *sim.RNG // content draws must not perturb arrival draws
	running    map[uint32]*VM
	backlog    []*VM
	nextID     uint32

	vcpusUsed int
	admitted  int64 // bytes of admitted VM memory (target, not yet ramped)

	utilTS   *metrics.WeightedValue // fraction of host memory used by VMs
	cpuTS    *metrics.WeightedValue
	samples  []Sample
	running_ bool
}

// Sample is one scheduler-period observation (the Fig. 1 series).
type Sample struct {
	At       sim.Time
	UsedFrac float64 // VM-used memory / host memory
	CPUUtil  float64
	Running  int
	KSMSaved int64 // bytes
}

// New builds a host over the memory manager. ksmd may be nil (the
// "w/o ksm" series).
func New(eng *sim.Engine, mem *kernel.Mem, ksmd *ksm.Daemon, cfg Config) (*Host, error) {
	switch {
	case cfg.HostCores <= 0 || cfg.HostMemBytes <= 0:
		return nil, fmt.Errorf("vmtrace: bad host shape %+v", cfg)
	case cfg.AdmitCapFrac <= 0 || cfg.AdmitCapFrac > 1:
		return nil, fmt.Errorf("vmtrace: admit cap %v out of range", cfg.AdmitCapFrac)
	case cfg.ScheduleEvery <= 0:
		return nil, fmt.Errorf("vmtrace: non-positive schedule period")
	case cfg.NumTypes <= 0 || cfg.Images <= 0:
		return nil, fmt.Errorf("vmtrace: need types and images")
	}
	h := &Host{
		eng: eng, mem: mem, ksmd: ksmd, cfg: cfg,
		rng:        sim.NewRNG(cfg.Seed ^ 0x617a757265),
		contentRNG: sim.NewRNG(cfg.Seed ^ 0x636f6e74),
		running:    map[uint32]*VM{},
		nextID:     100, // 0 = kernel, 1 = ksm
		utilTS:     metrics.NewWeightedValue(0, eng.Now()),
		cpuTS:      metrics.NewWeightedValue(0, eng.Now()),
	}
	h.genTypes()
	return h, nil
}

// genTypes samples the VM-type population, Azure-shaped: vCPUs heavily
// skewed to 1-2, memory 1-4GB per vCPU, lifetimes a short/medium/long
// mixture.
func (h *Host) genTypes() {
	vcpuChoices := []int{1, 2, 4, 8}
	vcpuWeights := []float64{0.42, 0.33, 0.17, 0.08}
	// Azure VMs carry 2-8GB per vCPU; with the <=2x vCPU consolidation
	// bound capping concurrency at 32 vCPUs, this mix is what lets the
	// host reach the paper's ~48% average memory utilization.
	memPerVCPU := []int{2, 4, 8}
	memWeights := []float64{0.25, 0.45, 0.30}
	for i := 0; i < h.cfg.NumTypes; i++ {
		vc := vcpuChoices[h.rng.WeightedPick(vcpuWeights)]
		mem := vc * memPerVCPU[h.rng.WeightedPick(memWeights)]
		var life sim.Time
		switch h.rng.WeightedPick([]float64{0.45, 0.40, 0.15}) {
		case 0: // short: ~15 min
			life = sim.Time(h.rng.Pareto(8, 2.2) * float64(sim.Minute))
		case 1: // medium: ~2h
			life = sim.Time(h.rng.Pareto(45, 2.0) * float64(sim.Minute))
		default: // long: half a day and up
			life = sim.Time(h.rng.Pareto(8, 2.5) * float64(sim.Hour))
		}
		h.types = append(h.types, VMType{
			VCPUs:      vc,
			MemGB:      mem,
			MeanLife:   life,
			CPUUtil:    0.25 + 0.5*h.rng.Float64(),
			Image:      h.rng.Intn(h.cfg.Images),
			CommonFrac: 0.30 + 0.35*h.rng.Float64(),
			// Popularity skew, truncated: an unbounded Pareto tail lets
			// one type dominate a whole day's arrivals and makes the
			// average utilization swing wildly across seeds.
			Weight: min(h.rng.Pareto(1, 1.5), 6),
		})
	}
}

// Start launches the scheduler loop.
func (h *Host) Start() {
	if h.running_ {
		return
	}
	h.running_ = true
	h.schedule() // initial placement at t=0
	h.armSchedule()
}

// Stop halts scheduling (running VMs keep expiring).
func (h *Host) Stop() { h.running_ = false }

func (h *Host) armSchedule() {
	h.eng.AfterDaemon(h.cfg.ScheduleEvery, func() {
		if !h.running_ {
			return
		}
		h.schedule()
		h.armSchedule()
	})
}

// diurnal modulates arrivals over the day: low at night, peaking in the
// afternoon — the source of Fig. 1's 7%-92% swing.
func (h *Host) diurnal(at sim.Time) float64 {
	hour := at.Seconds() / 3600
	frac := hour - float64(int(hour)/24*24)
	// Piecewise: trough 02:00-06:00, ramp to a 14:00-18:00 plateau.
	switch {
	case frac < 5:
		return 0.12
	case frac < 10:
		return 0.12 + (frac-5)/5*1.5
	case frac < 18:
		return 1.62
	case frac < 23:
		return 1.62 - (frac-18)/5*1.5
	default:
		return 0.12
	}
}

// schedule is one 5-minute consolidation pass: expire, arrive, admit.
func (h *Host) schedule() {
	now := h.eng.Now()
	// 1. Expirations, in id order: map iteration order must not leak
	// into allocator state or the run is not reproducible.
	var expired []uint32
	for id, vm := range h.running {
		if vm.expiry <= now {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		h.terminate(id, h.running[id])
	}
	// 2. New arrivals since the last pass (Poisson, diurnal-modulated).
	weights := make([]float64, len(h.types))
	for i, t := range h.types {
		weights[i] = t.Weight
	}
	mean := h.cfg.ArrivalsPerHourMean * h.diurnal(now) *
		h.cfg.ScheduleEvery.Seconds() / 3600
	arrivals := h.poisson(mean)
	for i := 0; i < arrivals; i++ {
		t := h.types[h.rng.WeightedPick(weights)]
		life := sim.Time(h.rng.Exp(float64(t.MeanLife)))
		if life < sim.Minute {
			life = sim.Minute
		}
		h.backlog = append(h.backlog, &VM{Type: t, expiry: now + life})
	}
	// 3. Admission in FIFO order under the consolidation constraints.
	var rest []*VM
	for _, vm := range h.backlog {
		if vm.expiry <= now {
			continue // expired while queued
		}
		memNeed := int64(vm.Type.MemGB) << 30
		vcpuOK := float64(h.vcpusUsed+vm.Type.VCPUs) <=
			h.cfg.MaxVCPURatio*float64(h.cfg.HostCores)
		memOK := h.admitted+memNeed <=
			int64(h.cfg.AdmitCapFrac*float64(h.cfg.HostMemBytes))
		if !vcpuOK || !memOK {
			rest = append(rest, vm)
			continue
		}
		h.admit(vm, memNeed)
	}
	h.backlog = rest
	h.record()
}

// poisson draws a Poisson variate via exponential gaps.
func (h *Host) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	n, acc := 0, 0.0
	for {
		acc += h.rng.Exp(1)
		if acc > mean {
			return n
		}
		n++
	}
}

// admit starts a VM: capacity accounting now, memory ramped in over time.
func (h *Host) admit(vm *VM, memNeed int64) {
	vm.ID = h.nextID
	h.nextID++
	vm.admitted = h.eng.Now()
	vm.target = memNeed / h.mem.PageBytes()
	h.vcpusUsed += vm.Type.VCPUs
	h.admitted += memNeed
	h.running[vm.ID] = vm
	h.ramp(vm)
}

// ramp faults in the VM's memory chunk by chunk; failures (free memory
// momentarily short because blocks are off-lined) retry, giving the
// GreenDIMM daemon time to on-line capacity — exactly the §4.2 flow.
func (h *Host) ramp(vm *VM) {
	if h.running[vm.ID] != vm { // terminated mid-ramp
		return
	}
	chunk := h.cfg.RampBytesPerSec / h.mem.PageBytes()
	if chunk <= 0 {
		chunk = 1
	}
	if remaining := vm.target - vm.ramped; chunk > remaining {
		chunk = remaining
	}
	if chunk > 0 {
		pfns, err := h.mem.AllocPages(chunk, true, vm.ID)
		if err == nil {
			vm.ramped += chunk
			h.registerKSM(vm, pfns)
		}
		// On failure: leave ramped as-is and retry next second.
	}
	if vm.ramped < vm.target {
		h.eng.AfterDaemon(sim.Second, func() { h.ramp(vm) })
	}
	h.record()
}

// registerKSM advises the chunk mergeable. Image pages (identical across
// VMs booted from the same base image) are read-only in practice and carry
// zero volatility; the VM's private pages carry the configured volatility
// and never merge for long.
func (h *Host) registerKSM(vm *VM, pfns []kernel.PFN) {
	if h.ksmd == nil {
		return
	}
	var imgF, uniqF []kernel.PFN
	var imgD, uniqD []uint64
	base := vm.ramped - int64(len(pfns))
	for i, f := range pfns {
		pageIdx := base + int64(i)
		if h.contentRNG.Float64() < vm.Type.CommonFrac {
			// Image page: one of ~2048 distinct pages per base image,
			// identical across VMs of that image.
			imgF = append(imgF, f)
			imgD = append(imgD, uint64(vm.Type.Image)<<32|uint64(pageIdx%2048))
		} else {
			uniqF = append(uniqF, f)
			uniqD = append(uniqD, h.contentRNG.Uint64()|1<<63)
		}
	}
	if len(imgF) > 0 {
		vps, err := h.ksmd.Register(vm.ID, imgF, imgD, 0)
		if err != nil {
			panic(fmt.Sprintf("vmtrace: ksm register: %v", err))
		}
		vm.vpages = append(vm.vpages, vps...)
	}
	if len(uniqF) > 0 {
		vps, err := h.ksmd.Register(vm.ID, uniqF, uniqD, h.cfg.PageVolatility)
		if err != nil {
			panic(fmt.Sprintf("vmtrace: ksm register: %v", err))
		}
		vm.vpages = append(vm.vpages, vps...)
	}
}

// terminate frees a VM.
func (h *Host) terminate(id uint32, vm *VM) {
	if h.ksmd != nil {
		h.ksmd.UnregisterOwner(id)
	}
	h.mem.FreeOwner(id)
	h.vcpusUsed -= vm.Type.VCPUs
	h.admitted -= int64(vm.Type.MemGB) << 30
	delete(h.running, id)
}

// record samples utilization (the Fig. 1 point).
func (h *Host) record() {
	now := h.eng.Now()
	used := h.mem.Meminfo().UsedBytes
	frac := float64(used) / float64(h.cfg.HostMemBytes)
	var ids []uint32
	for id := range h.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	cpu := 0.0
	for _, id := range ids {
		vm := h.running[id]
		cpu += float64(vm.Type.VCPUs) * vm.Type.CPUUtil
	}
	cpu /= float64(h.cfg.HostCores)
	if cpu > 1 {
		cpu = 1
	}
	h.utilTS.Set(now, frac)
	h.cpuTS.Set(now, cpu)
	saved := int64(0)
	if h.ksmd != nil {
		saved = h.ksmd.SavedBytes()
	}
	h.samples = append(h.samples, Sample{
		At: now, UsedFrac: frac, CPUUtil: cpu,
		Running: len(h.running), KSMSaved: saved,
	})
}

// Samples returns the recorded series.
func (h *Host) Samples() []Sample { return h.samples }

// AvgUsedFrac reports time-weighted memory utilization so far.
func (h *Host) AvgUsedFrac() float64 { return h.utilTS.Average(h.eng.Now()) }

// AvgCPUUtil reports time-weighted host CPU utilization.
func (h *Host) AvgCPUUtil() float64 { return h.cpuTS.Average(h.eng.Now()) }

// RunningVMs reports the current VM count.
func (h *Host) RunningVMs() int { return len(h.running) }

// Types exposes the generated type population (for tests).
func (h *Host) Types() []VMType { return h.types }
