package vmtrace

import (
	"testing"

	"greendimm/internal/kernel"
	"greendimm/internal/ksm"
	"greendimm/internal/sim"
)

const page2M = 2 << 20

func newHost(t *testing.T, withKSM bool, hours int) (*sim.Engine, *kernel.Mem, *Host) {
	t.Helper()
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 256 << 30, PageBytes: page2M})
	if err != nil {
		t.Fatal(err)
	}
	var d *ksm.Daemon
	if withKSM {
		// The paper's 1000 x 4KB pages / 50ms scan rate (~80MB/s), in
		// 2MB pages; per-page cost scaled to keep ksmd at ~10% of a core.
		d, err = ksm.New(eng, mem, ksm.Config{
			PagesPerScan: 2, ScanPeriod: 50 * sim.Millisecond,
			ScanCostPerPage: 2560 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
	}
	h, err := New(eng, mem, d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	eng.RunUntil(sim.Time(hours) * sim.Hour)
	return eng, mem, h
}

func TestTypePopulationShape(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 256 << 30, PageBytes: page2M})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(eng, mem, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	types := h.Types()
	if len(types) != 100 {
		t.Fatalf("types = %d, want 100", len(types))
	}
	small, large := 0, 0
	for _, ty := range types {
		if ty.VCPUs <= 2 {
			small++
		}
		if ty.MemGB >= 16 {
			large++
		}
		if ty.MemGB < 2*ty.VCPUs || ty.MemGB > 8*ty.VCPUs {
			t.Errorf("type memory %dGB out of band for %d vCPUs", ty.MemGB, ty.VCPUs)
		}
		if ty.MeanLife <= 0 {
			t.Error("non-positive lifetime")
		}
	}
	// Azure shape: most VMs small, a visible tail of big ones.
	if small < 60 {
		t.Errorf("small VM types = %d/100, want majority", small)
	}
	if large == 0 {
		t.Error("no large VM types in population")
	}
}

func TestUtilizationBandMatchesFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("24h trace in -short mode")
	}
	_, _, h := newHost(t, false, 24)
	avg := h.AvgUsedFrac()
	// Paper Fig. 1: average 48%, range 7-92%. Allow a generous band for
	// the synthetic trace.
	if avg < 0.35 || avg < 0.0 || avg > 0.62 {
		t.Errorf("average utilization = %.2f, want ~0.48", avg)
	}
	lo, hi := 1.0, 0.0
	for _, s := range h.Samples() {
		if s.UsedFrac < lo {
			lo = s.UsedFrac
		}
		if s.UsedFrac > hi {
			hi = s.UsedFrac
		}
	}
	if hi-lo < 0.3 {
		t.Errorf("utilization swing = [%.2f, %.2f]; want a wide diurnal band", lo, hi)
	}
	if hi > 0.93 {
		t.Errorf("utilization peaked at %.2f, above the admission cap", hi)
	}
	if h.AvgCPUUtil() <= 0 || h.AvgCPUUtil() > 1 {
		t.Errorf("cpu utilization = %v", h.AvgCPUUtil())
	}
}

func TestConsolidationConstraintsHold(t *testing.T) {
	eng, mem, h := newHost(t, false, 3)
	_ = eng
	// At every sample, VM memory stayed under the cap.
	cap := DefaultConfig().AdmitCapFrac
	for _, s := range h.Samples() {
		if s.UsedFrac > cap+0.01 {
			t.Fatalf("memory used %.2f exceeded admission cap %.2f", s.UsedFrac, cap)
		}
	}
	// vCPU consolidation bound.
	total := 0
	for _, vm := range h.running {
		total += vm.Type.VCPUs
	}
	if float64(total) > 2.0*16 {
		t.Errorf("vCPUs in use = %d, exceeds 2x16", total)
	}
	// Memory accounting consistent with the kernel.
	if mem.Meminfo().UsedBytes < 0 {
		t.Error("negative used memory")
	}
}

func TestVMsComeAndGo(t *testing.T) {
	_, _, h := newHost(t, false, 6)
	if h.RunningVMs() == 0 {
		t.Error("no VMs running after 6h")
	}
	// Samples should show variation in the running count.
	minR, maxR := 1<<30, 0
	for _, s := range h.Samples() {
		if s.Running < minR {
			minR = s.Running
		}
		if s.Running > maxR {
			maxR = s.Running
		}
	}
	if maxR == minR {
		t.Errorf("running VM count never changed (%d)", minR)
	}
}

func TestKSMReducesUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("long trace in -short mode")
	}
	_, _, with := newHost(t, true, 8)
	saved := with.Samples()[len(with.Samples())-1].KSMSaved
	if saved <= 0 {
		t.Fatal("KSM saved nothing")
	}
	// Paper: KSM reduces used capacity by ~24% on average (4-90%). Check
	// savings are a substantial fraction of used memory.
	used := with.mem.Meminfo().UsedBytes
	frac := float64(saved) / float64(used+saved)
	if frac < 0.08 || frac > 0.6 {
		t.Errorf("KSM savings fraction = %.2f, want ~0.15-0.35", frac)
	}
}

func TestDeterminism(t *testing.T) {
	_, _, a := newHost(t, false, 2)
	_, _, b := newHost(t, false, 2)
	sa, sb := a.Samples(), b.Samples()
	if len(sa) != len(sb) {
		t.Fatalf("sample counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	mem, _ := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: page2M})
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.AdmitCapFrac = 1.5; return c }(),
		func() Config { c := DefaultConfig(); c.ScheduleEvery = 0; return c }(),
		func() Config { c := DefaultConfig(); c.Images = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(eng, mem, nil, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStopHaltsScheduling(t *testing.T) {
	eng, _, h := newHost(t, false, 1)
	h.Stop()
	// In-flight VM ramps may add a few samples right after Stop; once
	// they settle, no scheduler pass ever runs again, so the sample log
	// freezes and no new VMs appear.
	eng.RunUntil(1*sim.Hour + 30*sim.Minute)
	settled := len(h.Samples())
	running := h.RunningVMs()
	eng.RunUntil(4 * sim.Hour)
	if got := len(h.Samples()); got != settled {
		t.Errorf("samples grew long after Stop: %d -> %d", settled, got)
	}
	if h.RunningVMs() > running {
		t.Errorf("new VMs admitted after Stop: %d -> %d", running, h.RunningVMs())
	}
}

func TestBacklogAdmitsWhenCapacityFrees(t *testing.T) {
	// With a tiny host, arrivals queue and are admitted as VMs expire:
	// over time the running set must turn over without violating caps.
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 32 << 30, PageBytes: page2M})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HostMemBytes = 32 << 30
	cfg.HostCores = 4
	cfg.ArrivalsPerHourMean = 120
	h, err := New(eng, mem, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	eng.RunUntil(6 * sim.Hour)
	for _, s := range h.Samples() {
		if s.UsedFrac > cfg.AdmitCapFrac+0.01 {
			t.Fatalf("memory cap violated: %.3f", s.UsedFrac)
		}
	}
	if h.RunningVMs() == 0 {
		t.Error("small host starved completely")
	}
}
