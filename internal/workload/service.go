package workload

import (
	"fmt"

	"greendimm/internal/kernel"
	"greendimm/internal/metrics"
	"greendimm/internal/sim"
)

// Service models a latency-critical request/response application
// (CloudSuite data-caching / data-serving / web-serving): operations
// arrive open-loop at a Poisson rate and are served FIFO by one logical
// server whose per-operation work is a little compute plus a chain of
// dependent DRAM accesses. Response time = queueing + service, so any
// CPU stall the GreenDIMM daemon injects shows up in the tail — exactly
// the effect §6.2's tail-latency discussion is about.
type Service struct {
	eng     *sim.Engine
	mem     *kernel.Mem
	sub     Submitter
	callSub CallSubmitter // sub, when it supports the alloc-free path
	cfg     ServiceConfig
	rng     *sim.RNG

	// queue[qhead:] holds the arrival times of queued ops; the head
	// index (instead of re-slicing the front) lets the emptied buffer
	// reset and reuse its capacity, so steady-state arrivals stop
	// growing the backing array.
	queue      []sim.Time
	qhead      int
	busy       bool
	stallUntil sim.Time

	// The op in service (busy == true). Keeping per-op state here
	// instead of closing over it lets one bound completion handler
	// serve every access of every op.
	curArrival   sim.Time
	curRemaining int

	// Handlers bound once at construction; see Core.
	arriveFn func()
	serveFn  func()
	finishFn func()
	retryFn  func()
	doneFn   func(sim.Time) // legacy-Submitter completion adapter

	served    int64
	arrived   int64
	latencies metrics.Distribution // response times, microseconds
	warmupCut sim.Time             // samples before this are dropped

	streamPage int64
}

// ServiceConfig tunes the service.
type ServiceConfig struct {
	Profile Profile
	Owner   uint32
	// OpsPerSec is the Poisson arrival rate.
	OpsPerSec float64
	// AccessesPerOp is the dependent DRAM-access chain length per op.
	AccessesPerOp int
	// ComputePerOp is the non-memory service time per op.
	ComputePerOp sim.Time
	// Warmup discards response samples before this time.
	Warmup sim.Time
	Seed   int64
	// SampleCap, when positive, bounds the retained response-time
	// samples (metrics.Distribution.SetCap): the buffer is preallocated
	// and long runs keep a deterministic decimated subset for
	// percentiles while Mean/N stay exact. Zero retains every sample.
	SampleCap int
}

// NewService allocates the profile's footprint and returns a stopped
// service; Start begins arrivals.
func NewService(eng *sim.Engine, mem *kernel.Mem, sub Submitter, cfg ServiceConfig) (*Service, error) {
	switch {
	case cfg.OpsPerSec <= 0:
		return nil, fmt.Errorf("workload: non-positive op rate")
	case cfg.AccessesPerOp <= 0:
		return nil, fmt.Errorf("workload: non-positive accesses per op")
	case cfg.ComputePerOp < 0:
		return nil, fmt.Errorf("workload: negative compute per op")
	}
	pages := (cfg.Profile.FootprintAt(0) + mem.PageBytes() - 1) / mem.PageBytes()
	if pages == 0 {
		pages = 1
	}
	if _, err := mem.AllocPages(pages, true, cfg.Owner); err != nil {
		return nil, fmt.Errorf("workload: service footprint: %w", err)
	}
	s := &Service{
		eng: eng, mem: mem, sub: sub, cfg: cfg,
		rng:       sim.NewRNG(cfg.Seed ^ 0x737663),
		warmupCut: eng.Now() + cfg.Warmup,
	}
	s.callSub, _ = sub.(CallSubmitter)
	if cfg.SampleCap > 0 {
		s.latencies.SetCap(cfg.SampleCap)
	}
	s.arriveFn = func() {
		s.arrived++
		s.queue = append(s.queue, s.eng.Now())
		s.maybeServe()
		s.scheduleArrival()
	}
	s.serveFn = s.maybeServe
	s.finishFn = s.finishOp
	s.retryFn = s.opStep
	s.doneFn = func(lat sim.Time) { s.Complete(0, lat) }
	return s, nil
}

// Start begins Poisson arrivals; they continue until Stop.
func (s *Service) Start() { s.scheduleArrival() }

func (s *Service) scheduleArrival() {
	gap := sim.Time(s.rng.Exp(1.0/s.cfg.OpsPerSec) * float64(sim.Second))
	s.eng.After(gap, s.arriveFn)
}

// Stall blocks the server for d (daemon-induced CPU theft).
func (s *Service) Stall(d sim.Time) {
	now := s.eng.Now()
	if s.stallUntil < now {
		s.stallUntil = now
	}
	s.stallUntil += d
}

// maybeServe starts the next op if the server is free.
func (s *Service) maybeServe() {
	if s.busy || s.qhead == len(s.queue) {
		return
	}
	start := s.eng.Now()
	if s.stallUntil > start {
		// Server is stalled; retry when the stall drains.
		s.eng.At(s.stallUntil, s.serveFn)
		return
	}
	s.busy = true
	s.curArrival = s.queue[s.qhead]
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
	s.curRemaining = s.cfg.AccessesPerOp
	s.opStep()
}

// opStep advances the current op: issue the next access of its
// dependent chain, or — chain done — finish after the compute time.
func (s *Service) opStep() {
	if s.curRemaining == 0 {
		s.eng.After(s.cfg.ComputePerOp, s.finishFn)
		return
	}
	pa, ok := s.nextAddr()
	if !ok {
		// Footprint gone (shouldn't happen for services); drop the op.
		s.finishOp()
		return
	}
	write := s.rng.Bool(1 - s.cfg.Profile.ReadFrac)
	var err error
	if s.callSub != nil {
		err = s.callSub.SubmitCall(pa, write, s, 0)
	} else {
		err = s.sub.Submit(pa, write, s.doneFn)
	}
	if err != nil {
		s.eng.After(200*sim.Nanosecond, s.retryFn)
	}
}

// Complete implements mc.Completer: one access of the current op's
// dependent chain returned; issue the next.
func (s *Service) Complete(uint64, sim.Time) {
	s.curRemaining--
	s.opStep()
}

func (s *Service) finishOp() {
	now := s.eng.Now()
	if now >= s.warmupCut {
		s.latencies.Add((now - s.curArrival).Microseconds())
	}
	s.served++
	s.busy = false
	s.maybeServe()
}

// nextAddr picks the op's next line: mostly random (hash-table lookups).
func (s *Service) nextAddr() (uint64, bool) {
	n := s.mem.OwnerPageCount(s.cfg.Owner)
	if n == 0 {
		return 0, false
	}
	if !s.rng.Bool(s.cfg.Profile.SeqProb) || s.streamPage >= n {
		s.streamPage = s.rng.Int63n(n)
	}
	pfn := s.mem.OwnerPage(s.cfg.Owner, s.streamPage)
	off := s.rng.Int63n(s.mem.PageBytes()/64) * 64
	return uint64(pfn)*uint64(s.mem.PageBytes()) + uint64(off), true
}

// Served reports completed operations.
func (s *Service) Served() int64 { return s.served }

// Latency exposes the response-time distribution (microseconds), warmup
// excluded.
func (s *Service) Latency() *metrics.Distribution { return &s.latencies }

// Utilization estimates offered load: arrival rate x mean service demand.
func (s *Service) Utilization() float64 {
	if s.latencies.N() == 0 {
		return 0
	}
	return float64(s.served) / float64(s.arrived)
}
