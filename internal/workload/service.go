package workload

import (
	"fmt"

	"greendimm/internal/kernel"
	"greendimm/internal/metrics"
	"greendimm/internal/sim"
)

// Service models a latency-critical request/response application
// (CloudSuite data-caching / data-serving / web-serving): operations
// arrive open-loop at a Poisson rate and are served FIFO by one logical
// server whose per-operation work is a little compute plus a chain of
// dependent DRAM accesses. Response time = queueing + service, so any
// CPU stall the GreenDIMM daemon injects shows up in the tail — exactly
// the effect §6.2's tail-latency discussion is about.
type Service struct {
	eng *sim.Engine
	mem *kernel.Mem
	sub Submitter
	cfg ServiceConfig
	rng *sim.RNG

	queue      []sim.Time // arrival times of queued ops
	busy       bool
	stallUntil sim.Time

	served    int64
	arrived   int64
	latencies metrics.Distribution // response times, microseconds
	warmupCut sim.Time             // samples before this are dropped

	streamPage int64
}

// ServiceConfig tunes the service.
type ServiceConfig struct {
	Profile Profile
	Owner   uint32
	// OpsPerSec is the Poisson arrival rate.
	OpsPerSec float64
	// AccessesPerOp is the dependent DRAM-access chain length per op.
	AccessesPerOp int
	// ComputePerOp is the non-memory service time per op.
	ComputePerOp sim.Time
	// Warmup discards response samples before this time.
	Warmup sim.Time
	Seed   int64
}

// NewService allocates the profile's footprint and returns a stopped
// service; Start begins arrivals.
func NewService(eng *sim.Engine, mem *kernel.Mem, sub Submitter, cfg ServiceConfig) (*Service, error) {
	switch {
	case cfg.OpsPerSec <= 0:
		return nil, fmt.Errorf("workload: non-positive op rate")
	case cfg.AccessesPerOp <= 0:
		return nil, fmt.Errorf("workload: non-positive accesses per op")
	case cfg.ComputePerOp < 0:
		return nil, fmt.Errorf("workload: negative compute per op")
	}
	pages := (cfg.Profile.FootprintAt(0) + mem.PageBytes() - 1) / mem.PageBytes()
	if pages == 0 {
		pages = 1
	}
	if _, err := mem.AllocPages(pages, true, cfg.Owner); err != nil {
		return nil, fmt.Errorf("workload: service footprint: %w", err)
	}
	return &Service{
		eng: eng, mem: mem, sub: sub, cfg: cfg,
		rng:       sim.NewRNG(cfg.Seed ^ 0x737663),
		warmupCut: eng.Now() + cfg.Warmup,
	}, nil
}

// Start begins Poisson arrivals; they continue until Stop.
func (s *Service) Start() { s.scheduleArrival() }

func (s *Service) scheduleArrival() {
	gap := sim.Time(s.rng.Exp(1.0/s.cfg.OpsPerSec) * float64(sim.Second))
	s.eng.After(gap, func() {
		s.arrived++
		s.queue = append(s.queue, s.eng.Now())
		s.maybeServe()
		s.scheduleArrival()
	})
}

// Stall blocks the server for d (daemon-induced CPU theft).
func (s *Service) Stall(d sim.Time) {
	now := s.eng.Now()
	if s.stallUntil < now {
		s.stallUntil = now
	}
	s.stallUntil += d
}

// maybeServe starts the next op if the server is free.
func (s *Service) maybeServe() {
	if s.busy || len(s.queue) == 0 {
		return
	}
	start := s.eng.Now()
	if s.stallUntil > start {
		// Server is stalled; retry when the stall drains.
		s.eng.At(s.stallUntil, s.maybeServe)
		return
	}
	s.busy = true
	arrival := s.queue[0]
	s.queue = s.queue[1:]
	s.runOp(arrival, s.cfg.AccessesPerOp)
}

// runOp issues the op's dependent access chain, then finishes after the
// compute time.
func (s *Service) runOp(arrival sim.Time, remaining int) {
	if remaining == 0 {
		s.eng.After(s.cfg.ComputePerOp, func() {
			s.finish(arrival)
		})
		return
	}
	pa, ok := s.nextAddr()
	if !ok {
		// Footprint gone (shouldn't happen for services); drop the op.
		s.finish(arrival)
		return
	}
	err := s.sub.Submit(pa, s.rng.Bool(1-s.cfg.Profile.ReadFrac), func(sim.Time) {
		s.runOp(arrival, remaining-1)
	})
	if err != nil {
		s.eng.After(200*sim.Nanosecond, func() { s.runOp(arrival, remaining) })
	}
}

func (s *Service) finish(arrival sim.Time) {
	now := s.eng.Now()
	if now >= s.warmupCut {
		s.latencies.Add((now - arrival).Microseconds())
	}
	s.served++
	s.busy = false
	s.maybeServe()
}

// nextAddr picks the op's next line: mostly random (hash-table lookups).
func (s *Service) nextAddr() (uint64, bool) {
	n := s.mem.OwnerPageCount(s.cfg.Owner)
	if n == 0 {
		return 0, false
	}
	if !s.rng.Bool(s.cfg.Profile.SeqProb) || s.streamPage >= n {
		s.streamPage = s.rng.Int63n(n)
	}
	pfn := s.mem.OwnerPage(s.cfg.Owner, s.streamPage)
	off := s.rng.Int63n(s.mem.PageBytes()/64) * 64
	return uint64(pfn)*uint64(s.mem.PageBytes()) + uint64(off), true
}

// Served reports completed operations.
func (s *Service) Served() int64 { return s.served }

// Latency exposes the response-time distribution (microseconds), warmup
// excluded.
func (s *Service) Latency() *metrics.Distribution { return &s.latencies }

// Utilization estimates offered load: arrival rate x mean service demand.
func (s *Service) Utilization() float64 {
	if s.latencies.N() == 0 {
		return 0
	}
	return float64(s.served) / float64(s.arrived)
}
