package workload

import (
	"fmt"

	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

// FootprintDriver plays a profile's footprint curve against the kernel
// allocator over a nominal run duration: it is the memory-dynamics half of
// an application (the request stream being the timing half), and it is
// what makes the GreenDIMM daemon on/off-line blocks mid-run (Figs. 6-8,
// Table 2).
type FootprintDriver struct {
	eng      *sim.Engine
	mem      *kernel.Mem
	prof     Profile
	owner    uint32
	duration sim.Time
	period   sim.Time
	start    sim.Time
	running  bool
	done     bool
	onDone   []func()
	tap      func(pfn kernel.PFN)
}

// SetAccessTap registers a per-page access hook (GreenDIMM's tracker
// feed). After each footprint adjustment the driver touches a
// deterministic sample of its resident pages through the tap, modelling
// the application's working-set accesses between allocation events.
func (f *FootprintDriver) SetAccessTap(fn func(pfn kernel.PFN)) { f.tap = fn }

// touchResident samples the owner's resident set: a fixed-stride walk in
// allocation order (at most ~64 pages per period), so tracker heat
// reflects which blocks actually hold this application's pages. Pure
// function of allocator state — no RNG, no wall clock — keeping runs
// byte-identical at any parallelism.
func (f *FootprintDriver) touchResident() {
	if f.tap == nil {
		return
	}
	n := f.mem.OwnerPageCount(f.owner)
	if n == 0 {
		return
	}
	stride := n/64 + 1
	for i := int64(0); i < n; i += stride {
		f.tap(f.mem.OwnerPage(f.owner, i))
	}
}

// NewFootprintDriver builds a driver that walks the curve over duration,
// updating the allocation every period.
func NewFootprintDriver(eng *sim.Engine, mem *kernel.Mem, prof Profile, owner uint32,
	duration, period sim.Time) (*FootprintDriver, error) {
	if duration <= 0 || period <= 0 || period > duration {
		return nil, fmt.Errorf("workload: bad footprint driver timing %v/%v", duration, period)
	}
	return &FootprintDriver{
		eng: eng, mem: mem, prof: prof, owner: owner,
		duration: duration, period: period,
	}, nil
}

// OnDone registers a completion callback.
func (f *FootprintDriver) OnDone(fn func()) { f.onDone = append(f.onDone, fn) }

// Start allocates the initial footprint and begins the curve.
func (f *FootprintDriver) Start() {
	f.start = f.eng.Now()
	f.running = true
	f.adjust(0)
	f.tick()
}

// Done reports whether the curve has completed.
func (f *FootprintDriver) Done() bool { return f.done }

func (f *FootprintDriver) tick() {
	f.eng.After(f.period, func() {
		if !f.running {
			return
		}
		progress := float64(f.eng.Now()-f.start) / float64(f.duration)
		if progress >= 1 {
			f.adjust(1)
			f.running = false
			f.done = true
			for _, fn := range f.onDone {
				fn()
			}
			return
		}
		f.adjust(progress)
		f.tick()
	})
}

// adjust reconciles the owner's allocation with the curve target.
func (f *FootprintDriver) adjust(progress float64) {
	targetPages := (f.prof.FootprintAt(progress) + f.mem.PageBytes() - 1) / f.mem.PageBytes()
	if targetPages == 0 {
		targetPages = 1
	}
	have := f.mem.OwnerPageCount(f.owner)
	switch {
	case have < targetPages:
		// Partial success under pressure is fine: the curve retries next
		// period.
		if _, err := f.mem.AllocPages(targetPages-have, true, f.owner); err != nil {
			half := (targetPages - have) / 2
			if half > 0 {
				_, _ = f.mem.AllocPages(half, true, f.owner)
			}
		}
	case have > targetPages:
		f.mem.FreeOwnerPages(f.owner, have-targetPages)
	}
	f.touchResident()
}

// Teardown frees everything the driver allocated.
func (f *FootprintDriver) Teardown() {
	f.running = false
	f.mem.FreeOwner(f.owner)
}
