package workload

import (
	"fmt"

	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/sim"
)

// Submitter is what a core issues memory requests to (satisfied by
// *mc.Controller).
type Submitter interface {
	Submit(pa uint64, write bool, done func(sim.Time)) error
}

// CallSubmitter is the allocation-free variant of Submitter (satisfied
// by *mc.Controller): completions arrive on a long-lived mc.Completer
// instead of a per-access closure. Core and Service type-assert their
// Submitter for it and implement mc.Completer themselves, so against a
// real controller the per-access path performs zero heap allocations;
// plain Submitters (test fakes) transparently get the closure path.
type CallSubmitter interface {
	Submitter
	SubmitCall(pa uint64, write bool, cb mc.Completer, id uint64) error
}

// CoreConfig configures a closed-loop core run.
type CoreConfig struct {
	Profile  Profile
	Owner    uint32
	Accesses int64   // DRAM accesses to simulate (the scaled run length)
	FreqGHz  float64 // core clock; 0 means 3.0
	Seed     int64
}

// Core drives one application: it allocates the profile's footprint,
// issues DRAM accesses in a closed loop with the profile's MLP, and pays
// compute gaps between accesses derived from MPKI and IPC. Execution time
// emerges from the interplay of compute, memory latency and queueing —
// which is how interleaving's Fig. 3a speedups and GreenDIMM's Fig. 7/11
// overheads are measured.
//
// A core's accesses fan out across every channel, so under a
// channel-sharded engine (sim.SetShards, DESIGN.md §10) cores are
// global-lane actors: they schedule through the root engine, submit
// through the controller's global-lane facade, and receive completions
// back on the global lane. Their closed-loop reaction to every
// completion is also what keeps global-lane events dense — the main
// reason small windows revert to sequential dispatch.
type Core struct {
	eng     *sim.Engine
	mem     *kernel.Mem
	sub     Submitter
	callSub CallSubmitter // sub, when it supports the alloc-free path
	cfg     CoreConfig
	rng     *sim.RNG

	// Handlers bound once at construction so the issue loop and its
	// retry/timer re-arms never allocate a closure per access.
	pumpFn  func()
	timerFn func()
	doneFn  func(sim.Time) // legacy-Submitter completion adapter

	computeGap sim.Time // CPU time between consecutive accesses
	cpuReady   sim.Time // compute frontier
	timerSet   bool     // one outstanding compute-frontier timer at most
	issued     int64
	completed  int64
	inFlight   int
	streamPage int64 // sequential stream position: owner page index
	streamOff  int64 // byte offset within page (line aligned)
	stallTime  sim.Time
	totalLat   sim.Time

	start    sim.Time
	finish   sim.Time
	finished bool
	onDone   []func()
}

// NewCore allocates the profile's (initial) footprint and returns a core
// ready to Start.
func NewCore(eng *sim.Engine, mem *kernel.Mem, sub Submitter, cfg CoreConfig) (*Core, error) {
	if cfg.Accesses <= 0 {
		return nil, fmt.Errorf("workload: non-positive access budget")
	}
	if cfg.FreqGHz == 0 {
		cfg.FreqGHz = 3.0
	}
	p := cfg.Profile
	if p.MPKI <= 0 || p.IPC <= 0 || p.MLP <= 0 {
		return nil, fmt.Errorf("workload: profile %q missing MPKI/IPC/MLP", p.Name)
	}
	c := &Core{
		eng: eng, mem: mem, sub: sub, cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ int64(len(p.Name))),
	}
	c.callSub, _ = sub.(CallSubmitter)
	c.pumpFn = c.pump
	c.timerFn = func() {
		c.timerSet = false
		c.pump()
	}
	c.doneFn = func(lat sim.Time) { c.Complete(0, lat) }
	// Instructions between misses = 1000/MPKI; time = insts/IPC/freq.
	instPerMiss := 1000 / p.MPKI
	c.computeGap = sim.Time(instPerMiss / p.IPC / cfg.FreqGHz * 1000) // ps
	pages := (p.FootprintAt(0) + mem.PageBytes() - 1) / mem.PageBytes()
	if pages == 0 {
		pages = 1
	}
	if _, err := mem.AllocPages(pages, true, cfg.Owner); err != nil {
		return nil, fmt.Errorf("workload: footprint allocation: %w", err)
	}
	return c, nil
}

// OnDone registers a completion callback.
func (c *Core) OnDone(fn func()) { c.onDone = append(c.onDone, fn) }

// Start begins issuing at the current simulated time.
func (c *Core) Start() {
	c.start = c.eng.Now()
	c.cpuReady = c.eng.Now()
	c.pump()
}

// Stall charges d of CPU time to the core (the GreenDIMM daemon and
// on/off-lining operations steal cycles — Fig. 7/11's overhead).
func (c *Core) Stall(d sim.Time) {
	c.stallTime += d
	if c.cpuReady < c.eng.Now() {
		c.cpuReady = c.eng.Now()
	}
	c.cpuReady += d
}

// pump issues as many accesses as the MLP window and compute frontier
// allow, then re-arms itself.
func (c *Core) pump() {
	if c.finished {
		return
	}
	now := c.eng.Now()
	for c.inFlight < c.cfg.Profile.MLP && c.issued < c.cfg.Accesses && c.cpuReady <= now {
		pa, ok := c.nextAddr()
		if !ok {
			// Footprint momentarily empty (driver shrink); retry shortly.
			c.eng.After(10*sim.Microsecond, c.pumpFn)
			return
		}
		write := !c.rng.Bool(c.cfg.Profile.ReadFrac)
		var err error
		if c.callSub != nil {
			err = c.callSub.SubmitCall(pa, write, c, 0)
		} else {
			err = c.sub.Submit(pa, write, c.doneFn)
		}
		if err != nil {
			// Queue full: back off one DRAM service quantum.
			c.eng.After(100*sim.Nanosecond, c.pumpFn)
			return
		}
		c.inFlight++
		c.issued++
		c.cpuReady += c.computeGap
	}
	// Arm at most ONE timer for the compute frontier. Completions also
	// invoke pump, so without this discipline every completion would
	// spawn a new self-perpetuating timer chain and the event count
	// would grow quadratically with the access budget.
	if c.issued < c.cfg.Accesses && c.inFlight < c.cfg.Profile.MLP &&
		c.cpuReady > now && !c.timerSet {
		c.timerSet = true
		c.eng.At(c.cpuReady, c.timerFn)
	}
}

// Complete implements mc.Completer: one access returned from the memory
// system. It is the completion body the per-access closures used to
// capture; all its state lives on the Core.
func (c *Core) Complete(_ uint64, lat sim.Time) {
	c.inFlight--
	c.completed++
	c.totalLat += lat
	if c.completed == c.cfg.Accesses {
		c.finished = true
		c.finish = c.eng.Now()
		for _, fn := range c.onDone {
			fn()
		}
		return
	}
	c.pump()
}

// nextAddr produces the next physical address: sequential within the
// owner's pages with probability SeqProb, else a uniform jump.
func (c *Core) nextAddr() (uint64, bool) {
	n := c.mem.OwnerPageCount(c.cfg.Owner)
	if n == 0 {
		return 0, false
	}
	if c.streamPage >= n || !c.rng.Bool(c.cfg.Profile.SeqProb) {
		c.streamPage = c.rng.Int63n(n)
		c.streamOff = c.rng.Int63n(c.mem.PageBytes()/64) * 64
	} else {
		c.streamOff += 64
		if c.streamOff >= c.mem.PageBytes() {
			c.streamOff = 0
			c.streamPage++
			if c.streamPage >= n {
				c.streamPage = 0
			}
		}
	}
	pfn := c.mem.OwnerPage(c.cfg.Owner, c.streamPage)
	return uint64(pfn)*uint64(c.mem.PageBytes()) + uint64(c.streamOff), true
}

// Done reports whether the access budget completed.
func (c *Core) Done() bool { return c.finished }

// Runtime returns the elapsed simulated time of the run (valid after
// Done; before completion it reports time so far).
func (c *Core) Runtime() sim.Time {
	if c.finished {
		return c.finish - c.start
	}
	return c.eng.Now() - c.start
}

// AvgLatency reports the mean access latency.
func (c *Core) AvgLatency() sim.Time {
	if c.completed == 0 {
		return 0
	}
	return c.totalLat / sim.Time(c.completed)
}

// StallTime reports accumulated daemon-induced stalls.
func (c *Core) StallTime() sim.Time { return c.stallTime }

// Progress reports the fraction of the access budget completed.
func (c *Core) Progress() float64 {
	return float64(c.completed) / float64(c.cfg.Accesses)
}
