// Package workload models the applications the paper evaluates — SPEC
// CPU2006/2017 programs, HiBench and CloudSuite services — as memory-access
// generators with calibrated intensity (MPKI), footprint dynamics, row
// locality and memory-level parallelism, plus a closed-loop core model that
// converts memory latency into execution time.
//
// Instruction semantics are irrelevant to every figure in the paper; what
// matters is how much memory an application touches, how its footprint
// moves over time (that drives on/off-lining), and how latency-sensitive it
// is (that drives the interleaving speedups of Fig. 3a).
package workload

// Profile characterizes one application. Numbers are calibrated against
// published SPEC characterization studies; footprints are the paper-era
// reference-input footprints.
type Profile struct {
	Name string
	// MPKI is last-level-cache misses per kilo-instruction reaching DRAM.
	MPKI float64
	// FootprintMB is the peak resident set.
	FootprintMB int64
	// Phases describes footprint over run progress (fraction done ->
	// fraction of peak footprint). Linear interpolation between points;
	// must start at progress 0. An empty slice means a flat footprint.
	Phases []PhasePoint
	// ReadFrac is the fraction of DRAM accesses that are reads.
	ReadFrac float64
	// SeqProb is the probability an access continues the current stream
	// (next cache line) rather than jumping — the row-buffer-locality
	// knob.
	SeqProb float64
	// MLP is the maximum overlapping DRAM accesses the core sustains.
	MLP int
	// IPC is the non-memory-stall instructions per cycle.
	IPC float64
	// LatencyCritical marks request/response services whose tail latency
	// Fig. 11's discussion tracks.
	LatencyCritical bool
}

// PhasePoint anchors the footprint curve.
type PhasePoint struct {
	Progress float64 // fraction of instructions retired, in [0,1]
	Frac     float64 // fraction of FootprintMB resident
}

// sawtooth builds an n-cycle footprint oscillation between lo and hi
// fractions — the gcc-style per-compilation-unit allocate/free pattern
// that drives repeated on/off-lining (paper Table 2).
func sawtooth(n int, lo, hi float64) []PhasePoint {
	pts := make([]PhasePoint, 0, 2*n+1)
	for i := 0; i < n; i++ {
		pts = append(pts,
			PhasePoint{Progress: float64(i) / float64(n), Frac: lo},
			PhasePoint{Progress: (float64(i) + 0.5) / float64(n), Frac: hi},
		)
	}
	return append(pts, PhasePoint{Progress: 1, Frac: lo})
}

// ramp grows from lo to hi once and stays.
func ramp(at, lo, hi float64) []PhasePoint {
	return []PhasePoint{{0, lo}, {at, hi}, {1, hi}}
}

// SPEC2006 returns the paper's SPEC CPU2006 set (§5.1/§6 apps).
func SPEC2006() []Profile {
	return []Profile{
		// 429.mcf: pointer chasing over a ~1.7GB graph; very high MPKI,
		// low locality. The graph is built during the first quarter of
		// the run, then the footprint is stable.
		{Name: "429.mcf", MPKI: 68, FootprintMB: 1700,
			Phases: ramp(0.25, 0.5, 1.0), ReadFrac: 0.75,
			SeqProb: 0.25, MLP: 6, IPC: 0.9},
		// 403.gcc: moderate MPKI; footprint oscillates per input file —
		// the app with the most on/off-lining churn (Table 2: 47 events).
		{Name: "403.gcc", MPKI: 12, FootprintMB: 900,
			Phases: sawtooth(8, 0.45, 1.0), ReadFrac: 0.7, SeqProb: 0.55,
			MLP: 4, IPC: 1.4},
		// 450.soplex: LP solver, phase-heavy footprint.
		{Name: "450.soplex", MPKI: 28, FootprintMB: 800,
			Phases: sawtooth(6, 0.35, 1.0), ReadFrac: 0.8, SeqProb: 0.5,
			MLP: 5, IPC: 1.1},
		// 470.lbm: streaming stencil; high bandwidth, high locality;
		// working buffers cycle per simulation phase.
		{Name: "470.lbm", MPKI: 45, FootprintMB: 420,
			Phases: sawtooth(8, 0.5, 1.0), ReadFrac: 0.55, SeqProb: 0.9,
			MLP: 8, IPC: 1.0},
		// 462.libquantum: tiny footprint (the paper's 64MB example),
		// streaming, very high MPKI.
		{Name: "462.libquantum", MPKI: 52, FootprintMB: 64,
			Phases: ramp(0.02, 0.5, 1.0), ReadFrac: 0.85, SeqProb: 0.95,
			MLP: 8, IPC: 1.1},
		// 453.povray: compute-bound ray tracer; negligible DRAM traffic.
		{Name: "453.povray", MPKI: 0.3, FootprintMB: 450,
			Phases: sawtooth(14, 0.45, 1.0), ReadFrac: 0.7, SeqProb: 0.6,
			MLP: 2, IPC: 2.2},
	}
}

// SPEC2006Extra returns additional CPU2006 programs beyond the paper's
// evaluation set — available to library users for their own studies.
func SPEC2006Extra() []Profile {
	return []Profile{
		// 401.bzip2: block-sorting compressor; moderate locality.
		{Name: "401.bzip2", MPKI: 4, FootprintMB: 850,
			Phases: sawtooth(6, 0.5, 1.0), ReadFrac: 0.7, SeqProb: 0.65,
			MLP: 3, IPC: 1.6},
		// 471.omnetpp: discrete-event simulation; pointer-heavy heap.
		{Name: "471.omnetpp", MPKI: 21, FootprintMB: 170, ReadFrac: 0.75,
			SeqProb: 0.3, MLP: 4, IPC: 1.0},
		// 483.xalancbmk: XML transformation; DOM churn.
		{Name: "483.xalancbmk", MPKI: 18, FootprintMB: 430,
			Phases: sawtooth(5, 0.6, 1.0), ReadFrac: 0.8, SeqProb: 0.4,
			MLP: 4, IPC: 1.1},
		// 433.milc: lattice QCD; strided array sweeps.
		{Name: "433.milc", MPKI: 26, FootprintMB: 680,
			Phases: ramp(0.05, 0.6, 1.0), ReadFrac: 0.7, SeqProb: 0.8,
			MLP: 6, IPC: 1.0},
		// 410.bwaves: blast-wave CFD; bandwidth-bound.
		{Name: "410.bwaves", MPKI: 24, FootprintMB: 880,
			Phases: ramp(0.05, 0.7, 1.0), ReadFrac: 0.6, SeqProb: 0.85,
			MLP: 8, IPC: 1.0},
		// 459.GemsFDTD: finite-difference time domain; large stencils.
		{Name: "459.GemsFDTD", MPKI: 25, FootprintMB: 840,
			Phases: ramp(0.08, 0.6, 1.0), ReadFrac: 0.65, SeqProb: 0.8,
			MLP: 6, IPC: 0.9},
	}
}

// SPEC2017 returns the CPU2017 additions the paper plots in Figs. 9-11.
func SPEC2017() []Profile {
	return []Profile{
		{Name: "500.perlbench", MPKI: 1.5, FootprintMB: 700,
			Phases: sawtooth(6, 0.4, 1.0), ReadFrac: 0.7, SeqProb: 0.6,
			MLP: 3, IPC: 2.0},
		{Name: "502.gcc", MPKI: 10, FootprintMB: 1300,
			Phases: sawtooth(10, 0.2, 1.0), ReadFrac: 0.7, SeqProb: 0.55,
			MLP: 4, IPC: 1.4},
		{Name: "505.mcf", MPKI: 55, FootprintMB: 3500,
			Phases: ramp(0.25, 0.5, 1.0), ReadFrac: 0.75,
			SeqProb: 0.3, MLP: 6, IPC: 0.9},
		{Name: "519.lbm", MPKI: 50, FootprintMB: 410,
			Phases: ramp(0.05, 0.2, 1.0), ReadFrac: 0.55, SeqProb: 0.9,
			MLP: 8, IPC: 1.0},
	}
}

// Datacenter returns the HiBench / CloudSuite services (§6.1).
func Datacenter() []Profile {
	return []Profile{
		// HiBench ML linear regression: scan-heavy Spark job.
		{Name: "ml_linear", MPKI: 30, FootprintMB: 6000,
			Phases: ramp(0.1, 0.3, 1.0), ReadFrac: 0.8, SeqProb: 0.85,
			MLP: 8, IPC: 1.2},
		// HiBench wordcount: MapReduce with bursty spills.
		{Name: "wordcount", MPKI: 14, FootprintMB: 4000,
			Phases: sawtooth(7, 0.4, 1.0), ReadFrac: 0.75, SeqProb: 0.7,
			MLP: 5, IPC: 1.5},
		// CloudSuite data-caching (memcached): constant resident set,
		// random small reads, latency-critical.
		{Name: "data-caching", MPKI: 9, FootprintMB: 8000, ReadFrac: 0.9,
			SeqProb: 0.1, MLP: 4, IPC: 1.3, LatencyCritical: true},
		// CloudSuite data-serving (Cassandra).
		{Name: "data-serving", MPKI: 11, FootprintMB: 10000, ReadFrac: 0.8,
			SeqProb: 0.3, MLP: 4, IPC: 1.2, LatencyCritical: true},
		// CloudSuite web-serving (nginx+php).
		{Name: "web-serving", MPKI: 4, FootprintMB: 3000, ReadFrac: 0.8,
			SeqProb: 0.4, MLP: 3, IPC: 1.8, LatencyCritical: true},
	}
}

// ByName finds a profile across all suites.
func ByName(name string) (Profile, bool) {
	for _, set := range [][]Profile{SPEC2006(), SPEC2006Extra(), SPEC2017(), Datacenter()} {
		for _, p := range set {
			if p.Name == name {
				return p, true
			}
		}
	}
	return Profile{}, false
}

// FootprintAt evaluates the footprint curve at a progress in [0,1],
// returning resident bytes.
func (p Profile) FootprintAt(progress float64) int64 {
	peak := p.FootprintMB << 20
	if len(p.Phases) == 0 {
		return peak
	}
	if progress <= p.Phases[0].Progress {
		return int64(float64(peak) * p.Phases[0].Frac)
	}
	for i := 1; i < len(p.Phases); i++ {
		a, b := p.Phases[i-1], p.Phases[i]
		if progress <= b.Progress {
			t := (progress - a.Progress) / (b.Progress - a.Progress)
			return int64(float64(peak) * (a.Frac + t*(b.Frac-a.Frac)))
		}
	}
	return int64(float64(peak) * p.Phases[len(p.Phases)-1].Frac)
}

// HighMPKI reports whether the app is memory-intensive (the Fig. 3
// selection criterion).
func (p Profile) HighMPKI() bool { return p.MPKI >= 20 }
