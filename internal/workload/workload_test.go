package workload

import (
	"testing"

	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/sim"
)

func TestProfilesWellFormed(t *testing.T) {
	suites := map[string][]Profile{
		"spec2006": SPEC2006(), "spec2006x": SPEC2006Extra(),
		"spec2017": SPEC2017(), "datacenter": Datacenter(),
	}
	for suite, profs := range suites {
		if len(profs) == 0 {
			t.Fatalf("%s empty", suite)
		}
		for _, p := range profs {
			if p.MPKI <= 0 || p.FootprintMB <= 0 || p.IPC <= 0 || p.MLP <= 0 {
				t.Errorf("%s/%s: bad numbers %+v", suite, p.Name, p)
			}
			if p.ReadFrac < 0 || p.ReadFrac > 1 || p.SeqProb < 0 || p.SeqProb > 1 {
				t.Errorf("%s/%s: bad fractions", suite, p.Name)
			}
			for _, pt := range p.Phases {
				if pt.Progress < 0 || pt.Progress > 1 || pt.Frac < 0 || pt.Frac > 1 {
					t.Errorf("%s/%s: bad phase point %+v", suite, p.Name, pt)
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("429.mcf")
	if !ok || p.Name != "429.mcf" {
		t.Error("429.mcf not found")
	}
	if _, ok := ByName("no-such-app"); ok {
		t.Error("bogus app found")
	}
}

func TestFootprintCurve(t *testing.T) {
	p, _ := ByName("462.libquantum")
	// Paper: libquantum's footprint is ~64MB.
	if got := p.FootprintAt(1); got != 64<<20 {
		t.Errorf("libquantum final footprint = %d, want 64MB", got)
	}
	if got := p.FootprintAt(0); got >= 64<<20 {
		t.Errorf("libquantum initial footprint = %d, want < peak", got)
	}
	// mcf ramps once then stays flat.
	mcf, _ := ByName("429.mcf")
	if mcf.FootprintAt(0) >= mcf.FootprintAt(0.5) {
		t.Error("mcf footprint should grow during the build phase")
	}
	if mcf.FootprintAt(0.5) != mcf.FootprintAt(1) {
		t.Error("mcf footprint should be flat after the build phase")
	}
	// data-caching is genuinely flat.
	dcache, _ := ByName("data-caching")
	if dcache.FootprintAt(0) != dcache.FootprintAt(1) {
		t.Error("data-caching footprint should be flat")
	}
	// Sawtooth oscillates.
	gcc, _ := ByName("403.gcc")
	mid := gcc.FootprintAt(1.0 / 24) // first peak of 12-cycle sawtooth
	lo := gcc.FootprintAt(0)
	if mid <= lo {
		t.Errorf("gcc sawtooth not oscillating: lo=%d mid=%d", lo, mid)
	}
}

func TestHighMPKISelection(t *testing.T) {
	// The Fig. 3 apps (high MPKI) must include mcf, lbm, libquantum but
	// not povray.
	names := map[string]bool{}
	for _, p := range SPEC2006() {
		if p.HighMPKI() {
			names[p.Name] = true
		}
	}
	for _, want := range []string{"429.mcf", "470.lbm", "462.libquantum"} {
		if !names[want] {
			t.Errorf("%s should be high-MPKI", want)
		}
	}
	if names["453.povray"] {
		t.Error("povray is not memory-intensive")
	}
}

// testRig builds engine + 1GB kernel memory + controller.
func testRig(t *testing.T, interleaved bool) (*sim.Engine, *kernel.Mem, *mc.Controller) {
	t.Helper()
	eng := sim.NewEngine()
	// A small org so tests run fast: 1 channel... use the 64GB org but
	// only allocate inside the first 1GB of kernel-visible memory.
	mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: dram.Org64GB(), Timing: dram.DDR4_2133(), Interleaved: interleaved,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, mem, ctrl
}

func runCore(t *testing.T, name string, interleaved bool, accesses int64) (*Core, *mc.Controller) {
	t.Helper()
	eng, mem, ctrl := testRig(t, interleaved)
	prof, ok := ByName(name)
	if !ok {
		t.Fatal("unknown profile")
	}
	// Cap the footprint to fit the 1GB test memory.
	if prof.FootprintMB > 256 {
		prof.FootprintMB = 256
	}
	core, err := NewCore(eng, mem, ctrl, CoreConfig{
		Profile: prof, Owner: 10, Accesses: accesses, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Start()
	eng.Run()
	if !core.Done() {
		t.Fatalf("core did not finish: %d issued", core.issued)
	}
	ctrl.Finalize()
	return core, ctrl
}

func TestCoreCompletesAndCounts(t *testing.T) {
	core, ctrl := runCore(t, "429.mcf", true, 5000)
	st := ctrl.Stats()
	if st.Reads+st.Writes != 5000 {
		t.Errorf("controller saw %d accesses, want 5000", st.Reads+st.Writes)
	}
	// mcf is 75% reads.
	frac := float64(st.Reads) / float64(st.Reads+st.Writes)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("read fraction = %.2f, want ~0.75", frac)
	}
	if core.Runtime() <= 0 || core.AvgLatency() <= 0 {
		t.Error("runtime/latency not recorded")
	}
}

// runCopies runs n copies of an app (the paper's multiprogrammed setup)
// and returns the time for all copies to finish.
func runCopies(t *testing.T, name string, n int, interleaved bool, accesses int64) sim.Time {
	t.Helper()
	eng, mem, ctrl := testRig(t, interleaved)
	prof, ok := ByName(name)
	if !ok {
		t.Fatal("unknown profile")
	}
	prof.FootprintMB = 64
	remaining := n
	for i := 0; i < n; i++ {
		core, err := NewCore(eng, mem, ctrl, CoreConfig{
			Profile: prof, Owner: uint32(10 + i), Accesses: accesses, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		core.OnDone(func() { remaining-- })
		core.Start()
	}
	eng.Run()
	if remaining != 0 {
		t.Fatalf("%d copies unfinished", remaining)
	}
	ctrl.Finalize()
	return eng.Now()
}

func TestMemoryIntensiveAppsGainFromInterleaving(t *testing.T) {
	// Fig. 3a: with multiple memory-hungry copies (the paper runs 16),
	// interleaving spreads the contiguous low-address footprints across
	// all channels instead of stacking them in the first rank.
	ti := runCopies(t, "470.lbm", 8, true, 8000)
	tc := runCopies(t, "470.lbm", 8, false, 8000)
	speedup := float64(tc) / float64(ti)
	if speedup < 1.8 {
		t.Errorf("lbm x8 interleaving speedup = %.2fx, want > 1.8x", speedup)
	}
	// Compute-bound povray barely notices.
	pi := runCopies(t, "453.povray", 8, true, 1000)
	pc := runCopies(t, "453.povray", 8, false, 1000)
	povSpeedup := float64(pc) / float64(pi)
	if povSpeedup > 1.2 {
		t.Errorf("povray x8 interleaving speedup = %.2fx, want ~1x", povSpeedup)
	}
	if speedup < povSpeedup {
		t.Error("memory-intensive app gained less than compute-bound app")
	}
}

func TestSeqProbControlsRowHits(t *testing.T) {
	lbm, _ := runCore(t, "470.lbm", true, 20000) // SeqProb 0.9
	mcf, _ := runCore(t, "429.mcf", true, 20000) // SeqProb 0.25
	_ = lbm
	_ = mcf
	// Row-hit rates must order by SeqProb.
	hitRate := func(c *mc.Controller) float64 {
		s := c.Stats()
		return float64(s.RowHits) / float64(s.RowHits+s.RowMisses+s.RowConflicts)
	}
	_, lbmCtrl := runCore(t, "470.lbm", true, 20000)
	_, mcfCtrl := runCore(t, "429.mcf", true, 20000)
	if hitRate(lbmCtrl) <= hitRate(mcfCtrl) {
		t.Errorf("lbm hit rate %.2f not above mcf %.2f", hitRate(lbmCtrl), hitRate(mcfCtrl))
	}
}

func TestStallDelaysCompletion(t *testing.T) {
	eng, mem, ctrl := testRig(t, true)
	prof, _ := ByName("453.povray")
	prof.FootprintMB = 64
	core, err := NewCore(eng, mem, ctrl, CoreConfig{
		Profile: prof, Owner: 10, Accesses: 1000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Start()
	// Inject a 5ms stall early on.
	eng.At(10*sim.Microsecond, func() { core.Stall(5 * sim.Millisecond) })
	eng.Run()
	if !core.Done() {
		t.Fatal("core did not finish")
	}
	if core.StallTime() != 5*sim.Millisecond {
		t.Errorf("stall time = %v", core.StallTime())
	}
	if core.Runtime() < 5*sim.Millisecond {
		t.Errorf("runtime %v did not absorb the stall", core.Runtime())
	}
}

func TestFootprintDriverPlaysCurve(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	prof := Profile{
		Name: "synthetic", MPKI: 10, FootprintMB: 256, IPC: 1, MLP: 1,
		Phases: []PhasePoint{{0, 0.25}, {0.5, 1.0}, {1, 0.25}},
	}
	fd, err := NewFootprintDriver(eng, mem, prof, 20, sim.Second, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var peak, atEnd int64
	fd.Start()
	eng.AtDaemon(500*sim.Millisecond, func() { peak = mem.OwnerPageCount(20) })
	done := false
	fd.OnDone(func() { done = true; atEnd = mem.OwnerPageCount(20) })
	eng.RunUntil(2 * sim.Second)
	if !done || !fd.Done() {
		t.Fatal("driver did not finish")
	}
	pageSz := mem.PageBytes()
	if peak*pageSz < 240<<20 {
		t.Errorf("peak = %dMB, want ~256MB", peak*pageSz>>20)
	}
	if atEnd*pageSz > 80<<20 {
		t.Errorf("end = %dMB, want ~64MB", atEnd*pageSz>>20)
	}
	fd.Teardown()
	if mem.OwnerPageCount(20) != 0 {
		t.Error("teardown incomplete")
	}
}

func TestCoreValidation(t *testing.T) {
	eng, mem, ctrl := testRig(t, true)
	if _, err := NewCore(eng, mem, ctrl, CoreConfig{Profile: Profile{}, Accesses: 10}); err == nil {
		t.Error("empty profile accepted")
	}
	prof, _ := ByName("429.mcf")
	if _, err := NewCore(eng, mem, ctrl, CoreConfig{Profile: prof, Accesses: 0}); err == nil {
		t.Error("zero accesses accepted")
	}
	// Footprint larger than memory fails cleanly.
	big := prof
	big.FootprintMB = 4096
	if _, err := NewCore(eng, mem, ctrl, CoreConfig{Profile: big, Owner: 3, Accesses: 10}); err == nil {
		t.Error("oversized footprint accepted")
	}
	if _, err := NewFootprintDriver(eng, mem, prof, 1, 0, sim.Second); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestEventCountScalesLinearly guards against pump-timer chain
// accumulation (a past bug made engine events quadratic in the access
// budget for compute-bound profiles, hanging full-scale runs).
func TestEventCountScalesLinearly(t *testing.T) {
	run := func(accesses int64) int {
		eng, mem, ctrl := testRig(t, true)
		prof, _ := ByName("453.povray") // compute-bound: the worst case
		prof.FootprintMB = 64
		remaining := 4
		for i := 0; i < 4; i++ {
			core, err := NewCore(eng, mem, ctrl, CoreConfig{
				Profile: prof, Owner: uint32(10 + i), Accesses: accesses, Seed: int64(i),
			})
			if err != nil {
				t.Fatal(err)
			}
			core.OnDone(func() { remaining-- })
			core.Start()
		}
		n := eng.Run()
		if remaining != 0 {
			t.Fatal("cores unfinished")
		}
		return n
	}
	small := run(1000)
	big := run(4000)
	ratio := float64(big) / float64(small)
	if ratio > 6 { // linear would be ~4; quadratic ~16
		t.Fatalf("event count superlinear: %d -> %d (x%.1f for a 4x budget)", small, big, ratio)
	}
}
