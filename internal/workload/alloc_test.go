package workload

import (
	"testing"

	"greendimm/internal/dram"
	"greendimm/internal/kernel"
	"greendimm/internal/mc"
	"greendimm/internal/sim"
)

// TestCoreSteadyStateAllocs drives a Core against a real controller and
// locks in the alloc-free issue path: bound handlers, SubmitCall with
// the Core as its own Completer, pooled requests and events. Steady
// state (pool, free list, sample buffers warm) must allocate nothing.
func TestCoreSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: dram.Org64GB(), Timing: dram.DDR4_2133(), Interleaved: true, LowPower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := ByName("429.mcf")
	if !ok {
		t.Fatal("unknown profile")
	}
	prof.FootprintMB = 64
	core, err := NewCore(eng, mem, ctrl, CoreConfig{
		Profile: prof, Owner: 10, Accesses: 1 << 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if core.callSub == nil {
		t.Fatal("controller does not satisfy CallSubmitter")
	}
	core.Start()
	// Warm past the self-refresh timer horizon (see internal/mc's alloc
	// test) so the engine's event population has plateaued.
	eng.RunUntil(200 * sim.Microsecond)

	deadline := eng.Now()
	avg := testing.AllocsPerRun(200, func() {
		deadline += sim.Microsecond
		eng.RunUntil(deadline)
	})
	if avg != 0 {
		t.Fatalf("steady-state core run allocates %.2f allocs per us of sim time, want 0", avg)
	}
	if core.completed == 0 {
		t.Fatal("core made no progress")
	}
}

// TestServiceSteadyStateAllocs does the same for the open-loop Service:
// Poisson arrivals, dependent access chains, bounded latency samples.
func TestServiceSteadyStateAllocs(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 30, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := mc.New(eng, mc.Config{
		Org: dram.Org64GB(), Timing: dram.DDR4_2133(), Interleaved: true, LowPower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := ByName("data-caching")
	if !ok {
		t.Fatal("unknown profile")
	}
	prof.FootprintMB = 64
	svc, err := NewService(eng, mem, ctrl, ServiceConfig{
		Profile:       prof,
		Owner:         11,
		OpsPerSec:     200000,
		AccessesPerOp: 8,
		ComputePerOp:  2 * sim.Microsecond,
		Seed:          7,
		SampleCap:     4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.callSub == nil {
		t.Fatal("controller does not satisfy CallSubmitter")
	}
	svc.Start()
	eng.RunUntil(500 * sim.Microsecond) // warm: past SR horizon, sample cap reached

	deadline := eng.Now()
	avg := testing.AllocsPerRun(200, func() {
		deadline += 2 * sim.Microsecond
		eng.RunUntil(deadline)
	})
	if avg != 0 {
		t.Fatalf("steady-state service run allocates %.2f allocs per 2us of sim time, want 0", avg)
	}
	if svc.served == 0 {
		t.Fatal("service served no ops")
	}
}

// stubSubmitter is a plain Submitter (no SubmitCall); cores and services
// handed one must transparently use the closure path and still work.
type stubSubmitter struct {
	eng *sim.Engine
	n   int
}

func (st *stubSubmitter) Submit(_ uint64, _ bool, done func(sim.Time)) error {
	st.n++
	st.eng.After(30*sim.Nanosecond, func() { done(30 * sim.Nanosecond) })
	return nil
}

// TestLegacySubmitterFallback pins the compatibility contract: a
// Submitter without SubmitCall still drives a Core to completion through
// the bound done-adapter.
func TestLegacySubmitterFallback(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 1 << 28, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := ByName("429.mcf")
	if !ok {
		t.Fatal("unknown profile")
	}
	prof.FootprintMB = 16
	st := &stubSubmitter{eng: eng}
	core, err := NewCore(eng, mem, st, CoreConfig{
		Profile: prof, Owner: 12, Accesses: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if core.callSub != nil {
		t.Fatal("stub must not satisfy CallSubmitter")
	}
	core.Start()
	eng.Run()
	if !core.Done() {
		t.Fatalf("core incomplete: %d of 500 accesses", core.completed)
	}
	if st.n != 500 {
		t.Fatalf("stub saw %d submits, want 500", st.n)
	}
}
