package workload

import (
	"testing"

	"greendimm/internal/kernel"
	"greendimm/internal/sim"
)

// TestFootprintDriverSurvivesPressure: when the target footprint exceeds
// available memory mid-curve, the driver takes what it can and keeps
// playing the curve rather than wedging.
func TestFootprintDriverSurvivesPressure(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 256 << 20, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// A competitor pins most of memory.
	if _, err := mem.AllocPages(200<<20/4096, true, 9); err != nil {
		t.Fatal(err)
	}
	prof := Profile{
		Name: "greedy", MPKI: 1, FootprintMB: 512, IPC: 1, MLP: 1,
		Phases: []PhasePoint{{Progress: 0, Frac: 0.1}, {Progress: 0.5, Frac: 1}, {Progress: 1, Frac: 0.1}},
	}
	fd, err := NewFootprintDriver(eng, mem, prof, 10, sim.Second, 20*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fd.Start()
	eng.RunUntil(2 * sim.Second)
	if !fd.Done() {
		t.Fatal("driver wedged under pressure")
	}
	// The owner holds something bounded by what fits.
	if got := mem.OwnerPageCount(10); got <= 0 || got > (56<<20)/4096 {
		t.Errorf("owner pages = %d", got)
	}
	// Curve tail shrinks back toward 10% of peak.
	if got := mem.OwnerPageCount(10) * 4096; got > 64<<20 {
		t.Errorf("end footprint = %dMB, want near 51MB", got>>20)
	}
	fd.Teardown()
}

// TestFootprintDriverHalfRetry: when a grow step cannot be satisfied in
// full, the driver's half-sized fallback still makes progress.
func TestFootprintDriverHalfRetry(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := kernel.New(kernel.Config{TotalBytes: 64 << 20, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Leave ~24MB free.
	if _, err := mem.AllocPages(40<<20/4096, true, 9); err != nil {
		t.Fatal(err)
	}
	// The profile wants 48MB immediately: more than fits.
	prof := Profile{Name: "big", MPKI: 1, FootprintMB: 48, IPC: 1, MLP: 1}
	fd, err := NewFootprintDriver(eng, mem, prof, 11, sim.Second, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fd.Start()
	eng.RunUntil(200 * sim.Millisecond)
	if got := mem.OwnerPageCount(11); got == 0 {
		t.Error("half-retry made no progress at all")
	}
}
