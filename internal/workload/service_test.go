package workload

import (
	"testing"

	"greendimm/internal/sim"
)

func newService(t *testing.T, cfg ServiceConfig) (*sim.Engine, *Service) {
	t.Helper()
	eng, mem, ctrl := testRig(t, true)
	if cfg.Profile.Name == "" {
		p, _ := ByName("data-caching")
		p.FootprintMB = 128
		cfg.Profile = p
	}
	if cfg.Owner == 0 {
		cfg.Owner = 30
	}
	svc, err := NewService(eng, mem, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, svc
}

func TestServiceServesAndMeasures(t *testing.T) {
	eng, svc := newService(t, ServiceConfig{
		OpsPerSec: 10000, AccessesPerOp: 4, ComputePerOp: 5 * sim.Microsecond,
		Warmup: 10 * sim.Millisecond, Seed: 3,
	})
	svc.Start()
	eng.RunUntil(100 * sim.Millisecond)
	if svc.Served() < 700 {
		t.Fatalf("served %d ops in 100ms at 10k ops/s", svc.Served())
	}
	d := svc.Latency()
	if d.N() == 0 {
		t.Fatal("no latency samples after warmup")
	}
	// Minimum possible latency: compute + 4 dependent accesses.
	minUs := (5 * sim.Microsecond).Microseconds()
	if d.Percentile(0) < minUs {
		t.Errorf("min latency %vus below compute floor %vus", d.Percentile(0), minUs)
	}
	if d.Percentile(99) < d.Percentile(50) {
		t.Error("p99 below p50")
	}
}

func TestServiceWarmupExcluded(t *testing.T) {
	eng, svc := newService(t, ServiceConfig{
		OpsPerSec: 10000, AccessesPerOp: 2, ComputePerOp: sim.Microsecond,
		Warmup: 50 * sim.Millisecond, Seed: 3,
	})
	svc.Start()
	eng.RunUntil(40 * sim.Millisecond)
	if svc.Latency().N() != 0 {
		t.Errorf("%d samples recorded during warmup", svc.Latency().N())
	}
	eng.RunUntil(80 * sim.Millisecond)
	if svc.Latency().N() == 0 {
		t.Error("no samples after warmup")
	}
}

func TestServiceStallInflatesTail(t *testing.T) {
	run := func(stall bool) float64 {
		eng, svc := newService(t, ServiceConfig{
			OpsPerSec: 20000, AccessesPerOp: 4, ComputePerOp: 10 * sim.Microsecond,
			Warmup: 5 * sim.Millisecond, Seed: 3,
		})
		svc.Start()
		if stall {
			// A 2ms stall every 20ms: the queue backs up behind each.
			var inject func()
			inject = func() {
				svc.Stall(2 * sim.Millisecond)
				if eng.Now() < 90*sim.Millisecond {
					eng.AfterDaemon(20*sim.Millisecond, inject)
				}
			}
			eng.AtDaemon(10*sim.Millisecond, inject)
		}
		eng.RunUntil(100 * sim.Millisecond)
		return svc.Latency().Percentile(99)
	}
	base, stalled := run(false), run(true)
	if stalled < base*3 {
		t.Errorf("p99 with stalls = %vus, base %vus: stalls should dominate the tail", stalled, base)
	}
}

func TestServiceValidation(t *testing.T) {
	eng, mem, ctrl := testRig(t, true)
	_ = eng
	p, _ := ByName("data-caching")
	p.FootprintMB = 64
	bad := []ServiceConfig{
		{Profile: p, OpsPerSec: 0, AccessesPerOp: 1},
		{Profile: p, OpsPerSec: 100, AccessesPerOp: 0},
		{Profile: p, OpsPerSec: 100, AccessesPerOp: 1, ComputePerOp: -1},
	}
	for i, cfg := range bad {
		cfg.Owner = uint32(40 + i)
		if _, err := NewService(eng, mem, ctrl, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
