package addr

import (
	"testing"
	"testing/quick"

	"greendimm/internal/dram"
)

func mustMapper(t *testing.T, o dram.Org, interleaved bool) *Mapper {
	t.Helper()
	m, err := NewMapper(o, interleaved)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTotalBitsCoverCapacity(t *testing.T) {
	for _, intlv := range []bool{true, false} {
		m := mustMapper(t, dram.Org64GB(), intlv)
		if got, want := m.TotalBits(), 36; got != want { // 64GB = 2^36
			t.Errorf("intlv=%v: TotalBits = %d, want %d", intlv, got, want)
		}
	}
	m := mustMapper(t, dram.Org256GB(), true)
	if got, want := m.TotalBits(), 38; got != want {
		t.Errorf("256GB TotalBits = %d, want %d", got, want)
	}
}

func TestDecodeRejectsOutOfRange(t *testing.T) {
	m := mustMapper(t, dram.Org64GB(), true)
	if _, err := m.Decode(64 << 30); err == nil {
		t.Error("address at capacity accepted")
	}
	if _, err := m.Decode(0); err != nil {
		t.Errorf("address 0 rejected: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, intlv := range []bool{true, false} {
		m := mustMapper(t, dram.Org64GB(), intlv)
		f := func(raw uint64) bool {
			pa := (raw % uint64(m.Org().TotalBytes())) &^ 63 // line aligned
			l, err := m.Decode(pa)
			if err != nil {
				return false
			}
			return m.Encode(l) == pa
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("intlv=%v: %v", intlv, err)
		}
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	for _, intlv := range []bool{true, false} {
		m := mustMapper(t, dram.Org64GB(), intlv)
		o := m.Org()
		f := func(raw uint64) bool {
			pa := raw % uint64(o.TotalBytes())
			l, err := m.Decode(pa)
			if err != nil {
				return false
			}
			return l.Channel >= 0 && l.Channel < o.Channels &&
				l.Rank >= 0 && l.Rank < o.RanksPerChannel() &&
				l.BankGroup >= 0 && l.BankGroup < o.BankGroups &&
				l.Bank >= 0 && l.Bank < o.BanksPerGroup &&
				l.Row >= 0 && l.Row < o.Rows() &&
				l.Col >= 0 && l.Col < o.Columns/o.BurstLength
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("intlv=%v: %v", intlv, err)
		}
	}
}

func TestInterleavingDispersesConsecutiveLines(t *testing.T) {
	// Paper §3.3: with interleaving, consecutive cache lines land on
	// different channels; a small footprint still touches every rank.
	m := mustMapper(t, dram.Org64GB(), true)
	chans := map[int]bool{}
	ranks := map[[2]int]bool{}
	const footprint = 64 << 20 // 64MB, the libquantum example
	for pa := uint64(0); pa < footprint; pa += 64 {
		l, err := m.Decode(pa)
		if err != nil {
			t.Fatal(err)
		}
		chans[l.Channel] = true
		ranks[[2]int{l.Channel, l.Rank}] = true
	}
	if len(chans) != 4 {
		t.Errorf("64MB footprint touched %d channels, want 4", len(chans))
	}
	if len(ranks) != 16 {
		t.Errorf("64MB footprint touched %d ranks, want all 16", len(ranks))
	}
	// Adjacent lines must differ in channel.
	l0, _ := m.Decode(0)
	l1, _ := m.Decode(64)
	if l0.Channel == l1.Channel {
		t.Error("adjacent lines on same channel under interleaving")
	}
}

func TestContiguousKeepsSmallFootprintLocal(t *testing.T) {
	// Without interleaving, a 64MB footprint stays inside one rank of one
	// channel, so the other 15 ranks can idle (paper Fig. 3b).
	m := mustMapper(t, dram.Org64GB(), false)
	ranks := map[[2]int]bool{}
	const footprint = 64 << 20
	for pa := uint64(0); pa < footprint; pa += 4096 {
		l, err := m.Decode(pa)
		if err != nil {
			t.Fatal(err)
		}
		ranks[[2]int{l.Channel, l.Rank}] = true
	}
	if len(ranks) != 1 {
		t.Errorf("64MB footprint touched %d ranks without interleaving, want 1", len(ranks))
	}
}

func TestSubArrayGroupFromTopBits(t *testing.T) {
	// Paper §4.1: the most significant address bits select the sub-array
	// group, identically across channels/ranks/banks.
	m := mustMapper(t, dram.Org64GB(), true)
	cap64 := uint64(64 << 30)
	cases := []struct {
		pa   uint64
		want int
	}{
		{0, 0},
		{cap64/64 - 64, 0},         // last line of first 1GB slice
		{cap64 / 64, 1},            // first line of second slice
		{cap64 - 64, 63},           // last line of memory
		{cap64 / 2, 32},            // midpoint
		{3 * (cap64 / 64), 3},      // slice 3 start
		{3*(cap64/64) + 555*64, 3}, // inside slice 3
	}
	for _, c := range cases {
		got, err := m.SubArrayGroup(c.pa)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("SubArrayGroup(%#x) = %d, want %d", c.pa, got, c.want)
		}
	}
}

func TestGroupAddressRange(t *testing.T) {
	m := mustMapper(t, dram.Org64GB(), true)
	lo, hi, err := m.GroupAddressRange(5)
	if err != nil {
		t.Fatal(err)
	}
	if hi-lo != 1<<30 {
		t.Errorf("group range size = %d, want 1GB", hi-lo)
	}
	// Every address in the range decodes to group 5; boundary addresses
	// outside do not.
	for _, pa := range []uint64{lo, lo + 64, hi - 64, (lo + hi) / 2 &^ 63} {
		g, err := m.SubArrayGroup(pa)
		if err != nil {
			t.Fatal(err)
		}
		if g != 5 {
			t.Errorf("SubArrayGroup(%#x) = %d inside range of group 5", pa, g)
		}
	}
	if g, _ := m.SubArrayGroup(lo - 64); g != 4 {
		t.Errorf("address below range in group %d, want 4", g)
	}
	if g, _ := m.SubArrayGroup(hi); g != 6 {
		t.Errorf("address above range in group %d, want 6", g)
	}
	if _, _, err := m.GroupAddressRange(64); err == nil {
		t.Error("out-of-range group accepted")
	}
}

func TestGroupRangeSpansAllBanksAllRanks(t *testing.T) {
	// The key interleaving-agnostic property (paper Fig. 4): one group's
	// address range maps onto EVERY channel, rank, and bank, always with
	// rows in the same top-row-bits window.
	m := mustMapper(t, dram.Org64GB(), true)
	o := m.Org()
	lo, hi, err := m.GroupAddressRange(7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{} // flat bank index
	rowsPerSA := o.Rows() / o.SubArraysPerBank
	// Stride co-prime-ish with the interleave fields so low address bits
	// sweep every channel/rank/bank combination.
	for pa := lo; pa < hi; pa += 1<<20 + 64 {
		l, err := m.Decode(pa)
		if err != nil {
			t.Fatal(err)
		}
		if l.Row/rowsPerSA != 7 {
			t.Fatalf("pa %#x row %d outside sub-array 7", pa, l.Row)
		}
		seen[l.FlatBank(o)] = true
	}
	wantBanks := o.TotalRanks() * o.Banks()
	if len(seen) != wantBanks {
		t.Errorf("group 7 touched %d banks, want all %d", len(seen), wantBanks)
	}
}

func TestContiguousGroupRangeUnavailable(t *testing.T) {
	m := mustMapper(t, dram.Org64GB(), false)
	if _, _, err := m.GroupAddressRange(0); err == nil {
		t.Error("contiguous mapping should not offer a single group range")
	}
}

func TestSubArrayGroupOfRow(t *testing.T) {
	m := mustMapper(t, dram.Org64GB(), true)
	rowsPerSA := m.Org().RowsPerSubArray()
	for _, c := range []struct{ row, want int }{
		{0, 0}, {rowsPerSA - 1, 0}, {rowsPerSA, 1}, {32767, 63},
	} {
		if got := m.SubArrayGroupOfRow(c.row); got != c.want {
			t.Errorf("SubArrayGroupOfRow(%d) = %d, want %d", c.row, got, c.want)
		}
	}
}

func TestMapperRejectsInvalidOrg(t *testing.T) {
	o := dram.Org64GB()
	o.Channels = 3 // not a power of two
	if _, err := NewMapper(o, true); err == nil {
		t.Error("3-channel org accepted")
	}
	if _, err := NewMapper(dram.Org{}, true); err == nil {
		t.Error("zero org accepted")
	}
}

func TestBijectionAcrossAllGroups(t *testing.T) {
	// Property: Decode is injective on line addresses — two distinct
	// sampled line addresses never map to the same location.
	m := mustMapper(t, dram.Org64GB(), true)
	seen := make(map[Loc]uint64)
	for pa := uint64(0); pa < 1<<24; pa += 64 {
		l, err := m.Decode(pa)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[l]; dup {
			t.Fatalf("addresses %#x and %#x collide at %+v", prev, pa, l)
		}
		seen[l] = pa
	}
}

func TestChannelOfMatchesDecode(t *testing.T) {
	for _, intlv := range []bool{true, false} {
		m := mustMapper(t, dram.Org64GB(), intlv)
		f := func(raw uint64) bool {
			pa := raw % uint64(m.Org().TotalBytes())
			l, err := m.Decode(pa)
			if err != nil {
				return false
			}
			ch, err := m.ChannelOf(pa)
			return err == nil && ch == l.Channel
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("intlv=%v: %v", intlv, err)
		}
		if _, err := m.ChannelOf(uint64(m.Org().TotalBytes())); err == nil {
			t.Errorf("intlv=%v: address at capacity accepted", intlv)
		}
	}
}
