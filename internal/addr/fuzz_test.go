package addr

import (
	"testing"

	"greendimm/internal/dram"
)

// FuzzDecodeEncode: any in-range address must decode to in-range fields
// and encode back to itself (line-aligned); out-of-range must error, never
// panic.
func FuzzDecodeEncode(f *testing.F) {
	f.Add(uint64(0), true)
	f.Add(uint64(64<<30)-64, true)
	f.Add(uint64(1)<<35, false)
	f.Add(^uint64(0), true)
	orgI, err := NewMapper(dram.Org64GB(), true)
	if err != nil {
		f.Fatal(err)
	}
	orgC, err := NewMapper(dram.Org64GB(), false)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, pa uint64, interleaved bool) {
		m := orgC
		if interleaved {
			m = orgI
		}
		l, err := m.Decode(pa)
		if pa >= uint64(m.Org().TotalBytes()) {
			if err == nil {
				t.Fatalf("out-of-range %#x accepted", pa)
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range %#x rejected: %v", pa, err)
		}
		if got := m.Encode(l); got != pa&^63 {
			t.Fatalf("round trip %#x -> %#x", pa, got)
		}
		g, err := m.SubArrayGroup(pa)
		if err != nil || g < 0 || g >= m.Org().SubArraysPerBank {
			t.Fatalf("group %d err %v", g, err)
		}
	})
}
