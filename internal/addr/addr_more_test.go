package addr

import (
	"testing"
	"testing/quick"

	"greendimm/internal/dram"
)

// TestAllCapacityPresetsRoundTrip: every OrgWithCapacity preset keeps the
// encode/decode bijection and the top-bits sub-array-group property.
func TestAllCapacityPresetsRoundTrip(t *testing.T) {
	for _, gb := range []int{64, 128, 256, 512, 1024} {
		org, err := dram.OrgWithCapacity(gb)
		if err != nil {
			t.Fatal(err)
		}
		for _, intlv := range []bool{true, false} {
			m, err := NewMapper(org, intlv)
			if err != nil {
				t.Fatalf("%dGB intlv=%v: %v", gb, intlv, err)
			}
			capBytes := uint64(org.TotalBytes())
			f := func(raw uint64) bool {
				pa := (raw % capBytes) &^ 63
				l, err := m.Decode(pa)
				if err != nil {
					return false
				}
				return m.Encode(l) == pa
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("%dGB intlv=%v: %v", gb, intlv, err)
			}
		}
		// Top address slice = last sub-array group.
		m, _ := NewMapper(org, true)
		if g, err := m.SubArrayGroup(capBytes(gb) - 64); err != nil || g != org.SubArraysPerBank-1 {
			t.Errorf("%dGB: top address in group %d (err %v)", gb, g, err)
		}
	}
}

func capBytes(gb int) uint64 { return uint64(gb) << 30 }

// TestGroupRangesPartitionAddressSpace: the 64 group ranges tile the
// address space exactly with no gaps or overlap.
func TestGroupRangesPartitionAddressSpace(t *testing.T) {
	m := mustMapper(t, dram.Org256GB(), true)
	var expect uint64
	for g := 0; g < 64; g++ {
		lo, hi, err := m.GroupAddressRange(g)
		if err != nil {
			t.Fatal(err)
		}
		if lo != expect {
			t.Fatalf("group %d starts at %#x, want %#x", g, lo, expect)
		}
		if hi <= lo {
			t.Fatalf("group %d empty", g)
		}
		expect = hi
	}
	if expect != uint64(m.Org().TotalBytes()) {
		t.Errorf("groups cover %#x of %#x", expect, m.Org().TotalBytes())
	}
}

// TestContiguousRankSlabs: under the contiguous map, global rank r owns
// exactly the PFN slab [r*rankBytes, (r+1)*rankBytes) — the assumption
// RAMZzz's census relies on.
func TestContiguousRankSlabs(t *testing.T) {
	o := dram.Org64GB()
	m := mustMapper(t, o, false)
	rankBytes := uint64(o.RankBytes())
	for r := 0; r < o.TotalRanks(); r++ {
		for _, off := range []uint64{0, rankBytes / 2, rankBytes - 64} {
			pa := uint64(r)*rankBytes + off
			l, err := m.Decode(pa)
			if err != nil {
				t.Fatal(err)
			}
			got := l.Channel*o.RanksPerChannel() + l.Rank
			if got != r {
				t.Fatalf("pa %#x in global rank %d, want %d", pa, got, r)
			}
		}
	}
}
