// Package addr maps physical addresses to DRAM locations (channel, rank,
// bank group, bank, row, column) and back.
//
// Two mappings are provided:
//
//   - Interleaved (the default on commercial servers, paper §3.3/Fig. 5):
//     cache-line-adjacent addresses rotate across channels, then ranks,
//     then banks, so contiguous physical memory is dispersed for
//     memory-level parallelism.
//   - Contiguous ("w/o interleaving"): each channel, then rank, owns a
//     contiguous slab of the address space.
//
// The property GreenDIMM exploits holds in BOTH mappings: the most
// significant bits of the physical address select the row's most
// significant bits, which select the sub-array. A contiguous 1/64th slice
// at the top of the address space therefore maps to the same sub-array
// group in every channel, rank and bank (paper §4.1).
package addr

import (
	"fmt"
	"math/bits"

	"greendimm/internal/dram"
)

// Loc identifies one cache-line-sized piece of DRAM.
type Loc struct {
	Channel   int
	Rank      int // rank index within the channel
	BankGroup int
	Bank      int // bank index within the bank group
	Row       int
	Col       int // column in cache-line (burst) units
}

// FlatBank returns a dense index identifying (channel, rank, bankgroup,
// bank) — handy for per-bank bookkeeping arrays.
func (l Loc) FlatBank(o dram.Org) int {
	banks := o.Banks()
	rank := l.Channel*o.RanksPerChannel() + l.Rank
	return rank*banks + l.BankGroup*o.BanksPerGroup + l.Bank
}

// Mapper translates between physical addresses and DRAM locations.
type Mapper struct {
	org         dram.Org
	interleaved bool

	lineBits int // log2(64)
	chanBits int
	colBits  int
	bgBits   int
	bankBits int
	rankBits int
	rowBits  int
	saBits   int // sub-array-select bits (top of row)
}

// NewMapper builds a mapper for the organization. Interleaved selects the
// channel/rank/bank-rotating layout; otherwise the contiguous layout.
func NewMapper(o dram.Org, interleaved bool) (*Mapper, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	log2 := func(n int, what string) (int, error) {
		if n <= 0 || n&(n-1) != 0 {
			return 0, fmt.Errorf("addr: %s count %d not a power of two", what, n)
		}
		return bits.TrailingZeros(uint(n)), nil
	}
	m := &Mapper{org: o, interleaved: interleaved}
	var err error
	if m.chanBits, err = log2(o.Channels, "channel"); err != nil {
		return nil, err
	}
	if m.rankBits, err = log2(o.RanksPerChannel(), "rank"); err != nil {
		return nil, err
	}
	if m.bgBits, err = log2(o.BankGroups, "bank group"); err != nil {
		return nil, err
	}
	if m.bankBits, err = log2(o.BanksPerGroup, "bank"); err != nil {
		return nil, err
	}
	if m.rowBits, err = log2(o.Rows(), "row"); err != nil {
		return nil, err
	}
	if m.saBits, err = log2(o.SubArraysPerBank, "sub-array"); err != nil {
		return nil, err
	}
	// Column bits counted in cache-line units: a 1024-column x8 device
	// delivers 8 lines... more precisely, one row across a rank holds
	// rowBytes = Columns * busWidth/8 bytes = Columns*8 bytes; in 64-byte
	// lines that is Columns/8 lines.
	lines := o.Columns / o.BurstLength
	if m.colBits, err = log2(lines, "column-line"); err != nil {
		return nil, err
	}
	m.lineBits = 6 // 64B cache lines
	return m, nil
}

// Org returns the organization the mapper was built for.
func (m *Mapper) Org() dram.Org { return m.org }

// Interleaved reports which layout the mapper uses.
func (m *Mapper) Interleaved() bool { return m.interleaved }

// TotalBits is the number of significant physical-address bits.
func (m *Mapper) TotalBits() int {
	return m.lineBits + m.chanBits + m.rankBits + m.bgBits + m.bankBits + m.colBits + m.rowBits
}

// Decode maps a physical address to its DRAM location. Addresses beyond
// the installed capacity return an error.
func (m *Mapper) Decode(pa uint64) (Loc, error) {
	if pa >= uint64(m.org.TotalBytes()) {
		return Loc{}, fmt.Errorf("addr: physical address %#x beyond capacity %#x", pa, m.org.TotalBytes())
	}
	a := pa >> m.lineBits
	take := func(n int) int {
		v := int(a & ((1 << n) - 1))
		a >>= n
		return v
	}
	var l Loc
	if m.interleaved {
		// From LSB: channel | column-low | bank group | bank | rank |
		// column-high | row. Splitting the column around the bank bits
		// keeps row-buffer locality for streams while still rotating
		// consecutive lines across channels and banks.
		const colLow = 2
		l.Channel = take(m.chanBits)
		cl := take(min(colLow, m.colBits))
		l.BankGroup = take(m.bgBits)
		l.Bank = take(m.bankBits)
		l.Rank = take(m.rankBits)
		ch := take(max(m.colBits-colLow, 0))
		l.Col = ch<<min(colLow, m.colBits) | cl
		l.Row = take(m.rowBits)
	} else {
		// From LSB: column | bank | bank group | row | rank | channel.
		// A contiguous region lives inside one bank of one rank of one
		// channel until it spills to the next.
		l.Col = take(m.colBits)
		l.Bank = take(m.bankBits)
		l.BankGroup = take(m.bgBits)
		l.Row = take(m.rowBits)
		l.Rank = take(m.rankBits)
		l.Channel = take(m.chanBits)
	}
	return l, nil
}

// Encode is the inverse of Decode: it maps a location back to the physical
// address of its first byte.
func (m *Mapper) Encode(l Loc) uint64 {
	var a uint64
	// Build from MSB down by reversing the Decode order.
	if m.interleaved {
		const colLow = 2
		cLow := min(colLow, m.colBits)
		colHi := l.Col >> cLow
		colLo := l.Col & ((1 << cLow) - 1)
		a = uint64(l.Row)
		a = a<<(m.colBits-cLow) | uint64(colHi)
		a = a<<m.rankBits | uint64(l.Rank)
		a = a<<m.bankBits | uint64(l.Bank)
		a = a<<m.bgBits | uint64(l.BankGroup)
		a = a<<cLow | uint64(colLo)
		a = a<<m.chanBits | uint64(l.Channel)
	} else {
		a = uint64(l.Channel)
		a = a<<m.rankBits | uint64(l.Rank)
		a = a<<m.rowBits | uint64(l.Row)
		a = a<<m.bgBits | uint64(l.BankGroup)
		a = a<<m.bankBits | uint64(l.Bank)
		a = a<<m.colBits | uint64(l.Col)
	}
	return a << m.lineBits
}

// ChannelOf returns the channel an address maps to without decoding the
// full location. The channel is the sharding key of the sharded event
// engine (sim.SetShards): every access to an address is handled entirely
// by the lane owning its channel, so this must agree with Decode's
// Channel field under both layouts.
func (m *Mapper) ChannelOf(pa uint64) (int, error) {
	if pa >= uint64(m.org.TotalBytes()) {
		return 0, fmt.Errorf("addr: physical address %#x beyond capacity %#x", pa, m.org.TotalBytes())
	}
	a := pa >> m.lineBits
	if m.interleaved {
		return int(a & ((1 << m.chanBits) - 1)), nil
	}
	shift := m.colBits + m.bankBits + m.bgBits + m.rowBits + m.rankBits
	return int(a >> shift), nil
}

// SubArrayGroup returns the sub-array group index (0..SubArraysPerBank-1)
// that the address's row falls in: the top saBits of the row address
// (paper §4.1, global row decoder).
func (m *Mapper) SubArrayGroup(pa uint64) (int, error) {
	l, err := m.Decode(pa)
	if err != nil {
		return 0, err
	}
	return l.Row >> (m.rowBits - m.saBits), nil
}

// SubArrayGroupOfRow maps a row index to its sub-array group.
func (m *Mapper) SubArrayGroupOfRow(row int) int {
	return row >> (m.rowBits - m.saBits)
}

// GroupAddressRange returns the contiguous physical-address range
// [lo, hi) that maps to sub-array group g — valid for the interleaved
// mapping, where the row MSBs are the physical-address MSBs, so each group
// owns exactly one contiguous 1/64th slice of the address space. This is
// the correspondence GreenDIMM uses to pick which OS memory block to
// off-line.
func (m *Mapper) GroupAddressRange(g int) (lo, hi uint64, err error) {
	n := m.org.SubArraysPerBank
	if g < 0 || g >= n {
		return 0, 0, fmt.Errorf("addr: sub-array group %d out of range %d", g, n)
	}
	if !m.interleaved {
		// Contiguous mapping scatters a group into one slice per
		// (channel, rank); there is no single contiguous range.
		return 0, 0, fmt.Errorf("addr: contiguous mapping has no single range per group")
	}
	size := uint64(m.org.TotalBytes()) / uint64(n)
	return uint64(g) * size, uint64(g+1) * size, nil
}
