package sweep

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryCellOnce checks the exactly-once contract at several
// parallelism levels, including parallelism wider than the cell count.
func TestRunCoversEveryCellOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var counts [n]int32
		err := Run(n, Config{Parallelism: p}, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: cell %d ran %d times", p, i, c)
			}
		}
	}
}

// TestRunResultsLandAtInputIndex is the determinism contract: cell i's
// output lands in slot i regardless of execution interleaving.
func TestRunResultsLandAtInputIndex(t *testing.T) {
	const n = 256
	out := make([]int, n)
	if err := Run(n, Config{Parallelism: 8}, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}
}

// TestRunReturnsLowestIndexedError checks that the reported error matches
// the serial walk's: the lowest-indexed failing cell wins, even when a
// higher-indexed cell fails first in wall time.
func TestRunReturnsLowestIndexedError(t *testing.T) {
	const n = 64
	errAt := func(i int) error { return fmt.Errorf("cell %d failed", i) }
	for _, p := range []int{1, 4, 16} {
		err := Run(n, Config{Parallelism: p}, func(i int) error {
			if i == 10 || i == 40 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 10 failed" {
			t.Fatalf("p=%d: got %v, want cell 10's error", p, err)
		}
	}
}

// TestRunErrorStopsNewCells checks that cells stop being handed out after
// a failure (in-flight cells may still finish).
func TestRunErrorStopsNewCells(t *testing.T) {
	const n = 1000
	var ran int32
	err := Run(n, Config{Parallelism: 1}, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 5 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := atomic.LoadInt32(&ran); got != 6 {
		t.Fatalf("ran %d cells after serial failure at index 5, want 6", got)
	}
}

// TestRunStop checks the cancellation path: once Stop reports true no new
// cells start and Run returns ErrStopped.
func TestRunStop(t *testing.T) {
	for _, p := range []int{1, 4} {
		var ran int32
		stopAfter := int32(7)
		err := Run(1000, Config{
			Parallelism: p,
			Stop:        func() bool { return atomic.LoadInt32(&ran) >= stopAfter },
		}, func(i int) error {
			atomic.AddInt32(&ran, 1)
			return nil
		})
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("p=%d: got %v, want ErrStopped", p, err)
		}
		if got := atomic.LoadInt32(&ran); got >= 1000 {
			t.Fatalf("p=%d: stop ignored, all cells ran", p)
		}
	}
}

// TestRunStopBeforeStart: a stop that is already true runs nothing.
func TestRunStopBeforeStart(t *testing.T) {
	var ran int32
	err := Run(10, Config{Parallelism: 4, Stop: func() bool { return true }}, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("got %v, want ErrStopped", err)
	}
	if ran != 0 {
		t.Fatalf("%d cells ran under an immediate stop", ran)
	}
}

// TestLimiterBoundsExtraWorkers: with a zero budget the sweep degrades to
// the calling goroutine; with a budget of k it uses at most k+1 workers.
func TestLimiterBoundsExtraWorkers(t *testing.T) {
	for _, budget := range []int{0, 2} {
		lim := NewLimiter(budget)
		var cur, peak int32
		var mu sync.Mutex
		err := Run(64, Config{Parallelism: 16, Limiter: lim}, func(i int) error {
			c := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if c > peak {
				peak = c
			}
			mu.Unlock()
			atomic.AddInt32(&cur, -1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(peak) > budget+1 {
			t.Fatalf("budget %d: observed %d concurrent cells", budget, peak)
		}
	}
}

// TestLimiterReleasesSlots: a sweep returns its budget, so a following
// sweep can claim it again.
func TestLimiterReleasesSlots(t *testing.T) {
	lim := NewLimiter(3)
	for round := 0; round < 4; round++ {
		if err := Run(8, Config{Parallelism: 4, Limiter: lim}, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	// All slots must be free again.
	for i := 0; i < 3; i++ {
		if !lim.TryAcquire() {
			t.Fatalf("slot %d not released", i)
		}
	}
	if lim.TryAcquire() {
		t.Fatal("limiter grants beyond its budget")
	}
	for i := 0; i < 3; i++ {
		lim.Release()
	}
}

// TestNilLimiter: a nil limiter means no shared budget.
func TestNilLimiter(t *testing.T) {
	var lim *Limiter
	if !lim.TryAcquire() {
		t.Fatal("nil limiter must grant")
	}
	lim.Release() // must not panic
	if err := Run(16, Config{Parallelism: 8, Limiter: nil}, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestRunZeroCells: n <= 0 is a no-op.
func TestRunZeroCells(t *testing.T) {
	if err := Run(0, Config{}, func(i int) error { t.Fatal("cell ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}
