// Package sweep fans independent simulation cells out over a bounded
// goroutine pool. Every experiment in internal/exp is a matrix walk —
// workload x mapping x policy — whose cells are fully independent
// deterministic simulations, so the only requirements on a parallel
// executor are that (a) each cell runs exactly once, (b) results land at
// the cell's input index so reports reassemble in input order, and (c)
// the error a caller sees is the same one the serial walk would have
// returned. Run provides exactly that contract; callers keep results
// deterministic by writing cell i's output into slot i of a pre-sized
// slice and rendering only after Run returns.
//
// Concurrency budgeting: Run itself never uses more than
// Config.Parallelism goroutines, and when several Runs execute at once
// (the greendimmd worker pool runs one sweep per job), a shared Limiter
// caps the machine-wide total so jobs compose instead of oversubscribing
// workers x NumCPU goroutines. The calling goroutine always participates
// as a worker, so a sweep makes progress even when the shared budget is
// exhausted.
package sweep

import (
	"errors"
	"runtime"
	"sync"
)

// ErrStopped reports that Config.Stop ended a sweep before every cell
// ran. The caller's partial results are incomplete and must be discarded
// — the same contract as an engine run aborted by a stop check.
var ErrStopped = errors.New("sweep: stopped before all cells ran")

// Limiter is a machine-wide budget for extra sweep workers, shared by
// every concurrently-running sweep. A nil *Limiter imposes no budget.
// The zero Limiter (or NewLimiter with n <= 0) grants nothing: sweeps
// holding it run on their calling goroutine alone.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a budget of n extra workers across all sweeps that
// share it. n <= 0 yields a budget that always declines.
func NewLimiter(n int) *Limiter {
	l := &Limiter{}
	if n > 0 {
		l.slots = make(chan struct{}, n)
	}
	return l
}

// TryAcquire claims one worker slot without blocking.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	if l.slots == nil {
		return false
	}
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (l *Limiter) Release() {
	if l == nil || l.slots == nil {
		return
	}
	select {
	case <-l.slots:
	default:
		panic("sweep: Release without matching TryAcquire")
	}
}

// Config controls one Run.
type Config struct {
	// Parallelism is the maximum number of concurrently-executing cells.
	// <= 0 selects runtime.NumCPU(); 1 runs the cells serially on the
	// calling goroutine with no synchronization at all.
	Parallelism int
	// Stop, when non-nil, is polled before each cell is handed out; once
	// it reports true no further cells start and Run returns ErrStopped
	// (in-flight cells finish first — aborting *inside* a cell is the
	// cell's own job, via its engine's stop check). Under parallelism the
	// predicate is called from multiple goroutines, one claim at a time
	// (calls are serialized by the dispatch lock), but it must still be
	// safe to call concurrently with itself because the engines inside
	// in-flight cells poll the same predicate from their event loops.
	Stop func() bool
	// Limiter, when non-nil, gates every worker beyond the first against
	// a shared machine-wide budget. Slots are claimed when the sweep
	// starts and released as its workers exit.
	Limiter *Limiter
}

// Run executes cell(i) exactly once for every i in [0, n), using up to
// cfg.Parallelism concurrent goroutines (the caller's included), and
// returns after all started cells have finished.
//
// Error contract: after any cell fails, no new cells start; Run then
// returns the error of the lowest-indexed failed cell. Because cells are
// handed out in index order, that is exactly the error the serial walk
// would have returned — a cell with a smaller index than a failed cell
// either ran (and its error, if any, wins) or is the failed cell itself.
// If cfg.Stop ended the sweep instead, Run returns ErrStopped.
func Run(n int, cfg Config, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.NumCPU()
	}
	if p > n {
		p = n
	}
	if p == 1 && cfg.Stop == nil {
		// Pure serial fast path: byte-for-byte the pre-sweep behavior.
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu      sync.Mutex
		next    int
		failed  bool
		stopped bool
		errs    = make([]error, n)
	)
	// claim hands out the next cell index, in order. Serializing the Stop
	// poll under mu keeps between-cell cancellation checks one-at-a-time.
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || stopped || next >= n {
			return 0, false
		}
		if cfg.Stop != nil && cfg.Stop() {
			stopped = true
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	work := func() {
		for {
			i, ok := claim()
			if !ok {
				return
			}
			if err := cell(i); err != nil {
				mu.Lock()
				errs[i] = err
				failed = true
				mu.Unlock()
			}
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < p; w++ {
		if !cfg.Limiter.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cfg.Limiter.Release()
			work()
		}()
	}
	work() // the calling goroutine is worker 0: progress needs no budget
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if stopped {
		return ErrStopped
	}
	return nil
}
