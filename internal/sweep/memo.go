package sweep

import (
	"container/list"
	"encoding/json"
	"sort"
	"sync"
)

// Memo is a single-flight result cache for sweep cells keyed by config
// fingerprint. Matrix experiments share baseline cells — fig12 and fig13
// run the identical VM-trace day, the energy matrix re-runs the same
// timing configuration the standalone figures use — and because every
// cell is a deterministic function of its config, computing each
// distinct cell once and handing the stored result to later callers is
// result-neutral: the memoized output is byte-for-byte the output the
// caller would have computed.
//
// Concurrency: Do is safe from any number of goroutines. The first
// caller of a key computes; concurrent callers of the same key block
// until that computation finishes (single-flight), so two parallel
// sweeps never duplicate a cell.
//
// Errors are never cached or served across callers: a cell that fails —
// most importantly one aborted by its own job's Stop hook — must not
// poison the key for jobs that were not canceled. On error the entry is
// dropped; a waiter that observed another caller's error recomputes with
// its own compute function (honoring its own hooks).
//
// Capacity is enforced by LRU eviction: past cap entries, the least
// recently used settled entry is dropped. Eviction is result-neutral
// for the same reason memoization is — a dropped key simply recomputes
// on its next use. In-flight entries are never evicted (their waiters
// hold references), so residency can transiently exceed cap under heavy
// concurrent fan-in; it settles back under the bound as computes finish.
//
// Entries whose key family the installed Codec recognizes are
// serializable: Export renders them as versioned Entry records, Import
// replays such records (verified by the codec) into warm entries, and
// Keys digests the exportable residents — the building blocks of the
// durable memo store and the cluster's warm-peer exchange.
type Memo struct {
	mu        sync.Mutex
	cap       int
	codec     Codec
	hits      int64
	computes  int64
	evictions int64
	imports   int64
	entries   map[string]*memoEntry
	lru       *list.List // front = most recently used; values are *memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
	err  error

	// key and el tie the entry back to its map slot and LRU position;
	// settled is set (under Memo.mu) after once.Do completes, marking the
	// entry evictable and exportable.
	key     string
	el      *list.Element
	settled bool
}

// EntryVersion is the current Entry wire/disk format version. Import
// ignores entries from other versions — a mixed-version cluster degrades
// to recomputation, never to misdecoded values.
const EntryVersion = 1

// Entry is one serialized memo entry: a versioned (key, canonical JSON
// value) pair produced by Export and accepted by Import. The value
// encoding is the codec's (deterministic, round-trip verified), so two
// daemons exporting the same key emit identical bytes.
type Entry struct {
	V     int             `json:"v"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Codec translates between a memo entry's in-memory value and its
// canonical serialized form. The memo itself is value-agnostic; only the
// experiment layer knows which key families exist and what Go type each
// holds, so it provides the codec (exp.MemoCodec). All methods must be
// safe for concurrent use and pure.
type Codec interface {
	// Exportable reports whether the key belongs to a serializable
	// family — a cheap prefix check, called while the memo lock is held.
	Exportable(key string) bool
	// Encode renders a value as canonical JSON; ok=false drops the entry
	// from exports (wrong dynamic type, value that does not round-trip).
	Encode(key string, val any) (json.RawMessage, bool)
	// Decode verifies and revives serialized bytes; ok=false rejects the
	// entry at import (schema drift, corruption) so the key recomputes.
	Decode(key string, raw json.RawMessage) (any, bool)
}

// NewMemo returns a memo bounded to cap entries; cap <= 0 means
// unbounded. Past cap, the least-recently-used settled entry is evicted
// (see the type comment for why that is result-neutral).
func NewMemo(cap int) *Memo {
	return &Memo{cap: cap, entries: make(map[string]*memoEntry), lru: list.New()}
}

// SetCodec installs the entry codec, enabling Export/Import/Keys. Safe
// to call repeatedly; the last codec wins.
func (m *Memo) SetCodec(c Codec) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.codec = c
	m.mu.Unlock()
}

// Do returns the memoized value for key, computing it with compute on
// first use. A nil *Memo computes directly — callers thread an optional
// memo without branching.
func (m *Memo) Do(key string, compute func() (any, error)) (any, error) {
	if m == nil {
		return compute()
	}
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry{key: key}
		m.entries[key] = e
		e.el = m.lru.PushFront(e)
		m.evictLocked()
	} else {
		m.hits++
		m.lru.MoveToFront(e.el)
	}
	m.mu.Unlock()

	mine := false
	e.once.Do(func() {
		mine = true
		e.val, e.err = compute()
	})
	if e.err == nil {
		if mine {
			m.mu.Lock()
			if m.entries[key] == e {
				e.settled = true
				m.computes++
				m.evictLocked()
			}
			m.mu.Unlock()
		}
		return e.val, nil
	}
	// Drop the failed entry so the key can be retried. Only the caller
	// whose compute produced the error reports it; waiters recompute so
	// another job's cancellation never leaks into their result.
	m.mu.Lock()
	if m.entries[key] == e {
		delete(m.entries, key)
		m.lru.Remove(e.el)
	}
	m.mu.Unlock()
	if mine {
		return nil, e.err
	}
	return compute()
}

// evictLocked drops settled entries from the LRU tail until residency is
// back within cap. In-flight entries are skipped — their waiters hold
// them — so residency can transiently exceed cap; the next settle or
// insert resumes evicting. Caller holds mu.
func (m *Memo) evictLocked() {
	if m.cap <= 0 {
		return
	}
	for el := m.lru.Back(); el != nil && len(m.entries) > m.cap; {
		prev := el.Prev()
		if e := el.Value.(*memoEntry); e.settled {
			delete(m.entries, e.key)
			m.lru.Remove(el)
			m.evictions++
		}
		el = prev
	}
}

// Keys returns the sorted keys of every settled, exportable resident
// entry — the memo's warm digest. Without a codec it returns nil.
func (m *Memo) Keys() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.codec == nil {
		return nil
	}
	keys := make([]string, 0, len(m.entries))
	for k, e := range m.entries {
		if e.settled && m.codec.Exportable(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Export serializes the named entries (nil keys = every exportable
// resident), sorted by key. Entries that are absent, in flight, or that
// the codec declines are silently skipped — exports are a warm-state
// snapshot, not a contract that every requested key exists.
func (m *Memo) Export(keys []string) []Entry {
	if m == nil {
		return nil
	}
	type pair struct {
		key string
		val any
	}
	m.mu.Lock()
	codec := m.codec
	if codec == nil {
		m.mu.Unlock()
		return nil
	}
	var pairs []pair
	if keys == nil {
		for k, e := range m.entries {
			if e.settled && codec.Exportable(k) {
				pairs = append(pairs, pair{k, e.val})
			}
		}
	} else {
		for _, k := range keys {
			if e, ok := m.entries[k]; ok && e.settled && codec.Exportable(k) {
				pairs = append(pairs, pair{k, e.val})
			}
		}
	}
	m.mu.Unlock()
	// Encode outside the lock: values are immutable once settled, and
	// encoding verifies a JSON round trip per entry.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	out := make([]Entry, 0, len(pairs))
	for _, p := range pairs {
		if raw, ok := codec.Encode(p.key, p.val); ok {
			out = append(out, Entry{V: EntryVersion, Key: p.key, Value: raw})
		}
	}
	return out
}

// Import replays exported entries into warm, settled residents,
// returning how many were installed. Each entry is verified by the
// codec before it is trusted (strict decode, round-trip exact); entries
// from other format versions, unknown key families, or failing
// verification are skipped — a bad import degrades to recomputation.
// Keys already resident (settled or in flight) are left alone: a local
// computation in progress beats a replay.
func (m *Memo) Import(entries []Entry) int {
	if m == nil || len(entries) == 0 {
		return 0
	}
	m.mu.Lock()
	codec := m.codec
	m.mu.Unlock()
	if codec == nil {
		return 0
	}
	installed := 0
	for _, ent := range entries {
		if ent.V != EntryVersion || !codec.Exportable(ent.Key) {
			continue
		}
		val, ok := codec.Decode(ent.Key, ent.Value)
		if !ok {
			continue
		}
		m.mu.Lock()
		if _, exists := m.entries[ent.Key]; !exists {
			e := &memoEntry{key: ent.Key, val: val, settled: true}
			e.once.Do(func() {}) // burn the once: Do must never recompute this entry
			m.entries[ent.Key] = e
			e.el = m.lru.PushFront(e)
			m.imports++
			installed++
			m.evictLocked()
		}
		m.mu.Unlock()
	}
	return installed
}

// Len reports the number of resident entries (including in-flight ones).
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Hits reports how many Do calls were served by an existing entry.
func (m *Memo) Hits() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits
}

// Computes reports how many entries were settled by running their
// compute function — the cold-path counter warm-restart tests pin to
// zero.
func (m *Memo) Computes() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.computes
}

// Evictions reports how many settled entries the LRU bound dropped.
func (m *Memo) Evictions() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// Imports reports how many entries Import installed.
func (m *Memo) Imports() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.imports
}
