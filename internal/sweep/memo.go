package sweep

import "sync"

// Memo is a single-flight result cache for sweep cells keyed by config
// fingerprint. Matrix experiments share baseline cells — fig12 and fig13
// run the identical VM-trace day, the energy matrix re-runs the same
// timing configuration the standalone figures use — and because every
// cell is a deterministic function of its config, computing each
// distinct cell once and handing the stored result to later callers is
// result-neutral: the memoized output is byte-for-byte the output the
// caller would have computed.
//
// Concurrency: Do is safe from any number of goroutines. The first
// caller of a key computes; concurrent callers of the same key block
// until that computation finishes (single-flight), so two parallel
// sweeps never duplicate a cell.
//
// Errors are never cached or served across callers: a cell that fails —
// most importantly one aborted by its own job's Stop hook — must not
// poison the key for jobs that were not canceled. On error the entry is
// dropped; a waiter that observed another caller's error recomputes with
// its own compute function (honoring its own hooks).
type Memo struct {
	mu      sync.Mutex
	cap     int
	hits    int64
	entries map[string]*memoEntry
}

type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewMemo returns a memo bounded to cap entries; cap <= 0 means
// unbounded. When the memo is full, unknown keys are computed uncached
// (correct, just not shared) rather than evicting — eviction would make
// hit patterns depend on timing, which is harder to reason about in a
// long-running daemon.
func NewMemo(cap int) *Memo {
	return &Memo{cap: cap, entries: make(map[string]*memoEntry)}
}

// Do returns the memoized value for key, computing it with compute on
// first use. A nil *Memo computes directly — callers thread an optional
// memo without branching.
func (m *Memo) Do(key string, compute func() (any, error)) (any, error) {
	if m == nil {
		return compute()
	}
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		if m.cap > 0 && len(m.entries) >= m.cap {
			m.mu.Unlock()
			return compute()
		}
		e = &memoEntry{}
		m.entries[key] = e
	} else {
		m.hits++
	}
	m.mu.Unlock()

	mine := false
	e.once.Do(func() {
		mine = true
		e.val, e.err = compute()
	})
	if e.err == nil {
		return e.val, nil
	}
	// Drop the failed entry so the key can be retried. Only the caller
	// whose compute produced the error reports it; waiters recompute so
	// another job's cancellation never leaks into their result.
	m.mu.Lock()
	if m.entries[key] == e {
		delete(m.entries, key)
	}
	m.mu.Unlock()
	if mine {
		return nil, e.err
	}
	return compute()
}

// Len reports the number of resident entries (including in-flight ones).
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Hits reports how many Do calls were served by an existing entry.
func (m *Memo) Hits() int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits
}
