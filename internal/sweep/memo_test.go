package sweep

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOncePerKey(t *testing.T) {
	m := NewMemo(0)
	var computes int32
	for i := 0; i < 5; i++ {
		v, err := m.Do("k", func() (any, error) {
			atomic.AddInt32(&computes, 1)
			return 42, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("got %v, want 42", v)
		}
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if m.Len() != 1 || m.Hits() != 4 {
		t.Fatalf("Len=%d Hits=%d, want 1 and 4", m.Len(), m.Hits())
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo(0)
	var computes int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := m.Do("k", func() (any, error) {
				atomic.AddInt32(&computes, 1)
				return "v", nil
			})
			if err != nil || v.(string) != "v" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("concurrent Do computed %d times, want 1", computes)
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	m := NewMemo(0)
	boom := errors.New("boom")
	if _, err := m.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if m.Len() != 0 {
		t.Fatalf("failed entry retained: Len = %d", m.Len())
	}
	v, err := m.Do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
}

// A waiter that joins a computation which then fails (e.g. the computing
// job was canceled) must not inherit that error: it recomputes with its
// own function.
func TestMemoWaiterRecomputesAfterOthersError(t *testing.T) {
	m := NewMemo(0)
	canceled := errors.New("canceled")
	inCompute := make(chan struct{})
	release := make(chan struct{})
	var waiterV any
	var waiterErr error
	done := make(chan struct{})
	go func() {
		_, _ = m.Do("k", func() (any, error) {
			close(inCompute)
			<-release
			return nil, canceled
		})
		close(done)
	}()
	<-inCompute
	waitDone := make(chan struct{})
	go func() {
		waiterV, waiterErr = m.Do("k", func() (any, error) { return 99, nil })
		close(waitDone)
	}()
	close(release)
	<-done
	<-waitDone
	if waiterErr != nil || waiterV.(int) != 99 {
		t.Fatalf("waiter got %v, %v; want 99 from its own recompute", waiterV, waiterErr)
	}
}

func TestMemoLRUEvictsOldest(t *testing.T) {
	m := NewMemo(2)
	compute := func(v int) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	if _, err := m.Do("k0", compute(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do("k1", compute(1)); err != nil {
		t.Fatal(err)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, err := m.Do("k0", compute(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do("k2", compute(2)); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || m.Evictions() != 1 {
		t.Fatalf("Len=%d Evictions=%d, want 2 and 1", m.Len(), m.Evictions())
	}
	// k0 must still be resident (hit, no recompute); k1 must have been
	// evicted (recomputes).
	hits := m.Hits()
	recomputed := false
	if _, err := m.Do("k0", func() (any, error) { recomputed = true; return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if recomputed || m.Hits() != hits+1 {
		t.Fatalf("k0 was evicted; want the recently-used key retained")
	}
	recomputed = false
	if _, err := m.Do("k1", func() (any, error) { recomputed = true; return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatalf("k1 still resident; want the least-recently-used key evicted")
	}
}

func TestMemoConcurrentDoAtCap(t *testing.T) {
	m := NewMemo(4)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				want := (g + i) % 12
				v, err := m.Do(key, func() (any, error) { return want, nil })
				if err != nil || v.(int) != want {
					t.Errorf("Do(%s) = %v, %v; want %d", key, v, err, want)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	// Every in-flight compute has settled, so residency must be back
	// within the bound, and the accounting must cover every call.
	if m.Len() > 4 {
		t.Fatalf("Len = %d after quiescence, want <= cap 4", m.Len())
	}
	if total := m.Hits() + m.Computes(); total != 8*50 {
		t.Fatalf("hits+computes = %d, want %d (every Do accounted)", total, 8*50)
	}
}

func TestMemoErrorNotCachedUnderEvictionPressure(t *testing.T) {
	m := NewMemo(1)
	boom := errors.New("boom")
	if _, err := m.Do("good", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Do("bad", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	// The failed key must never become resident — each retry recomputes —
	// and residency stays within cap throughout.
	if m.Len() > 1 {
		t.Fatalf("Len = %d, want <= 1", m.Len())
	}
	recomputed := false
	if v, err := m.Do("bad", func() (any, error) { recomputed = true; return 9, nil }); err != nil || v.(int) != 9 {
		t.Fatalf("recovery Do = %v, %v", v, err)
	}
	if !recomputed {
		t.Fatal("failed entry was served from cache")
	}
}

func TestMemoNilComputesDirectly(t *testing.T) {
	var m *Memo
	v, err := m.Do("k", func() (any, error) { return 1, nil })
	if err != nil || v.(int) != 1 {
		t.Fatalf("nil memo Do = %v, %v", v, err)
	}
	if m.Len() != 0 || m.Hits() != 0 {
		t.Fatal("nil memo must report zero Len/Hits")
	}
}
