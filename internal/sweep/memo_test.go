package sweep

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOncePerKey(t *testing.T) {
	m := NewMemo(0)
	var computes int32
	for i := 0; i < 5; i++ {
		v, err := m.Do("k", func() (any, error) {
			atomic.AddInt32(&computes, 1)
			return 42, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("got %v, want 42", v)
		}
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if m.Len() != 1 || m.Hits() != 4 {
		t.Fatalf("Len=%d Hits=%d, want 1 and 4", m.Len(), m.Hits())
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo(0)
	var computes int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := m.Do("k", func() (any, error) {
				atomic.AddInt32(&computes, 1)
				return "v", nil
			})
			if err != nil || v.(string) != "v" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("concurrent Do computed %d times, want 1", computes)
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	m := NewMemo(0)
	boom := errors.New("boom")
	if _, err := m.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if m.Len() != 0 {
		t.Fatalf("failed entry retained: Len = %d", m.Len())
	}
	v, err := m.Do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
}

// A waiter that joins a computation which then fails (e.g. the computing
// job was canceled) must not inherit that error: it recomputes with its
// own function.
func TestMemoWaiterRecomputesAfterOthersError(t *testing.T) {
	m := NewMemo(0)
	canceled := errors.New("canceled")
	inCompute := make(chan struct{})
	release := make(chan struct{})
	var waiterV any
	var waiterErr error
	done := make(chan struct{})
	go func() {
		_, _ = m.Do("k", func() (any, error) {
			close(inCompute)
			<-release
			return nil, canceled
		})
		close(done)
	}()
	<-inCompute
	waitDone := make(chan struct{})
	go func() {
		waiterV, waiterErr = m.Do("k", func() (any, error) { return 99, nil })
		close(waitDone)
	}()
	close(release)
	<-done
	<-waitDone
	if waiterErr != nil || waiterV.(int) != 99 {
		t.Fatalf("waiter got %v, %v; want 99 from its own recompute", waiterV, waiterErr)
	}
}

func TestMemoCapComputesUncached(t *testing.T) {
	m := NewMemo(2)
	for i := 0; i < 2; i++ {
		if _, err := m.Do(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	var computes int
	for i := 0; i < 3; i++ {
		v, err := m.Do("overflow", func() (any, error) {
			computes++
			return "x", nil
		})
		if err != nil || v.(string) != "x" {
			t.Fatalf("overflow Do = %v, %v", v, err)
		}
	}
	if computes != 3 {
		t.Fatalf("overflow key computed %d times, want 3 (uncached)", computes)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (cap respected)", m.Len())
	}
}

func TestMemoNilComputesDirectly(t *testing.T) {
	var m *Memo
	v, err := m.Do("k", func() (any, error) { return 1, nil })
	if err != nil || v.(int) != 1 {
		t.Fatalf("nil memo Do = %v, %v", v, err)
	}
	if m.Len() != 0 || m.Hits() != 0 {
		t.Fatal("nil memo must report zero Len/Hits")
	}
}
