package sweep

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// testCodec serializes int values under the "t|" key family — the
// smallest codec exercising the Exportable/Encode/Decode contract.
type testCodec struct{}

func (testCodec) Exportable(key string) bool { return strings.HasPrefix(key, "t|") }

func (testCodec) Encode(key string, val any) (json.RawMessage, bool) {
	n, ok := val.(int)
	if !ok {
		return nil, false
	}
	b, err := json.Marshal(n)
	return b, err == nil
}

func (testCodec) Decode(key string, raw json.RawMessage) (any, bool) {
	var n int
	if err := json.Unmarshal(raw, &n); err != nil {
		return nil, false
	}
	return n, true
}

func fill(t *testing.T, m *Memo, kv map[string]int) {
	t.Helper()
	for k, v := range kv {
		if _, err := m.Do(k, func() (any, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemoKeysAndExport(t *testing.T) {
	m := NewMemo(0)
	m.SetCodec(testCodec{})
	fill(t, m, map[string]int{"t|b": 2, "t|a": 1, "x|c": 3})

	if got, want := m.Keys(), []string{"t|a", "t|b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys() = %v, want %v (sorted, exportable families only)", got, want)
	}
	entries := m.Export(nil)
	if len(entries) != 2 || entries[0].Key != "t|a" || entries[1].Key != "t|b" {
		t.Fatalf("Export(nil) = %+v, want t|a then t|b", entries)
	}
	for _, e := range entries {
		if e.V != EntryVersion {
			t.Fatalf("entry %s has version %d, want %d", e.Key, e.V, EntryVersion)
		}
	}
	// Subsets skip absent keys silently.
	sub := m.Export([]string{"t|b", "t|missing"})
	if len(sub) != 1 || sub[0].Key != "t|b" {
		t.Fatalf("Export(subset) = %+v, want only t|b", sub)
	}
}

func TestMemoImportRoundTrip(t *testing.T) {
	src := NewMemo(0)
	src.SetCodec(testCodec{})
	fill(t, src, map[string]int{"t|a": 1, "t|b": 2})

	dst := NewMemo(0)
	dst.SetCodec(testCodec{})
	if n := dst.Import(src.Export(nil)); n != 2 {
		t.Fatalf("Import = %d, want 2", n)
	}
	if dst.Imports() != 2 {
		t.Fatalf("Imports() = %d, want 2", dst.Imports())
	}
	// Imported entries serve without recomputing.
	recomputed := false
	v, err := dst.Do("t|a", func() (any, error) { recomputed = true; return -1, nil })
	if err != nil || v.(int) != 1 || recomputed {
		t.Fatalf("Do after import = %v, %v (recomputed=%v); want warm 1", v, err, recomputed)
	}
	if dst.Computes() != 0 {
		t.Fatalf("Computes() = %d after warm-only serving, want 0", dst.Computes())
	}
	// And re-export byte-identically.
	if a, b := src.Export(nil), dst.Export(nil); !reflect.DeepEqual(a, b) {
		t.Fatalf("re-export diverged:\n src %+v\n dst %+v", a, b)
	}
}

func TestMemoImportRejectsBadEntries(t *testing.T) {
	m := NewMemo(0)
	m.SetCodec(testCodec{})
	bad := []Entry{
		{V: EntryVersion + 1, Key: "t|v", Value: json.RawMessage(`1`)}, // wrong version
		{V: EntryVersion, Key: "x|f", Value: json.RawMessage(`1`)},     // unknown family
		{V: EntryVersion, Key: "t|c", Value: json.RawMessage(`"s"`)},   // fails decode
	}
	if n := m.Import(bad); n != 0 {
		t.Fatalf("Import(bad) = %d, want 0", n)
	}
	if m.Len() != 0 {
		t.Fatalf("bad entries became resident: Len = %d", m.Len())
	}
}

func TestMemoImportKeepsResident(t *testing.T) {
	m := NewMemo(0)
	m.SetCodec(testCodec{})
	fill(t, m, map[string]int{"t|a": 7})
	if n := m.Import([]Entry{{V: EntryVersion, Key: "t|a", Value: json.RawMessage(`99`)}}); n != 0 {
		t.Fatalf("Import over resident key = %d, want 0 (local entry wins)", n)
	}
	v, err := m.Do("t|a", func() (any, error) { return -1, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("resident value overwritten: got %v, want 7", v)
	}
}

func TestMemoImportEvictsWithinCap(t *testing.T) {
	m := NewMemo(2)
	m.SetCodec(testCodec{})
	src := NewMemo(0)
	src.SetCodec(testCodec{})
	fill(t, src, map[string]int{"t|a": 1, "t|b": 2, "t|c": 3, "t|d": 4})
	m.Import(src.Export(nil))
	if m.Len() != 2 {
		t.Fatalf("Len = %d after over-cap import, want 2", m.Len())
	}
}

func TestMemoNoCodecDisablesExchange(t *testing.T) {
	m := NewMemo(0)
	fill(t, m, map[string]int{"t|a": 1})
	if m.Keys() != nil || m.Export(nil) != nil {
		t.Fatal("codec-less memo must not export")
	}
	if n := m.Import([]Entry{{V: EntryVersion, Key: "t|a", Value: json.RawMessage(`1`)}}); n != 0 {
		t.Fatalf("codec-less Import = %d, want 0", n)
	}
}
