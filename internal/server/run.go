package server

import (
	"fmt"
	"strings"
	"sync"

	"greendimm/internal/exp"
	"greendimm/internal/obs"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/sweep"
)

// Result is the output of one executed job: the experiment's tables and
// series (rendered text included, byte-identical to the CLI), plus the
// sim-time/wall-time accounting the metrics endpoint aggregates.
type Result struct {
	Tables []*report.Table  `json:"tables,omitempty"`
	Series []report.Series  `json:"series,omitempty"`
	VMDay  *exp.VMDayResult `json:"vmday,omitempty"`
	// Text is the human-readable rendering of Tables and Series — what
	// `greendimm -experiment <id>` prints for the same spec.
	Text string `json:"text"`
	// SimSeconds is the total simulated time advanced across every
	// engine the job created.
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is the job's execution time on its worker (filled by
	// the pool, zero on cache hits — that being the point).
	WallSeconds float64 `json:"wall_seconds"`
}

// RunHooks carries one execution's cancellation and observability hooks
// — the server's worker pool fills all three; library callers (the CLI,
// the cluster's local fallback) pass what they need. Every field is
// optional; the zero RunHooks runs uninstrumented and never stops. None
// of them influence results: they gate whether a run proceeds and record
// where its wall time went, nothing else.
type RunHooks struct {
	// Stop (nil = never) is polled from the engines' event loops and
	// between sweep cells; true aborts the run, whose partial result must
	// then be discarded.
	Stop func() bool
	// Trace, when non-nil, receives per-cell "cell" spans via exp.Hooks.
	Trace *obs.Trace
	// Progress, when non-nil, is called after each sweep cell completes
	// (serialized; see exp.Hooks.Progress).
	Progress func(done, total int, cellSeconds float64)
}

// stop returns the effective stop predicate, never nil.
func (h RunHooks) stop() func() bool {
	if h.Stop == nil {
		return func() bool { return false }
	}
	return h.Stop
}

// Execute runs one job spec in-process, outside any worker pool: it
// normalizes the spec and executes it serially with no sweep budget.
// This is the cluster dispatcher's local-fallback path; because runSpec
// is deterministic, the Result (minus WallSeconds, which Execute leaves
// zero) is byte-identical to what any greendimmd backend returns for the
// same spec.
func Execute(spec JobSpec, h RunHooks) (*Result, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, &InvalidSpecError{Err: err}
	}
	return runSpec(norm, h, nil, nil)
}

// runSpec executes a normalized spec under h's hooks. limiter (nil =
// unbounded) gates any extra sweep workers the job's parallelism
// requests, so per-job fan-out and the worker pool share one CPU
// budget. memo (nil = none) caches baseline cells across the jobs that
// share it — the daemon installs one server-wide memo so, e.g., fig12
// and fig13 jobs compute their common traced day once. Deterministic:
// the same spec always yields the same Tables, Series, VMDay and Text,
// at every parallelism, under any hooks, with or without a memo.
func runSpec(spec JobSpec, h RunHooks, limiter *sweep.Limiter, memo *sweep.Memo) (*Result, error) {
	// Observe is called from concurrent sweep cells when parallelism > 1.
	var mu sync.Mutex
	var engines []*sim.Engine
	hooks := exp.Hooks{
		Stop: h.stop(),
		Observe: func(e *sim.Engine) {
			mu.Lock()
			engines = append(engines, e)
			mu.Unlock()
		},
		Limiter:      limiter,
		EngineShards: spec.EngineShards,
		Trace:        h.Trace,
		Progress:     h.Progress,
	}
	parallelism := spec.Parallelism
	if parallelism == 0 {
		parallelism = 1 // serial inside the job; the pool parallelizes across jobs
	}
	res := &Result{}
	switch spec.Kind {
	case KindExperiment:
		fn := exp.Registry()[spec.Experiment.ID]
		if fn == nil {
			return nil, fmt.Errorf("unknown experiment %q", spec.Experiment.ID)
		}
		tables, series, err := fn(exp.Options{
			Quick:       spec.Experiment.Quick,
			Seed:        spec.Experiment.Seed,
			Parallelism: parallelism,
			Hooks:       hooks,
			Memo:        memo,
		})
		if err != nil {
			return nil, err
		}
		res.Tables, res.Series = tables, series
	case KindVMServer:
		day, err := exp.RunVMScenario(*spec.VMServer, hooks)
		if err != nil {
			return nil, err
		}
		res.VMDay = &day
		res.Tables = []*report.Table{vmScenarioTable(*spec.VMServer, day)}
		res.Series = vmScenarioSeries(day)
	default:
		return nil, fmt.Errorf("unknown kind %q", spec.Kind)
	}
	for _, e := range engines {
		res.SimSeconds += e.Now().Seconds()
	}
	res.Text = renderText(res.Tables, res.Series)
	return res, nil
}

// renderText reproduces the CLI's per-experiment output: each table, then
// one sparkline per series.
func renderText(tables []*report.Table, series []report.Series) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, s := range series {
		fmt.Fprintf(&b, "  %-10s %s\n", s.Name, s.Sparkline(64))
	}
	return b.String()
}

// vmScenarioTable summarizes one VM-server run the way Fig. 12's rows do.
func vmScenarioTable(s exp.VMScenario, r exp.VMDayResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("VM server: %dGB, %gh, ksm=%v, greendimm=%v", s.CapacityGB, s.Hours, s.KSM, s.GreenDIMM),
		"value")
	t.AddRow("avg used %", r.AvgUsedFrac*100)
	t.AddRow("min used %", r.MinUsedFrac*100)
	t.AddRow("max used %", r.MaxUsedFrac*100)
	t.AddRow("avg cpu util %", r.AvgCPUUtil*100)
	t.AddRow("avg off-lined blocks", r.AvgOffBlocks)
	t.AddRow("avg dpd frac %", r.AvgDPDFrac*100)
	t.AddRow("ksm saved GB (avg)", float64(r.KSMSavedAvg)/float64(1<<30))
	t.AddRow("avg dram W", r.AvgDRAMPowerW)
	t.AddRow("avg system W", r.AvgSystemW)
	t.AddRow("bg power reduction %", r.BGReductionPct)
	return t
}

// vmScenarioSeries plots utilization, off-lined blocks and the DPD
// fraction over the run.
func vmScenarioSeries(r exp.VMDayResult) []report.Series {
	used := report.Series{Name: "used-frac"}
	off := report.Series{Name: "off-blocks"}
	dpd := report.Series{Name: "dpd-frac"}
	for _, s := range r.Samples {
		h := s.At.Seconds() / 3600
		used.Add(h, s.UsedFrac)
		off.Add(h, float64(s.OfflinedBlocks))
		dpd.Add(h, s.DPDFrac)
	}
	return []report.Series{used, off, dpd}
}
