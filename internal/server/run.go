package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"greendimm/internal/exp"
	"greendimm/internal/obs"
	"greendimm/internal/report"
	"greendimm/internal/sim"
	"greendimm/internal/sweep"
)

// Result is the output of one executed job: the experiment's tables and
// series (rendered text included, byte-identical to the CLI), plus the
// sim-time/wall-time accounting the metrics endpoint aggregates.
type Result struct {
	Tables []*report.Table  `json:"tables,omitempty"`
	Series []report.Series  `json:"series,omitempty"`
	VMDay  *exp.VMDayResult `json:"vmday,omitempty"`
	// Cells holds the completed cell artifacts of a range job (a spec
	// with Cells set), sorted by key. Range jobs return ONLY artifacts:
	// Tables/Series/Text are empty and SimSeconds is zero, so the result
	// bytes are a pure function of the spec — a peer serving the range
	// from a warm memo and a peer simulating it from cold agree exactly,
	// which the cluster's divergence cross-check requires.
	Cells []exp.CellArtifact `json:"cells,omitempty"`
	// Text is the human-readable rendering of Tables and Series — what
	// `greendimm -experiment <id>` prints for the same spec.
	Text string `json:"text"`
	// SimSeconds is the total simulated time advanced across every
	// engine the job created.
	SimSeconds float64 `json:"sim_seconds"`
	// WallSeconds is the job's execution time on its worker (filled by
	// the pool, zero on cache hits — that being the point).
	WallSeconds float64 `json:"wall_seconds"`
}

// RunHooks carries one execution's cancellation and observability hooks
// — the server's worker pool fills all three; library callers (the CLI,
// the cluster's local fallback) pass what they need. Every field is
// optional; the zero RunHooks runs uninstrumented and never stops. None
// of them influence results: they gate whether a run proceeds and record
// where its wall time went, nothing else.
type RunHooks struct {
	// Stop (nil = never) is polled from the engines' event loops and
	// between sweep cells; true aborts the run, whose partial result must
	// then be discarded.
	Stop func() bool
	// Trace, when non-nil, receives per-cell "cell" spans via exp.Hooks.
	Trace *obs.Trace
	// Progress, when non-nil, is called after each sweep cell completes
	// (serialized; see exp.Hooks.Progress).
	Progress func(done, total int, cellSeconds float64)
	// Cells, when non-nil, replays previously completed cell artifacts:
	// memoized cells found in the set (verified byte-exact) are served
	// without simulating. Execution knob — replay can only change how
	// long a run takes, never its bytes. The daemon fills it from the
	// job store on recovery/resume; the cluster merge fills it with the
	// shards' collected artifacts.
	Cells *exp.CellSet
	// CellObserved, when non-nil, receives every cell artifact the run
	// resolves by computing or by memo hit (replays from Cells are not
	// re-offered). Called from concurrent sweep cells — must be safe for
	// concurrent use. The daemon journals these to the job store.
	CellObserved func(exp.CellArtifact)
	// Ranges carries the shard-execution transport between the daemon
	// and the cluster's shard runner. runSpec itself ignores it: range
	// state is journal bookkeeping, not simulation input.
	Ranges *RangeLog
}

// RangeLog is the shard runner's view of a job's durable range state:
// which cell ranges are already complete (skip them), and where to
// journal the plan and each completed range. All fields optional.
type RangeLog struct {
	// Done lists completed [lo,hi) ranges from a previous run of the
	// same spec; the shard planner executes only the complement.
	Done [][2]int
	// OnPlan is called once with the sweep's total cell count and the
	// planned shard ranges, before any shard executes.
	OnPlan func(total int, ranges [][2]int)
	// OnDone is called as each range's cells finish, after every cell in
	// [lo,hi) has been offered to CellObserved — the ordering the store
	// relies on to trust a done range.
	OnDone func(lo, hi int)
}

// stop returns the effective stop predicate, never nil.
func (h RunHooks) stop() func() bool {
	if h.Stop == nil {
		return func() bool { return false }
	}
	return h.Stop
}

// Execute runs one job spec in-process, outside any worker pool: it
// normalizes the spec and executes it serially with no sweep budget.
// This is the cluster dispatcher's local-fallback path; because runSpec
// is deterministic, the Result (minus WallSeconds, which Execute leaves
// zero) is byte-identical to what any greendimmd backend returns for the
// same spec.
func Execute(spec JobSpec, h RunHooks) (*Result, error) {
	norm, err := spec.normalized()
	if err != nil {
		return nil, &InvalidSpecError{Err: err}
	}
	return runSpec(norm, h, nil, nil)
}

// runSpec executes a normalized spec under h's hooks. limiter (nil =
// unbounded) gates any extra sweep workers the job's parallelism
// requests, so per-job fan-out and the worker pool share one CPU
// budget. memo (nil = none) caches baseline cells across the jobs that
// share it — the daemon installs one server-wide memo so, e.g., fig12
// and fig13 jobs compute their common traced day once. Deterministic:
// the same spec always yields the same Tables, Series, VMDay and Text,
// at every parallelism, under any hooks, with or without a memo.
func runSpec(spec JobSpec, h RunHooks, limiter *sweep.Limiter, memo *sweep.Memo) (*Result, error) {
	// Observe is called from concurrent sweep cells when parallelism > 1.
	var mu sync.Mutex
	var engines []*sim.Engine
	hooks := exp.Hooks{
		Stop: h.stop(),
		Observe: func(e *sim.Engine) {
			mu.Lock()
			engines = append(engines, e)
			mu.Unlock()
		},
		Limiter:      limiter,
		EngineShards: spec.EngineShards,
		Trace:        h.Trace,
		Progress:     h.Progress,
	}
	parallelism := spec.Parallelism
	if parallelism == 0 {
		parallelism = 1 // serial inside the job; the pool parallelizes across jobs
	}
	res := &Result{}
	switch spec.Kind {
	case KindExperiment:
		fn := exp.Registry()[spec.Experiment.ID]
		if fn == nil {
			return nil, fmt.Errorf("unknown experiment %q", spec.Experiment.ID)
		}
		opts := exp.Options{
			Quick:       spec.Experiment.Quick,
			Seed:        spec.Experiment.Seed,
			Parallelism: parallelism,
			Hooks:       hooks,
			Memo:        memo,
			CellSource:  h.Cells,
		}
		// Collect artifacts when anyone wants them: a range job returns
		// them as its result; a full job with CellObserved journals them.
		var cellMu sync.Mutex
		var collected []exp.CellArtifact
		isRange := spec.Cells != nil
		if isRange || h.CellObserved != nil {
			observe := h.CellObserved
			opts.CellSink = func(a exp.CellArtifact) {
				a = a.Compact()
				if observe != nil {
					observe(a)
				}
				if isRange {
					cellMu.Lock()
					collected = append(collected, a)
					cellMu.Unlock()
				}
			}
		}
		if isRange {
			opts.CellRange = &exp.CellRange{Lo: spec.Cells.Lo, Hi: spec.Cells.Hi}
		}
		tables, series, err := fn(opts)
		var rd *exp.RangeDone
		if errors.As(err, &rd) {
			if !isRange {
				return nil, fmt.Errorf("experiment %q returned a range sentinel without a range", spec.Experiment.ID)
			}
			cells, err := sortCells(collected)
			if err != nil {
				return nil, err
			}
			// SimSeconds deliberately stays zero: a warm-memo peer
			// simulates less for the same range, and the artifact set —
			// not execution accounting — is the deterministic payload.
			return &Result{Cells: cells}, nil
		}
		if err != nil {
			return nil, err
		}
		if isRange {
			return nil, fmt.Errorf("experiment %q ignored the cell range", spec.Experiment.ID)
		}
		res.Tables, res.Series = tables, series
	case KindVMServer:
		day, err := exp.RunVMScenario(*spec.VMServer, hooks)
		if err != nil {
			return nil, err
		}
		res.VMDay = &day
		res.Tables = []*report.Table{vmScenarioTable(*spec.VMServer, day)}
		res.Series = vmScenarioSeries(day)
	default:
		return nil, fmt.Errorf("unknown kind %q", spec.Kind)
	}
	for _, e := range engines {
		res.SimSeconds += e.Now().Seconds()
	}
	res.Text = renderText(res.Tables, res.Series)
	return res, nil
}

// sortCells canonicalizes a range run's collected artifacts: sorted by
// key, duplicates collapsed. Two artifacts under one key must carry the
// same bytes (cells are pure functions of their keys); disagreement
// means the determinism invariant broke, which must surface, not be
// papered over by picking a winner.
func sortCells(cells []exp.CellArtifact) ([]exp.CellArtifact, error) {
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key < cells[j].Key })
	out := cells[:0]
	for _, c := range cells {
		if n := len(out); n > 0 && out[n-1].Key == c.Key {
			if string(out[n-1].Value) != string(c.Value) {
				return nil, fmt.Errorf("cell %q produced two different values in one run", c.Key)
			}
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

// CellCount reports how many sweep cells the spec's experiment runs,
// without simulating any (an empty probe range). The spec must be an
// experiment job; its own Cells field is ignored — the count describes
// the full sweep.
func CellCount(spec JobSpec) (int, error) {
	norm, err := spec.normalized()
	if err != nil {
		return 0, &InvalidSpecError{Err: err}
	}
	if norm.Kind != KindExperiment {
		return 0, fmt.Errorf("kind %q has no cell sweep", norm.Kind)
	}
	return exp.CellCount(norm.Experiment.ID, exp.Options{
		Quick: norm.Experiment.Quick,
		Seed:  norm.Experiment.Seed,
	})
}

// renderText reproduces the CLI's per-experiment output: each table, then
// one sparkline per series.
func renderText(tables []*report.Table, series []report.Series) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, s := range series {
		fmt.Fprintf(&b, "  %-10s %s\n", s.Name, s.Sparkline(64))
	}
	return b.String()
}

// vmScenarioTable summarizes one VM-server run the way Fig. 12's rows do.
func vmScenarioTable(s exp.VMScenario, r exp.VMDayResult) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("VM server: %dGB, %gh, ksm=%v, greendimm=%v", s.CapacityGB, s.Hours, s.KSM, s.GreenDIMM),
		"value")
	t.AddRow("avg used %", r.AvgUsedFrac*100)
	t.AddRow("min used %", r.MinUsedFrac*100)
	t.AddRow("max used %", r.MaxUsedFrac*100)
	t.AddRow("avg cpu util %", r.AvgCPUUtil*100)
	t.AddRow("avg off-lined blocks", r.AvgOffBlocks)
	t.AddRow("avg dpd frac %", r.AvgDPDFrac*100)
	t.AddRow("ksm saved GB (avg)", float64(r.KSMSavedAvg)/float64(1<<30))
	t.AddRow("avg dram W", r.AvgDRAMPowerW)
	t.AddRow("avg system W", r.AvgSystemW)
	t.AddRow("bg power reduction %", r.BGReductionPct)
	return t
}

// vmScenarioSeries plots utilization, off-lined blocks and the DPD
// fraction over the run.
func vmScenarioSeries(r exp.VMDayResult) []report.Series {
	used := report.Series{Name: "used-frac"}
	off := report.Series{Name: "off-blocks"}
	dpd := report.Series{Name: "dpd-frac"}
	for _, s := range r.Samples {
		h := s.At.Seconds() / 3600
		used.Add(h, s.UsedFrac)
		off.Add(h, float64(s.OfflinedBlocks))
		dpd.Add(h, s.DPDFrac)
	}
	return []report.Series{used, off, dpd}
}
