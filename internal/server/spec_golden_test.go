package server

import (
	"encoding/json"
	"testing"

	"greendimm/internal/core"
	"greendimm/internal/exp"
)

// TestSpecHashGolden pins SpecHash against committed hex values. The
// hash is the durable store's record key and the cluster's divergence
// cross-check key: if any of these change, journaled jobs from older
// daemons stop matching their own specs at recovery and warm caches go
// cold fleet-wide. An intentional cache-key change (adding a field that
// affects results) must update these goldens in the same commit — and
// must be called out as a store-compatibility break.
//
// The fourth case pins the most load-bearing property: a spec WITHOUT
// Cells must hash exactly as it did before the Cells field existed,
// so pre-shard-era journals and caches stay valid.
func TestSpecHashGolden(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{
			name: "experiment defaults",
			spec: JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8"}},
			want: "dc1e567e31085e9da1b00491da492af334542b8b8181521f400d1d7f03060c6a",
		},
		{
			name: "experiment quick seeded",
			spec: JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Quick: true, Seed: 7}},
			want: "c71737ad1e7793da873bba864e4e662458ac0425a9b7475855f0fc2eeeed11a3",
		},
		{
			name: "experiment cell range",
			spec: JobSpec{
				Kind:       KindExperiment,
				Experiment: &ExperimentSpec{ID: "fig8", Quick: true},
				Cells:      &CellRangeSpec{Lo: 0, Hi: 6},
			},
			want: "a5923da09bbbe729f21b834f9485eededd24648ade9ee01cbced48c9b0a1bb32",
		},
		{
			name: "vmserver",
			spec: JobSpec{
				Kind:     KindVMServer,
				VMServer: &exp.VMScenario{CapacityGB: 64, Hours: 0.05, GreenDIMM: true, Seed: 3},
			},
			want: "f1261375306586c2d8e264d5404f66d4559a742e0c35ccb3d1d3b2acce052b5d",
		},
		// The two legacy-policy pins were captured BEFORE the policy
		// pipeline replaced the SelectPolicy enum: a bare policy string in
		// a job spec must keep its pre-pipeline hash, or every journaled
		// legacy job goes cold.
		{
			name: "vmserver legacy removable-first",
			spec: JobSpec{
				Kind: KindVMServer,
				VMServer: &exp.VMScenario{CapacityGB: 64, Hours: 0.05, GreenDIMM: true, Seed: 5,
					Policy: core.PolicySpec{Name: core.PolicyRemovableFirst}},
			},
			want: "87c3bfb89de389a1f54ef0140f0ad4944aeb2405e0b3b4fe5cfbb76482006ecf",
		},
		{
			name: "vmserver legacy random with ksm",
			spec: JobSpec{
				Kind: KindVMServer,
				VMServer: &exp.VMScenario{KSM: true, GreenDIMM: true, Hours: 0.25, Seed: 1,
					Policy: core.PolicySpec{Name: core.PolicyRandom}},
			},
			want: "933115ea7812008e4e7730dc0c838d8deea403c8326a15cd4828979c99d8f8c8",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := SpecHash(tc.spec)
			if err != nil {
				t.Fatalf("SpecHash: %v", err)
			}
			if got != tc.want {
				t.Fatalf("SpecHash changed:\n got %s\nwant %s\nIf deliberate, update the golden and flag the store-compatibility break.", got, tc.want)
			}
		})
	}

	// Execution knobs must NOT move the hash: specs differing only in
	// timeout/parallelism/engine_shards share one cache entry.
	base := JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Quick: true}}
	knobbed := base
	knobbed.TimeoutSec = 30
	knobbed.Parallelism = 4
	knobbed.EngineShards = 2
	h1, err1 := SpecHash(base)
	h2, err2 := SpecHash(knobbed)
	if err1 != nil || err2 != nil {
		t.Fatalf("SpecHash: %v / %v", err1, err2)
	}
	if h1 != h2 {
		t.Fatalf("execution knobs moved the hash: %s vs %s", h1, h2)
	}

	// Seed 0 normalizes to the CLI default (1), so the two spell one job.
	hd, _ := SpecHash(JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8"}})
	hs, _ := SpecHash(JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Seed: 1}})
	if hd != hs {
		t.Fatalf("seed default did not normalize: %s vs %s", hd, hs)
	}
}

// TestSpecHashPolicyForms proves the redesigned policy field is
// wire-compatible: the legacy bare string, the equivalent structured
// object, and the zero (omitted) field all normalize to one spec hash.
func TestSpecHashPolicyForms(t *testing.T) {
	parse := func(raw string) JobSpec {
		t.Helper()
		var s JobSpec
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		return s
	}
	legacy := parse(`{"kind":"vmserver","vmserver":{"greendimm":true,"ksm":false,"policy":"removable-first"}}`)
	object := parse(`{"kind":"vmserver","vmserver":{"greendimm":true,"ksm":false,"policy":{"name":"removable-first"}}}`)
	hLegacy, err := SpecHash(legacy)
	if err != nil {
		t.Fatal(err)
	}
	hObject, err := SpecHash(object)
	if err != nil {
		t.Fatal(err)
	}
	if hLegacy != hObject {
		t.Fatalf("string and object policy forms hash apart: %s vs %s", hLegacy, hObject)
	}

	// Omitted policy == explicit free-first (string or object form).
	omitted := parse(`{"kind":"vmserver","vmserver":{"greendimm":true,"ksm":false}}`)
	explicit := parse(`{"kind":"vmserver","vmserver":{"greendimm":true,"ksm":false,"policy":"free-first"}}`)
	hOmitted, _ := SpecHash(omitted)
	hExplicit, _ := SpecHash(explicit)
	if hOmitted != hExplicit {
		t.Fatalf("omitted policy hashes apart from explicit free-first: %s vs %s", hOmitted, hExplicit)
	}

	// Tracker-backed specs: defaulted and fully spelled params are one
	// job; a changed param value is a different job.
	sparse := parse(`{"kind":"vmserver","vmserver":{"greendimm":true,"ksm":false,"policy":{"name":"age-threshold"}}}`)
	spelled := parse(`{"kind":"vmserver","vmserver":{"greendimm":true,"ksm":false,` +
		`"policy":{"name":"age-threshold","tracker":"idle-age","params":{"min_idle_s":5}}}}`)
	changed := parse(`{"kind":"vmserver","vmserver":{"greendimm":true,"ksm":false,` +
		`"policy":{"name":"age-threshold","params":{"min_idle_s":9}}}}`)
	hSparse, err := SpecHash(sparse)
	if err != nil {
		t.Fatal(err)
	}
	hSpelled, _ := SpecHash(spelled)
	hChanged, _ := SpecHash(changed)
	if hSparse != hSpelled {
		t.Fatalf("defaulted and spelled tracker params hash apart: %s vs %s", hSparse, hSpelled)
	}
	if hSparse == hChanged {
		t.Fatal("changed param value did not change the hash")
	}
}
