package server

import (
	"testing"

	"greendimm/internal/exp"
)

// TestSpecHashGolden pins SpecHash against committed hex values. The
// hash is the durable store's record key and the cluster's divergence
// cross-check key: if any of these change, journaled jobs from older
// daemons stop matching their own specs at recovery and warm caches go
// cold fleet-wide. An intentional cache-key change (adding a field that
// affects results) must update these goldens in the same commit — and
// must be called out as a store-compatibility break.
//
// The fourth case pins the most load-bearing property: a spec WITHOUT
// Cells must hash exactly as it did before the Cells field existed,
// so pre-shard-era journals and caches stay valid.
func TestSpecHashGolden(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{
			name: "experiment defaults",
			spec: JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8"}},
			want: "dc1e567e31085e9da1b00491da492af334542b8b8181521f400d1d7f03060c6a",
		},
		{
			name: "experiment quick seeded",
			spec: JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Quick: true, Seed: 7}},
			want: "c71737ad1e7793da873bba864e4e662458ac0425a9b7475855f0fc2eeeed11a3",
		},
		{
			name: "experiment cell range",
			spec: JobSpec{
				Kind:       KindExperiment,
				Experiment: &ExperimentSpec{ID: "fig8", Quick: true},
				Cells:      &CellRangeSpec{Lo: 0, Hi: 6},
			},
			want: "a5923da09bbbe729f21b834f9485eededd24648ade9ee01cbced48c9b0a1bb32",
		},
		{
			name: "vmserver",
			spec: JobSpec{
				Kind:     KindVMServer,
				VMServer: &exp.VMScenario{CapacityGB: 64, Hours: 0.05, GreenDIMM: true, Seed: 3},
			},
			want: "f1261375306586c2d8e264d5404f66d4559a742e0c35ccb3d1d3b2acce052b5d",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := SpecHash(tc.spec)
			if err != nil {
				t.Fatalf("SpecHash: %v", err)
			}
			if got != tc.want {
				t.Fatalf("SpecHash changed:\n got %s\nwant %s\nIf deliberate, update the golden and flag the store-compatibility break.", got, tc.want)
			}
		})
	}

	// Execution knobs must NOT move the hash: specs differing only in
	// timeout/parallelism/engine_shards share one cache entry.
	base := JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Quick: true}}
	knobbed := base
	knobbed.TimeoutSec = 30
	knobbed.Parallelism = 4
	knobbed.EngineShards = 2
	h1, err1 := SpecHash(base)
	h2, err2 := SpecHash(knobbed)
	if err1 != nil || err2 != nil {
		t.Fatalf("SpecHash: %v / %v", err1, err2)
	}
	if h1 != h2 {
		t.Fatalf("execution knobs moved the hash: %s vs %s", h1, h2)
	}

	// Seed 0 normalizes to the CLI default (1), so the two spell one job.
	hd, _ := SpecHash(JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8"}})
	hs, _ := SpecHash(JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig8", Seed: 1}})
	if hd != hs {
		t.Fatalf("seed default did not normalize: %s vs %s", hd, hs)
	}
}
