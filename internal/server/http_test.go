package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"greendimm/internal/exp"
	"greendimm/internal/report"
)

func postJob(t *testing.T, ts *httptest.Server, spec any) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, v
}

func getJob(t *testing.T, ts *httptest.Server, id, query string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET job %s: %d %s", id, resp.StatusCode, b)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestE2EVMServerMatchesLibrary runs the paper's §6.3 scenario once
// through the library and once through the daemon and requires
// byte-identical reports — the determinism contract the result cache
// relies on.
func TestE2EVMServerMatchesLibrary(t *testing.T) {
	scen := exp.VMScenario{KSM: true, GreenDIMM: true, Hours: 0.5, Seed: 3}

	day, err := exp.RunVMScenario(scen, exp.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	norm := scen.Normalized()
	wantText := renderText([]*report.Table{vmScenarioTable(norm, day)}, vmScenarioSeries(day))

	s := New(Config{Workers: 2, QueueDepth: 8})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, v := postJob(t, ts, JobSpec{Kind: KindVMServer, VMServer: &scen})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Errorf("Location = %q", loc)
	}
	v = getJob(t, ts, v.ID, "?wait=60s")
	if v.State != StateSucceeded {
		t.Fatalf("job did not succeed: %+v", v)
	}
	if v.Result == nil || v.Result.Text != wantText {
		t.Fatalf("daemon text differs from library run:\n--- daemon ---\n%s--- library ---\n%s",
			v.Result.Text, wantText)
	}
	if v.Result.VMDay == nil || !reflect.DeepEqual(*v.Result.VMDay, day) {
		t.Error("daemon VMDay aggregates differ from the library run")
	}
	if v.Result.SimSeconds < 0.5*3600*0.99 {
		t.Errorf("sim_seconds = %g, want ~%g", v.Result.SimSeconds, 0.5*3600.0)
	}
	if v.Result.WallSeconds <= 0 {
		t.Error("wall_seconds not recorded")
	}

	// (b) Identical re-submission is served from cache without re-running:
	// 200 (not 202), cached flag, identical bytes, zero queue time.
	resp2, v2 := postJob(t, ts, JobSpec{Kind: KindVMServer, VMServer: &scen})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit status = %d, want 200", resp2.StatusCode)
	}
	if !v2.Cached || v2.Result == nil || v2.Result.Text != wantText {
		t.Fatalf("cache hit wrong: cached=%v", v2.Cached)
	}
	st := s.snapshot()
	if st.cacheHits != 1 || st.succeeded != 1 {
		t.Errorf("cacheHits=%d succeeded=%d, want 1/1 (hit must not re-run the engine)",
			st.cacheHits, st.succeeded)
	}
}

// TestE2EExperimentMatchesCLI checks an experiment job renders exactly
// what `greendimm -experiment hwcost` prints.
func TestE2EExperimentMatchesCLI(t *testing.T) {
	tables, series, err := exp.Registry()["hwcost"](exp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantText := renderText(tables, series)

	s := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v := postJob(t, ts, JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "hwcost"}})
	v = getJob(t, ts, v.ID, "?wait=60s")
	if v.State != StateSucceeded {
		t.Fatalf("job: %+v", v)
	}
	if v.Result.Text != wantText {
		t.Errorf("daemon text:\n%s\nCLI text:\n%s", v.Result.Text, wantText)
	}
	if len(v.Result.Tables) != len(tables) {
		t.Errorf("tables = %d, want %d", len(v.Result.Tables), len(tables))
	}
}

// TestE2EDeadlineAbortsEngine submits an expensive scenario with a tiny
// deadline: the stop check hooked into the event loop must abort it.
func TestE2EDeadlineAbortsEngine(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	scen := exp.VMScenario{KSM: true, GreenDIMM: true, Hours: 24, Seed: 5}
	start := time.Now()
	_, v := postJob(t, ts, JobSpec{Kind: KindVMServer, VMServer: &scen, TimeoutSec: 0.15})
	v = getJob(t, ts, v.ID, "?wait=60s")
	if v.State != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Errorf("error = %q, want deadline mention", v.Error)
	}
	// Generous bound: the engine must abort within its polling stride,
	// far before the 24h scenario's multi-second runtime.
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := New(Config{Workers: 1, QueueDepth: 1,
		Runner: func(JobSpec, RunHooks) (*Result, error) {
			started <- struct{}{}
			<-release
			return &Result{}, nil
		}})
	defer func() { close(release); shutdown(t, s) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJob(t, ts, specN(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d", resp.StatusCode)
	}
	<-started
	if resp, _ = postJob(t, ts, specN(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, specN(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1,
		Runner: func(JobSpec, RunHooks) (*Result, error) { return &Result{}, nil }})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{`,
		`{"kind":"experiment","experiment":{"id":"fig99"}}`,
		`{"kind":"vmserver","vmserver":{"capacity_gb":100}}`,
		`{"kind":"experiment","experiment":{"id":"fig1","bogus_knob":true}}`, // unknown fields rejected
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s → %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/junk")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job → %d, want 404", resp.StatusCode)
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// healthz while serving.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// One executed job + one cache hit + one 429-free failure-free flow.
	spec := JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "hwcost"}}
	_, v := postJob(t, ts, spec)
	getJob(t, ts, v.ID, "?wait=60s")
	postJob(t, ts, spec)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	body := string(b)
	for _, want := range []string{
		"# TYPE greendimm_queue_depth gauge",
		"greendimm_queue_capacity 8",
		"greendimm_workers 2",
		`greendimm_jobs{state="succeeded"} 2`, // executed + cache-hit job records
		`greendimm_jobs_finished_total{state="succeeded"} 1`,
		"greendimm_cache_hits_total 1",
		"greendimm_cache_misses_total 1",
		"greendimm_cache_entries 1",
		`greendimm_jobs_rejected_total{reason="queue_full"} 0`,
		"greendimm_up 1",
		// Lifecycle latency histograms (one executed job each for wall
		// time and queue wait; cell-level sweeps don't fire for this job
		// shape, but the series must still be exported).
		"# TYPE greendimm_job_wall_seconds histogram",
		"greendimm_job_wall_seconds_count 1",
		`greendimm_job_wall_seconds_bucket{le="+Inf"} 1`,
		"# TYPE greendimm_job_queue_wait_seconds histogram",
		"greendimm_job_queue_wait_seconds_count 1",
		"# TYPE greendimm_job_cell_seconds histogram",
		// In-flight progress gauges (idle here, but always exported).
		"greendimm_cells_running_done 0",
		"greendimm_cells_running_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
	if !strings.Contains(body, "greendimm_job_wall_seconds_sum") ||
		!strings.Contains(body, "greendimm_job_sim_seconds_sum") {
		t.Errorf("metrics missing per-job time sums\n%s", body)
	}

	// healthz flips to 503 once draining.
	shutdown(t, s)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(s.renderMetrics(), "greendimm_up 0") {
		t.Error("greendimm_up should drop to 0 when draining")
	}
}

func TestHTTPListJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8,
		Runner: func(JobSpec, RunHooks) (*Result, error) { return &Result{}, nil }})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v1 := postJob(t, ts, specN(1))
	getJob(t, ts, v1.ID, "?wait=30s")
	_, v2 := postJob(t, ts, specN(2))
	getJob(t, ts, v2.ID, "?wait=30s")

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs  []JobView `json:"jobs"`
		Total int       `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 2 || out.Jobs[0].ID != v1.ID || out.Jobs[1].ID != v2.ID {
		t.Errorf("list = %+v", out.Jobs)
	}
	if out.Total != 2 {
		t.Errorf("total = %d, want 2", out.Total)
	}
	for _, j := range out.Jobs {
		if j.Result != nil {
			t.Error("list should omit results")
		}
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
