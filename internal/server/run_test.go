package server

import (
	"testing"

	"greendimm/internal/sweep"
)

// TestRunSpecParallelMatchesSerial is the service-level determinism
// check: the same experiment spec must render byte-identical text
// whether the job sweeps serially or fans out under the shared CPU
// budget — which is why parallelism can be excluded from the cache key.
func TestRunSpecParallelMatchesSerial(t *testing.T) {
	mk := func(par int) JobSpec {
		spec := JobSpec{
			Kind:        KindExperiment,
			Experiment:  &ExperimentSpec{ID: "ramzzz", Quick: true, Seed: 1},
			Parallelism: par,
		}
		norm, err := spec.normalized()
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		return norm
	}
	serial, err := runSpec(mk(0), RunHooks{}, nil, nil)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	// The parallel run shares a memo the way the daemon's Runner does;
	// memoized cells must not perturb the rendered text.
	parallel, err := runSpec(mk(8), RunHooks{}, sweep.NewLimiter(8), sweep.NewMemo(0))
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial.Text != parallel.Text {
		t.Errorf("parallel text differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.Text, parallel.Text)
	}
	// A zero-slot budget must still make progress (each job's own worker
	// never needs a slot).
	starved, err := runSpec(mk(8), RunHooks{}, sweep.NewLimiter(0), nil)
	if err != nil {
		t.Fatalf("starved run: %v", err)
	}
	if starved.Text != serial.Text {
		t.Error("zero-budget parallel run differs from serial")
	}
}
