package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"greendimm/internal/core"
	"greendimm/internal/exp"
)

// PolicyConfig is the operator-facing JSON policy configuration file
// (memtierd-style, see `-policy-config` on both binaries):
//
//	{
//	  "policy": {"name": "age-threshold", "params": {"min_idle_s": 5}},
//	  "scenario": {"greendimm": true, "hours": 0.5}
//	}
//
// The policy field takes either wire form (bare legacy string or
// structured object). The one-shot greendimm CLI wraps the policy in the
// scenario (a §6.3 VM-server day, defaults when omitted) and runs it;
// greendimmd installs it as Config.DefaultPolicy, the pipeline applied
// to vmserver jobs that omit their own.
type PolicyConfig struct {
	Policy core.PolicySpec `json:"policy"`
	// Scenario optionally overrides the VM-server day the one-shot CLI
	// runs the policy on. Its own policy field must be left unset — the
	// pipeline is configured once, at the top level.
	Scenario *exp.VMScenario `json:"scenario,omitempty"`
}

// ParsePolicyConfig strictly decodes and validates a policy config:
// unknown fields, unknown policies/trackers/params and out-of-range
// values are all rejected here — at parse time, with the same messages
// job-spec validation produces — never deep inside a run. The returned
// config carries the normalized policy (every default explicit).
func ParsePolicyConfig(data []byte) (PolicyConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c PolicyConfig
	if err := dec.Decode(&c); err != nil {
		return PolicyConfig{}, fmt.Errorf("server: policy config: %w", err)
	}
	if dec.More() {
		return PolicyConfig{}, errors.New("server: policy config: trailing data after the config object")
	}
	norm, err := c.Policy.Normalized()
	if err != nil {
		return PolicyConfig{}, fmt.Errorf("server: policy config: %w", err)
	}
	c.Policy = norm
	if c.Scenario != nil {
		if !c.Scenario.Policy.IsZero() {
			return PolicyConfig{}, errors.New("server: policy config: set the policy at the top level, not inside the scenario")
		}
		sc := *c.Scenario
		sc.Policy = c.Policy
		if err := sc.Normalized().Validate(); err != nil {
			return PolicyConfig{}, fmt.Errorf("server: policy config scenario: %w", err)
		}
	}
	return c, nil
}

// LoadPolicyConfig reads and parses the file at path.
func LoadPolicyConfig(path string) (PolicyConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return PolicyConfig{}, fmt.Errorf("server: policy config: %w", err)
	}
	return ParsePolicyConfig(data)
}

// JobSpec wraps the config into the one-shot job the greendimm CLI
// submits: the configured scenario (or a GreenDIMM-on default day)
// running the configured policy.
func (c PolicyConfig) JobSpec() JobSpec {
	sc := exp.VMScenario{GreenDIMM: true}
	if c.Scenario != nil {
		sc = *c.Scenario
	}
	sc.Policy = c.Policy
	return JobSpec{Kind: KindVMServer, VMServer: &sc}
}
