package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"greendimm/internal/obs"
)

// getTrace fetches and decodes GET /v1/jobs/{id}/trace.
func getTrace(t *testing.T, ts *httptest.Server, id string) obs.TraceView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET trace %s: %d %s", id, resp.StatusCode, b)
	}
	var tv obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	return tv
}

// spanNames counts spans by name.
func spanNames(tv obs.TraceView) map[string]int {
	names := make(map[string]int)
	for _, sp := range tv.Spans {
		names[sp.Name]++
	}
	return names
}

// TestHTTPTraceEndpoint is the tentpole acceptance check: a real job
// round-tripped through the daemon exposes its lifecycle trace over the
// API, with the queue wait, the execute interval, and at least one
// sweep-cell span on the timeline.
func TestHTTPTraceEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "ramzzz", Quick: true, Seed: 1}}
	_, v := postJob(t, ts, spec)
	if v = getJob(t, ts, v.ID, "?wait=60s"); v.State != StateSucceeded {
		t.Fatalf("job: %+v", v)
	}

	tv := getTrace(t, ts, v.ID)
	names := spanNames(tv)
	if names["queue_wait"] != 1 {
		t.Errorf("queue_wait spans = %d, want 1 (%v)", names["queue_wait"], names)
	}
	if names["execute"] != 1 {
		t.Errorf("execute spans = %d, want 1 (%v)", names["execute"], names)
	}
	if names["cell"] < 1 {
		t.Errorf("cell spans = %d, want >= 1 (%v)", names["cell"], names)
	}
	if tv.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 at default capacity", tv.Dropped)
	}
	// Spans arrive sorted by start; queue_wait precedes execute precedes
	// the first cell.
	idx := map[string]int{}
	for i, sp := range tv.Spans {
		if _, seen := idx[sp.Name]; !seen {
			idx[sp.Name] = i
		}
	}
	if !(idx["queue_wait"] < idx["execute"] && idx["execute"] < idx["cell"]) {
		t.Errorf("span order wrong: %v", tv.Spans)
	}
	// Cell spans nest inside the execute interval.
	exec := tv.Spans[idx["execute"]]
	for _, sp := range tv.Spans {
		if sp.Name == "cell" && (sp.StartNs < exec.StartNs || sp.StartNs+sp.DurNs > exec.StartNs+exec.DurNs+int64(time.Millisecond)) {
			t.Errorf("cell span %+v escapes execute %+v", sp, exec)
		}
	}

	// A cache hit gets its own (tiny) trace marking the hit.
	_, v2 := postJob(t, ts, spec)
	if !v2.Cached {
		t.Fatalf("expected cache hit, got %+v", v2)
	}
	if names := spanNames(getTrace(t, ts, v2.ID)); names["cache_hit"] != 1 {
		t.Errorf("cache-hit trace = %v, want one cache_hit mark", names)
	}
}

// decodeEnvelope reads a response body as the v1 error envelope, failing
// the test if the shape is anything else.
func decodeEnvelope(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("response is not an error envelope: %v\n%s", err, b)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", b)
	}
	return env.Error
}

// TestHTTPErrorEnvelope walks every handler error path and requires the
// uniform v1 envelope with its machine code.
func TestHTTPErrorEnvelope(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := New(Config{Workers: 1, QueueDepth: 1,
		Runner: func(JobSpec, RunHooks) (*Result, error) {
			started <- struct{}{}
			<-release
			return &Result{}, nil
		}})
	defer func() { close(release); shutdown(t, s) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// 400 invalid_spec: malformed JSON, unknown experiment, bad list params.
	for _, resp := range []*http.Response{
		post(`{`),
		post(`{"kind":"experiment","experiment":{"id":"fig99"}}`),
		get("/v1/jobs?status=bogus"),
		get("/v1/jobs?limit=-3"),
		get("/v1/jobs?offset=x"),
	} {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
		if e := decodeEnvelope(t, resp); e.Code != CodeInvalidSpec {
			t.Errorf("code = %q, want %q", e.Code, CodeInvalidSpec)
		}
	}

	// 404 not_found on every id-addressed route.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/junk", nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, resp := range []*http.Response{
		get("/v1/jobs/junk"),
		get("/v1/jobs/junk/trace"),
		get("/v1/jobs/junk?wait=10ms"),
		del,
	} {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
		if e := decodeEnvelope(t, resp); e.Code != CodeNotFound {
			t.Errorf("code = %q, want %q", e.Code, CodeNotFound)
		}
	}

	// 429 queue_full once a job is running and the single queue slot is
	// taken; the envelope's retry_after_s mirrors the Retry-After header.
	if resp, _ := postJob(t, ts, specN(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d", resp.StatusCode)
	}
	<-started
	if resp, _ := postJob(t, ts, specN(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d", resp.StatusCode)
	}
	resp := post(`{"kind":"experiment","experiment":{"id":"hwcost","seed":3}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	header := resp.Header.Get("Retry-After")
	e := decodeEnvelope(t, resp)
	if e.Code != CodeQueueFull {
		t.Errorf("code = %q, want %q", e.Code, CodeQueueFull)
	}
	if e.RetryAfterS < 1 {
		t.Errorf("retry_after_s = %d, want >= 1", e.RetryAfterS)
	}
	if header != strconv.Itoa(e.RetryAfterS) {
		t.Errorf("Retry-After header %q != envelope retry_after_s %d", header, e.RetryAfterS)
	}
}

// TestHTTPDrainingEnvelope: submissions during shutdown get 503 with the
// draining code.
func TestHTTPDrainingEnvelope(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1,
		Runner: func(JobSpec, RunHooks) (*Result, error) { return &Result{}, nil }})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	shutdown(t, s)

	resp, _ := postJob(t, ts, specN(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"experiment","experiment":{"id":"hwcost"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeEnvelope(t, resp2); e.Code != CodeDraining {
		t.Errorf("code = %q, want %q", e.Code, CodeDraining)
	}
}

// TestHTTPListFilterAndPage covers ?status=, ?limit=, ?offset= and the
// total field: total counts post-filter matches, pages slice the stable
// submission order.
func TestHTTPListFilterAndPage(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8,
		Runner: func(spec JobSpec, h RunHooks) (*Result, error) {
			if spec.Experiment.Seed == 2 {
				return nil, errors.New("injected failure")
			}
			return &Result{}, nil
		}})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, 5)
	for i := range ids {
		_, v := postJob(t, ts, specN(int64(i+1)))
		getJob(t, ts, v.ID, "?wait=30s")
		ids[i] = v.ID
	}

	list := func(query string) (jobs []JobView, total int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Jobs  []JobView `json:"jobs"`
			Total int       `json:"total"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs, out.Total
	}

	if jobs, total := list(""); len(jobs) != 5 || total != 5 {
		t.Errorf("unfiltered: %d jobs, total %d, want 5/5", len(jobs), total)
	}
	jobs, total := list("?status=succeeded")
	if len(jobs) != 4 || total != 4 {
		t.Errorf("succeeded: %d jobs, total %d, want 4/4", len(jobs), total)
	}
	jobs, total = list("?status=failed")
	if len(jobs) != 1 || total != 1 || jobs[0].ID != ids[1] {
		t.Errorf("failed: %+v total %d, want just %s", jobs, total, ids[1])
	}
	// Pages keep submission order and report the pre-page total.
	jobs, total = list("?limit=2")
	if total != 5 || len(jobs) != 2 || jobs[0].ID != ids[0] || jobs[1].ID != ids[1] {
		t.Errorf("limit=2: %+v total %d", jobs, total)
	}
	jobs, total = list("?limit=2&offset=4")
	if total != 5 || len(jobs) != 1 || jobs[0].ID != ids[4] {
		t.Errorf("limit=2&offset=4: %+v total %d", jobs, total)
	}
	if jobs, total = list("?offset=99"); total != 5 || len(jobs) != 0 {
		t.Errorf("offset past end: %d jobs, total %d, want 0/5", len(jobs), total)
	}
	// Filter and page compose: the second page of succeeded jobs.
	jobs, total = list("?status=succeeded&limit=2&offset=2")
	if total != 4 || len(jobs) != 2 || jobs[0].ID != ids[3] || jobs[1].ID != ids[4] {
		t.Errorf("succeeded page 2: %+v total %d", jobs, total)
	}
}

// TestHTTPProgressAndGauges: a running job's Progress hook shows up in
// its JobView (cells_done/cells_total) and in the in-flight Prometheus
// gauges; after it finishes, the view keeps the final progress and gains
// queue_wait_ms, and the gauges fall back to zero.
func TestHTTPProgressAndGauges(t *testing.T) {
	release := make(chan struct{})
	reported := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4,
		Runner: func(spec JobSpec, h RunHooks) (*Result, error) {
			h.Progress(1, 3, 0.25)
			close(reported)
			<-release
			h.Progress(3, 3, 0.1)
			return &Result{}, nil
		}})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v := postJob(t, ts, specN(1))
	<-reported

	mid := getJob(t, ts, v.ID, "")
	if mid.Progress == nil || mid.Progress.CellsDone != 1 || mid.Progress.CellsTotal != 3 {
		t.Fatalf("mid-run progress = %+v, want 1/3", mid.Progress)
	}
	body := s.renderMetrics()
	for _, want := range []string{"greendimm_cells_running_done 1", "greendimm_cells_running_total 3"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q during run\n%s", want, body)
		}
	}

	close(release)
	fin := getJob(t, ts, v.ID, "?wait=30s")
	if fin.State != StateSucceeded {
		t.Fatalf("job: %+v", fin)
	}
	if fin.Progress == nil || fin.Progress.CellsDone != 3 || fin.Progress.CellsTotal != 3 {
		t.Errorf("final progress = %+v, want 3/3", fin.Progress)
	}
	if fin.QueueWaitMS < 0 {
		t.Errorf("queue_wait_ms = %g, want >= 0", fin.QueueWaitMS)
	}
	body = s.renderMetrics()
	for _, want := range []string{
		"greendimm_cells_running_done 0",
		"greendimm_cells_running_total 0",
		"greendimm_job_cell_seconds_count 2", // both Progress calls observed
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q after finish\n%s", want, body)
		}
	}
}
