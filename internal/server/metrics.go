package server

import "greendimm/internal/metrics"

// renderMetrics produces the /metrics payload in Prometheus text format.
func (s *Server) renderMetrics() string {
	st := s.snapshot()
	var e metrics.Exposition
	e.Add("greendimm_up", "gauge", "1 while the daemon accepts jobs, 0 once draining.",
		metrics.V(boolGauge(!st.draining)))
	e.Add("greendimm_queue_depth", "gauge", "Jobs waiting in the bounded queue.",
		metrics.V(float64(st.queueDepth)))
	e.Add("greendimm_queue_capacity", "gauge", "Queue bound; submissions beyond it get HTTP 429.",
		metrics.V(float64(st.queueCap)))
	e.Add("greendimm_workers", "gauge", "Size of the worker pool.",
		metrics.V(float64(st.workers)))
	e.Add("greendimm_workers_busy", "gauge", "Workers currently executing a job (utilization = busy/workers).",
		metrics.V(float64(st.busyWorkers)))
	e.Add("greendimm_jobs", "gauge", "Retained job records by lifecycle state.",
		stateSample(st, StateQueued),
		stateSample(st, StateRunning),
		stateSample(st, StateSucceeded),
		stateSample(st, StateFailed),
		stateSample(st, StateCanceled),
	)
	e.Add("greendimm_jobs_submitted_total", "counter", "Accepted submissions (including cache hits).",
		metrics.V(float64(st.submitted)))
	e.Add("greendimm_jobs_rejected_total", "counter", "Rejected submissions by reason.",
		metrics.Sample{Labels: map[string]string{"reason": "queue_full"}, Value: float64(st.rejectedFull)},
		metrics.Sample{Labels: map[string]string{"reason": "invalid"}, Value: float64(st.rejectedInvalid)},
		metrics.Sample{Labels: map[string]string{"reason": "draining"}, Value: float64(st.rejectedDraining)},
	)
	e.Add("greendimm_jobs_finished_total", "counter", "Finished executions by terminal state (cache hits excluded).",
		metrics.Sample{Labels: map[string]string{"state": string(StateSucceeded)}, Value: float64(st.succeeded)},
		metrics.Sample{Labels: map[string]string{"state": string(StateFailed)}, Value: float64(st.failed)},
		metrics.Sample{Labels: map[string]string{"state": string(StateCanceled)}, Value: float64(st.canceled)},
	)
	e.Add("greendimm_cache_hits_total", "counter", "Submissions served from the result cache without re-running the engine.",
		metrics.V(float64(st.cacheHits)))
	e.Add("greendimm_cache_misses_total", "counter", "Submissions that had to execute.",
		metrics.V(float64(st.cacheMisses)))
	e.Add("greendimm_cache_entries", "gauge", "Results currently cached.",
		metrics.V(float64(st.cacheSize)))
	e.Add("greendimm_job_sim_seconds_sum", "counter", "Total simulated seconds advanced by succeeded jobs.",
		metrics.V(st.simSecondsSum))
	e.Add("greendimm_cells_running_done", "gauge", "Sweep cells completed so far across currently running jobs.",
		metrics.V(float64(st.cellsDoneRunning)))
	e.Add("greendimm_cells_running_total", "gauge", "Sweep cells planned across currently running jobs.",
		metrics.V(float64(st.cellsTotalRunning)))
	e.Add("greendimm_jobs_recovered_total", "counter", "Jobs re-enqueued from the durable store at boot.",
		metrics.V(float64(st.recovered)))
	e.Add("greendimm_cells_resumed_total", "counter", "Journaled sweep cells replayed instead of re-simulated (succeeded jobs).",
		metrics.V(float64(st.resumedCells)))
	if st.hasMemo {
		e.Add("greendimm_memo_entries", "gauge", "Baseline-cell memo entries currently resident.",
			metrics.V(float64(st.memoEntries)))
		e.Add("greendimm_memo_hits_total", "counter", "Memoized cell lookups served without recomputing.",
			metrics.V(float64(st.memoHits)))
		e.Add("greendimm_memo_computes_total", "counter", "Memo entries settled by running their compute function.",
			metrics.V(float64(st.memoComputes)))
		e.Add("greendimm_memo_evictions_total", "counter", "Settled memo entries dropped by the LRU bound.",
			metrics.V(float64(st.memoEvictions)))
		e.Add("greendimm_memo_imports_total", "counter", "Memo entries installed from the durable log or peers.",
			metrics.V(float64(st.memoImports)))
		e.Add("greendimm_memo_peer_fetch_total", "counter", "Memo entries pulled from warm cluster peers.",
			metrics.V(float64(st.memoPeerFetch)))
	}
	if st.memoLog != nil {
		e.Add("greendimm_memo_store_entries", "gauge", "Memo entries retained in the durable memo log.",
			metrics.V(float64(st.memoLog.Entries)))
		e.Add("greendimm_memo_store_wal_records_total", "counter", "Memo-log WAL records appended by this process.",
			metrics.V(float64(st.memoLog.Appends)))
		e.Add("greendimm_memo_store_snapshots_total", "counter", "Memo-log WAL compactions into a snapshot.",
			metrics.V(float64(st.memoLog.Snapshots)))
	}
	if st.store != nil {
		e.Add("greendimm_store_specs", "gauge", "Job records retained in the durable store.",
			metrics.V(float64(st.store.Specs)))
		e.Add("greendimm_store_cells", "gauge", "Cell artifacts retained in the durable store.",
			metrics.V(float64(st.store.Cells)))
		e.Add("greendimm_store_wal_records_total", "counter", "WAL records appended by this process.",
			metrics.V(float64(st.store.Appends)))
		e.Add("greendimm_store_snapshots_total", "counter", "WAL compactions into a snapshot.",
			metrics.V(float64(st.store.Snapshots)))
		e.Add("greendimm_store_errors_total", "counter", "Failed journal writes (jobs lose durability, not correctness).",
			metrics.V(float64(st.storeErrs)))
	}
	e.AddHistogram("greendimm_job_wall_seconds", "Wall-clock execution time per job (all outcomes, cache hits excluded).",
		s.histWall)
	e.AddHistogram("greendimm_job_queue_wait_seconds", "Time from submission to execution start.",
		s.histQueue)
	e.AddHistogram("greendimm_job_cell_seconds", "Wall-clock time per sweep cell.",
		s.histCell)
	return e.String()
}

func stateSample(st stats, state JobState) metrics.Sample {
	return metrics.Sample{Labels: map[string]string{"state": string(state)}, Value: float64(st.byState[state])}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
