package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greendimm/internal/exp"
	"greendimm/internal/sweep"
)

func fig8QuickPar(parallelism int) JobSpec {
	return JobSpec{
		Kind:        KindExperiment,
		Experiment:  &ExperimentSpec{ID: "fig8", Quick: true, Seed: 1},
		Parallelism: parallelism,
	}
}

func runToSuccess(t *testing.T, s *Server, spec JobSpec) JobView {
	t.Helper()
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitState(t, s, v.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job = %s (%s), want succeeded", final.State, final.Error)
	}
	return final
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestMemoExchangeEndpoints drives the two peer-exchange endpoints the
// way a warm peer would: digest the keys, fetch a batch, import it into
// a fresh memo.
func TestMemoExchangeEndpoints(t *testing.T) {
	s, err := Open(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	runToSuccess(t, s, fig8QuickPar(0))
	if s.Memo() == nil || len(s.Memo().Keys()) == 0 {
		t.Fatal("run left no warm exportable entries")
	}

	h := s.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/memo/keys", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /v1/memo/keys = %d: %s", rr.Code, rr.Body.String())
	}
	var digest MemoKeysView
	if err := json.Unmarshal(rr.Body.Bytes(), &digest); err != nil {
		t.Fatal(err)
	}
	if digest.Count == 0 || digest.Count != len(digest.Keys) {
		t.Fatalf("digest = %+v, want a consistent non-empty key set", digest)
	}

	body, _ := json.Marshal(MemoFetchRequest{Keys: digest.Keys})
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/memo/entries", strings.NewReader(string(body))))
	if rr.Code != 200 {
		t.Fatalf("POST /v1/memo/entries = %d: %s", rr.Code, rr.Body.String())
	}
	var fetched MemoFetchResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &fetched); err != nil {
		t.Fatal(err)
	}
	if len(fetched.Entries) != digest.Count {
		t.Fatalf("fetched %d entries for %d digested keys", len(fetched.Entries), digest.Count)
	}

	// The fetched entries must survive a verified import — the consumer
	// side of the exchange.
	m := sweep.NewMemo(0)
	m.SetCodec(exp.MemoCodec())
	if n := m.Import(fetched.Entries); n != len(fetched.Entries) {
		t.Fatalf("imported %d of %d fetched entries", n, len(fetched.Entries))
	}

	// Bad requests are rejected, not served partially.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/memo/entries", strings.NewReader("{not json")))
	if rr.Code != 400 {
		t.Fatalf("garbage fetch body = %d, want 400", rr.Code)
	}
	over := MemoFetchRequest{Keys: make([]string, MaxMemoFetchKeys+1)}
	body, _ = json.Marshal(over)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/memo/entries", strings.NewReader(string(body))))
	if rr.Code != 400 {
		t.Fatalf("over-bound fetch = %d, want 400", rr.Code)
	}
}

// TestMemoEndpointsWithoutMemo: a daemon with memoization disabled is a
// protocol-valid cold peer, not an error source.
func TestMemoEndpointsWithoutMemo(t *testing.T) {
	s, err := Open(Config{Workers: 1, QueueDepth: 4, MemoEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	if s.Memo() != nil {
		t.Fatal("MemoEntries < 0 still built a memo")
	}
	h := s.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/memo/keys", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"count": 0`) {
		t.Fatalf("cold digest = %d: %s", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/memo/entries", strings.NewReader(`{"keys":["timing|x"]}`)))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"entries": []`) {
		t.Fatalf("cold fetch = %d: %s", rr.Code, rr.Body.String())
	}
}

// TestWarmRestartServesWithoutRecompute is the recovery e2e the durable
// memo exists for: a daemon computes a sweep, restarts on the same
// -store-dir with the JOB journal deleted (so nothing can replay from
// the per-spec store), and serves the repeat sweep from the imported
// memo alone — zero baseline recomputations, byte-identical report, at
// parallelism 1 and 8.
func TestWarmRestartServesWithoutRecompute(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, QueueDepth: 8, StoreDir: dir}

	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := runToSuccess(t, s1, fig8QuickPar(1))
	if got := s1.Memo().Computes(); got == 0 {
		t.Fatal("cold run recorded no memo computes")
	}
	shutdownServer(t, s1)

	// Remove the job journal but keep the memo log: the warm boot must
	// come from <dir>/memo/, not from per-spec cell replay.
	for _, f := range []string{"wal.log", "snapshot.json"} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "memo", "wal.log")); err != nil {
		t.Fatalf("memo log missing after shutdown: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer shutdownServer(t, s2)
	if s2.MemoImported() == 0 {
		t.Fatal("reopened daemon imported no memo entries")
	}
	for _, par := range []int{1, 8} {
		warm := runToSuccess(t, s2, fig8QuickPar(par))
		if warm.Result == nil || warm.Result.Text != cold.Result.Text {
			t.Fatalf("parallelism %d: warm report diverged from the cold run", par)
		}
	}
	if got := s2.Memo().Computes(); got != 0 {
		t.Fatalf("warm daemon recomputed %d baseline cells, want 0", got)
	}

	// The warm state surfaces on /metrics.
	rr := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"greendimm_memo_entries",
		"greendimm_memo_imports_total",
		"greendimm_memo_store_entries",
		"greendimm_memo_peer_fetch_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPredictMemoKeysSpecs pins the placement predictor's spec handling:
// shardable experiment specs predict their key set (range-scoped),
// everything else predicts nothing.
func TestPredictMemoKeysSpecs(t *testing.T) {
	full, err := PredictMemoKeys(fig8QuickPar(0))
	if err != nil || len(full) == 0 {
		t.Fatalf("PredictMemoKeys(fig8) = %d keys, %v", len(full), err)
	}
	spec := fig8QuickPar(0)
	spec.Cells = &CellRangeSpec{Lo: 0, Hi: 2}
	sub, err := PredictMemoKeys(spec)
	if err != nil || len(sub) == 0 || len(sub) >= len(full) {
		t.Fatalf("range prediction = %d keys (full %d), %v; want a proper subset", len(sub), len(full), err)
	}
	// Non-shardable experiment: nothing to predict, no error.
	none, err := PredictMemoKeys(JobSpec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "hwcost", Quick: true, Seed: 1}})
	if err != nil || none != nil {
		t.Fatalf("PredictMemoKeys(hwcost) = %v, %v; want nil, nil", none, err)
	}
	// An invalid range fails normalization — an error, which callers
	// treat as "no prediction".
	spec.Cells = &CellRangeSpec{Lo: 3, Hi: 3}
	none, err = PredictMemoKeys(spec)
	if err == nil || none != nil {
		t.Fatalf("invalid-range prediction = %v, %v; want nil keys and an error", none, err)
	}
}
